package vectorh_test

import (
	"fmt"
	"testing"

	"vectorh"
	"vectorh/internal/colstore"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
)

func openTPCH(t *testing.T, sf float64) (*vectorh.DB, *tpch.Data) {
	t.Helper()
	db, err := vectorh.Open(vectorh.Config{
		Nodes:          []string{"pc-n1", "pc-n2", "pc-n3"},
		ThreadsPerNode: 2,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := tpch.Generate(sf, 7)
	if err := tpch.LoadIntoEngine(db.Engine, d, 6); err != nil {
		t.Fatal(err)
	}
	return db, d
}

// TestPlanCacheInvalidationOnDML checks the cache's consistency contract:
// every DML commit bumps the catalog epoch, the next compile flushes the
// cache, and cached queries always observe committed changes.
func TestPlanCacheInvalidationOnDML(t *testing.T) {
	db, _ := openTPCH(t, 0.005)
	q := "select count(*) from region"

	count := func() int64 {
		rows, err := db.QuerySQL(q)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0][0].(int64)
	}
	base := count()
	count() // second run: cache hit
	s := db.PlanCacheStats()
	if s.Hits < 1 || s.Misses < 1 {
		t.Fatalf("warmup counters: %+v", s)
	}

	epoch0 := db.Engine.CatalogEpoch()
	if _, err := db.ExecSQL("insert into region (r_regionkey, r_name, r_comment) values (77, 'LEMURIA', 'epoch test')"); err != nil {
		t.Fatal(err)
	}
	if db.Engine.CatalogEpoch() == epoch0 {
		t.Fatal("INSERT did not bump catalog epoch")
	}
	if got := count(); got != base+1 {
		t.Fatalf("cached query returned %d after insert, want %d", got, base+1)
	}
	s1 := db.PlanCacheStats()
	if s1.Invalidations <= s.Invalidations {
		t.Fatalf("insert did not invalidate: %+v -> %+v", s, s1)
	}

	epoch1 := db.Engine.CatalogEpoch()
	if _, err := db.ExecSQL("update region set r_comment = 'updated' where r_regionkey = 77"); err != nil {
		t.Fatal(err)
	}
	if db.Engine.CatalogEpoch() == epoch1 {
		t.Fatal("UPDATE did not bump catalog epoch")
	}

	epoch2 := db.Engine.CatalogEpoch()
	if _, err := db.ExecSQL("delete from region where r_regionkey = 77"); err != nil {
		t.Fatal(err)
	}
	if db.Engine.CatalogEpoch() == epoch2 {
		t.Fatal("DELETE did not bump catalog epoch")
	}
	if got := count(); got != base {
		t.Fatalf("cached query returned %d after delete, want %d", got, base)
	}
}

// TestPlanCacheParityAcrossRefresh executes a query mix cached and freshly
// compiled, interleaved with the TPC-H refresh functions (RF1 inserts, RF2
// deletes), asserting row-identical results at every step.
func TestPlanCacheParityAcrossRefresh(t *testing.T) {
	db, d := openTPCH(t, 0.005)
	queries := []string{
		tpch.SQLQueries[1],
		tpch.SQLQueries[6],
		"select count(*), sum(l_quantity) from lineitem",
		"select count(*) from orders",
	}

	fresh := func(q string) []string {
		n, err := sql.Compile(q, db.Engine)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := db.Engine.Query(n)
		if err != nil {
			t.Fatal(err)
		}
		return normRowsT(rows)
	}
	cached := func(q string) []string {
		rows, err := db.QuerySQL(q)
		if err != nil {
			t.Fatal(err)
		}
		return normRowsT(rows)
	}
	checkAll := func(stage string) {
		for i, q := range queries {
			cached(q) // populate (or re-populate after a flush)
			c, f := cached(q), fresh(q)
			if len(c) != len(f) {
				t.Fatalf("%s Q[%d]: cached %d rows, fresh %d", stage, i, len(c), len(f))
			}
			for j := range c {
				if c[j] != f[j] {
					t.Fatalf("%s Q[%d] row %d: cached %q fresh %q", stage, i, j, c[j], f[j])
				}
			}
		}
	}

	checkAll("initial")

	keys := tpch.RF2Keys(d, 20, 3)
	for _, stmt := range tpch.RF1SQL(d, 20, 3) {
		if _, err := db.ExecSQL(stmt); err != nil {
			t.Fatalf("RF1: %v", err)
		}
	}
	checkAll("after RF1")

	for _, stmt := range tpch.RF2SQL(keys) {
		if _, err := db.ExecSQL(stmt); err != nil {
			t.Fatalf("RF2: %v", err)
		}
	}
	checkAll("after RF2")

	if s := db.PlanCacheStats(); s.Hits == 0 || s.Invalidations == 0 {
		t.Fatalf("refresh parity ran without exercising the cache: %+v", s)
	}
}

func normRowsT(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		s := ""
		for _, v := range row {
			if f, ok := v.(float64); ok {
				s += fmt.Sprintf("%.6g|", f)
			} else {
				s += fmt.Sprintf("%v|", v)
			}
		}
		out[i] = s
	}
	return out
}
