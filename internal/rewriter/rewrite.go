package rewriter

import (
	"fmt"

	"vectorh/internal/exec"
	"vectorh/internal/expr"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// TableInfo is the physical-design metadata the rewriter consults.
type TableInfo struct {
	Name         string
	Schema       vector.Schema
	Rows         int64  // cardinality estimate for costing
	PartitionKey string // "" = replicated (non-partitioned)
	Partitions   int
	ClusteredOn  string // clustered-index column ("" = unordered)
}

// Catalog resolves physical table metadata.
type Catalog interface {
	Table(name string) (TableInfo, error)
}

// Options hold the topology and the rule flags whose ablation §5 reports
// (5.02s with everything on; 26.14s with everything off).
type Options struct {
	Nodes   int
	Threads int // exchange consumer threads per node
	Master  int // session-master node (final gather target)

	LocalJoin      bool // detect co-located partition-pair joins
	ReplicateBuild bool // build join hash tables from replicated tables locally
	PartialAgg     bool // aggregate locally before exchanging

	// PushFilterIntoScan moves a filter's pushable conjuncts into the scan
	// underneath (late-materialized filtering + per-kind MinMax skipping),
	// eliding the Select when the conjuncts subsume its whole predicate.
	// Off, conjuncts degrade to skip-only hints and the full Select stays —
	// the pre-pushdown pipeline, kept as an ablation/validation baseline.
	PushFilterIntoScan bool

	// ExecOnCompressed marks pushed predicate sets as legal for
	// compressed-domain evaluation (ScanPredSet.CodeSpace): string conjuncts
	// transpose into dictionary-code space and integer conjuncts verdict
	// against frame bounds before the scan unpacks anything. Only genuinely
	// row-filtering sets are marked — SkipOnly hints never are. Off is the
	// value-space baseline the compressed-execution parity gate compares
	// against.
	ExecOnCompressed bool
}

// DefaultOptions enables every rewrite rule.
func DefaultOptions(nodes, threads int) Options {
	return Options{Nodes: nodes, Threads: threads,
		LocalJoin: true, ReplicateBuild: true, PartialAgg: true, PushFilterIntoScan: true,
		ExecOnCompressed: true}
}

// result carries a physical subtree plus its structural properties — the
// (partitioning, replication, gathered) properties of the paper's DP state.
type result struct {
	phys   Phys
	schema vector.Schema

	partitionedBy []string // output columns the streams are partitioned on
	coPart        bool     // streams are table partitions (alignable 1:1)
	partCount     int      // partition count for coPart alignment
	replicated    bool     // every node holds a full copy (1 stream/node)
	gathered      bool     // single stream at the master
	orderedBy     string   // streams ordered on this column ("" = no)
	rows          int64    // cardinality estimate
}

type rewriteCtx struct {
	cat  Catalog
	opts Options
	est  map[Phys]int64 // cardinality estimate per lowered logical node
}

// Rewrite lowers a logical plan to a distributed physical plan whose root
// produces a single stream at the master node.
func Rewrite(n plan.Node, cat Catalog, opts Options) (Phys, error) {
	p, _, err := RewriteEst(n, cat, opts)
	return p, err
}

// RewriteEst is Rewrite plus the cost model's cardinality estimates, keyed
// by the physical node each logical node lowered to (exchanges and other
// glue nodes carry no estimate of their own). ExplainEst renders them.
func RewriteEst(n plan.Node, cat Catalog, opts Options) (Phys, map[Phys]int64, error) {
	ctx := &rewriteCtx{cat: cat, opts: opts, est: make(map[Phys]int64)}
	r, err := ctx.rec(n)
	if err != nil {
		return nil, nil, err
	}
	g := ctx.gather(r)
	ctx.est[g.phys] = g.rows
	return g.phys, ctx.est, nil
}

// gather funnels a distributed result into one master stream.
func (c *rewriteCtx) gather(r result) result {
	if r.gathered {
		return r
	}
	if r.replicated {
		r.phys = &physOneNode{child: r.phys, node: c.opts.Master}
		r.replicated = false
		r.gathered = true
		return r
	}
	r.phys = &physDXchgUnion{child: r.phys, node: c.opts.Master}
	r.gathered = true
	r.partitionedBy = nil
	r.coPart = false
	return r
}

func (c *rewriteCtx) rec(n plan.Node) (result, error) {
	r, err := c.recNode(n)
	if err == nil && c.est != nil && r.phys != nil {
		c.est[r.phys] = r.rows
	}
	return r, err
}

func (c *rewriteCtx) recNode(n plan.Node) (result, error) {
	switch n := n.(type) {
	case *plan.ScanNode:
		return c.recScan(n)
	case *plan.FilterNode:
		return c.recFilter(n)
	case *plan.ProjectNode:
		return c.recProject(n)
	case *plan.JoinNode:
		return c.recJoin(n)
	case *plan.AggregateNode:
		return c.recAggregate(n)
	case *plan.OrderByNode:
		return c.recOrderBy(n)
	case *plan.LimitNode:
		child, err := c.rec(n.Child)
		if err != nil {
			return result{}, err
		}
		g := c.gather(child)
		g.phys = &physLimit{child: g.phys, n: n.N}
		if g.rows > n.N {
			g.rows = n.N
		}
		return g, nil
	default:
		return result{}, fmt.Errorf("rewriter: unsupported node %T", n)
	}
}

func (c *rewriteCtx) recScan(n *plan.ScanNode) (result, error) {
	info, err := c.cat.Table(n.Table)
	if err != nil {
		return result{}, err
	}
	cols := n.Cols
	if cols == nil {
		cols = info.Schema.Names()
	}
	schema := make(vector.Schema, 0, len(cols))
	for _, col := range cols {
		f, err := info.Schema.Field(col)
		if err != nil {
			return result{}, err
		}
		schema = append(schema, f)
	}
	r := result{
		phys:   &physScan{table: n.Table, cols: cols, replicated: info.PartitionKey == "", schema: schema},
		schema: schema,
		rows:   info.Rows,
	}
	if info.PartitionKey == "" {
		r.replicated = true
	} else {
		r.coPart = true
		r.partCount = info.Partitions
		if schema.Index(info.PartitionKey) >= 0 {
			r.partitionedBy = []string{info.PartitionKey}
		}
	}
	if info.ClusteredOn != "" && schema.Index(info.ClusteredOn) >= 0 {
		r.orderedBy = info.ClusteredOn
	}
	return r, nil
}

func (c *rewriteCtx) recFilter(n *plan.FilterNode) (result, error) {
	child, err := c.rec(n.Child)
	if err != nil {
		return result{}, err
	}
	// Push the filter's pushable conjuncts into the scan (the "derive scan
	// ranges" rule of the Appendix rewriter profile, generalized from one
	// int range to the full per-column conjunct set).
	scan, isScan := child.phys.(*physScan)
	if isScan && n.SkipSet != nil && scan.pred == nil && c.opts.PushFilterIntoScan && !n.SkipSet.SkipOnly {
		// Clone before marking CodeSpace: the logical plan may be cached and
		// rewritten again under different options.
		ps := n.SkipSet.Clone()
		ps.CodeSpace = c.opts.ExecOnCompressed
		scan.pred = ps
		child.rows = child.rows/3 + 1
		if n.Residual == nil {
			// The scan evaluates every conjunct itself: no Select needed.
			return child, nil
		}
		bound, err := n.Residual.Bind(child.schema)
		if err != nil {
			return result{}, err
		}
		child.phys = &physFilter{child: child.phys, pred: bound}
		return child, nil
	}
	if isScan && n.SkipSet != nil && scan.pred == nil {
		// Skip-only hints (builder Skip() assertions, or pushdown disabled):
		// blocks are pruned by MinMax, rows are still filtered above.
		skip := n.SkipSet.Clone()
		skip.SkipOnly = true
		scan.pred = skip
	}
	bound, err := n.Pred.Bind(child.schema)
	if err != nil {
		return result{}, err
	}
	child.phys = &physFilter{child: child.phys, pred: bound}
	child.rows = child.rows/3 + 1
	return child, nil
}

func (c *rewriteCtx) recProject(n *plan.ProjectNode) (result, error) {
	child, err := c.rec(n.Child)
	if err != nil {
		return result{}, err
	}
	exprs := make([]expr.Expr, len(n.Exprs))
	schema := make(vector.Schema, len(n.Exprs))
	for i, ne := range n.Exprs {
		if exprs[i], err = ne.Expr.Bind(child.schema); err != nil {
			return result{}, err
		}
		t, err := ne.Expr.Type(child.schema)
		if err != nil {
			return result{}, err
		}
		schema[i] = vector.Field{Name: ne.Name, Type: t}
	}
	// Partitioning survives only for pass-through bare columns.
	var newPart []string
	for _, pc := range child.partitionedBy {
		for _, ne := range n.Exprs {
			if ne.Expr.Name == pc {
				newPart = append(newPart, ne.Name)
				break
			}
		}
	}
	if len(newPart) != len(child.partitionedBy) {
		newPart = nil
	}
	ordered := ""
	if child.orderedBy != "" {
		for _, ne := range n.Exprs {
			if ne.Expr.Name == child.orderedBy {
				ordered = ne.Name
			}
		}
	}
	child.phys = &physProject{child: child.phys, exprs: exprs, schema: schema}
	child.schema = schema
	child.partitionedBy = newPart
	child.orderedBy = ordered
	return child, nil
}

// keyAligned reports whether the join keys pair the two sides' partition
// keys at the same position, making partition-pair joins correct.
func keyAligned(lKeys, rKeys, lPart, rPart []string) bool {
	if len(lPart) != 1 || len(rPart) != 1 {
		return false
	}
	for i := range lKeys {
		if lKeys[i] == lPart[0] && rKeys[i] == rPart[0] {
			return true
		}
	}
	return false
}

func bindAll(names []string, s vector.Schema) ([]expr.Expr, error) {
	out := make([]expr.Expr, len(names))
	for i, name := range names {
		idx := s.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("rewriter: unknown key column %q", name)
		}
		out[i] = expr.Col(idx, s[idx].Type.Kind)
	}
	return out, nil
}

func (c *rewriteCtx) recJoin(n *plan.JoinNode) (result, error) {
	left, err := c.rec(n.Left)
	if err != nil {
		return result{}, err
	}
	right, err := c.rec(n.Right)
	if err != nil {
		return result{}, err
	}
	var jt exec.JoinType
	switch n.Kind {
	case plan.InnerJoin:
		jt = exec.Inner
	case plan.LeftOuterJoin:
		jt = exec.LeftOuter
	case plan.SemiJoin:
		jt = exec.Semi
	case plan.AntiJoin:
		jt = exec.Anti
	}

	outSchema := left.schema.Clone()
	if jt == exec.Inner || jt == exec.LeftOuter {
		outSchema = append(outSchema, right.schema...)
	}
	if jt == exec.LeftOuter {
		outSchema = append(outSchema, vector.Field{Name: plan.MatchedCol, Type: vector.TBool})
	}

	out := result{schema: outSchema, rows: maxI64(left.rows, right.rows)}
	switch {
	// Rule: local join over co-located partitions.
	case c.opts.LocalJoin && left.coPart && right.coPart &&
		left.partCount == right.partCount &&
		keyAligned(n.LeftKeys, n.RightKeys, left.partitionedBy, right.partitionedBy):
		// Co-ordered clustered tables merge-join without hashing.
		if jt == exec.Inner && len(n.LeftKeys) == 1 &&
			left.orderedBy == n.LeftKeys[0] && right.orderedBy == n.RightKeys[0] {
			out.phys = &physMergeJoin{
				left: left.phys, right: right.phys,
				lkey: left.schema.Index(n.LeftKeys[0]), rkey: right.schema.Index(n.RightKeys[0]),
				schema: outSchema,
			}
			out.orderedBy = left.orderedBy
		} else {
			bk, err := bindAll(n.RightKeys, right.schema)
			if err != nil {
				return result{}, err
			}
			pk, err := bindAll(n.LeftKeys, left.schema)
			if err != nil {
				return result{}, err
			}
			out.phys = &physHashJoin{build: right.phys, probe: left.phys,
				buildKeys: bk, probeKeys: pk, jt: jt, schema: outSchema}
		}
		out.coPart, out.partCount = true, left.partCount
		out.partitionedBy = left.partitionedBy

	// Both sides replicated: join locally on every node, result stays
	// replicated (no flag — it is never worse).
	case left.replicated && right.replicated:
		bk, err := bindAll(n.RightKeys, right.schema)
		if err != nil {
			return result{}, err
		}
		pk, err := bindAll(n.LeftKeys, left.schema)
		if err != nil {
			return result{}, err
		}
		out.phys = &physHashJoin{build: right.phys, probe: left.phys,
			buildKeys: bk, probeKeys: pk, jt: jt, schema: outSchema}
		out.replicated = true

	// Rule: replicated build side — build the hash table from the local
	// replica on every node, splitting only between local threads.
	case c.opts.ReplicateBuild && right.replicated && !left.gathered:
		bk, err := bindAll(n.RightKeys, right.schema)
		if err != nil {
			return result{}, err
		}
		pk, err := bindAll(n.LeftKeys, left.schema)
		if err != nil {
			return result{}, err
		}
		out.phys = &physHashJoin{build: right.phys, probe: left.phys,
			buildKeys: bk, probeKeys: pk, jt: jt, schema: outSchema,
			broadcastBuild: true}
		out.partitionedBy = left.partitionedBy
		out.coPart, out.partCount = left.coPart, left.partCount
		out.orderedBy = left.orderedBy

	// Fallback: repartition both sides across the cluster on the join
	// keys (the expensive DXchg path the cost model tries to avoid).
	default:
		exL, err := c.exchangeOn(left, n.LeftKeys)
		if err != nil {
			return result{}, err
		}
		exR, err := c.exchangeOn(right, n.RightKeys)
		if err != nil {
			return result{}, err
		}
		bk, err := bindAll(n.RightKeys, exR.schema)
		if err != nil {
			return result{}, err
		}
		pk, err := bindAll(n.LeftKeys, exL.schema)
		if err != nil {
			return result{}, err
		}
		out.phys = &physHashJoin{build: exR.phys, probe: exL.phys,
			buildKeys: bk, probeKeys: pk, jt: jt, schema: outSchema}
		out.partitionedBy = n.LeftKeys
	}

	if jt == exec.Semi || jt == exec.Anti {
		out.rows = left.rows/2 + 1
	}
	if n.ExtraPred != nil {
		bound, err := n.ExtraPred.Bind(outSchema)
		if err != nil {
			return result{}, err
		}
		out.phys = &physFilter{child: out.phys, pred: bound}
		out.rows = out.rows/3 + 1
	}
	return out, nil
}

// exchangeOn hash-repartitions a result on the named keys. Replicated inputs
// are first restricted to a single node so rows are not duplicated.
func (c *rewriteCtx) exchangeOn(r result, keys []string) (result, error) {
	bound, err := bindAll(keys, r.schema)
	if err != nil {
		return result{}, err
	}
	phys := r.phys
	if r.replicated {
		phys = &physOneNode{child: phys, node: c.opts.Master}
	}
	r.phys = &physDXchgHash{child: phys, keys: bound}
	r.partitionedBy = keys
	r.coPart = false
	r.replicated = false
	r.gathered = false
	r.orderedBy = ""
	return r, nil
}

func subset(sub, super []string) bool {
	for _, s := range sub {
		found := false
		for _, t := range super {
			if s == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (c *rewriteCtx) recAggregate(n *plan.AggregateNode) (result, error) {
	child, err := c.rec(n.Child)
	if err != nil {
		return result{}, err
	}
	outSchema, err := n.Schema(catAdapter{c.cat})
	if err != nil {
		return result{}, err
	}

	// Grouping is stream-local when the stream partitioning keys are a
	// subset of the GROUP BY (every group confined to one stream), when
	// the data is replicated, or when already gathered.
	local := child.gathered || child.replicated ||
		(len(child.partitionedBy) > 0 && subset(child.partitionedBy, n.GroupBy))

	if local {
		keys, aggs, err := directAggs(n, child.schema)
		if err != nil {
			return result{}, err
		}
		child.phys = &physAggr{child: child.phys, keys: keys, aggs: aggs, schema: outSchema, kind: "direct"}
		child.schema = outSchema
		child.rows = groupEstimate(child.rows)
		child.orderedBy = ""
		// Partitioning property: group keys retain the partition cols.
		return child, nil
	}

	hasDistinct := false
	for _, a := range n.Aggs {
		if a.Func == plan.CountDistinct {
			hasDistinct = true
		}
	}

	if !c.opts.PartialAgg || hasDistinct {
		// Exchange raw rows, aggregate once at the consumers.
		var ex result
		if len(n.GroupBy) == 0 {
			ex = c.gather(child)
		} else {
			if ex, err = c.exchangeOn(child, n.GroupBy); err != nil {
				return result{}, err
			}
		}
		keys, aggs, err := directAggs(n, ex.schema)
		if err != nil {
			return result{}, err
		}
		ex.phys = &physAggr{child: ex.phys, keys: keys, aggs: aggs, schema: outSchema, kind: "direct"}
		ex.schema = outSchema
		ex.rows = groupEstimate(child.rows)
		ex.partitionedBy = n.GroupBy
		return ex, nil
	}

	// Rule: partial aggregation before the exchange.
	partialSchema, pKeys, pAggs, finAggs, finProj, err := decomposeAggs(n, child.schema, outSchema)
	if err != nil {
		return result{}, err
	}
	child.phys = &physAggr{child: child.phys, keys: pKeys, aggs: pAggs, schema: partialSchema, kind: "partial"}
	child.schema = partialSchema
	child.orderedBy = ""

	var ex result
	if len(n.GroupBy) == 0 {
		ex = c.gather(child)
	} else {
		if ex, err = c.exchangeOn(child, n.GroupBy); err != nil {
			return result{}, err
		}
	}
	// Final combine: keys are the leading partial columns.
	fKeys := make([]expr.Expr, len(n.GroupBy))
	for i := range n.GroupBy {
		fKeys[i] = expr.Col(i, partialSchema[i].Type.Kind)
	}
	combinedSchema := partialSchema // same column layout after combine
	ex.phys = &physAggr{child: ex.phys, keys: fKeys, aggs: finAggs, schema: combinedSchema, kind: "final"}
	ex.phys = &physProject{child: ex.phys, exprs: finProj, schema: outSchema}
	ex.schema = outSchema
	ex.rows = groupEstimate(child.rows)
	ex.partitionedBy = n.GroupBy
	return ex, nil
}

func groupEstimate(rows int64) int64 {
	g := rows/10 + 1
	if g > 100000 {
		g = 100000
	}
	return g
}

// directAggs binds the logical aggregates for single-phase execution.
func directAggs(n *plan.AggregateNode, s vector.Schema) ([]expr.Expr, []exec.AggSpec, error) {
	keys, err := bindAll(n.GroupBy, s)
	if err != nil {
		return nil, nil, err
	}
	aggs := make([]exec.AggSpec, len(n.Aggs))
	for i, a := range n.Aggs {
		spec := exec.AggSpec{}
		switch a.Func {
		case plan.Sum:
			spec.Func = exec.AggSum
		case plan.Count:
			spec.Func = exec.AggCount
		case plan.CountStar:
			spec.Func = exec.AggCountStar
		case plan.Min:
			spec.Func = exec.AggMin
		case plan.Max:
			spec.Func = exec.AggMax
		case plan.Avg:
			spec.Func = exec.AggAvg
		case plan.CountDistinct:
			spec.Func = exec.AggCountDistinct
		default:
			return nil, nil, fmt.Errorf("rewriter: unknown aggregate %q", a.Func)
		}
		if a.Func != plan.CountStar {
			if spec.Arg, err = a.Arg.Bind(s); err != nil {
				return nil, nil, err
			}
		}
		aggs[i] = spec
	}
	return keys, aggs, nil
}

// decomposeAggs lowers logical aggregates into a partial phase, a combining
// final phase and a projection restoring the logical output.
func decomposeAggs(n *plan.AggregateNode, childSchema, outSchema vector.Schema) (
	partialSchema vector.Schema, pKeys []expr.Expr, pAggs []exec.AggSpec,
	finAggs []exec.AggSpec, finProj []expr.Expr, err error) {

	pKeys, err = bindAll(n.GroupBy, childSchema)
	if err != nil {
		return
	}
	partialSchema = make(vector.Schema, 0, len(n.GroupBy)+len(n.Aggs)+2)
	for _, g := range n.GroupBy {
		f, ferr := childSchema.Field(g)
		if ferr != nil {
			err = ferr
			return
		}
		partialSchema = append(partialSchema, f)
	}
	// For each logical agg: its partial columns, the combine spec(s), and
	// the projection expression over the combined schema.
	type slot struct {
		cols []int // positions in partialSchema
		fn   plan.AggFuncName
	}
	var slots []slot
	addPartial := func(name string, t vector.Type, spec exec.AggSpec, fin exec.AggSpec) int {
		pos := len(partialSchema)
		partialSchema = append(partialSchema, vector.Field{Name: name, Type: t})
		pAggs = append(pAggs, spec)
		finAggs = append(finAggs, fin)
		return pos
	}
	for i, a := range n.Aggs {
		var arg expr.Expr
		if a.Func != plan.CountStar {
			if arg, err = a.Arg.Bind(childSchema); err != nil {
				return
			}
		}
		switch a.Func {
		case plan.Sum:
			t := outSchema[len(n.GroupBy)+i].Type
			pos := addPartial(a.Name, t,
				exec.AggSpec{Func: exec.AggSum, Arg: arg},
				exec.AggSpec{Func: exec.AggSum})
			slots = append(slots, slot{cols: []int{pos}, fn: plan.Sum})
		case plan.Count, plan.CountStar:
			pos := addPartial(a.Name, vector.TInt64,
				exec.AggSpec{Func: exec.AggCountStar},
				exec.AggSpec{Func: exec.AggSum})
			slots = append(slots, slot{cols: []int{pos}, fn: plan.Count})
		case plan.Min:
			t := outSchema[len(n.GroupBy)+i].Type
			pos := addPartial(a.Name, t,
				exec.AggSpec{Func: exec.AggMin, Arg: arg},
				exec.AggSpec{Func: exec.AggMin})
			slots = append(slots, slot{cols: []int{pos}, fn: plan.Min})
		case plan.Max:
			t := outSchema[len(n.GroupBy)+i].Type
			pos := addPartial(a.Name, t,
				exec.AggSpec{Func: exec.AggMax, Arg: arg},
				exec.AggSpec{Func: exec.AggMax})
			slots = append(slots, slot{cols: []int{pos}, fn: plan.Max})
		case plan.Avg:
			sumPos := addPartial(a.Name+"$sum", vector.TFloat64,
				exec.AggSpec{Func: exec.AggSum, Arg: toFloat(arg)},
				exec.AggSpec{Func: exec.AggSum})
			cntPos := addPartial(a.Name+"$cnt", vector.TInt64,
				exec.AggSpec{Func: exec.AggCountStar},
				exec.AggSpec{Func: exec.AggSum})
			slots = append(slots, slot{cols: []int{sumPos, cntPos}, fn: plan.Avg})
		default:
			err = fmt.Errorf("rewriter: aggregate %q cannot be decomposed", a.Func)
			return
		}
	}
	// Combine-phase argument binding: finAggs[j] aggregates partial column
	// (len(groupBy)+j) of the exchanged partial rows.
	for j := range finAggs {
		pos := len(n.GroupBy) + j
		finAggs[j].Arg = expr.Col(pos, partialSchema[pos].Type.Kind)
	}
	// Final projection to the logical schema.
	for i := range n.GroupBy {
		finProj = append(finProj, expr.Col(i, partialSchema[i].Type.Kind))
	}
	for _, sl := range slots {
		if sl.fn == plan.Avg {
			finProj = append(finProj, expr.Div(
				expr.Col(sl.cols[0], vector.Float64),
				expr.Col(sl.cols[1], vector.Int64)))
		} else {
			finProj = append(finProj, expr.Col(sl.cols[0], partialSchema[sl.cols[0]].Type.Kind))
		}
	}
	return
}

// toFloat widens an argument for float partial sums.
func toFloat(e expr.Expr) expr.Expr {
	if e.Kind() == vector.Float64 {
		return e
	}
	return expr.Scaled(e, 1)
}

func (c *rewriteCtx) recOrderBy(n *plan.OrderByNode) (result, error) {
	child, err := c.rec(n.Child)
	if err != nil {
		return result{}, err
	}
	keys := make([]exec.SortKey, len(n.Keys))
	for i, k := range n.Keys {
		bound, err := k.Expr.Bind(child.schema)
		if err != nil {
			return result{}, err
		}
		keys[i] = exec.SortKey{Expr: bound, Desc: k.Desc}
	}
	if !child.gathered && n.Limit > 0 {
		// Partial top-N per stream before the union (the TopN(partial) /
		// TopN(final) pair of Figure 5).
		child.phys = &physTopN{child: child.phys, keys: keys, n: n.Limit, kind: "partial"}
	}
	g := c.gather(child)
	if n.Limit > 0 {
		g.phys = &physTopN{child: g.phys, keys: keys, n: n.Limit, kind: "final"}
		g.rows = n.Limit
	} else {
		g.phys = &physSort{child: g.phys, keys: keys}
	}
	return g, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// catAdapter exposes the rewriter catalog as a plan.Catalog.
type catAdapter struct{ c Catalog }

// TableSchema implements plan.Catalog.
func (a catAdapter) TableSchema(name string) (vector.Schema, error) {
	info, err := a.c.Table(name)
	if err != nil {
		return nil, err
	}
	return info.Schema, nil
}

// physOneNode restricts a multi-node result to the streams of one node
// (replicated inputs feeding exchanges or the final gather). Streams on
// other nodes are never opened, so their scans cost nothing.
type physOneNode struct {
	child Phys
	node  int
}

func (p *physOneNode) OutSchema() vector.Schema { return p.child.OutSchema() }
func (p *physOneNode) children() []Phys         { return []Phys{p.child} }
func (p *physOneNode) label() string            { return fmt.Sprintf("OneNode[n%d]", p.node) }

func (p *physOneNode) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	out := make([][]exec.Operator, e.Nodes)
	if len(in[p.node]) > 1 {
		out[p.node] = []exec.Operator{exec.XchgUnion(e.ctx(), in[p.node])}
	} else {
		out[p.node] = in[p.node]
	}
	return out, nil
}
