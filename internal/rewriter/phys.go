// Package rewriter implements the Parallel Rewriter of §5: it turns logical
// plans into distributed physical plans built from per-node parallel
// fragments connected by (D)Xchg operators, applying the paper's rewrite
// rules — local join detection over co-located partitions, replicated build
// sides, partial aggregation before exchanges — under a cost model that
// makes network exchanges expensive.
package rewriter

import (
	"context"
	"fmt"
	"strings"

	"vectorh/internal/exec"
	"vectorh/internal/expr"
	"vectorh/internal/mpi"
	"vectorh/internal/mpp"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// ScanPredSet is the per-column conjunct set a scan receives: MinMax block
// skipping plus — unless SkipOnly — vectorized row filtering inside the
// scan (defined in the plan package, re-exported for providers).
type ScanPredSet = plan.ScanPredSet

// ScanProvider supplies storage-backed scan streams; the engine implements
// it, tests can fake it.
//
// Predicate contract: a non-nil pred with SkipOnly unset means the provider
// MUST return only rows satisfying every conjunct — the rewriter elides the
// Select above the scan when the set subsumes its predicate, so a provider
// that merely skips would leak rows. A SkipOnly set is best-effort IO
// pruning; row filtering stays upstream.
type ScanProvider interface {
	// PartitionScan scans one partition of a partitioned table at a node.
	PartitionScan(table string, part int, cols []string, pred *ScanPredSet, node int) (exec.Operator, error)
	// ReplicatedScan scans a replicated table at a node.
	ReplicatedScan(table string, cols []string, pred *ScanPredSet, node int) (exec.Operator, error)
	// ResponsibleParts lists the partitions a node is responsible for,
	// in ascending order (co-partitioned tables agree on this mapping).
	ResponsibleParts(table string, node int) []int
}

// Env is the instantiation context of one query execution.
type Env struct {
	// Ctx is the query's context; it is threaded into storage scans (by the
	// ScanProvider) and into every local and distributed exchange, whose
	// producers and senders check it per batch. Nil means Background.
	Ctx      context.Context
	Net      *mpi.Network
	Provider ScanProvider
	Nodes    int
	Threads  int // consumer threads per node for exchanges
	Mode     mpp.Mode
	MsgBytes int
	Profile  *Profile // when non-nil, every stream is wrapped in exec.Profiled

	memo map[Phys][][]exec.Operator
}

// StreamProf is one profiled operator stream: the plan node it belongs to,
// its placement (node, stream), and the live wrapper whose atomics accumulate
// while the query runs.
type StreamProf struct {
	Phys   Phys
	Node   int
	Stream int
	Prof   *exec.Profiled
}

// Profile is the per-query sink of profiled streams. Keeping the Phys
// pointer (rather than a formatted key) lets EXPLAIN ANALYZE aggregate the
// parallel streams of each plan node and line actuals up with the cost
// model's estimates, which are also keyed by Phys.
type Profile struct {
	Streams []StreamProf
}

// ByPhys groups the profiled streams by plan node.
func (pr *Profile) ByPhys() map[Phys][]StreamProf {
	m := make(map[Phys][]StreamProf, len(pr.Streams))
	for _, sp := range pr.Streams {
		m[sp.Phys] = append(m[sp.Phys], sp)
	}
	return m
}

func (e *Env) ctx() context.Context {
	if e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

func (e *Env) instantiate(p Phys) ([][]exec.Operator, error) {
	if e.memo == nil {
		e.memo = make(map[Phys][][]exec.Operator)
	}
	if got, ok := e.memo[p]; ok {
		return got, nil
	}
	streams, err := p.instantiate(e)
	if err != nil {
		return nil, err
	}
	if e.Profile != nil {
		for n := range streams {
			for s := range streams[n] {
				key := fmt.Sprintf("%s@n%d.%d", p.label(), n, s)
				prof := &exec.Profiled{Name: key, Child: streams[n][s]}
				e.Profile.Streams = append(e.Profile.Streams, StreamProf{Phys: p, Node: n, Stream: s, Prof: prof})
				streams[n][s] = prof
			}
		}
	}
	e.memo[p] = streams
	return streams, nil
}

// Instantiate builds the operator streams of a physical plan.
func Instantiate(p Phys, env *Env) ([][]exec.Operator, error) { return env.instantiate(p) }

// Phys is a node of the distributed physical plan.
type Phys interface {
	OutSchema() vector.Schema
	label() string
	children() []Phys
	instantiate(e *Env) ([][]exec.Operator, error)
}

// Explain renders the physical plan tree.
func Explain(p Phys) string { return ExplainEst(p, nil) }

// ExplainEst renders the physical plan tree with the cost model's
// cardinality estimates (from RewriteEst) appended as ` ~N rows` on the
// nodes that carry one. The annotations make the chosen join order
// auditable: a join lists its probe child first, and each child shows the
// estimate the ordering decision was based on.
func ExplainEst(p Phys, est map[Phys]int64) string {
	return ExplainFunc(p, func(n Phys) string {
		if rows, ok := est[n]; ok {
			return fmt.Sprintf(" ~%d rows", rows)
		}
		return ""
	})
}

// ExplainFunc renders the physical plan tree, appending annotate(node) to
// each node's label line. EXPLAIN ANALYZE uses this to print estimates and
// measured actuals side by side.
func ExplainFunc(p Phys, annotate func(Phys) string) string {
	var sb strings.Builder
	var rec func(p Phys, depth int)
	rec = func(p Phys, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(p.label())
		if annotate != nil {
			sb.WriteString(annotate(p))
		}
		sb.WriteByte('\n')
		for _, c := range p.children() {
			rec(c, depth+1)
		}
	}
	rec(p, 0)
	return sb.String()
}

// Label exposes a plan node's display label for per-operator reporting.
func Label(p Phys) string { return p.label() }

// --- scans ---

type physScan struct {
	table      string
	cols       []string
	pred       *ScanPredSet
	replicated bool
	schema     vector.Schema
}

func (p *physScan) OutSchema() vector.Schema { return p.schema }
func (p *physScan) children() []Phys         { return nil }

func (p *physScan) label() string {
	kind := "partitioned"
	if p.replicated {
		kind = "replicated"
	}
	s := fmt.Sprintf("MScan[%s] (%s)", p.table, kind)
	if p.pred != nil {
		if p.pred.SkipOnly {
			s += fmt.Sprintf(" skip(%s)", p.pred)
		} else {
			s += fmt.Sprintf(" pred(%s)", p.pred)
		}
	}
	return s
}

func (p *physScan) instantiate(e *Env) ([][]exec.Operator, error) {
	out := make([][]exec.Operator, e.Nodes)
	for n := 0; n < e.Nodes; n++ {
		if p.replicated {
			op, err := e.Provider.ReplicatedScan(p.table, p.cols, p.pred, n)
			if err != nil {
				return nil, err
			}
			out[n] = []exec.Operator{op}
			continue
		}
		for _, part := range e.Provider.ResponsibleParts(p.table, n) {
			op, err := e.Provider.PartitionScan(p.table, part, p.cols, p.pred, n)
			if err != nil {
				return nil, err
			}
			out[n] = append(out[n], op)
		}
	}
	return out, nil
}

// --- per-stream wrappers ---

type physFilter struct {
	child Phys
	pred  expr.Expr
}

func (p *physFilter) OutSchema() vector.Schema { return p.child.OutSchema() }
func (p *physFilter) children() []Phys         { return []Phys{p.child} }
func (p *physFilter) label() string            { return fmt.Sprintf("Select[%s]", p.pred) }

func (p *physFilter) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	return mapStreams(in, func(op exec.Operator) exec.Operator {
		return &exec.Select{Child: op, Pred: p.pred}
	}), nil
}

type physProject struct {
	child  Phys
	exprs  []expr.Expr
	schema vector.Schema
}

func (p *physProject) OutSchema() vector.Schema { return p.schema }
func (p *physProject) children() []Phys         { return []Phys{p.child} }
func (p *physProject) label() string            { return fmt.Sprintf("Project[%d exprs]", len(p.exprs)) }

func (p *physProject) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	return mapStreams(in, func(op exec.Operator) exec.Operator {
		return &exec.Project{Child: op, Exprs: p.exprs}
	}), nil
}

func mapStreams(in [][]exec.Operator, f func(exec.Operator) exec.Operator) [][]exec.Operator {
	out := make([][]exec.Operator, len(in))
	for n, streams := range in {
		for _, s := range streams {
			out[n] = append(out[n], f(s))
		}
	}
	return out
}

// --- joins ---

type physHashJoin struct {
	build, probe Phys
	buildKeys    []expr.Expr
	probeKeys    []expr.Expr
	jt           exec.JoinType
	schema       vector.Schema
	// broadcastBuild: the build side has one stream per node that must be
	// locally replicated to every probe stream (replicated build rule).
	broadcastBuild bool
}

func (p *physHashJoin) OutSchema() vector.Schema { return p.schema }
func (p *physHashJoin) children() []Phys         { return []Phys{p.probe, p.build} }

func (p *physHashJoin) label() string {
	mode := "paired"
	if p.broadcastBuild {
		mode = "replicated-build"
	}
	return fmt.Sprintf("HashJoin[%v,%s]", p.jt, mode)
}

func (p *physHashJoin) instantiate(e *Env) ([][]exec.Operator, error) {
	probe, err := e.instantiate(p.probe)
	if err != nil {
		return nil, err
	}
	build, err := e.instantiate(p.build)
	if err != nil {
		return nil, err
	}
	out := make([][]exec.Operator, e.Nodes)
	for n := 0; n < e.Nodes; n++ {
		bstreams := build[n]
		if p.broadcastBuild {
			if len(bstreams) != 1 {
				return nil, fmt.Errorf("rewriter: replicated build expects 1 stream, got %d", len(bstreams))
			}
			if len(probe[n]) == 0 {
				continue
			}
			bstreams = exec.XchgBroadcast(e.ctx(), bstreams, len(probe[n]))
		}
		if len(bstreams) != len(probe[n]) {
			return nil, fmt.Errorf("rewriter: join stream mismatch on node %d: build %d vs probe %d",
				n, len(bstreams), len(probe[n]))
		}
		for s := range probe[n] {
			out[n] = append(out[n], &exec.HashJoin{
				Build: bstreams[s], Probe: probe[n][s],
				BuildKeys: p.buildKeys, ProbeKeys: p.probeKeys, Type: p.jt,
			})
		}
	}
	return out, nil
}

type physMergeJoin struct {
	left, right Phys
	lkey, rkey  int
	schema      vector.Schema
}

func (p *physMergeJoin) OutSchema() vector.Schema { return p.schema }
func (p *physMergeJoin) children() []Phys         { return []Phys{p.left, p.right} }
func (p *physMergeJoin) label() string            { return "MergeJoin[co-located]" }

func (p *physMergeJoin) instantiate(e *Env) ([][]exec.Operator, error) {
	left, err := e.instantiate(p.left)
	if err != nil {
		return nil, err
	}
	right, err := e.instantiate(p.right)
	if err != nil {
		return nil, err
	}
	out := make([][]exec.Operator, e.Nodes)
	for n := 0; n < e.Nodes; n++ {
		if len(left[n]) != len(right[n]) {
			return nil, fmt.Errorf("rewriter: merge join stream mismatch on node %d", n)
		}
		for s := range left[n] {
			out[n] = append(out[n], &exec.MergeJoin{
				Left: left[n][s], Right: right[n][s], LeftKey: p.lkey, RightKey: p.rkey,
			})
		}
	}
	return out, nil
}

// --- aggregation ---

type physAggr struct {
	child  Phys
	keys   []expr.Expr
	aggs   []exec.AggSpec
	schema vector.Schema
	kind   string // "partial", "final", "direct"
}

func (p *physAggr) OutSchema() vector.Schema { return p.schema }
func (p *physAggr) children() []Phys         { return []Phys{p.child} }
func (p *physAggr) label() string {
	return fmt.Sprintf("Aggr(%s)[%d keys,%d aggs]", p.kind, len(p.keys), len(p.aggs))
}

func (p *physAggr) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	return mapStreams(in, func(op exec.Operator) exec.Operator {
		return &exec.HashAggr{Child: op, Keys: p.keys, Aggs: p.aggs}
	}), nil
}

// --- exchanges ---

type physDXchgHash struct {
	child Phys
	keys  []expr.Expr
}

func (p *physDXchgHash) OutSchema() vector.Schema { return p.child.OutSchema() }
func (p *physDXchgHash) children() []Phys         { return []Phys{p.child} }
func (p *physDXchgHash) label() string            { return "DXchgHashSplit" }

func (p *physDXchgHash) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	consumers := make([]int, e.Nodes)
	for i := range consumers {
		consumers[i] = e.Threads
	}
	ports, _ := mpp.DXchgHashSplit(mpp.Config{Net: e.Net, Mode: e.Mode, MsgBytes: e.MsgBytes, Ctx: e.ctx()},
		in, p.keys, consumers)
	return ports, nil
}

type physDXchgUnion struct {
	child Phys
	node  int
}

func (p *physDXchgUnion) OutSchema() vector.Schema { return p.child.OutSchema() }
func (p *physDXchgUnion) children() []Phys         { return []Phys{p.child} }
func (p *physDXchgUnion) label() string            { return fmt.Sprintf("DXchgUnion->n%d", p.node) }

func (p *physDXchgUnion) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	union, _ := mpp.DXchgUnion(mpp.Config{Net: e.Net, Mode: e.Mode, MsgBytes: e.MsgBytes, Ctx: e.ctx()}, in, p.node)
	out := make([][]exec.Operator, e.Nodes)
	out[p.node] = []exec.Operator{union}
	return out, nil
}

// --- per-stream sorts and limits (always on a single master stream or as
// partial top-N before a union) ---

type physTopN struct {
	child Phys
	keys  []exec.SortKey
	n     int64
	kind  string // "partial" or "final"
}

func (p *physTopN) OutSchema() vector.Schema { return p.child.OutSchema() }
func (p *physTopN) children() []Phys         { return []Phys{p.child} }
func (p *physTopN) label() string            { return fmt.Sprintf("TopN(%s)[%d]", p.kind, p.n) }

func (p *physTopN) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	return mapStreams(in, func(op exec.Operator) exec.Operator {
		return &exec.TopN{Child: op, Keys: p.keys, N: int(p.n)}
	}), nil
}

type physSort struct {
	child Phys
	keys  []exec.SortKey
}

func (p *physSort) OutSchema() vector.Schema { return p.child.OutSchema() }
func (p *physSort) children() []Phys         { return []Phys{p.child} }
func (p *physSort) label() string            { return "Sort" }

func (p *physSort) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	return mapStreams(in, func(op exec.Operator) exec.Operator {
		return &exec.Sort{Child: op, Keys: p.keys}
	}), nil
}

type physLimit struct {
	child Phys
	n     int64
}

func (p *physLimit) OutSchema() vector.Schema { return p.child.OutSchema() }
func (p *physLimit) children() []Phys         { return []Phys{p.child} }
func (p *physLimit) label() string            { return fmt.Sprintf("Limit[%d]", p.n) }

func (p *physLimit) instantiate(e *Env) ([][]exec.Operator, error) {
	in, err := e.instantiate(p.child)
	if err != nil {
		return nil, err
	}
	return mapStreams(in, func(op exec.Operator) exec.Operator {
		return &exec.Limit{Child: op, N: p.n}
	}), nil
}
