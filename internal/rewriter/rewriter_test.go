package rewriter

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"vectorh/internal/exec"
	"vectorh/internal/mpi"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// fakeCat describes two co-partitioned fact tables and one replicated
// dimension, mirroring the lineitem/orders/supplier shape of Figure 5.
type fakeCat struct{}

func (fakeCat) Table(name string) (TableInfo, error) {
	switch name {
	case "fact": // like lineitem: partitioned + clustered on fk
		return TableInfo{
			Name: "fact",
			Schema: vector.Schema{
				{Name: "f_ok", Type: vector.TInt64},
				{Name: "f_sk", Type: vector.TInt64},
				{Name: "f_val", Type: vector.TFloat64},
			},
			Rows: 4000, PartitionKey: "f_ok", Partitions: 4, ClusteredOn: "f_ok",
		}, nil
	case "head": // like orders: partitioned + clustered on pk
		return TableInfo{
			Name: "head",
			Schema: vector.Schema{
				{Name: "h_ok", Type: vector.TInt64},
				{Name: "h_date", Type: vector.TDate},
			},
			Rows: 1000, PartitionKey: "h_ok", Partitions: 4, ClusteredOn: "h_ok",
		}, nil
	case "dim": // like supplier: replicated
		return TableInfo{
			Name: "dim",
			Schema: vector.Schema{
				{Name: "d_sk", Type: vector.TInt64},
				{Name: "d_name", Type: vector.TString},
			},
			Rows: 10, PartitionKey: "", Partitions: 0,
		}, nil
	}
	return TableInfo{}, fmt.Errorf("no table %s", name)
}

// fakeProvider serves deterministic in-memory data. fact has 4000 rows
// (f_ok = i%1000, f_sk = i%10, f_val = 1); head has 1000 rows (h_ok unique);
// dim has 10 rows.
type fakeProvider struct {
	nodes int
	// scansByNode counts partition scans instantiated per node.
	scans []int
}

func (p *fakeProvider) ResponsibleParts(table string, node int) []int {
	// 4 partitions round-robin over nodes.
	var parts []int
	for i := 0; i < 4; i++ {
		if i%p.nodes == node {
			parts = append(parts, i)
		}
	}
	return parts
}

func (p *fakeProvider) PartitionScan(table string, part int, cols []string, pred *ScanPredSet, node int) (exec.Operator, error) {
	p.scans[node]++
	schema, rows := p.tableData(table)
	// Partition by first column % 4.
	filtered := [][]any{}
	for _, r := range rows {
		if int(r[0].(int64))%4 == part {
			filtered = append(filtered, r)
		}
	}
	// Clustered tables are ordered on their key.
	sort.Slice(filtered, func(i, j int) bool { return filtered[i][0].(int64) < filtered[j][0].(int64) })
	return p.source(schema, cols, filtered), nil
}

func (p *fakeProvider) ReplicatedScan(table string, cols []string, pred *ScanPredSet, node int) (exec.Operator, error) {
	schema, rows := p.tableData(table)
	return p.source(schema, cols, rows), nil
}

func (p *fakeProvider) tableData(table string) (vector.Schema, [][]any) {
	cat := fakeCat{}
	info, _ := cat.Table(table)
	var rows [][]any
	switch table {
	case "fact":
		for i := 0; i < 4000; i++ {
			rows = append(rows, []any{int64(i % 1000), int64(i % 10), float64(1)})
		}
	case "head":
		for i := 0; i < 1000; i++ {
			rows = append(rows, []any{int64(i), vector.MustDate("1995-01-01") + int32(i%100)})
		}
	case "dim":
		for i := 0; i < 10; i++ {
			rows = append(rows, []any{int64(i), fmt.Sprintf("dim-%d", i)})
		}
	}
	return info.Schema, rows
}

func (p *fakeProvider) source(schema vector.Schema, cols []string, rows [][]any) exec.Operator {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = schema.Index(c)
	}
	sub := make(vector.Schema, len(cols))
	for i, c := range cols {
		f, _ := schema.Field(c)
		sub[i] = f
	}
	b := vector.NewBatchForSchema(sub, len(rows))
	for _, r := range rows {
		vals := make([]any, len(idx))
		for i, ix := range idx {
			vals[i] = r[ix]
		}
		b.AppendRow(vals...)
	}
	return &exec.BatchSource{Batches: []*vector.Batch{b}}
}

func run(t *testing.T, n plan.Node, opts Options) ([][]any, *fakeProvider, string) {
	t.Helper()
	p, err := Rewrite(n, fakeCat{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	prov := &fakeProvider{nodes: opts.Nodes, scans: make([]int, opts.Nodes)}
	env := &Env{
		Net: mpi.NewNetwork(opts.Nodes), Provider: prov,
		Nodes: opts.Nodes, Threads: opts.Threads, MsgBytes: 4096,
	}
	streams, err := Instantiate(p, env)
	if err != nil {
		t.Fatalf("instantiate: %v\n%s", err, Explain(p))
	}
	// The root must be exactly one stream at the master.
	var root exec.Operator
	count := 0
	for n := range streams {
		for _, s := range streams[n] {
			root = s
			count++
		}
	}
	if count != 1 {
		t.Fatalf("root has %d streams, want 1\n%s", count, Explain(p))
	}
	rows, err := exec.Collect(root)
	if err != nil {
		t.Fatalf("collect: %v\n%s", err, Explain(p))
	}
	return rows, prov, Explain(p)
}

func TestRewriteSimpleScanGather(t *testing.T) {
	rows, _, _ := run(t, plan.Scan("fact", "f_ok"), DefaultOptions(2, 2))
	if len(rows) != 4000 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestRewriteFilterProject(t *testing.T) {
	q := plan.Project(
		plan.Filter(plan.Scan("fact", "f_ok", "f_val"), plan.LT(plan.Col("f_ok"), plan.Int(10))),
		plan.As("x", plan.Mul(plan.Col("f_ok"), plan.Int(2))),
	)
	rows, _, _ := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 40 { // 10 keys × 4 copies
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestRewriteColocatedMergeJoin(t *testing.T) {
	q := plan.Join(plan.InnerJoin, plan.Scan("fact", "f_ok", "f_val"), plan.Scan("head", "h_ok", "h_date"),
		[]string{"f_ok"}, []string{"h_ok"})
	rows, _, explain := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 4000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(explain, "MergeJoin[co-located]") {
		t.Fatalf("expected a co-located merge join:\n%s", explain)
	}
	if strings.Contains(explain, "DXchgHashSplit") {
		t.Fatalf("co-located join should not exchange:\n%s", explain)
	}
}

func TestRewriteLocalJoinDisabledUsesExchange(t *testing.T) {
	opts := DefaultOptions(2, 2)
	opts.LocalJoin = false
	q := plan.Join(plan.InnerJoin, plan.Scan("fact", "f_ok", "f_val"), plan.Scan("head", "h_ok", "h_date"),
		[]string{"f_ok"}, []string{"h_ok"})
	rows, _, explain := run(t, q, opts)
	if len(rows) != 4000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(explain, "DXchgHashSplit") {
		t.Fatalf("expected exchanges without the local-join rule:\n%s", explain)
	}
}

func TestRewriteReplicatedBuildJoin(t *testing.T) {
	q := plan.Join(plan.InnerJoin, plan.Scan("fact", "f_sk", "f_val"), plan.Scan("dim", "d_sk", "d_name"),
		[]string{"f_sk"}, []string{"d_sk"})
	rows, _, explain := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 4000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(explain, "replicated-build") {
		t.Fatalf("expected replicated build:\n%s", explain)
	}
	if strings.Contains(explain, "DXchgHashSplit") {
		t.Fatalf("replicated build should not exchange:\n%s", explain)
	}
	// Disabling the rule falls back to exchanges, same answer.
	opts := DefaultOptions(2, 2)
	opts.ReplicateBuild = false
	rows2, _, explain2 := run(t, q, opts)
	if len(rows2) != 4000 {
		t.Fatalf("rows = %d", len(rows2))
	}
	if !strings.Contains(explain2, "DXchgHashSplit") {
		t.Fatalf("expected exchange without replicate-build:\n%s", explain2)
	}
}

func TestRewriteAggregationPartitionLocal(t *testing.T) {
	// GROUP BY on the partition key: no exchange of data rows needed
	// (only the final gather).
	q := plan.Aggregate(plan.Scan("fact", "f_ok", "f_val"), []string{"f_ok"},
		plan.A("total", plan.Sum, plan.Col("f_val")))
	rows, _, explain := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 1000 {
		t.Fatalf("groups = %d", len(rows))
	}
	if strings.Contains(explain, "DXchgHashSplit") {
		t.Fatalf("partition-local aggregation should not hash-exchange:\n%s", explain)
	}
	for _, r := range rows {
		if r[1].(float64) != 4 {
			t.Fatalf("group %v", r)
		}
	}
}

func TestRewriteAggregationPartialFinal(t *testing.T) {
	// GROUP BY on a non-partition column: partial + exchange + final.
	q := plan.Aggregate(plan.Scan("fact", "f_sk", "f_val"), []string{"f_sk"},
		plan.A("total", plan.Sum, plan.Col("f_val")),
		plan.AStar("cnt"),
		plan.A("m", plan.Avg, plan.Col("f_val")))
	rows, _, explain := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 10 {
		t.Fatalf("groups = %d", len(rows))
	}
	if !strings.Contains(explain, "Aggr(partial)") || !strings.Contains(explain, "Aggr(final)") {
		t.Fatalf("expected partial+final aggregation:\n%s", explain)
	}
	for _, r := range rows {
		if r[1].(float64) != 400 || r[2].(int64) != 400 || r[3].(float64) != 1 {
			t.Fatalf("group %v", r)
		}
	}
	// Without the rule: rows are exchanged and aggregated once.
	opts := DefaultOptions(2, 2)
	opts.PartialAgg = false
	rows2, _, explain2 := run(t, q, opts)
	if len(rows2) != 10 {
		t.Fatalf("groups = %d", len(rows2))
	}
	if strings.Contains(explain2, "Aggr(partial)") {
		t.Fatalf("partial agg should be disabled:\n%s", explain2)
	}
}

func TestRewriteGlobalAggregate(t *testing.T) {
	q := plan.Aggregate(plan.Scan("fact", "f_val"), nil,
		plan.A("total", plan.Sum, plan.Col("f_val")), plan.AStar("cnt"))
	rows, _, _ := run(t, q, DefaultOptions(3, 2))
	if len(rows) != 1 || rows[0][0].(float64) != 4000 || rows[0][1].(int64) != 4000 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRewriteCountDistinctForcesRowExchange(t *testing.T) {
	q := plan.Aggregate(plan.Scan("fact", "f_sk", "f_ok"), []string{"f_sk"},
		plan.A("d", plan.CountDistinct, plan.Col("f_ok")))
	rows, _, explain := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 10 {
		t.Fatalf("groups = %d", len(rows))
	}
	if strings.Contains(explain, "Aggr(partial)") {
		t.Fatalf("count distinct must not use partial aggregation:\n%s", explain)
	}
	for _, r := range rows {
		if r[1].(int64) != 100 {
			t.Fatalf("group %v", r)
		}
	}
}

func TestRewriteTopNWithPartials(t *testing.T) {
	q := plan.Top(plan.Scan("fact", "f_ok", "f_val"), 5, plan.Desc(plan.Col("f_ok")))
	rows, _, explain := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0].(int64) != 999 {
		t.Fatalf("rows = %v", rows)
	}
	if !strings.Contains(explain, "TopN(partial)") || !strings.Contains(explain, "TopN(final)") {
		t.Fatalf("expected partial/final TopN:\n%s", explain)
	}
}

func TestRewriteOrderByAndLimit(t *testing.T) {
	q := plan.Limit(plan.OrderBy(plan.Scan("dim", "d_sk", "d_name"), plan.Asc(plan.Col("d_name"))), 3)
	rows, _, _ := run(t, q, DefaultOptions(2, 2))
	if len(rows) != 3 || rows[0][1].(string) != "dim-0" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRewriteSemiAntiJoin(t *testing.T) {
	semi := plan.Join(plan.SemiJoin, plan.Scan("head", "h_ok"),
		plan.Filter(plan.Scan("fact", "f_ok"), plan.LT(plan.Col("f_ok"), plan.Int(100))),
		[]string{"h_ok"}, []string{"f_ok"})
	rows, _, _ := run(t, semi, DefaultOptions(2, 2))
	if len(rows) != 100 {
		t.Fatalf("semi rows = %d", len(rows))
	}
	anti := plan.Join(plan.AntiJoin, plan.Scan("head", "h_ok"),
		plan.Filter(plan.Scan("fact", "f_ok"), plan.LT(plan.Col("f_ok"), plan.Int(100))),
		[]string{"h_ok"}, []string{"f_ok"})
	rows, _, _ = run(t, anti, DefaultOptions(2, 2))
	if len(rows) != 900 {
		t.Fatalf("anti rows = %d", len(rows))
	}
}

func TestRewriteLeftOuterJoinMatchedColumn(t *testing.T) {
	// head rows with no fact rows >= 1000 never match.
	q := plan.Join(plan.LeftOuterJoin, plan.Scan("head", "h_ok"),
		plan.Filter(plan.Scan("fact", "f_ok", "f_val"), plan.LT(plan.Col("f_ok"), plan.Int(2))),
		[]string{"h_ok"}, []string{"f_ok"})
	rows, _, _ := run(t, q, DefaultOptions(2, 2))
	matched := 0
	for _, r := range rows {
		if r[len(r)-1].(bool) {
			matched++
		}
	}
	if matched != 8 { // keys 0,1 × 4 copies
		t.Fatalf("matched = %d of %d", matched, len(rows))
	}
	if len(rows) != 8+998 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestRewriteReplicatedJoinReplicated(t *testing.T) {
	q := plan.Join(plan.InnerJoin, plan.Scan("dim", "d_sk", "d_name"), plan.Scan("dim", "d_sk"),
		[]string{"d_sk"}, []string{"d_sk"})
	rows, _, explain := run(t, q, DefaultOptions(3, 2))
	if len(rows) != 10 {
		t.Fatalf("rows = %d\n%s", len(rows), explain)
	}
	if strings.Contains(explain, "DXchg") && strings.Count(explain, "DXchg") > 0 {
		// Only the final gather may appear; replicated⋈replicated must
		// not hash-exchange.
		if strings.Contains(explain, "DXchgHashSplit") {
			t.Fatalf("replicated join should be local:\n%s", explain)
		}
	}
}

func TestExplainContainsScans(t *testing.T) {
	p, err := Rewrite(plan.Scan("fact", "f_ok"), fakeCat{}, DefaultOptions(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(p), "MScan[fact]") {
		t.Fatalf("explain:\n%s", Explain(p))
	}
}
