package tpch

import (
	"sort"
	"testing"

	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/sql"
)

// TestCompressedExecParityTPCH is the acceptance gate of the
// execute-on-compressed-data path: every TPC-H query with SQL text must
// return rows identical with compressed-domain execution on (dictionary
// verdicts, code-space sieves and join/group keys, frame-bounds skips) and
// off (fully materialized value-space pipeline), on clean storage and again
// after the RF1/RF2 refresh streams have pushed tail inserts and deletes
// through the PDT layers and forced update propagation — so the value-space
// fallbacks on PDT-merged vectors and re-encoded blocks are covered, not
// just clean dictionary-backed scans.
func TestCompressedExecParityTPCH(t *testing.T) {
	const sf = 0.01
	d := Generate(sf, 9)
	names := []string{"n1", "n2", "n3"}
	eng, err := core.New(core.Config{
		Nodes:          names,
		ThreadsPerNode: 2,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
		// Low flush threshold: the refresh volume crosses it, so the
		// post-refresh phase sees propagated blocks, not just PDT merges.
		PDTFlushBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadIntoEngine(eng, d, 6); err != nil {
		t.Fatal(err)
	}

	var qs []int
	for q := range SQLQueries {
		qs = append(qs, q)
	}
	sort.Ints(qs)

	compareAll := func(phase string) {
		t.Helper()
		on, off := true, false
		for _, q := range qs {
			p, err := sql.Compile(SQLQueries[q], eng)
			if err != nil {
				t.Fatalf("%s Q%02d compile: %v", phase, q, err)
			}
			rOn, err := eng.QueryOpts(p, core.QueryOptions{CompressedExec: &on})
			if err != nil {
				t.Fatalf("%s Q%02d code-space: %v", phase, q, err)
			}
			rOff, err := eng.QueryOpts(p, core.QueryOptions{CompressedExec: &off})
			if err != nil {
				t.Fatalf("%s Q%02d value-space: %v", phase, q, err)
			}
			if !rowsIdentical(rOn.Rows, rOff.Rows) {
				t.Fatalf("%s Q%02d diverged: code-space %d rows vs value-space %d rows",
					phase, q, len(rOn.Rows), len(rOff.Rows))
			}
		}
	}

	compareAll("clean")

	// RF1 (trickle inserts) + RF2 (deletes) as SQL DML, as in §8.
	count := int(1500 * sf)
	if count < 5 {
		count = 5
	}
	for _, s := range RF1SQL(d, count, 21) {
		if _, err := sql.Exec(s, eng); err != nil {
			t.Fatalf("RF1: %v", err)
		}
	}
	for _, s := range RF2SQL(RF2Keys(d, count, 22)) {
		if _, err := sql.Exec(s, eng); err != nil {
			t.Fatalf("RF2: %v", err)
		}
	}
	propagated := 0
	for _, table := range []string{"orders", "lineitem"} {
		for p := 0; p < 6; p++ {
			if m := eng.PartitionMetaForTest(table, p); m != nil && m.Gen > 0 {
				propagated++
			}
		}
	}
	if propagated == 0 {
		t.Fatal("refresh did not trigger update propagation; the post-refresh phase would not cover re-encoded blocks")
	}

	compareAll("post-refresh")
}
