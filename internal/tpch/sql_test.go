package tpch

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"vectorh"
	"vectorh/internal/colstore"
)

func newDB(t *testing.T) *vectorh.DB {
	t.Helper()
	db, err := vectorh.Open(vectorh.Config{
		Nodes:          []string{"n1", "n2", "n3"},
		ThreadsPerNode: 2,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSQLQueriesMatchBuilders cross-validates the SQL text front-end: every
// query in SQLQueries must return rows identical to its hand-built plan
// counterpart when run through vectorh.DB.QuerySQL on the same engine.
func TestSQLQueriesMatchBuilders(t *testing.T) {
	if len(SQLQueries) != NumQueries {
		t.Fatalf("want SQL text for all %d TPC-H queries, have %d", NumQueries, len(SQLQueries))
	}
	d := Generate(0.004, 7)
	db := newDB(t)
	if err := LoadIntoEngine(db.Engine, d, 6); err != nil {
		t.Fatal(err)
	}
	var qs []int
	for q := range SQLQueries {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			pb, err := BuildQuery(q, db.Engine)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want, err := db.Query(pb)
			if err != nil {
				t.Fatalf("builder plan: %v", err)
			}
			got, err := db.QuerySQL(SQLQueries[q])
			if err != nil {
				t.Fatalf("QuerySQL: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("rows: sql %d vs builder %d", len(got), len(want))
			}
			ng, nw := normalize(got), normalize(want)
			for i := range ng {
				if ng[i] != nw[i] {
					t.Fatalf("row %d differs:\n sql     %s\n builder %s", i, ng[i], nw[i])
				}
			}
		})
	}
}

// TestSQLExplain sanity-checks that SQL-born plans run through the same
// parallel rewriting as builder plans (exchanges present) and that MinMax
// skip hints survive lowering into the scans.
func TestSQLExplain(t *testing.T) {
	d := Generate(0.002, 7)
	db := newDB(t)
	if err := LoadIntoEngine(db.Engine, d, 6); err != nil {
		t.Fatal(err)
	}
	ex, err := db.ExplainSQL(SQLQueries[3])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Xchg", "HashJoin", "Scan"} {
		if !strings.Contains(ex, want) {
			t.Errorf("explain lacks %q:\n%s", want, ex)
		}
	}
	// Q3's o_orderdate range predicate must reach the orders scan as a
	// MinMax skip hint (rendered as part of the scan operator line).
	if !strings.Contains(ex, "orders") {
		t.Errorf("explain lacks orders scan:\n%s", ex)
	}
}
