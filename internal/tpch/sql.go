package tpch

// SQLQueries expresses a subset of the TPC-H workload as SQL text for the
// internal/sql front-end. Each entry lowers to the same answer as its
// hand-built plan counterpart in queries.go; TestSQLQueriesMatchBuilders
// cross-validates them row for row. Select lists follow the builder output
// column order (group columns first), which is what makes the row-identity
// comparison direct.
//
// The remaining queries need features outside the front-end's SELECT subset:
// scalar subqueries (Q11, Q15, Q22), semi/anti joins from EXISTS (Q4, Q16,
// Q18, Q20, Q21), self-join aliasing with projection renames (Q2, Q7, Q8,
// Q13, Q17), or substring (Q22).
var SQLQueries = map[int]string{
	1: `select l_returnflag, l_linestatus,
	       sum(l_quantity) as sum_qty,
	       sum(l_extendedprice) as sum_base_price,
	       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
	       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
	       avg(l_quantity) as avg_qty,
	       avg(l_extendedprice) as avg_price,
	       avg(l_discount) as avg_disc,
	       count(*) as count_order
	from lineitem
	where l_shipdate <= date '1998-09-02'
	group by l_returnflag, l_linestatus
	order by l_returnflag, l_linestatus`,

	3: `select l_orderkey, o_orderdate, o_shippriority,
	       sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	where c_mktsegment = 'BUILDING'
	  and o_orderdate < date '1995-03-15'
	  and l_shipdate > date '1995-03-15'
	group by l_orderkey, o_orderdate, o_shippriority
	order by revenue desc, o_orderdate
	limit 10`,

	5: `select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	  join supplier on l_suppkey = s_suppkey and c_nationkey = s_nationkey
	  join nation on s_nationkey = n_nationkey
	  join region on n_regionkey = r_regionkey
	where r_name = 'ASIA'
	  and o_orderdate >= date '1994-01-01'
	  and o_orderdate < date '1995-01-01'
	group by n_name
	order by revenue desc`,

	6: `select sum(l_extendedprice * l_discount) as revenue
	from lineitem
	where l_shipdate >= date '1994-01-01'
	  and l_shipdate < date '1995-01-01'
	  and l_discount between 0.05 and 0.07
	  and l_quantity < 24`,

	9: `select n_name as nation, year(o_orderdate) as o_year,
	       sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit
	from lineitem
	  join part on l_partkey = p_partkey
	  join partsupp on l_partkey = ps_partkey and l_suppkey = ps_suppkey
	  join orders on l_orderkey = o_orderkey
	  join supplier on l_suppkey = s_suppkey
	  join nation on s_nationkey = n_nationkey
	where p_name like '%green%'
	group by nation, o_year
	order by nation, o_year desc`,

	10: `select c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment,
	       sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	  join nation on c_nationkey = n_nationkey
	where l_returnflag = 'R'
	  and o_orderdate >= date '1993-10-01'
	  and o_orderdate < date '1993-10-01' + interval '3' month
	group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
	order by revenue desc, c_custkey
	limit 20`,

	12: `select l_shipmode,
	       sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end) as high_line_count,
	       sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 0 else 1 end) as low_line_count
	from lineitem
	  join orders on l_orderkey = o_orderkey
	where l_shipmode in ('MAIL', 'SHIP')
	  and l_commitdate < l_receiptdate
	  and l_shipdate < l_commitdate
	  and l_receiptdate >= date '1994-01-01'
	  and l_receiptdate < date '1995-01-01'
	group by l_shipmode
	order by l_shipmode`,

	14: `select 100.00 * sum(case when p_type like 'PROMO%'
	                        then l_extendedprice * (1 - l_discount) else 0 end)
	       / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
	from lineitem
	  join part on l_partkey = p_partkey
	where l_shipdate >= date '1995-09-01'
	  and l_shipdate < date '1995-09-01' + interval '1' month`,

	19: `select sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join part on l_partkey = p_partkey and (
	       (p_brand = 'Brand#12'
	        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
	        and l_quantity between 1 and 11 and p_size between 1 and 5)
	    or (p_brand = 'Brand#23'
	        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
	        and l_quantity between 10 and 20 and p_size between 1 and 10)
	    or (p_brand = 'Brand#34'
	        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
	        and l_quantity between 20 and 30 and p_size between 1 and 15))
	where l_shipmode in ('AIR', 'REG AIR')
	  and l_shipinstruct = 'DELIVER IN PERSON'`,
}
