package tpch

// SQLQueries expresses the full 22-query TPC-H workload as SQL text for the
// internal/sql front-end. Each entry lowers to the same answer as its
// hand-built plan counterpart in queries.go; TestSQLQueriesMatchBuilders
// cross-validates them row for row. Select lists follow the builder output
// column order (group columns first), which is what makes the row-identity
// comparison direct.
//
// Two texts hedge float determinism against their builders: the builders for
// Q15 run the inner aggregation through the Runner and compare against the
// literal maximum with a 1e-9 slack, so the SQL mirrors that slack
// (`* 0.999999999`) rather than demanding bit-equality between two
// independently parallel float sums. Decimal columns projected through
// `* 1.00` (Q2, Q22) force the scaled-float representation the builders
// produce via plan.Dec.
var SQLQueries = map[int]string{
	2: `select s_acctbal * 1.00 as s_acctbal, s_name, n_name, p_partkey, p_mfgr,
	       s_address, s_phone, s_comment
	from partsupp
	  join part on ps_partkey = p_partkey
	  join supplier on ps_suppkey = s_suppkey
	  join nation on s_nationkey = n_nationkey
	  join region on n_regionkey = r_regionkey
	where p_size = 15
	  and p_type like '%BRASS'
	  and r_name = 'EUROPE'
	  and ps_supplycost = (
	      select min(ps_supplycost)
	      from partsupp
	        join supplier on ps_suppkey = s_suppkey
	        join nation on s_nationkey = n_nationkey
	        join region on n_regionkey = r_regionkey
	      where ps_partkey = p_partkey
	        and r_name = 'EUROPE')
	order by s_acctbal desc, n_name, s_name, p_partkey
	limit 100`,

	4: `select o_orderpriority, count(*) as order_count
	from orders
	where o_orderdate >= date '1993-07-01'
	  and o_orderdate < date '1993-07-01' + interval '3' month
	  and exists (
	      select * from lineitem
	      where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)
	group by o_orderpriority
	order by o_orderpriority`,

	7: `select n1.n_name as supp_nation, n2.n_name as cust_nation,
	       year(l_shipdate) as l_year,
	       sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	  join supplier on l_suppkey = s_suppkey
	  join nation n1 on s_nationkey = n1.n_nationkey
	  join nation n2 on c_nationkey = n2.n_nationkey
	where ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
	    or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
	  and l_shipdate between date '1995-01-01' and date '1996-12-31'
	group by supp_nation, cust_nation, l_year
	order by supp_nation, cust_nation, l_year`,

	8: `select year(o_orderdate) as o_year,
	       sum(case when n2.n_name = 'BRAZIL'
	                then l_extendedprice * (1 - l_discount) else 0 end)
	         / sum(l_extendedprice * (1 - l_discount)) as mkt_share
	from lineitem
	  join part on l_partkey = p_partkey
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	  join nation n1 on c_nationkey = n1.n_nationkey
	  join region on n1.n_regionkey = r_regionkey
	  join supplier on l_suppkey = s_suppkey
	  join nation n2 on s_nationkey = n2.n_nationkey
	where p_type = 'ECONOMY ANODIZED STEEL'
	  and r_name = 'AMERICA'
	  and o_orderdate between date '1995-01-01' and date '1996-12-31'
	group by o_year
	order by o_year`,

	11: `select ps_partkey, sum(ps_supplycost * ps_availqty) as value
	from partsupp
	  join supplier on ps_suppkey = s_suppkey
	  join nation on s_nationkey = n_nationkey
	where n_name = 'GERMANY'
	group by ps_partkey
	having sum(ps_supplycost * ps_availqty) > (
	    select sum(ps_supplycost * ps_availqty) * 0.0001
	    from partsupp
	      join supplier on ps_suppkey = s_suppkey
	      join nation on s_nationkey = n_nationkey
	    where n_name = 'GERMANY')
	order by value desc`,

	13: `select c_count, count(*) as custdist
	from (select c_custkey, count(o_orderkey) as c_count
	      from customer left outer join orders
	        on c_custkey = o_custkey and o_comment not like '%special%requests%'
	      group by c_custkey) c_orders
	group by c_count
	order by custdist desc, c_count desc`,

	15: `select s_suppkey, s_name, s_address, s_phone, total_revenue
	from supplier
	  join (select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
	        from lineitem
	        where l_shipdate >= date '1996-01-01'
	          and l_shipdate < date '1996-01-01' + interval '3' month
	        group by l_suppkey) revenue on s_suppkey = l_suppkey
	where total_revenue >= (
	    select max(total_revenue) * 0.999999999
	    from (select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
	          from lineitem
	          where l_shipdate >= date '1996-01-01'
	            and l_shipdate < date '1996-01-01' + interval '3' month
	          group by l_suppkey) r)
	order by s_suppkey`,

	16: `select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
	from partsupp
	  join part on ps_partkey = p_partkey
	where p_brand <> 'Brand#45'
	  and p_type not like 'MEDIUM POLISHED%'
	  and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
	  and ps_suppkey not in (
	      select s_suppkey from supplier
	      where s_comment like '%Customer%Complaints%')
	group by p_brand, p_type, p_size
	order by supplier_cnt desc, p_brand, p_type, p_size`,

	17: `select sum(l_extendedprice) / 7 as avg_yearly
	from lineitem
	  join part on p_partkey = l_partkey
	where p_brand = 'Brand#23'
	  and p_container = 'MED BOX'
	  and l_quantity < (
	      select 0.2 * avg(l_quantity) from lineitem l2
	      where l2.l_partkey = p_partkey)`,

	18: `select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
	       sum(l_quantity) as sum_qty
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	where o_orderkey in (
	    select l_orderkey from lineitem
	    group by l_orderkey
	    having sum(l_quantity) > 300)
	group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
	order by o_totalprice desc, o_orderdate
	limit 100`,

	20: `select s_name, s_address
	from supplier
	  join nation on s_nationkey = n_nationkey
	where n_name = 'CANADA'
	  and s_suppkey in (
	      select ps_suppkey from partsupp
	      where ps_partkey in (
	            select p_partkey from part where p_name like 'forest%')
	        and ps_availqty > (
	            select 0.5 * sum(l_quantity) from lineitem
	            where l_partkey = ps_partkey
	              and l_suppkey = ps_suppkey
	              and l_shipdate >= date '1994-01-01'
	              and l_shipdate < date '1995-01-01'))
	order by s_name`,

	21: `select s_name, count(*) as numwait
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join supplier on l_suppkey = s_suppkey
	  join nation on s_nationkey = n_nationkey
	  join (select l_orderkey as t_orderkey, count(distinct l_suppkey) as nsupp
	        from lineitem group by l_orderkey) total on l_orderkey = t_orderkey
	  join (select l_orderkey as lt_orderkey, count(distinct l_suppkey) as nlate
	        from lineitem where l_receiptdate > l_commitdate
	        group by l_orderkey) late on l_orderkey = lt_orderkey
	where o_orderstatus = 'F'
	  and l_receiptdate > l_commitdate
	  and n_name = 'SAUDI ARABIA'
	  and nsupp > 1
	  and nlate = 1
	group by s_name
	order by numwait desc, s_name
	limit 100`,

	22: `select cntrycode, count(*) as numcust, sum(acctbal) as totacctbal
	from (select substring(c_phone from 1 for 2) as cntrycode,
	             c_acctbal * 1.00 as acctbal, c_custkey
	      from customer
	      where substring(c_phone from 1 for 2)
	            in ('13', '31', '23', '29', '30', '18', '17')) custsale
	where acctbal > (
	    select avg(c_acctbal * 1.00) from customer
	    where c_acctbal > 0.00
	      and substring(c_phone from 1 for 2)
	          in ('13', '31', '23', '29', '30', '18', '17'))
	  and not exists (
	      select * from orders where o_custkey = c_custkey)
	group by cntrycode
	order by cntrycode`,

	1: `select l_returnflag, l_linestatus,
	       sum(l_quantity) as sum_qty,
	       sum(l_extendedprice) as sum_base_price,
	       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
	       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
	       avg(l_quantity) as avg_qty,
	       avg(l_extendedprice) as avg_price,
	       avg(l_discount) as avg_disc,
	       count(*) as count_order
	from lineitem
	where l_shipdate <= date '1998-09-02'
	group by l_returnflag, l_linestatus
	order by l_returnflag, l_linestatus`,

	3: `select l_orderkey, o_orderdate, o_shippriority,
	       sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	where c_mktsegment = 'BUILDING'
	  and o_orderdate < date '1995-03-15'
	  and l_shipdate > date '1995-03-15'
	group by l_orderkey, o_orderdate, o_shippriority
	order by revenue desc, o_orderdate
	limit 10`,

	5: `select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	  join supplier on l_suppkey = s_suppkey and c_nationkey = s_nationkey
	  join nation on s_nationkey = n_nationkey
	  join region on n_regionkey = r_regionkey
	where r_name = 'ASIA'
	  and o_orderdate >= date '1994-01-01'
	  and o_orderdate < date '1995-01-01'
	group by n_name
	order by revenue desc`,

	6: `select sum(l_extendedprice * l_discount) as revenue
	from lineitem
	where l_shipdate >= date '1994-01-01'
	  and l_shipdate < date '1995-01-01'
	  and l_discount between 0.05 and 0.07
	  and l_quantity < 24`,

	9: `select n_name as nation, year(o_orderdate) as o_year,
	       sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit
	from lineitem
	  join part on l_partkey = p_partkey
	  join partsupp on l_partkey = ps_partkey and l_suppkey = ps_suppkey
	  join orders on l_orderkey = o_orderkey
	  join supplier on l_suppkey = s_suppkey
	  join nation on s_nationkey = n_nationkey
	where p_name like '%green%'
	group by nation, o_year
	order by nation, o_year desc`,

	10: `select c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment,
	       sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join orders on l_orderkey = o_orderkey
	  join customer on o_custkey = c_custkey
	  join nation on c_nationkey = n_nationkey
	where l_returnflag = 'R'
	  and o_orderdate >= date '1993-10-01'
	  and o_orderdate < date '1993-10-01' + interval '3' month
	group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
	order by revenue desc, c_custkey
	limit 20`,

	12: `select l_shipmode,
	       sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end) as high_line_count,
	       sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 0 else 1 end) as low_line_count
	from lineitem
	  join orders on l_orderkey = o_orderkey
	where l_shipmode in ('MAIL', 'SHIP')
	  and l_commitdate < l_receiptdate
	  and l_shipdate < l_commitdate
	  and l_receiptdate >= date '1994-01-01'
	  and l_receiptdate < date '1995-01-01'
	group by l_shipmode
	order by l_shipmode`,

	14: `select 100.00 * sum(case when p_type like 'PROMO%'
	                        then l_extendedprice * (1 - l_discount) else 0 end)
	       / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
	from lineitem
	  join part on l_partkey = p_partkey
	where l_shipdate >= date '1995-09-01'
	  and l_shipdate < date '1995-09-01' + interval '1' month`,

	19: `select sum(l_extendedprice * (1 - l_discount)) as revenue
	from lineitem
	  join part on l_partkey = p_partkey and (
	       (p_brand = 'Brand#12'
	        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
	        and l_quantity between 1 and 11 and p_size between 1 and 5)
	    or (p_brand = 'Brand#23'
	        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
	        and l_quantity between 10 and 20 and p_size between 1 and 10)
	    or (p_brand = 'Brand#34'
	        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
	        and l_quantity between 20 and 30 and p_size between 1 and 15))
	where l_shipmode in ('AIR', 'REG AIR')
	  and l_shipinstruct = 'DELIVER IN PERSON'`,
}
