// Package tpch implements the TPC-H workload of §8: a deterministic dbgen
// clone producing all eight tables at any scale factor, the 22 benchmark
// queries expressed as logical plans, and the RF1/RF2 refresh functions used
// by the update-impact experiment. The generator follows dbgen's value
// domains and correlations (dates, priorities, the partsupp supplier
// formula, comment grammar) with dense surrogate keys.
package tpch

import (
	"fmt"
	"math/rand"

	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

// Scale factors: rows per table at SF=1.
const (
	SupplierPerSF = 10_000
	CustomerPerSF = 150_000
	PartPerSF     = 200_000
	OrdersPerSF   = 1_500_000
)

// Schemas of the eight TPC-H tables.
var (
	RegionSchema = vector.Schema{
		{Name: "r_regionkey", Type: vector.TInt64},
		{Name: "r_name", Type: vector.TString},
		{Name: "r_comment", Type: vector.TString},
	}
	NationSchema = vector.Schema{
		{Name: "n_nationkey", Type: vector.TInt64},
		{Name: "n_name", Type: vector.TString},
		{Name: "n_regionkey", Type: vector.TInt64},
		{Name: "n_comment", Type: vector.TString},
	}
	SupplierSchema = vector.Schema{
		{Name: "s_suppkey", Type: vector.TInt64},
		{Name: "s_name", Type: vector.TString},
		{Name: "s_address", Type: vector.TString},
		{Name: "s_nationkey", Type: vector.TInt64},
		{Name: "s_phone", Type: vector.TString},
		{Name: "s_acctbal", Type: vector.TDecimal},
		{Name: "s_comment", Type: vector.TString},
	}
	CustomerSchema = vector.Schema{
		{Name: "c_custkey", Type: vector.TInt64},
		{Name: "c_name", Type: vector.TString},
		{Name: "c_address", Type: vector.TString},
		{Name: "c_nationkey", Type: vector.TInt64},
		{Name: "c_phone", Type: vector.TString},
		{Name: "c_acctbal", Type: vector.TDecimal},
		{Name: "c_mktsegment", Type: vector.TString},
		{Name: "c_comment", Type: vector.TString},
	}
	PartSchema = vector.Schema{
		{Name: "p_partkey", Type: vector.TInt64},
		{Name: "p_name", Type: vector.TString},
		{Name: "p_mfgr", Type: vector.TString},
		{Name: "p_brand", Type: vector.TString},
		{Name: "p_type", Type: vector.TString},
		{Name: "p_size", Type: vector.TInt32},
		{Name: "p_container", Type: vector.TString},
		{Name: "p_retailprice", Type: vector.TDecimal},
		{Name: "p_comment", Type: vector.TString},
	}
	PartSuppSchema = vector.Schema{
		{Name: "ps_partkey", Type: vector.TInt64},
		{Name: "ps_suppkey", Type: vector.TInt64},
		{Name: "ps_availqty", Type: vector.TInt32},
		{Name: "ps_supplycost", Type: vector.TDecimal},
		{Name: "ps_comment", Type: vector.TString},
	}
	OrdersSchema = vector.Schema{
		{Name: "o_orderkey", Type: vector.TInt64},
		{Name: "o_custkey", Type: vector.TInt64},
		{Name: "o_orderstatus", Type: vector.TString},
		{Name: "o_totalprice", Type: vector.TDecimal},
		{Name: "o_orderdate", Type: vector.TDate},
		{Name: "o_orderpriority", Type: vector.TString},
		{Name: "o_clerk", Type: vector.TString},
		{Name: "o_shippriority", Type: vector.TInt32},
		{Name: "o_comment", Type: vector.TString},
	}
	LineitemSchema = vector.Schema{
		{Name: "l_orderkey", Type: vector.TInt64},
		{Name: "l_partkey", Type: vector.TInt64},
		{Name: "l_suppkey", Type: vector.TInt64},
		{Name: "l_linenumber", Type: vector.TInt32},
		{Name: "l_quantity", Type: vector.TDecimal},
		{Name: "l_extendedprice", Type: vector.TDecimal},
		{Name: "l_discount", Type: vector.TDecimal},
		{Name: "l_tax", Type: vector.TDecimal},
		{Name: "l_returnflag", Type: vector.TString},
		{Name: "l_linestatus", Type: vector.TString},
		{Name: "l_shipdate", Type: vector.TDate},
		{Name: "l_commitdate", Type: vector.TDate},
		{Name: "l_receiptdate", Type: vector.TDate},
		{Name: "l_shipinstruct", Type: vector.TString},
		{Name: "l_shipmode", Type: vector.TString},
		{Name: "l_comment", Type: vector.TString},
	}
)

// Value domains from the TPC-H specification.
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs    = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	types1       = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2       = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3       = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers1  = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2  = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	colors       = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
		"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
		"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
		"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
		"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
		"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
		"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
		"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
		"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
		"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
		"yellow",
	}
	words = []string{
		"furiously", "carefully", "quickly", "blithely", "slyly", "ideas", "deposits",
		"accounts", "packages", "requests", "instructions", "theodolites", "platelets",
		"excuses", "foxes", "pearls", "sleep", "wake", "haggle", "nag", "final",
		"regular", "express", "special", "pending", "bold", "ironic", "even", "silent",
		"unusual", "against", "above", "along", "around", "across",
	}
)

// StartDate and EndDate bound o_orderdate per the spec.
var (
	StartDate = vector.MustDate("1992-01-01")
	EndDate   = vector.MustDate("1998-08-02")
)

// Data holds one generated database as dense batches per table.
type Data struct {
	SF     float64
	Tables map[string]*vector.Batch
}

// rowsAt scales a per-SF cardinality.
func rowsAt(perSF int, sf float64) int {
	n := int(float64(perSF) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func comment(rng *rand.Rand, nwords int) string {
	out := ""
	for i := 0; i < nwords; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}

func phone(rng *rand.Rand, nation int64) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, rng.Intn(900)+100, rng.Intn(900)+100, rng.Intn(9000)+1000)
}

// Generate produces a complete deterministic database at the given scale
// factor and seed.
func Generate(sf float64, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	d := &Data{SF: sf, Tables: make(map[string]*vector.Batch)}

	// region
	rb := vector.NewBatchForSchema(RegionSchema, len(regionNames))
	for i, name := range regionNames {
		rb.AppendRow(int64(i), name, comment(rng, 6))
	}
	d.Tables["region"] = rb

	// nation
	nb := vector.NewBatchForSchema(NationSchema, len(nationNames))
	for i, name := range nationNames {
		nb.AppendRow(int64(i), name, nationRegion[i], comment(rng, 8))
	}
	d.Tables["nation"] = nb

	// supplier
	nSupp := rowsAt(SupplierPerSF, sf)
	sb := vector.NewBatchForSchema(SupplierSchema, nSupp)
	for i := 1; i <= nSupp; i++ {
		nation := int64(rng.Intn(25))
		cmt := comment(rng, 10)
		if i%20 == 7 { // Q16's excluded suppliers
			cmt = "Customer " + comment(rng, 3) + " Complaints " + comment(rng, 2)
		}
		sb.AppendRow(int64(i), fmt.Sprintf("Supplier#%09d", i), comment(rng, 3), nation,
			phone(rng, nation), int64(rng.Intn(1100000)-100000), cmt)
	}
	d.Tables["supplier"] = sb

	// customer
	nCust := rowsAt(CustomerPerSF, sf)
	cb := vector.NewBatchForSchema(CustomerSchema, nCust)
	for i := 1; i <= nCust; i++ {
		nation := int64(rng.Intn(25))
		cb.AppendRow(int64(i), fmt.Sprintf("Customer#%09d", i), comment(rng, 3), nation,
			phone(rng, nation), int64(rng.Intn(1100000)-100000),
			segments[rng.Intn(len(segments))], comment(rng, 12))
	}
	d.Tables["customer"] = cb

	// part
	nPart := rowsAt(PartPerSF, sf)
	pb := vector.NewBatchForSchema(PartSchema, nPart)
	for i := 1; i <= nPart; i++ {
		name := colors[rng.Intn(len(colors))] + " " + colors[rng.Intn(len(colors))] + " " +
			colors[rng.Intn(len(colors))] + " " + colors[rng.Intn(len(colors))] + " " +
			colors[rng.Intn(len(colors))]
		m := rng.Intn(5) + 1
		n := rng.Intn(5) + 1
		ptype := types1[rng.Intn(len(types1))] + " " + types2[rng.Intn(len(types2))] + " " + types3[rng.Intn(len(types3))]
		container := containers1[rng.Intn(len(containers1))] + " " + containers2[rng.Intn(len(containers2))]
		retail := int64(90000 + ((i / 10) % 20001) + 100*(i%1000))
		pb.AppendRow(int64(i), name, fmt.Sprintf("Manufacturer#%d", m),
			fmt.Sprintf("Brand#%d%d", m, n), ptype, int32(rng.Intn(50)+1), container,
			retail, comment(rng, 5))
	}
	d.Tables["part"] = pb

	// partsupp: 4 suppliers per part via the spec's formula.
	ps := vector.NewBatchForSchema(PartSuppSchema, nPart*4)
	for i := 1; i <= nPart; i++ {
		for j := 0; j < 4; j++ {
			supp := (int64(i)+int64(j)*(int64(nSupp)/4+(int64(i)-1)/int64(nSupp)))%int64(nSupp) + 1
			ps.AppendRow(int64(i), supp, int32(rng.Intn(9999)+1),
				int64(rng.Intn(100000)+100), comment(rng, 8))
		}
	}
	d.Tables["partsupp"] = ps

	// orders + lineitem
	nOrd := rowsAt(OrdersPerSF, sf)
	ob := vector.NewBatchForSchema(OrdersSchema, nOrd)
	lb := vector.NewBatchForSchema(LineitemSchema, nOrd*4)
	dateRange := int(EndDate - StartDate)
	cutoff := vector.MustDate("1995-06-17")
	for o := 1; o <= nOrd; o++ {
		// Order dates correlate with the key (time-ordered warehouse),
		// which combined with clustering makes MinMax skipping effective,
		// as in the paper's micro-benchmarks.
		odate := StartDate + int32((o*dateRange)/nOrd) + int32(rng.Intn(15)) - 7
		if odate < StartDate {
			odate = StartDate
		}
		if odate > EndDate {
			odate = EndDate
		}
		cust := int64(rng.Intn(nCust) + 1)
		nlines := rng.Intn(7) + 1
		var total int64
		allF, allO := true, true
		for l := 1; l <= nlines; l++ {
			part := int64(rng.Intn(nPart) + 1)
			supp := (part+int64(rng.Intn(4))*(int64(nSupp)/4+(part-1)/int64(nSupp)))%int64(nSupp) + 1
			qty := int64(rng.Intn(50) + 1)
			extprice := qty * (90000 + part%100000) / 10
			disc := int64(rng.Intn(11)) // 0.00 .. 0.10
			tax := int64(rng.Intn(9))   // 0.00 .. 0.08
			ship := odate + int32(rng.Intn(121)+1)
			commit := odate + int32(rng.Intn(61)+30)
			receipt := ship + int32(rng.Intn(30)+1)
			rf := "N"
			if receipt <= cutoff {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= cutoff {
				ls = "F"
			}
			if ls == "F" {
				allO = false
			} else {
				allF = false
			}
			total += extprice
			lb.AppendRow(int64(o), part, supp, int32(l), qty*100, extprice, disc, tax,
				rf, ls, ship, commit, receipt,
				instructs[rng.Intn(len(instructs))], shipmodes[rng.Intn(len(shipmodes))],
				comment(rng, 4))
		}
		status := "P"
		if allF {
			status = "F"
		} else if allO {
			status = "O"
		}
		ob.AppendRow(int64(o), cust, status, total, odate,
			priorities[rng.Intn(len(priorities))],
			fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1), int32(0), comment(rng, 6))
	}
	d.Tables["orders"] = ob
	d.Tables["lineitem"] = lb
	return d
}

// DDL returns the paper's §8 physical design for every table: lineitem and
// orders partitioned and clustered on the orderkey, part/partsupp
// co-partitioned on the partkey, customer partitioned on custkey, and the
// small tables replicated.
func DDL(sf float64, partitions int) []rewriter.TableInfo {
	if partitions <= 0 {
		partitions = 12
	}
	return []rewriter.TableInfo{
		{Name: "region", Schema: RegionSchema, Rows: 5},
		{Name: "nation", Schema: NationSchema, Rows: 25},
		{Name: "supplier", Schema: SupplierSchema, Rows: int64(rowsAt(SupplierPerSF, sf))},
		{Name: "customer", Schema: CustomerSchema, Rows: int64(rowsAt(CustomerPerSF, sf)),
			PartitionKey: "c_custkey", Partitions: partitions},
		{Name: "part", Schema: PartSchema, Rows: int64(rowsAt(PartPerSF, sf)),
			PartitionKey: "p_partkey", Partitions: partitions, ClusteredOn: "p_partkey"},
		{Name: "partsupp", Schema: PartSuppSchema, Rows: int64(rowsAt(PartPerSF, sf) * 4),
			PartitionKey: "ps_partkey", Partitions: partitions, ClusteredOn: "ps_partkey"},
		{Name: "orders", Schema: OrdersSchema, Rows: int64(rowsAt(OrdersPerSF, sf)),
			PartitionKey: "o_orderkey", Partitions: partitions, ClusteredOn: "o_orderkey"},
		{Name: "lineitem", Schema: LineitemSchema, Rows: int64(rowsAt(OrdersPerSF, sf) * 4),
			PartitionKey: "l_orderkey", Partitions: partitions, ClusteredOn: "l_orderkey"},
	}
}

// RF1 generates `count` new orders (with lineitems) for the insert refresh
// function; keys start above the existing key space.
func RF1(d *Data, count int, seed int64) (orders, lineitems *vector.Batch) {
	rng := rand.New(rand.NewSource(seed))
	base := int64(d.Tables["orders"].Len()) + 1_000_000
	nCust := d.Tables["customer"].Len()
	nPart := d.Tables["part"].Len()
	nSupp := d.Tables["supplier"].Len()
	ob := vector.NewBatchForSchema(OrdersSchema, count)
	lb := vector.NewBatchForSchema(LineitemSchema, count*4)
	for i := 0; i < count; i++ {
		o := base + int64(i)
		odate := StartDate + int32(rng.Intn(int(EndDate-StartDate)))
		nlines := rng.Intn(7) + 1
		var total int64
		for l := 1; l <= nlines; l++ {
			part := int64(rng.Intn(nPart) + 1)
			supp := int64(rng.Intn(nSupp) + 1)
			qty := int64(rng.Intn(50) + 1)
			extprice := qty * (90000 + part%100000) / 10
			total += extprice
			ship := odate + int32(rng.Intn(121)+1)
			lb.AppendRow(o, part, supp, int32(l), qty*100, extprice,
				int64(rng.Intn(11)), int64(rng.Intn(9)), "N", "O",
				ship, odate+int32(rng.Intn(61)+30), ship+int32(rng.Intn(30)+1),
				instructs[rng.Intn(len(instructs))], shipmodes[rng.Intn(len(shipmodes))],
				comment(rng, 4))
		}
		ob.AppendRow(o, int64(rng.Intn(nCust)+1), "O", total, odate,
			priorities[rng.Intn(len(priorities))],
			fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1), int32(0), comment(rng, 6))
	}
	return ob, lb
}

// RF2Keys picks `count` existing order keys for the delete refresh function.
func RF2Keys(d *Data, count int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	n := d.Tables["orders"].Len()
	keys := make([]int64, 0, count)
	seen := map[int64]bool{}
	for len(keys) < count && len(seen) < n {
		k := int64(rng.Intn(n) + 1)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}
