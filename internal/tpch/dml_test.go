package tpch

import (
	"fmt"
	"strings"
	"testing"

	"vectorh"
	"vectorh/internal/plan"
)

// probeQueries sample every updated table from several angles; parity tests
// compare their results across engines after each DML stage.
var probeQueries = []string{
	"select count(*) as n, sum(o_totalprice) as total, min(o_orderkey) as mink, max(o_orderkey) as maxk from orders",
	"select count(*) as n, sum(l_extendedprice * (1 - l_discount)) as rev from lineitem",
	"select o_orderpriority, count(*) as n from orders group by o_orderpriority order by o_orderpriority",
}

func assertSameResults(t *testing.T, stage string, a, b *vectorh.DB) {
	t.Helper()
	queries := append([]string{}, probeQueries...)
	queries = append(queries, SQLQueries[1], SQLQueries[3])
	for i, q := range queries {
		ra, err := a.QuerySQL(q)
		if err != nil {
			t.Fatalf("%s probe %d on SQL engine: %v", stage, i, err)
		}
		rb, err := b.QuerySQL(q)
		if err != nil {
			t.Fatalf("%s probe %d on API engine: %v", stage, i, err)
		}
		na, nb := normalize(ra), normalize(rb)
		if len(na) != len(nb) {
			t.Fatalf("%s probe %d: %d vs %d rows", stage, i, len(na), len(nb))
		}
		for r := range na {
			if na[r] != nb[r] {
				t.Fatalf("%s probe %d row %d differs:\n sql %s\n api %s", stage, i, r, na[r], nb[r])
			}
		}
	}
}

// TestSQLDMLParityWithEngineAPI drives one engine through SQL DML text and
// a twin engine through the core API (InsertRows / UpdateWhere /
// DeleteWhere) with equivalent operations on TPC-H SF 0.01, checking that
// affected-row counts and query results stay identical after every stage.
func TestSQLDMLParityWithEngineAPI(t *testing.T) {
	d := Generate(0.01, 7)
	sqlDB, apiDB := newDB(t), newDB(t)
	if err := LoadIntoEngine(sqlDB.Engine, d, 6); err != nil {
		t.Fatal(err)
	}
	if err := LoadIntoEngine(apiDB.Engine, d, 6); err != nil {
		t.Fatal(err)
	}

	// INSERT: the RF1 stream as SQL vs the same batches through InsertRows.
	rf1Orders, rf1Items := RF1(d, 20, 3)
	var inserted int64
	for _, s := range RF1SQL(d, 20, 3) {
		n, err := sqlDB.ExecSQL(s)
		if err != nil {
			t.Fatalf("insert SQL: %v", err)
		}
		inserted += n
	}
	if want := int64(rf1Orders.Len() + rf1Items.Len()); inserted != want {
		t.Fatalf("insert affected %d rows, want %d", inserted, want)
	}
	if err := apiDB.InsertRows("orders", rf1Orders); err != nil {
		t.Fatal(err)
	}
	if err := apiDB.InsertRows("lineitem", rf1Items); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "after INSERT", sqlDB, apiDB)

	// UPDATE: a multi-column SET with arithmetic over a decimal column.
	upd := `update orders
	        set o_orderpriority = '1-URGENT', o_totalprice = o_totalprice + 10.5
	        where o_orderkey in (3, 17, 2029)`
	nSQL, err := sqlDB.ExecSQL(upd)
	if err != nil {
		t.Fatalf("update SQL: %v", err)
	}
	nAPI, err := apiDB.UpdateWhere("orders",
		plan.InInt(plan.Col("o_orderkey"), 3, 17, 2029),
		[]string{"o_orderpriority", "o_totalprice"},
		[]plan.Expr{
			plan.Str("1-URGENT"),
			plan.ToDecimal(plan.Add(plan.Dec("o_totalprice"), plan.Float(10.5))),
		})
	if err != nil {
		t.Fatalf("update API: %v", err)
	}
	if nSQL != nAPI || nSQL == 0 {
		t.Fatalf("update affected %d rows via SQL, %d via API", nSQL, nAPI)
	}
	assertSameResults(t, "after UPDATE", sqlDB, apiDB)

	// DELETE: the RF2 stream as SQL vs DeleteWhere with the same keys.
	keys := RF2Keys(d, 20, 4)
	var delSQL int64
	for _, s := range RF2SQL(keys) {
		n, err := sqlDB.ExecSQL(s)
		if err != nil {
			t.Fatalf("delete SQL: %v", err)
		}
		delSQL += n
	}
	nli, err := apiDB.DeleteWhere("lineitem", plan.InInt(plan.Col("l_orderkey"), keys...))
	if err != nil {
		t.Fatal(err)
	}
	nord, err := apiDB.DeleteWhere("orders", plan.InInt(plan.Col("o_orderkey"), keys...))
	if err != nil {
		t.Fatal(err)
	}
	if delSQL != nli+nord || delSQL == 0 {
		t.Fatalf("delete affected %d rows via SQL, %d via API", delSQL, nli+nord)
	}
	assertSameResults(t, "after DELETE", sqlDB, apiDB)
}

// TestUpdateWidensMinMax moves a MinMax-indexed date column far outside its
// block's range and checks that a subsequent range query — whose derived
// skip hint would otherwise discard the block — still sees the new values:
// the cheap §6 widening rule in action.
func TestUpdateWidensMinMax(t *testing.T) {
	d := Generate(0.002, 7)
	db := newDB(t)
	if err := LoadIntoEngine(db.Engine, d, 6); err != nil {
		t.Fatal(err)
	}
	n, err := db.ExecSQL("update lineitem set l_shipdate = date '2099-01-01' where l_orderkey = 5")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("update matched no rows")
	}
	// Sanity: the query's skip hint reaches the scan (generated data ends
	// in 1998, so without widening every block would be skipped).
	rows, err := db.QuerySQL("select count(*) as n from lineitem where l_shipdate >= date '2098-12-31'")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0][0].(int64); got != n {
		t.Fatalf("range query found %d rows after update, want %d (MinMax not widened?)", got, n)
	}
}

// TestDeleteAllThenReinsert empties a replicated table through SQL and
// re-inserts the original rows, checking the table and a join over it
// return to their initial state (exercising delete-everything, tail
// re-inserts and log-shipped replicated commits).
func TestDeleteAllThenReinsert(t *testing.T) {
	d := Generate(0.002, 7)
	db := newDB(t)
	if err := LoadIntoEngine(db.Engine, d, 6); err != nil {
		t.Fatal(err)
	}
	before, err := db.QuerySQL("select r_regionkey, r_name from region order by r_regionkey")
	if err != nil {
		t.Fatal(err)
	}
	q5Before, err := db.QuerySQL(SQLQueries[5])
	if err != nil {
		t.Fatal(err)
	}

	n, err := db.ExecSQL("delete from region")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("deleted %d rows from region, want 5", n)
	}
	rows, err := db.QuerySQL("select count(*) as n from region")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0][0].(int64); got != 0 {
		t.Fatalf("region has %d rows after DELETE all", got)
	}
	if q5, err := db.QuerySQL(SQLQueries[5]); err != nil {
		t.Fatal(err)
	} else if len(q5) != 0 {
		t.Fatalf("Q5 returned %d rows with region empty", len(q5))
	}

	for _, s := range InsertSQL("region", RegionSchema, d.Tables["region"], 2) {
		if _, err := db.ExecSQL(s); err != nil {
			t.Fatalf("re-insert: %v", err)
		}
	}
	after, err := db.QuerySQL("select r_regionkey, r_name from region order by r_regionkey")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Fatalf("region after re-insert:\n got  %v\n want %v", after, before)
	}
	q5After, err := db.QuerySQL(SQLQueries[5])
	if err != nil {
		t.Fatal(err)
	}
	na, nb := normalize(q5After), normalize(q5Before)
	if strings.Join(na, "\n") != strings.Join(nb, "\n") {
		t.Fatalf("Q5 after delete-all + re-insert differs:\n got  %v\n want %v", na, nb)
	}
}
