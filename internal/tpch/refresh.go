package tpch

import (
	"fmt"
	"strings"

	"vectorh/internal/vector"
)

// This file renders the TPC-H refresh functions as SQL text for the
// internal/sql DML front-end: RF1 becomes multi-row INSERT INTO … VALUES
// statements for orders and lineitem, RF2 becomes DELETE FROM … WHERE
// o_orderkey IN (…) statements over a picked key set. The experiments
// package and the vectorh-sql REPL replay them through DB.ExecSQL, driving
// the whole update stack — parser, binder, transactions, Write-PDTs,
// MinMax maintenance and update propagation — from SQL text.

// SQLLiteral renders one value of the given column type as a SQL literal:
// dates as DATE 'YYYY-MM-DD', decimals with two digits, strings quoted with
// ” escaping.
func SQLLiteral(t vector.Type, v any) string {
	switch t.Logical {
	case vector.Date:
		if d, ok := v.(int32); ok {
			return "date '" + vector.FormatDate(d) + "'"
		}
	case vector.Decimal:
		if i, ok := v.(int64); ok {
			sign := ""
			if i < 0 {
				sign, i = "-", -i
			}
			return fmt.Sprintf("%s%d.%02d", sign, i/100, i%100)
		}
	}
	switch x := v.(type) {
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	case float64:
		return fmt.Sprintf("%g", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// InsertSQL renders a batch as INSERT statements over the full schema,
// chunked at rowsPerStmt value tuples per statement so statement size stays
// bounded.
func InsertSQL(table string, schema vector.Schema, b *vector.Batch, rowsPerStmt int) []string {
	if rowsPerStmt <= 0 {
		rowsPerStmt = 500
	}
	var out []string
	c := b.Compact()
	for lo := 0; lo < c.Len(); lo += rowsPerStmt {
		hi := lo + rowsPerStmt
		if hi > c.Len() {
			hi = c.Len()
		}
		var sb strings.Builder
		sb.WriteString("insert into " + table + " (" + strings.Join(schema.Names(), ", ") + ") values\n")
		for r := lo; r < hi; r++ {
			if r > lo {
				sb.WriteString(",\n")
			}
			sb.WriteString("(")
			row := c.Row(r)
			for ci, v := range row {
				if ci > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(SQLLiteral(schema[ci].Type, v))
			}
			sb.WriteString(")")
		}
		out = append(out, sb.String())
	}
	return out
}

// RF1SQL renders refresh function RF1 — `count` new orders with their
// lineitems — as SQL INSERT statements (orders first, then lineitem, as the
// spec's referential order requires).
func RF1SQL(d *Data, count int, seed int64) []string {
	orders, items := RF1(d, count, seed)
	stmts := InsertSQL("orders", OrdersSchema, orders, 500)
	return append(stmts, InsertSQL("lineitem", LineitemSchema, items, 500)...)
}

// RF2SQL renders refresh function RF2 — deletion of the picked order keys —
// as SQL DELETE statements (lineitem first, then orders).
func RF2SQL(keys []int64) []string {
	if len(keys) == 0 {
		return nil
	}
	list := make([]string, len(keys))
	for i, k := range keys {
		list[i] = fmt.Sprintf("%d", k)
	}
	in := strings.Join(list, ", ")
	return []string{
		"delete from lineitem where l_orderkey in (" + in + ")",
		"delete from orders where o_orderkey in (" + in + ")",
	}
}
