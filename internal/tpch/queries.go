package tpch

import (
	"fmt"

	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// Runner executes a logical plan; both the VectorH engine and the baseline
// engines satisfy it, so identical query definitions drive the whole §8
// comparison. Queries with scalar subqueries (Q11, Q15, Q22) run the
// subquery through the Runner while building the main plan.
type Runner interface {
	Query(q plan.Node) ([][]any, error)
}

// NumQueries is the TPC-H query count.
const NumQueries = 22

// BuildQuery returns the logical plan of TPC-H query q (1-based).
func BuildQuery(q int, r Runner) (plan.Node, error) {
	if q < 1 || q > NumQueries {
		return nil, fmt.Errorf("tpch: no query %d", q)
	}
	return builders[q-1](r)
}

func days(s string) int64 { return int64(vector.MustDate(s)) }

// predSet wraps conjuncts as a filtering scan predicate set. Every set
// built here must be exactly implied by the filter predicate it rides on:
// the rewriter elides (or shrinks) the Select above the scan, so a bound
// looser or tighter than the predicate would change results. Data-range
// assertions that are NOT implied by the predicate belong in Skip(), which
// stays block-skip-only.
func predSet(preds ...plan.ColPred) *plan.ScanPredSet {
	return &plan.ScanPredSet{Preds: preds}
}

// revenue is l_extendedprice * (1 - l_discount).
func revenue() plan.Expr {
	return plan.Mul(plan.Dec("l_extendedprice"), plan.Sub(plan.Float(1), plan.Dec("l_discount")))
}

var builders = [NumQueries]func(Runner) (plan.Node, error){}

func init() {
	builders = [NumQueries]func(r Runner) (plan.Node, error){
		q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11, q12,
		q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
	}
}

func q1(Runner) (plan.Node, error) {
	cutoff := "1998-09-02" // 1998-12-01 - 90 days
	return plan.OrderBy(
		plan.Aggregate(
			plan.Filter(plan.Scan("lineitem", "l_returnflag", "l_linestatus", "l_quantity",
				"l_extendedprice", "l_discount", "l_tax", "l_shipdate"),
				plan.LE(plan.Col("l_shipdate"), plan.Date(cutoff))).
				Push(predSet(plan.IntMax("l_shipdate", days(cutoff))), nil),
			[]string{"l_returnflag", "l_linestatus"},
			plan.A("sum_qty", plan.Sum, plan.Dec("l_quantity")),
			plan.A("sum_base_price", plan.Sum, plan.Dec("l_extendedprice")),
			plan.A("sum_disc_price", plan.Sum, revenue()),
			plan.A("sum_charge", plan.Sum,
				plan.Mul(revenue(), plan.Add(plan.Float(1), plan.Dec("l_tax")))),
			plan.A("avg_qty", plan.Avg, plan.Dec("l_quantity")),
			plan.A("avg_price", plan.Avg, plan.Dec("l_extendedprice")),
			plan.A("avg_disc", plan.Avg, plan.Dec("l_discount")),
			plan.AStar("count_order")),
		plan.Asc(plan.Col("l_returnflag")), plan.Asc(plan.Col("l_linestatus"))), nil
}

// europeSuppliers joins supplier→nation→region restricted to EUROPE.
func europeSuppliers(cols ...string) plan.Node {
	supp := plan.Scan("supplier", cols...)
	n := plan.Join(plan.InnerJoin, supp, plan.Scan("nation", "n_nationkey", "n_name", "n_regionkey"),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	return plan.Join(plan.InnerJoin, n,
		plan.Filter(plan.Scan("region", "r_regionkey", "r_name"),
			plan.EQ(plan.Col("r_name"), plan.Str("EUROPE"))),
		[]string{"n_regionkey"}, []string{"r_regionkey"})
}

func q2(Runner) (plan.Node, error) {
	// Minimum supply cost per part across EUROPE.
	minCost := plan.Aggregate(
		plan.Join(plan.InnerJoin,
			plan.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"),
			europeSuppliers("s_suppkey", "s_nationkey"),
			[]string{"ps_suppkey"}, []string{"s_suppkey"}),
		[]string{"ps_partkey"},
		plan.A("min_cost", plan.Min, plan.Col("ps_supplycost")))
	minCost2 := plan.Project(minCost, plan.As("mc_partkey", plan.Col("ps_partkey")),
		plan.As("mc_cost", plan.Col("min_cost")))

	parts := plan.Filter(plan.Scan("part", "p_partkey", "p_mfgr", "p_size", "p_type"),
		plan.And(plan.EQ(plan.Col("p_size"), plan.Int(15)), plan.Like(plan.Col("p_type"), "%BRASS")))
	ps := plan.Join(plan.InnerJoin,
		plan.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"), parts,
		[]string{"ps_partkey"}, []string{"p_partkey"})
	withMin := plan.Join(plan.InnerJoin, ps, minCost2,
		[]string{"ps_partkey", "ps_supplycost"}, []string{"mc_partkey", "mc_cost"})
	full := plan.Join(plan.InnerJoin, withMin,
		europeSuppliers("s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"),
		[]string{"ps_suppkey"}, []string{"s_suppkey"})
	return plan.Top(
		plan.Project(full,
			plan.As("s_acctbal", plan.Dec("s_acctbal")), plan.C("s_name"), plan.C("n_name"),
			plan.C("p_partkey"), plan.C("p_mfgr"), plan.C("s_address"), plan.C("s_phone"), plan.C("s_comment")),
		100,
		plan.Desc(plan.Col("s_acctbal")), plan.Asc(plan.Col("n_name")),
		plan.Asc(plan.Col("s_name")), plan.Asc(plan.Col("p_partkey"))), nil
}

func q3(Runner) (plan.Node, error) {
	cust := plan.Filter(plan.Scan("customer", "c_custkey", "c_mktsegment"),
		plan.EQ(plan.Col("c_mktsegment"), plan.Str("BUILDING"))).
		Push(predSet(plan.StrEq("c_mktsegment", "BUILDING")), nil)
	ord := plan.Filter(plan.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"),
		plan.LT(plan.Col("o_orderdate"), plan.Date("1995-03-15"))).
		Push(predSet(plan.IntMax("o_orderdate", days("1995-03-14"))), nil)
	li := plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"),
		plan.GT(plan.Col("l_shipdate"), plan.Date("1995-03-15"))).
		Push(predSet(plan.IntMin("l_shipdate", days("1995-03-15")+1)), nil)
	co := plan.Join(plan.InnerJoin, ord, cust, []string{"o_custkey"}, []string{"c_custkey"})
	j := plan.Join(plan.InnerJoin, li, co, []string{"l_orderkey"}, []string{"o_orderkey"})
	return plan.Top(
		plan.Aggregate(j, []string{"l_orderkey", "o_orderdate", "o_shippriority"},
			plan.A("revenue", plan.Sum, revenue())),
		10, plan.Desc(plan.Col("revenue")), plan.Asc(plan.Col("o_orderdate"))), nil
}

func q4(Runner) (plan.Node, error) {
	late := plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_commitdate", "l_receiptdate"),
		plan.LT(plan.Col("l_commitdate"), plan.Col("l_receiptdate")))
	ord := plan.Filter(plan.Scan("orders", "o_orderkey", "o_orderdate", "o_orderpriority"),
		plan.And(plan.GE(plan.Col("o_orderdate"), plan.Date("1993-07-01")),
			plan.LT(plan.Col("o_orderdate"), plan.DateOffset("1993-07-01", 3)))).
		Push(predSet(plan.DateRange("o_orderdate", "1993-07-01", "1993-09-30")), nil)
	semi := plan.Join(plan.SemiJoin, ord, late, []string{"o_orderkey"}, []string{"l_orderkey"})
	return plan.OrderBy(
		plan.Aggregate(semi, []string{"o_orderpriority"}, plan.AStar("order_count")),
		plan.Asc(plan.Col("o_orderpriority"))), nil
}

func q5(Runner) (plan.Node, error) {
	cust := plan.Scan("customer", "c_custkey", "c_nationkey")
	ord := plan.Filter(plan.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		plan.And(plan.GE(plan.Col("o_orderdate"), plan.Date("1994-01-01")),
			plan.LT(plan.Col("o_orderdate"), plan.Date("1995-01-01")))).
		Push(predSet(plan.DateRange("o_orderdate", "1994-01-01", "1994-12-31")), nil)
	oc := plan.Join(plan.InnerJoin, ord, cust, []string{"o_custkey"}, []string{"c_custkey"})
	li := plan.Scan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	loc := plan.Join(plan.InnerJoin, li, oc, []string{"l_orderkey"}, []string{"o_orderkey"})
	sup := plan.Join(plan.InnerJoin, loc, plan.Scan("supplier", "s_suppkey", "s_nationkey"),
		[]string{"l_suppkey"}, []string{"s_suppkey"}).
		On(plan.EQ(plan.Col("c_nationkey"), plan.Col("s_nationkey")))
	nat := plan.Join(plan.InnerJoin, sup, plan.Scan("nation", "n_nationkey", "n_name", "n_regionkey"),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	reg := plan.Join(plan.InnerJoin, nat,
		plan.Filter(plan.Scan("region", "r_regionkey", "r_name"),
			plan.EQ(plan.Col("r_name"), plan.Str("ASIA"))),
		[]string{"n_regionkey"}, []string{"r_regionkey"})
	return plan.OrderBy(
		plan.Aggregate(reg, []string{"n_name"}, plan.A("revenue", plan.Sum, revenue())),
		plan.Desc(plan.Col("revenue"))), nil
}

func q6(Runner) (plan.Node, error) {
	li := plan.Filter(plan.Scan("lineitem", "l_extendedprice", "l_discount", "l_quantity", "l_shipdate"),
		plan.AndAll(
			plan.GE(plan.Col("l_shipdate"), plan.Date("1994-01-01")),
			plan.LT(plan.Col("l_shipdate"), plan.Date("1995-01-01")),
			plan.Between(plan.Dec("l_discount"), plan.Float(0.05), plan.Float(0.07)),
			plan.LT(plan.Dec("l_quantity"), plan.Float(24)))).
		Push(predSet(
			plan.DateRange("l_shipdate", "1994-01-01", "1994-12-31"),
			plan.DecRange("l_discount", 0.05, 0.07, false, false),
			plan.DecMax("l_quantity", 24, true)), nil)
	return plan.Aggregate(li, nil,
		plan.A("revenue", plan.Sum, plan.Mul(plan.Dec("l_extendedprice"), plan.Dec("l_discount")))), nil
}

func q7(Runner) (plan.Node, error) {
	n1 := plan.Project(plan.Scan("nation", "n_nationkey", "n_name"),
		plan.As("n1_key", plan.Col("n_nationkey")), plan.As("supp_nation", plan.Col("n_name")))
	n2 := plan.Project(plan.Scan("nation", "n_nationkey", "n_name"),
		plan.As("n2_key", plan.Col("n_nationkey")), plan.As("cust_nation", plan.Col("n_name")))
	li := plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
		plan.Between(plan.Col("l_shipdate"), plan.Date("1995-01-01"), plan.Date("1996-12-31"))).
		Push(predSet(plan.DateRange("l_shipdate", "1995-01-01", "1996-12-31")), nil)
	lo := plan.Join(plan.InnerJoin, li, plan.Scan("orders", "o_orderkey", "o_custkey"),
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	loc := plan.Join(plan.InnerJoin, lo, plan.Scan("customer", "c_custkey", "c_nationkey"),
		[]string{"o_custkey"}, []string{"c_custkey"})
	los := plan.Join(plan.InnerJoin, loc, plan.Scan("supplier", "s_suppkey", "s_nationkey"),
		[]string{"l_suppkey"}, []string{"s_suppkey"})
	jn1 := plan.Join(plan.InnerJoin, los, n1, []string{"s_nationkey"}, []string{"n1_key"})
	jn2 := plan.Join(plan.InnerJoin, jn1, n2, []string{"c_nationkey"}, []string{"n2_key"}).
		On(plan.Or(
			plan.And(plan.EQ(plan.Col("supp_nation"), plan.Str("FRANCE")),
				plan.EQ(plan.Col("cust_nation"), plan.Str("GERMANY"))),
			plan.And(plan.EQ(plan.Col("supp_nation"), plan.Str("GERMANY")),
				plan.EQ(plan.Col("cust_nation"), plan.Str("FRANCE")))))
	pre := plan.Project(jn2,
		plan.C("supp_nation"), plan.C("cust_nation"),
		plan.As("l_year", plan.Year(plan.Col("l_shipdate"))),
		plan.As("volume", revenue()))
	return plan.OrderBy(
		plan.Aggregate(pre, []string{"supp_nation", "cust_nation", "l_year"},
			plan.A("revenue", plan.Sum, plan.Col("volume"))),
		plan.Asc(plan.Col("supp_nation")), plan.Asc(plan.Col("cust_nation")), plan.Asc(plan.Col("l_year"))), nil
}

func q8(Runner) (plan.Node, error) {
	part := plan.Filter(plan.Scan("part", "p_partkey", "p_type"),
		plan.EQ(plan.Col("p_type"), plan.Str("ECONOMY ANODIZED STEEL"))).
		Push(predSet(plan.StrEq("p_type", "ECONOMY ANODIZED STEEL")), nil)
	li := plan.Scan("lineitem", "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount")
	lp := plan.Join(plan.InnerJoin, li, part, []string{"l_partkey"}, []string{"p_partkey"})
	ord := plan.Filter(plan.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		plan.Between(plan.Col("o_orderdate"), plan.Date("1995-01-01"), plan.Date("1996-12-31"))).
		Push(predSet(plan.DateRange("o_orderdate", "1995-01-01", "1996-12-31")), nil)
	lpo := plan.Join(plan.InnerJoin, lp, ord, []string{"l_orderkey"}, []string{"o_orderkey"})
	cust := plan.Join(plan.InnerJoin, lpo, plan.Scan("customer", "c_custkey", "c_nationkey"),
		[]string{"o_custkey"}, []string{"c_custkey"})
	n1 := plan.Project(plan.Scan("nation", "n_nationkey", "n_regionkey"),
		plan.As("cn_key", plan.Col("n_nationkey")), plan.As("cn_region", plan.Col("n_regionkey")))
	cn := plan.Join(plan.InnerJoin, cust, n1, []string{"c_nationkey"}, []string{"cn_key"})
	reg := plan.Join(plan.InnerJoin, cn,
		plan.Filter(plan.Scan("region", "r_regionkey", "r_name"),
			plan.EQ(plan.Col("r_name"), plan.Str("AMERICA"))),
		[]string{"cn_region"}, []string{"r_regionkey"})
	sup := plan.Join(plan.InnerJoin, reg, plan.Scan("supplier", "s_suppkey", "s_nationkey"),
		[]string{"l_suppkey"}, []string{"s_suppkey"})
	n2 := plan.Project(plan.Scan("nation", "n_nationkey", "n_name"),
		plan.As("sn_key", plan.Col("n_nationkey")), plan.As("supp_nation", plan.Col("n_name")))
	sn := plan.Join(plan.InnerJoin, sup, n2, []string{"s_nationkey"}, []string{"sn_key"})
	pre := plan.Project(sn,
		plan.As("o_year", plan.Year(plan.Col("o_orderdate"))),
		plan.As("volume", revenue()),
		plan.As("brazil_volume",
			plan.Case(plan.EQ(plan.Col("supp_nation"), plan.Str("BRAZIL")), revenue(), plan.Float(0))))
	agg := plan.Aggregate(pre, []string{"o_year"},
		plan.A("brazil", plan.Sum, plan.Col("brazil_volume")),
		plan.A("total", plan.Sum, plan.Col("volume")))
	return plan.OrderBy(
		plan.Project(agg, plan.C("o_year"),
			plan.As("mkt_share", plan.Div(plan.Col("brazil"), plan.Col("total")))),
		plan.Asc(plan.Col("o_year"))), nil
}

func q9(Runner) (plan.Node, error) {
	part := plan.Filter(plan.Scan("part", "p_partkey", "p_name"),
		plan.Like(plan.Col("p_name"), "%green%"))
	li := plan.Scan("lineitem", "l_orderkey", "l_partkey", "l_suppkey",
		"l_extendedprice", "l_discount", "l_quantity")
	lp := plan.Join(plan.InnerJoin, li, part, []string{"l_partkey"}, []string{"p_partkey"})
	ps := plan.Join(plan.InnerJoin, lp, plan.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"),
		[]string{"l_partkey", "l_suppkey"}, []string{"ps_partkey", "ps_suppkey"})
	ord := plan.Join(plan.InnerJoin, ps, plan.Scan("orders", "o_orderkey", "o_orderdate"),
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	sup := plan.Join(plan.InnerJoin, ord, plan.Scan("supplier", "s_suppkey", "s_nationkey"),
		[]string{"l_suppkey"}, []string{"s_suppkey"})
	nat := plan.Join(plan.InnerJoin, sup, plan.Scan("nation", "n_nationkey", "n_name"),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	pre := plan.Project(nat,
		plan.As("nation", plan.Col("n_name")),
		plan.As("o_year", plan.Year(plan.Col("o_orderdate"))),
		plan.As("amount", plan.Sub(revenue(),
			plan.Mul(plan.Dec("ps_supplycost"), plan.Dec("l_quantity")))))
	return plan.OrderBy(
		plan.Aggregate(pre, []string{"nation", "o_year"},
			plan.A("sum_profit", plan.Sum, plan.Col("amount"))),
		plan.Asc(plan.Col("nation")), plan.Desc(plan.Col("o_year"))), nil
}

func q10(Runner) (plan.Node, error) {
	ord := plan.Filter(plan.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		plan.And(plan.GE(plan.Col("o_orderdate"), plan.Date("1993-10-01")),
			plan.LT(plan.Col("o_orderdate"), plan.DateOffset("1993-10-01", 3)))).
		Push(predSet(plan.DateRange("o_orderdate", "1993-10-01", "1993-12-31")), nil)
	li := plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"),
		plan.EQ(plan.Col("l_returnflag"), plan.Str("R"))).
		Push(predSet(plan.StrEq("l_returnflag", "R")), nil)
	lo := plan.Join(plan.InnerJoin, li, ord, []string{"l_orderkey"}, []string{"o_orderkey"})
	cust := plan.Join(plan.InnerJoin, lo,
		plan.Scan("customer", "c_custkey", "c_name", "c_acctbal", "c_address", "c_phone", "c_comment", "c_nationkey"),
		[]string{"o_custkey"}, []string{"c_custkey"})
	nat := plan.Join(plan.InnerJoin, cust, plan.Scan("nation", "n_nationkey", "n_name"),
		[]string{"c_nationkey"}, []string{"n_nationkey"})
	return plan.Top(
		plan.Aggregate(nat,
			[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
			plan.A("revenue", plan.Sum, revenue())),
		20, plan.Desc(plan.Col("revenue")), plan.Asc(plan.Col("c_custkey"))), nil
}

func q11(r Runner) (plan.Node, error) {
	base := func() plan.Node {
		ps := plan.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost")
		sup := plan.Join(plan.InnerJoin, ps, plan.Scan("supplier", "s_suppkey", "s_nationkey"),
			[]string{"ps_suppkey"}, []string{"s_suppkey"})
		return plan.Join(plan.InnerJoin, sup,
			plan.Filter(plan.Scan("nation", "n_nationkey", "n_name"),
				plan.EQ(plan.Col("n_name"), plan.Str("GERMANY"))),
			[]string{"s_nationkey"}, []string{"n_nationkey"})
	}
	value := plan.Mul(plan.Dec("ps_supplycost"), plan.Scaled(plan.Col("ps_availqty"), 1))
	totalRows, err := r.Query(plan.Aggregate(base(), nil, plan.A("t", plan.Sum, value)))
	if err != nil {
		return nil, err
	}
	threshold := totalRows[0][0].(float64) * 0.0001
	return plan.OrderBy(
		plan.Filter(
			plan.Aggregate(base(), []string{"ps_partkey"}, plan.A("value", plan.Sum, value)),
			plan.GT(plan.Col("value"), plan.Float(threshold))),
		plan.Desc(plan.Col("value"))), nil
}

func q12(Runner) (plan.Node, error) {
	q12Residual := plan.And(
		plan.LT(plan.Col("l_commitdate"), plan.Col("l_receiptdate")),
		plan.LT(plan.Col("l_shipdate"), plan.Col("l_commitdate")))
	li := plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate"),
		plan.AndAll(
			plan.InStr(plan.Col("l_shipmode"), "MAIL", "SHIP"),
			plan.LT(plan.Col("l_commitdate"), plan.Col("l_receiptdate")),
			plan.LT(plan.Col("l_shipdate"), plan.Col("l_commitdate")),
			plan.GE(plan.Col("l_receiptdate"), plan.Date("1994-01-01")),
			plan.LT(plan.Col("l_receiptdate"), plan.Date("1995-01-01")))).
		Push(predSet(
			plan.StrInList("l_shipmode", "MAIL", "SHIP"),
			plan.DateRange("l_receiptdate", "1994-01-01", "1994-12-31")), &q12Residual)
	j := plan.Join(plan.InnerJoin, li, plan.Scan("orders", "o_orderkey", "o_orderpriority"),
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	pre := plan.Project(j,
		plan.C("l_shipmode"),
		plan.As("high", plan.Case(
			plan.InStr(plan.Col("o_orderpriority"), "1-URGENT", "2-HIGH"), plan.Int(1), plan.Int(0))),
		plan.As("low", plan.Case(
			plan.InStr(plan.Col("o_orderpriority"), "1-URGENT", "2-HIGH"), plan.Int(0), plan.Int(1))))
	return plan.OrderBy(
		plan.Aggregate(pre, []string{"l_shipmode"},
			plan.A("high_line_count", plan.Sum, plan.Col("high")),
			plan.A("low_line_count", plan.Sum, plan.Col("low"))),
		plan.Asc(plan.Col("l_shipmode"))), nil
}

func q13(Runner) (plan.Node, error) {
	ord := plan.Filter(plan.Scan("orders", "o_orderkey", "o_custkey", "o_comment"),
		plan.NotLike(plan.Col("o_comment"), "%special%requests%"))
	lo := plan.Join(plan.LeftOuterJoin, plan.Scan("customer", "c_custkey"), ord,
		[]string{"c_custkey"}, []string{"o_custkey"})
	perCust := plan.Aggregate(
		plan.Project(lo, plan.C("c_custkey"),
			plan.As("one", plan.Case(plan.Col(plan.MatchedCol), plan.Int(1), plan.Int(0)))),
		[]string{"c_custkey"},
		plan.A("c_count", plan.Sum, plan.Col("one")))
	return plan.OrderBy(
		plan.Aggregate(perCust, []string{"c_count"}, plan.AStar("custdist")),
		plan.Desc(plan.Col("custdist")), plan.Desc(plan.Col("c_count"))), nil
}

func q14(Runner) (plan.Node, error) {
	li := plan.Filter(plan.Scan("lineitem", "l_partkey", "l_extendedprice", "l_discount", "l_shipdate"),
		plan.And(plan.GE(plan.Col("l_shipdate"), plan.Date("1995-09-01")),
			plan.LT(plan.Col("l_shipdate"), plan.DateOffset("1995-09-01", 1)))).
		Push(predSet(plan.DateRange("l_shipdate", "1995-09-01", "1995-09-30")), nil)
	j := plan.Join(plan.InnerJoin, li, plan.Scan("part", "p_partkey", "p_type"),
		[]string{"l_partkey"}, []string{"p_partkey"})
	pre := plan.Project(j,
		plan.As("promo", plan.Case(plan.Like(plan.Col("p_type"), "PROMO%"), revenue(), plan.Float(0))),
		plan.As("total", revenue()))
	agg := plan.Aggregate(pre, nil,
		plan.A("p", plan.Sum, plan.Col("promo")), plan.A("t", plan.Sum, plan.Col("total")))
	return plan.Project(agg,
		plan.As("promo_revenue", plan.Mul(plan.Float(100), plan.Div(plan.Col("p"), plan.Col("t"))))), nil
}

func q15(r Runner) (plan.Node, error) {
	rev := func() plan.Node {
		li := plan.Filter(plan.Scan("lineitem", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
			plan.And(plan.GE(plan.Col("l_shipdate"), plan.Date("1996-01-01")),
				plan.LT(plan.Col("l_shipdate"), plan.DateOffset("1996-01-01", 3)))).
			Push(predSet(plan.DateRange("l_shipdate", "1996-01-01", "1996-03-31")), nil)
		return plan.Aggregate(li, []string{"l_suppkey"},
			plan.A("total_revenue", plan.Sum, revenue()))
	}
	maxRows, err := r.Query(plan.Aggregate(rev(), nil, plan.A("m", plan.Max, plan.Col("total_revenue"))))
	if err != nil {
		return nil, err
	}
	maxRev := maxRows[0][0].(float64)
	top := plan.Filter(rev(), plan.GE(plan.Col("total_revenue"), plan.Float(maxRev*(1-1e-9))))
	j := plan.Join(plan.InnerJoin, top,
		plan.Scan("supplier", "s_suppkey", "s_name", "s_address", "s_phone"),
		[]string{"l_suppkey"}, []string{"s_suppkey"})
	return plan.OrderBy(
		plan.Project(j, plan.C("s_suppkey"), plan.C("s_name"), plan.C("s_address"),
			plan.C("s_phone"), plan.C("total_revenue")),
		plan.Asc(plan.Col("s_suppkey"))), nil
}

func q16(Runner) (plan.Node, error) {
	part := plan.Filter(plan.Scan("part", "p_partkey", "p_brand", "p_type", "p_size"),
		plan.AndAll(
			plan.NE(plan.Col("p_brand"), plan.Str("Brand#45")),
			plan.NotLike(plan.Col("p_type"), "MEDIUM POLISHED%"),
			plan.InInt(plan.Col("p_size"), 49, 14, 23, 45, 19, 3, 36, 9)))
	complainers := plan.Filter(plan.Scan("supplier", "s_suppkey", "s_comment"),
		plan.Like(plan.Col("s_comment"), "%Customer%Complaints%"))
	ps := plan.Join(plan.AntiJoin, plan.Scan("partsupp", "ps_partkey", "ps_suppkey"), complainers,
		[]string{"ps_suppkey"}, []string{"s_suppkey"})
	j := plan.Join(plan.InnerJoin, ps, part, []string{"ps_partkey"}, []string{"p_partkey"})
	return plan.OrderBy(
		plan.Aggregate(j, []string{"p_brand", "p_type", "p_size"},
			plan.A("supplier_cnt", plan.CountDistinct, plan.Col("ps_suppkey"))),
		plan.Desc(plan.Col("supplier_cnt")), plan.Asc(plan.Col("p_brand")),
		plan.Asc(plan.Col("p_type")), plan.Asc(plan.Col("p_size"))), nil
}

func q17(Runner) (plan.Node, error) {
	avgQty := plan.Project(
		plan.Aggregate(plan.Scan("lineitem", "l_partkey", "l_quantity"),
			[]string{"l_partkey"}, plan.A("aq", plan.Avg, plan.Dec("l_quantity"))),
		plan.As("aq_partkey", plan.Col("l_partkey")), plan.As("aq", plan.Col("aq")))
	part := plan.Filter(plan.Scan("part", "p_partkey", "p_brand", "p_container"),
		plan.And(plan.EQ(plan.Col("p_brand"), plan.Str("Brand#23")),
			plan.EQ(plan.Col("p_container"), plan.Str("MED BOX"))))
	li := plan.Join(plan.InnerJoin,
		plan.Scan("lineitem", "l_partkey", "l_quantity", "l_extendedprice"), part,
		[]string{"l_partkey"}, []string{"p_partkey"})
	withAvg := plan.Join(plan.InnerJoin, li, avgQty, []string{"l_partkey"}, []string{"aq_partkey"}).
		On(plan.LT(plan.Dec("l_quantity"), plan.Mul(plan.Float(0.2), plan.Col("aq"))))
	agg := plan.Aggregate(withAvg, nil, plan.A("s", plan.Sum, plan.Dec("l_extendedprice")))
	return plan.Project(agg, plan.As("avg_yearly", plan.Div(plan.Col("s"), plan.Float(7)))), nil
}

func q18(Runner) (plan.Node, error) {
	big := plan.Filter(
		plan.Aggregate(plan.Scan("lineitem", "l_orderkey", "l_quantity"),
			[]string{"l_orderkey"}, plan.A("sum_qty", plan.Sum, plan.Dec("l_quantity"))),
		plan.GT(plan.Col("sum_qty"), plan.Float(300)))
	bigKeys := plan.Project(big, plan.As("bk", plan.Col("l_orderkey")))
	ord := plan.Join(plan.SemiJoin,
		plan.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"), bigKeys,
		[]string{"o_orderkey"}, []string{"bk"})
	oc := plan.Join(plan.InnerJoin, ord, plan.Scan("customer", "c_custkey", "c_name"),
		[]string{"o_custkey"}, []string{"c_custkey"})
	li := plan.Join(plan.InnerJoin, plan.Scan("lineitem", "l_orderkey", "l_quantity"), oc,
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	return plan.Top(
		plan.Aggregate(li,
			[]string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
			plan.A("sum_qty", plan.Sum, plan.Dec("l_quantity"))),
		100, plan.Desc(plan.Dec("o_totalprice")), plan.Asc(plan.Col("o_orderdate"))), nil
}

func q19(Runner) (plan.Node, error) {
	li := plan.Filter(plan.Scan("lineitem", "l_partkey", "l_quantity", "l_extendedprice",
		"l_discount", "l_shipinstruct", "l_shipmode"),
		plan.And(plan.InStr(plan.Col("l_shipmode"), "AIR", "REG AIR"),
			plan.EQ(plan.Col("l_shipinstruct"), plan.Str("DELIVER IN PERSON"))))
	j := plan.Join(plan.InnerJoin, li,
		plan.Scan("part", "p_partkey", "p_brand", "p_container", "p_size"),
		[]string{"l_partkey"}, []string{"p_partkey"}).
		On(plan.Or(
			plan.AndAll(
				plan.EQ(plan.Col("p_brand"), plan.Str("Brand#12")),
				plan.InStr(plan.Col("p_container"), "SM CASE", "SM BOX", "SM PACK", "SM PKG"),
				plan.Between(plan.Dec("l_quantity"), plan.Float(1), plan.Float(11)),
				plan.Between(plan.Col("p_size"), plan.Int(1), plan.Int(5))),
			plan.Or(
				plan.AndAll(
					plan.EQ(plan.Col("p_brand"), plan.Str("Brand#23")),
					plan.InStr(plan.Col("p_container"), "MED BAG", "MED BOX", "MED PKG", "MED PACK"),
					plan.Between(plan.Dec("l_quantity"), plan.Float(10), plan.Float(20)),
					plan.Between(plan.Col("p_size"), plan.Int(1), plan.Int(10))),
				plan.AndAll(
					plan.EQ(plan.Col("p_brand"), plan.Str("Brand#34")),
					plan.InStr(plan.Col("p_container"), "LG CASE", "LG BOX", "LG PACK", "LG PKG"),
					plan.Between(plan.Dec("l_quantity"), plan.Float(20), plan.Float(30)),
					plan.Between(plan.Col("p_size"), plan.Int(1), plan.Int(15))))))
	return plan.Aggregate(j, nil, plan.A("revenue", plan.Sum, revenue())), nil
}

func q20(Runner) (plan.Node, error) {
	shipped := plan.Aggregate(
		plan.Filter(plan.Scan("lineitem", "l_partkey", "l_suppkey", "l_quantity", "l_shipdate"),
			plan.And(plan.GE(plan.Col("l_shipdate"), plan.Date("1994-01-01")),
				plan.LT(plan.Col("l_shipdate"), plan.Date("1995-01-01")))).
			Skip("l_shipdate", days("1994-01-01"), days("1994-12-31")),
		[]string{"l_partkey", "l_suppkey"},
		plan.A("sq", plan.Sum, plan.Dec("l_quantity")))
	forest := plan.Filter(plan.Scan("part", "p_partkey", "p_name"),
		plan.Like(plan.Col("p_name"), "forest%"))
	ps := plan.Join(plan.SemiJoin, plan.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty"),
		forest, []string{"ps_partkey"}, []string{"p_partkey"})
	withQty := plan.Join(plan.InnerJoin, ps, shipped,
		[]string{"ps_partkey", "ps_suppkey"}, []string{"l_partkey", "l_suppkey"}).
		On(plan.GT(plan.Scaled(plan.Col("ps_availqty"), 1), plan.Mul(plan.Float(0.5), plan.Col("sq"))))
	goodSupp := plan.Project(withQty, plan.As("gs", plan.Col("ps_suppkey")))
	sup := plan.Join(plan.SemiJoin, plan.Scan("supplier", "s_suppkey", "s_name", "s_address", "s_nationkey"),
		goodSupp, []string{"s_suppkey"}, []string{"gs"})
	canada := plan.Join(plan.InnerJoin, sup,
		plan.Filter(plan.Scan("nation", "n_nationkey", "n_name"),
			plan.EQ(plan.Col("n_name"), plan.Str("CANADA"))),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	return plan.OrderBy(
		plan.Project(canada, plan.C("s_name"), plan.C("s_address")),
		plan.Asc(plan.Col("s_name"))), nil
}

func q21(Runner) (plan.Node, error) {
	// Reformulated exists/not-exists (see queries_test): an order counts
	// when it has >1 distinct suppliers but exactly one late supplier —
	// ours.
	nSupp := plan.Project(
		plan.Aggregate(plan.Scan("lineitem", "l_orderkey", "l_suppkey"),
			[]string{"l_orderkey"}, plan.A("nsupp", plan.CountDistinct, plan.Col("l_suppkey"))),
		plan.As("t_orderkey", plan.Col("l_orderkey")), plan.C("nsupp"))
	nLate := plan.Project(
		plan.Aggregate(
			plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"),
				plan.GT(plan.Col("l_receiptdate"), plan.Col("l_commitdate"))),
			[]string{"l_orderkey"}, plan.A("nlate", plan.CountDistinct, plan.Col("l_suppkey"))),
		plan.As("lt_orderkey", plan.Col("l_orderkey")), plan.C("nlate"))

	l1 := plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"),
		plan.GT(plan.Col("l_receiptdate"), plan.Col("l_commitdate")))
	ord := plan.Filter(plan.Scan("orders", "o_orderkey", "o_orderstatus"),
		plan.EQ(plan.Col("o_orderstatus"), plan.Str("F")))
	lo := plan.Join(plan.InnerJoin, l1, ord, []string{"l_orderkey"}, []string{"o_orderkey"})
	sup := plan.Join(plan.InnerJoin, lo, plan.Scan("supplier", "s_suppkey", "s_name", "s_nationkey"),
		[]string{"l_suppkey"}, []string{"s_suppkey"})
	nat := plan.Join(plan.InnerJoin, sup,
		plan.Filter(plan.Scan("nation", "n_nationkey", "n_name"),
			plan.EQ(plan.Col("n_name"), plan.Str("SAUDI ARABIA"))),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	wTotal := plan.Join(plan.InnerJoin, nat, nSupp, []string{"l_orderkey"}, []string{"t_orderkey"}).
		On(plan.GT(plan.Col("nsupp"), plan.Int(1)))
	wLate := plan.Join(plan.InnerJoin, wTotal, nLate, []string{"l_orderkey"}, []string{"lt_orderkey"}).
		On(plan.EQ(plan.Col("nlate"), plan.Int(1)))
	return plan.Top(
		plan.Aggregate(wLate, []string{"s_name"}, plan.AStar("numwait")),
		100, plan.Desc(plan.Col("numwait")), plan.Asc(plan.Col("s_name"))), nil
}

func q22(r Runner) (plan.Node, error) {
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	cust := plan.Project(plan.Scan("customer", "c_custkey", "c_phone", "c_acctbal"),
		plan.C("c_custkey"),
		plan.As("cntrycode", plan.Substr(plan.Col("c_phone"), 1, 2)),
		plan.As("acctbal", plan.Dec("c_acctbal")))
	inCodes := plan.Filter(cust, plan.InStr(plan.Col("cntrycode"), codes...))
	avgRows, err := r.Query(plan.Aggregate(
		plan.Filter(inCodes, plan.GT(plan.Col("acctbal"), plan.Float(0))),
		nil, plan.A("a", plan.Avg, plan.Col("acctbal"))))
	if err != nil {
		return nil, err
	}
	avgBal := avgRows[0][0].(float64)
	rich := plan.Filter(inCodes, plan.GT(plan.Col("acctbal"), plan.Float(avgBal)))
	noOrders := plan.Join(plan.AntiJoin, rich, plan.Scan("orders", "o_custkey"),
		[]string{"c_custkey"}, []string{"o_custkey"})
	return plan.OrderBy(
		plan.Aggregate(noOrders, []string{"cntrycode"},
			plan.AStar("numcust"), plan.A("totacctbal", plan.Sum, plan.Col("acctbal"))),
		plan.Asc(plan.Col("cntrycode"))), nil
}
