package tpch

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/sql"
)

// TestPushdownParityTPCH is the acceptance gate of the late-materialized
// scan path: every TPC-H query with SQL text must return rows identical to
// the pre-refactor Select-above-scan pipeline (scan pushdown disabled), on
// clean storage and again after the RF1/RF2 refresh streams have pushed
// tail inserts and deletes through the PDT layers and forced update
// propagation — so predicate re-checks on PDT-merged rows and tail inserts
// are covered, not just clean block scans.
func TestPushdownParityTPCH(t *testing.T) {
	const sf = 0.01
	d := Generate(sf, 9)
	names := []string{"n1", "n2", "n3"}
	eng, err := core.New(core.Config{
		Nodes:          names,
		ThreadsPerNode: 2,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
		// Low flush threshold: the refresh volume crosses it, so the
		// post-refresh phase sees propagated blocks, not just PDT merges.
		PDTFlushBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadIntoEngine(eng, d, 6); err != nil {
		t.Fatal(err)
	}

	var qs []int
	for q := range SQLQueries {
		qs = append(qs, q)
	}
	sort.Ints(qs)

	compareAll := func(phase string) {
		t.Helper()
		on, off := true, false
		for _, q := range qs {
			p, err := sql.Compile(SQLQueries[q], eng)
			if err != nil {
				t.Fatalf("%s Q%02d compile: %v", phase, q, err)
			}
			rOn, err := eng.QueryOpts(p, core.QueryOptions{ScanPushdown: &on})
			if err != nil {
				t.Fatalf("%s Q%02d pushdown: %v", phase, q, err)
			}
			rOff, err := eng.QueryOpts(p, core.QueryOptions{ScanPushdown: &off})
			if err != nil {
				t.Fatalf("%s Q%02d select-above-scan: %v", phase, q, err)
			}
			if !rowsIdentical(rOn.Rows, rOff.Rows) {
				t.Fatalf("%s Q%02d diverged: pushdown %d rows vs select-above-scan %d rows",
					phase, q, len(rOn.Rows), len(rOff.Rows))
			}
		}
	}

	compareAll("clean")

	// RF1 (trickle inserts) + RF2 (deletes) as SQL DML, as in §8.
	count := int(1500 * sf)
	if count < 5 {
		count = 5
	}
	for _, s := range RF1SQL(d, count, 21) {
		if _, err := sql.Exec(s, eng); err != nil {
			t.Fatalf("RF1: %v", err)
		}
	}
	for _, s := range RF2SQL(RF2Keys(d, count, 22)) {
		if _, err := sql.Exec(s, eng); err != nil {
			t.Fatalf("RF2: %v", err)
		}
	}
	propagated := 0
	for _, table := range []string{"orders", "lineitem"} {
		for p := 0; p < 6; p++ {
			if m := eng.PartitionMetaForTest(table, p); m != nil && m.Gen > 0 {
				propagated++
			}
		}
	}
	if propagated == 0 {
		t.Fatal("refresh did not trigger update propagation; the post-refresh phase would not cover rewritten blocks")
	}

	compareAll("post-refresh")
}

// rowsIdentical compares result multisets. Non-float values compare
// exactly. Float aggregates are rounded to 6 decimals first: parallel
// aggregation sums partials in exchange-arrival order, which is
// nondeterministic run to run (independently of scan pushdown — the same
// plan executed twice can differ in the last ulp), so bitwise comparison
// of float sums would be flaky for any two runs.
func rowsIdentical(a, b [][]any) bool {
	if len(a) != len(b) {
		return false
	}
	na, nb := normalizePushdownRows(a), normalizePushdownRows(b)
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

func normalizePushdownRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			switch x := v.(type) {
			case float64:
				fmt.Fprintf(&sb, "%.6f|", math.Round(x*1e6)/1e6)
			default:
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}
