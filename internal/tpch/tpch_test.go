package tpch

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"vectorh/internal/baseline"
	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

func TestGenerateDeterministicAndScaled(t *testing.T) {
	a := Generate(0.002, 42)
	b := Generate(0.002, 42)
	for name, ta := range a.Tables {
		tb := b.Tables[name]
		if ta.Len() != tb.Len() {
			t.Fatalf("%s: %d vs %d rows", name, ta.Len(), tb.Len())
		}
	}
	if a.Tables["orders"].Len() != 3000 {
		t.Fatalf("orders = %d", a.Tables["orders"].Len())
	}
	if a.Tables["region"].Len() != 5 || a.Tables["nation"].Len() != 25 {
		t.Fatal("fixed tables wrong size")
	}
	// Same seed, same first rows.
	ra, rb := a.Tables["lineitem"].Row(0), b.Tables["lineitem"].Row(0)
	for c := range ra {
		if ra[c] != rb[c] {
			t.Fatalf("lineitem row 0 differs at col %d", c)
		}
	}
	big := Generate(0.004, 42)
	if big.Tables["orders"].Len() != 6000 {
		t.Fatalf("scaling broken: %d", big.Tables["orders"].Len())
	}
}

func TestLineitemInvariants(t *testing.T) {
	d := Generate(0.002, 1)
	li := d.Tables["lineitem"]
	ship := li.Col(LineitemSchema.Index("l_shipdate")).Int32s()
	commit := li.Col(LineitemSchema.Index("l_commitdate")).Int32s()
	receipt := li.Col(LineitemSchema.Index("l_receiptdate")).Int32s()
	disc := li.Col(LineitemSchema.Index("l_discount")).Int64s()
	for i := range ship {
		if receipt[i] <= ship[i] {
			t.Fatalf("row %d: receipt %d <= ship %d", i, receipt[i], ship[i])
		}
		if disc[i] < 0 || disc[i] > 10 {
			t.Fatalf("row %d: discount %d", i, disc[i])
		}
		_ = commit
	}
}

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.New(core.Config{
		Nodes:          []string{"n1", "n2", "n3"},
		ThreadsPerNode: 2,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// normalize renders a result set as sorted strings with floats rounded for
// stable comparison between the vectorized and tuple-at-a-time engines.
func normalize(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			switch x := v.(type) {
			case float64:
				fmt.Fprintf(&sb, "%.4f|", roundTo(x, 4))
			default:
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func roundTo(x float64, digits int) float64 {
	p := math.Pow(10, float64(digits))
	return math.Round(x*p) / p
}

func TestAllQueriesEngineVsBaseline(t *testing.T) {
	d := Generate(0.004, 7)
	eng := newEngine(t)
	if err := LoadIntoEngine(eng, d, 6); err != nil {
		t.Fatal(err)
	}
	base := baseline.New(baseline.Hive)
	if err := LoadIntoBaseline(base, d); err != nil {
		t.Fatal(err)
	}
	for q := 1; q <= NumQueries; q++ {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			pe, err := BuildQuery(q, eng)
			if err != nil {
				t.Fatalf("build (engine): %v", err)
			}
			got, err := eng.Query(pe)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			pb, err := BuildQuery(q, base)
			if err != nil {
				t.Fatalf("build (baseline): %v", err)
			}
			want, err := base.Query(pb)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("rows: engine %d vs baseline %d", len(got), len(want))
			}
			ng, nw := normalize(got), normalize(want)
			for i := range ng {
				if ng[i] != nw[i] {
					t.Fatalf("row %d differs:\n engine   %s\n baseline %s", i, ng[i], nw[i])
				}
			}
			if len(got) == 0 && q != 19 { // q19's triple predicate can be empty at tiny SF
				t.Logf("Q%d produced no rows at this SF", q)
			}
		})
	}
}

func TestRefreshFunctions(t *testing.T) {
	d := Generate(0.002, 3)
	ob, lb := RF1(d, 30, 99)
	if ob.Len() != 30 || lb.Len() == 0 {
		t.Fatalf("RF1 sizes: %d orders, %d items", ob.Len(), lb.Len())
	}
	// New keys beyond the existing space.
	minKey := ob.Col(0).Int64s()[0]
	if minKey <= int64(d.Tables["orders"].Len()) {
		t.Fatalf("RF1 key %d collides", minKey)
	}
	keys := RF2Keys(d, 50, 5)
	if len(keys) != 50 {
		t.Fatalf("RF2 keys = %d", len(keys))
	}
	seen := map[int64]bool{}
	for _, k := range keys {
		if k < 1 || k > int64(d.Tables["orders"].Len()) || seen[k] {
			t.Fatalf("bad RF2 key %d", k)
		}
		seen[k] = true
	}
}

func TestUpdateImpactShape(t *testing.T) {
	// Miniature §8 update-impact run: apply RF1+RF2 on both engines and
	// verify Q1 answers still agree (the perf GeoDiff is a benchmark).
	d := Generate(0.002, 11)
	eng := newEngine(t)
	if err := LoadIntoEngine(eng, d, 6); err != nil {
		t.Fatal(err)
	}
	base := baseline.New(baseline.Hive)
	if err := LoadIntoBaseline(base, d); err != nil {
		t.Fatal(err)
	}
	ob, lb := RF1(d, 20, 4)
	if err := eng.InsertRows("orders", ob); err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertRows("lineitem", lb); err != nil {
		t.Fatal(err)
	}
	if err := base.InsertRows("orders", ob); err != nil {
		t.Fatal(err)
	}
	if err := base.InsertRows("lineitem", lb); err != nil {
		t.Fatal(err)
	}
	keys := RF2Keys(d, 25, 8)
	var ik []int64
	ik = append(ik, keys...)
	if err := base.DeleteByKey("orders", keys); err != nil {
		t.Fatal(err)
	}
	if err := base.DeleteByKey("lineitem", keys); err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"orders", "lineitem"} {
		col := "o_orderkey"
		if table == "lineitem" {
			col = "l_orderkey"
		}
		if _, err := eng.DeleteWhere(table, inKeys(col, ik)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []int{1, 6} {
		pe, _ := BuildQuery(q, eng)
		got, err := eng.Query(pe)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := BuildQuery(q, base)
		want, err := base.Query(pb)
		if err != nil {
			t.Fatal(err)
		}
		ng, nw := normalize(got), normalize(want)
		if len(ng) != len(nw) {
			t.Fatalf("Q%d rows: %d vs %d", q, len(ng), len(nw))
		}
		for i := range ng {
			if ng[i] != nw[i] {
				t.Fatalf("Q%d row %d after updates:\n engine   %s\n baseline %s", q, i, ng[i], nw[i])
			}
		}
	}
	_ = vector.MaxSize
}

// inKeys builds an IN-list predicate over int64 keys.
func inKeys(col string, keys []int64) plan.Expr {
	return plan.InInt(plan.Col(col), keys...)
}
