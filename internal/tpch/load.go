package tpch

import (
	"vectorh/internal/baseline"
	"vectorh/internal/core"
	"vectorh/internal/vector"
)

// LoadIntoEngine creates the §8 physical design on a VectorH engine and bulk
// loads a generated database.
func LoadIntoEngine(e *core.Engine, d *Data, partitions int) error {
	for _, info := range DDL(d.SF, partitions) {
		if err := e.CreateTable(info); err != nil {
			return err
		}
		if err := e.Load(info.Name, []*vector.Batch{d.Tables[info.Name]}); err != nil {
			return err
		}
	}
	return nil
}

// LoadIntoBaseline loads a generated database into a baseline engine.
func LoadIntoBaseline(e *baseline.Engine, d *Data) error {
	for _, info := range DDL(d.SF, 1) {
		if err := e.Load(info.Name, info.Schema, d.Tables[info.Name]); err != nil {
			return err
		}
	}
	return nil
}
