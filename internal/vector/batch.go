package vector

import "fmt"

// Batch is a horizontal slice of a table: a set of equally long vectors plus
// an optional selection vector. When Sel is non-nil, only the positions it
// lists are logically present; vectors keep their full physical length so
// that filters avoid copying (the Vectorwise "selection vector" idiom).
type Batch struct {
	Vecs []*Vec
	Sel  []int32 // nil means all rows 0..Rows()-1 of the vectors are live
}

// NewBatch returns a batch over the given vectors with no selection.
func NewBatch(vecs ...*Vec) *Batch { return &Batch{Vecs: vecs} }

// NewBatchForSchema returns an empty batch with one empty vector per field.
func NewBatchForSchema(s Schema, capHint int) *Batch {
	b := &Batch{Vecs: make([]*Vec, len(s))}
	for i, f := range s {
		b.Vecs[i] = New(f.Type.Kind, capHint)
	}
	return b
}

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.physLen()
}

func (b *Batch) physLen() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// NumCols returns the number of vectors.
func (b *Batch) NumCols() int { return len(b.Vecs) }

// Col returns vector i.
func (b *Batch) Col(i int) *Vec { return b.Vecs[i] }

// Compact materializes the selection vector: it returns a batch with dense
// vectors and a nil Sel. A batch that is already dense is returned unchanged.
func (b *Batch) Compact() *Batch {
	if b.Sel == nil {
		return b
	}
	out := &Batch{Vecs: make([]*Vec, len(b.Vecs))}
	for i, v := range b.Vecs {
		out.Vecs[i] = v.Gather(b.Sel, len(b.Sel))
	}
	return out
}

// Row extracts row i (a live-row index, resolved through Sel) as dynamically
// typed values; intended for tests and result rendering, not inner loops.
func (b *Batch) Row(i int) []any {
	phys := i
	if b.Sel != nil {
		phys = int(b.Sel[i])
	}
	row := make([]any, len(b.Vecs))
	for c, v := range b.Vecs {
		row[c] = v.Get(phys)
	}
	return row
}

// AppendRow appends dynamically typed values to a dense batch.
func (b *Batch) AppendRow(vals ...any) {
	if b.Sel != nil {
		panic("vector: AppendRow on batch with selection")
	}
	if len(vals) != len(b.Vecs) {
		panic(fmt.Sprintf("vector: AppendRow with %d values on %d columns", len(vals), len(b.Vecs)))
	}
	for i, x := range vals {
		b.Vecs[i].AppendAny(x)
	}
}

// Bytes estimates the live payload size of the batch.
func (b *Batch) Bytes() int {
	total := 0
	for _, v := range b.Vecs {
		total += v.Bytes()
	}
	return total
}

// Project returns a batch exposing only the listed columns, sharing vectors
// and the selection with the receiver.
func (b *Batch) Project(cols []int) *Batch {
	out := &Batch{Vecs: make([]*Vec, len(cols)), Sel: b.Sel}
	for i, c := range cols {
		out.Vecs[i] = b.Vecs[c]
	}
	return out
}
