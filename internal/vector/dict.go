package vector

import "vectorh/internal/compress"

// Dictionary-code vectors: a String vector whose block was PDICT-compressed
// can flow through the engine as fixed-width codes plus a per-block
// dictionary handle instead of materialized strings. Operators that
// understand codes (scan predicate kernels, the hash layer, hash-table
// verification) read them directly; everything else transparently falls
// back — any access through Strings() or a string mutator materializes the
// vector in place, so correctness never depends on an operator being
// code-aware. The PDT-delta merge path relies on exactly this: merging
// appends value-space strings, which forces re-materialization first.

// FromDictCodes wraps a code slice and its dictionary as a String vector
// without copying or materializing. Every code must index dict.Values.
func FromDictCodes(codes []uint32, dict *compress.StrDict) *Vec {
	return &Vec{kind: String, n: len(codes), codes: codes, dict: dict}
}

// IsDict reports whether the vector currently holds dictionary codes.
func (v *Vec) IsDict() bool { return v.dict != nil }

// DictCodes returns the code slice of a dictionary vector (nil otherwise).
func (v *Vec) DictCodes() []uint32 {
	if v.dict == nil {
		return nil
	}
	return v.codes[:v.n]
}

// Dict returns the dictionary handle of a dictionary vector (nil otherwise).
func (v *Vec) Dict() *compress.StrDict { return v.dict }

// StrAt returns element i of a String vector without materializing a
// dictionary vector: one array lookup, no per-row allocation.
func (v *Vec) StrAt(i int) string {
	if v.dict != nil {
		return v.dict.Values[v.codes[i]]
	}
	return v.str[i]
}

// materialize converts a dictionary vector to plain strings in place. The
// headers share the dictionary's string bytes, so this allocates one
// header array and no byte copies.
func (v *Vec) materialize() {
	vals := v.dict.Values
	out := make([]string, v.n)
	for i, c := range v.codes[:v.n] {
		out[i] = vals[c]
	}
	v.str = out
	v.codes, v.dict = nil, nil
}
