// Package vector implements the in-memory columnar data model of the
// engine: fixed-capacity typed vectors (mini-columns) of roughly a thousand
// values, batches of vectors with optional selection vectors, and the schema
// types shared by storage, execution and the planner.
//
// The design follows the Vectorwise execution model described in §2 of the
// VectorH paper: all query operators produce and consume vectors rather than
// tuples, which keeps interpretation overhead amortized over ~1024 values.
package vector

import "fmt"

// MaxSize is the number of values a full vector holds. The paper uses
// "roughly 1000 elements"; 1024 keeps modulo arithmetic cheap.
const MaxSize = 1024

// Kind enumerates the physical representations a vector can hold.
type Kind uint8

// Physical vector kinds.
const (
	Invalid Kind = iota
	Bool
	Int32
	Int64
	Float64
	String
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Bool:
		return "bool"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return "invalid"
	}
}

// Width returns the storage width of one value in bytes. Strings report the
// pointer-free average used by cost accounting (actual bytes are measured by
// the storage layer).
func (k Kind) Width() int {
	switch k {
	case Bool:
		return 1
	case Int32:
		return 4
	case Int64, Float64:
		return 8
	case String:
		return 16
	default:
		return 0
	}
}

// Logical annotates a physical kind with SQL-level meaning.
type Logical uint8

// Logical type annotations.
const (
	Plain   Logical = iota // no annotation
	Date                   // Int32: days since 1970-01-01
	Decimal                // Int64: scaled by 100 (two decimal digits)
)

// Type is the full column type: physical representation plus logical
// annotation.
type Type struct {
	Kind    Kind
	Logical Logical
}

// Convenience constructors for the types used throughout the engine.
var (
	TBool    = Type{Kind: Bool}
	TInt32   = Type{Kind: Int32}
	TInt64   = Type{Kind: Int64}
	TFloat64 = Type{Kind: Float64}
	TString  = Type{Kind: String}
	TDate    = Type{Kind: Int32, Logical: Date}
	TDecimal = Type{Kind: Int64, Logical: Decimal}
)

// String renders the type like "int64" or "int32:date".
func (t Type) String() string {
	switch t.Logical {
	case Date:
		return t.Kind.String() + ":date"
	case Decimal:
		return t.Kind.String() + ":decimal"
	default:
		return t.Kind.String()
	}
}

// Field is one named column of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema []Field

// Index returns the position of the named field, or -1.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the field with the given name.
func (s Schema) Field(name string) (Field, error) {
	if i := s.Index(name); i >= 0 {
		return s[i], nil
	}
	return Field{}, fmt.Errorf("vector: schema has no field %q", name)
}

// Names returns the field names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = f.Name
	}
	return out
}

// Clone returns a copy of the schema that can be mutated independently.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two schemas have identical names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}
