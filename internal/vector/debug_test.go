//go:build vectorh_debug

package vector

import (
	"strings"
	"testing"
)

// mustPanic runs f and returns the panic message, failing when f returns
// normally.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
		t.Fatal("expected a vectorh_debug panic, got none")
	}()
	return msg
}

func TestCheckBatchMisalignedColumns(t *testing.T) {
	a := New(Int64, 4)
	b := New(Int64, 4)
	a.AppendAny(int64(1))
	a.AppendAny(int64(2))
	b.AppendAny(int64(3))
	msg := mustPanic(t, func() { CheckBatch(NewBatch(a, b)) })
	if !strings.Contains(msg, "column 1 has 1 rows") {
		t.Fatalf("wrong panic: %q", msg)
	}
}

func TestCheckBatchSelOutOfRange(t *testing.T) {
	v := New(Int64, 4)
	v.AppendAny(int64(7))
	bad := &Batch{Vecs: []*Vec{v}, Sel: []int32{0, 3}}
	msg := mustPanic(t, func() { CheckBatch(bad) })
	if !strings.Contains(msg, "selection index 3 out of range") {
		t.Fatalf("wrong panic: %q", msg)
	}
}

func TestCheckBatchAcceptsWellFormed(t *testing.T) {
	v := New(Int64, 4)
	v.AppendAny(int64(7))
	v.AppendAny(int64(8))
	CheckBatch(&Batch{Vecs: []*Vec{v}, Sel: []int32{1, 0}})
	CheckBatch(nil)
}

func TestPoolDoublePutSel(t *testing.T) {
	var p Pool
	s := p.GetSel(8)
	p.PutSel(s)
	msg := mustPanic(t, func() { p.PutSel(s) })
	if !strings.Contains(msg, "PutSel without a matching GetSel") {
		t.Fatalf("wrong panic: %q", msg)
	}
}

func TestPoolForeignPutHashes(t *testing.T) {
	var p Pool
	msg := mustPanic(t, func() { p.PutHashes(make([]uint64, 16)) })
	if !strings.Contains(msg, "PutHashes without a matching GetHashes") {
		t.Fatalf("wrong panic: %q", msg)
	}
}

func TestPoolForeignPutBools(t *testing.T) {
	var p Pool
	msg := mustPanic(t, func() { p.PutBools(make([]bool, 16)) })
	if !strings.Contains(msg, "PutBools without a matching GetBools") {
		t.Fatalf("wrong panic: %q", msg)
	}
}

func TestPoolOutstanding(t *testing.T) {
	var p Pool
	s := p.GetSel(8)
	h := p.GetHashes(8)
	if got := p.Outstanding(); got != 2 {
		t.Fatalf("Outstanding() = %d, want 2", got)
	}
	p.PutSel(s)
	p.PutHashes(h)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding() after puts = %d, want 0", got)
	}
}
