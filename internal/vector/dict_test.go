package vector

import (
	"testing"

	"vectorh/internal/compress"
)

func dictVec() (*Vec, []string) {
	d := &compress.StrDict{Values: []string{"red", "green", "blue"}}
	codes := []uint32{2, 0, 0, 1, 2}
	want := []string{"blue", "red", "red", "green", "blue"}
	return FromDictCodes(codes, d), want
}

func TestDictVecAccessAndMaterialize(t *testing.T) {
	v, want := dictVec()
	if !v.IsDict() || v.Len() != 5 || v.Kind() != String {
		t.Fatalf("shape: dict=%v len=%d kind=%v", v.IsDict(), v.Len(), v.Kind())
	}
	for i, w := range want {
		if v.StrAt(i) != w {
			t.Fatalf("StrAt(%d) = %q, want %q", i, v.StrAt(i), w)
		}
	}
	if v.IsDict() != true {
		t.Fatal("StrAt must not materialize")
	}
	got := v.Strings() // fallback path materializes
	if v.IsDict() {
		t.Fatal("Strings must materialize")
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("row %d: %q != %q", i, got[i], w)
		}
	}
}

func TestDictVecSliceGatherPreserveCodes(t *testing.T) {
	v, want := dictVec()
	s := v.Slice(1, 4)
	if !s.IsDict() || s.Len() != 3 || s.StrAt(0) != want[1] {
		t.Fatalf("slice: dict=%v len=%d v0=%q", s.IsDict(), s.Len(), s.StrAt(0))
	}
	g := v.Gather([]int32{4, 0, 2}, 0)
	if !g.IsDict() || g.StrAt(0) != "blue" || g.StrAt(2) != "red" {
		t.Fatalf("gather: dict=%v %q %q", g.IsDict(), g.StrAt(0), g.StrAt(2))
	}
	dense := v.Gather(nil, 2)
	if !dense.IsDict() || dense.Len() != 2 || dense.StrAt(1) != "red" {
		t.Fatalf("dense gather: %v %d", dense.IsDict(), dense.Len())
	}
}

func TestDictVecAppendPaths(t *testing.T) {
	v, want := dictVec()
	out := New(String, 0)
	out.AppendFrom(v, 3)
	out.AppendRange(v, 0, 2)
	out.AppendGather(v, []int32{-1, 4})
	got := out.Strings()
	exp := []string{"green", "blue", "red", "", "blue"}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("row %d: %q != %q", i, got[i], exp[i])
		}
	}
	_ = want
}

func TestDictVecHashMatchesStringHash(t *testing.T) {
	v, want := dictVec()
	plain := FromString(want)
	hd, hp := make([]uint64, 5), make([]uint64, 5)
	HashCol(hd, v)
	HashCol(hp, plain)
	for i := range hd {
		if hd[i] != hp[i] {
			t.Fatalf("HashCol row %d: dict %x != plain %x", i, hd[i], hp[i])
		}
	}
	RehashCol(hd, v)
	RehashCol(hp, plain)
	for i := range hd {
		if hd[i] != hp[i] {
			t.Fatalf("RehashCol row %d: dict %x != plain %x", i, hd[i], hp[i])
		}
	}
	if v.IsDict() != true {
		t.Fatal("hash kernels must not materialize")
	}
}
