package vector

import "math"

// Hash kernels: column-at-a-time hashing shared by every hash consumer in
// the engine — hash joins and group-by (exec.HashTable), COUNT(DISTINCT),
// local exchange partitioning (exec.HashRows), distributed exchange routing
// (mpp.DXchgHashSplit) and table partitioning. One definition means local
// and remote partitioning always agree, and a join can trust that both
// sides of an exchange used the same function.
//
// The per-value mix is an FNV-style multiply-xor strengthened with a
// Fibonacci multiplier so that dense integer keys (the TPC-H primary keys)
// spread over all 64 bits; strings fold through FNV-1a first. Multi-column
// keys combine batch-at-a-time: HashCol seeds from the first key column,
// RehashCol folds each further column into the running hash.

const (
	hashSeed  uint64 = 14695981039346656037 // FNV-1a 64-bit offset basis
	hashPrime uint64 = 1099511628211        // FNV-1a 64-bit prime
)

// hashMix folds one 64-bit value into a running hash.
func hashMix(h, x uint64) uint64 {
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 32
	return (h ^ x) * hashPrime
}

// HashInt64 hashes a single integer key — the scalar entry point used for
// table partitioning, so storage placement and exchange routing agree.
func HashInt64(x int64) uint64 { return hashMix(hashSeed, uint64(x)) }

// HashString hashes a string with allocation-free FNV-1a.
func HashString(s string) uint64 {
	h := hashSeed
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime
	}
	return h
}

// HashStart fills dst with the hash seed: the zero-key-columns degenerate
// case (every row identical).
func HashStart(dst []uint64) {
	for i := range dst {
		dst[i] = hashSeed
	}
}

// HashCol writes the hash of every value of v into dst[:v.Len()],
// overwriting dst (first key column). Int32 values are sign-extended so an
// int32 and an int64 column holding the same keys partition identically.
func HashCol(dst []uint64, v *Vec) {
	switch v.kind {
	case Int64:
		for i, x := range v.Int64s() {
			dst[i] = hashMix(hashSeed, uint64(x))
		}
	case Int32:
		for i, x := range v.Int32s() {
			dst[i] = hashMix(hashSeed, uint64(int64(x)))
		}
	case Float64:
		for i, x := range v.Float64s() {
			dst[i] = hashMix(hashSeed, math.Float64bits(x))
		}
	case String:
		if v.dict != nil {
			// Dictionary fast path: hash each distinct value once per block,
			// then gather by code. Bit-identical to the string path, so
			// exchange partitioning and joins agree across representations.
			hs := v.dict.CodeHashes(HashString)
			for i, c := range v.codes[:v.n] {
				dst[i] = hashMix(hashSeed, hs[c])
			}
			break
		}
		for i, s := range v.Strings() {
			dst[i] = hashMix(hashSeed, HashString(s))
		}
	case Bool:
		for i, b := range v.Bools() {
			var x uint64
			if b {
				x = 1
			}
			dst[i] = hashMix(hashSeed, x)
		}
	default:
		HashStart(dst[:v.Len()])
	}
}

// RehashCol folds every value of v into the running hashes dst[:v.Len()]
// (second and later key columns).
func RehashCol(dst []uint64, v *Vec) {
	switch v.kind {
	case Int64:
		for i, x := range v.Int64s() {
			dst[i] = hashMix(dst[i], uint64(x))
		}
	case Int32:
		for i, x := range v.Int32s() {
			dst[i] = hashMix(dst[i], uint64(int64(x)))
		}
	case Float64:
		for i, x := range v.Float64s() {
			dst[i] = hashMix(dst[i], math.Float64bits(x))
		}
	case String:
		if v.dict != nil {
			hs := v.dict.CodeHashes(HashString)
			for i, c := range v.codes[:v.n] {
				dst[i] = hashMix(dst[i], hs[c])
			}
			break
		}
		for i, s := range v.Strings() {
			dst[i] = hashMix(dst[i], HashString(s))
		}
	case Bool:
		for i, b := range v.Bools() {
			var x uint64
			if b {
				x = 1
			}
			dst[i] = hashMix(dst[i], x)
		}
	}
}

// HashCols hashes a multi-column key batch-at-a-time into dst: HashCol for
// the first column, RehashCol for the rest. dst must have the columns'
// length; zero columns hash every row to the seed.
func HashCols(dst []uint64, cols []*Vec) {
	if len(cols) == 0 {
		HashStart(dst)
		return
	}
	HashCol(dst, cols[0])
	for _, c := range cols[1:] {
		RehashCol(dst, c)
	}
}
