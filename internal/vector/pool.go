package vector

// Pool recycles the scratch buffers of the hash probe and emit hot paths:
// selection vectors, hash arrays and match bitmaps. Hash operators process
// millions of batches per query; without reuse every probe batch costs a
// handful of garbage allocations, which is exactly the overhead the
// vectorized model is supposed to amortize away (§2).
//
// Ownership contract: a buffer moves strictly Get → use → Put within one
// operator. Anything handed downstream (output batches, their vectors and
// selection vectors) must NOT come from a Pool — exchange consumers and
// buffering operators may still hold references after the producer moves on
// to its next batch; this is also why the pool deliberately has no Vec
// recycling: every Vec an operator produces escapes downstream, while
// long-lived Vecs (hash-table key columns, join build columns) persist for
// the operator's lifetime and need no pooling. A Pool is not safe for
// concurrent use; every operator instance (or sender goroutine) owns its
// own. The zero value is ready to use.
type Pool struct {
	sels   [][]int32
	hashes [][]uint64
	bools  [][]bool
	dbg    poolDebug // zero-size unless built with -tags vectorh_debug
}

// GetSel returns an empty int32 buffer (selection vector, candidate list,
// counter array) with at least the given capacity.
func (p *Pool) GetSel(capHint int) []int32 {
	p.dbg.getSel()
	if n := len(p.sels); n > 0 {
		s := p.sels[n-1]
		p.sels = p.sels[:n-1]
		if cap(s) >= capHint {
			return s[:0]
		}
	}
	return make([]int32, 0, capHint)
}

// PutSel returns int32 buffers to the pool.
func (p *Pool) PutSel(ss ...[]int32) {
	for _, s := range ss {
		if cap(s) > 0 {
			p.dbg.putSel()
			p.sels = append(p.sels, s)
		}
	}
}

// GetHashes returns a hash buffer of length n (contents undefined).
func (p *Pool) GetHashes(n int) []uint64 {
	p.dbg.getHashes()
	if l := len(p.hashes); l > 0 {
		h := p.hashes[l-1]
		p.hashes = p.hashes[:l-1]
		if cap(h) >= n {
			return h[:n]
		}
	}
	return make([]uint64, n)
}

// PutHashes returns a hash buffer to the pool.
func (p *Pool) PutHashes(h []uint64) {
	if cap(h) > 0 {
		p.dbg.putHashes()
		p.hashes = append(p.hashes, h)
	}
}

// GetBools returns a zeroed bool buffer of length n.
func (p *Pool) GetBools(n int) []bool {
	p.dbg.getBools()
	if l := len(p.bools); l > 0 {
		b := p.bools[l-1]
		p.bools = p.bools[:l-1]
		if cap(b) >= n {
			b = b[:n]
			for i := range b {
				b[i] = false
			}
			return b
		}
	}
	return make([]bool, n)
}

// PutBools returns a bool buffer to the pool.
func (p *Pool) PutBools(b []bool) {
	if cap(b) > 0 {
		p.dbg.putBools()
		p.bools = append(p.bools, b)
	}
}
