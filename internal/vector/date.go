package vector

import "fmt"

// Date arithmetic over the int32 days-since-epoch representation used by
// TDate columns. The conversions use the proleptic Gregorian calendar via
// Howard Hinnant's civil-days algorithm, which is exact over the TPC-H date
// range and avoids time.Time allocation in scan and expression inner loops.

// DateFromYMD returns days since 1970-01-01 for the given civil date.
func DateFromYMD(y, m, d int) int32 {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400 // [0, 399]
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return int32(era*146097 + doe - 719468)
}

// YMDFromDate converts days since 1970-01-01 back to a civil date.
func YMDFromDate(days int32) (y, m, d int) {
	z := int(days) + 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y = yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = doy - (153*mp+2)/5 + 1
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return
}

// ParseDate parses "YYYY-MM-DD" into days since epoch.
func ParseDate(s string) (int32, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, fmt.Errorf("vector: bad date %q", s)
	}
	num := func(sub string) (int, bool) {
		n := 0
		for i := 0; i < len(sub); i++ {
			c := sub[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	y, ok1 := num(s[0:4])
	m, ok2 := num(s[5:7])
	d, ok3 := num(s[8:10])
	if !ok1 || !ok2 || !ok3 || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("vector: bad date %q", s)
	}
	return DateFromYMD(y, m, d), nil
}

// MustDate is ParseDate for literals known to be valid; it panics on error.
func MustDate(s string) int32 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders days since epoch as "YYYY-MM-DD".
func FormatDate(days int32) string {
	y, m, d := YMDFromDate(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// YearOf returns the civil year of the date.
func YearOf(days int32) int32 {
	y, _, _ := YMDFromDate(days)
	return int32(y)
}

// AddMonths shifts a date by n months, clamping the day to the target
// month's length (SQL interval semantics).
func AddMonths(days int32, n int) int32 {
	y, m, d := YMDFromDate(days)
	tot := y*12 + (m - 1) + n
	ny, nm := tot/12, tot%12
	if nm < 0 {
		nm += 12
		ny--
	}
	nm++ // back to 1-based
	if dim := daysInMonth(ny, nm); d > dim {
		d = dim
	}
	return DateFromYMD(ny, nm, d)
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if (y%4 == 0 && y%100 != 0) || y%400 == 0 {
			return 29
		}
		return 28
	}
}
