//go:build !vectorh_debug

package vector

// DebugAsserts reports whether the vectorh_debug build tag is active.
const DebugAsserts = false

// CheckBatch is a no-op in release builds; build with -tags vectorh_debug
// to enable batch shape and selection-vector bounds assertions.
func CheckBatch(b *Batch) {}

// poolDebug is empty in release builds: the hooks compile to nothing and
// the embedded field adds no size to Pool.
type poolDebug struct{}

func (poolDebug) getSel()    {}
func (poolDebug) putSel()    {}
func (poolDebug) getHashes() {}
func (poolDebug) putHashes() {}
func (poolDebug) getBools()  {}
func (poolDebug) putBools()  {}
