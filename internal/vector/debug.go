//go:build vectorh_debug

package vector

import "fmt"

// DebugAsserts reports whether the vectorh_debug build tag is active.
const DebugAsserts = true

// CheckBatch panics when b's vectors disagree on physical length or when
// its selection vector points past the physical rows. Compiled to a no-op
// without the vectorh_debug build tag, so hot paths may call it freely.
func CheckBatch(b *Batch) {
	if b == nil {
		return
	}
	n := b.physLen()
	for i, v := range b.Vecs {
		if v.Len() != n {
			panic(fmt.Sprintf("vector: batch column %d has %d rows, column 0 has %d", i, v.Len(), n))
		}
	}
	for _, s := range b.Sel {
		if int(s) < 0 || int(s) >= n {
			panic(fmt.Sprintf("vector: selection index %d out of range [0,%d)", s, n))
		}
	}
}

// poolDebug tracks per-kind outstanding buffer counts so a Put without a
// matching Get (a double-put, or a foreign buffer entering the pool) fails
// loudly instead of silently corrupting reuse.
type poolDebug struct {
	sels, hashes, bools int
}

func (d *poolDebug) get(kind *int) { *kind++ }

func (d *poolDebug) put(kind *int, what string) {
	*kind--
	if *kind < 0 {
		panic("vector: Put" + what + " without a matching Get" + what)
	}
}

func (d *poolDebug) getSel()    { d.get(&d.sels) }
func (d *poolDebug) putSel()    { d.put(&d.sels, "Sel") }
func (d *poolDebug) getHashes() { d.get(&d.hashes) }
func (d *poolDebug) putHashes() { d.put(&d.hashes, "Hashes") }
func (d *poolDebug) getBools()  { d.get(&d.bools) }
func (d *poolDebug) putBools()  { d.put(&d.bools, "Bools") }

// Outstanding returns the number of buffers handed out and not yet
// returned, for leak assertions in tests.
func (p *Pool) Outstanding() int { return p.dbg.sels + p.dbg.hashes + p.dbg.bools }
