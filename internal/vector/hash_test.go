package vector

import "testing"

func TestHashColAgreesWithScalarHash(t *testing.T) {
	vals := []int64{0, 1, -1, 42, 1 << 40, -(1 << 40)}
	v := FromInt64(vals)
	dst := make([]uint64, v.Len())
	HashCol(dst, v)
	for i, x := range vals {
		if dst[i] != HashInt64(x) {
			t.Fatalf("HashCol[%d] = %x, HashInt64(%d) = %x", i, dst[i], x, HashInt64(x))
		}
	}
}

func TestHashColInt32MatchesInt64(t *testing.T) {
	// An int32 and an int64 column holding the same key values must
	// partition identically (sign extension, not zero extension).
	vals32 := []int32{0, 1, -1, 1 << 20, -(1 << 20)}
	vals64 := make([]int64, len(vals32))
	for i, x := range vals32 {
		vals64[i] = int64(x)
	}
	h32 := make([]uint64, len(vals32))
	h64 := make([]uint64, len(vals64))
	HashCol(h32, FromInt32(vals32))
	HashCol(h64, FromInt64(vals64))
	for i := range h32 {
		if h32[i] != h64[i] {
			t.Fatalf("int32/int64 hash mismatch at %d: %x vs %x", i, h32[i], h64[i])
		}
	}
}

func TestHashColsMultiColumn(t *testing.T) {
	a := FromInt64([]int64{1, 1, 2})
	b := FromString([]string{"x", "y", "x"})
	dst := make([]uint64, 3)
	HashCols(dst, []*Vec{a, b})
	if dst[0] == dst[1] || dst[0] == dst[2] || dst[1] == dst[2] {
		t.Fatalf("distinct composite keys must (overwhelmingly) hash apart: %v", dst)
	}
	// Same composite key values hash equal regardless of the batch they
	// arrive in.
	dst2 := make([]uint64, 1)
	HashCols(dst2, []*Vec{FromInt64([]int64{1}), FromString([]string{"y"})})
	if dst2[0] != dst[1] {
		t.Fatalf("composite key (1,y) hashed %x then %x", dst[1], dst2[0])
	}
}

func TestHashColsZeroColumns(t *testing.T) {
	dst := []uint64{1, 2, 3}
	HashCols(dst, nil)
	if dst[0] != dst[1] || dst[1] != dst[2] {
		t.Fatalf("zero-key hash must be constant: %v", dst)
	}
}

func TestHashColKinds(t *testing.T) {
	// Every kind hashes without allocation or panic, and unequal values
	// hash apart.
	cases := []*Vec{
		FromBool([]bool{true, false}),
		FromFloat64([]float64{1.5, 1.7}),
		FromString([]string{"a", "b"}),
	}
	for _, v := range cases {
		dst := make([]uint64, 2)
		HashCol(dst, v)
		if dst[0] == dst[1] {
			t.Fatalf("%v values hashed equal: %v", v.Kind(), dst)
		}
		re := []uint64{dst[0], dst[1]}
		RehashCol(re, v)
		if re[0] == dst[0] {
			t.Fatalf("%v rehash did not fold", v.Kind())
		}
	}
}

func TestPoolRoundTrip(t *testing.T) {
	var p Pool
	s := p.GetSel(100)
	s = append(s, 1, 2, 3)
	p.PutSel(s)
	s2 := p.GetSel(50)
	if len(s2) != 0 || cap(s2) < 50 {
		t.Fatalf("recycled sel: len=%d cap=%d", len(s2), cap(s2))
	}
	h := p.GetHashes(64)
	if len(h) != 64 {
		t.Fatalf("hashes len = %d", len(h))
	}
	p.PutHashes(h)
	bm := p.GetBools(16)
	bm[3] = true
	p.PutBools(bm)
	bm2 := p.GetBools(8)
	for i, b := range bm2 {
		if b {
			t.Fatalf("recycled bools not zeroed at %d", i)
		}
	}
}

func TestAppendRangeAndGather(t *testing.T) {
	src := FromInt64([]int64{10, 20, 30, 40})
	v := New(Int64, 0)
	v.AppendRange(src, 1, 3)
	if v.Len() != 2 || v.Int64s()[0] != 20 || v.Int64s()[1] != 30 {
		t.Fatalf("AppendRange = %v", v.Int64s())
	}
	v.AppendGather(src, []int32{3, -1, 0})
	got := v.Int64s()
	if v.Len() != 5 || got[2] != 40 || got[3] != 0 || got[4] != 10 {
		t.Fatalf("AppendGather = %v", got)
	}
	s := New(String, 0)
	s.AppendGather(FromString([]string{"a", "b"}), []int32{1, -1})
	if s.Strings()[0] != "b" || s.Strings()[1] != "" {
		t.Fatalf("string AppendGather = %v", s.Strings())
	}
}
