package vector

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindStringAndWidth(t *testing.T) {
	cases := []struct {
		k     Kind
		name  string
		width int
	}{
		{Bool, "bool", 1},
		{Int32, "int32", 4},
		{Int64, "int64", 8},
		{Float64, "float64", 8},
		{String, "string", 16},
		{Invalid, "invalid", 0},
	}
	for _, c := range cases {
		if c.k.String() != c.name {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, c.k.String(), c.name)
		}
		if c.k.Width() != c.width {
			t.Errorf("Kind(%d).Width() = %d, want %d", c.k, c.k.Width(), c.width)
		}
	}
}

func TestTypeString(t *testing.T) {
	if got := TDate.String(); got != "int32:date" {
		t.Errorf("TDate.String() = %q", got)
	}
	if got := TDecimal.String(); got != "int64:decimal" {
		t.Errorf("TDecimal.String() = %q", got)
	}
	if got := TInt64.String(); got != "int64" {
		t.Errorf("TInt64.String() = %q", got)
	}
}

func TestSchemaLookup(t *testing.T) {
	s := Schema{{"a", TInt32}, {"b", TString}, {"c", TDate}}
	if s.Index("b") != 1 {
		t.Fatalf("Index(b) = %d", s.Index("b"))
	}
	if s.Index("z") != -1 {
		t.Fatalf("Index(z) = %d", s.Index("z"))
	}
	f, err := s.Field("c")
	if err != nil || f.Type != TDate {
		t.Fatalf("Field(c) = %v, %v", f, err)
	}
	if _, err := s.Field("nope"); err == nil {
		t.Fatal("Field(nope) should fail")
	}
	clone := s.Clone()
	clone[0].Name = "x"
	if s[0].Name != "a" {
		t.Fatal("Clone aliases the original")
	}
	if !s.Equal(Schema{{"a", TInt32}, {"b", TString}, {"c", TDate}}) {
		t.Fatal("Equal false negative")
	}
	if s.Equal(clone) {
		t.Fatal("Equal false positive")
	}
}

func TestVecAppendAndAccess(t *testing.T) {
	v := New(Int64, 4)
	for i := int64(0); i < 10; i++ {
		v.AppendInt64(i * i)
	}
	if v.Len() != 10 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Int64s()[3] != 9 {
		t.Fatalf("v[3] = %d", v.Int64s()[3])
	}
	if v.Get(4).(int64) != 16 {
		t.Fatalf("Get(4) = %v", v.Get(4))
	}
	v.Reset()
	if v.Len() != 0 {
		t.Fatal("Reset did not empty vector")
	}
}

func TestVecKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	New(Int32, 1).AppendString("boom")
}

func TestVecGatherWithAndWithoutSel(t *testing.T) {
	v := FromInt32([]int32{10, 20, 30, 40, 50})
	dense := v.Gather(nil, 3)
	if got := dense.Int32s(); len(got) != 3 || got[2] != 30 {
		t.Fatalf("dense gather = %v", got)
	}
	picked := v.Gather([]int32{4, 0, 2}, 3)
	if got := picked.Int32s(); got[0] != 50 || got[1] != 10 || got[2] != 30 {
		t.Fatalf("sel gather = %v", got)
	}
}

func TestVecSliceSharesStorage(t *testing.T) {
	v := FromFloat64([]float64{1, 2, 3, 4})
	s := v.Slice(1, 3)
	if s.Len() != 2 || s.Float64s()[0] != 2 {
		t.Fatalf("slice = %v", s.Float64s())
	}
	s.Float64s()[0] = 99
	if v.Float64s()[1] != 99 {
		t.Fatal("Slice should alias the parent storage")
	}
}

func TestVecStringBytes(t *testing.T) {
	v := FromString([]string{"ab", "cdef"})
	if got := v.Bytes(); got != 6+2*16 {
		t.Fatalf("Bytes = %d", got)
	}
}

func TestConstAndAppendZero(t *testing.T) {
	v := Const(String, "x", 3)
	if v.Len() != 3 || v.Strings()[2] != "x" {
		t.Fatalf("Const = %v", v.Strings())
	}
	v.AppendZero()
	if v.Strings()[3] != "" {
		t.Fatal("AppendZero on string should append empty string")
	}
	b := Const(Bool, true, 2)
	if !b.Bools()[1] {
		t.Fatal("Const bool broken")
	}
}

func TestBatchSelAndCompact(t *testing.T) {
	b := NewBatch(FromInt64([]int64{1, 2, 3, 4}), FromString([]string{"a", "b", "c", "d"}))
	if b.Len() != 4 || b.NumCols() != 2 {
		t.Fatalf("batch dims %d/%d", b.Len(), b.NumCols())
	}
	b.Sel = []int32{1, 3}
	if b.Len() != 2 {
		t.Fatalf("selected len = %d", b.Len())
	}
	row := b.Row(1)
	if row[0].(int64) != 4 || row[1].(string) != "d" {
		t.Fatalf("Row(1) = %v", row)
	}
	c := b.Compact()
	if c.Sel != nil || c.Len() != 2 || c.Col(0).Int64s()[0] != 2 {
		t.Fatalf("Compact = %v", c.Col(0).Int64s())
	}
	if c2 := c.Compact(); c2 != c {
		t.Fatal("Compact of dense batch should be identity")
	}
}

func TestBatchProjectSharesVectors(t *testing.T) {
	v0, v1 := FromInt32([]int32{1}), FromInt32([]int32{2})
	b := NewBatch(v0, v1)
	p := b.Project([]int{1})
	if p.NumCols() != 1 || p.Col(0) != v1 {
		t.Fatal("Project should share vectors")
	}
}

func TestBatchAppendRow(t *testing.T) {
	b := NewBatchForSchema(Schema{{"k", TInt64}, {"s", TString}}, 4)
	b.AppendRow(int64(7), "hi")
	if b.Len() != 1 || b.Row(0)[1] != "hi" {
		t.Fatalf("AppendRow result %v", b.Row(0))
	}
}

func TestDateRoundTripAgainstTimePackage(t *testing.T) {
	// Exhaustively compare against the standard library across the TPC-H
	// range plus leap-year edges.
	start := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3000; i += 7 {
		d := start.AddDate(0, 0, i)
		want := int32(d.Unix() / 86400)
		got := DateFromYMD(d.Year(), int(d.Month()), d.Day())
		if got != want {
			t.Fatalf("DateFromYMD(%v) = %d, want %d", d, got, want)
		}
		y, m, dd := YMDFromDate(got)
		if y != d.Year() || m != int(d.Month()) || dd != d.Day() {
			t.Fatalf("YMDFromDate(%d) = %d-%d-%d, want %v", got, y, m, dd, d)
		}
	}
}

func TestParseAndFormatDate(t *testing.T) {
	d, err := ParseDate("1995-03-05")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(d) != "1995-03-05" {
		t.Fatalf("FormatDate = %q", FormatDate(d))
	}
	if YearOf(d) != 1995 {
		t.Fatalf("YearOf = %d", YearOf(d))
	}
	for _, bad := range []string{"1995/03/05", "19950305", "1995-13-05", "1995-00-10", "x995-03-05"} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) should fail", bad)
		}
	}
}

func TestAddMonthsClamping(t *testing.T) {
	jan31 := MustDate("1996-01-31")
	if got := FormatDate(AddMonths(jan31, 1)); got != "1996-02-29" {
		t.Fatalf("AddMonths leap clamp = %q", got)
	}
	if got := FormatDate(AddMonths(jan31, 13)); got != "1997-02-28" {
		t.Fatalf("AddMonths non-leap clamp = %q", got)
	}
	if got := FormatDate(AddMonths(jan31, -2)); got != "1995-11-30" {
		t.Fatalf("AddMonths negative = %q", got)
	}
	d := MustDate("1998-12-01")
	if got := FormatDate(AddMonths(d, 3)); got != "1999-03-01" {
		t.Fatalf("AddMonths = %q", got)
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(off int16) bool {
		days := int32(off) // ~±89 years around epoch
		y, m, d := YMDFromDate(days)
		return DateFromYMD(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherPreservesValuesProperty(t *testing.T) {
	f := func(vals []int64, picks []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		v := FromInt64(vals)
		sel := make([]int32, len(picks))
		for i, p := range picks {
			sel[i] = int32(int(p) % len(vals))
		}
		g := v.Gather(sel, len(sel))
		for i, s := range sel {
			if g.Int64s()[i] != vals[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
