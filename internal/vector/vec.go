package vector

import (
	"fmt"

	"vectorh/internal/compress"
)

// Vec is a typed column vector holding up to MaxSize values (more is allowed
// for intermediate buffers, but operators produce at most MaxSize). The zero
// Vec is invalid; use New or one of the From constructors.
type Vec struct {
	kind Kind
	n    int

	b   []bool
	i32 []int32
	i64 []int64
	f64 []float64
	str []string

	// Dictionary-code form of a String vector (see dict.go): when dict is
	// non-nil, values are dict.Values[codes[i]] and str is unset until the
	// vector materializes.
	codes []uint32
	dict  *compress.StrDict
}

// New returns an empty vector of the given kind with capacity for capHint
// values (MaxSize if capHint <= 0).
func New(kind Kind, capHint int) *Vec {
	if capHint <= 0 {
		capHint = MaxSize
	}
	v := &Vec{kind: kind}
	switch kind {
	case Bool:
		v.b = make([]bool, 0, capHint)
	case Int32:
		v.i32 = make([]int32, 0, capHint)
	case Int64:
		v.i64 = make([]int64, 0, capHint)
	case Float64:
		v.f64 = make([]float64, 0, capHint)
	case String:
		v.str = make([]string, 0, capHint)
	default:
		panic(fmt.Sprintf("vector: New with kind %v", kind))
	}
	return v
}

// FromBool wraps an existing slice without copying.
func FromBool(vals []bool) *Vec { return &Vec{kind: Bool, n: len(vals), b: vals} }

// FromInt32 wraps an existing slice without copying.
func FromInt32(vals []int32) *Vec { return &Vec{kind: Int32, n: len(vals), i32: vals} }

// FromInt64 wraps an existing slice without copying.
func FromInt64(vals []int64) *Vec { return &Vec{kind: Int64, n: len(vals), i64: vals} }

// FromFloat64 wraps an existing slice without copying.
func FromFloat64(vals []float64) *Vec { return &Vec{kind: Float64, n: len(vals), f64: vals} }

// FromString wraps an existing slice without copying.
func FromString(vals []string) *Vec { return &Vec{kind: String, n: len(vals), str: vals} }

// Const returns a vector of n copies of the given value (Go value must match
// the kind: bool, int32, int64, float64 or string).
func Const(kind Kind, val any, n int) *Vec {
	v := New(kind, n)
	for i := 0; i < n; i++ {
		v.AppendAny(val)
	}
	return v
}

// Kind returns the vector's physical kind.
func (v *Vec) Kind() Kind { return v.kind }

// Len returns the number of values.
func (v *Vec) Len() int { return v.n }

// Reset truncates the vector to zero length, keeping capacity. A
// dictionary vector resets to a plain (empty) string vector.
func (v *Vec) Reset() {
	v.n = 0
	v.b = v.b[:0]
	v.i32 = v.i32[:0]
	v.i64 = v.i64[:0]
	v.f64 = v.f64[:0]
	v.str = v.str[:0]
	v.codes, v.dict = nil, nil
}

// Bools returns the backing slice of a Bool vector.
func (v *Vec) Bools() []bool { v.check(Bool); return v.b[:v.n] }

// Int32s returns the backing slice of an Int32 vector.
func (v *Vec) Int32s() []int32 { v.check(Int32); return v.i32[:v.n] }

// Int64s returns the backing slice of an Int64 vector.
func (v *Vec) Int64s() []int64 { v.check(Int64); return v.i64[:v.n] }

// Float64s returns the backing slice of a Float64 vector.
func (v *Vec) Float64s() []float64 { v.check(Float64); return v.f64[:v.n] }

// Strings returns the backing slice of a String vector, materializing a
// dictionary vector first — the universal fallback for operators that are
// not code-aware.
func (v *Vec) Strings() []string {
	v.check(String)
	if v.dict != nil {
		v.materialize()
	}
	return v.str[:v.n]
}

func (v *Vec) check(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("vector: %v access on %v vector", k, v.kind))
	}
}

// AppendBool appends to a Bool vector.
func (v *Vec) AppendBool(x bool) { v.check(Bool); v.b = append(v.b, x); v.n++ }

// AppendInt32 appends to an Int32 vector.
func (v *Vec) AppendInt32(x int32) { v.check(Int32); v.i32 = append(v.i32, x); v.n++ }

// AppendInt64 appends to an Int64 vector.
func (v *Vec) AppendInt64(x int64) { v.check(Int64); v.i64 = append(v.i64, x); v.n++ }

// AppendFloat64 appends to a Float64 vector.
func (v *Vec) AppendFloat64(x float64) { v.check(Float64); v.f64 = append(v.f64, x); v.n++ }

// AppendString appends to a String vector (materializing a dictionary
// vector: appended values have no code in the block dictionary).
func (v *Vec) AppendString(x string) {
	v.check(String)
	if v.dict != nil {
		v.materialize()
	}
	v.str = append(v.str, x)
	v.n++
}

// AppendAny appends a dynamically typed value; the value's Go type must match
// the vector kind.
func (v *Vec) AppendAny(x any) {
	switch v.kind {
	case Bool:
		v.AppendBool(x.(bool))
	case Int32:
		v.AppendInt32(x.(int32))
	case Int64:
		v.AppendInt64(x.(int64))
	case Float64:
		v.AppendFloat64(x.(float64))
	case String:
		v.AppendString(x.(string))
	default:
		panic("vector: AppendAny on invalid vector")
	}
}

// Get returns element i as a dynamically typed value.
func (v *Vec) Get(i int) any {
	switch v.kind {
	case Bool:
		return v.b[i]
	case Int32:
		return v.i32[i]
	case Int64:
		return v.i64[i]
	case Float64:
		return v.f64[i]
	case String:
		return v.StrAt(i)
	default:
		panic("vector: Get on invalid vector")
	}
}

// AppendFrom appends element i of src (which must have the same kind).
func (v *Vec) AppendFrom(src *Vec, i int) {
	switch v.kind {
	case Bool:
		v.AppendBool(src.b[i])
	case Int32:
		v.AppendInt32(src.i32[i])
	case Int64:
		v.AppendInt64(src.i64[i])
	case Float64:
		v.AppendFloat64(src.f64[i])
	case String:
		v.AppendString(src.StrAt(i))
	default:
		panic("vector: AppendFrom on invalid vector")
	}
}

// AppendRange bulk-appends src[lo:hi] (same kind) column-wise, avoiding the
// per-value kind dispatch of AppendFrom on build/emit hot paths.
func (v *Vec) AppendRange(src *Vec, lo, hi int) {
	switch v.kind {
	case Bool:
		v.b = append(v.b, src.b[lo:hi]...)
	case Int32:
		v.i32 = append(v.i32, src.i32[lo:hi]...)
	case Int64:
		v.i64 = append(v.i64, src.i64[lo:hi]...)
	case Float64:
		v.f64 = append(v.f64, src.f64[lo:hi]...)
	case String:
		if v.dict != nil {
			v.materialize()
		}
		if src.dict != nil {
			vals := src.dict.Values
			for _, c := range src.codes[lo:hi] {
				v.str = append(v.str, vals[c])
			}
		} else {
			v.str = append(v.str, src.str[lo:hi]...)
		}
	default:
		panic("vector: AppendRange on invalid vector")
	}
	v.n += hi - lo
}

// AppendGather appends src[sel[i]] for every position of sel, column-wise.
// Negative indices append the kind's zero value (outer-join padding).
func (v *Vec) AppendGather(src *Vec, sel []int32) {
	switch v.kind {
	case Bool:
		for _, i := range sel {
			if i < 0 {
				v.b = append(v.b, false)
			} else {
				v.b = append(v.b, src.b[i])
			}
		}
	case Int32:
		for _, i := range sel {
			if i < 0 {
				v.i32 = append(v.i32, 0)
			} else {
				v.i32 = append(v.i32, src.i32[i])
			}
		}
	case Int64:
		for _, i := range sel {
			if i < 0 {
				v.i64 = append(v.i64, 0)
			} else {
				v.i64 = append(v.i64, src.i64[i])
			}
		}
	case Float64:
		for _, i := range sel {
			if i < 0 {
				v.f64 = append(v.f64, 0)
			} else {
				v.f64 = append(v.f64, src.f64[i])
			}
		}
	case String:
		if v.dict != nil {
			v.materialize()
		}
		if src.dict != nil {
			vals, codes := src.dict.Values, src.codes
			for _, i := range sel {
				if i < 0 {
					v.str = append(v.str, "")
				} else {
					v.str = append(v.str, vals[codes[i]])
				}
			}
		} else {
			for _, i := range sel {
				if i < 0 {
					v.str = append(v.str, "")
				} else {
					v.str = append(v.str, src.str[i])
				}
			}
		}
	default:
		panic("vector: AppendGather on invalid vector")
	}
	v.n += len(sel)
}

// AppendZero appends the kind's zero value.
func (v *Vec) AppendZero() {
	switch v.kind {
	case Bool:
		v.AppendBool(false)
	case Int32:
		v.AppendInt32(0)
	case Int64:
		v.AppendInt64(0)
	case Float64:
		v.AppendFloat64(0)
	case String:
		v.AppendString("")
	default:
		panic("vector: AppendZero on invalid vector")
	}
}

// Gather returns a new dense vector with the values at the given positions.
// A nil sel returns a copy of the first n values. Gathering a dictionary
// vector gathers codes and keeps the dictionary handle, so selection and
// join payload gathers stay in code space.
func (v *Vec) Gather(sel []int32, n int) *Vec {
	if v.dict != nil {
		var codes []uint32
		if sel == nil {
			codes = append(make([]uint32, 0, n), v.codes[:n]...)
		} else {
			codes = make([]uint32, 0, len(sel))
			for _, i := range sel {
				codes = append(codes, v.codes[i])
			}
		}
		return FromDictCodes(codes, v.dict)
	}
	out := New(v.kind, n)
	if sel == nil {
		switch v.kind {
		case Bool:
			out.b = append(out.b, v.b[:n]...)
		case Int32:
			out.i32 = append(out.i32, v.i32[:n]...)
		case Int64:
			out.i64 = append(out.i64, v.i64[:n]...)
		case Float64:
			out.f64 = append(out.f64, v.f64[:n]...)
		case String:
			out.str = append(out.str, v.str[:n]...)
		}
		out.n = n
		return out
	}
	switch v.kind {
	case Bool:
		for _, i := range sel {
			out.b = append(out.b, v.b[i])
		}
	case Int32:
		for _, i := range sel {
			out.i32 = append(out.i32, v.i32[i])
		}
	case Int64:
		for _, i := range sel {
			out.i64 = append(out.i64, v.i64[i])
		}
	case Float64:
		for _, i := range sel {
			out.f64 = append(out.f64, v.f64[i])
		}
	case String:
		for _, i := range sel {
			out.str = append(out.str, v.str[i])
		}
	}
	out.n = len(sel)
	return out
}

// Slice returns a view of elements [lo, hi) without copying.
func (v *Vec) Slice(lo, hi int) *Vec {
	out := &Vec{kind: v.kind, n: hi - lo}
	if v.dict != nil {
		out.codes, out.dict = v.codes[lo:hi], v.dict
		return out
	}
	switch v.kind {
	case Bool:
		out.b = v.b[lo:hi]
	case Int32:
		out.i32 = v.i32[lo:hi]
	case Int64:
		out.i64 = v.i64[lo:hi]
	case Float64:
		out.f64 = v.f64[lo:hi]
	case String:
		out.str = v.str[lo:hi]
	}
	return out
}

// GatherBytes estimates the payload bytes of the elements sel selects —
// what AppendGather(src, sel) would add to a destination, under the same
// accounting as Bytes. Negative (padding) indices count as zero values.
func (v *Vec) GatherBytes(sel []int32) int {
	if v.kind == String {
		if v.dict != nil {
			// Codes stay codes through a gather: 4 bytes per value, the
			// dictionary is shared and not duplicated by the gather.
			return len(sel) * 4
		}
		total := 0
		for _, i := range sel {
			if i >= 0 {
				total += len(v.str[i])
			}
		}
		return total + len(sel)*16
	}
	return len(sel) * v.kind.Width()
}

// Bytes returns an estimate of the in-memory payload size.
func (v *Vec) Bytes() int {
	if v.kind == String {
		if v.dict != nil {
			return v.n * 4
		}
		total := 0
		for _, s := range v.str[:v.n] {
			total += len(s)
		}
		return total + v.n*16
	}
	return v.n * v.kind.Width()
}
