package expr

import (
	"testing"

	"vectorh/internal/vector"
)

func batch() *vector.Batch {
	return vector.NewBatch(
		vector.FromInt64([]int64{1, 2, 3, 4}),
		vector.FromFloat64([]float64{10, 20, 30, 40}),
		vector.FromString([]string{"apple", "banana", "cherry", "apricot"}),
		vector.FromInt32([]int32{100, 200, 300, 400}),
	)
}

func evalOK(t *testing.T, e Expr, b *vector.Batch) *vector.Vec {
	t.Helper()
	v, err := e.Eval(b)
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	return v
}

func TestColAndSel(t *testing.T) {
	b := batch()
	v := evalOK(t, Col(0, vector.Int64), b)
	if v.Int64s()[2] != 3 {
		t.Fatalf("col = %v", v.Int64s())
	}
	b.Sel = []int32{3, 1}
	v = evalOK(t, Col(0, vector.Int64), b)
	if v.Len() != 2 || v.Int64s()[0] != 4 || v.Int64s()[1] != 2 {
		t.Fatalf("col with sel = %v", v.Int64s())
	}
	if _, err := Col(9, vector.Int64).Eval(b); err == nil {
		t.Fatal("out of range column should fail")
	}
	if _, err := Col(0, vector.String).Eval(b); err == nil {
		t.Fatal("kind mismatch should fail")
	}
}

func TestArithmeticPromotion(t *testing.T) {
	b := batch()
	v := evalOK(t, Add(Col(0, vector.Int64), ConstInt64(10)), b)
	if v.Kind() != vector.Int64 || v.Int64s()[0] != 11 {
		t.Fatalf("int add = %v", v.Int64s())
	}
	v = evalOK(t, Mul(Col(0, vector.Int64), Col(1, vector.Float64)), b)
	if v.Kind() != vector.Float64 || v.Float64s()[1] != 40 {
		t.Fatalf("mixed mul = %v", v.Float64s())
	}
	v = evalOK(t, Div(Col(0, vector.Int64), ConstInt64(2)), b)
	if v.Kind() != vector.Float64 || v.Float64s()[2] != 1.5 {
		t.Fatalf("div = %v", v.Float64s())
	}
	v = evalOK(t, Sub(Col(3, vector.Int32), ConstInt32(50)), b)
	if v.Kind() != vector.Int64 || v.Int64s()[0] != 50 {
		t.Fatalf("int32 sub = %v", v.Int64s())
	}
	if _, err := Add(Col(2, vector.String), ConstInt64(1)).Eval(b); err == nil {
		t.Fatal("string arithmetic should fail")
	}
}

func TestScaledDecimal(t *testing.T) {
	b := vector.NewBatch(vector.FromInt64([]int64{150, 225})) // cents
	v := evalOK(t, Scaled(Col(0, vector.Int64), 0.01), b)
	if v.Float64s()[0] != 1.5 || v.Float64s()[1] != 2.25 {
		t.Fatalf("scaled = %v", v.Float64s())
	}
}

func TestComparisons(t *testing.T) {
	b := batch()
	cases := []struct {
		e    Expr
		want []bool
	}{
		{LT(Col(0, vector.Int64), ConstInt64(3)), []bool{true, true, false, false}},
		{LE(Col(0, vector.Int64), ConstInt64(3)), []bool{true, true, true, false}},
		{GT(Col(1, vector.Float64), ConstFloat(25)), []bool{false, false, true, true}},
		{GE(Col(3, vector.Int32), ConstInt32(300)), []bool{false, false, true, true}},
		{EQ(Col(2, vector.String), ConstStr("cherry")), []bool{false, false, true, false}},
		{NE(Col(0, vector.Int64), ConstInt64(2)), []bool{true, false, true, true}},
		{EQ(Col(0, vector.Int64), Col(1, vector.Float64)), []bool{false, false, false, false}},
	}
	for _, c := range cases {
		v := evalOK(t, c.e, b)
		got := v.Bools()
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("%s = %v, want %v", c.e, got, c.want)
			}
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	b := batch()
	e := And(GT(Col(0, vector.Int64), ConstInt64(1)), LT(Col(0, vector.Int64), ConstInt64(4)))
	if got := evalOK(t, e, b).Bools(); !got[1] || !got[2] || got[0] || got[3] {
		t.Fatalf("and = %v", got)
	}
	e = Or(EQ(Col(0, vector.Int64), ConstInt64(1)), EQ(Col(0, vector.Int64), ConstInt64(4)))
	if got := evalOK(t, e, b).Bools(); !got[0] || !got[3] || got[1] {
		t.Fatalf("or = %v", got)
	}
	e = Not(LT(Col(0, vector.Int64), ConstInt64(3)))
	if got := evalOK(t, e, b).Bools(); got[0] || !got[3] {
		t.Fatalf("not = %v", got)
	}
	if _, err := And(Col(0, vector.Int64), ConstBool(true)).Eval(b); err == nil {
		t.Fatal("AND on non-bool should fail")
	}
}

func TestBetween(t *testing.T) {
	b := batch()
	e := Between(Col(0, vector.Int64), ConstInt64(2), ConstInt64(3))
	got := evalOK(t, e, b).Bools()
	want := []bool{false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("between = %v", got)
		}
	}
}

func TestLikePatterns(t *testing.T) {
	b := vector.NewBatch(vector.FromString([]string{
		"forest green metallic", "green", "light green", "greenish blue", "blue",
	}))
	cases := []struct {
		pattern string
		want    []bool
	}{
		{"%green%", []bool{true, true, true, true, false}},
		{"green%", []bool{false, true, false, true, false}},
		{"%green", []bool{false, true, true, false, false}},
		{"green", []bool{false, true, false, false, false}},
		{"%forest%blue%", []bool{false, false, false, false, false}},
		{"%forest%metallic", []bool{true, false, false, false, false}},
	}
	for _, c := range cases {
		got := evalOK(t, Like(Col(0, vector.String), c.pattern), b).Bools()
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("like %q = %v, want %v", c.pattern, got, c.want)
			}
		}
		neg := evalOK(t, NotLike(Col(0, vector.String), c.pattern), b).Bools()
		for i := range c.want {
			if neg[i] == c.want[i] {
				t.Fatalf("not like %q = %v", c.pattern, neg)
			}
		}
	}
}

func TestInLists(t *testing.T) {
	b := batch()
	got := evalOK(t, InStr(Col(2, vector.String), "apple", "cherry"), b).Bools()
	if !got[0] || got[1] || !got[2] || got[3] {
		t.Fatalf("in-str = %v", got)
	}
	got = evalOK(t, InInt64(Col(0, vector.Int64), 2, 4), b).Bools()
	if got[0] || !got[1] || got[2] || !got[3] {
		t.Fatalf("in-int = %v", got)
	}
	got = evalOK(t, InInt64(Col(3, vector.Int32), 200), b).Bools()
	if got[0] || !got[1] {
		t.Fatalf("in-int32 = %v", got)
	}
}

func TestSubstr(t *testing.T) {
	b := vector.NewBatch(vector.FromString([]string{"13-345-678", "x", ""}))
	got := evalOK(t, Substr(Col(0, vector.String), 1, 2), b).Strings()
	if got[0] != "13" || got[1] != "x" || got[2] != "" {
		t.Fatalf("substr = %v", got)
	}
}

func TestYear(t *testing.T) {
	b := vector.NewBatch(vector.FromInt32([]int32{
		vector.MustDate("1995-06-15"), vector.MustDate("1996-01-01"),
	}))
	got := evalOK(t, Year(Col(0, vector.Int32)), b).Int32s()
	if got[0] != 1995 || got[1] != 1996 {
		t.Fatalf("year = %v", got)
	}
}

func TestCaseWhen(t *testing.T) {
	b := batch()
	e := Case(GT(Col(0, vector.Int64), ConstInt64(2)), ConstFloat(1), ConstFloat(0))
	got := evalOK(t, e, b).Float64s()
	if got[0] != 0 || got[2] != 1 {
		t.Fatalf("case = %v", got)
	}
	if _, err := Case(ConstBool(true), ConstFloat(1), ConstStr("x")).Eval(b); err == nil {
		t.Fatal("mismatched CASE branches should fail")
	}
}

func TestSelFromBool(t *testing.T) {
	b := batch()
	v := evalOK(t, GT(Col(0, vector.Int64), ConstInt64(2)), b)
	sel := SelFromBool(v, b)
	if len(sel) != 2 || sel[0] != 2 || sel[1] != 3 {
		t.Fatalf("sel = %v", sel)
	}
	// Composition with an existing selection.
	b.Sel = []int32{0, 2, 3}
	v = evalOK(t, GT(Col(0, vector.Int64), ConstInt64(2)), b)
	sel = SelFromBool(v, b)
	if len(sel) != 2 || sel[0] != 2 || sel[1] != 3 {
		t.Fatalf("composed sel = %v", sel)
	}
}

func TestConstEval(t *testing.T) {
	b := batch()
	if v := evalOK(t, ConstStr("x"), b); v.Len() != 4 || v.Strings()[3] != "x" {
		t.Fatal("const string broken")
	}
	if v := evalOK(t, ConstBool(true), b); !v.Bools()[0] {
		t.Fatal("const bool broken")
	}
}
