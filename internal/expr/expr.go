// Package expr implements the vectorized expression interpreter of the
// engine: every expression evaluates over a whole batch at a time (honoring
// its selection vector) and produces a dense result vector, keeping the
// per-tuple interpretation overhead amortized over ~1024 values (§2 of the
// paper).
//
// Columns are referenced by position; the planner binds names to positions.
// Decimal columns are stored as scaled int64 and explicitly converted with
// Scaled for arithmetic, mirroring how a real engine separates storage and
// computation types.
package expr

import (
	"fmt"
	"math"
	"strings"

	"vectorh/internal/vector"
)

// Expr is a vectorized expression.
type Expr interface {
	// Eval returns a dense vector of length b.Len().
	Eval(b *vector.Batch) (*vector.Vec, error)
	// Kind is the result kind.
	Kind() vector.Kind
	String() string
}

// --- column references and constants ---

type colExpr struct {
	idx  int
	kind vector.Kind
}

// Col references input column idx with the given kind.
func Col(idx int, kind vector.Kind) Expr { return &colExpr{idx, kind} }

func (c *colExpr) Kind() vector.Kind { return c.kind }
func (c *colExpr) String() string    { return fmt.Sprintf("$%d", c.idx) }

func (c *colExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	if c.idx >= len(b.Vecs) {
		return nil, fmt.Errorf("expr: column $%d out of range (%d cols)", c.idx, len(b.Vecs))
	}
	v := b.Vecs[c.idx]
	if v.Kind() != c.kind {
		return nil, fmt.Errorf("expr: column $%d is %v, expected %v", c.idx, v.Kind(), c.kind)
	}
	if b.Sel == nil {
		return v, nil
	}
	return v.Gather(b.Sel, len(b.Sel)), nil
}

type constExpr struct {
	kind vector.Kind
	val  any
}

// ConstInt64 is an int64 literal.
func ConstInt64(v int64) Expr { return &constExpr{vector.Int64, v} }

// ConstInt32 is an int32 literal (also used for date literals).
func ConstInt32(v int32) Expr { return &constExpr{vector.Int32, v} }

// ConstFloat is a float64 literal.
func ConstFloat(v float64) Expr { return &constExpr{vector.Float64, v} }

// ConstStr is a string literal.
func ConstStr(v string) Expr { return &constExpr{vector.String, v} }

// ConstBool is a boolean literal.
func ConstBool(v bool) Expr { return &constExpr{vector.Bool, v} }

func (c *constExpr) Kind() vector.Kind { return c.kind }
func (c *constExpr) String() string    { return fmt.Sprintf("%v", c.val) }

func (c *constExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	return vector.Const(c.kind, c.val, b.Len()), nil
}

// --- numeric promotion helpers ---

// asInt64 produces an []int64 view of an int32/int64 vector.
func asInt64(v *vector.Vec) ([]int64, bool) {
	switch v.Kind() {
	case vector.Int64:
		return v.Int64s(), true
	case vector.Int32:
		src := v.Int32s()
		out := make([]int64, len(src))
		for i, x := range src {
			out[i] = int64(x)
		}
		return out, true
	default:
		return nil, false
	}
}

// asFloat produces an []float64 view of any numeric vector.
func asFloat(v *vector.Vec) ([]float64, bool) {
	switch v.Kind() {
	case vector.Float64:
		return v.Float64s(), true
	case vector.Int64:
		src := v.Int64s()
		out := make([]float64, len(src))
		for i, x := range src {
			out[i] = float64(x)
		}
		return out, true
	case vector.Int32:
		src := v.Int32s()
		out := make([]float64, len(src))
		for i, x := range src {
			out[i] = float64(x)
		}
		return out, true
	default:
		return nil, false
	}
}

func isNumeric(k vector.Kind) bool {
	return k == vector.Int32 || k == vector.Int64 || k == vector.Float64
}

// --- arithmetic ---

type arithOp uint8

const (
	opAdd arithOp = iota
	opSub
	opMul
	opDiv
)

type arithExpr struct {
	op   arithOp
	l, r Expr
	kind vector.Kind
}

func arith(op arithOp, l, r Expr) Expr {
	kind := vector.Int64
	if l.Kind() == vector.Float64 || r.Kind() == vector.Float64 || op == opDiv {
		kind = vector.Float64
	}
	return &arithExpr{op: op, l: l, r: r, kind: kind}
}

// Add returns l + r (int64 unless either side is float, then float64).
func Add(l, r Expr) Expr { return arith(opAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return arith(opSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return arith(opMul, l, r) }

// Div returns l / r as float64.
func Div(l, r Expr) Expr { return arith(opDiv, l, r) }

func (e *arithExpr) Kind() vector.Kind { return e.kind }

func (e *arithExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.l, [...]string{"+", "-", "*", "/"}[e.op], e.r)
}

func (e *arithExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	lv, err := e.l.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := e.r.Eval(b)
	if err != nil {
		return nil, err
	}
	if !isNumeric(lv.Kind()) || !isNumeric(rv.Kind()) {
		return nil, fmt.Errorf("expr: arithmetic on %v/%v", lv.Kind(), rv.Kind())
	}
	if e.kind == vector.Float64 {
		l, _ := asFloat(lv)
		r, _ := asFloat(rv)
		out := make([]float64, len(l))
		switch e.op {
		case opAdd:
			for i := range l {
				out[i] = l[i] + r[i]
			}
		case opSub:
			for i := range l {
				out[i] = l[i] - r[i]
			}
		case opMul:
			for i := range l {
				out[i] = l[i] * r[i]
			}
		case opDiv:
			for i := range l {
				out[i] = l[i] / r[i]
			}
		}
		return vector.FromFloat64(out), nil
	}
	l, _ := asInt64(lv)
	r, _ := asInt64(rv)
	out := make([]int64, len(l))
	switch e.op {
	case opAdd:
		for i := range l {
			out[i] = l[i] + r[i]
		}
	case opSub:
		for i := range l {
			out[i] = l[i] - r[i]
		}
	case opMul:
		for i := range l {
			out[i] = l[i] * r[i]
		}
	}
	return vector.FromInt64(out), nil
}

// Scaled converts a scaled-int64 decimal column to float64 (factor is the
// inverse scale, e.g. 0.01 for two decimal digits).
func Scaled(e Expr, factor float64) Expr { return &scaledExpr{e, factor} }

type scaledExpr struct {
	e      Expr
	factor float64
}

func (s *scaledExpr) Kind() vector.Kind { return vector.Float64 }
func (s *scaledExpr) String() string    { return fmt.Sprintf("scaled(%s,%g)", s.e, s.factor) }

func (s *scaledExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := s.e.Eval(b)
	if err != nil {
		return nil, err
	}
	f, ok := asFloat(v)
	if !ok {
		return nil, fmt.Errorf("expr: scaled() on %v", v.Kind())
	}
	out := make([]float64, len(f))
	for i, x := range f {
		out[i] = x * s.factor
	}
	return vector.FromFloat64(out), nil
}

// --- physical casts (the trickle-update write path converts computed
// values into the target column's storage representation) ---

// CastInt32 narrows an integer expression to int32, failing at evaluation
// time on values outside the int32 range (silent truncation would corrupt
// stored data).
func CastInt32(e Expr) Expr { return &castInt32Expr{e} }

type castInt32Expr struct{ e Expr }

func (c *castInt32Expr) Kind() vector.Kind { return vector.Int32 }
func (c *castInt32Expr) String() string    { return fmt.Sprintf("int32(%s)", c.e) }

func (c *castInt32Expr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := c.e.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind() == vector.Int32 {
		return v, nil
	}
	src, ok := asInt64(v)
	if !ok {
		return nil, fmt.Errorf("expr: int32() on %v", v.Kind())
	}
	out := make([]int32, len(src))
	for i, x := range src {
		if x < -1<<31 || x > 1<<31-1 {
			return nil, fmt.Errorf("expr: value %d overflows int32", x)
		}
		out[i] = int32(x)
	}
	return vector.FromInt32(out), nil
}

// CastInt64 widens an int32 expression to int64 (a no-op on int64 input).
func CastInt64(e Expr) Expr { return &castInt64Expr{e} }

type castInt64Expr struct{ e Expr }

func (c *castInt64Expr) Kind() vector.Kind { return vector.Int64 }
func (c *castInt64Expr) String() string    { return fmt.Sprintf("int64(%s)", c.e) }

func (c *castInt64Expr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := c.e.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind() == vector.Int64 {
		return v, nil
	}
	src, ok := asInt64(v)
	if !ok {
		return nil, fmt.Errorf("expr: int64() on %v", v.Kind())
	}
	return vector.FromInt64(src), nil
}

// ToScaledInt64 converts a numeric expression to a scaled int64 (the
// inverse of Scaled): round(x * scale). It is how computed SQL decimal
// values return to their storage representation.
func ToScaledInt64(e Expr, scale float64) Expr { return &toScaledExpr{e, scale} }

type toScaledExpr struct {
	e     Expr
	scale float64
}

func (s *toScaledExpr) Kind() vector.Kind { return vector.Int64 }
func (s *toScaledExpr) String() string    { return fmt.Sprintf("toscaled(%s,%g)", s.e, s.scale) }

func (s *toScaledExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := s.e.Eval(b)
	if err != nil {
		return nil, err
	}
	f, ok := asFloat(v)
	if !ok {
		return nil, fmt.Errorf("expr: toscaled() on %v", v.Kind())
	}
	out := make([]int64, len(f))
	for i, x := range f {
		out[i] = int64(math.Round(x * s.scale))
	}
	return vector.FromInt64(out), nil
}

// --- comparisons ---

type cmpOp uint8

const (
	opLT cmpOp = iota
	opLE
	opGT
	opGE
	opEQ
	opNE
)

type cmpExpr struct {
	op   cmpOp
	l, r Expr
}

// LT returns l < r.
func LT(l, r Expr) Expr { return &cmpExpr{opLT, l, r} }

// LE returns l <= r.
func LE(l, r Expr) Expr { return &cmpExpr{opLE, l, r} }

// GT returns l > r.
func GT(l, r Expr) Expr { return &cmpExpr{opGT, l, r} }

// GE returns l >= r.
func GE(l, r Expr) Expr { return &cmpExpr{opGE, l, r} }

// EQ returns l == r.
func EQ(l, r Expr) Expr { return &cmpExpr{opEQ, l, r} }

// NE returns l != r.
func NE(l, r Expr) Expr { return &cmpExpr{opNE, l, r} }

func (e *cmpExpr) Kind() vector.Kind { return vector.Bool }

func (e *cmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.l, [...]string{"<", "<=", ">", ">=", "=", "<>"}[e.op], e.r)
}

// cmpStrOne applies one comparison to a scalar string pair (the dictionary
// fast path evaluates it once per dictionary entry).
func cmpStrOne(op cmpOp, a, b string) bool {
	switch op {
	case opLT:
		return a < b
	case opLE:
		return a <= b
	case opGT:
		return a > b
	case opGE:
		return a >= b
	case opEQ:
		return a == b
	case opNE:
		return a != b
	}
	return false
}

// dictMap evaluates a scalar string predicate once per dictionary entry of a
// code vector, then gathers the per-entry verdicts through the codes.
func dictMap(v *vector.Vec, pred func(string) bool) []bool {
	vals := v.Dict().Values
	dm := make([]bool, len(vals))
	for i, s := range vals {
		dm[i] = pred(s)
	}
	codes := v.DictCodes()
	out := make([]bool, len(codes))
	for i, c := range codes {
		out[i] = dm[c]
	}
	return out
}

func cmpSlice[T int64 | float64 | string](op cmpOp, l, r []T) []bool {
	out := make([]bool, len(l))
	switch op {
	case opLT:
		for i := range l {
			out[i] = l[i] < r[i]
		}
	case opLE:
		for i := range l {
			out[i] = l[i] <= r[i]
		}
	case opGT:
		for i := range l {
			out[i] = l[i] > r[i]
		}
	case opGE:
		for i := range l {
			out[i] = l[i] >= r[i]
		}
	case opEQ:
		for i := range l {
			out[i] = l[i] == r[i]
		}
	case opNE:
		for i := range l {
			out[i] = l[i] != r[i]
		}
	}
	return out
}

func (e *cmpExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	lv, err := e.l.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := e.r.Eval(b)
	if err != nil {
		return nil, err
	}
	switch {
	case lv.Kind() == vector.String && rv.Kind() == vector.String:
		// Dictionary fast path: comparing a code vector against a literal
		// evaluates the comparison once per dictionary entry, then maps it
		// over the codes — no string materialization, no per-row compares.
		if lv.IsDict() {
			if c, ok := e.r.(*constExpr); ok {
				return vector.FromBool(dictMap(lv, func(s string) bool {
					return cmpStrOne(e.op, s, c.val.(string))
				})), nil
			}
		}
		if rv.IsDict() {
			if c, ok := e.l.(*constExpr); ok {
				return vector.FromBool(dictMap(rv, func(s string) bool {
					return cmpStrOne(e.op, c.val.(string), s)
				})), nil
			}
		}
		return vector.FromBool(cmpSlice(e.op, lv.Strings(), rv.Strings())), nil
	case lv.Kind() == vector.Float64 || rv.Kind() == vector.Float64:
		l, ok1 := asFloat(lv)
		r, ok2 := asFloat(rv)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("expr: compare %v with %v", lv.Kind(), rv.Kind())
		}
		return vector.FromBool(cmpSlice(e.op, l, r)), nil
	default:
		l, ok1 := asInt64(lv)
		r, ok2 := asInt64(rv)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("expr: compare %v with %v", lv.Kind(), rv.Kind())
		}
		return vector.FromBool(cmpSlice(e.op, l, r)), nil
	}
}

// Between returns lo <= e AND e <= hi.
func Between(e, lo, hi Expr) Expr { return And(GE(e, lo), LE(e, hi)) }

// --- boolean connectives ---

type boolOp uint8

const (
	opAnd boolOp = iota
	opOr
	opNot
)

type boolExpr struct {
	op   boolOp
	l, r Expr
}

// And returns l AND r.
func And(l, r Expr) Expr { return &boolExpr{opAnd, l, r} }

// Or returns l OR r.
func Or(l, r Expr) Expr { return &boolExpr{opOr, l, r} }

// Not returns NOT l.
func Not(l Expr) Expr { return &boolExpr{opNot, l, nil} }

func (e *boolExpr) Kind() vector.Kind { return vector.Bool }

func (e *boolExpr) String() string {
	if e.op == opNot {
		return fmt.Sprintf("not(%s)", e.l)
	}
	return fmt.Sprintf("(%s %s %s)", e.l, [...]string{"and", "or"}[e.op], e.r)
}

func (e *boolExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	lv, err := e.l.Eval(b)
	if err != nil {
		return nil, err
	}
	if lv.Kind() != vector.Bool {
		return nil, fmt.Errorf("expr: boolean op on %v", lv.Kind())
	}
	l := lv.Bools()
	if e.op == opNot {
		out := make([]bool, len(l))
		for i := range l {
			out[i] = !l[i]
		}
		return vector.FromBool(out), nil
	}
	rv, err := e.r.Eval(b)
	if err != nil {
		return nil, err
	}
	if rv.Kind() != vector.Bool {
		return nil, fmt.Errorf("expr: boolean op on %v", rv.Kind())
	}
	r := rv.Bools()
	out := make([]bool, len(l))
	if e.op == opAnd {
		for i := range l {
			out[i] = l[i] && r[i]
		}
	} else {
		for i := range l {
			out[i] = l[i] || r[i]
		}
	}
	return vector.FromBool(out), nil
}

// --- string predicates ---

type likeExpr struct {
	e       Expr
	pattern string
	negate  bool
}

// Like implements SQL LIKE with % wildcards (the _ wildcard is not needed by
// TPC-H and unsupported).
func Like(e Expr, pattern string) Expr { return &likeExpr{e, pattern, false} }

// NotLike is the negation of Like.
func NotLike(e Expr, pattern string) Expr { return &likeExpr{e, pattern, true} }

func (e *likeExpr) Kind() vector.Kind { return vector.Bool }
func (e *likeExpr) String() string    { return fmt.Sprintf("like(%s,%q)", e.e, e.pattern) }

func (e *likeExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := e.e.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind() != vector.String {
		return nil, fmt.Errorf("expr: LIKE on %v", v.Kind())
	}
	parts := strings.Split(e.pattern, "%")
	anchoredL := !strings.HasPrefix(e.pattern, "%")
	anchoredR := !strings.HasSuffix(e.pattern, "%")
	var pieces []string
	for _, p := range parts {
		if p != "" {
			pieces = append(pieces, p)
		}
	}
	if v.IsDict() {
		// LIKE over a code vector: match each dictionary entry once, then
		// map the verdicts over the codes. For low-cardinality columns this
		// turns ~1024 substring searches per vector into a handful.
		return vector.FromBool(dictMap(v, func(s string) bool {
			return likeMatch(s, pieces, anchoredL, anchoredR) != e.negate
		})), nil
	}
	src := v.Strings()
	out := make([]bool, len(src))
	for i, s := range src {
		out[i] = likeMatch(s, pieces, anchoredL, anchoredR) != e.negate
	}
	return vector.FromBool(out), nil
}

func likeMatch(s string, pieces []string, anchoredL, anchoredR bool) bool {
	if len(pieces) == 0 {
		return true
	}
	if anchoredL {
		if !strings.HasPrefix(s, pieces[0]) {
			return false
		}
		s = s[len(pieces[0]):]
		pieces = pieces[1:]
		if len(pieces) == 0 && anchoredR {
			// No wildcard between the anchors: exact match required.
			return s == ""
		}
	}
	var last string
	if anchoredR && len(pieces) > 0 {
		last = pieces[len(pieces)-1]
		pieces = pieces[:len(pieces)-1]
	}
	for _, p := range pieces {
		idx := strings.Index(s, p)
		if idx < 0 {
			return false
		}
		s = s[idx+len(p):]
	}
	if last != "" {
		return strings.HasSuffix(s, last)
	}
	return true
}

// InStr tests membership in a string list.
func InStr(e Expr, vals ...string) Expr { return &inStrExpr{e, vals} }

type inStrExpr struct {
	e    Expr
	vals []string
}

func (e *inStrExpr) Kind() vector.Kind { return vector.Bool }
func (e *inStrExpr) String() string    { return fmt.Sprintf("in(%s,%v)", e.e, e.vals) }

func (e *inStrExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := e.e.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind() != vector.String {
		return nil, fmt.Errorf("expr: IN strings on %v", v.Kind())
	}
	set := make(map[string]bool, len(e.vals))
	for _, s := range e.vals {
		set[s] = true
	}
	if v.IsDict() {
		return vector.FromBool(dictMap(v, func(s string) bool { return set[s] })), nil
	}
	src := v.Strings()
	out := make([]bool, len(src))
	for i, s := range src {
		out[i] = set[s]
	}
	return vector.FromBool(out), nil
}

// InInt64 tests membership in an integer list.
func InInt64(e Expr, vals ...int64) Expr { return &inIntExpr{e, vals} }

type inIntExpr struct {
	e    Expr
	vals []int64
}

func (e *inIntExpr) Kind() vector.Kind { return vector.Bool }
func (e *inIntExpr) String() string    { return fmt.Sprintf("in(%s,%v)", e.e, e.vals) }

func (e *inIntExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := e.e.Eval(b)
	if err != nil {
		return nil, err
	}
	src, ok := asInt64(v)
	if !ok {
		return nil, fmt.Errorf("expr: IN ints on %v", v.Kind())
	}
	set := make(map[int64]bool, len(e.vals))
	for _, x := range e.vals {
		set[x] = true
	}
	out := make([]bool, len(src))
	for i, x := range src {
		out[i] = set[x]
	}
	return vector.FromBool(out), nil
}

// Substr returns the 1-based substring of fixed length (SQL SUBSTRING(e FROM
// start FOR length)).
func Substr(e Expr, start, length int) Expr { return &substrExpr{e, start, length} }

type substrExpr struct {
	e             Expr
	start, length int
}

func (e *substrExpr) Kind() vector.Kind { return vector.String }
func (e *substrExpr) String() string    { return fmt.Sprintf("substr(%s,%d,%d)", e.e, e.start, e.length) }

func (e *substrExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := e.e.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind() != vector.String {
		return nil, fmt.Errorf("expr: SUBSTRING on %v", v.Kind())
	}
	src := v.Strings()
	out := make([]string, len(src))
	for i, s := range src {
		lo := e.start - 1
		if lo > len(s) {
			lo = len(s)
		}
		hi := lo + e.length
		if hi > len(s) {
			hi = len(s)
		}
		out[i] = s[lo:hi]
	}
	return vector.FromString(out), nil
}

// --- dates ---

// Year extracts the civil year of a date column (int32 days since epoch).
func Year(e Expr) Expr { return &yearExpr{e} }

type yearExpr struct{ e Expr }

func (e *yearExpr) Kind() vector.Kind { return vector.Int32 }
func (e *yearExpr) String() string    { return fmt.Sprintf("year(%s)", e.e) }

func (e *yearExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	v, err := e.e.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind() != vector.Int32 {
		return nil, fmt.Errorf("expr: YEAR on %v", v.Kind())
	}
	src := v.Int32s()
	out := make([]int32, len(src))
	for i, d := range src {
		out[i] = vector.YearOf(d)
	}
	return vector.FromInt32(out), nil
}

// --- CASE WHEN ---

// Case returns then where when is true, otherwise els. then and els must
// have the same kind.
func Case(when, then, els Expr) Expr { return &caseExpr{when, then, els} }

type caseExpr struct {
	when, then, els Expr
}

func (e *caseExpr) Kind() vector.Kind { return e.then.Kind() }
func (e *caseExpr) String() string {
	return fmt.Sprintf("case(%s,%s,%s)", e.when, e.then, e.els)
}

func (e *caseExpr) Eval(b *vector.Batch) (*vector.Vec, error) {
	wv, err := e.when.Eval(b)
	if err != nil {
		return nil, err
	}
	if wv.Kind() != vector.Bool {
		return nil, fmt.Errorf("expr: CASE condition is %v", wv.Kind())
	}
	tv, err := e.then.Eval(b)
	if err != nil {
		return nil, err
	}
	ev, err := e.els.Eval(b)
	if err != nil {
		return nil, err
	}
	if tv.Kind() != ev.Kind() {
		return nil, fmt.Errorf("expr: CASE branches %v vs %v", tv.Kind(), ev.Kind())
	}
	w := wv.Bools()
	out := vector.New(tv.Kind(), len(w))
	for i, cond := range w {
		if cond {
			out.AppendFrom(tv, i)
		} else {
			out.AppendFrom(ev, i)
		}
	}
	return out, nil
}

// SelFromBool converts a dense boolean vector into a selection vector over
// the batch it was computed from (composing with the batch's existing
// selection).
func SelFromBool(v *vector.Vec, b *vector.Batch) []int32 {
	bits := v.Bools()
	out := make([]int32, 0, len(bits))
	if b.Sel == nil {
		for i, ok := range bits {
			if ok {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i, ok := range bits {
		if ok {
			out = append(out, b.Sel[i])
		}
	}
	return out
}
