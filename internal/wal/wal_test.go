package wal

import (
	"errors"
	"fmt"
	"testing"

	"vectorh/internal/hdfs"
)

func testFS() *hdfs.Cluster {
	return hdfs.NewCluster([]string{"n1", "n2"}, hdfs.Config{BlockSize: 1 << 12, Replication: 2})
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := testFS()
	l := Open(fs, "/wal/p0", "n1")
	for i := 0; i < 20; i++ {
		if err := l.Append(uint8(i%3), []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := l.Replay(func(rt uint8, data []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", rt, data))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 || got[0] != "0:record-0" || got[19] != "1:record-19" {
		t.Fatalf("replay = %v", got)
	}
}

func TestReplayEmptyAndMissing(t *testing.T) {
	fs := testFS()
	l := Open(fs, "/wal/none", "n1")
	if err := l.Replay(func(uint8, []byte) error { t.Fatal("no records expected"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestReplayStopsOnCallbackError(t *testing.T) {
	fs := testFS()
	l := Open(fs, "/wal/p0", "n1")
	l.Append(1, []byte("a"))
	l.Append(1, []byte("b"))
	boom := errors.New("boom")
	n := 0
	err := l.Replay(func(uint8, []byte) error { n++; return boom })
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestTornTailIgnored(t *testing.T) {
	fs := testFS()
	l := Open(fs, "/wal/p0", "n1")
	l.Append(1, []byte("complete"))
	// Simulate a crash mid-append: write a partial frame directly.
	w, _ := fs.Append("/wal/p0", "n1")
	w.Write([]byte{200}) // claims 200-byte payload that never arrives
	w.Close()
	var got int
	if err := l.Replay(func(uint8, []byte) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("replayed %d records, want 1", got)
	}
}

func TestCorruptChecksumDetected(t *testing.T) {
	fs := testFS()
	l := Open(fs, "/wal/p0", "n1")
	l.Append(1, []byte("x"))
	// Append a well-framed record with a wrong CRC.
	w, _ := fs.Append("/wal/p0", "n1")
	w.Write([]byte{1, 7, 'y', 0xde, 0xad, 0xbe, 0xef})
	w.Close()
	err := l.Replay(func(uint8, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := testFS()
	l := Open(fs, "/wal/p0", "n1")
	l.Append(1, []byte("x"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l.Replay(func(uint8, []byte) error { n++; return nil })
	if n != 0 {
		t.Fatalf("records after truncate: %d", n)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err) // idempotent
	}
}
