// Package wal implements the write-ahead logs of VectorH (§3, §6): simple
// checksummed record framing over append-only HDFS files. VectorH keeps one
// WAL per table partition — read and written only by the partition's
// responsible node — plus a much-reduced global WAL written by the session
// master for 2PC decisions, DDL and metadata.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"vectorh/internal/hdfs"
)

// ErrCorrupt reports a record whose checksum or framing is invalid.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is one write-ahead log file.
type Log struct {
	fs   *hdfs.Cluster
	path string
	node string
}

// Open returns a handle to the log at path; the file is created lazily on
// the first append. Reads and writes are attributed to node.
func Open(fs *hdfs.Cluster, path, node string) *Log {
	return &Log{fs: fs, path: path, node: node}
}

// Path returns the HDFS path of the log.
func (l *Log) Path() string { return l.path }

// Append durably appends one record. Framing: uvarint payload length, one
// type byte, payload, CRC32 over type+payload.
func (l *Log) Append(recType uint8, data []byte) error {
	w, err := l.fs.Append(l.path, l.node)
	if err != nil {
		return err
	}
	frame := binary.AppendUvarint(nil, uint64(len(data)))
	frame = append(frame, recType)
	frame = append(frame, data...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{recType})
	crc.Write(data)
	frame = binary.LittleEndian.AppendUint32(frame, crc.Sum32())
	if _, err := w.Write(frame); err != nil {
		return err
	}
	return w.Close()
}

// Replay invokes fn for every record in order. A torn final record (crash
// during append) terminates replay without error; any other corruption is
// reported.
func (l *Log) Replay(fn func(recType uint8, data []byte) error) error {
	if !l.fs.Exists(l.path) {
		return nil
	}
	buf, err := l.fs.ReadAll(l.path, l.node)
	if err != nil {
		return err
	}
	for off := 0; off < len(buf); {
		n, sz := binary.Uvarint(buf[off:])
		if sz == 0 {
			return nil // torn length varint at the tail
		}
		if sz < 0 {
			return fmt.Errorf("%w: bad length at offset %d", ErrCorrupt, off)
		}
		total := sz + 1 + int(n) + 4
		if off+total > len(buf) {
			return nil // torn tail record: ignore, as a real WAL replay would
		}
		recType := buf[off+sz]
		data := buf[off+sz+1 : off+sz+1+int(n)]
		crc := crc32.NewIEEE()
		crc.Write([]byte{recType})
		crc.Write(data)
		want := binary.LittleEndian.Uint32(buf[off+sz+1+int(n):])
		if crc.Sum32() != want {
			return fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		if err := fn(recType, data); err != nil {
			return err
		}
		off += total
	}
	return nil
}

// Truncate discards the log contents (after a checkpoint such as update
// propagation).
func (l *Log) Truncate() error {
	if l.fs.Exists(l.path) {
		return l.fs.Delete(l.path)
	}
	return nil
}
