// Package lockgolden exercises the lockdiscipline analyzer.
package lockgolden

import "sync"

// engine mirrors the real Engine's two-lock layout: writeMu serializes
// writers, mu guards the catalog, and the fixed order is writeMu before mu.
type engine struct {
	mu      sync.RWMutex
	writeMu sync.Mutex
	n       int
}

// goodOrder takes the locks in the documented order.
func (e *engine) goodOrder() int {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n > 0 {
		return e.n
	}
	return 0
}

// badOrder acquires writeMu while holding mu: deadlock bait.
func (e *engine) badOrder() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.writeMu.Lock() // want "acquired while e.mu is held"
	defer e.writeMu.Unlock()
	if e.n > 0 {
		return e.n
	}
	return 0
}

// reorderedAfterRelease is fine: mu is released before writeMu is taken.
func (e *engine) reorderedAfterRelease() int {
	e.mu.RLock()
	n := e.n
	e.mu.RUnlock()
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if n > 0 {
		return n
	}
	return 0
}

// straightLine releases inline with no control flow in the critical section.
func (e *engine) straightLine() int {
	e.mu.RLock()
	n := e.n
	e.mu.RUnlock()
	if n > 42 {
		return 42
	}
	return n
}

// manualMultiReturn unlocks on each path by hand: flagged, because nothing
// stops the next edit from adding an early return between them.
func (e *engine) manualMultiReturn(x int) int {
	e.mu.Lock() // want "multi-return path without defer"
	if x > 0 {
		e.mu.Unlock()
		return x
	}
	e.mu.Unlock()
	return 0
}

// auditedManual is the same shape with the audit comment.
func (e *engine) auditedManual(x int) int {
	e.mu.Lock() //lint:unlock both paths release before returning
	if x > 0 {
		e.mu.Unlock()
		return x
	}
	e.mu.Unlock()
	return 0
}

// singleReturn needs no defer: one way out.
func (e *engine) singleReturn() int {
	e.mu.RLock()
	n := e.n
	if n < 0 {
		n = 0
	}
	e.mu.RUnlock()
	return n
}

// deferredClosure releases through a deferred closure: allowed.
func (e *engine) deferredClosure(x int) int {
	e.mu.Lock()
	defer func() {
		e.n++
		e.mu.Unlock()
	}()
	if x > 0 {
		return x
	}
	return 0
}

// byValueParam copies the engine, forking its mutexes.
func byValueParam(e engine) int { // want "by-value parameter copies"
	return e.n
}

// valueReceiver does the same through the receiver.
func (e engine) valueReceiver() int { // want "value receiver copies"
	return e.n
}

// assignCopy copies a lock-bearing struct through a dereference.
func assignCopy(e *engine) {
	cp := *e // want "assignment copies"
	sink(&cp)
}

// fieldCopy copies just the mutex out of the struct.
func fieldCopy(e *engine) {
	var m = e.mu // want "variable initialization copies"
	sink(&m)
}

// rangeCopy copies each element, mutex included.
func rangeCopy(engines []engine) int {
	total := 0
	for _, e := range engines { // want "range clause copies"
		total += e.n
	}
	return total
}

// pointerUses are all conforming: no value ever moves.
func pointerUses(engines []*engine) int {
	total := 0
	for _, e := range engines {
		total += e.n
	}
	return total
}

func sink(any) {}

var keep = []any{
	(*engine).goodOrder, (*engine).badOrder, (*engine).reorderedAfterRelease,
	(*engine).straightLine, (*engine).manualMultiReturn, (*engine).auditedManual,
	(*engine).singleReturn, (*engine).deferredClosure,
	byValueParam, engine.valueReceiver, assignCopy, fieldCopy, rangeCopy, pointerUses,
}
