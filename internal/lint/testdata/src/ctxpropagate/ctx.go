// Package ctxgolden exercises the ctxpropagate analyzer: flag cases are
// annotated with want comments, conforming and suppressed cases are not.
package ctxgolden

import "context"

// mintRoot creates a root context in library code with no excuse.
func mintRoot() context.Context {
	return context.Background() // want "context.Background() in library code"
}

// mintTODO is the same violation via TODO.
func mintTODO() context.Context {
	return context.TODO() // want "context.TODO() in library code"
}

// shadowsParam has a perfectly good ctx and ignores it.
func shadowsParam(ctx context.Context) context.Context {
	c := context.TODO() // want "already has a context.Context parameter \"ctx\""
	_ = ctx
	return c
}

// nilDefault is the sanctioned compat idiom: legacy callers pass nil.
func nilDefault(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // ok: nil-default guard
	}
	return ctx
}

// nilDefaultReturn is the expression form of the same idiom.
func nilDefaultReturn(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() // ok: nil-default guard
	}
	return ctx
}

// audited carries the audit comment: a deliberate root for a daemon.
func audited() context.Context {
	return context.Background() //lint:ctx deliberate root context for the serve loop
}

// ctxSecond violates parameter ordering.
func ctxSecond(name string, ctx context.Context) string { // want "context.Context must be the first parameter"
	_ = ctx
	return name
}

// ctxFirst is the conforming order.
func ctxFirst(ctx context.Context, name string) string {
	_ = ctx
	return name
}

// unusedCtx promises cancellability it never delivers.
func unusedCtx(ctx context.Context, n int) int { // want "context parameter \"ctx\" is never used"
	return n + 1
}

// blankCtx opts out explicitly; the blank name is the audit.
func blankCtx(_ context.Context, n int) int {
	return n + 1
}

var sink any

func init() {
	sink = []any{mintRoot, mintTODO, shadowsParam, nilDefault, nilDefaultReturn,
		audited, ctxSecond, ctxFirst, unusedCtx, blankCtx}
}
