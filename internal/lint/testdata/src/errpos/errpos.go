// Package sqlgolden exercises the errpos analyzer under the SQL front-end
// package path, where every user-facing error must carry a position.
package sqlgolden

import (
	"errors"
	"fmt"
)

// Pos/Error/errf mirror the real front-end's positioned-error machinery.
type Pos struct{ Line, Col int }

type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: %d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg) }

func errf(p Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// parse reports through errf: conforming.
func parse(p Pos, tok string) error {
	if tok == "" {
		return errf(p, "unexpected end of statement")
	}
	return nil
}

// bare loses the position the caller needs to print a caret.
func bare(tok string) error {
	return fmt.Errorf("unexpected token %q", tok) // want "SQL front-end error without a position"
}

// sentinel is position-free by construction: flagged, annotate or type it.
var errClosed = errors.New("statement closed") // want "errors.New in the SQL front-end"

// auditedSentinel carries the audit comment.
//
//lint:errpos lifecycle sentinel compared with errors.Is, never printed with a caret
var errDrained = errors.New("statement drained")

// boundary wraps an inner positioned error: %w keeps the chain intact.
func boundary(p Pos, err error) error {
	if err != nil {
		return fmt.Errorf("prepare: %w", err)
	}
	return errf(p, "empty prepare")
}

// flatten both loses the position AND breaks the unwrap chain.
func flatten(err error) error {
	return fmt.Errorf("prepare: %v", err) // want "SQL front-end error without a position" "flattens the chain"
}

var _ = []any{parse, bare, errClosed, errDrained, boundary, flatten}
