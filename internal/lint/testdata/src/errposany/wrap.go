// Package wiregolden exercises the errpos analyzer's package-boundary rule
// outside the SQL front-end: only the %w-wrapping discipline applies here.
package wiregolden

import (
	"errors"
	"fmt"
)

// flattenV breaks errors.Is/As through the boundary.
func flattenV(err error) error {
	return fmt.Errorf("frame: %v", err) // want "flattens the chain"
}

// flattenS is the %s spelling of the same bug.
func flattenS(err error) error {
	return fmt.Errorf("frame: %s", err) // want "flattens the chain"
}

// wrapped preserves the chain: conforming.
func wrapped(err error) error {
	return fmt.Errorf("frame: %w", err)
}

// nonError formats a plain string with %v: fine.
func nonError(name string) error {
	return fmt.Errorf("unknown table %v", name)
}

// mixed wraps the error and formats the rest.
func mixed(op string, n int, err error) error {
	return fmt.Errorf("%s after %d frames: %w", op, n, err)
}

// sentinels are allowed outside the SQL front-end.
var errShutdown = errors.New("server shutting down")

// custom error types satisfying error are caught too.
type frameErr struct{ n int }

func (e *frameErr) Error() string { return fmt.Sprintf("frame %d", e.n) }

func flattenCustom(e *frameErr) error {
	return fmt.Errorf("decode: %v", e) // want "flattens the chain"
}

var _ = []any{flattenV, flattenS, wrapped, nonError, mixed, errShutdown, flattenCustom}
