// Package hotgolden exercises the hotpathalloc analyzer. The harness checks
// it twice: under a hot-path import path (internal/exec), where the wants
// below must fire, and under a cold package path, where the same sources
// must produce no findings at all.
package hotgolden

import "fmt"

// lookup is the stringly-keyed idiom PR 2 removed from the hash layer.
var lookup map[string]int // want "map[string] in hot-path code"

// rowKeys builds per-row strings: three distinct per-row allocation smells.
func rowKeys(rows []string) string {
	out := ""
	for _, r := range rows {
		out += r                       // want "string += in a hot-path loop"
		s := fmt.Sprintf("%d", len(r)) // want "fmt.Sprintf in a hot-path loop"
		t := r + "!"                   // want "string concatenation in a hot-path loop"
		_, _ = s, t
	}
	return out
}

// makeTable allocates the forbidden map shape locally.
func makeTable(n int) int {
	m := make(map[string]int, n) // want "map[string] in hot-path code"
	return len(m)
}

// intKeys is fine: integer-keyed maps are not the serialization idiom.
func intKeys(n int) int {
	m := make(map[int64]int32, n)
	return len(m)
}

// assertion formats only on the failure path: panic arguments are exempt.
func assertion(rows []string) {
	for i, r := range rows {
		if len(r) == 0 {
			panic(fmt.Sprintf("empty row %d", i))
		}
	}
}

// hoisted formats once outside the loop: conforming.
func hoisted(rows []string) []string {
	header := fmt.Sprintf("n=%d", len(rows))
	out := make([]string, 0, len(rows)+1)
	out = append(out, header)
	out = append(out, rows...)
	return out
}

// auditedSetup is cold catalog code that happens to live here.
//
//lint:hotpath one-time setup table, never touched per batch
var auditedSetup map[string]bool
