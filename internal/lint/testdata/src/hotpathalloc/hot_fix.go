package hotgolden

// initTables wires the package vars; the literals repeat the forbidden map
// shape, so the sites carry their own audit comments.
func initTables() {
	lookup = map[string]int{} //lint:hotpath one-time setup, not per-row
	//lint:hotpath one-time setup, not per-row
	auditedSetup = map[string]bool{}
}

var _ = initTables
