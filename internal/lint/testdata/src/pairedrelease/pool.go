// Package prgolden exercises the pairedrelease analyzer. The Pool and
// Partition types mirror the method shapes of internal/vector.Pool and
// internal/core.Partition; the analyzer matches on method name plus receiver
// type name, so these stand-ins bind to the same rules.
package prgolden

// Pool mimics vector.Pool's scratch-buffer recycling protocol.
type Pool struct {
	sels   [][]int32
	hashes [][]uint64
	bools  [][]bool
}

func (p *Pool) GetSel(capHint int) []int32 { return make([]int32, 0, capHint) }
func (p *Pool) PutSel(ss ...[]int32)       { p.sels = append(p.sels, ss...) }
func (p *Pool) GetHashes(n int) []uint64   { return make([]uint64, n) }
func (p *Pool) PutHashes(h []uint64)       { p.hashes = append(p.hashes, h) }
func (p *Pool) GetBools(n int) []bool      { return make([]bool, n) }
func (p *Pool) PutBools(b []bool)          { p.bools = append(p.bools, b) }

type operator struct {
	pool Pool
	keep []int32
}

// balancedDefer releases through defer: the canonical shape.
func (o *operator) balancedDefer(n int) int {
	sel := o.pool.GetSel(n)
	defer o.pool.PutSel(sel)
	total := 0
	for i := range sel {
		total += int(sel[i])
	}
	return total
}

// balancedInline releases at the end, with a resliced alias.
func (o *operator) balancedInline(n int) uint64 {
	hs := o.pool.GetHashes(n)[:n]
	var acc uint64
	for _, h := range hs {
		acc ^= h
	}
	o.pool.PutHashes(hs)
	return acc
}

// variadicRelease returns two buffers through one variadic Put.
func (o *operator) variadicRelease(n int) {
	cand := o.pool.GetSel(n)
	sel := o.pool.GetSel(n)
	o.pool.PutSel(cand, sel)
}

// leak acquires and forgets: the finding this analyzer exists for.
func (o *operator) leak(n int) int {
	sel := o.pool.GetSel(n) // want "neither released via PutSel nor handed off"
	total := 0
	for i := range sel {
		total += int(sel[i])
	}
	return total
}

// leakBools leaks a different buffer kind on an error-shaped path.
func (o *operator) leakBools(n int) bool {
	match := o.pool.GetBools(n) // want "neither released via PutBools nor handed off"
	if n > 16 {
		return false
	}
	return len(match) > 0
}

// discard drops the buffer on the floor outright.
func (o *operator) discard(n int) {
	o.pool.GetSel(n) // want "result discarded"
}

// discardBlank is the blank-identifier flavor of the same leak.
func (o *operator) discardBlank(n int) {
	_ = o.pool.GetHashes(n) // want "result discarded"
}

// storedField hands the buffer off into the operator's state: whoever owns
// the operator owns the buffer now.
func (o *operator) storedField(n int) {
	o.keep = o.pool.GetSel(n)
}

// returned transfers ownership to the caller.
func (o *operator) returned(n int) []int32 {
	return o.pool.GetSel(n)
}

// passedThrough escapes into another function, which owns releasing it.
func (o *operator) passedThrough(n int) int {
	sel := o.pool.GetSel(n)
	return consume(sel)
}

// audited carries the audit comment for a lifetime the analyzer can't see.
func (o *operator) audited(n int) []int32 {
	sel := o.pool.GetSel(n) //lint:release returned to pool by the batch consumer
	var last []int32
	for i := range sel {
		last = sel[i:]
	}
	return last
}

func consume(sel []int32) int { return len(sel) }

// Partition mimics core.Partition's refcounted scan-pin protocol.
type Partition struct{ refs int64 }

type metaGen struct{ id int }

func (p *Partition) pinLocked() *metaGen { p.refs++; return &metaGen{} }
func (p *Partition) release(g *metaGen)  { p.refs-- }

type scanState struct {
	part *Partition
	gen  *metaGen
}

// openPins pins into a field: the scan's Close releases it later.
func (s *scanState) openPins() {
	s.gen = s.part.pinLocked()
}

// pinBalanced releases in-function.
func pinBalanced(p *Partition) int {
	g := p.pinLocked()
	defer p.release(g)
	return g.id
}

// pinLeak takes a pin it can never release on the early path.
func pinLeak(p *Partition) int {
	g := p.pinLocked() // want "neither released via release nor handed off"
	if g.id > 0 {
		return g.id
	}
	return 0
}
