package lint

import (
	"go/ast"
	"go/types"
)

// PairedRelease checks that scoped resources are either released in the
// acquiring function or visibly handed off. The engine has three such
// protocols, all with the same shape:
//
//   - vector.Pool scratch buffers: GetSel/GetHashes/GetBools must be returned
//     via PutSel/PutHashes/PutBools before the operator moves to its next
//     batch — a leaked buffer silently degrades the pool back to
//     per-batch allocation.
//   - colstore scan pins: Partition.pinLocked increments a generation
//     refcount that Partition.release must decrement, or superseded files
//     are never deleted.
//
// The analysis is per-function and ownership-based: an acquired value must
// be passed to its release method (inline or deferred) somewhere in the
// function, or escape it — returned, stored into a field or composite, or
// passed to another function, which transfers ownership to code the analyzer
// will check at its own site. A value that does neither (used only locally,
// or discarded outright) is a leak. //lint:release suppresses audited sites.
var PairedRelease = &Analyzer{
	Name: "pairedrelease",
	Key:  "release",
	Doc: "vector.Pool Get/Put, scan-pin acquire/release and similar protocols " +
		"must balance on every path: acquired values are released in-function " +
		"or visibly handed off",
	Run: runPairedRelease,
}

// releasePair describes one acquire/release protocol. Receivers are matched
// by the defining type's name so golden test packages exercise the same
// rules as the real internal/vector and internal/core types.
type releasePair struct {
	acquire  string
	release  string
	recvType string
}

var releasePairs = []releasePair{
	{"GetSel", "PutSel", "Pool"},
	{"GetHashes", "PutHashes", "Pool"},
	{"GetBools", "PutBools", "Pool"},
	{"pinLocked", "release", "Partition"},
}

func runPairedRelease(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAcquires(pass, fd)
		}
	}
	return nil
}

// methodPair resolves a call to one of the tracked acquire methods.
func methodPair(info *types.Info, call *ast.CallExpr) (releasePair, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return releasePair{}, false
	}
	recv := recvTypeName(fn)
	for _, p := range releasePairs {
		if fn.Name() == p.acquire && recv == p.recvType {
			return p, true
		}
	}
	return releasePair{}, false
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func checkAcquires(pass *Pass, fd *ast.FuncDecl) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pair, ok := methodPair(pass.TypesInfo, call)
		if !ok {
			return true
		}
		checkOneAcquire(pass, fd, call, pair, stack)
		return true
	})
}

// checkOneAcquire classifies the syntactic context of the acquire call and,
// when its result lands in a local variable, verifies release-or-escape.
func checkOneAcquire(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, pair releasePair, stack []ast.Node) {
	// Walk out of value-preserving wrappers: pool.GetSel(n)[:n] etc.
	top := ast.Node(call)
	i := len(stack) - 1
	for ; i >= 0; i-- {
		switch w := stack[i].(type) {
		case *ast.SliceExpr, *ast.ParenExpr:
			top = stack[i]
			continue
		case *ast.IndexExpr:
			if w.X == top {
				top = stack[i]
				continue
			}
		}
		break
	}
	if i < 0 {
		return
	}
	switch parent := stack[i].(type) {
	case *ast.AssignStmt:
		// find which LHS receives this RHS
		for ri, rhs := range parent.Rhs {
			if ast.Node(rhs) != top {
				continue
			}
			if ri >= len(parent.Lhs) {
				return
			}
			id, ok := parent.Lhs[ri].(*ast.Ident)
			if !ok {
				// stored straight into a field or element: a hand-off the
				// releasing code reaches through the container
				return
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "%s result discarded: the buffer can never be %s'd", pair.acquire, pair.release)
				return
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return
			}
			if !releasedOrEscaped(pass, fd, obj, pair) {
				pass.Reportf(call.Pos(),
					"%q acquired via %s is neither released via %s nor handed off in %s; release it (defer works) or add //lint:release",
					id.Name, pair.acquire, pair.release, fd.Name.Name)
			}
			return
		}
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "%s result discarded: the buffer can never be %s'd", pair.acquire, pair.release)
	default:
		// argument to another call, return value, composite literal element:
		// ownership visibly moves; the receiving site is checked on its own.
	}
}

// releasedOrEscaped scans the function for a use of obj that releases it or
// transfers ownership out of the function.
func releasedOrEscaped(pass *Pass, fd *ast.FuncDecl, obj types.Object, pair releasePair) bool {
	done := false
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if done {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if useReleasesOrEscapes(pass, id, stack, pair) {
			done = true
		}
		return true
	})
	return done
}

// useReleasesOrEscapes classifies one use of the acquired variable.
func useReleasesOrEscapes(pass *Pass, id *ast.Ident, stack []ast.Node, pair releasePair) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.CallExpr:
			child := stackChild(stack, i, id)
			if parent.Fun == child {
				return false // the resource invoked as a function: not a transfer
			}
			if tv, ok := pass.TypesInfo.Types[parent.Fun]; ok && tv.IsType() {
				continue // conversion: the value flows through unchanged
			}
			if b := builtinName(pass.TypesInfo, parent); b != "" {
				switch b {
				case "len", "cap", "copy", "delete", "clear", "min", "max", "print", "println":
					return false // reads the resource, keeps ownership here
				default:
					return true // append/panic/...: conservatively a hand-off
				}
			}
			// A real call: either the paired release, or ownership moves to
			// the callee (whose own body is checked at its own site).
			return true
		case *ast.ReturnStmt:
			return true
		case *ast.CompositeLit:
			return true
		case *ast.AssignStmt:
			child := stackChild(stack, i, id)
			for _, lhs := range parent.Lhs {
				if lhs == child {
					// writing INTO the variable (reassignment, v = v[:n], or
					// v[i] = x through an index): not an escape
					return false
				}
			}
			for _, lhs := range parent.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					// v stored into a field or element: handed off
					if containsNode(parent.Rhs, child) {
						return true
					}
				}
			}
			return false
		case *ast.SelectorExpr:
			// g.field / g.method: extracts a different value; the resource
			// itself stays put. (A release call g.pool.Put(...) tracks the
			// ARGUMENT ident, which never climbs through a SelectorExpr.)
			return false
		case *ast.IndexExpr:
			if parent.X == stackChild(stack, i, id) {
				return false // element read: sel[i] is not the buffer
			}
			return false
		case *ast.BinaryExpr:
			return false // comparison/arithmetic result is not the resource
		case *ast.StarExpr:
			return false // deref copies the pointee, not the handle
		case *ast.SliceExpr, *ast.ParenExpr, *ast.UnaryExpr, *ast.KeyValueExpr:
			continue // value-preserving wrappers: keep climbing
		default:
			return false
		}
	}
	return false
}

// builtinName returns the name of the builtin being called, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// stackChild returns the node just inside stack[i] on the path to id.
func stackChild(stack []ast.Node, i int, id *ast.Ident) ast.Node {
	if i+1 < len(stack) {
		return stack[i+1]
	}
	return id
}

func containsNode(exprs []ast.Expr, n ast.Node) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			if x == n {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
