package lint

import (
	"path"
	"strings"
)

// Package roles are keyed on import-path suffixes so that both the real
// module ("vectorh/internal/exec") and analyzer golden packages checked under
// synthetic paths in tests resolve to the same rules.

// isLibraryPkg reports whether the package is engine library code — the
// domain of the context-propagation and error-wrapping invariants. Binaries
// (cmd/*) own their root contexts and render errors for humans; the
// experiments harness is a benchmark driver, not a library.
func isLibraryPkg(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/") &&
		!strings.Contains(pkgPath, "internal/lint") &&
		!strings.Contains(pkgPath, "internal/experiments")
}

// isHotPathPkg reports whether the whole package is per-batch hot-path code:
// internal/vector and internal/exec process millions of batches per query, so
// PR 2's no-map[string]/no-Sprintf regression guard applies to every file.
func isHotPathPkg(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/vector") ||
		strings.HasSuffix(pkgPath, "internal/exec")
}

// isHotPathFile reports whether one file of a package is hot-path code even
// though its package is not: the MScan inner loop lives in internal/core next
// to cold catalog code (whose map[string] tables are fine), and the
// code-space accessors of internal/compress (dictionary handles, frame
// bounds, ranged decode) run per block inside the scan while the encoders
// around them are load-path code.
func isHotPathFile(pkgPath, filename string) bool {
	switch {
	case strings.HasSuffix(pkgPath, "internal/core"):
		switch path.Base(filename) {
		case "scan.go", "scanpred.go":
			return true
		}
	case strings.HasSuffix(pkgPath, "internal/compress"):
		return path.Base(filename) == "codes.go"
	}
	return false
}

// isSQLPkg reports whether the package is the SQL text front-end, where every
// user-facing error must carry a 1-based line:col position via errf.
func isSQLPkg(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/sql")
}
