// Package driver loads type-checked packages for the lint analyzers without
// depending on golang.org/x/tools: package metadata and compiled export data
// come from `go list -export` (standalone mode) or from the JSON config file
// `go vet -vettool` hands to its tool (unitchecker mode). Both modes feed
// the same importer: the standard library's gc-export-data reader with a
// lookup function over the export files the go command already built.
package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// exportImporter builds a types.Importer that resolves every import from a
// map of import path → compiled export data file. importMap translates
// source-level import paths (vendoring); it may be nil.
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typecheck parses and checks one package's files.
func typecheck(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Types: pkg, Info: info}, nil
}

// absJoin resolves name against dir unless it is already absolute.
func absJoin(dir, name string) string {
	if filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(dir, name)
}
