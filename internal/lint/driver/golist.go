package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os/exec"
)

// golist mode: standalone `vectorh-lint ./...`. One `go list -export -deps`
// invocation yields, for every package in the dependency closure, both the
// file lists of the target packages and the compiled export data of their
// imports; each target is then type-checked independently against that
// export data, exactly as the compiler itself would see it.

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// LoadPatterns loads and type-checks the packages matching the go package
// patterns (e.g. "./...") in the current directory's module.
func LoadPatterns(patterns []string) ([]*Package, *token.FileSet, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	var targets []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		if t.Incomplete {
			return nil, nil, fmt.Errorf("package %s did not build; fix compile errors before linting", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, name := range t.GoFiles {
			files[i] = absJoin(t.Dir, name)
		}
		pkg, err := typecheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, fset, nil
}
