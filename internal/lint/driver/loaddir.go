package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// LoadDir parses and type-checks a single directory of Go files as a package
// with the given import path. It exists for the analyzer golden tests: the
// testdata packages live outside the module's build graph, so their stdlib
// imports are resolved by asking `go list -export` for export data on the
// fly. The declared import path controls which package-role rules
// (config.go) apply to the golden package.
func LoadDir(dir, pkgPath string) (*Package, *token.FileSet, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}

	exports, err := exportDataFor(importSet)
	if err != nil {
		return nil, nil, err
	}
	imp := exportImporter(fset, exports, nil)
	pkg, err := typecheck(fset, pkgPath, names, imp)
	if err != nil {
		return nil, nil, err
	}
	return pkg, fset, nil
}

// exportDataFor maps each package in the transitive closure of the given
// import paths to its compiled export data file.
func exportDataFor(importSet map[string]bool) (map[string]string, error) {
	exports := map[string]string{}
	if len(importSet) == 0 {
		return exports, nil
	}
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Export"}
	for path := range importSet {
		args = append(args, path)
	}
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
