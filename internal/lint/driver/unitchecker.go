package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vectorh/internal/lint"
)

// unitchecker mode: `go vet -vettool=vectorh-lint ./...`. The go command
// drives the tool once per package with a JSON config file argument naming
// the package's sources and the export-data files of its dependencies, and
// expects: analysis facts serialized to cfg.VetxOutput (we have none — an
// empty file satisfies the cache), diagnostics on stderr, and exit status 2
// when diagnostics were reported. Dependencies are visited with VetxOnly
// set, asking only for facts; those invocations must be cheap no-ops.

// vetConfig mirrors the JSON schema cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetConfig reports whether arg names a vet unit-check config file.
func IsVetConfig(arg string) bool {
	return strings.HasSuffix(arg, ".cfg")
}

// RunUnitchecker executes the analyzers per the vet tool protocol and exits.
func RunUnitchecker(cfgFile string, analyzers []*lint.Analyzer) {
	code, err := unitcheck(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vectorh-lint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func unitcheck(cfgFile string, analyzers []*lint.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Facts-only visit of a dependency: we define no facts.
		return 0, nil
	}
	if len(cfg.GoFiles) == 0 {
		return 0, nil
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	files := make([]string, len(cfg.GoFiles))
	for i, name := range cfg.GoFiles {
		files[i] = absJoin(cfg.Dir, name)
	}
	pkg, err := typecheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	diags, err := lint.Run(fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// PrintVersion implements the `-V=full` handshake cmd/go performs before
// trusting a vet tool: a single line `<basename> version devel ... buildID=<hex>`
// derived from the executable's contents, so the build cache invalidates
// when the tool changes.
func PrintVersion(w io.Writer) {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}
