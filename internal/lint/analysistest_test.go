package lint_test

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"vectorh/internal/lint"
	"vectorh/internal/lint/driver"
)

// The golden harness mirrors x/tools' analysistest: each testdata/src/<dir>
// package is type-checked under a declared import path (which selects the
// package-role rules that apply) and run through one analyzer; every
// diagnostic must be announced by a `// want "substring"` comment on its
// line, and every want must be matched. Suppressed and conforming sites
// carry no want and must produce no diagnostic.

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type wantKey struct {
	file string
	line int
}

func runGolden(t *testing.T, a *lint.Analyzer, subdir, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", subdir)
	pkg, fset, err := driver.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	// Collect want annotations per line.
	wants := map[wantKey][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := wantKey{filepath.Base(posn.Filename), posn.Line}
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", posn, q, err)
					}
					wants[key] = append(wants[key], s)
				}
			}
		}
	}

	diags, err := lint.Run(fset, pkg.Files, pkg.Types, pkg.Info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := wantKey{filepath.Base(posn.Filename), posn.Line}
		matched := -1
		for i, w := range wants[key] {
			if ok, _ := regexp.MatchString(regexp.QuoteMeta(w), d.Message); ok {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	for key, rest := range wants {
		for _, w := range rest {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w)
		}
	}
}

func TestCtxPropagateGolden(t *testing.T) {
	runGolden(t, lint.CtxPropagate, "ctxpropagate", "vectorh/internal/ctxgolden")
}

func TestLockDisciplineGolden(t *testing.T) {
	runGolden(t, lint.LockDiscipline, "lockdiscipline", "vectorh/internal/lockgolden")
}

func TestPairedReleaseGolden(t *testing.T) {
	runGolden(t, lint.PairedRelease, "pairedrelease", "vectorh/internal/prgolden")
}

func TestHotPathAllocGolden(t *testing.T) {
	runGolden(t, lint.HotPathAlloc, "hotpathalloc", "vectorh/internal/exec")
}

func TestHotPathAllocScanFileOnly(t *testing.T) {
	// The same sources under a non-hot-path package path must be clean: the
	// analyzer is scoped, not global.
	pkg, fset, err := driver.LoadDir(filepath.Join("testdata", "src", "hotpathalloc"), "vectorh/internal/coldgolden")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(fset, pkg.Files, pkg.Types, pkg.Info, []*lint.Analyzer{lint.HotPathAlloc})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside hot-path packages: %s: %s", fset.Position(d.Pos), d.Message)
	}
}

func TestErrPosGoldenSQL(t *testing.T) {
	runGolden(t, lint.ErrPos, "errpos", "vectorh/internal/sql")
}

func TestErrPosGoldenAnyPackage(t *testing.T) {
	runGolden(t, lint.ErrPos, "errposany", "vectorh/internal/wiregolden")
}

// TestSuiteSelfClean runs the whole suite over its own golden harness
// package path to ensure analyzer registration is coherent (names, keys,
// docs present and unique).
func TestSuiteSelfClean(t *testing.T) {
	seenName := map[string]bool{}
	seenKey := map[string]bool{}
	for _, a := range lint.All {
		if a.Name == "" || a.Doc == "" || a.Key == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered", a)
		}
		if seenName[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		if seenKey[a.Key] {
			t.Errorf("duplicate suppression key %q", a.Key)
		}
		seenName[a.Name] = true
		seenKey[a.Key] = true
	}
	if len(lint.All) != 5 {
		t.Errorf("expected the five-invariant suite, got %d analyzers", len(lint.All))
	}
}
