package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagate enforces the cancellation contract PR 4 threaded through the
// engine: a query must be abortable from the wire down to the scan loop, so
// library code never mints its own root context — it accepts one.
//
// Rules:
//  1. A function that already has a context.Context parameter must not call
//     context.Background() or context.TODO(); thread the parameter.
//  2. Library packages (internal/..., non-test) must not call
//     context.Background()/TODO() at all. Exceptions: the nil-default idiom
//     (`if ctx == nil { ctx = context.Background() }`), which is how
//     compat entry points tolerate legacy callers, is recognized and
//     allowed; anything else needs a //lint:ctx audit comment.
//  3. When a signature takes a context.Context it is the first parameter.
//  4. A declared context parameter must be used (threaded) by the body —
//     an ignored ctx means some callee below cannot be cancelled.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Key:  "ctx",
	Doc: "context must thread from entry points into scans and exchanges: no " +
		"context.Background()/TODO() in library code (the nil-default idiom is allowed), " +
		"ctx is the first parameter, and a declared ctx parameter is used",
	Run: runCtxPropagate,
}

func runCtxPropagate(pass *Pass) error {
	library := isLibraryPkg(pass.Pkg.Path()) && pass.Pkg.Name() != "main"
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRootContextCall(pass, n, stack, library)
			case *ast.FuncDecl:
				checkCtxSignature(pass, n.Type, n)
			case *ast.FuncLit:
				checkCtxSignature(pass, n.Type, nil)
			}
			return true
		})
	}
	return nil
}

func checkRootContextCall(pass *Pass, call *ast.CallExpr, stack []ast.Node, library bool) {
	name := ""
	switch {
	case isPkgFunc(pass.TypesInfo, call, "context", "Background"):
		name = "Background"
	case isPkgFunc(pass.TypesInfo, call, "context", "TODO"):
		name = "TODO"
	default:
		return
	}
	if inNilCtxGuard(pass.TypesInfo, stack) {
		return
	}
	if param := enclosingCtxParam(pass.TypesInfo, stack); param != "" {
		pass.Reportf(call.Pos(),
			"context.%s() inside a function that already has a context.Context parameter %q; thread it instead",
			name, param)
		return
	}
	if library {
		pass.Reportf(call.Pos(),
			"context.%s() in library code: accept a context.Context from the caller (or add a //lint:ctx audit comment)",
			name)
	}
}

// inNilCtxGuard reports whether the stack passes through the body of an
// `if <ctx-typed expr> == nil { ... }` statement — the sanctioned
// defaulting idiom for entry points that tolerate a nil context.
func inNilCtxGuard(info *types.Info, stack []ast.Node) bool {
	for i, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		// The guard must be entered through the if body, not the else.
		if i+1 >= len(stack) || stack[i+1] != ifStmt.Body {
			continue
		}
		bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op.String() != "==" {
			continue
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if tv, ok := info.Types[side]; ok && isContextType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// enclosingCtxParam returns the name of the innermost enclosing function's
// context.Context parameter, or "" when it has none (or it is blank).
func enclosingCtxParam(info *types.Info, stack []ast.Node) string {
	fn := enclosingFunc(stack)
	if fn == nil {
		return ""
	}
	ft := funcType(fn)
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// checkCtxSignature enforces ctx-is-first and ctx-is-used. decl is non-nil
// for FuncDecls (literals are skipped for the usage rule: closures routinely
// capture an outer ctx instead).
func checkCtxSignature(pass *Pass, ft *ast.FuncType, decl *ast.FuncDecl) {
	if ft.Params == nil {
		return
	}
	flat := 0 // flattened parameter index
	for fi, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && isContextType(tv.Type) {
			if flat != 0 {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			}
			if decl != nil && decl.Body != nil && fi == 0 {
				checkCtxUsed(pass, decl, field)
			}
		}
		flat += n
	}
}

// checkCtxUsed reports a named, non-blank ctx parameter that the body never
// references: the function promises cancellability it cannot deliver.
func checkCtxUsed(pass *Pass, decl *ast.FuncDecl, field *ast.Field) {
	for _, name := range field.Names {
		if name.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[name]
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				used = true
				return false
			}
			return !used
		})
		if !used {
			pass.Reportf(name.Pos(),
				"context parameter %q is never used: thread it into blocking callees or name it _",
				name.Name)
		}
	}
}
