package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline encodes the Engine's locking rules:
//
//  1. Fixed lock order: writeMu (the storage-mutator lock) is acquired
//     BEFORE mu (the catalog lock) — every mutator does
//     `e.writeMu.Lock(); e.mu.Lock()`. Acquiring a writeMu while any mu is
//     held inverts the order and can deadlock against every writer.
//  2. A Lock()/RLock() in a function with multiple return paths must be
//     paired with an immediate `defer Unlock()`, be released within the
//     same straight-line statement sequence (no branches, returns or calls
//     into control flow between acquire and release), or carry a
//     //lint:unlock audit comment.
//  3. Values containing sync primitives or sync/atomic counters (mutexes,
//     scan-pin generations with atomic refcounts) must not be copied:
//     value receivers, by-value parameters, assignments, range clauses and
//     returns of such types are flagged.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Key:  "unlock",
	Doc: "fixed Engine lock order (writeMu before mu), Lock paired with defer " +
		"Unlock on multi-return paths, and no value copies of lock-bearing structs",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopyLocksSignature(pass, fd)
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockOrder(pass, n.Body)
					checkLockPairing(pass, n.Body, countReturns(n.Body))
				}
			case *ast.FuncLit:
				checkLockOrder(pass, n.Body)
				checkLockPairing(pass, n.Body, countReturns(n.Body))
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopyValue(pass, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopyValue(pass, v, "variable initialization copies")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopyValue(pass, r, "return copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					t := rangeValueType(pass.TypesInfo, n.Value)
					if t != nil && containsLock(t) {
						pass.Reportf(n.Value.Pos(), "range clause copies %s (contains %s); iterate by index or over pointers",
							t.String(), lockTypeName(t))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkCopyValue(pass, arg, "call passes")
				}
			}
			return true
		})
	}
	return nil
}

// ---- rule 3: copylocks ----

func checkCopyLocksSignature(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if ok && !isPointer(tv.Type) && containsLock(tv.Type) {
				pass.Reportf(field.Pos(), "value receiver copies %s (contains %s); use a pointer receiver",
					tv.Type.String(), lockTypeName(tv.Type))
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if ok && !isPointer(tv.Type) && containsLock(tv.Type) {
				pass.Reportf(field.Pos(), "by-value parameter copies %s (contains %s); pass a pointer",
					tv.Type.String(), lockTypeName(tv.Type))
			}
		}
	}
}

// checkCopyValue flags expressions that copy an existing lock-bearing value:
// reads of variables, fields, derefs and elements. Composite literals and
// function calls construct fresh values and are allowed.
func checkCopyValue(pass *Pass, e ast.Expr, how string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || isPointer(tv.Type) || !containsLock(tv.Type) {
		return
	}
	// &x.mu style: the parent took the address; Inspect visits the child
	// SelectorExpr too, but its type check above still sees the value type.
	// The address-of case never reaches here because checkCopyValue is only
	// called on assignment/return/argument positions, where a unary & parent
	// would be the expression instead.
	pass.Reportf(e.Pos(), "%s %s by value (contains %s); use a pointer",
		how, tv.Type.String(), lockTypeName(tv.Type))
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// rangeValueType resolves the type of a range clause's value variable: a
// `:=`-defined ident lives in Defs, an assigned expression in Types.
func rangeValueType(info *types.Info, v ast.Expr) types.Type {
	if id, ok := v.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[v]; ok {
		return tv.Type
	}
	return nil
}

// ---- rules 1 and 2: lock order and pairing ----

// lockCall describes one mutex method call: receiver expression rendered as
// a string, method name, and whether it is deferred.
type lockCall struct {
	recv     string // "e.mu", "p.writeMu", ...
	method   string // Lock, RLock, Unlock, RUnlock
	deferred bool
	pos      token.Pos
}

// asLockCall decodes X.<method>() where method is a mutex operation.
func asLockCall(call *ast.CallExpr, deferred bool) (lockCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockCall{}, false
	}
	return lockCall{recv: exprString(sel.X), method: sel.Sel.Name, deferred: deferred, pos: call.Pos()}, true
}

// fieldName returns the final selector component of a receiver rendering
// ("mu" for "e.mu"), or the whole name for a bare identifier.
func fieldName(recv string) string {
	if i := strings.LastIndexByte(recv, '.'); i >= 0 {
		return recv[i+1:]
	}
	return recv
}

// checkLockOrder walks body in source order tracking which `mu` receivers
// are held, and flags any `writeMu` acquisition while one is held. Deferred
// unlocks do not release during the body, so `mu.RLock(); defer mu.RUnlock()`
// correctly holds mu for the rest of the function.
func checkLockOrder(pass *Pass, body *ast.BlockStmt) {
	held := map[string]token.Pos{} // receiver → acquire position
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate lock scope, walked on its own
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if lc, ok := asLockCall(call, false); ok {
					applyLockEvent(pass, held, lc)
				}
			}
		case *ast.DeferStmt:
			if lc, ok := asLockCall(n.Call, true); ok {
				applyLockEvent(pass, held, lc)
			}
			return false
		}
		return true
	})
}

func applyLockEvent(pass *Pass, held map[string]token.Pos, lc lockCall) {
	field := fieldName(lc.recv)
	switch lc.method {
	case "Lock", "RLock":
		if field == "writeMu" && !lc.deferred {
			for recv := range held {
				pass.Reportf(lc.pos,
					"%s acquired while %s is held: the engine lock order is writeMu before mu",
					lc.recv, recv)
			}
		}
		if field == "mu" {
			held[lc.recv] = lc.pos
		}
	case "Unlock", "RUnlock":
		if !lc.deferred {
			delete(held, lc.recv)
		}
	}
}

// countReturns counts return statements in body, not descending into nested
// function literals.
func countReturns(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		switch node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			n++
		}
		return true
	})
	return n
}

// checkLockPairing enforces rule 2 on every statement list in body.
func checkLockPairing(pass *Pass, body *ast.BlockStmt, returns int) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			lc, ok := asLockCall(call, false)
			if !ok || (lc.method != "Lock" && lc.method != "RLock") {
				continue
			}
			if pairedInline(list[i+1:], lc) {
				continue
			}
			if returns <= 1 {
				continue
			}
			pass.Reportf(lc.pos,
				"%s.%s() on a multi-return path without defer %s.%s(): add the defer, release in straight-line code, or add //lint:unlock",
				lc.recv, lc.method, lc.recv, unlockName(lc.method))
		}
		return true
	})
}

func unlockName(lockMethod string) string {
	if lockMethod == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// pairedInline reports whether the acquisition is safely released by the
// statements that follow it in the same list: either an immediate
// `defer X.Unlock()` (directly or inside a deferred closure), or a matching
// inline Unlock reached through straight-line statements only.
func pairedInline(rest []ast.Stmt, lc lockCall) bool {
	want := unlockName(lc.method)
	for i, stmt := range rest {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if ulc, ok := asLockCall(s.Call, true); ok && ulc.recv == lc.recv && ulc.method == want {
				return true
			}
			if deferClosureUnlocks(s, lc.recv, want) {
				return true
			}
			// A defer of something else right after the Lock is fine to skip
			// over only at position 0 (the canonical lock-then-defer-cleanup
			// shape still needs its own unlock defer first).
			if i == 0 {
				continue
			}
			return false
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if ulc, ok := asLockCall(call, false); ok && ulc.recv == lc.recv && ulc.method == want {
					return true
				}
			}
		case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
			// straight-line work inside the critical section
		default:
			// control flow (if/for/switch/select/return/go/...) before the
			// unlock: the release is no longer provably on every path.
			return false
		}
	}
	return false
}

// deferClosureUnlocks reports whether d is `defer func() { ...X.Unlock()... }()`.
func deferClosureUnlocks(d *ast.DeferStmt, recv, want string) bool {
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if ulc, ok := asLockCall(call, false); ok && ulc.recv == recv && ulc.method == want {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
