package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrPos enforces the error contracts of the SQL layer and the package
// boundaries around it:
//
//  1. Everywhere: fmt.Errorf must wrap error operands with %w, not flatten
//     them through %v/%s — callers unwrap with errors.Is/As across package
//     boundaries, and a flattened chain breaks that silently.
//  2. In internal/sql: errors are constructed through the positional errf
//     helper so every user-facing message carries a 1-based line:col.
//     fmt.Errorf is allowed only when it wraps (%w) an already-positioned
//     error at a boundary; bare errors.New is never allowed. Sites that
//     genuinely have no source position carry a //lint:errpos audit comment.
var ErrPos = &Analyzer{
	Name: "errpos",
	Key:  "errpos",
	Doc: "SQL-layer errors carry line:col via errf; error operands are " +
		"wrapped with %w at package boundaries, not flattened with %v",
	Run: runErrPos,
}

func runErrPos(pass *Pass) error {
	sqlPkg := isSQLPkg(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass.TypesInfo, call, "fmt", "Errorf"):
				checkErrorfVerbs(pass, call)
				if sqlPkg && !errorfWraps(pass, call) {
					pass.Reportf(call.Pos(),
						"SQL front-end error without a position: use errf(pos, ...) so the message carries line:col, wrap an existing error with %%w, or add //lint:errpos")
				}
			case isPkgFunc(pass.TypesInfo, call, "errors", "New"):
				if sqlPkg {
					pass.Reportf(call.Pos(),
						"errors.New in the SQL front-end: use errf(pos, ...) so the message carries line:col (//lint:errpos for position-free sentinels)")
				}
			}
			return true
		})
	}
	return nil
}

// formatVerbs extracts the argument-consuming verbs of a printf-style format
// string, in order. It understands %%, flags, width/precision and `*`.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*') // consumes an int arg
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '0' && c <= '9') || c == '[' || c == ']' {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			if format[i] != '%' {
				verbs = append(verbs, format[i])
			}
		}
	}
	return verbs
}

// constFormat returns the constant string value of the call's first argument.
func constFormat(pass *Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func errorfWraps(pass *Pass, call *ast.CallExpr) bool {
	format, ok := constFormat(pass, call)
	if !ok {
		return false
	}
	for _, v := range formatVerbs(format) {
		if v == 'w' {
			return true
		}
	}
	return false
}

// checkErrorfVerbs flags error-typed operands formatted with %v or %s.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr) {
	format, ok := constFormat(pass, call)
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	args := call.Args[1:]
	errType := types.Universe.Lookup("error").Type()
	for i, v := range verbs {
		if i >= len(args) {
			break
		}
		if v != 'v' && v != 's' {
			continue
		}
		tv, ok := pass.TypesInfo.Types[args[i]]
		if !ok || tv.Type == nil {
			continue
		}
		if types.AssignableTo(tv.Type, errType) && !types.Identical(tv.Type, types.Typ[types.UntypedNil]) {
			pass.Reportf(args[i].Pos(),
				"error formatted with %%%c flattens the chain: wrap with %%w so callers can errors.Is/As through the boundary", v)
		}
	}
}
