package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc is the permanent regression guard for PR 2's hash-layer work:
// the per-batch packages (internal/vector, internal/exec) and the MScan
// files in internal/core must never regress to stringly-typed per-row work.
//
// In those files it forbids:
//   - map types with string keys (the old per-row serialization idiom the
//     vectorized hash layer replaced),
//   - fmt.Sprintf inside loops (allowed as a panic argument — assertions
//     fire once, not per row),
//   - string concatenation (`+`, `+=`) inside loops.
//
// //lint:hotpath suppresses audited cold-path sites (setup code that happens
// to live in a hot-path file).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Key:  "hotpath",
	Doc: "no map[string], fmt.Sprintf or per-row string concatenation in " +
		"internal/vector, internal/exec, or the MScan path",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	pkgPath := pass.Pkg.Path()
	wholePkg := isHotPathPkg(pkgPath)
	for _, file := range pass.Files {
		if !wholePkg && !isHotPathFile(pkgPath, pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				if isStringType(pass.TypesInfo, n.Key) {
					pass.Reportf(n.Pos(), "map[string] in hot-path code: key through the vectorized hash layer (exec.HashTable) instead")
				}
			case *ast.CallExpr:
				if isPkgFunc(pass.TypesInfo, n, "fmt", "Sprintf") && inLoop(stack) && !inPanicArg(stack) {
					pass.Reportf(n.Pos(), "fmt.Sprintf in a hot-path loop: per-row formatting allocates; hoist it or restructure")
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isStringExpr(pass.TypesInfo, n) && inLoop(stack) && !inPanicArg(stack) {
					pass.Reportf(n.Pos(), "string concatenation in a hot-path loop: per-row allocation; use byte-slice kernels or hoist")
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass.TypesInfo, n.Lhs[0]) && inLoop(stack) {
					pass.Reportf(n.Pos(), "string += in a hot-path loop: per-row allocation; use byte-slice kernels or hoist")
				}
			}
			return true
		})
	}
	return nil
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	return isStringType(info, e)
}

// inLoop reports whether the stack passes through the body of a for or range
// statement inside the current function (loops in enclosing functions do not
// count for a nested literal — but a literal defined inside a loop is still
// per-row code, so only a function *declaration* boundary resets the search).
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

// inPanicArg reports whether the node is an argument of a panic call:
// assertion messages format once on the failure path, never per row.
func inPanicArg(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}
