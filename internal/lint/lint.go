// Package lint is the engine's invariant suite: a set of static analyzers
// that encode the unwritten rules PRs 2–7 left behind — context must thread
// from every public entry point into scans and exchanges, pool buffers and
// scan pins must be released on every path, Engine locks have a fixed order,
// and hot paths must never regress to map[string]/fmt.Sprintf per-row work.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library only, because the module
// is dependency-free by design. Analyzers are pure functions over parsed and
// type-checked syntax; loading packages is the job of internal/lint/driver,
// which feeds them either from `go list -export` (standalone) or from a
// `go vet -vettool` unit-check config.
//
// Suppression: a finding is dropped when the offending line — or the line
// directly above it — carries a `//lint:<key> <reason>` comment, where <key>
// is the analyzer's suppression key (ctx, unlock, release, hotpath, errpos).
// The reason is mandatory by convention: the comment is an audit record that
// a human looked at the site and judged the invariant upheld by other means.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by `vectorh-lint -help`.
	Doc string
	// Key is the suppression key honored in //lint:<key> comments.
	Key string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding, positioned in the file set of the pass.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// All is the full invariant suite, in reporting order.
var All = []*Analyzer{CtxPropagate, LockDiscipline, PairedRelease, HotPathAlloc, ErrPos}

// Run executes the given analyzers over one type-checked package and returns
// the surviving findings sorted by position: suppressed findings (a
// //lint:<key> comment on the finding's line or the line above) and findings
// inside _test.go files are dropped. Test files are exempt because the
// invariants guard production control flow — tests legitimately use
// context.Background, ad-hoc maps and unguarded locks.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.report = func(d Diagnostic) {
			posn := fset.Position(d.Pos)
			if strings.HasSuffix(posn.Filename, "_test.go") {
				return
			}
			if sup.suppressed(a.Key, posn) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// suppressions maps file → line → suppression keys present on that line.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(key string, posn token.Position) bool {
	lines := s[posn.Filename]
	if lines == nil {
		return false
	}
	return lines[posn.Line][key] || lines[posn.Line-1][key]
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				key, _, _ := strings.Cut(text, " ")
				if key == "" {
					continue
				}
				posn := fset.Position(c.Pos())
				lines := s[posn.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s[posn.Filename] = lines
				}
				keys := lines[posn.Line]
				if keys == nil {
					keys = make(map[string]bool)
					lines[posn.Line] = keys
				}
				keys[key] = true
			}
		}
	}
	return s
}

// ---- shared syntax/type helpers ----

// walkStack traverses root keeping the ancestor stack (outermost first,
// excluding n itself). Return false from f to skip n's children.
func walkStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFunc returns the innermost function declaration or literal on the
// stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcType returns the signature syntax of a FuncDecl or FuncLit.
func funcType(fn ast.Node) *ast.FuncType {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeFunc resolves the called function object of a call expression, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// exprString renders a (small) expression for receiver identity comparison:
// `e.mu` and `e.mu` render identically, `e.mu` and `p.mu` do not.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return fmt.Sprintf("%T", e)
}

// containsLock reports whether a value of type t must not be copied: it is,
// or transitively contains, a sync primitive or a sync/atomic counter (the
// engine's scan-pin generations count refs in atomic.Int64 fields — copying
// one forks the refcount and double-frees superseded files).
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Pool", "Map":
					return true
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return true
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1)
	}
	return false
}

// lockTypeName names the first non-copyable component found in t, for
// diagnostics ("sync.Mutex", "atomic.Int64", ...).
func lockTypeName(t types.Type) string {
	name := ""
	var visit func(t types.Type, depth int) bool
	visit = func(t types.Type, depth int) bool {
		if depth > 10 {
			return false
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if pkg := obj.Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
				if containsLockDepth(t, depth) {
					short := "sync"
					if pkg.Path() == "sync/atomic" {
						short = "atomic"
					}
					name = short + "." + obj.Name()
					return true
				}
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if visit(u.Field(i).Type(), depth+1) {
					return true
				}
			}
		case *types.Array:
			return visit(u.Elem(), depth+1)
		}
		return false
	}
	visit(t, 0)
	if name == "" {
		name = "a sync primitive"
	}
	return name
}
