// Package mpi simulates the message-passing transport underneath the
// distributed exchange operators (§5, Figure 4 of the paper): fixed-size
// framed messages (≥256 KB for good throughput in the paper; configurable
// here), per-rank inboxes with capacity two — the double-buffering that
// overlaps communication with processing — byte accounting for the network
// cost model, and the intra-node optimization of passing batch pointers
// instead of serialized buffers ("for intra-node communication we only send
// pointers to sender-side buffers").
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"vectorh/internal/vector"
)

// DefaultMsgBytes is the paper's minimum message size for good MPI
// throughput.
const DefaultMsgBytes = 256 << 10

// Stats aggregates transport traffic.
type Stats struct {
	RemoteBytes   int64 // serialized bytes crossing node boundaries
	RemoteMsgs    int64
	LocalHandoffs int64 // intra-node pointer passes (no serialization)
}

// Network is the cluster-wide transport fabric: it carries accounting shared
// by all communicators.
type Network struct {
	nodes       int
	remoteBytes atomic.Int64
	remoteMsgs  atomic.Int64
	localPasses atomic.Int64
}

// NewNetwork returns a fabric connecting n nodes.
func NewNetwork(n int) *Network { return &Network{nodes: n} }

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.nodes }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		RemoteBytes:   n.remoteBytes.Load(),
		RemoteMsgs:    n.remoteMsgs.Load(),
		LocalHandoffs: n.localPasses.Load(),
	}
}

// Reset zeroes the counters.
func (n *Network) Reset() {
	n.remoteBytes.Store(0)
	n.remoteMsgs.Store(0)
	n.localPasses.Store(0)
}

// Message is one delivery: either serialized Data (remote) or a pointer-
// passed Local batch (intra-node).
type Message struct {
	From  int
	Data  []byte
	Local *vector.Batch
}

// Comm is one communicator (one per distributed exchange): per-destination-
// rank inboxes with a fixed number of senders. Ranks are nodes for
// thread-to-node exchanges and streams for thread-to-thread exchanges.
type Comm struct {
	net     *Network
	rankOf  func(rank int) int // rank -> node (identity for node ranks)
	inboxes []chan Message
	senders int32
	once    sync.Once
}

// NewComm creates a communicator with the given number of destination ranks
// and total senders. rankNode maps a rank to its physical node (used to
// decide local vs remote); pass nil when ranks are nodes.
func (n *Network) NewComm(ranks, senders int, rankNode func(int) int) *Comm {
	if rankNode == nil {
		rankNode = func(r int) int { return r }
	}
	c := &Comm{net: n, rankOf: rankNode, senders: int32(senders)}
	c.inboxes = make([]chan Message, ranks)
	for i := range c.inboxes {
		// Capacity 2: the double-buffering of Figure 4.
		c.inboxes[i] = make(chan Message, 2)
	}
	return c
}

// Send delivers a batch from a sender residing on fromNode to a rank. Local
// destinations receive the batch pointer; remote destinations receive the
// serialized buffer (accounted as network traffic). Serialization happens
// here, so callers pass the batch either way.
func (c *Comm) Send(fromNode, toRank int, b *vector.Batch) {
	c.SendQuit(fromNode, toRank, b, nil)
}

// SendQuit is Send that gives up when quit closes (query cancellation):
// inbox capacity is bounded, so without it an abandoned exchange would leave
// senders blocked forever. It reports whether the message was delivered.
func (c *Comm) SendQuit(fromNode, toRank int, b *vector.Batch, quit <-chan struct{}) bool {
	if c.rankOf(toRank) == fromNode {
		c.net.localPasses.Add(1)
		select {
		case c.inboxes[toRank] <- Message{From: fromNode, Local: b}:
			return true
		case <-quit:
			return false
		}
	}
	data := EncodeBatch(b)
	c.net.remoteBytes.Add(int64(len(data)))
	c.net.remoteMsgs.Add(1)
	select {
	case c.inboxes[toRank] <- Message{From: fromNode, Data: data}:
		return true
	case <-quit:
		return false
	}
}

// DoneSending signals one sender finished; when the last sender is done all
// inboxes close.
func (c *Comm) DoneSending() {
	if atomic.AddInt32(&c.senders, -1) == 0 {
		c.once.Do(func() {
			for _, ch := range c.inboxes {
				close(ch)
			}
		})
	}
}

// Recv receives the next message for rank; ok is false when all senders are
// done and the inbox is drained.
func (c *Comm) Recv(rank int) (Message, bool) {
	m, ok := <-c.inboxes[rank]
	return m, ok
}

// RecvQuit is Recv that also returns (with ok=false) when quit closes, so
// exchange dispatcher goroutines exit promptly on query cancellation even
// while senders are stalled.
func (c *Comm) RecvQuit(rank int, quit <-chan struct{}) (Message, bool) {
	select {
	case m, ok := <-c.inboxes[rank]:
		return m, ok
	case <-quit:
		return Message{}, false
	}
}

// Batch returns the message payload as a batch, decoding if it was remote.
func (m *Message) Batch() (*vector.Batch, error) {
	if m.Local != nil {
		return m.Local, nil
	}
	return DecodeBatch(m.Data)
}

// EncodeBatch serializes a batch in a PAX-like layout: per column a kind
// byte, a row count and the packed values, "such that Receivers can return
// vectors directly out of these buffers".
func EncodeBatch(b *vector.Batch) []byte {
	c := b.Compact()
	out := binary.AppendUvarint(nil, uint64(len(c.Vecs)))
	out = binary.AppendUvarint(out, uint64(c.Len()))
	for _, v := range c.Vecs {
		out = append(out, byte(v.Kind()))
		switch v.Kind() {
		case vector.Int64:
			for _, x := range v.Int64s() {
				out = binary.LittleEndian.AppendUint64(out, uint64(x))
			}
		case vector.Int32:
			for _, x := range v.Int32s() {
				out = binary.LittleEndian.AppendUint32(out, uint32(x))
			}
		case vector.Float64:
			for _, x := range v.Float64s() {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
			}
		case vector.String:
			for _, s := range v.Strings() {
				out = binary.AppendUvarint(out, uint64(len(s)))
				out = append(out, s...)
			}
		case vector.Bool:
			for _, x := range v.Bools() {
				if x {
					out = append(out, 1)
				} else {
					out = append(out, 0)
				}
			}
		}
	}
	return out
}

// DecodeBatch inverts EncodeBatch.
func DecodeBatch(data []byte) (*vector.Batch, error) {
	nc, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("mpi: bad batch header")
	}
	data = data[sz:]
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("mpi: bad batch header")
	}
	data = data[sz:]
	b := &vector.Batch{Vecs: make([]*vector.Vec, nc)}
	for ci := uint64(0); ci < nc; ci++ {
		if len(data) < 1 {
			return nil, fmt.Errorf("mpi: truncated batch")
		}
		kind := vector.Kind(data[0])
		data = data[1:]
		switch kind {
		case vector.Int64:
			if uint64(len(data)) < n*8 {
				return nil, fmt.Errorf("mpi: truncated int64 column")
			}
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
			}
			data = data[n*8:]
			b.Vecs[ci] = vector.FromInt64(vals)
		case vector.Int32:
			if uint64(len(data)) < n*4 {
				return nil, fmt.Errorf("mpi: truncated int32 column")
			}
			vals := make([]int32, n)
			for i := range vals {
				vals[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
			}
			data = data[n*4:]
			b.Vecs[ci] = vector.FromInt32(vals)
		case vector.Float64:
			if uint64(len(data)) < n*8 {
				return nil, fmt.Errorf("mpi: truncated float column")
			}
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
			data = data[n*8:]
			b.Vecs[ci] = vector.FromFloat64(vals)
		case vector.String:
			vals := make([]string, n)
			for i := range vals {
				l, sz := binary.Uvarint(data)
				if sz <= 0 || uint64(len(data)-sz) < l {
					return nil, fmt.Errorf("mpi: truncated string column")
				}
				data = data[sz:]
				vals[i] = string(data[:l])
				data = data[l:]
			}
			b.Vecs[ci] = vector.FromString(vals)
		case vector.Bool:
			if uint64(len(data)) < n {
				return nil, fmt.Errorf("mpi: truncated bool column")
			}
			vals := make([]bool, n)
			for i := range vals {
				vals[i] = data[i] != 0
			}
			data = data[n:]
			b.Vecs[ci] = vector.FromBool(vals)
		default:
			return nil, fmt.Errorf("mpi: unknown column kind %d", kind)
		}
	}
	return b, nil
}
