package txn

import (
	"errors"
	"testing"

	"vectorh/internal/hdfs"
	"vectorh/internal/pdt"
	"vectorh/internal/vector"
	"vectorh/internal/wal"
)

var schema = vector.Schema{{Name: "k", Type: vector.TInt64}, {Name: "v", Type: vector.TString}}

func testFS() *hdfs.Cluster {
	return hdfs.NewCluster([]string{"n1", "n2"}, hdfs.Config{BlockSize: 1 << 12, Replication: 2})
}

func newMgr(fs *hdfs.Cluster) *Manager {
	return NewManager(wal.Open(fs, "/wal/global", "n1"))
}

// materialize produces the current image of a partition with stableRows
// synthetic stable rows (k=i, v="s<i>") merged through read then write.
func materialize(t *testing.T, read, write *pdt.PDT, stableRows int) [][]any {
	t.Helper()
	stable := vector.NewBatchForSchema(schema, stableRows)
	for i := 0; i < stableRows; i++ {
		stable.AppendRow(int64(i), "s")
	}
	layer := func(p *pdt.PDT, in *vector.Batch) *vector.Batch {
		m := pdt.NewMerger(p, schema, []int{0, 1})
		out := vector.NewBatchForSchema(schema, in.Len()+8)
		if in.Len() > 0 {
			b, _, err := m.MergeRange(in, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < b.Len(); i++ {
				out.AppendRow(b.Row(i)...)
			}
		}
		if tail, _ := m.Tail(); tail != nil {
			for i := 0; i < tail.Len(); i++ {
				out.AppendRow(tail.Row(i)...)
			}
		}
		return out
	}
	merged := layer(write, layer(read, stable))
	var rows [][]any
	for i := 0; i < merged.Len(); i++ {
		rows = append(rows, merged.Row(i))
	}
	return rows
}

func TestCommitMakesChangesVisible(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 3, wal.Open(fs, "/wal/t0", "n1"))

	tx := m.Begin()
	if err := tx.Append("t/0", []any{int64(100), "new"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Modify("t/0", 1, []int{1}, []any{"mod"}); err != nil {
		t.Fatal(err)
	}
	// Before commit: master unchanged.
	p, _ := m.Part("t/0")
	if p.Size() != 3 {
		t.Fatalf("master size changed before commit: %d", p.Size())
	}
	// The transaction sees its own changes.
	if sz, _ := tx.Size("t/0"); sz != 4 {
		t.Fatalf("txn size = %d", sz)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	p, _ = m.Part("t/0")
	rows := materialize(t, p.Read, p.Write, 3)
	if len(rows) != 4 || rows[1][1].(string) != "mod" || rows[3][0].(int64) != 100 {
		t.Fatalf("rows = %v", rows)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d", m.Epoch())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 2, nil)

	writer := m.Begin()
	writer.Append("t/0", []any{int64(50), "w"})

	reader := m.Begin()
	if sz, _ := reader.Size("t/0"); sz != 2 {
		t.Fatalf("reader sees uncommitted append: %d", sz)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// Reader still sees its snapshot.
	if sz, _ := reader.Size("t/0"); sz != 2 {
		t.Fatalf("reader snapshot broken: %d", sz)
	}
	// A fresh transaction sees the commit.
	fresh := m.Begin()
	if sz, _ := fresh.Size("t/0"); sz != 3 {
		t.Fatalf("fresh txn sees %d rows", sz)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 5, nil)

	a := m.Begin()
	b := m.Begin()
	a.Modify("t/0", 2, []int{1}, []any{"a"})
	b.Modify("t/0", 2, []int{1}, []any{"b"})
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	err := b.Commit()
	if !errors.Is(err, pdt.ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	// Disjoint tuples do not conflict.
	c := m.Begin()
	d := m.Begin()
	c.Modify("t/0", 3, []int{1}, []any{"c"})
	d.Modify("t/0", 4, []int{1}, []any{"d"})
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppendsBothSurvive(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 1, nil)
	a, b := m.Begin(), m.Begin()
	a.Append("t/0", []any{int64(1), "a"})
	b.Append("t/0", []any{int64(2), "b"})
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Part("t/0")
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	rows := materialize(t, p.Read, p.Write, 1)
	if rows[1][1].(string) != "a" || rows[2][1].(string) != "b" {
		t.Fatalf("commit order not preserved: %v", rows)
	}
}

func TestDeleteOfCommittedInsertAndConflict(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 1, nil)
	setup := m.Begin()
	setup.Append("t/0", []any{int64(9), "ins"})
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	// Two transactions race to delete the committed insert (rid 1).
	a, b := m.Begin(), m.Begin()
	if err := a.Delete("t/0", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Modify("t/0", 1, []int{1}, []any{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, pdt.ErrConflict) {
		t.Fatalf("want conflict on deleted insert, got %v", err)
	}
	p, _ := m.Part("t/0")
	if p.Size() != 1 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestAbortDiscardsChanges(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 2, nil)
	tx := m.Begin()
	tx.Append("t/0", []any{int64(1), "x"})
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after abort: %v", err)
	}
	p, _ := m.Part("t/0")
	if p.Size() != 2 {
		t.Fatalf("abort leaked changes: %d", p.Size())
	}
}

func TestReadOnlyCommitIsNoop(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 2, nil)
	tx := m.Begin()
	tx.Size("t/0")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 0 {
		t.Fatalf("read-only commit bumped epoch to %d", m.Epoch())
	}
}

func TestLogShippingCallback(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("repl/0", 2, nil)
	var gotPart PartKey
	var gotEntries int
	m.OnCommit = func(p PartKey, entries []pdt.Entry, epoch int64) {
		gotPart, gotEntries = p, len(entries)
	}
	tx := m.Begin()
	tx.Append("repl/0", []any{int64(5), "x"})
	tx.Delete("repl/0", 0)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if gotPart != "repl/0" || gotEntries != 2 {
		t.Fatalf("log shipping: part=%s entries=%d", gotPart, gotEntries)
	}
}

func TestRecoveryReplaysCommittedOnly(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	key := PartKey("t/0")
	m.AddPartition(key, 2, wal.Open(fs, "/wal/t0", "n1"))

	t1 := m.Begin()
	t1.Append(key, []any{int64(7), "committed"})
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulate a prepared-but-undecided transaction: write a PREPARE
	// record directly, with no commit decision in the global WAL.
	orphan, _ := encodePrepare(999, []pdt.Entry{{Sid: 0, Kind: pdt.Del}})
	p, _ := m.Part(key)
	if err := p.Log.Append(RecPrepare, orphan); err != nil {
		t.Fatal(err)
	}

	// A new manager (fresh process) over the same logs.
	m2 := newMgr(fs)
	m2.AddPartition(key, 2, wal.Open(fs, "/wal/t0", "n1"))
	if err := m2.Recover([]PartKey{key}); err != nil {
		t.Fatal(err)
	}
	p2, _ := m2.Part(key)
	rows := materialize(t, p2.Read, p2.Write, 2)
	if len(rows) != 3 || rows[2][1].(string) != "committed" {
		t.Fatalf("recovered rows = %v", rows)
	}
	if m2.Epoch() != 1 {
		t.Fatalf("recovered epoch = %d", m2.Epoch())
	}
}

func TestPropagateWriteToReadAndRecovery(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	key := PartKey("t/0")
	m.AddPartition(key, 3, wal.Open(fs, "/wal/t0", "n1"))

	t1 := m.Begin()
	t1.Append(key, []any{int64(10), "a"})
	t1.Delete(key, 0)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.PropagateWriteToRead(key); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Part(key)
	ins, del, _ := p.Write.Counts()
	if ins+del != 0 {
		t.Fatal("write PDT should be empty after propagation")
	}
	rows := materialize(t, p.Read, p.Write, 3)
	if len(rows) != 3 || rows[2][1].(string) != "a" {
		t.Fatalf("rows after propagation = %v", rows)
	}
	// More updates after propagation, keyed in the new read image.
	t2 := m.Begin()
	t2.Modify(key, 0, []int{1}, []any{"patched"})
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Recovery must mirror the layering through the PROPAGATE marker.
	m2 := newMgr(fs)
	m2.AddPartition(key, 3, wal.Open(fs, "/wal/t0", "n1"))
	if err := m2.Recover([]PartKey{key}); err != nil {
		t.Fatal(err)
	}
	p2, _ := m2.Part(key)
	rows2 := materialize(t, p2.Read, p2.Write, 3)
	if len(rows2) != 3 || rows2[0][1].(string) != "patched" || rows2[2][1].(string) != "a" {
		t.Fatalf("recovered rows = %v", rows2)
	}
}

func TestResetAfterFlush(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	key := PartKey("t/0")
	m.AddPartition(key, 2, wal.Open(fs, "/wal/t0", "n1"))
	tx := m.Begin()
	tx.Append(key, []any{int64(1), "x"})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.ResetAfterFlush(key, 3); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Part(key)
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	// The WAL is truncated: recovery yields the clean state.
	m2 := newMgr(fs)
	m2.AddPartition(key, 3, wal.Open(fs, "/wal/t0", "n1"))
	if err := m2.Recover([]PartKey{key}); err != nil {
		t.Fatal(err)
	}
	p2, _ := m2.Part(key)
	ins, del, mod := p2.Write.Counts()
	if ins+del+mod != 0 {
		t.Fatal("WAL not truncated by flush")
	}
}

func TestUnknownPartitionErrors(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	tx := m.Begin()
	if err := tx.Append("ghost/0", []any{int64(1)}); !errors.Is(err, ErrNoSuchPart) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Part("ghost/0"); !errors.Is(err, ErrNoSuchPart) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Recover([]PartKey{"ghost/0"}); !errors.Is(err, ErrNoSuchPart) {
		t.Fatalf("err = %v", err)
	}
}

func TestTailInsertOnlyDetection(t *testing.T) {
	fs := testFS()
	m := newMgr(fs)
	m.AddPartition("t/0", 2, nil)
	tx := m.Begin()
	tx.Append("t/0", []any{int64(1), "x"})
	tx.Commit()
	p, _ := m.Part("t/0")
	if !p.Write.IsTailInsertOnly() {
		t.Fatal("append-only write PDT should be tail-insert-only")
	}
	tx2 := m.Begin()
	tx2.Delete("t/0", 0)
	tx2.Commit()
	p, _ = m.Part("t/0")
	if p.Write.IsTailInsertOnly() {
		t.Fatal("delete should break tail-insert-only")
	}
}
