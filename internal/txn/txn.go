// Package txn implements VectorH transaction management (§6): snapshot
// isolation through stacked PDTs, optimistic concurrency control with
// write-write conflict detection at commit, two-phase commit records split
// between per-partition WALs (written by responsible nodes) and a reduced
// global WAL (written by the session master), log shipping callbacks for
// replicated tables, and write→read PDT update propagation.
//
// Position spaces: each partition has a stable on-disk image, a Read-PDT
// holding differences against it, and a master Write-PDT holding
// differences against the Read image. Transactions work on a copy-on-write
// of the Write-PDT; commit serializes the difference (pdt.Diff) into the
// current master under a global commit lock, exactly aborting on conflicts.
package txn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"

	"vectorh/internal/pdt"
	"vectorh/internal/wal"
)

// WAL record types.
const (
	RecPrepare   uint8 = 1 // partition WAL: {txn, entries}
	RecCommit    uint8 = 2 // global WAL: {txn, epoch, parts}
	RecPropagate uint8 = 3 // partition WAL: write→read propagation marker
)

// Errors.
var (
	ErrTxnDone    = errors.New("txn: transaction already finished")
	ErrNoSuchPart = errors.New("txn: unknown partition")
)

// PartKey identifies a table partition, e.g. "lineitem/17".
type PartKey string

// Part is the master delta state of one partition.
type Part struct {
	Read  *pdt.PDT
	Write *pdt.PDT
	Log   *wal.Log
}

// Size returns the partition's visible row count (stable + read + write).
func (p *Part) Size() int64 { return p.Write.Size() }

// Manager is the transaction manager (logically: the session master's
// coordinator state plus each responsible node's partition state).
type Manager struct {
	mu        sync.Mutex
	epoch     int64
	nextTxn   int64
	parts     map[PartKey]*Part
	globalLog *wal.Log

	// OnCommit, when set, receives each committed partition delta — the
	// log-shipping hook used for replicated tables (§6 "Log Shipping").
	OnCommit func(part PartKey, entries []pdt.Entry, epoch int64)
}

// NewManager returns a manager writing 2PC decisions to globalLog (nil for
// tests that do not care about durability).
func NewManager(globalLog *wal.Log) *Manager {
	return &Manager{parts: make(map[PartKey]*Part), globalLog: globalLog}
}

// AddPartition registers a partition with stableRows rows on disk and an
// optional per-partition WAL.
func (m *Manager) AddPartition(key PartKey, stableRows int64, log *wal.Log) *Part {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := &Part{Read: pdt.New(stableRows), Write: pdt.New(stableRows), Log: log}
	m.parts[key] = p
	return p
}

// Part returns the master state of a partition. The returned struct's
// Read/Write fields are swapped by commits under the manager lock, so
// concurrent callers must not read them directly — use Snapshot, SizeOf or
// MemBytesOf, which read under the lock. Part itself remains for
// single-threaded tests and recovery tooling.
func (m *Manager) Part(key PartKey) (*Part, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.parts[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchPart, key)
	}
	return p, nil
}

// Snapshot returns the partition's current (Read, Write) PDT masters under
// the manager lock. Published masters are immutable (commit and propagation
// swap in copy-on-write successors), so the returned PDTs form a stable
// image a scan can merge through while later commits proceed.
func (m *Manager) Snapshot(key PartKey) (read, write *pdt.PDT, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.parts[key]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoSuchPart, key)
	}
	return p.Read, p.Write, nil
}

// SizeOf returns the partition's visible row count, reading the master
// Write-PDT pointer under the manager lock.
func (m *Manager) SizeOf(key PartKey) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.parts[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchPart, key)
	}
	return p.Write.Size(), nil
}

// MemBytesOf returns the combined delta memory of the partition's PDT
// layers (the update-propagation trigger), read under the manager lock.
func (m *Manager) MemBytesOf(key PartKey) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.parts[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchPart, key)
	}
	return p.Read.MemBytes() + p.Write.MemBytes(), nil
}

// Epoch returns the current commit epoch.
func (m *Manager) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Txn is one transaction: a snapshot epoch plus per-partition views.
type Txn struct {
	m        *Manager
	id       int64
	snapshot int64
	done     bool
	views    map[PartKey]*txView
}

type txView struct {
	read      *pdt.PDT // master Read at first touch
	snapWrite *pdt.PDT // master Write at first touch
	eff       *pdt.PDT // copy-on-write once the txn writes
}

// Begin starts a transaction at the current epoch.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxn++
	return &Txn{m: m, id: m.nextTxn, snapshot: m.epoch, views: make(map[PartKey]*txView)}
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

func (t *Txn) view(key PartKey) (*txView, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if v, ok := t.views[key]; ok {
		return v, nil
	}
	t.m.mu.Lock()
	p, ok := t.m.parts[key]
	t.m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchPart, key)
	}
	v := &txView{read: p.Read, snapWrite: p.Write}
	t.views[key] = v
	return v, nil
}

// View returns the (read, write) PDT pair a scan under this transaction
// must merge through. The write layer reflects the transaction's own
// uncommitted changes.
func (t *Txn) View(key PartKey) (read, write *pdt.PDT, err error) {
	v, err := t.view(key)
	if err != nil {
		return nil, nil, err
	}
	if v.eff != nil {
		return v.read, v.eff, nil
	}
	return v.read, v.snapWrite, nil
}

func (t *Txn) eff(key PartKey) (*pdt.PDT, error) {
	v, err := t.view(key)
	if err != nil {
		return nil, err
	}
	if v.eff == nil {
		v.eff = v.snapWrite.CopyOnWrite()
	}
	return v.eff, nil
}

// Size returns the partition's row count as seen by this transaction.
func (t *Txn) Size(key PartKey) (int64, error) {
	_, w, err := t.View(key)
	if err != nil {
		return 0, err
	}
	return w.Size(), nil
}

// Append inserts a row at the end of the partition.
func (t *Txn) Append(key PartKey, row []any) error {
	e, err := t.eff(key)
	if err != nil {
		return err
	}
	e.Append(row)
	return nil
}

// Insert places a row at the given visible position.
func (t *Txn) Insert(key PartKey, rid int64, row []any) error {
	e, err := t.eff(key)
	if err != nil {
		return err
	}
	return e.Insert(rid, row)
}

// Delete removes the row at the given visible position.
func (t *Txn) Delete(key PartKey, rid int64) error {
	e, err := t.eff(key)
	if err != nil {
		return err
	}
	return e.Delete(rid)
}

// Modify updates columns of the row at the given visible position.
func (t *Txn) Modify(key PartKey, rid int64, cols []int, vals []any) error {
	e, err := t.eff(key)
	if err != nil {
		return err
	}
	return e.Modify(rid, cols, vals)
}

// Abort discards the transaction.
func (t *Txn) Abort() { t.done = true }

// prepared is one partition's serialized delta awaiting the commit decision.
type prepared struct {
	key     PartKey
	part    *Part
	entries []pdt.Entry
	next    *pdt.PDT
}

// Commit serializes every touched partition under the global commit lock
// (phase 1: validate + write PREPARE to each partition WAL; phase 2: write
// the COMMIT decision to the global WAL and atomically swap the master
// Write-PDTs). On write-write conflict it aborts with pdt.ErrConflict.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true

	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	commitEpoch := m.epoch + 1

	var preps []prepared
	for key, v := range t.views {
		if v.eff == nil {
			continue // read-only on this partition
		}
		entries := pdt.Diff(v.snapWrite, v.eff)
		if len(entries) == 0 {
			continue
		}
		part := m.parts[key]
		// Validate and apply against a copy of the *current* master,
		// which may have advanced past our snapshot.
		next := part.Write.CopyOnWrite()
		if err := pdt.ApplyTrans(next, entries, t.snapshot, commitEpoch); err != nil {
			return err
		}
		preps = append(preps, prepared{key: key, part: part, entries: entries, next: next})
	}
	if len(preps) == 0 {
		return nil // read-only transaction
	}
	sort.Slice(preps, func(i, j int) bool { return preps[i].key < preps[j].key })

	// Phase 1: PREPARE records on the partitions' WALs.
	for _, p := range preps {
		if p.part.Log != nil {
			rec, err := encodePrepare(t.id, p.entries)
			if err != nil {
				return err
			}
			if err := p.part.Log.Append(RecPrepare, rec); err != nil {
				return err
			}
		}
	}
	// Phase 2: the commit decision on the global WAL.
	if m.globalLog != nil {
		rec, err := encodeCommit(t.id, commitEpoch, preps)
		if err != nil {
			return err
		}
		if err := m.globalLog.Append(RecCommit, rec); err != nil {
			return err
		}
	}
	// Swap in the new masters (copy-on-write: running scans keep theirs).
	for _, p := range preps {
		p.part.Write = p.next
	}
	m.epoch = commitEpoch
	if m.OnCommit != nil {
		for _, p := range preps {
			m.OnCommit(p.key, p.entries, commitEpoch)
		}
	}
	return nil
}

// PropagateWriteToRead moves the partition's Write-PDT contents into its
// Read-PDT (the RAM-side half of update propagation; flushing Read to the
// column store is the engine's job). A PROPAGATE marker is logged so
// recovery can mirror the layering.
func (m *Manager) PropagateWriteToRead(key PartKey) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.parts[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchPart, key)
	}
	newRead := p.Read.CopyOnWrite()
	if err := pdt.Replay(newRead, p.Write); err != nil {
		return err
	}
	if p.Log != nil {
		if err := p.Log.Append(RecPropagate, nil); err != nil {
			return err
		}
	}
	p.Read = newRead
	p.Write = pdt.New(newRead.Size())
	return nil
}

// ResetAfterFlush reinitializes a partition after its deltas were flushed to
// the column store: empty PDTs over the new stable row count and a truncated
// WAL (the flush is the checkpoint).
func (m *Manager) ResetAfterFlush(key PartKey, newStableRows int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.parts[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchPart, key)
	}
	p.Read = pdt.New(newStableRows)
	p.Write = pdt.New(newStableRows)
	if p.Log != nil {
		if err := p.Log.Truncate(); err != nil {
			return err
		}
	}
	return nil
}

// Recover rebuilds partition state from the WALs: the global WAL determines
// which transactions committed (2PC decisions), then each partition WAL's
// PREPARE records for committed transactions are replayed in order,
// honoring PROPAGATE markers. Uncommitted prepares (coordinator failure
// before decision) are discarded, which is the correct 2PC presumed-abort
// outcome.
func (m *Manager) Recover(keys []PartKey) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	committed := make(map[int64]int64) // txn id -> epoch
	maxEpoch := int64(0)
	if m.globalLog != nil {
		err := m.globalLog.Replay(func(rt uint8, data []byte) error {
			if rt != RecCommit {
				return nil
			}
			id, epoch, _, err := decodeCommit(data)
			if err != nil {
				return err
			}
			committed[id] = epoch
			if epoch > maxEpoch {
				maxEpoch = epoch
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	for _, key := range keys {
		p, ok := m.parts[key]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchPart, key)
		}
		if p.Log == nil {
			continue
		}
		read := pdt.New(p.Read.StableRows())
		write := pdt.New(p.Read.StableRows())
		err := p.Log.Replay(func(rt uint8, data []byte) error {
			switch rt {
			case RecPrepare:
				id, entries, err := decodePrepare(data)
				if err != nil {
					return err
				}
				epoch, ok := committed[id]
				if !ok {
					return nil // presumed abort
				}
				return pdt.ApplyTrans(write, entries, epoch-1, epoch)
			case RecPropagate:
				if err := pdt.Replay(read, write); err != nil {
					return err
				}
				write = pdt.New(read.Size())
			}
			return nil
		})
		if err != nil {
			return err
		}
		p.Read, p.Write = read, write
	}
	if maxEpoch > m.epoch {
		m.epoch = maxEpoch
	}
	return nil
}

// --- WAL record encoding (gob) ---

func init() {
	gob.Register(int64(0))
	gob.Register(int32(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}

type prepareRec struct {
	Txn     int64
	Entries []pdt.Entry
}

type commitRec struct {
	Txn   int64
	Epoch int64
	Parts []string
}

func encodePrepare(id int64, entries []pdt.Entry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(prepareRec{Txn: id, Entries: entries}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePrepare(data []byte) (int64, []pdt.Entry, error) {
	var rec prepareRec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return 0, nil, err
	}
	return rec.Txn, rec.Entries, nil
}

func encodeCommit(id, epoch int64, preps []prepared) ([]byte, error) {
	rec := commitRec{Txn: id, Epoch: epoch}
	for _, p := range preps {
		rec.Parts = append(rec.Parts, string(p.key))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCommit(data []byte) (int64, int64, []string, error) {
	var rec commitRec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return 0, 0, nil, err
	}
	return rec.Txn, rec.Epoch, rec.Parts, nil
}
