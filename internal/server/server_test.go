package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vectorh"
	"vectorh/internal/colstore"
	"vectorh/internal/tpch"
)

// The shared fixture: one SF 0.01 TPC-H database for the whole package
// (loading dominates test time; the server is stateless over it except for
// the DML test, which nets to zero).
var (
	fixtureOnce sync.Once
	fixtureDB   *vectorh.DB
	fixtureErr  error
)

func testDB(t *testing.T) *vectorh.DB {
	t.Helper()
	fixtureOnce.Do(func() {
		db, err := vectorh.Open(vectorh.Config{
			Nodes:          []string{"node1", "node2", "node3"},
			ThreadsPerNode: 2,
			BlockSize:      1 << 18,
			Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
			MsgBytes:       16 << 10,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		d := tpch.Generate(0.01, 42)
		if err := tpch.LoadIntoEngine(db.Engine, d, 6); err != nil {
			fixtureErr = err
			return
		}
		fixtureDB = db
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDB
}

func startServer(t *testing.T, opt Options) (*Server, string) {
	t.Helper()
	srv := New(testDB(t), opt)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func sqlQueryNumbers() []int {
	var qs []int
	for q := range tpch.SQLQueries {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	return qs
}

// normalizeRows renders rows with floats rounded: float aggregation order
// across exchange threads is nondeterministic, so two correct executions
// may differ in the last bits. Row ORDER is preserved — ORDER BY results
// must match positionally.
func normalizeRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&sb, "%.6g|", f)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		out[i] = sb.String()
	}
	return out
}

// TestSixteenSessionsRowIdentical is the acceptance gate: 16 concurrent
// sessions each run all SQL TPC-H queries and every result must be
// row-identical to single-session in-process execution.
func TestSixteenSessionsRowIdentical(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, Options{MaxConcurrent: 8})

	qs := sqlQueryNumbers()
	want := make(map[int][]string, len(qs))
	for _, q := range qs {
		rows, err := db.QuerySQL(tpch.SQLQueries[q])
		if err != nil {
			t.Fatalf("Q%02d reference: %v", q, err)
		}
		want[q] = normalizeRows(rows)
	}

	const sessions = 16
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for _, q := range qs {
				res, err := c.Query(context.Background(), tpch.SQLQueries[q])
				if err != nil {
					errs <- fmt.Errorf("session %d Q%02d: %w", s, q, err)
					return
				}
				if got := normalizeRows(res.Rows); !reflect.DeepEqual(got, want[q]) {
					errs <- fmt.Errorf("session %d Q%02d: rows diverge from in-process execution", s, q)
					return
				}
			}
			errs <- nil
		}(s)
	}
	wg.Wait()
	for s := 0; s < sessions; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdmissionControlCapsInflight floods a MaxConcurrent=2 server and
// samples the active-query gauge: it must never exceed the limit, queries
// must queue, and all must eventually complete.
func TestAdmissionControlCapsInflight(t *testing.T) {
	srv, addr := startServer(t, Options{MaxConcurrent: 2, QueueWait: time.Minute})

	stop := make(chan struct{})
	var peakActive, peakQueued int64
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := srv.Stats()
			if st.ActiveQueries > peakActive {
				peakActive = st.ActiveQueries
			}
			if st.QueuedQueries > peakQueued {
				peakQueued = st.QueuedQueries
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const n = 10
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Query(context.Background(), tpch.SQLQueries[9])
			errs <- err
		}()
	}
	wg.Wait()
	close(stop)
	<-sampled
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if peakActive > 2 {
		t.Fatalf("admission control breached: %d queries executing concurrently (limit 2)", peakActive)
	}
	if peakQueued == 0 {
		t.Fatal("expected excess queries to queue, sampler never saw a queued query")
	}
	st := srv.Stats()
	if st.CompletedQueries != n {
		t.Fatalf("completed = %d, want %d", st.CompletedQueries, n)
	}
	if st.RejectedQueries != 0 {
		t.Fatalf("rejected = %d, want 0", st.RejectedQueries)
	}
}

// TestAdmissionQueueTimeout: with a 1-slot server and a near-zero queue
// wait, simultaneous queries must be rejected with "server busy" — and the
// rejection must leave the server healthy.
func TestAdmissionQueueTimeout(t *testing.T) {
	srv, addr := startServer(t, Options{MaxConcurrent: 1, QueueWait: time.Millisecond})
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Query(context.Background(), tpch.SQLQueries[9])
			errs <- err
		}()
	}
	wg.Wait()
	busy := 0
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			if !strings.Contains(err.Error(), "server busy") {
				t.Fatalf("unexpected error: %v", err)
			}
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("expected at least one 'server busy' rejection")
	}
	if st := srv.Stats(); st.RejectedQueries != int64(busy) {
		t.Fatalf("rejected metric = %d, want %d", st.RejectedQueries, busy)
	}
	// The server must remain usable after rejections.
	c := dial(t, addr)
	if _, err := c.Query(context.Background(), tpch.SQLQueries[6]); err != nil {
		t.Fatalf("post-rejection query: %v", err)
	}
}

// TestCancelMidQuery cancels an in-flight query via the client context
// (which sends a wire-level cancel), asserts the query terminates with a
// cancellation error, the worker goroutines exit (no leak), and the server
// keeps serving.
func TestCancelMidQuery(t *testing.T) {
	srv, addr := startServer(t, Options{MaxConcurrent: 4})
	c := dial(t, addr)

	// Warm up (decoded-block caches, goroutine pools) and take a baseline.
	if _, err := c.Query(context.Background(), tpch.SQLQueries[9]); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, 2*time.Second)
	baseline := runtime.NumGoroutine()

	cancelled := 0
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(3 * time.Millisecond) // mid-scan for the ~30ms Q9
			cancel()
		}()
		_, err := c.Query(ctx, tpch.SQLQueries[9])
		cancel()
		if err == nil {
			continue // the query won the race; try again
		}
		if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "cancel") {
			t.Fatalf("unexpected error: %v", err)
		}
		cancelled++
	}
	if cancelled == 0 {
		t.Fatal("no attempt was cancelled mid-flight")
	}
	// The client can observe its context fire while the server-side race
	// resolves as completion, so the metric may lag the client's count —
	// but at least one server-side cancellation must have registered.
	if got := srv.Stats().CancelledQueries; got < 1 {
		t.Fatalf("cancelled metric = %d, want >= 1", got)
	}

	// Worker goroutines (scans, exchange producers, DXchg senders) must
	// exit: goroutine count returns to the post-warmup baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after cancel: %d vs baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Server stays healthy: a fresh query returns correct results.
	res, err := c.Query(context.Background(), tpch.SQLQueries[6])
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("post-cancel query: rows=%v err=%v", res, err)
	}
}

// waitSettled waits for transient goroutines of prior queries to exit.
func waitSettled(t *testing.T, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	last := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == last {
			return
		}
		last = cur
	}
}

// TestDeadlineMidQuery: a server-side deadline (timeout_ms) cancels the
// query without any client action.
func TestDeadlineMidQuery(t *testing.T) {
	_, addr := startServer(t, Options{MaxConcurrent: 4})
	c := dial(t, addr)
	hit := false
	for i := 0; i < 10 && !hit; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		_, err := c.Query(ctx, tpch.SQLQueries[9])
		cancel()
		if err != nil {
			hit = true
			low := strings.ToLower(err.Error())
			if !strings.Contains(low, "deadline") && !strings.Contains(low, "cancel") {
				t.Fatalf("unexpected error: %v", err)
			}
		}
	}
	if !hit {
		t.Fatal("2ms deadline never fired on a ~30ms query")
	}
}

// TestErrorCarriesPosition: compile errors reach the client as structured
// line:col errors.
func TestErrorCarriesPosition(t *testing.T) {
	_, addr := startServer(t, Options{})
	c := dial(t, addr)
	_, err := c.Query(context.Background(), "select\n  nosuch_column\nfrom region")
	if err == nil {
		t.Fatal("want error")
	}
	var werr *WireError
	if !errors.As(err, &werr) {
		t.Fatalf("error is %T, want *WireError", err)
	}
	if werr.Line != 2 || werr.Col == 0 {
		t.Fatalf("position = %d:%d, want line 2", werr.Line, werr.Col)
	}
}

// TestExecOverWire runs DML through a session (insert, verify, delete).
func TestExecOverWire(t *testing.T) {
	_, addr := startServer(t, Options{})
	c := dial(t, addr)
	n, err := c.Exec(context.Background(),
		"insert into region (r_regionkey, r_name, r_comment) values (77, 'ATLANTIS', 'sunk')")
	if err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	res, err := c.Query(context.Background(), "select r_name from region where r_regionkey = 77")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "ATLANTIS" {
		t.Fatalf("select: rows=%v err=%v", res, err)
	}
	n, err = c.Exec(context.Background(), "delete from region where r_regionkey = 77")
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
}

// TestPingStatsExplain covers the control ops.
func TestPingStatsExplain(t *testing.T) {
	_, addr := startServer(t, Options{MaxConcurrent: 3})
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), tpch.SQLQueries[6]); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxConcurrent != 3 || st.CompletedQueries < 1 || st.Sessions < 1 {
		t.Fatalf("stats = %+v", st)
	}
	plan, err := c.Explain(tpch.SQLQueries[6])
	if err != nil || !strings.Contains(plan, "MScan") {
		t.Fatalf("explain: %q err=%v", plan, err)
	}
}

// TestServerRejectsOversizedFrame: a malicious header must not commit the
// server to a giant allocation; the connection is dropped.
func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := startServer(t, Options{MaxFrameBytes: 1 << 16})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{0xff, 0xff, 0xff, 0xff})
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection survived an oversized frame header")
	}
}

// TestGracefulClose: Close cancels in-flight queries and returns with no
// server goroutine left.
func TestGracefulClose(t *testing.T) {
	srv := New(testDB(t), Options{MaxConcurrent: 4})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	launched := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(launched)
		_, err := c.Query(context.Background(), tpch.SQLQueries[9])
		done <- err
	}()
	<-launched
	time.Sleep(2 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done: // cancelled or completed; either way the client unblocked
	case <-time.After(5 * time.Second):
		t.Fatal("client query still blocked after server Close")
	}
}
