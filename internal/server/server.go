package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vectorh"
	"vectorh/internal/sql"
	"vectorh/internal/vector"
)

// Options tune a serving instance.
type Options struct {
	// MaxConcurrent bounds simultaneously *executing* queries across all
	// sessions (the admission-control semaphore). Excess queries wait in an
	// admission queue. Default 4.
	MaxConcurrent int
	// QueueWait bounds how long an admitted-pending query may wait for an
	// execution slot before it is rejected with a "server busy" error.
	// Default 10s.
	QueueWait time.Duration
	// RowsPerFrame bounds the row count of one streamed `rows` frame.
	// Default 512.
	RowsPerFrame int
	// MaxFrameBytes bounds accepted request frames. Default 8 MiB.
	MaxFrameBytes int
}

func (o *Options) fill() {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 10 * time.Second
	}
	if o.RowsPerFrame <= 0 {
		o.RowsPerFrame = 512
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
}

// metrics is the server's atomic counter block.
type metrics struct {
	sessions      atomic.Int64
	totalSessions atomic.Int64
	active        atomic.Int64
	queued        atomic.Int64
	completed     atomic.Int64
	cancelled     atomic.Int64
	failed        atomic.Int64
	rejected      atomic.Int64
	rowsServed    atomic.Int64
	openStmts     atomic.Int64
}

// Server serves SQL over the frame protocol on a TCP listener. One Server
// fronts one vectorh.DB; sessions are per-connection.
type Server struct {
	db   *vectorh.DB
	opt  Options
	slot chan struct{} // admission-control semaphore

	ctx    context.Context // closed on Close; cancels every in-flight query
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	m metrics
}

// New builds a server over a database.
func New(db *vectorh.DB, opt Options) *Server {
	opt.fill()
	//lint:ctx the server owns the process-lifetime root context; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:     db,
		opt:    opt,
		slot:   make(chan struct{}, opt.MaxConcurrent),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine; it returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		ln.Close()
		return nil, errors.New("server: closed")
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// track registers conn and reserves a waitgroup slot for its handler; it
// reports false when the server is closing and the conn must not be served.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		go s.serveConn(conn)
	}
}

// Close stops accepting, cancels every in-flight query and waits for all
// session handlers to drain — after Close returns, no server goroutine is
// left running.
func (s *Server) Close() error {
	ln, conns, first := s.beginClose()
	if !first {
		s.wg.Wait()
		return nil
	}
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// beginClose flips the closed flag and snapshots what must be torn down.
// first is false when another Close already won the race.
func (s *Server) beginClose() (ln net.Listener, conns []net.Conn, first bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, false
	}
	s.closed = true
	ln = s.ln
	conns = make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return ln, conns, true
}

// Stats returns a point-in-time metrics snapshot, including the shared
// compiled-plan cache counters.
func (s *Server) Stats() StatsSnapshot {
	pc := s.db.PlanCacheStats()
	return StatsSnapshot{
		Sessions:         s.m.sessions.Load(),
		TotalSessions:    s.m.totalSessions.Load(),
		ActiveQueries:    s.m.active.Load(),
		QueuedQueries:    s.m.queued.Load(),
		CompletedQueries: s.m.completed.Load(),
		CancelledQueries: s.m.cancelled.Load(),
		FailedQueries:    s.m.failed.Load(),
		RejectedQueries:  s.m.rejected.Load(),
		RowsServed:       s.m.rowsServed.Load(),
		OpenStatements:   s.m.openStmts.Load(),
		MaxConcurrent:    s.opt.MaxConcurrent,
		PlanCache: &PlanCacheInfo{
			Hits:          pc.Hits,
			Misses:        pc.Misses,
			Evictions:     pc.Evictions,
			Invalidations: pc.Invalidations,
			Entries:       pc.Entries,
		},
	}
}

// session is one connection's state.
type session struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex // one response frame at a time

	mu       sync.Mutex
	inflight map[int64]context.CancelCauseFunc
	stmts    map[int64]*sql.Prepared // prepared statements, keyed by client handle
	wg       sync.WaitGroup          // request workers
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.m.sessions.Add(1)
	s.m.totalSessions.Add(1)
	sess := &session{srv: s, conn: conn,
		inflight: make(map[int64]context.CancelCauseFunc),
		stmts:    make(map[int64]*sql.Prepared)}
	sess.readLoop()
	// Connection gone (or server closing): cancel whatever is still
	// running on this session and wait for the workers before closing.
	sess.mu.Lock()
	for _, cancel := range sess.inflight {
		cancel(errors.New("session closed"))
	}
	s.m.openStmts.Add(-int64(len(sess.stmts)))
	sess.stmts = nil
	sess.mu.Unlock()
	sess.wg.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.m.sessions.Add(-1)
}

func (ss *session) readLoop() {
	for {
		payload, err := ReadFrame(ss.conn, ss.srv.opt.MaxFrameBytes)
		if err != nil {
			return
		}
		var req Request
		if err := unmarshalStrictNumbers(payload, &req); err != nil {
			ss.send(&Response{Type: RespError, Err: &WireError{Msg: "bad request frame: " + err.Error()}})
			return
		}
		switch req.Op {
		case OpPing:
			ss.send(&Response{ID: req.ID, Type: RespPong})
		case OpStats:
			st := ss.srv.Stats()
			ss.send(&Response{ID: req.ID, Type: RespStats, Stats: &st})
		case OpCancel:
			ss.cancelRequest(req.Target)
			ss.send(&Response{ID: req.ID, Type: RespDone})
		case OpPrepare:
			ss.handlePrepare(req)
		case OpCloseStmt:
			ss.handleCloseStmt(req)
		case OpExecute:
			// Bind in the read loop (cheap text splicing); execution itself
			// runs on a worker like any query/exec.
			bound, isSelect, err := ss.bindStmt(req)
			if err != nil {
				ss.sendErr(req.ID, err)
				continue
			}
			op := OpQuery
			if !isSelect {
				op = OpExec
			}
			ss.startWork(Request{ID: req.ID, Op: op, SQL: bound, TimeoutMs: req.TimeoutMs})
		case OpQuery, OpExec, OpExplain:
			ss.startWork(req)
		default:
			ss.send(&Response{ID: req.ID, Type: RespError,
				Err: &WireError{Msg: fmt.Sprintf("unknown op %q", req.Op)}})
		}
	}
}

// handlePrepare lexes and validates a '?' template and registers it under
// the client-chosen handle. Preparing is pure frontend work (no plan is
// built), so it bypasses admission control.
func (ss *session) handlePrepare(req Request) {
	p, err := sql.Prepare(req.SQL)
	if err != nil {
		ss.sendErr(req.ID, err)
		return
	}
	replaced, ok := ss.storeStmt(req.Stmt, p)
	if !ok {
		ss.sendErr(req.ID, errors.New("session closing"))
		return
	}
	if !replaced {
		ss.srv.m.openStmts.Add(1)
	}
	ss.send(&Response{ID: req.ID, Type: RespStmt, NumParams: p.NumParams()})
}

// storeStmt registers p under the client-chosen handle. ok is false when
// the session is already tearing down (its statement table is gone).
func (ss *session) storeStmt(handle int64, p *sql.Prepared) (replaced, ok bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.stmts == nil {
		return false, false
	}
	_, replaced = ss.stmts[handle]
	ss.stmts[handle] = p
	return replaced, true
}

func (ss *session) handleCloseStmt(req Request) {
	ss.mu.Lock()
	_, ok := ss.stmts[req.Stmt]
	delete(ss.stmts, req.Stmt)
	ss.mu.Unlock()
	if ok {
		ss.srv.m.openStmts.Add(-1)
	}
	ss.send(&Response{ID: req.ID, Type: RespDone})
}

// bindStmt splices an execute frame's positional parameters into the
// registered template, yielding ordinary SQL text in normalized form (the
// plan-cache key shape), plus whether it is a SELECT.
func (ss *session) bindStmt(req Request) (string, bool, error) {
	ss.mu.Lock()
	p := ss.stmts[req.Stmt]
	ss.mu.Unlock()
	if p == nil {
		return "", false, fmt.Errorf("unknown statement handle %d", req.Stmt)
	}
	bound, err := p.Bind(req.Params)
	if err != nil {
		return "", false, err
	}
	return bound, p.IsSelect(), nil
}

func (ss *session) cancelRequest(id int64) {
	ss.mu.Lock()
	cancel := ss.inflight[id]
	ss.mu.Unlock()
	if cancel != nil {
		cancel(errors.New("canceled by client"))
	}
}

// send writes one response frame (responses from concurrent workers
// interleave at frame granularity, never mid-frame).
func (ss *session) send(r *Response) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	return WriteFrame(ss.conn, r)
}

// startWork runs a query/exec/explain request in its own worker goroutine,
// so the read loop stays responsive to `cancel` (and further pipelined
// requests) while it executes.
func (ss *session) startWork(req Request) {
	ctx, cancelCause := context.WithCancelCause(ss.srv.ctx)
	cancel := cancelCause
	if req.TimeoutMs > 0 {
		tctx, tcancel := context.WithDeadlineCause(ctx,
			time.Now().Add(time.Duration(req.TimeoutMs)*time.Millisecond),
			errors.New("query deadline exceeded"))
		ctx = tctx
		cancel = func(cause error) {
			cancelCause(cause)
			tcancel()
		}
	}
	ss.mu.Lock()
	if _, dup := ss.inflight[req.ID]; dup {
		ss.mu.Unlock()
		cancel(nil)
		ss.send(&Response{ID: req.ID, Type: RespError,
			Err: &WireError{Msg: fmt.Sprintf("request id %d already in flight", req.ID)}})
		return
	}
	ss.inflight[req.ID] = cancel
	ss.wg.Add(1)
	ss.mu.Unlock()
	go func() {
		defer func() {
			ss.mu.Lock()
			delete(ss.inflight, req.ID)
			ss.mu.Unlock()
			cancel(nil)
			ss.wg.Done()
		}()
		ss.runRequest(ctx, req)
	}()
}

// admit acquires an execution slot, queueing up to QueueWait.
func (ss *session) admit(ctx context.Context) error {
	srv := ss.srv
	select {
	case srv.slot <- struct{}{}:
		return nil
	default:
	}
	srv.m.queued.Add(1)
	defer srv.m.queued.Add(-1)
	timer := time.NewTimer(srv.opt.QueueWait)
	defer timer.Stop()
	select {
	case srv.slot <- struct{}{}:
		return nil
	case <-timer.C:
		srv.m.rejected.Add(1)
		return fmt.Errorf("server busy: %d queries executing, queue wait exceeded %v",
			srv.opt.MaxConcurrent, srv.opt.QueueWait)
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (ss *session) runRequest(ctx context.Context, req Request) {
	if req.Op == OpExplain {
		// Explain only plans; it bypasses admission control.
		plan, err := ss.srv.db.ExplainSQL(req.SQL)
		if err != nil {
			ss.sendErr(req.ID, err)
			return
		}
		ss.send(&Response{ID: req.ID, Type: RespPlan, Plan: plan})
		return
	}
	if err := ss.admit(ctx); err != nil {
		ss.sendErr(req.ID, err)
		return
	}
	defer func() { <-ss.srv.slot }()
	ss.srv.m.active.Add(1)
	defer ss.srv.m.active.Add(-1)

	start := time.Now()
	var err error
	switch req.Op {
	case OpQuery:
		err = ss.runQuery(ctx, req)
	case OpExec:
		var affected int64
		affected, err = ss.srv.db.ExecSQLContext(ctx, req.SQL)
		if err == nil {
			err = ss.send(&Response{ID: req.ID, Type: RespDone, Affected: affected,
				ElapsedUs: time.Since(start).Microseconds()})
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			ss.srv.m.cancelled.Add(1)
		} else {
			ss.srv.m.failed.Add(1)
		}
		ss.sendErr(req.ID, err)
		return
	}
	ss.srv.m.completed.Add(1)
}

func (ss *session) runQuery(ctx context.Context, req Request) error {
	db := ss.srv.db
	schema, err := db.SchemaSQL(req.SQL)
	if err != nil {
		return err
	}
	if err := ss.send(&Response{ID: req.ID, Type: RespSchema, Schema: descSchema(schema)}); err != nil {
		return err
	}
	start := time.Now()
	var pending [][]any
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		n := int64(len(pending))
		if err := ss.send(&Response{ID: req.ID, Type: RespRows, Rows: pending}); err != nil {
			return err
		}
		ss.srv.m.rowsServed.Add(n)
		pending = pending[:0]
		return nil
	}
	err = db.QueryStreamSQL(ctx, req.SQL, func(rows [][]any) error {
		pending = append(pending, rows...)
		if len(pending) >= ss.srv.opt.RowsPerFrame {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	return ss.send(&Response{ID: req.ID, Type: RespDone,
		ElapsedUs: time.Since(start).Microseconds()})
}

func (ss *session) sendErr(id int64, err error) {
	ss.send(&Response{ID: id, Type: RespError, Err: toWireError(err)})
}

// toWireError preserves SQL compile positions (line:col) across the wire.
func toWireError(err error) *WireError {
	var serr *sql.Error
	if errors.As(err, &serr) {
		return &WireError{Line: serr.Pos.Line, Col: serr.Pos.Col, Msg: serr.Msg}
	}
	return &WireError{Msg: err.Error()}
}

// descSchema renders an output schema for the wire.
func descSchema(schema vectorh.Schema) []ColDesc {
	out := make([]ColDesc, len(schema))
	for i, f := range schema {
		d := ColDesc{Name: f.Name, Kind: f.Type.Kind.String()}
		switch f.Type.Logical {
		case vector.Date:
			d.Logical = "date"
		case vector.Decimal:
			d.Logical = "decimal"
		}
		out[i] = d
	}
	return out
}

// unmarshalStrictNumbers decodes JSON rejecting trailing garbage (a frame
// carries exactly one value).
func unmarshalStrictNumbers(data []byte, v any) error {
	dec := newNumberDecoder(data)
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after frame payload")
	}
	return nil
}

// Addr formats host:port for messages.
func Addr(conn net.Conn) string {
	if conn == nil {
		return "?"
	}
	return strings.TrimPrefix(conn.RemoteAddr().String(), "tcp://")
}
