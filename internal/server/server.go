package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vectorh"
	"vectorh/internal/obs"
	"vectorh/internal/sql"
	"vectorh/internal/vector"
)

// Options tune a serving instance.
type Options struct {
	// MaxConcurrent bounds simultaneously *executing* queries across all
	// sessions (the admission-control semaphore). Excess queries wait in an
	// admission queue. Default 4.
	MaxConcurrent int
	// QueueWait bounds how long an admitted-pending query may wait for an
	// execution slot before it is rejected with a "server busy" error.
	// Default 10s.
	QueueWait time.Duration
	// RowsPerFrame bounds the row count of one streamed `rows` frame.
	// Default 512.
	RowsPerFrame int
	// MaxFrameBytes bounds accepted request frames. Default 8 MiB.
	MaxFrameBytes int
	// SlowQueryThreshold enables the structured slow-query log: queries (and
	// DML) at or above the threshold are written to SlowQueryLog as JSON
	// lines. Queries on a slow-logging server execute with per-operator
	// profiling on, so entries carry a phase breakdown and the top operators
	// by time. Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query JSON lines (required to enable
	// the log; writes are serialized).
	SlowQueryLog io.Writer
}

func (o *Options) fill() {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 10 * time.Second
	}
	if o.RowsPerFrame <= 0 {
		o.RowsPerFrame = 512
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
}

// metrics is the server's atomic counter block.
type metrics struct {
	sessions      atomic.Int64
	totalSessions atomic.Int64
	active        atomic.Int64
	queued        atomic.Int64
	completed     atomic.Int64
	cancelled     atomic.Int64
	failed        atomic.Int64
	rejected      atomic.Int64
	rowsServed    atomic.Int64
	openStmts     atomic.Int64
}

// Server serves SQL over the frame protocol on a TCP listener. One Server
// fronts one vectorh.DB; sessions are per-connection.
type Server struct {
	db   *vectorh.DB
	opt  Options
	slot chan struct{} // admission-control semaphore

	ctx    context.Context // closed on Close; cancels every in-flight query
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	m metrics

	started   time.Time
	slow      *obs.SlowLog
	queueHist *obs.Histogram // admission queue wait per admitted query
	execHist  *obs.Histogram // server-side execution time per query
}

// New builds a server over a database. The server registers its admission,
// session, plan-cache and latency metrics into the engine's registry, so one
// scrape (the `metrics` op or the -metrics-addr listener) covers both layers.
func New(db *vectorh.DB, opt Options) *Server {
	opt.fill()
	//lint:ctx the server owns the process-lifetime root context; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:      db,
		opt:     opt,
		slot:    make(chan struct{}, opt.MaxConcurrent),
		ctx:     ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
		started: time.Now(),
		slow:    obs.NewSlowLog(opt.SlowQueryLog, opt.SlowQueryThreshold),
	}
	s.registerMetrics(db.Obs())
	return s
}

// registerMetrics binds the server's counters and latency histograms into
// the engine registry. Registration is get-or-create and callback rebinding
// is latest-wins, so a fresh Server over the same DB takes over the names.
func (s *Server) registerMetrics(r *obs.Registry) {
	s.queueHist = r.Histogram("vectorh_query_queue_seconds", "Admission queue wait per admitted query.")
	s.execHist = r.Histogram("vectorh_query_exec_seconds", "Server-side execution time per query.")
	r.GaugeFunc("vectorh_sessions_active", "Open client sessions.",
		func() float64 { return float64(s.m.sessions.Load()) })
	r.CounterFunc("vectorh_sessions_total", "Sessions accepted since start.",
		func() float64 { return float64(s.m.totalSessions.Load()) })
	r.GaugeFunc("vectorh_queries_active", "Queries holding an execution slot.",
		func() float64 { return float64(s.m.active.Load()) })
	r.GaugeFunc("vectorh_queries_queued", "Queries waiting in the admission queue.",
		func() float64 { return float64(s.m.queued.Load()) })
	r.CounterFunc("vectorh_queries_completed_total", "Queries completed successfully.",
		func() float64 { return float64(s.m.completed.Load()) })
	r.CounterFunc("vectorh_queries_cancelled_total", "Queries cancelled by client, deadline or shutdown.",
		func() float64 { return float64(s.m.cancelled.Load()) })
	r.CounterFunc("vectorh_queries_failed_total", "Queries failed with an error.",
		func() float64 { return float64(s.m.failed.Load()) })
	r.CounterFunc("vectorh_queries_rejected_total", "Queries rejected by admission control (queue wait exceeded).",
		func() float64 { return float64(s.m.rejected.Load()) })
	r.CounterFunc("vectorh_rows_served_total", "Result rows streamed to clients.",
		func() float64 { return float64(s.m.rowsServed.Load()) })
	r.GaugeFunc("vectorh_stmts_open", "Prepared statements across live sessions.",
		func() float64 { return float64(s.m.openStmts.Load()) })
	r.CounterFunc("vectorh_slow_queries_total", "Slow-query log entries written.",
		func() float64 { return float64(s.slow.Logged()) })
	r.CounterFunc("vectorh_plan_cache_hits_total", "Plan cache hits.",
		func() float64 { return float64(s.db.PlanCacheStats().Hits) })
	r.CounterFunc("vectorh_plan_cache_misses_total", "Plan cache misses.",
		func() float64 { return float64(s.db.PlanCacheStats().Misses) })
	r.CounterFunc("vectorh_plan_cache_evictions_total", "Plan cache LRU evictions.",
		func() float64 { return float64(s.db.PlanCacheStats().Evictions) })
	r.CounterFunc("vectorh_plan_cache_invalidations_total", "Plan cache entries dropped by epoch flushes.",
		func() float64 { return float64(s.db.PlanCacheStats().Invalidations) })
	r.GaugeFunc("vectorh_plan_cache_entries", "Compiled plans resident in the cache.",
		func() float64 { return float64(s.db.PlanCacheStats().Entries) })
	r.GaugeFunc("vectorh_process_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	r.GaugeFunc("vectorh_process_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("vectorh_process_heap_bytes", "Heap bytes in use.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
}

// Metrics renders the full registry (engine + server) in Prometheus text
// format.
func (s *Server) Metrics() (string, error) {
	var sb strings.Builder
	if err := s.db.Obs().WritePrometheus(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// processStats samples the process-health block of a stats snapshot.
func (s *Server) processStats() *ProcessStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &ProcessStats{
		UptimeSec:    int64(time.Since(s.started).Seconds()),
		Goroutines:   runtime.NumGoroutine(),
		HeapBytes:    int64(ms.HeapInuse),
		GCPauseNs:    int64(ms.PauseTotalNs),
		NumGC:        int64(ms.NumGC),
		TotalAllocMB: int64(ms.TotalAlloc >> 20),
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine; it returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		ln.Close()
		return nil, errors.New("server: closed")
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// track registers conn and reserves a waitgroup slot for its handler; it
// reports false when the server is closing and the conn must not be served.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		go s.serveConn(conn)
	}
}

// Close stops accepting, cancels every in-flight query and waits for all
// session handlers to drain — after Close returns, no server goroutine is
// left running.
func (s *Server) Close() error {
	ln, conns, first := s.beginClose()
	if !first {
		s.wg.Wait()
		return nil
	}
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// beginClose flips the closed flag and snapshots what must be torn down.
// first is false when another Close already won the race.
func (s *Server) beginClose() (ln net.Listener, conns []net.Conn, first bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, false
	}
	s.closed = true
	ln = s.ln
	conns = make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return ln, conns, true
}

// Stats returns a point-in-time metrics snapshot, including the shared
// compiled-plan cache counters.
func (s *Server) Stats() StatsSnapshot {
	pc := s.db.PlanCacheStats()
	es := s.db.Stats()
	var storage []TableStorageInfo
	for _, ts := range s.db.TableStorage() {
		info := TableStorageInfo{Table: ts.Table, RawBytes: ts.RawBytes, EncodedBytes: ts.EncodedBytes}
		if ts.EncodedBytes > 0 {
			info.Ratio = float64(ts.RawBytes) / float64(ts.EncodedBytes)
		}
		storage = append(storage, info)
	}
	return StatsSnapshot{
		Sessions:         s.m.sessions.Load(),
		TotalSessions:    s.m.totalSessions.Load(),
		ActiveQueries:    s.m.active.Load(),
		QueuedQueries:    s.m.queued.Load(),
		CompletedQueries: s.m.completed.Load(),
		CancelledQueries: s.m.cancelled.Load(),
		FailedQueries:    s.m.failed.Load(),
		RejectedQueries:  s.m.rejected.Load(),
		RowsServed:       s.m.rowsServed.Load(),
		OpenStatements:   s.m.openStmts.Load(),
		MaxConcurrent:    s.opt.MaxConcurrent,
		PlanCache: &PlanCacheInfo{
			Hits:          pc.Hits,
			Misses:        pc.Misses,
			Evictions:     pc.Evictions,
			Invalidations: pc.Invalidations,
			Entries:       pc.Entries,
		},
		Process:     s.processStats(),
		SlowQueries: s.slow.Logged(),
		Scan: &ScanInfo{
			BlocksRead:        es.Scan.BlocksRead,
			BytesDecoded:      es.Scan.BytesDecoded,
			BytesSkipped:      es.Scan.BytesSkipped,
			BytesMaterialized: es.Scan.BytesMaterialized,
			SpansPruned:       es.Scan.SpansPruned,
			CacheHits:         es.ScanCacheHit,
		},
		Storage: storage,
	}
}

// session is one connection's state.
type session struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex // one response frame at a time

	mu       sync.Mutex
	inflight map[int64]context.CancelCauseFunc
	stmts    map[int64]*sql.Prepared // prepared statements, keyed by client handle
	wg       sync.WaitGroup          // request workers
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.m.sessions.Add(1)
	s.m.totalSessions.Add(1)
	sess := &session{srv: s, conn: conn,
		inflight: make(map[int64]context.CancelCauseFunc),
		stmts:    make(map[int64]*sql.Prepared)}
	sess.readLoop()
	// Connection gone (or server closing): cancel whatever is still
	// running on this session and wait for the workers before closing.
	sess.mu.Lock()
	for _, cancel := range sess.inflight {
		cancel(errors.New("session closed"))
	}
	s.m.openStmts.Add(-int64(len(sess.stmts)))
	sess.stmts = nil
	sess.mu.Unlock()
	sess.wg.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.m.sessions.Add(-1)
}

func (ss *session) readLoop() {
	for {
		payload, err := ReadFrame(ss.conn, ss.srv.opt.MaxFrameBytes)
		if err != nil {
			return
		}
		var req Request
		if err := unmarshalStrictNumbers(payload, &req); err != nil {
			ss.send(&Response{Type: RespError, Err: &WireError{Msg: "bad request frame: " + err.Error()}})
			return
		}
		switch req.Op {
		case OpPing:
			ss.send(&Response{ID: req.ID, Type: RespPong})
		case OpStats:
			st := ss.srv.Stats()
			ss.send(&Response{ID: req.ID, Type: RespStats, Stats: &st})
		case OpMetrics:
			text, err := ss.srv.Metrics()
			if err != nil {
				ss.sendErr(req.ID, err)
				continue
			}
			ss.send(&Response{ID: req.ID, Type: RespMetrics, Metrics: text})
		case OpCancel:
			ss.cancelRequest(req.Target)
			ss.send(&Response{ID: req.ID, Type: RespDone})
		case OpPrepare:
			ss.handlePrepare(req)
		case OpCloseStmt:
			ss.handleCloseStmt(req)
		case OpExecute:
			// Bind in the read loop (cheap text splicing); execution itself
			// runs on a worker like any query/exec.
			bound, isSelect, err := ss.bindStmt(req)
			if err != nil {
				ss.sendErr(req.ID, err)
				continue
			}
			op := OpQuery
			if !isSelect {
				op = OpExec
			}
			ss.startWork(Request{ID: req.ID, Op: op, SQL: bound, TimeoutMs: req.TimeoutMs})
		case OpQuery, OpExec, OpExplain, OpProfile:
			ss.startWork(req)
		default:
			ss.send(&Response{ID: req.ID, Type: RespError,
				Err: &WireError{Msg: fmt.Sprintf("unknown op %q", req.Op)}})
		}
	}
}

// handlePrepare lexes and validates a '?' template and registers it under
// the client-chosen handle. Preparing is pure frontend work (no plan is
// built), so it bypasses admission control.
func (ss *session) handlePrepare(req Request) {
	p, err := sql.Prepare(req.SQL)
	if err != nil {
		ss.sendErr(req.ID, err)
		return
	}
	replaced, ok := ss.storeStmt(req.Stmt, p)
	if !ok {
		ss.sendErr(req.ID, errors.New("session closing"))
		return
	}
	if !replaced {
		ss.srv.m.openStmts.Add(1)
	}
	ss.send(&Response{ID: req.ID, Type: RespStmt, NumParams: p.NumParams()})
}

// storeStmt registers p under the client-chosen handle. ok is false when
// the session is already tearing down (its statement table is gone).
func (ss *session) storeStmt(handle int64, p *sql.Prepared) (replaced, ok bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.stmts == nil {
		return false, false
	}
	_, replaced = ss.stmts[handle]
	ss.stmts[handle] = p
	return replaced, true
}

func (ss *session) handleCloseStmt(req Request) {
	ss.mu.Lock()
	_, ok := ss.stmts[req.Stmt]
	delete(ss.stmts, req.Stmt)
	ss.mu.Unlock()
	if ok {
		ss.srv.m.openStmts.Add(-1)
	}
	ss.send(&Response{ID: req.ID, Type: RespDone})
}

// bindStmt splices an execute frame's positional parameters into the
// registered template, yielding ordinary SQL text in normalized form (the
// plan-cache key shape), plus whether it is a SELECT.
func (ss *session) bindStmt(req Request) (string, bool, error) {
	ss.mu.Lock()
	p := ss.stmts[req.Stmt]
	ss.mu.Unlock()
	if p == nil {
		return "", false, fmt.Errorf("unknown statement handle %d", req.Stmt)
	}
	bound, err := p.Bind(req.Params)
	if err != nil {
		return "", false, err
	}
	return bound, p.IsSelect(), nil
}

func (ss *session) cancelRequest(id int64) {
	ss.mu.Lock()
	cancel := ss.inflight[id]
	ss.mu.Unlock()
	if cancel != nil {
		cancel(errors.New("canceled by client"))
	}
}

// send writes one response frame (responses from concurrent workers
// interleave at frame granularity, never mid-frame).
func (ss *session) send(r *Response) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	return WriteFrame(ss.conn, r)
}

// startWork runs a query/exec/explain request in its own worker goroutine,
// so the read loop stays responsive to `cancel` (and further pipelined
// requests) while it executes.
func (ss *session) startWork(req Request) {
	ctx, cancelCause := context.WithCancelCause(ss.srv.ctx)
	cancel := cancelCause
	if req.TimeoutMs > 0 {
		tctx, tcancel := context.WithDeadlineCause(ctx,
			time.Now().Add(time.Duration(req.TimeoutMs)*time.Millisecond),
			errors.New("query deadline exceeded"))
		ctx = tctx
		cancel = func(cause error) {
			cancelCause(cause)
			tcancel()
		}
	}
	ss.mu.Lock()
	if _, dup := ss.inflight[req.ID]; dup {
		ss.mu.Unlock()
		cancel(nil)
		ss.send(&Response{ID: req.ID, Type: RespError,
			Err: &WireError{Msg: fmt.Sprintf("request id %d already in flight", req.ID)}})
		return
	}
	ss.inflight[req.ID] = cancel
	ss.wg.Add(1)
	ss.mu.Unlock()
	go func() {
		defer func() {
			ss.mu.Lock()
			delete(ss.inflight, req.ID)
			ss.mu.Unlock()
			cancel(nil)
			ss.wg.Done()
		}()
		ss.runRequest(ctx, req)
	}()
}

// admit acquires an execution slot, queueing up to QueueWait.
func (ss *session) admit(ctx context.Context) error {
	srv := ss.srv
	select {
	case srv.slot <- struct{}{}:
		return nil
	default:
	}
	srv.m.queued.Add(1)
	defer srv.m.queued.Add(-1)
	timer := time.NewTimer(srv.opt.QueueWait)
	defer timer.Stop()
	select {
	case srv.slot <- struct{}{}:
		return nil
	case <-timer.C:
		srv.m.rejected.Add(1)
		return fmt.Errorf("server busy: %d queries executing, queue wait exceeded %v",
			srv.opt.MaxConcurrent, srv.opt.QueueWait)
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (ss *session) runRequest(ctx context.Context, req Request) {
	if req.Op == OpExplain {
		// Explain only plans; it bypasses admission control.
		plan, err := ss.srv.db.ExplainSQL(req.SQL)
		if err != nil {
			ss.sendErr(req.ID, err)
			return
		}
		ss.send(&Response{ID: req.ID, Type: RespPlan, Plan: plan})
		return
	}
	queueStart := time.Now()
	if err := ss.admit(ctx); err != nil {
		ss.sendErr(req.ID, err)
		return
	}
	queueWait := time.Since(queueStart)
	ss.srv.queueHist.Observe(queueWait)
	defer func() { <-ss.srv.slot }()
	ss.srv.m.active.Add(1)
	defer ss.srv.m.active.Add(-1)

	start := time.Now()
	var err error
	switch req.Op {
	case OpQuery:
		err = ss.runQuery(ctx, req, queueWait)
	case OpProfile:
		err = ss.runProfile(ctx, req)
	case OpExec:
		var affected int64
		affected, err = ss.srv.db.ExecSQLContext(ctx, req.SQL)
		if err == nil {
			elapsed := time.Since(start)
			ss.srv.slowLogExec(req.SQL, elapsed, queueWait, affected)
			err = ss.send(&Response{ID: req.ID, Type: RespDone, Affected: affected,
				ElapsedUs: elapsed.Microseconds(),
				QueueUs:   queueWait.Microseconds(),
				ExecUs:    elapsed.Microseconds()})
		}
	}
	ss.srv.execHist.Observe(time.Since(start))
	if err != nil {
		if ctx.Err() != nil {
			ss.srv.m.cancelled.Add(1)
		} else {
			ss.srv.m.failed.Add(1)
		}
		ss.sendErr(req.ID, err)
		return
	}
	ss.srv.m.completed.Add(1)
}

// queryHash returns the slow-log hash of a statement: normalized token text
// when it lexes as a SELECT (so literal-differing invocations aggregate),
// raw text otherwise.
func queryHash(src string) string {
	if norm, ok := sql.NormalizeSQL(src); ok {
		return obs.QueryHash(norm)
	}
	return obs.QueryHash(src)
}

// slowLogExec records a DML statement in the slow-query log (no operator
// breakdown — DML does not run under the profiled query path).
func (s *Server) slowLogExec(src string, elapsed, queueWait time.Duration, affected int64) {
	if !s.slow.Enabled() {
		return
	}
	s.slow.Record(elapsed, obs.SlowEntry{
		Hash:    queryHash(src),
		QueueUs: queueWait.Microseconds(),
		Rows:    affected,
	})
}

func (ss *session) runQuery(ctx context.Context, req Request, queueWait time.Duration) error {
	db := ss.srv.db
	schema, err := db.SchemaSQL(req.SQL)
	if err != nil {
		return err
	}
	if err := ss.send(&Response{ID: req.ID, Type: RespSchema, Schema: descSchema(schema)}); err != nil {
		return err
	}
	start := time.Now()
	var pending [][]any
	var served int64
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		n := int64(len(pending))
		if err := ss.send(&Response{ID: req.ID, Type: RespRows, Rows: pending}); err != nil {
			return err
		}
		ss.srv.m.rowsServed.Add(n)
		served += n
		pending = pending[:0]
		return nil
	}
	yield := func(rows [][]any) error {
		pending = append(pending, rows...)
		if len(pending) >= ss.srv.opt.RowsPerFrame {
			return flush()
		}
		return nil
	}
	// A slow-logging server runs queries with profiling on, so a slow entry
	// can say where the time went (phase breakdown, top operators) — the
	// instrumented run costs a timing wrapper per operator stream.
	slow := ss.srv.slow
	var prof *vectorh.QueryProfile
	if slow.Enabled() {
		prof, err = db.QueryStreamProfileSQL(ctx, req.SQL, yield)
	} else {
		err = db.QueryStreamSQL(ctx, req.SQL, yield)
	}
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	if slow.Enabled() {
		entry := obs.SlowEntry{
			Hash:    queryHash(req.SQL),
			QueueUs: queueWait.Microseconds(),
			Rows:    served,
		}
		if prof != nil {
			entry.CacheHit = prof.CacheHit
			for _, ph := range prof.Phases {
				entry.Phases = append(entry.Phases, obs.SlowPhase{Name: ph.Name, Micros: ph.Nanos.Microseconds()})
			}
			ops := prof.Operators
			if len(ops) > 3 {
				ops = ops[:3]
			}
			for _, op := range ops {
				entry.TopOps = append(entry.TopOps, obs.SlowOp{
					Op: op.Label, Micros: op.Nanos.Microseconds(), Rows: op.Rows, Batches: op.Batches})
			}
		}
		slow.Record(elapsed, entry)
	}
	return ss.send(&Response{ID: req.ID, Type: RespDone,
		ElapsedUs: elapsed.Microseconds(),
		QueueUs:   queueWait.Microseconds(),
		ExecUs:    elapsed.Microseconds()})
}

// runProfile executes a SELECT under EXPLAIN ANALYZE (full execution with
// per-operator profiling, rows discarded) and returns the rendered analysis
// as a plan frame.
func (ss *session) runProfile(ctx context.Context, req Request) error {
	start := time.Now()
	p, err := ss.srv.db.QueryStreamProfileSQL(ctx, req.SQL, func(rows [][]any) error { return nil })
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := ss.send(&Response{ID: req.ID, Type: RespPlan, Plan: p.Render()}); err != nil {
		return err
	}
	return ss.send(&Response{ID: req.ID, Type: RespDone,
		ElapsedUs: elapsed.Microseconds(), ExecUs: elapsed.Microseconds()})
}

func (ss *session) sendErr(id int64, err error) {
	ss.send(&Response{ID: id, Type: RespError, Err: toWireError(err)})
}

// toWireError preserves SQL compile positions (line:col) across the wire.
func toWireError(err error) *WireError {
	var serr *sql.Error
	if errors.As(err, &serr) {
		return &WireError{Line: serr.Pos.Line, Col: serr.Pos.Col, Msg: serr.Msg}
	}
	return &WireError{Msg: err.Error()}
}

// descSchema renders an output schema for the wire.
func descSchema(schema vectorh.Schema) []ColDesc {
	out := make([]ColDesc, len(schema))
	for i, f := range schema {
		d := ColDesc{Name: f.Name, Kind: f.Type.Kind.String()}
		switch f.Type.Logical {
		case vector.Date:
			d.Logical = "date"
		case vector.Decimal:
			d.Logical = "decimal"
		}
		out[i] = d
	}
	return out
}

// unmarshalStrictNumbers decodes JSON rejecting trailing garbage (a frame
// carries exactly one value).
func unmarshalStrictNumbers(data []byte, v any) error {
	dec := newNumberDecoder(data)
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after frame payload")
	}
	return nil
}

// Addr formats host:port for messages.
func Addr(conn net.Conn) string {
	if conn == nil {
		return "?"
	}
	return strings.TrimPrefix(conn.RemoteAddr().String(), "tcp://")
}
