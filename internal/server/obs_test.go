package server

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"vectorh/internal/obs"
)

// TestDoneFrameCarriesQueueExecSplit pins the server-side timing split: a
// query's done frame reports execution time and admission queue wait
// separately, and both surface on the client Result.
func TestDoneFrameCarriesQueueExecSplit(t *testing.T) {
	_, addr := startServer(t, Options{MaxConcurrent: 2, QueueWait: time.Minute})
	c := dial(t, addr)
	res, err := c.Query(context.Background(), "select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec <= 0 {
		t.Errorf("done frame carried no exec time: %+v", res)
	}
	if res.Queue < 0 {
		t.Errorf("negative queue wait: %v", res.Queue)
	}
	if res.Elapsed <= 0 {
		t.Errorf("done frame carried no elapsed time: %+v", res)
	}
	if res.Exec > res.Elapsed+res.Queue+time.Second {
		t.Errorf("exec %v inconsistent with elapsed %v + queue %v", res.Exec, res.Elapsed, res.Queue)
	}
}

// TestMetricsOp scrapes the Prometheus exposition over the wire and checks
// the serving-layer and engine metric families are both present.
func TestMetricsOp(t *testing.T) {
	_, addr := startServer(t, Options{MaxConcurrent: 2, QueueWait: time.Minute})
	c := dial(t, addr)
	if _, err := c.Query(context.Background(), "select count(*) from region"); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE vectorh_queries_completed_total counter",
		"# TYPE vectorh_query_exec_seconds histogram",
		"vectorh_query_exec_seconds_count",
		"vectorh_sessions_active",
		"vectorh_scan_blocks_read_total",
		"vectorh_block_cache_hits_total",
		"vectorh_process_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition does not end with a newline")
	}
}

// TestProfileOp runs EXPLAIN ANALYZE over the wire and checks the rendered
// profile carries actuals, phase spans, and scan IO.
func TestProfileOp(t *testing.T) {
	_, addr := startServer(t, Options{MaxConcurrent: 2, QueueWait: time.Minute})
	c := dial(t, addr)
	text, err := c.Profile(context.Background(),
		"select count(*) from lineitem where l_quantity < 24")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"actual rows=", "Phases:", "execute=", "Scan IO:"} {
		if !strings.Contains(text, want) {
			t.Errorf("profile output missing %q:\n%s", want, text)
		}
	}
}

// TestStatsCarriesProcessHealth pins the process block of a stats snapshot.
func TestStatsCarriesProcessHealth(t *testing.T) {
	_, addr := startServer(t, Options{MaxConcurrent: 2, QueueWait: time.Minute})
	c := dial(t, addr)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	p := st.Process
	if p == nil {
		t.Fatal("stats snapshot has no process block")
	}
	if p.Goroutines <= 0 {
		t.Errorf("goroutines = %d", p.Goroutines)
	}
	if p.HeapBytes <= 0 {
		t.Errorf("heap bytes = %d", p.HeapBytes)
	}
	if p.UptimeSec < 0 {
		t.Errorf("uptime = %d", p.UptimeSec)
	}
}

// syncBuffer is a goroutine-safe io.Writer for capturing slow-log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog runs a query under a zero-distance threshold and checks
// the structured entry: one JSON line with the normalized hash, timing
// split, and per-phase/per-operator breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	srv, addr := startServer(t, Options{MaxConcurrent: 2, QueueWait: time.Minute,
		SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	c := dial(t, addr)
	const q = "select count(*) from lineitem where l_quantity < 24"
	if _, err := c.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// DML is slow-logged too (no operator breakdown); net to zero rows.
	if _, err := c.Exec(context.Background(),
		"insert into region (r_regionkey, r_name, r_comment) values (78, 'LEMURIA', 'sunk')"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), "delete from region where r_regionkey = 78"); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 slow-log lines, got %d:\n%s", len(lines), buf.String())
	}
	var entry obs.SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow-log line is not JSON: %v\n%s", err, lines[0])
	}
	if len(entry.Hash) != 16 {
		t.Errorf("hash %q is not 16 hex digits", entry.Hash)
	}
	if entry.TotalUs <= 0 {
		t.Errorf("total_us = %d", entry.TotalUs)
	}
	if entry.Rows != 1 {
		t.Errorf("rows = %d, want 1", entry.Rows)
	}
	if len(entry.Phases) == 0 {
		t.Error("entry has no phase breakdown")
	}
	if len(entry.TopOps) == 0 || len(entry.TopOps) > 3 {
		t.Errorf("entry has %d top operators, want 1..3", len(entry.TopOps))
	}
	if entry.Time == "" {
		t.Error("entry has no timestamp")
	}

	// The same statement, reformatted, hashes identically and hits the
	// plan cache (NormalizeSQL collapses whitespace for both).
	if _, err := c.Query(context.Background(),
		"SELECT count(*)\nFROM lineitem\nWHERE l_quantity < 24"); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	var again obs.SlowEntry
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &again); err != nil {
		t.Fatal(err)
	}
	if again.Hash != entry.Hash {
		t.Errorf("literal-differing invocations hash %q vs %q", again.Hash, entry.Hash)
	}
	if !again.CacheHit {
		t.Error("second invocation of the same shape should be a plan-cache hit")
	}

	if got := srv.Stats().SlowQueries; got != 4 {
		t.Errorf("stats reports %d slow queries, want 4", got)
	}
}

// TestSlowLogOffByDefault checks no slow-logging machinery engages without
// a threshold: queries run the unprofiled path and stats report zero.
func TestSlowLogOffByDefault(t *testing.T) {
	srv, addr := startServer(t, Options{MaxConcurrent: 2, QueueWait: time.Minute})
	c := dial(t, addr)
	if _, err := c.Query(context.Background(), "select count(*) from region"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().SlowQueries; got != 0 {
		t.Errorf("slow queries = %d without a threshold", got)
	}
}
