// Package server is the VectorH serving layer (vectorh-serve): a TCP
// front door that turns the in-process engine into a concurrent multi-user
// service — the deployment shape the paper positions VectorH in (an
// interactive, multi-user MPP SQL engine, §1) and the axis on which the
// SQL-on-Hadoop systems it compares against differentiate under concurrency.
//
// The wire protocol is deliberately small: length-prefixed JSON frames. A
// request is one frame; a response is a sequence of frames sharing the
// request id — for a query, `schema`, zero or more streamed `rows` batches,
// and a terminal `done` (or `error` at any point). Sessions are
// per-connection; multiple requests may be in flight on one session (that
// is what makes `cancel` reachable while a query runs).
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Frame format: a 4-byte big-endian payload length followed by a JSON
// payload. Zero-length and oversized frames are protocol errors.
const (
	// DefaultMaxFrameBytes bounds a single frame; it is both a parser
	// sanity limit and a defense against a misbehaving peer committing the
	// server to a multi-gigabyte allocation.
	DefaultMaxFrameBytes = 8 << 20

	frameHeaderLen = 4
)

// Request ops.
const (
	OpQuery     = "query"      // SQL SELECT; streamed response
	OpExec      = "exec"       // SQL DML; done{affected}
	OpExplain   = "explain"    // SQL SELECT; plan text
	OpCancel    = "cancel"     // cancel the in-flight request named by Target
	OpPing      = "ping"       // liveness; pong
	OpStats     = "stats"      // server metrics snapshot
	OpPrepare   = "prepare"    // register a '?' template under Stmt; stmt{num_params}
	OpExecute   = "execute"    // run prepared Stmt with Params; query/exec response shape
	OpCloseStmt = "close-stmt" // drop the statement registered under Stmt
	OpMetrics   = "metrics"    // Prometheus text exposition of the metrics registry
	OpProfile   = "profile"    // SQL SELECT under EXPLAIN ANALYZE; plan{analyzed text}
)

// Response types.
const (
	RespSchema  = "schema"
	RespRows    = "rows"
	RespDone    = "done"
	RespError   = "error"
	RespPlan    = "plan"
	RespPong    = "pong"
	RespStats   = "stats"
	RespStmt    = "stmt"
	RespMetrics = "metrics"
)

// Request is one client frame.
type Request struct {
	ID        int64  `json:"id"`
	Op        string `json:"op"`
	SQL       string `json:"sql,omitempty"`
	Target    int64  `json:"target,omitempty"`     // cancel: id of the request to cancel
	TimeoutMs int64  `json:"timeout_ms,omitempty"` // query/exec deadline; 0 = none
	Stmt      int64  `json:"stmt,omitempty"`       // prepare/execute/close-stmt: statement handle (client-chosen)
	Params    []any  `json:"params,omitempty"`     // execute: positional values for the template's '?' markers
}

// ColDesc describes one result column (the client needs the physical kind
// and the logical type to decode JSON numbers back into engine-identical
// values).
type ColDesc struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`              // int32|int64|float64|string|bool
	Logical string `json:"logical,omitempty"` // date|decimal when it differs from the kind
}

// WireError is a structured error; SQL compile errors carry their 1-based
// source position.
type WireError struct {
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	Msg  string `json:"msg"`
}

// Error implements error.
func (e *WireError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return e.Msg
}

// PlanCacheInfo is the compiled-plan cache block inside a stats snapshot.
type PlanCacheInfo struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int64 `json:"entries"`
}

// ProcessStats is the process-health block of a stats snapshot: uptime,
// scheduler and heap pressure, and cumulative GC pauses.
type ProcessStats struct {
	UptimeSec    int64 `json:"uptime_sec"`
	Goroutines   int   `json:"goroutines"`
	HeapBytes    int64 `json:"heap_bytes"`     // bytes of allocated heap objects in use
	GCPauseNs    int64 `json:"gc_pause_ns"`    // cumulative stop-the-world pause
	NumGC        int64 `json:"num_gc"`         // completed GC cycles
	TotalAllocMB int64 `json:"total_alloc_mb"` // cumulative allocation volume
}

// ScanInfo is the engine scan-IO block of a stats snapshot: cumulative
// physical scan work, including the compressed bytes scans never decoded
// (dictionary-miss and frame-bounds pruning) and the value bytes actually
// materialized into execution memory.
type ScanInfo struct {
	BlocksRead        int64 `json:"blocks_read"`
	BytesDecoded      int64 `json:"bytes_decoded"`
	BytesSkipped      int64 `json:"bytes_skipped"`
	BytesMaterialized int64 `json:"bytes_materialized"`
	SpansPruned       int64 `json:"spans_pruned"`
	CacheHits         int64 `json:"cache_hits"`
}

// TableStorageInfo is one table's compression footprint in a stats snapshot.
type TableStorageInfo struct {
	Table        string  `json:"table"`
	RawBytes     int64   `json:"raw_bytes"`
	EncodedBytes int64   `json:"encoded_bytes"`
	Ratio        float64 `json:"ratio"` // raw / encoded; 0 when nothing is flushed
}

// StatsSnapshot is the serving-layer metrics block returned by OpStats.
type StatsSnapshot struct {
	Sessions         int64          `json:"sessions"`
	TotalSessions    int64          `json:"total_sessions"`
	ActiveQueries    int64          `json:"active_queries"`
	QueuedQueries    int64          `json:"queued_queries"`
	CompletedQueries int64          `json:"completed_queries"`
	CancelledQueries int64          `json:"cancelled_queries"`
	FailedQueries    int64          `json:"failed_queries"`
	RejectedQueries  int64          `json:"rejected_queries"` // admission queue timeouts
	RowsServed       int64          `json:"rows_served"`
	OpenStatements   int64          `json:"open_statements"` // prepared statements across live sessions
	MaxConcurrent    int            `json:"max_concurrent"`
	PlanCache        *PlanCacheInfo `json:"plan_cache,omitempty"`
	Process          *ProcessStats  `json:"process,omitempty"`
	SlowQueries      int64          `json:"slow_queries,omitempty"` // slow-log entries written

	Scan    *ScanInfo          `json:"scan,omitempty"`
	Storage []TableStorageInfo `json:"storage,omitempty"`
}

// Response is one server frame.
type Response struct {
	ID        int64          `json:"id"`
	Type      string         `json:"type"`
	Schema    []ColDesc      `json:"schema,omitempty"`
	Rows      [][]any        `json:"rows,omitempty"`
	Affected  int64          `json:"affected,omitempty"`
	ElapsedUs int64          `json:"elapsed_us,omitempty"`
	QueueUs   int64          `json:"queue_us,omitempty"` // done: admission queue wait
	ExecUs    int64          `json:"exec_us,omitempty"`  // done: server-side execution time
	Plan      string         `json:"plan,omitempty"`
	Metrics   string         `json:"metrics,omitempty"` // metrics: Prometheus text
	Err       *WireError     `json:"err,omitempty"`
	Stats     *StatsSnapshot `json:"stats,omitempty"`
	NumParams int            `json:"num_params,omitempty"` // stmt: '?' count in the template
}

// WriteFrame marshals v and writes one frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > DefaultMaxFrameBytes {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), DefaultMaxFrameBytes)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one frame payload, rejecting zero-length and oversized
// frames (maxBytes <= 0 means DefaultMaxFrameBytes). A truncated frame —
// the peer vanished mid-payload — surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxBytes int) ([]byte, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxFrameBytes
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF at a frame boundary is a clean disconnect
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("server: zero-length frame")
	}
	if int64(n) > int64(maxBytes) {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, maxBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
