package server

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestFrameGoldenEncode pins the wire format: 4-byte big-endian length +
// canonical JSON. A change here is a protocol break, not a refactor.
func TestFrameGoldenEncode(t *testing.T) {
	var buf bytes.Buffer
	req := Request{ID: 7, Op: OpQuery, SQL: "select 1"}
	if err := WriteFrame(&buf, &req); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"id":7,"op":"query","sql":"select 1"}`
	want := make([]byte, 4)
	binary.BigEndian.PutUint32(want, uint32(len(wantJSON)))
	want = append(want, wantJSON...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("frame bytes:\n got %s\nwant %s", hex.EncodeToString(buf.Bytes()), hex.EncodeToString(want))
	}

	payload, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := unmarshalStrictNumbers(payload, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip: got %+v want %+v", got, req)
	}
}

// TestResponseRoundTrip exercises every response shape through one frame
// buffer in order.
func TestResponseRoundTrip(t *testing.T) {
	responses := []Response{
		{ID: 1, Type: RespSchema, Schema: []ColDesc{{Name: "k", Kind: "int64"}, {Name: "d", Kind: "int32", Logical: "date"}}},
		{ID: 1, Type: RespRows, Rows: [][]any{{int64(1), int32(9131)}, {int64(1 << 60), int32(0)}}},
		{ID: 1, Type: RespDone, ElapsedUs: 1234},
		{ID: 2, Type: RespError, Err: &WireError{Line: 3, Col: 14, Msg: "unknown column"}},
		{ID: 3, Type: RespStats, Stats: &StatsSnapshot{Sessions: 2, CompletedQueries: 41, MaxConcurrent: 4}},
	}
	var buf bytes.Buffer
	for i := range responses {
		if err := WriteFrame(&buf, &responses[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range responses {
		payload, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var got Response
		if err := unmarshalStrictNumbers(payload, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != want.ID || got.Type != want.Type {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		switch want.Type {
		case RespError:
			if got.Err == nil || *got.Err != *want.Err {
				t.Fatalf("frame %d error: got %+v want %+v", i, got.Err, want.Err)
			}
		case RespStats:
			if got.Stats == nil || !reflect.DeepEqual(*got.Stats, *want.Stats) {
				t.Fatalf("frame %d stats: got %+v want %+v", i, got.Stats, want.Stats)
			}
		case RespRows:
			// Values decode as json.Number until the schema-aware client
			// converts them; check the int64 survived with full precision.
			n, ok := got.Rows[1][0].(interface{ Int64() (int64, error) })
			if !ok {
				t.Fatalf("frame %d: row value is %T, want json.Number", i, got.Rows[1][0])
			}
			x, err := n.Int64()
			if err != nil || x != 1<<60 {
				t.Fatalf("frame %d: int64 round trip got %d err=%v", i, x, err)
			}
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, 1<<30)
	buf.Write(hdr)
	buf.WriteString("irrelevant")
	_, err := ReadFrame(&buf, 1024)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	huge := Response{Type: RespRows, Rows: [][]any{{strings.Repeat("x", DefaultMaxFrameBytes)}}}
	if err := WriteFrame(&buf, &huge); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	_, err := ReadFrame(&buf, 0)
	if err == nil || !strings.Contains(err.Error(), "zero-length") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	// Header promises 100 payload bytes; the peer vanishes after 10.
	var buf bytes.Buffer
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, 100)
	buf.Write(hdr)
	buf.WriteString("only ten b")
	_, err := ReadFrame(&buf, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}

	// A clean EOF at a frame boundary is io.EOF, so callers can tell a
	// graceful disconnect from a torn frame.
	_, err = ReadFrame(bytes.NewReader(nil), 0)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}

	// EOF mid-header is also a torn frame.
	_, err = ReadFrame(bytes.NewReader([]byte{0, 0}), 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestUnmarshalRejectsTrailingData(t *testing.T) {
	if err := unmarshalStrictNumbers([]byte(`{"id":1}{"id":2}`), &Request{}); err == nil {
		t.Fatal("trailing data accepted")
	}
}
