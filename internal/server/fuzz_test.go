package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"testing"
)

// FuzzFrameDecode drives the wire-frame reader with arbitrary bytes: the
// length-prefixed framing is the first thing a malicious peer controls, so
// ReadFrame must never panic, never allocate past its limit, and must
// round-trip everything WriteFrame produces.
func FuzzFrameDecode(f *testing.F) {
	add := func(payload []byte) {
		var b bytes.Buffer
		var hdr [frameHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		b.Write(hdr[:])
		b.Write(payload)
		f.Add(b.Bytes(), 1<<16)
	}
	add([]byte(`{"id":1,"op":"query","sql":"SELECT 1"}`))
	add([]byte(`{}`))
	add(bytes.Repeat([]byte{0xff}, 512))
	f.Add([]byte{}, 64)                                // empty stream: clean EOF
	f.Add([]byte{0, 0, 0, 0}, 64)                      // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'}, 64)     // 4 GiB claim, 1 byte body
	f.Add([]byte{0, 0, 0, 8, 'h', 'i'}, 64)            // truncated payload
	f.Add([]byte{0, 0, 0, 2, '{', '}', 0, 0, 0, 1}, 0) // second header truncated

	f.Fuzz(func(t *testing.T, data []byte, maxBytes int) {
		if maxBytes > 1<<20 {
			maxBytes = 1 << 20 // keep allocation claims bounded under fuzzing
		}
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r, maxBytes)
			if err != nil {
				if err == io.EOF && r.Len() != 0 {
					t.Fatalf("clean EOF with %d bytes unread", r.Len())
				}
				break
			}
			limit := maxBytes
			if limit <= 0 {
				limit = DefaultMaxFrameBytes
			}
			if len(payload) == 0 || len(payload) > limit {
				t.Fatalf("ReadFrame returned %d bytes with limit %d", len(payload), limit)
			}
			// The session layer feeds every accepted frame to the JSON
			// decoder; whatever that does, it must not panic.
			var req Request
			_ = json.Unmarshal(payload, &req)
		}

		// Round-trip: a response we write must come back byte-identical.
		var buf bytes.Buffer
		resp := &Response{ID: 7, Type: RespRows, Rows: [][]any{{"x", float64(1)}}}
		if err := WriteFrame(&buf, resp); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame after WriteFrame: %v", err)
		}
		want, _ := json.Marshal(resp)
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round-trip mismatch:\n got: %s\nwant: %s", got, want)
		}
	})
}
