package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vectorh/internal/vector"
)

// Client is one session against a vectorh-serve instance. It is safe for
// concurrent use; requests are multiplexed by id over one connection, which
// is what lets Cancel (or a cancelled context) reach a query already in
// flight.
type Client struct {
	conn     net.Conn
	nextID   atomic.Int64
	nextStmt atomic.Int64
	closed   atomic.Bool

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[int64]chan *Response
	readErr error
	done    chan struct{}
}

// errClientClosed is returned by any operation attempted after Close. It is
// an ordinary error, never a panic: a racing cancel frame (a context firing
// while Close tears the session down) must degrade cleanly.
var errClientClosed = errors.New("server: client closed")

// Result is a fully collected query result. Queue and Exec are the
// server-side admission-wait / execution split carried in the done frame;
// they are zero when the server predates the split.
type Result struct {
	Schema  []ColDesc
	Rows    [][]any
	Elapsed time.Duration
	Queue   time.Duration
	Exec    time.Duration
}

// Dial connects to a serving instance.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[int64]chan *Response), done: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

// Close tears the session down; in-flight requests fail with a clean
// connection-lost error. Close is idempotent and safe to race with
// in-flight Query/Exec/Cancel traffic.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		<-c.done
		return nil
	}
	err := c.conn.Close()
	<-c.done // reader drained; every pending channel is closed
	return err
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		payload, err := ReadFrame(c.conn, 0)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		var resp Response
		if err := unmarshalStrictNumbers(payload, &resp); err != nil {
			continue // mis-framed response; the terminal error surfaces via readErr on disconnect
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		if ch != nil && (resp.Type == RespDone || resp.Type == RespError) {
			// Terminal frame: unregister before delivery so a late
			// duplicate cannot block.
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- &resp
			if resp.Type == RespDone || resp.Type == RespError {
				close(ch)
			}
		}
	}
}

func (c *Client) register() (int64, chan *Response, error) {
	if c.closed.Load() {
		return 0, nil, errClientClosed
	}
	id := c.nextID.Add(1)
	ch := make(chan *Response, 16)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return 0, nil, fmt.Errorf("server: connection lost: %w", c.readErr)
	}
	c.pending[id] = ch
	return id, ch, nil
}

func (c *Client) unregister(id int64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *Client) writeFrame(v any) error {
	if c.closed.Load() || c.conn == nil {
		return errClientClosed
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.conn, v)
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	req.ID = id
	// Single-frame ops (pong/stats/plan) are not terminal frames in the
	// reader's eyes, so unregister here — otherwise every Ping/Stats/
	// Explain would leak a pending entry for the connection's lifetime.
	defer c.unregister(id)
	if err := c.writeFrame(req); err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, c.connLost()
	}
	if resp.Type == RespError {
		return nil, resp.Err
	}
	return resp, nil
}

func (c *Client) connLost() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return fmt.Errorf("server: connection lost: %w", c.readErr)
	}
	return errors.New("server: connection lost")
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// Stats fetches the server metrics snapshot.
func (c *Client) Stats() (*StatsSnapshot, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("server: stats response without payload")
	}
	return resp.Stats, nil
}

// Explain returns the distributed physical plan text.
func (c *Client) Explain(query string) (string, error) {
	resp, err := c.roundTrip(&Request{Op: OpExplain, SQL: query})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Metrics fetches the server's metrics registry in Prometheus text
// exposition format.
func (c *Client) Metrics() (string, error) {
	resp, err := c.roundTrip(&Request{Op: OpMetrics})
	if err != nil {
		return "", err
	}
	return resp.Metrics, nil
}

// Profile runs a SELECT under EXPLAIN ANALYZE on the server and returns the
// rendered profile (annotated plan, phase spans, scan IO totals). The query
// executes fully server-side; rows are discarded there, so only the text
// crosses the wire. Unlike Explain, profiling counts against the admission
// limit (it really runs the query), hence the context.
func (c *Client) Profile(ctx context.Context, query string) (string, error) {
	var plan string
	err := c.run(ctx, &Request{Op: OpProfile, SQL: query}, func(resp *Response) error {
		if resp.Type == RespPlan {
			plan = resp.Plan
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	return plan, nil
}

// Exec runs one DML statement, returning affected rows.
func (c *Client) Exec(ctx context.Context, stmt string) (int64, error) {
	var affected int64
	err := c.run(ctx, &Request{Op: OpExec, SQL: stmt}, func(resp *Response) error {
		if resp.Type == RespDone {
			affected = resp.Affected
		}
		return nil
	})
	return affected, err
}

// Query runs a SELECT and collects the streamed result, including the
// server-side queue/exec timing split from the done frame. Cancelling ctx
// sends a wire-level cancel for the in-flight query; the engine stops its
// scans and exchange senders at the next batch boundary.
func (c *Client) Query(ctx context.Context, query string) (*Result, error) {
	res := &Result{}
	var types []vector.Type
	err := c.run(ctx, &Request{Op: OpQuery, SQL: query}, func(resp *Response) error {
		switch resp.Type {
		case RespSchema:
			res.Schema = resp.Schema
			var err error
			types, err = schemaTypes(resp.Schema)
			return err
		case RespRows:
			if types == nil {
				return errors.New("server: rows frame before schema frame")
			}
			for _, row := range resp.Rows {
				if err := decodeRow(row, types); err != nil {
					return err
				}
			}
			res.Rows = append(res.Rows, resp.Rows...)
		case RespDone:
			res.Elapsed = time.Duration(resp.ElapsedUs) * time.Microsecond
			res.Queue = time.Duration(resp.QueueUs) * time.Microsecond
			res.Exec = time.Duration(resp.ExecUs) * time.Microsecond
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// QueryStream runs a SELECT, invoking yield for the schema frame (rows nil)
// and for every rows frame as it arrives.
func (c *Client) QueryStream(ctx context.Context, query string, yield func(schema []ColDesc, rows [][]any) error) error {
	var schema []ColDesc
	var types []vector.Type
	return c.run(ctx, &Request{Op: OpQuery, SQL: query}, func(resp *Response) error {
		switch resp.Type {
		case RespSchema:
			schema = resp.Schema
			var err error
			types, err = schemaTypes(schema)
			if err != nil {
				return err
			}
			return yield(schema, nil)
		case RespRows:
			if types == nil {
				return errors.New("server: rows frame before schema frame")
			}
			for _, row := range resp.Rows {
				if err := decodeRow(row, types); err != nil {
					return err
				}
			}
			return yield(schema, resp.Rows)
		}
		return nil
	})
}

// PreparedStmt is a server-side '?' template bound to one client session.
// Execute round-trips only the handle and the positional values; the server
// splices them into the template and runs the result through the shared
// plan cache, so repeated executions skip SQL compilation entirely.
type PreparedStmt struct {
	c         *Client
	id        int64
	numParams int
}

// Prepare registers a parameterized statement template on the server.
func (c *Client) Prepare(query string) (*PreparedStmt, error) {
	id := c.nextStmt.Add(1)
	resp, err := c.roundTrip(&Request{Op: OpPrepare, SQL: query, Stmt: id})
	if err != nil {
		return nil, err
	}
	if resp.Type != RespStmt {
		return nil, fmt.Errorf("server: unexpected %q response to prepare", resp.Type)
	}
	return &PreparedStmt{c: c, id: id, numParams: resp.NumParams}, nil
}

// NumParams returns the number of '?' markers in the template.
func (p *PreparedStmt) NumParams() int { return p.numParams }

// Query executes a prepared SELECT with the given parameter values and
// collects the streamed result.
func (p *PreparedStmt) Query(ctx context.Context, params ...any) (*Result, error) {
	res := &Result{}
	err := p.QueryStream(ctx, params, func(schema []ColDesc, rows [][]any) error {
		res.Schema = schema
		res.Rows = append(res.Rows, rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// QueryStream executes a prepared SELECT, invoking yield like
// Client.QueryStream.
func (p *PreparedStmt) QueryStream(ctx context.Context, params []any, yield func(schema []ColDesc, rows [][]any) error) error {
	var schema []ColDesc
	var types []vector.Type
	return p.c.run(ctx, &Request{Op: OpExecute, Stmt: p.id, Params: normParams(params)}, func(resp *Response) error {
		switch resp.Type {
		case RespSchema:
			schema = resp.Schema
			var err error
			types, err = schemaTypes(schema)
			if err != nil {
				return err
			}
			return yield(schema, nil)
		case RespRows:
			if types == nil {
				return errors.New("server: rows frame before schema frame")
			}
			for _, row := range resp.Rows {
				if err := decodeRow(row, types); err != nil {
					return err
				}
			}
			return yield(schema, resp.Rows)
		}
		return nil
	})
}

// Exec executes a prepared DML statement, returning affected rows.
func (p *PreparedStmt) Exec(ctx context.Context, params ...any) (int64, error) {
	var affected int64
	err := p.c.run(ctx, &Request{Op: OpExecute, Stmt: p.id, Params: normParams(params)},
		func(resp *Response) error {
			if resp.Type == RespDone {
				affected = resp.Affected
			}
			return nil
		})
	return affected, err
}

// Close drops the statement on the server.
func (p *PreparedStmt) Close() error {
	_, err := p.c.roundTrip(&Request{Op: OpCloseStmt, Stmt: p.id})
	return err
}

// normParams gives Params a non-nil identity so an execute frame for a
// zero-parameter statement still carries `"params":[]` (the server
// distinguishes "no values" from a malformed frame by count, not presence).
func normParams(params []any) []any {
	if params == nil {
		return []any{}
	}
	return params
}

// run drives one request to its terminal frame, racing the context: on
// ctx cancellation it sends a cancel frame for the request and keeps
// draining until the server acknowledges with the terminal error.
func (c *Client) run(ctx context.Context, req *Request, onFrame func(*Response) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if dl, ok := ctx.Deadline(); ok {
		// Round up: a 1ms deadline must reach the server as 1ms, not 0.
		if ms := (time.Until(dl) + time.Millisecond - 1) / time.Millisecond; ms > 0 {
			req.TimeoutMs = int64(ms)
		} else {
			return context.DeadlineExceeded
		}
	}
	id, ch, err := c.register()
	if err != nil {
		return err
	}
	req.ID = id
	if err := c.writeFrame(req); err != nil {
		c.unregister(id)
		return err
	}
	cancelSent := false
	for {
		select {
		case resp, ok := <-ch:
			if !ok {
				return c.connLost()
			}
			switch resp.Type {
			case RespError:
				return resp.Err
			case RespDone:
				return onFrame(resp)
			default:
				if err := onFrame(resp); err != nil {
					// The consumer bailed: cancel server-side, then drain
					// to the terminal frame so the session stays usable.
					if !cancelSent {
						c.writeFrame(&Request{Op: OpCancel, Target: id})
						cancelSent = true
					}
					c.drain(ch)
					return err
				}
			}
		case <-ctx.Done():
			if !cancelSent {
				if err := c.writeFrame(&Request{Op: OpCancel, Target: id}); err != nil {
					c.unregister(id)
					return context.Cause(ctx)
				}
				cancelSent = true
			}
			c.drain(ch)
			return context.Cause(ctx)
		}
	}
}

// drain consumes frames until the request's channel closes (terminal frame
// delivered or connection lost), with a safety timeout.
func (c *Client) drain(ch chan *Response) {
	timeout := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-timeout:
			return
		}
	}
}

// schemaTypes maps wire column descriptors back to engine types.
func schemaTypes(schema []ColDesc) ([]vector.Type, error) {
	out := make([]vector.Type, len(schema))
	for i, d := range schema {
		var t vector.Type
		switch d.Kind {
		case "bool":
			t = vector.TBool
		case "int32":
			t = vector.TInt32
		case "int64":
			t = vector.TInt64
		case "float64":
			t = vector.TFloat64
		case "string":
			t = vector.TString
		default:
			return nil, fmt.Errorf("server: unknown column kind %q", d.Kind)
		}
		switch d.Logical {
		case "date":
			t.Logical = vector.Date
		case "decimal":
			t.Logical = vector.Decimal
		}
		out[i] = t
	}
	return out, nil
}

// decodeRow converts JSON-decoded values (json.Number, string, bool) in
// place into the engine-identical dynamic types the schema dictates, so
// results fetched over the wire compare row-identical against in-process
// execution.
func decodeRow(row []any, types []vector.Type) error {
	if len(row) != len(types) {
		return fmt.Errorf("server: row has %d values, schema %d", len(row), len(types))
	}
	for i, v := range row {
		num, isNum := v.(json.Number)
		switch types[i].Kind {
		case vector.Int32:
			if !isNum {
				return fmt.Errorf("server: column %d: %T is not a number", i, v)
			}
			x, err := strconv.ParseInt(num.String(), 10, 32)
			if err != nil {
				return err
			}
			row[i] = int32(x)
		case vector.Int64:
			if !isNum {
				return fmt.Errorf("server: column %d: %T is not a number", i, v)
			}
			x, err := num.Int64()
			if err != nil {
				return err
			}
			row[i] = x
		case vector.Float64:
			if !isNum {
				return fmt.Errorf("server: column %d: %T is not a number", i, v)
			}
			x, err := num.Float64()
			if err != nil {
				return err
			}
			row[i] = x
		case vector.String:
			if _, ok := v.(string); !ok {
				return fmt.Errorf("server: column %d: %T is not a string", i, v)
			}
		case vector.Bool:
			if _, ok := v.(bool); !ok {
				return fmt.Errorf("server: column %d: %T is not a bool", i, v)
			}
		}
	}
	return nil
}

// newNumberDecoder returns a json.Decoder that preserves integer precision
// (numbers decode as json.Number, not float64).
func newNumberDecoder(data []byte) *json.Decoder {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec
}
