package server

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWirePrepareExecute prepares parameterized TPC-H-shaped statements over
// the wire, executes them with positional parameters, and checks the results
// against in-process execution of the literal statements. It also verifies
// that repeated executes are served from the shared plan cache.
func TestWirePrepareExecute(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, Options{MaxConcurrent: 4})
	c := dial(t, addr)

	ps, err := c.Prepare("select count(*) from lineitem where l_quantity < ?")
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", ps.NumParams())
	}
	want, err := db.QuerySQL("select count(*) from lineitem where l_quantity < 24")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ps.Query(context.Background(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := normalizeRows(r.Rows), normalizeRows(want); !eqStringSlices(got, w) {
		t.Fatalf("prepared result %v, want %v", got, w)
	}

	// A DATE ? template ('?' in a literal-only position: accepted at prepare,
	// syntax-checked at first execute).
	dps, err := c.Prepare(`select count(*) from lineitem
		where l_shipdate >= date ? and l_shipdate < date ?`)
	if err != nil {
		t.Fatal(err)
	}
	wantD, err := db.QuerySQL(`select count(*) from lineitem
		where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'`)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dps.Query(context.Background(), "1994-01-01", "1995-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if got, w := normalizeRows(rd.Rows), normalizeRows(wantD); !eqStringSlices(got, w) {
		t.Fatalf("date-template result %v, want %v", got, w)
	}

	// Repeated executes with the same parameters are plan-cache hits.
	s0, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s0.PlanCache == nil {
		t.Fatal("stats frame missing plan_cache block")
	}
	for i := 0; i < 5; i++ {
		if _, err := ps.Query(context.Background(), 24); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s1.PlanCache.Hits < s0.PlanCache.Hits+5 {
		t.Fatalf("plan cache hits %d -> %d, want +5", s0.PlanCache.Hits, s1.PlanCache.Hits)
	}
	if s1.OpenStatements < 2 {
		t.Fatalf("open_statements = %d, want >= 2", s1.OpenStatements)
	}

	// Arity mismatch is a per-request error, not a dead session.
	if _, err := ps.Query(context.Background()); err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Fatalf("arity mismatch: %v", err)
	}
	if _, err := ps.Query(context.Background(), 24); err != nil {
		t.Fatalf("session unusable after arity error: %v", err)
	}

	// Closing a statement invalidates its handle.
	if err := dps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dps.Query(context.Background(), "1994-01-01", "1995-01-01"); err == nil ||
		!strings.Contains(err.Error(), "unknown statement") {
		t.Fatalf("execute after close-stmt: %v", err)
	}

	// A bad template with '?' markers defers its syntax error to the first
	// execute; one without markers fails at prepare.
	bad, err := c.Prepare("select count(*) from from lineitem where l_quantity < ?")
	if err != nil {
		t.Fatalf("parameterized template should defer parse: %v", err)
	}
	if _, err := bad.Query(context.Background(), 1); err == nil {
		t.Fatal("bad template must fail at execute")
	}
	if _, err := c.Prepare("select count(*) from from lineitem"); err == nil {
		t.Fatal("param-free bad template must fail at prepare")
	}
}

// TestWirePreparedDML runs prepared INSERT and DELETE against the shared
// fixture, netting the row count back to zero.
func TestWirePreparedDML(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, Options{MaxConcurrent: 4})
	c := dial(t, addr)

	count := func() int64 {
		rows, err := db.QuerySQL("select count(*) from region")
		if err != nil {
			t.Fatal(err)
		}
		return rows[0][0].(int64)
	}
	before := count()

	ins, err := c.Prepare("insert into region (r_regionkey, r_name, r_comment) values (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 3 {
		t.Fatalf("insert NumParams = %d", ins.NumParams())
	}
	n, err := ins.Exec(context.Background(), 99, "ATLANTIS", "prepared-dml test row")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("insert affected %d rows, want 1", n)
	}
	if got := count(); got != before+1 {
		t.Fatalf("region count %d after insert, want %d", got, before+1)
	}

	del, err := c.Prepare("delete from region where r_regionkey = ?")
	if err != nil {
		t.Fatal(err)
	}
	n, err = del.Exec(context.Background(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delete affected %d rows, want 1", n)
	}
	if got := count(); got != before {
		t.Fatalf("region count %d after delete, want %d", got, before)
	}
}

// TestClientCloseRace is the regression test for the close race: a cancel (or
// any) frame issued after Close must return a clean error, never panic on the
// closed connection, including when Close lands mid-query.
func TestClientCloseRace(t *testing.T) {
	_, addr := startServer(t, Options{MaxConcurrent: 4})

	// Requests after Close fail cleanly; Close is idempotent.
	c := dial(t, addr)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("Ping after Close must error")
	}
	if _, err := c.Query(context.Background(), "select count(*) from region"); err == nil {
		t.Fatal("Query after Close must error")
	}
	if _, err := c.Prepare("select count(*) from region"); err == nil {
		t.Fatal("Prepare after Close must error")
	}

	// Close racing a context cancellation: the canceled query's cancel frame
	// may be written after Close wins the race. Run several rounds; under
	// -race this also exercises the connection teardown paths.
	for round := 0; round < 8; round++ {
		c := dial(t, addr)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Error (canceled or connection closed) is expected; a panic is
			// the regression.
			_, _ = c.Query(ctx, "select count(*) from lineitem, orders where l_orderkey = o_orderkey")
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round) * 200 * time.Microsecond)
			cancel()
			_ = c.Close()
		}()
		wg.Wait()
	}
}

func eqStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
