// Package mpp implements the distributed exchange (DXchg) operators of §5:
// DXchgHashSplit, DXchgRangeSplit, DXchgBroadcast and DXchgUnion, in both
// fan-out strategies the paper describes —
//
//   - thread-to-thread: every sender partitions straight to every consumer
//     stream (fanout N·C, per-node buffering 2·N·C²·msg), fastest on small
//     clusters;
//   - thread-to-node: senders partition per node (fanout N, buffering
//     2·N·C·msg) and tag each tuple with a receiver-thread column; a
//     per-node dispatcher lets consumer threads selectively consume, which
//     is what keeps VectorH scalable to ~100 nodes.
//
// Exchanges ride on the mpi package: remote sends serialize into ≥MsgBytes
// buffers, intra-node sends pass pointers.
package mpp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"vectorh/internal/exec"
	"vectorh/internal/expr"
	"vectorh/internal/mpi"
	"vectorh/internal/vector"
)

// Mode selects the fan-out strategy.
type Mode int

// Fan-out strategies.
const (
	ThreadToThread Mode = iota
	ThreadToNode
)

// Config parameterizes one distributed exchange.
type Config struct {
	Net      *mpi.Network
	Mode     Mode
	MsgBytes int             // flush threshold; default mpi.DefaultMsgBytes
	Ctx      context.Context // query context; senders check it per batch
}

func (c Config) msgBytes() int {
	if c.MsgBytes > 0 {
		return c.MsgBytes
	}
	return mpi.DefaultMsgBytes
}

// Stats reports one exchange's buffering behavior (the §5 scalability
// argument for thread-to-node).
type Stats struct {
	Fanout          int   // per-sender destination buffer count
	PeakBufferBytes int64 // peak total sender-side buffered bytes
}

// Exchange tracks shared exchange state; the concrete operators embed it.
type Exchange struct {
	cfg       Config
	ctx       context.Context
	fanout    int
	curBuf    atomic.Int64
	peakBuf   atomic.Int64
	quit      chan struct{}
	openPorts atomic.Int32
	stopOnce  sync.Once
}

// newExchange initializes shared exchange state and, when the config
// carries a cancelable context, ties the exchange's quit channel to it so a
// cancelled query releases senders blocked on full inboxes and dispatchers
// blocked on empty ones.
func newExchange(cfg Config) *Exchange {
	ex := &Exchange{cfg: cfg, ctx: cfg.Ctx, quit: make(chan struct{})}
	if ex.ctx == nil {
		ex.ctx = context.Background()
	}
	if done := ex.ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				ex.stop()
			case <-ex.quit:
			}
		}()
	}
	return ex
}

// stop tears the exchange down: senders and dispatchers unblock and exit.
func (e *Exchange) stop() { e.stopOnce.Do(func() { close(e.quit) }) }

// newPort wraps a consumer queue in a recvPort whose Close decrements the
// exchange's open-port count, stopping the exchange once the last port is
// closed. Stopping on the FIRST close would lose batches still buffered in
// inboxes of sibling streams mid-query; stopping only on the last close (or
// on context cancellation) is both loss-free and leak-free.
func (e *Exchange) newPort(ch chan portItem) *recvPort {
	e.openPorts.Add(1)
	var once sync.Once
	return &recvPort{ch: ch, stop: func() {
		once.Do(func() {
			if e.openPorts.Add(-1) == 0 {
				e.stop()
			}
		})
	}}
}

// Stats returns buffering statistics after the exchange ran.
func (e *Exchange) Stats() Stats {
	return Stats{Fanout: e.fanout, PeakBufferBytes: e.peakBuf.Load()}
}

func (e *Exchange) bufDelta(d int) {
	cur := e.curBuf.Add(int64(d))
	for {
		peak := e.peakBuf.Load()
		if cur <= peak || e.peakBuf.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// sendBuffer accumulates rows destined for one rank until flush.
type sendBuffer struct {
	vecs  []*vector.Vec
	bytes int
}

// init lays out the buffer's vectors to mirror src (plus the receiver-thread
// column in thread-to-node mode).
func (sb *sendBuffer) init(src *vector.Batch, withExtra bool) {
	for _, v := range src.Vecs {
		sb.vecs = append(sb.vecs, vector.New(v.Kind(), 256))
	}
	if withExtra {
		// The receiver-thread column (one byte per tuple in the paper; an
		// int32 here — the accounting difference is noted in DESIGN.md).
		sb.vecs = append(sb.vecs, vector.New(vector.Int32, 256))
	}
}

// addGather bulk-appends the selected rows of src, tagging each with the
// receiver thread when withExtra is set. Routing is batch-wise: the caller
// groups a batch's rows per destination once and appends each group with one
// gather per column, so the sender's cost is O(rows·cols) appends with byte
// accounting per group — not a full buffer re-sum per row, which dominated
// exchange-heavy profiles.
func (sb *sendBuffer) addGather(e *Exchange, src *vector.Batch, sel []int32, thread int32, withExtra bool) {
	if sb.vecs == nil {
		sb.init(src, withExtra)
	}
	delta := 0
	for i, v := range src.Vecs {
		sb.vecs[i].AppendGather(v, sel)
		delta += v.GatherBytes(sel)
	}
	if withExtra {
		tv := sb.vecs[len(sb.vecs)-1]
		for range sel {
			tv.AppendInt32(thread)
		}
		delta += len(sel) * 4
	}
	sb.bytes += delta
	e.bufDelta(delta)
}

// addAll bulk-appends every row of a dense (Sel-free) batch.
func (sb *sendBuffer) addAll(e *Exchange, src *vector.Batch) {
	if sb.vecs == nil {
		sb.init(src, false)
	}
	delta := 0
	for i, v := range src.Vecs {
		sb.vecs[i].AppendRange(v, 0, v.Len())
		delta += v.Bytes()
	}
	sb.bytes += delta
	e.bufDelta(delta)
}

func (sb *sendBuffer) take(e *Exchange) *vector.Batch {
	if sb.vecs == nil || sb.vecs[0].Len() == 0 {
		return nil
	}
	b := &vector.Batch{Vecs: sb.vecs}
	e.bufDelta(-sb.bytes)
	sb.vecs, sb.bytes = nil, 0
	return b
}

// recvPort is a consumer stream endpoint fed by a channel.
type recvPort struct {
	ch   chan portItem
	stop func()
}

type portItem struct {
	b   *vector.Batch
	err error
}

func (p *recvPort) Open() error { return nil }

func (p *recvPort) Next() (*vector.Batch, error) {
	it, ok := <-p.ch
	if !ok {
		return nil, nil
	}
	return it.b, it.err
}

func (p *recvPort) Close() error {
	if p.stop != nil {
		p.stop()
	}
	return nil
}

// flatten maps (node, thread) to a global stream id.
func flatten(consumersPerNode []int) (total int, streamNode []int) {
	for n, c := range consumersPerNode {
		for t := 0; t < c; t++ {
			streamNode = append(streamNode, n)
		}
		total += c
	}
	return
}

// DXchgHashSplit hash-partitions producer streams (grouped by node) across
// consumer threads on every node. It returns consumer ports indexed
// [node][thread].
func DXchgHashSplit(cfg Config, producers [][]exec.Operator, keys []expr.Expr, consumersPerNode []int) ([][]exec.Operator, *Exchange) {
	// Routing delegates to exec.HashRowsInto, which runs on the vector hash
	// kernels — the single hash definition shared with local exchange
	// partitioning and the join/aggregation hash tables — reusing the
	// sender's scratch buffer batch over batch.
	return newSplit(cfg, producers, consumersPerNode, func(b *vector.Batch, scratch []uint64) ([]uint64, error) {
		return exec.HashRowsInto(scratch, b, keys)
	})
}

// DXchgRangeSplit partitions by comparing an int64 key against ascending
// boundaries; consumer stream i gets keys ≤ bounds[i] (last unbounded).
func DXchgRangeSplit(cfg Config, producers [][]exec.Operator, key expr.Expr, bounds []int64, consumersPerNode []int) ([][]exec.Operator, *Exchange) {
	return newSplit(cfg, producers, consumersPerNode, func(b *vector.Batch, scratch []uint64) ([]uint64, error) {
		kv, err := key.Eval(b)
		if err != nil {
			return nil, err
		}
		out := scratch
		if n := b.Len(); cap(out) < n {
			out = make([]uint64, n)
		} else {
			out = out[:n]
		}
		for r := range out {
			var x int64
			if kv.Kind() == vector.Int32 {
				x = int64(kv.Int32s()[r])
			} else {
				x = kv.Int64s()[r]
			}
			d := 0
			for d < len(bounds) && x > bounds[d] {
				d++
			}
			out[r] = uint64(d)
		}
		return out, nil
	})
}

// newSplit builds a partitioning exchange; route returns one routing value
// per live row (hash, or direct stream index for range split — both are
// reduced modulo the stream count). The scratch argument is a per-sender
// buffer route may reuse and return, keeping steady-state routing
// allocation-free.
func newSplit(cfg Config, producers [][]exec.Operator, consumersPerNode []int,
	route func(*vector.Batch, []uint64) ([]uint64, error)) ([][]exec.Operator, *Exchange) {

	totalStreams, streamNode := flatten(consumersPerNode)
	ex := newExchange(cfg)
	nSenders := 0
	for _, ps := range producers {
		nSenders += len(ps)
	}

	var comm *mpi.Comm
	var queues []chan portItem // per consumer stream
	queues = make([]chan portItem, totalStreams)
	for i := range queues {
		queues[i] = make(chan portItem, 4)
	}

	if cfg.Mode == ThreadToThread {
		ex.fanout = totalStreams
		comm = cfg.Net.NewComm(totalStreams, nSenders, func(r int) int { return streamNode[r] })
	} else {
		ex.fanout = len(consumersPerNode)
		comm = cfg.Net.NewComm(len(consumersPerNode), nSenders, nil)
	}

	// Sender goroutines.
	for pn, ps := range producers {
		for _, p := range ps {
			go runSplitSender(ex, comm, pn, p, totalStreams, streamNode, consumersPerNode, route)
		}
	}

	// Receiver side.
	if cfg.Mode == ThreadToThread {
		for s := 0; s < totalStreams; s++ {
			go func(s int) {
				defer close(queues[s])
				for {
					m, ok := comm.RecvQuit(s, ex.quit)
					if !ok {
						return
					}
					forward(queues[s], m, ex.quit)
				}
			}(s)
		}
	} else {
		// Per-node dispatcher: splits incoming buffers by the
		// receiver-thread column so consumer threads selectively
		// consume.
		streamBase := make([]int, len(consumersPerNode))
		base := 0
		for n, c := range consumersPerNode {
			streamBase[n] = base
			base += c
		}
		var wg sync.WaitGroup
		for n := range consumersPerNode {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for {
					m, ok := comm.RecvQuit(n, ex.quit)
					if !ok {
						return
					}
					b, err := m.Batch()
					if err != nil {
						select {
						case queues[streamBase[n]] <- portItem{err: err}:
						case <-ex.quit:
						}
						continue
					}
					dispatchByThreadCol(b, queues, streamBase[n], consumersPerNode[n], ex.quit)
				}
			}(n)
		}
		go func() {
			wg.Wait()
			for _, q := range queues {
				close(q)
			}
		}()
	}

	ports := make([][]exec.Operator, len(consumersPerNode))
	s := 0
	for n, c := range consumersPerNode {
		for t := 0; t < c; t++ {
			ports[n] = append(ports[n], ex.newPort(queues[s]))
			s++
		}
	}
	return ports, ex
}

func runSplitSender(ex *Exchange, comm *mpi.Comm, node int, p exec.Operator,
	totalStreams int, streamNode []int, consumersPerNode []int,
	route func(*vector.Batch, []uint64) ([]uint64, error)) {

	defer comm.DoneSending()
	t2t := ex.cfg.Mode == ThreadToThread
	var bufs []sendBuffer
	if t2t {
		bufs = make([]sendBuffer, totalStreams)
	} else {
		bufs = make([]sendBuffer, len(consumersPerNode))
	}
	// Per-stream routing tables and reusable selection lists: rows of each
	// batch are grouped by destination stream first, then appended buffer-wise
	// with one gather per column.
	destOf := make([]int, totalStreams)
	threadOf := make([]int32, totalStreams)
	for s := 0; s < totalStreams; s++ {
		if t2t {
			destOf[s] = s
		} else {
			dn := streamNode[s]
			destOf[s] = dn
			threadOf[s] = int32(s - firstStreamOf(dn, consumersPerNode))
		}
	}
	sels := make([][]int32, totalStreams)
	fail := func(err error) {
		// Deliver the error through rank 0 so some consumer sees it.
		comm.SendQuit(node, 0, errBatch(err), ex.quit)
	}
	if err := p.Open(); err != nil {
		fail(err)
		return
	}
	defer p.Close()
	var scratch []uint64 // per-sender routing buffer, reused batch over batch
	for {
		// The per-batch cancellation point of §5's DXchg senders: a
		// cancelled query stops partitioning and stops pulling from the
		// producer subtree, so its cores are released mid-plan.
		if err := ex.ctx.Err(); err != nil {
			fail(fmt.Errorf("mpp: sender canceled: %w", context.Cause(ex.ctx)))
			return
		}
		b, err := p.Next()
		if err != nil {
			fail(err)
			return
		}
		if b == nil {
			break
		}
		rvals, err := route(b, scratch)
		if err != nil {
			fail(err)
			return
		}
		scratch = rvals
		for i := range sels {
			sels[i] = sels[i][:0]
		}
		for r := 0; r < b.Len(); r++ {
			stream := int(rvals[r] % uint64(totalStreams))
			phys := int32(r)
			if b.Sel != nil {
				phys = b.Sel[r]
			}
			sels[stream] = append(sels[stream], phys)
		}
		for s, sel := range sels {
			if len(sel) == 0 {
				continue
			}
			d := destOf[s]
			bufs[d].addGather(ex, b, sel, threadOf[s], !t2t)
			if bufs[d].bytes >= ex.cfg.msgBytes() {
				if !comm.SendQuit(node, d, bufs[d].take(ex), ex.quit) {
					return
				}
			}
		}
	}
	for d := range bufs {
		if b := bufs[d].take(ex); b != nil {
			if !comm.SendQuit(node, d, b, ex.quit) {
				return
			}
		}
	}
}

func firstStreamOf(node int, consumersPerNode []int) int {
	s := 0
	for n := 0; n < node; n++ {
		s += consumersPerNode[n]
	}
	return s
}

// dispatchByThreadCol splits a thread-tagged batch to per-thread queues,
// stripping the tag column.
func dispatchByThreadCol(b *vector.Batch, queues []chan portItem, base, threads int, quit <-chan struct{}) {
	tcol := b.Vecs[len(b.Vecs)-1].Int32s()
	data := &vector.Batch{Vecs: b.Vecs[:len(b.Vecs)-1]}
	sels := make([][]int32, threads)
	for r, t := range tcol {
		sels[t] = append(sels[t], int32(r))
	}
	for t, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		select {
		case queues[base+t] <- portItem{b: &vector.Batch{Vecs: data.Vecs, Sel: sel}}:
		case <-quit:
			return
		}
	}
}

func forward(q chan portItem, m mpi.Message, quit <-chan struct{}) {
	b, err := m.Batch()
	it := portItem{b: b, err: err}
	if err == nil {
		if eb := asErrBatch(b); eb != nil {
			it = portItem{err: eb}
		}
	} else {
		it = portItem{err: err}
	}
	select {
	case q <- it:
	case <-quit:
	}
}

// DXchgUnion funnels every producer stream to a single consumer stream on
// the given node (the 180:1 DXchgUnion of the Appendix Q1 plan).
func DXchgUnion(cfg Config, producers [][]exec.Operator, consumerNode int) (exec.Operator, *Exchange) {
	ex := newExchange(cfg)
	ex.fanout = 1
	nSenders := 0
	for _, ps := range producers {
		nSenders += len(ps)
	}
	comm := cfg.Net.NewComm(1, nSenders, func(int) int { return consumerNode })
	for pn, ps := range producers {
		for _, p := range ps {
			go runForwardSender(ex, comm, pn, p, []int{0})
		}
	}
	q := make(chan portItem, 4)
	go func() {
		defer close(q)
		for {
			m, ok := comm.RecvQuit(0, ex.quit)
			if !ok {
				return
			}
			forward(q, m, ex.quit)
		}
	}()
	return ex.newPort(q), ex
}

// DXchgBroadcast replicates every producer row to every consumer thread on
// every node (used to build replicated join sides).
func DXchgBroadcast(cfg Config, producers [][]exec.Operator, consumersPerNode []int) ([][]exec.Operator, *Exchange) {
	ex := newExchange(cfg)
	ex.fanout = len(consumersPerNode)
	nSenders := 0
	for _, ps := range producers {
		nSenders += len(ps)
	}
	comm := cfg.Net.NewComm(len(consumersPerNode), nSenders, nil)
	dests := make([]int, len(consumersPerNode))
	for i := range dests {
		dests[i] = i
	}
	for pn, ps := range producers {
		for _, p := range ps {
			go runForwardSender(ex, comm, pn, p, dests)
		}
	}
	queues := make([]chan portItem, 0)
	ports := make([][]exec.Operator, len(consumersPerNode))
	for n, c := range consumersPerNode {
		nodeQueues := make([]chan portItem, c)
		for t := 0; t < c; t++ {
			q := make(chan portItem, 4)
			nodeQueues[t] = q
			queues = append(queues, q)
			ports[n] = append(ports[n], ex.newPort(q))
		}
		go func(n int, nodeQueues []chan portItem) {
			defer func() {
				for _, q := range nodeQueues {
					close(q)
				}
			}()
			for {
				m, ok := comm.RecvQuit(n, ex.quit)
				if !ok {
					return
				}
				b, err := m.Batch()
				it := portItem{b: b}
				if err != nil {
					it = portItem{err: err}
				} else if eb := asErrBatch(b); eb != nil {
					it = portItem{err: eb}
				}
				for _, q := range nodeQueues {
					select {
					case q <- it:
					case <-ex.quit:
						return
					}
				}
			}
		}(n, nodeQueues)
	}
	_ = queues
	return ports, ex
}

// runForwardSender buffers batches and sends them whole to a list of
// destination ranks (union: one; broadcast: all).
func runForwardSender(ex *Exchange, comm *mpi.Comm, node int, p exec.Operator, dests []int) {
	defer comm.DoneSending()
	var buf sendBuffer
	if err := p.Open(); err != nil {
		comm.SendQuit(node, dests[0], errBatch(err), ex.quit)
		return
	}
	defer p.Close()
	for {
		if err := ex.ctx.Err(); err != nil {
			comm.SendQuit(node, dests[0], errBatch(fmt.Errorf("mpp: sender canceled: %w", context.Cause(ex.ctx))), ex.quit)
			return
		}
		b, err := p.Next()
		if err != nil {
			comm.SendQuit(node, dests[0], errBatch(err), ex.quit)
			return
		}
		if b == nil {
			break
		}
		if b.Sel == nil {
			buf.addAll(ex, b)
		} else {
			buf.addGather(ex, b, b.Sel, 0, false)
		}
		if buf.bytes >= ex.cfg.msgBytes() {
			out := buf.take(ex)
			for _, d := range dests {
				if !comm.SendQuit(node, d, out, ex.quit) {
					return
				}
			}
		}
	}
	if out := buf.take(ex); out != nil {
		for _, d := range dests {
			if !comm.SendQuit(node, d, out, ex.quit) {
				return
			}
		}
	}
}

// Error transport: errors are encoded as a one-column batch with a sentinel
// schema so they survive serialization.
const errSentinel = "\x00dxchg-error\x00"

func errBatch(err error) *vector.Batch {
	return vector.NewBatch(vector.FromString([]string{errSentinel, err.Error()}))
}

func asErrBatch(b *vector.Batch) error {
	if len(b.Vecs) == 1 && b.Vecs[0].Kind() == vector.String && b.Len() == 2 {
		s := b.Vecs[0].Strings()
		if s[0] == errSentinel {
			return &exchangeError{s[1]}
		}
	}
	return nil
}

type exchangeError struct{ msg string }

func (e *exchangeError) Error() string { return "mpp: exchange producer failed: " + e.msg }
