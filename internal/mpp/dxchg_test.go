package mpp

import (
	"errors"
	"sync"
	"testing"

	"vectorh/internal/exec"
	"vectorh/internal/expr"
	"vectorh/internal/mpi"
	"vectorh/internal/vector"
)

func producer(lo, n int) exec.Operator {
	var batches []*vector.Batch
	for off := 0; off < n; off += 200 {
		cnt := n - off
		if cnt > 200 {
			cnt = 200
		}
		ks := make([]int64, cnt)
		vs := make([]string, cnt)
		for i := 0; i < cnt; i++ {
			ks[i] = int64(lo + off + i)
			vs[i] = "v"
		}
		batches = append(batches, vector.NewBatch(vector.FromInt64(ks), vector.FromString(vs)))
	}
	return &exec.BatchSource{Batches: batches}
}

func collectAll(t *testing.T, ports [][]exec.Operator) (total int, byStream map[int][]int64) {
	t.Helper()
	byStream = map[int][]int64{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	id := 0
	for _, nodePorts := range ports {
		for _, p := range nodePorts {
			wg.Add(1)
			go func(id int, p exec.Operator) {
				defer wg.Done()
				rows, err := exec.Collect(p)
				if err != nil {
					t.Errorf("stream %d: %v", id, err)
					return
				}
				mu.Lock()
				for _, r := range rows {
					byStream[id] = append(byStream[id], r[0].(int64))
					total++
				}
				mu.Unlock()
			}(id, p)
			id++
		}
	}
	wg.Wait()
	return total, byStream
}

func testBothModes(t *testing.T, fn func(t *testing.T, mode Mode)) {
	t.Run("thread-to-thread", func(t *testing.T) { fn(t, ThreadToThread) })
	t.Run("thread-to-node", func(t *testing.T) { fn(t, ThreadToNode) })
}

func TestDXchgHashSplitCompleteAndConsistent(t *testing.T) {
	testBothModes(t, func(t *testing.T, mode Mode) {
		net := mpi.NewNetwork(3)
		cfg := Config{Net: net, Mode: mode, MsgBytes: 1024}
		producers := [][]exec.Operator{
			{producer(0, 500), producer(500, 500)},
			{producer(1000, 500)},
			{producer(1500, 500)},
		}
		ports, ex := DXchgHashSplit(cfg, producers, []expr.Expr{expr.Col(0, vector.Int64)}, []int{2, 2, 2})
		total, byStream := collectAll(t, ports)
		if total != 2000 {
			t.Fatalf("total = %d", total)
		}
		// No key may appear in two streams.
		owner := map[int64]int{}
		for s, keys := range byStream {
			for _, k := range keys {
				if prev, ok := owner[k]; ok && prev != s {
					t.Fatalf("key %d in streams %d and %d", k, prev, s)
				}
				owner[k] = s
			}
		}
		if ex.Stats().PeakBufferBytes <= 0 {
			t.Fatal("no buffering recorded")
		}
		wantFanout := 6
		if mode == ThreadToNode {
			wantFanout = 3
		}
		if ex.Stats().Fanout != wantFanout {
			t.Fatalf("fanout = %d, want %d", ex.Stats().Fanout, wantFanout)
		}
	})
}

func TestDXchgRemoteVsLocalAccounting(t *testing.T) {
	net := mpi.NewNetwork(2)
	cfg := Config{Net: net, Mode: ThreadToNode, MsgBytes: 512}
	producers := [][]exec.Operator{{producer(0, 1000)}, {producer(1000, 1000)}}
	ports, _ := DXchgHashSplit(cfg, producers, []expr.Expr{expr.Col(0, vector.Int64)}, []int{1, 1})
	total, _ := collectAll(t, ports)
	if total != 2000 {
		t.Fatalf("total = %d", total)
	}
	s := net.Stats()
	if s.RemoteBytes == 0 || s.RemoteMsgs == 0 {
		t.Fatalf("no remote traffic recorded: %+v", s)
	}
	if s.LocalHandoffs == 0 {
		t.Fatalf("no intra-node pointer passes recorded: %+v", s)
	}
}

func TestThreadToNodeReducesFanoutAndBuffering(t *testing.T) {
	run := func(mode Mode) Stats {
		net := mpi.NewNetwork(4)
		cfg := Config{Net: net, Mode: mode, MsgBytes: 4096}
		producers := make([][]exec.Operator, 4)
		for n := range producers {
			for i := 0; i < 4; i++ {
				producers[n] = append(producers[n], producer(n*4000+i*1000, 1000))
			}
		}
		ports, ex := DXchgHashSplit(cfg, producers, []expr.Expr{expr.Col(0, vector.Int64)}, []int{4, 4, 4, 4})
		total, _ := collectAll(t, ports)
		if total != 16000 {
			t.Fatalf("total = %d", total)
		}
		return ex.Stats()
	}
	t2t := run(ThreadToThread)
	t2n := run(ThreadToNode)
	if t2n.Fanout >= t2t.Fanout {
		t.Fatalf("fanout t2n=%d should be < t2t=%d", t2n.Fanout, t2t.Fanout)
	}
}

func TestDXchgUnion(t *testing.T) {
	net := mpi.NewNetwork(3)
	producers := [][]exec.Operator{{producer(0, 300)}, {producer(300, 300)}, {producer(600, 300)}}
	u, _ := DXchgUnion(Config{Net: net, MsgBytes: 2048}, producers, 0)
	rows, err := exec.Collect(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 900 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestDXchgBroadcast(t *testing.T) {
	net := mpi.NewNetwork(2)
	producers := [][]exec.Operator{{producer(0, 100)}}
	ports, _ := DXchgBroadcast(Config{Net: net, MsgBytes: 512}, producers, []int{2, 2})
	total, byStream := collectAll(t, ports)
	if total != 400 {
		t.Fatalf("total = %d", total)
	}
	for s, keys := range byStream {
		if len(keys) != 100 {
			t.Fatalf("stream %d got %d rows, want 100", s, len(keys))
		}
	}
}

func TestDXchgRangeSplit(t *testing.T) {
	net := mpi.NewNetwork(2)
	producers := [][]exec.Operator{{producer(0, 100)}, {producer(100, 100)}}
	ports, _ := DXchgRangeSplit(Config{Net: net, MsgBytes: 512}, producers,
		expr.Col(0, vector.Int64), []int64{49}, []int{1, 1})
	_, byStream := collectAll(t, ports)
	for _, k := range byStream[0] {
		if k > 49 {
			t.Fatalf("stream 0 received key %d", k)
		}
	}
	for _, k := range byStream[1] {
		if k <= 49 {
			t.Fatalf("stream 1 received key %d", k)
		}
	}
	if len(byStream[0]) != 50 || len(byStream[1]) != 150 {
		t.Fatalf("sizes = %d/%d", len(byStream[0]), len(byStream[1]))
	}
}

type failOp struct{}

func (failOp) Open() error                  { return nil }
func (failOp) Next() (*vector.Batch, error) { return nil, errors.New("producer exploded") }
func (failOp) Close() error                 { return nil }

func TestDXchgPropagatesProducerErrors(t *testing.T) {
	net := mpi.NewNetwork(2)
	producers := [][]exec.Operator{{failOp{}}, {producer(0, 10)}}
	ports, _ := DXchgHashSplit(Config{Net: net, MsgBytes: 512}, producers,
		[]expr.Expr{expr.Col(0, vector.Int64)}, []int{1, 1})
	var sawErr bool
	var wg sync.WaitGroup
	for _, nodePorts := range ports {
		for _, p := range nodePorts {
			wg.Add(1)
			go func(p exec.Operator) {
				defer wg.Done()
				if _, err := exec.Collect(p); err != nil {
					sawErr = true
				}
			}(p)
		}
	}
	wg.Wait()
	if !sawErr {
		t.Fatal("producer error not delivered to any consumer")
	}
}

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	b := vector.NewBatch(
		vector.FromInt64([]int64{-1, 2, 1 << 40}),
		vector.FromInt32([]int32{7, -8, 9}),
		vector.FromFloat64([]float64{1.5, -2.5, 0}),
		vector.FromString([]string{"", "abc", "日本"}),
		vector.FromBool([]bool{true, false, true}),
	)
	b.Sel = []int32{2, 0}
	got, err := mpi.DecodeBatch(mpi.EncodeBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Row(0)[0].(int64) != 1<<40 || got.Row(1)[3].(string) != "" {
		t.Fatalf("round trip = %v %v", got.Row(0), got.Row(1))
	}
	if _, err := mpi.DecodeBatch([]byte{1, 2}); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func BenchmarkDXchgFanout(b *testing.B) {
	// Ablation: thread-to-thread vs thread-to-node on a 4x4 topology.
	for _, mode := range []Mode{ThreadToThread, ThreadToNode} {
		name := "thread-to-thread"
		if mode == ThreadToNode {
			name = "thread-to-node"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net := mpi.NewNetwork(4)
				cfg := Config{Net: net, Mode: mode, MsgBytes: 8192}
				producers := make([][]exec.Operator, 4)
				for n := range producers {
					for j := 0; j < 4; j++ {
						producers[n] = append(producers[n], producer(n*8000+j*2000, 2000))
					}
				}
				ports, _ := DXchgHashSplit(cfg, producers, []expr.Expr{expr.Col(0, vector.Int64)}, []int{4, 4, 4, 4})
				var wg sync.WaitGroup
				for _, nodePorts := range ports {
					for _, p := range nodePorts {
						wg.Add(1)
						go func(p exec.Operator) {
							defer wg.Done()
							exec.Collect(p)
						}(p)
					}
				}
				wg.Wait()
			}
		})
	}
}
