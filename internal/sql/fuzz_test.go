package sql

import (
	"errors"
	"strings"
	"testing"
)

// The SQL front-end is the engine's only parser of untrusted text: every
// wire query, prepared template and cache key passes through lex/ParseStmt/
// NormalizeSQL/Bind. The fuzz targets below pin the properties the rest of
// the engine assumes: no panics, positioned errors, idempotent
// normalization, and bound output that re-enters the front-end cleanly.

// fuzzInputCap bounds fuzz inputs: large enough for real statements, small
// enough that mutation stays productive.
const fuzzInputCap = 1 << 14

// TestParseDepthLimit pins the recursion guard the fuzzers rely on: without
// it, kilobytes of nested parentheses walk the recursive-descent parser off
// the goroutine stack, which is a process-killing crash, not an error.
func TestParseDepthLimit(t *testing.T) {
	deep := "SELECT " + strings.Repeat("(", 4096) + "1" + strings.Repeat(")", 4096)
	_, err := ParseStmt(deep)
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("deep nesting: want positioned error, got %v", err)
	}
	if !strings.Contains(se.Msg, "nesting exceeds") {
		t.Fatalf("wrong error: %v", err)
	}
	// A plausible real query several levels deep must still parse.
	ok := "SELECT ((((a + 1)))) FROM (SELECT b AS a FROM t) s"
	if _, err := ParseStmt(ok); err != nil {
		t.Fatalf("moderate nesting rejected: %v", err)
	}
}

var lexerSeeds = []string{
	"SELECT 1",
	"select l_orderkey, sum(l_extendedprice * (1 - l_discount)) from lineitem group by l_orderkey",
	"SELECT * FROM t WHERE a LIKE '%x%' AND b BETWEEN 1 AND 10",
	"'unterminated",
	"-- comment\nSELECT 1",
	"SELECT DATE '1995-01-01' + INTERVAL '3' MONTH",
	"INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, '')",
	"SELECT 1e99, .5, 0.0, 'Ω≠ascii'",
	"SELECT ((((1))))",
	";;;",
}

func FuzzLexer(f *testing.F) {
	for _, s := range lexerSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > fuzzInputCap {
			t.Skip()
		}
		toks, err := lex(src)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("lex error without a position: %v", err)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tEOF {
			t.Fatalf("lex(%q): token stream not EOF-terminated", src)
		}
		for _, tok := range toks {
			if tok.pos.Line < 1 || tok.pos.Col < 1 {
				t.Fatalf("lex(%q): token %q at invalid position %v", src, tok.text, tok.pos)
			}
		}
	})
}

func FuzzParser(f *testing.F) {
	for _, s := range lexerSeeds {
		f.Add(s)
	}
	f.Add("SELECT a FROM (SELECT b AS a FROM t) s WHERE EXISTS (SELECT 1 FROM u WHERE u.k = s.a)")
	f.Add("UPDATE t SET a = CASE WHEN b > 0 THEN 1 ELSE 2 END WHERE c IN (SELECT d FROM u)")
	f.Add("DELETE FROM t WHERE " + strings.Repeat("(", 300) + "1" + strings.Repeat(")", 300) + " = 1")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > fuzzInputCap {
			t.Skip()
		}
		stmt, err := ParseStmt(src)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("parse error without a position: %v", err)
			}
			return
		}
		if stmt == nil {
			t.Fatalf("ParseStmt(%q): nil statement without error", src)
		}
	})
}

func FuzzNormalizeSQL(f *testing.F) {
	for _, s := range lexerSeeds {
		f.Add(s)
	}
	f.Add("SELECT  a ,b  FROM t  -- trailing comment")
	f.Add("sElEcT 'a''b' || x FROM t;")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > fuzzInputCap {
			t.Skip()
		}
		norm, cacheable := NormalizeSQL(src)
		if !cacheable {
			return
		}
		// The key must be stable: formatting differences collapse, so the
		// normalized form must normalize to itself.
		again, ok := NormalizeSQL(norm)
		if !ok {
			t.Fatalf("normalized form no longer cacheable:\n src: %q\nnorm: %q", src, norm)
		}
		if again != norm {
			t.Fatalf("NormalizeSQL not idempotent:\n src: %q\n  1st: %q\n  2nd: %q", src, norm, again)
		}
	})
}

func FuzzPreparedBind(f *testing.F) {
	f.Add("SELECT a FROM t WHERE b = ? AND c < ?", "x'y", int64(7), 2.5)
	f.Add("INSERT INTO t (a, b) VALUES (?, ?)", "", int64(-1), 0.0)
	f.Add("UPDATE t SET a = ? WHERE b IN (?, ?)", "line\nbreak", int64(1<<40), -0.125)
	f.Add("DELETE FROM t WHERE k = ?", "'; DELETE FROM u; --", int64(0), 1e300)
	f.Fuzz(func(t *testing.T, src, sv string, iv int64, fv float64) {
		if len(src) > fuzzInputCap || len(sv) > fuzzInputCap {
			t.Skip()
		}
		p, err := Prepare(src)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("prepare error without a position: %v", err)
			}
			return
		}
		params := make([]any, p.NumParams())
		for i := range params {
			switch i % 3 {
			case 0:
				params[i] = sv
			case 1:
				params[i] = iv
			default:
				params[i] = fv
			}
		}
		bound, err := p.Bind(params)
		if err != nil {
			return // e.g. non-finite float: rejected, not spliced
		}
		// Bound text is what the executor lexes: it must lex cleanly and
		// contain no residual parameter markers (a marker surviving into a
		// value string would mean the splice is injectable).
		toks, err := lex(bound)
		if err != nil {
			t.Fatalf("bound SQL does not lex: %v\n src: %q\nbound: %q", err, src, bound)
		}
		for _, tok := range toks {
			if tok.kind == tSymbol && tok.text == "?" {
				t.Fatalf("residual '?' after Bind:\n src: %q\nbound: %q", src, bound)
			}
		}
	})
}
