package sql

import (
	"context"
	"math"

	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// DMLKind enumerates the data-modification statement kinds.
type DMLKind uint8

// DML statement kinds.
const (
	DMLInsert DMLKind = iota
	DMLUpdate
	DMLDelete
)

func (k DMLKind) String() string {
	switch k {
	case DMLInsert:
		return "INSERT"
	case DMLUpdate:
		return "UPDATE"
	default:
		return "DELETE"
	}
}

// DML is a compiled data-modification statement, bound and type-checked
// against the catalog, ready to run on the engine's trickle-update entry
// points (InsertRows / UpdateWhere / DeleteWhere). Rows flow through the
// transaction manager into the Write-PDTs, so the existing PDT-merging
// scans see them with no query-side changes.
type DML struct {
	Kind  DMLKind
	Table string

	// Insert holds the value rows in table-schema order and physical
	// representation (dates as day numbers, decimals as scaled int64).
	Insert *vector.Batch

	// Where is the UPDATE/DELETE predicate (TRUE when the statement has no
	// WHERE clause).
	Where plan.Expr

	// SetCols/SetExprs are the UPDATE assignments; each expression's
	// result is converted to the column's physical storage type.
	SetCols  []string
	SetExprs []plan.Expr
}

// DMLEngine is the write surface a compiled DML statement executes
// against; *core.Engine (and therefore vectorh.DB) satisfies it.
type DMLEngine interface {
	plan.Catalog
	InsertRows(table string, b *vector.Batch) error
	UpdateWhere(table string, pred plan.Expr, setCols []string, setExprs []plan.Expr) (int64, error)
	DeleteWhere(table string, pred plan.Expr) (int64, error)
}

// DMLEngineContext is the context-aware write surface: engines that
// implement it (like *core.Engine) get per-statement deadlines and
// cancellation threaded into their DML execution.
type DMLEngineContext interface {
	DMLEngine
	InsertRowsContext(ctx context.Context, table string, b *vector.Batch) error
	UpdateWhereContext(ctx context.Context, table string, pred plan.Expr, setCols []string, setExprs []plan.Expr) (int64, error)
	DeleteWhereContext(ctx context.Context, table string, pred plan.Expr) (int64, error)
}

// Exec compiles and runs one DML statement, returning the number of
// affected rows.
func Exec(src string, eng DMLEngine) (int64, error) {
	//lint:ctx compatibility shim for context-free callers; cancellable path is ExecContext
	return ExecContext(context.Background(), src, eng)
}

// ExecContext is Exec under a context. When the engine implements
// DMLEngineContext the context reaches the trickle-update scan loops (a
// cancelled statement aborts its transaction); otherwise it degrades to the
// uncancellable Exec.
func ExecContext(ctx context.Context, src string, eng DMLEngine) (int64, error) {
	d, err := CompileDML(src, eng)
	if err != nil {
		return 0, err
	}
	if ce, ok := eng.(DMLEngineContext); ok {
		switch d.Kind {
		case DMLInsert:
			n := int64(d.Insert.Len())
			if err := ce.InsertRowsContext(ctx, d.Table, d.Insert); err != nil {
				return 0, err
			}
			return n, nil
		case DMLUpdate:
			return ce.UpdateWhereContext(ctx, d.Table, d.Where, d.SetCols, d.SetExprs)
		default:
			return ce.DeleteWhereContext(ctx, d.Table, d.Where)
		}
	}
	switch d.Kind {
	case DMLInsert:
		n := int64(d.Insert.Len())
		if err := eng.InsertRows(d.Table, d.Insert); err != nil {
			return 0, err
		}
		return n, nil
	case DMLUpdate:
		return eng.UpdateWhere(d.Table, d.Where, d.SetCols, d.SetExprs)
	default:
		return eng.DeleteWhere(d.Table, d.Where)
	}
}

// CompileDML parses src and binds it as a data-modification statement.
func CompileDML(src string, cat plan.Catalog) (*DML, error) {
	stmt, err := ParseStmt(src)
	if err != nil {
		return nil, err
	}
	return LowerDML(stmt, cat)
}

// LowerDML binds a parsed DML statement against the catalog: names resolve
// to schema columns, values and SET expressions type-check against the
// column types (with source positions), and predicates lower to the same
// plan.Expr vocabulary queries use.
func LowerDML(stmt Stmt, cat plan.Catalog) (*DML, error) {
	switch s := stmt.(type) {
	case *InsertStmt:
		return lowerInsert(s, cat)
	case *UpdateStmt:
		return lowerUpdate(s, cat)
	case *DeleteStmt:
		return lowerDelete(s, cat)
	case *SelectStmt:
		return nil, errf(Pos{1, 1}, "SELECT is a query, not a DML statement; use QuerySQL")
	}
	return nil, errf(Pos{1, 1}, "unsupported statement")
}

func lowerInsert(s *InsertStmt, cat plan.Catalog) (*DML, error) {
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return nil, errf(s.TablePos, "unknown table %q", s.Table)
	}
	// Resolve the column list to schema positions; without NULL/default
	// support every column must be present exactly once.
	slotOf := make([]int, len(schema)) // schema index -> value slot
	if len(s.Cols) == 0 {
		for i := range schema {
			slotOf[i] = i
		}
	} else {
		for i := range slotOf {
			slotOf[i] = -1
		}
		for slot, c := range s.Cols {
			ci := schema.Index(c.Name)
			if ci < 0 {
				return nil, errf(c.Pos, "table %q has no column %q", s.Table, c.Name)
			}
			if slotOf[ci] >= 0 {
				return nil, errf(c.Pos, "duplicate column %q in INSERT list", c.Name)
			}
			slotOf[ci] = slot
		}
		for ci, slot := range slotOf {
			if slot < 0 {
				return nil, errf(s.TablePos,
					"INSERT into %q must list every column (missing %q; NULL/defaults are unsupported)",
					s.Table, schema[ci].Name)
			}
		}
	}
	width := len(schema)
	b := vector.NewBatchForSchema(schema, len(s.Rows))
	for ri, row := range s.Rows {
		if len(row) != width {
			return nil, errf(row[0].pos(), "VALUES row %d has %d values, want %d", ri+1, len(row), width)
		}
		vals := make([]any, width)
		for ci, f := range schema {
			v, err := insertValue(row[slotOf[ci]], f)
			if err != nil {
				return nil, err
			}
			vals[ci] = v
		}
		b.AppendRow(vals...)
	}
	return &DML{Kind: DMLInsert, Table: s.Table, Insert: b}, nil
}

// insertValue converts one literal to the physical representation of the
// target column, rejecting mismatches with the literal's source position.
func insertValue(e Expr, f vector.Field) (any, error) {
	fail := func() (any, error) {
		return nil, errf(e.pos(), "column %q (%s) cannot take value %s", f.Name, f.Type, e)
	}
	if f.Type == vector.TDate {
		switch x := e.(type) {
		case *DateLit:
			return vector.AddMonths(vector.MustDate(x.V), x.Months), nil
		case *StrLit: // bare 'YYYY-MM-DD' is accepted for date columns
			d, err := vector.ParseDate(x.V)
			if err != nil {
				return nil, errf(x.P, "bad date literal %q for column %q", x.V, f.Name)
			}
			return d, nil
		}
		return fail()
	}
	if f.Type.Logical == vector.Decimal {
		switch x := e.(type) {
		case *IntLit:
			if x.V > math.MaxInt64/100 || x.V < math.MinInt64/100 {
				return nil, errf(x.P, "value %d overflows decimal column %q", x.V, f.Name)
			}
			return x.V * 100, nil
		case *FloatLit:
			if math.Abs(x.V) > math.MaxInt64/100 {
				return nil, errf(x.P, "value %g overflows decimal column %q", x.V, f.Name)
			}
			return int64(math.Round(x.V * 100)), nil
		}
		return fail()
	}
	switch f.Type.Kind {
	case vector.Int32:
		if x, ok := e.(*IntLit); ok {
			if x.V < math.MinInt32 || x.V > math.MaxInt32 {
				return nil, errf(x.P, "value %d overflows int32 column %q", x.V, f.Name)
			}
			return int32(x.V), nil
		}
	case vector.Int64:
		if x, ok := e.(*IntLit); ok {
			return x.V, nil
		}
	case vector.Float64:
		switch x := e.(type) {
		case *IntLit:
			return float64(x.V), nil
		case *FloatLit:
			return x.V, nil
		}
	case vector.String:
		if x, ok := e.(*StrLit); ok {
			return x.V, nil
		}
	}
	return fail()
}

func lowerUpdate(s *UpdateStmt, cat plan.Catalog) (*DML, error) {
	schema, b, err := dmlBinder(s.Table, s.TablePos, cat)
	if err != nil {
		return nil, err
	}
	d := &DML{Kind: DMLUpdate, Table: s.Table}
	seen := make(map[string]bool)
	for _, it := range s.Sets {
		ci := schema.Index(it.Col)
		if ci < 0 {
			return nil, errf(it.ColPos, "table %q has no column %q", s.Table, it.Col)
		}
		if seen[it.Col] {
			return nil, errf(it.ColPos, "column %q assigned twice", it.Col)
		}
		seen[it.Col] = true
		if err := b.bindDMLExpr(it.Expr); err != nil {
			return nil, err
		}
		le, err := lowerExpr(schema, it.Expr, false)
		if err != nil {
			return nil, err
		}
		ce, err := convertSet(schema, schema[ci], it.Expr, le)
		if err != nil {
			return nil, err
		}
		d.SetCols = append(d.SetCols, it.Col)
		d.SetExprs = append(d.SetExprs, ce)
	}
	if d.Where, err = b.lowerWhere(schema, s.Where); err != nil {
		return nil, err
	}
	return d, nil
}

func lowerDelete(s *DeleteStmt, cat plan.Catalog) (*DML, error) {
	schema, b, err := dmlBinder(s.Table, s.TablePos, cat)
	if err != nil {
		return nil, err
	}
	d := &DML{Kind: DMLDelete, Table: s.Table}
	if d.Where, err = b.lowerWhere(schema, s.Where); err != nil {
		return nil, err
	}
	return d, nil
}

// dmlBinder builds a single-table binder for UPDATE/DELETE expressions.
func dmlBinder(table string, pos Pos, cat plan.Catalog) (vector.Schema, *binder, error) {
	schema, err := cat.TableSchema(table)
	if err != nil {
		return nil, nil, errf(pos, "unknown table %q", table)
	}
	b := &binder{tables: []*boundTable{{
		table: table, alias: table, schema: schema, used: make(map[string]bool),
	}}}
	return schema, b, nil
}

// bindDMLExpr resolves names in a DML scalar expression, rejecting
// aggregates up front with a DML-specific message.
func (b *binder) bindDMLExpr(e Expr) error {
	if aggs := collectAggs(e); len(aggs) > 0 {
		return errf(aggs[0].P, "aggregate %s() is not allowed in INSERT/UPDATE/DELETE", aggs[0].Name)
	}
	return b.bindRefs(e, false)
}

// lowerWhere lowers an optional predicate; absent means TRUE (all rows).
func (b *binder) lowerWhere(schema vector.Schema, where Expr) (plan.Expr, error) {
	if where == nil {
		return plan.Bool(true), nil
	}
	if err := b.bindDMLExpr(where); err != nil {
		return plan.Expr{}, err
	}
	return lowerExpr(schema, where, false)
}

// convertSet wraps a lowered SET expression so its result lands in the
// target column's physical storage representation, rejecting type
// mismatches at bind time with the expression's source position.
func convertSet(schema vector.Schema, f vector.Field, ast Expr, le plan.Expr) (plan.Expr, error) {
	et, err := le.Type(schema)
	if err != nil {
		return plan.Expr{}, errf(ast.pos(), "cannot type SET expression for %q: %v", f.Name, err)
	}
	fail := func() (plan.Expr, error) {
		return plan.Expr{}, errf(ast.pos(), "cannot assign %s to column %q (%s)", et, f.Name, f.Type)
	}
	isDate := et == vector.TDate
	switch {
	case f.Type == vector.TDate:
		if !isDate {
			return fail()
		}
		return le, nil
	case f.Type.Logical == vector.Decimal:
		// Decimal targets take any non-date numeric; computed values (which
		// lower as floats via Dec) round back to two digits.
		if isDate || (et.Kind != vector.Float64 && et.Kind != vector.Int64 && et.Kind != vector.Int32) {
			return fail()
		}
		return plan.ToDecimal(le), nil
	case f.Type.Kind == vector.String:
		if et.Kind != vector.String {
			return fail()
		}
		return le, nil
	case f.Type.Kind == vector.Float64:
		switch {
		case et.Kind == vector.Float64:
			return le, nil
		case !isDate && (et.Kind == vector.Int32 || et.Kind == vector.Int64):
			return plan.Scaled(le, 1), nil
		}
		return fail()
	case f.Type.Kind == vector.Int32:
		switch {
		case et == vector.TInt32:
			return le, nil
		case et == vector.TInt64:
			return plan.CastInt32(le), nil
		}
		return fail()
	case f.Type.Kind == vector.Int64:
		switch {
		case et == vector.TInt64:
			return le, nil
		case et == vector.TInt32:
			return plan.CastInt64(le), nil
		}
		return fail()
	}
	return fail()
}
