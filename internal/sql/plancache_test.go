package sql

import (
	"reflect"
	"strings"
	"testing"
)

func TestNormalizeSQL(t *testing.T) {
	a, ok := NormalizeSQL("SELECT  id ,amount\n\tFROM sales WHERE region_name='no''rth';")
	if !ok {
		t.Fatal("formatted SELECT should be cacheable")
	}
	b, ok := NormalizeSQL("select id, amount from sales where region_name = 'no''rth'")
	if !ok || a != b {
		t.Fatalf("normalization differs:\n  %q\n  %q", a, b)
	}
	if strings.Contains(a, ";") || strings.Contains(a, "\n") {
		t.Fatalf("normalized text keeps separators: %q", a)
	}
	if _, ok := NormalizeSQL("update sales set amount = 0"); ok {
		t.Fatal("non-SELECT must not be cacheable")
	}
	if _, ok := NormalizeSQL("select 'unterminated"); ok {
		t.Fatal("unlexable text must not be cacheable")
	}
}

func TestPlanCacheCountersAndEviction(t *testing.T) {
	e := newEngine(t)
	c := NewPlanCache(2)
	epoch := e.CatalogEpoch()

	q1 := "select count(*) from sales"
	if _, _, cached, err := c.Compile(q1, e, epoch); err != nil || cached {
		t.Fatalf("first compile: cached=%v err=%v", cached, err)
	}
	// Formatting-equivalent text must hit the same entry.
	if _, _, cached, err := c.Compile("SELECT COUNT( * )\nFROM sales", e, epoch); err != nil || !cached {
		t.Fatalf("reformatted compile: cached=%v err=%v", cached, err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after hit: %+v", s)
	}

	// Two more distinct statements overflow cap=2 and evict the LRU entry.
	if _, _, _, err := c.Compile("select count(*) from regions", e, epoch); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Compile("select max(id) from sales", e, epoch); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("after overflow: %+v", s)
	}

	// A new catalog epoch flushes everything on first contact.
	if _, _, cached, err := c.Compile(q1, e, epoch+1); err != nil || cached {
		t.Fatalf("post-epoch compile: cached=%v err=%v", cached, err)
	}
	if s := c.Stats(); s.Invalidations != 2 || s.Entries != 1 {
		t.Fatalf("after epoch flush: %+v", s)
	}

	// Statements that fail to compile never land in the cache.
	if _, _, _, err := c.Compile("select nosuch from sales", e, epoch+1); err == nil {
		t.Fatal("expected unknown-column error")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("failed compile stored an entry: %+v", s)
	}
}

func TestPreparedBindSplicing(t *testing.T) {
	e := newEngine(t)
	cases := []struct {
		tmpl    string
		params  []any
		literal string
	}{
		{"select id from sales where amount >= ? and region_id = ? order by id limit 3",
			[]any{98.0, int64(2)},
			"select id from sales where amount >= 98 and region_id = 2 order by id limit 3"},
		{"select count(*) from sales where sold >= date ? and sold < date ?",
			[]any{"2020-01-15", "2020-02-01"},
			"select count(*) from sales where sold >= date '2020-01-15' and sold < date '2020-02-01'"},
		{"select rid from regions where region_name like ? order by rid",
			[]any{"%th"},
			"select rid from regions where region_name like '%th' order by rid"},
		{"select count(*) from sales where region_id in (?, ?)",
			[]any{1, int32(2)},
			"select count(*) from sales where region_id in (1, 2)"},
	}
	for _, tc := range cases {
		p, err := Prepare(tc.tmpl)
		if err != nil {
			t.Fatalf("prepare %q: %v", tc.tmpl, err)
		}
		if p.NumParams() != len(tc.params) || !p.IsSelect() {
			t.Fatalf("%q: numParams=%d isSelect=%v", tc.tmpl, p.NumParams(), p.IsSelect())
		}
		bound, err := p.Bind(tc.params)
		if err != nil {
			t.Fatalf("bind %q: %v", tc.tmpl, err)
		}
		if !reflect.DeepEqual(runSQL(t, e, bound), runSQL(t, e, tc.literal)) {
			t.Fatalf("%q: bound result differs from literal", tc.tmpl)
		}
		// Bound text is already normalized: re-normalizing is a no-op, so
		// repeated executes map onto one plan-cache key.
		if norm, ok := NormalizeSQL(bound); !ok || norm != bound {
			t.Fatalf("bound text not normalized: %q vs %q", bound, norm)
		}
	}
}

func TestPreparedBindRendering(t *testing.T) {
	p, err := Prepare("select count(*) from sales where amount < ? and region_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	// Large floats must render in plain decimal — the lexer has no exponent
	// notation.
	bound, err := p.Bind([]any{2000000.0, int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bound, "2000000") || strings.Contains(bound, "e+") {
		t.Fatalf("float rendering: %q", bound)
	}
	// Strings with quotes are escaped.
	sp, err := Prepare("select rid from regions where region_name = ?")
	if err != nil {
		t.Fatal(err)
	}
	bound, err = sp.Bind([]any{"o'brien"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bound, "'o''brien'") {
		t.Fatalf("quote escaping: %q", bound)
	}

	if _, err := p.Bind([]any{1.0}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if _, err := p.Bind([]any{1.0, true}); err == nil {
		t.Fatal("unsupported param type must error")
	}
}

func TestPrepareValidation(t *testing.T) {
	// Param-free templates get a full parse at prepare time.
	if _, err := Prepare("select from where"); err == nil {
		t.Fatal("syntax error must surface at prepare time")
	}
	if _, err := Prepare("select (1 from sales"); err == nil {
		t.Fatal("unbalanced '(' must surface at prepare time")
	}
	if _, err := Prepare("create table t (x int)"); err == nil {
		t.Fatal("non-SELECT/DML head must be rejected")
	}
	// DML templates prepare fine.
	p, err := Prepare("delete from regions where rid = ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.IsSelect() || p.NumParams() != 1 {
		t.Fatalf("DML template: isSelect=%v numParams=%d", p.IsSelect(), p.NumParams())
	}
}

func TestCompileRejectsUnboundParam(t *testing.T) {
	e := newEngine(t)
	_, err := Compile("select id from sales where id = ?", e)
	if err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("want unbound-parameter error, got %v", err)
	}
}
