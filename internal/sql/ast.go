package sql

import (
	"fmt"
	"strings"
)

// Stmt is any parsed statement: SELECT or one of the DML forms.
type Stmt interface {
	fmt.Stringer
	stmtNode()
}

func (*SelectStmt) stmtNode() {}
func (*InsertStmt) stmtNode() {}
func (*UpdateStmt) stmtNode() {}
func (*DeleteStmt) stmtNode() {}

// InsertStmt is INSERT INTO table [(cols)] VALUES (…), (…).
type InsertStmt struct {
	Table    string
	TablePos Pos
	Cols     []Ident  // optional explicit column list
	Rows     [][]Expr // literal value tuples
}

// Ident is a positioned identifier (column names in INSERT lists).
type Ident struct {
	Name string
	Pos  Pos
}

// UpdateStmt is UPDATE table SET col = expr, … [WHERE pred].
type UpdateStmt struct {
	Table    string
	TablePos Pos
	Sets     []SetItem
	Where    Expr // nil when absent
}

// SetItem is one SET assignment.
type SetItem struct {
	Col    string
	ColPos Pos
	Expr   Expr
}

// DeleteStmt is DELETE FROM table [WHERE pred].
type DeleteStmt struct {
	Table    string
	TablePos Pos
	Where    Expr // nil when absent
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	Star    bool // SELECT *
	From    []FromItem
	Where   Expr // nil when absent
	GroupBy []GroupItem
	Having  Expr // nil when absent
	OrderBy []OrderItem
	Limit   int64 // -1 when absent
}

// SelectItem is one projected expression, optionally aliased.
type SelectItem struct {
	Expr  Expr
	Alias string // "" when unaliased
}

// FromItem is one FROM source: a base table or a derived table
// (Sub != nil); items after the first carry the join condition that
// connects them to the sources to their left.
type FromItem struct {
	Table string
	Alias string      // defaults to Table; mandatory for derived tables
	Sub   *SelectStmt // non-nil for FROM (SELECT ...) alias
	On    Expr        // nil for the first item
	Left  bool        // LEFT [OUTER] JOIN
	Pos   Pos
}

// GroupItem is one GROUP BY term: a source column or a select-list alias.
type GroupItem struct {
	Name string
	Pos  Pos
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a parsed scalar expression.
type Expr interface {
	fmt.Stringer
	pos() Pos
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Table string // "" when unqualified
	Name  string
	P     Pos
}

func (e *ColRef) pos() Pos { return e.P }
func (e *ColRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// IntLit is an integer literal.
type IntLit struct {
	V int64
	P Pos
}

func (e *IntLit) pos() Pos       { return e.P }
func (e *IntLit) String() string { return fmt.Sprintf("%d", e.V) }

// FloatLit is a floating-point literal.
type FloatLit struct {
	V float64
	P Pos
}

func (e *FloatLit) pos() Pos       { return e.P }
func (e *FloatLit) String() string { return fmt.Sprintf("%g", e.V) }

// StrLit is a string literal.
type StrLit struct {
	V string
	P Pos
}

func (e *StrLit) pos() Pos       { return e.P }
func (e *StrLit) String() string { return "'" + strings.ReplaceAll(e.V, "'", "''") + "'" }

// DateLit is DATE 'YYYY-MM-DD', optionally shifted by whole months
// (+/- INTERVAL 'n' MONTH, folded at parse time).
type DateLit struct {
	V      string
	Months int
	P      Pos
}

func (e *DateLit) pos() Pos { return e.P }
func (e *DateLit) String() string {
	s := "date '" + e.V + "'"
	switch {
	case e.Months > 0:
		s += fmt.Sprintf(" + interval '%d' month", e.Months)
	case e.Months < 0:
		s += fmt.Sprintf(" - interval '%d' month", -e.Months)
	}
	return s
}

// ParamExpr is a positional statement parameter ('?'). Parameters exist only
// in prepared-statement templates: Prepare assigns 1-based indices in lexical
// order, and Bind splices literal values back into the token stream before
// compilation, so a ParamExpr that survives to lowering is an error
// ("unbound parameter").
type ParamExpr struct {
	Idx int // 1-based position
	P   Pos
}

func (e *ParamExpr) pos() Pos       { return e.P }
func (e *ParamExpr) String() string { return "?" }

// BinExpr is a binary operation: arithmetic, comparison, AND, OR.
type BinExpr struct {
	Op   string // + - * / = <> < <= > >= and or
	L, R Expr
	P    Pos
}

func (e *BinExpr) pos() Pos { return e.P }
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// NotExpr is NOT e.
type NotExpr struct {
	E Expr
	P Pos
}

func (e *NotExpr) pos() Pos       { return e.P }
func (e *NotExpr) String() string { return fmt.Sprintf("(not %s)", e.E) }

// FuncCall is a function application: an aggregate (sum, min, max, avg,
// count) or the scalar year().
type FuncCall struct {
	Name     string
	Arg      Expr // nil for count(*)
	Star     bool // count(*)
	Distinct bool // count(distinct x)
	P        Pos
}

func (e *FuncCall) pos() Pos { return e.P }
func (e *FuncCall) String() string {
	switch {
	case e.Star:
		return e.Name + "(*)"
	case e.Distinct:
		return fmt.Sprintf("%s(distinct %s)", e.Name, e.Arg)
	default:
		return fmt.Sprintf("%s(%s)", e.Name, e.Arg)
	}
}

// LikeExpr is e [NOT] LIKE 'pattern'.
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
	P       Pos
}

func (e *LikeExpr) pos() Pos { return e.P }
func (e *LikeExpr) String() string {
	op := "like"
	if e.Not {
		op = "not like"
	}
	return fmt.Sprintf("(%s %s '%s')", e.E, op, e.Pattern)
}

// InExpr is e [NOT] IN (list) over a homogeneous literal list.
type InExpr struct {
	E    Expr
	Strs []string // one of Strs/Ints is set
	Ints []int64
	Not  bool
	P    Pos
}

func (e *InExpr) pos() Pos { return e.P }
func (e *InExpr) String() string {
	var parts []string
	for _, s := range e.Strs {
		parts = append(parts, "'"+s+"'")
	}
	for _, v := range e.Ints {
		parts = append(parts, fmt.Sprintf("%d", v))
	}
	op := "in"
	if e.Not {
		op = "not in"
	}
	return fmt.Sprintf("(%s %s (%s))", e.E, op, strings.Join(parts, ", "))
}

// ExistsExpr is [NOT] EXISTS (SELECT ...).
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
	P   Pos
}

func (e *ExistsExpr) pos() Pos { return e.P }
func (e *ExistsExpr) String() string {
	op := "exists"
	if e.Not {
		op = "not exists"
	}
	return fmt.Sprintf("(%s (%s))", op, e.Sub)
}

// SubqueryExpr is a scalar subquery: (SELECT ...) used as a value.
type SubqueryExpr struct {
	Sub *SelectStmt
	P   Pos
}

func (e *SubqueryExpr) pos() Pos       { return e.P }
func (e *SubqueryExpr) String() string { return fmt.Sprintf("(%s)", e.Sub) }

// InSubquery is e [NOT] IN (SELECT ...).
type InSubquery struct {
	E   Expr
	Sub *SelectStmt
	Not bool
	P   Pos
}

func (e *InSubquery) pos() Pos { return e.P }
func (e *InSubquery) String() string {
	op := "in"
	if e.Not {
		op = "not in"
	}
	return fmt.Sprintf("(%s %s (%s))", e.E, op, e.Sub)
}

// SubstrExpr is SUBSTRING(e FROM start FOR length) with 1-based integer
// literal bounds.
type SubstrExpr struct {
	E             Expr
	Start, Length int64
	P             Pos
}

func (e *SubstrExpr) pos() Pos { return e.P }
func (e *SubstrExpr) String() string {
	return fmt.Sprintf("substring(%s from %d for %d)", e.E, e.Start, e.Length)
}

// BetweenExpr is e BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	P         Pos
}

func (e *BetweenExpr) pos() Pos { return e.P }
func (e *BetweenExpr) String() string {
	return fmt.Sprintf("(%s between %s and %s)", e.E, e.Lo, e.Hi)
}

// CaseExpr is CASE WHEN cond THEN a [ELSE b] END; a missing ELSE defaults
// to the integer 0.
type CaseExpr struct {
	When, Then, Else Expr
	P                Pos
}

func (e *CaseExpr) pos() Pos { return e.P }
func (e *CaseExpr) String() string {
	return fmt.Sprintf("case when %s then %s else %s end", e.When, e.Then, e.Else)
}

// String renders the statement in a canonical single-line form (used by the
// golden parser tests).
func (s *InsertStmt) String() string {
	var sb strings.Builder
	sb.WriteString("insert into " + s.Table)
	if len(s.Cols) > 0 {
		sb.WriteString(" (")
		for i, c := range s.Cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
		}
		sb.WriteString(")")
	}
	sb.WriteString(" values ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, v := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// String renders the statement in a canonical single-line form.
func (s *UpdateStmt) String() string {
	var sb strings.Builder
	sb.WriteString("update " + s.Table + " set ")
	for i, it := range s.Sets {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Col + " = " + it.Expr.String())
	}
	if s.Where != nil {
		sb.WriteString(" where " + s.Where.String())
	}
	return sb.String()
}

// String renders the statement in a canonical single-line form.
func (s *DeleteStmt) String() string {
	out := "delete from " + s.Table
	if s.Where != nil {
		out += " where " + s.Where.String()
	}
	return out
}

// String renders the statement in a canonical single-line form (used by the
// golden parser tests and the REPL's \parse command).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	if s.Star {
		sb.WriteString("*")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" as " + it.Alias)
		}
	}
	sb.WriteString(" from ")
	for i, f := range s.From {
		if i > 0 {
			if f.Left {
				sb.WriteString(" left join ")
			} else {
				sb.WriteString(" join ")
			}
		}
		if f.Sub != nil {
			sb.WriteString("(" + f.Sub.String() + ") " + f.Alias)
		} else {
			sb.WriteString(f.Table)
			if f.Alias != f.Table {
				sb.WriteString(" " + f.Alias)
			}
		}
		if f.On != nil {
			sb.WriteString(" on " + f.On.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" where " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" group by ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.Name)
		}
	}
	if s.Having != nil {
		sb.WriteString(" having " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" order by ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" desc")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " limit %d", s.Limit)
	}
	return sb.String()
}
