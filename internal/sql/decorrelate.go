package sql

import (
	"fmt"

	"vectorh/internal/plan"
)

// This file is phase 2 of the multi-phase SELECT planner: decorrelation.
// Subquery predicates rewrite into hidden sources that join into the block's
// tree with the join kinds the executor already implements:
//
//	[NOT] EXISTS (SELECT ...)   -> Semi/Anti join on the correlation keys
//	e [NOT] IN (SELECT ...)     -> Semi/Anti join on the IN key (+ correlation)
//	scalar (SELECT agg ...)     -> single-row inner join: correlated scalars
//	                               group by their correlation keys; an
//	                               uncorrelated scalar aggregates to one row
//	                               and joins on a synthesized constant key
//
// A correlated condition must appear in the subquery WHERE clause as a bare
// equality inner_col = outer_col; the outer side becomes the hidden source's
// join key against the enclosing block's tree. The rewritten predicate (for
// scalar subqueries) stays in the block as an ordinary conjunct referencing
// the hidden source's value column, so the single-row join's semantics match
// SQL: rows whose correlation key has no group vanish with the inner join,
// exactly as a NULL scalar comparison filters them.

// collectRefs gathers the column references of an expression, skipping
// nested subquery expressions (those bind inside their own blocks).
func collectRefs(e Expr) []*ColRef {
	var out []*ColRef
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColRef:
			out = append(out, x)
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *LikeExpr:
			walk(x.E)
		case *InExpr:
			walk(x.E)
		case *SubstrExpr:
			walk(x.E)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *CaseExpr:
			walk(x.When)
			walk(x.Then)
			walk(x.Else)
		case *InSubquery:
			walk(x.E)
		}
	}
	walk(e)
	return out
}

// splitCorr scans the subquery block's WHERE clause for correlated conjuncts
// — references that resolve in the enclosing block rather than locally —
// removes them from the local WHERE, and returns the correlation key pairs.
// Correlation is only supported as a bare equality inner_col = outer_col.
func (sb *block) splitCorr() (inner, outerRefs []*ColRef, err error) {
	if sb.stmt.Where == nil {
		return nil, nil, nil
	}
	var kept []Expr
	for _, c := range splitAnd(sb.stmt.Where) {
		corr := false
		for _, ref := range collectRefs(c) {
			if !sb.probes(ref) && sb.outer != nil && sb.outer.probes(ref) {
				corr = true
				break
			}
		}
		if !corr {
			kept = append(kept, c)
			continue
		}
		be, ok := c.(*BinExpr)
		if !ok || be.Op != "=" {
			return nil, nil, errf(c.pos(),
				"correlated condition %s must be a simple equality between a subquery column and an outer column", c)
		}
		lc, lok := be.L.(*ColRef)
		rc, rok := be.R.(*ColRef)
		if !lok || !rok {
			return nil, nil, errf(c.pos(),
				"correlated condition %s must be a simple equality between a subquery column and an outer column", c)
		}
		in, out := lc, rc
		if !sb.probes(in) {
			in, out = rc, lc
		}
		if !sb.probes(in) || sb.probes(out) {
			return nil, nil, errf(c.pos(),
				"correlated condition %s must relate one subquery column to one outer column", c)
		}
		if err := sb.outer.bindUse(out, false); err != nil {
			return nil, nil, err
		}
		inner = append(inner, in)
		outerRefs = append(outerRefs, out)
	}
	sb.stmt.Where = andAll(kept)
	return inner, outerRefs, nil
}

// andAll rebuilds a conjunction from its conjuncts (nil when empty).
func andAll(conj []Expr) Expr {
	if len(conj) == 0 {
		return nil
	}
	e := conj[0]
	for _, c := range conj[1:] {
		e = &BinExpr{Op: "and", L: e, R: c, P: c.pos()}
	}
	return e
}

// hiddenSource registers a lowered subquery as a hidden source of the block.
func (b *block) hiddenSource(n int, kind srcKind, node plan.Node,
	leftKeys []*ColRef, rightKeys []string, p Pos) (*source, error) {
	schema, err := node.Schema(b.cat)
	if err != nil {
		return nil, err
	}
	src := &source{
		alias: fmt.Sprintf("__sub%d", n), hidden: true, kind: kind,
		sub: node, schema: schema, leftKeys: leftKeys, rightKeys: rightKeys,
		pos: p, used: make(map[string]bool), valUsed: make(map[string]bool),
	}
	for _, f := range schema {
		src.used[f.Name] = true
		src.valUsed[f.Name] = true
	}
	return src, nil
}

// addExists decorrelates [NOT] EXISTS (SELECT ...) into a semi/anti-joined
// hidden source projecting the correlation keys.
func (b *block) addExists(x *ExistsExpr) error {
	sub, err := newBlock(x.Sub, b.cat, b)
	if err != nil {
		return err
	}
	inner, outerRefs, err := sub.splitCorr()
	if err != nil {
		return err
	}
	if len(inner) == 0 {
		return errf(x.P, "EXISTS subquery must be correlated with the outer query (inner_col = outer_col)")
	}
	n := *b.nHidden
	*b.nHidden++
	items := make([]SelectItem, len(inner))
	rightKeys := make([]string, len(inner))
	for i, c := range inner {
		rightKeys[i] = fmt.Sprintf("__k%d_%d", n, i)
		items[i] = SelectItem{Expr: c, Alias: rightKeys[i]}
	}
	sub.stmt.Items, sub.stmt.Star = items, false
	node, err := sub.lower()
	if err != nil {
		return err
	}
	kind := srcSemi
	if x.Not {
		kind = srcAnti
	}
	src, err := b.hiddenSource(n, kind, node, outerRefs, rightKeys, x.P)
	if err != nil {
		return err
	}
	b.srcs = append(b.srcs, src)
	return nil
}

// addInSub decorrelates e [NOT] IN (SELECT ...) into a semi/anti-joined
// hidden source keyed on the selected column plus any correlation keys.
func (b *block) addInSub(x *InSubquery) error {
	lc, ok := x.E.(*ColRef)
	if !ok {
		return errf(x.E.pos(), "IN (SELECT ...) requires a plain column on the left")
	}
	if err := b.bindUse(lc, false); err != nil {
		return err
	}
	sub, err := newBlock(x.Sub, b.cat, b)
	if err != nil {
		return err
	}
	inner, outerRefs, err := sub.splitCorr()
	if err != nil {
		return err
	}
	if sub.stmt.Star || len(sub.stmt.Items) != 1 {
		return errf(x.P, "IN subquery must select exactly one column")
	}
	n := *b.nHidden
	*b.nHidden++
	item := sub.stmt.Items[0]
	item.Alias = fmt.Sprintf("__q%d", n)
	items := []SelectItem{item}
	rightKeys := []string{item.Alias}
	for i, c := range inner {
		k := fmt.Sprintf("__k%d_%d", n, i)
		items = append(items, SelectItem{Expr: c, Alias: k})
		rightKeys = append(rightKeys, k)
	}
	sub.stmt.Items = items
	node, err := sub.lower()
	if err != nil {
		return err
	}
	kind := srcSemi
	if x.Not {
		kind = srcAnti
	}
	leftKeys := append([]*ColRef{lc}, outerRefs...)
	src, err := b.hiddenSource(n, kind, node, leftKeys, rightKeys, x.P)
	if err != nil {
		return err
	}
	b.srcs = append(b.srcs, src)
	return nil
}

// addScalar decorrelates a scalar subquery into a single-row-joined hidden
// source, returning the reference that replaces it in the conjunct. post
// marks HAVING conjuncts, whose sources attach above the aggregation.
func (b *block) addScalar(x *SubqueryExpr, post bool) (*ColRef, error) {
	sub, err := newBlock(x.Sub, b.cat, b)
	if err != nil {
		return nil, err
	}
	inner, outerRefs, err := sub.splitCorr()
	if err != nil {
		return nil, err
	}
	if sub.stmt.Star || len(sub.stmt.Items) != 1 {
		return nil, errf(x.P, "scalar subquery must select exactly one expression")
	}
	item := sub.stmt.Items[0]
	if len(collectAggs(item.Expr)) == 0 {
		return nil, errf(x.P, "scalar subquery must compute an aggregate")
	}
	n := *b.nHidden
	*b.nHidden++
	val := fmt.Sprintf("__sq%d", n)
	item.Alias = val
	ref := &ColRef{Name: val, P: x.P}

	if len(inner) > 0 {
		// Correlated: aggregate per correlation key, inner-join on the keys.
		if post {
			return nil, errf(x.P, "correlated scalar subqueries are not supported in HAVING")
		}
		if len(sub.stmt.GroupBy) > 0 {
			return nil, errf(x.P, "correlated scalar subquery cannot also use GROUP BY")
		}
		items := make([]SelectItem, 0, len(inner)+1)
		rightKeys := make([]string, 0, len(inner))
		groupBy := make([]GroupItem, 0, len(inner))
		for i, c := range inner {
			k := fmt.Sprintf("__k%d_%d", n, i)
			items = append(items, SelectItem{Expr: c, Alias: k})
			rightKeys = append(rightKeys, k)
			groupBy = append(groupBy, GroupItem{Name: c.Name, Pos: c.P})
		}
		items = append(items, item)
		sub.stmt.Items, sub.stmt.Star = items, false
		sub.stmt.GroupBy = groupBy
		node, err := sub.lower()
		if err != nil {
			return nil, err
		}
		src, err := b.hiddenSource(n, srcSingle, node, outerRefs, rightKeys, x.P)
		if err != nil {
			return nil, err
		}
		b.srcs = append(b.srcs, src)
		return ref, nil
	}

	// Uncorrelated: a one-row grand aggregate joined on a constant key.
	if len(sub.stmt.GroupBy) > 0 {
		return nil, errf(x.P, "scalar subquery cannot use GROUP BY")
	}
	sub.stmt.Items = []SelectItem{item}
	node, err := sub.lower()
	if err != nil {
		return nil, err
	}
	k := fmt.Sprintf("__k%d", n)
	node = plan.Project(node, plan.As(k, plan.Int(0)), plan.As(val, plan.Col(val)))
	src, err := b.hiddenSource(n, srcSingle, node, nil, []string{k}, x.P)
	if err != nil {
		return nil, err
	}
	if post {
		b.postSubs = append(b.postSubs, src)
	} else {
		b.srcs = append(b.srcs, src)
	}
	return ref, nil
}

// extractScalars replaces every scalar subquery in a top-level conjunct with
// its hidden-source value reference. Scalar subqueries under OR or NOT are
// rejected: the inner join that implements them filters unmatched rows,
// which only coincides with SQL semantics when the comparison is a top-level
// AND conjunct. EXISTS and IN subqueries nested below the conjunct level are
// rejected for the same reason.
func (b *block) extractScalars(c Expr, post bool) (Expr, error) {
	var rec func(e Expr, guarded bool) (Expr, error)
	rec = func(e Expr, guarded bool) (Expr, error) {
		switch x := e.(type) {
		case *SubqueryExpr:
			if guarded {
				return nil, errf(x.P, "scalar subquery is only supported in top-level AND conjuncts")
			}
			return b.addScalar(x, post)
		case *ExistsExpr:
			return nil, errf(x.P, "EXISTS is only supported as a top-level WHERE conjunct")
		case *InSubquery:
			return nil, errf(x.P, "IN (SELECT ...) is only supported as a top-level WHERE conjunct")
		case *BinExpr:
			g := guarded || x.Op == "or"
			l, err := rec(x.L, g)
			if err != nil {
				return nil, err
			}
			r, err := rec(x.R, g)
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: x.Op, L: l, R: r, P: x.P}, nil
		case *NotExpr:
			inner, err := rec(x.E, true)
			if err != nil {
				return nil, err
			}
			return &NotExpr{E: inner, P: x.P}, nil
		case *BetweenExpr:
			ee, err := rec(x.E, guarded)
			if err != nil {
				return nil, err
			}
			lo, err := rec(x.Lo, guarded)
			if err != nil {
				return nil, err
			}
			hi, err := rec(x.Hi, guarded)
			if err != nil {
				return nil, err
			}
			return &BetweenExpr{E: ee, Lo: lo, Hi: hi, P: x.P}, nil
		case *CaseExpr:
			// CASE branches evaluate conditionally: a single-row join cannot
			// model that, so reject subqueries inside them.
			for _, sub := range []Expr{x.When, x.Then, x.Else} {
				if containsSubquery(sub) {
					return nil, errf(x.P, "subqueries inside CASE are not supported")
				}
			}
			return x, nil
		}
		return e, nil
	}
	return rec(c, false)
}

// containsSubquery reports whether any subquery expression occurs in e.
func containsSubquery(e Expr) bool {
	found := false
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *SubqueryExpr, *ExistsExpr, *InSubquery:
			found = true
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *LikeExpr:
			walk(x.E)
		case *SubstrExpr:
			walk(x.E)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *CaseExpr:
			walk(x.When)
			walk(x.Then)
			walk(x.Else)
		}
	}
	walk(e)
	return found
}
