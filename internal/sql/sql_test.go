package sql

import (
	"reflect"
	"strings"
	"testing"

	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

// newEngine starts a 3-node engine with a deterministic sales/regions
// physical design.
func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.New(core.Config{
		Nodes:          []string{"n1", "n2", "n3"},
		ThreadsPerNode: 2,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	salesSchema := vector.Schema{
		{Name: "id", Type: vector.TInt64},
		{Name: "region_id", Type: vector.TInt64},
		{Name: "amount", Type: vector.TFloat64},
		{Name: "sold", Type: vector.TDate},
	}
	if err := e.CreateTable(rewriter.TableInfo{
		Name: "sales", Schema: salesSchema, PartitionKey: "id", Partitions: 6,
	}); err != nil {
		t.Fatal(err)
	}
	sales := vector.NewBatchForSchema(salesSchema, 400)
	for i := 0; i < 400; i++ {
		day := vector.MustDate("2020-01-01") + int32(i%90)
		sales.AppendRow(int64(i), int64(i%4), float64(i%100), day)
	}
	if err := e.Load("sales", []*vector.Batch{sales}); err != nil {
		t.Fatal(err)
	}

	regionSchema := vector.Schema{
		{Name: "rid", Type: vector.TInt64},
		{Name: "region_name", Type: vector.TString},
	}
	if err := e.CreateTable(rewriter.TableInfo{Name: "regions", Schema: regionSchema}); err != nil {
		t.Fatal(err)
	}
	regions := vector.NewBatchForSchema(regionSchema, 4)
	for i, name := range []string{"north", "east", "south", "west"} {
		regions.AppendRow(int64(i), name)
	}
	if err := e.Load("regions", []*vector.Batch{regions}); err != nil {
		t.Fatal(err)
	}
	return e
}

func runSQL(t *testing.T, e *core.Engine, q string) [][]any {
	t.Helper()
	n, err := Compile(q, e)
	if err != nil {
		t.Fatalf("compile %q: %v", q, err)
	}
	rows, err := e.Query(n)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return rows
}

// TestEndToEnd runs SQL text through the whole stack: parse, bind, rewrite,
// distributed execution.
func TestEndToEnd(t *testing.T) {
	e := newEngine(t)

	rows := runSQL(t, e, "select count(*) from sales")
	if len(rows) != 1 || rows[0][0].(int64) != 400 {
		t.Fatalf("count(*) = %v, want 400", rows)
	}

	rows = runSQL(t, e, "select id, amount from sales where amount >= 98 order by id limit 3")
	want := [][]any{{int64(98), 98.0}, {int64(99), 99.0}, {int64(198), 98.0}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("filter+top = %v, want %v", rows, want)
	}

	// Date-range predicate (served with a MinMax skip hint).
	rows = runSQL(t, e,
		"select count(*) as n from sales where sold >= date '2020-01-01' and sold < date '2020-01-01' + interval '1' month")
	wantN := int64(0)
	jan31 := vector.MustDate("2020-01-31")
	for i := 0; i < 400; i++ {
		if vector.MustDate("2020-01-01")+int32(i%90) <= jan31 {
			wantN++
		}
	}
	if rows[0][0].(int64) != wantN {
		t.Fatalf("january rows = %v, want %d", rows[0][0], wantN)
	}

	// Join + group by + order by, validated against a Go-side computation.
	rows = runSQL(t, e, `
		select region_name, sum(amount) as total, count(*) as n
		from sales join regions on region_id = rid
		where amount > 10
		group by region_name
		order by total desc, region_name`)
	type acc struct {
		total float64
		n     int64
	}
	names := []string{"north", "east", "south", "west"}
	byRegion := map[string]*acc{}
	for i := 0; i < 400; i++ {
		amt := float64(i % 100)
		if amt <= 10 {
			continue
		}
		name := names[i%4]
		if byRegion[name] == nil {
			byRegion[name] = &acc{}
		}
		byRegion[name].total += amt
		byRegion[name].n++
	}
	if len(rows) != len(byRegion) {
		t.Fatalf("got %d groups, want %d", len(rows), len(byRegion))
	}
	for _, r := range rows {
		name := r[0].(string)
		if r[1].(float64) != byRegion[name].total || r[2].(int64) != byRegion[name].n {
			t.Fatalf("group %s = %v, want %+v", name, r, byRegion[name])
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].(float64) < rows[i][1].(float64) {
			t.Fatalf("not sorted desc by total: %v", rows)
		}
	}

	// IN over a float column runs as an equality chain.
	rows = runSQL(t, e, "select count(*) as n from sales where amount in (10, 20)")
	if rows[0][0].(int64) != 8 { // amounts cycle 0..99 over 400 rows
		t.Fatalf("IN over float = %v, want 8", rows[0][0])
	}

	// Aggregate-over-aggregate arithmetic in the select list.
	rows = runSQL(t, e, "select sum(amount) / count(*) as mean from sales")
	var sum float64
	for i := 0; i < 400; i++ {
		sum += float64(i % 100)
	}
	if got := rows[0][0].(float64); got != sum/400 {
		t.Fatalf("mean = %v, want %v", got, sum/400)
	}
}

// TestPushdownClassifierEdgeCases locks classifier corners where a wrong
// derived range silently changes results (the Select above the scan is
// elided, so nothing re-filters): equality must not weaken an accumulated
// strict bound at the same value, strict integer bounds must not wrap at
// the int64 extremes, and date literals against float columns must push
// the day number, not zero.
func TestPushdownClassifierEdgeCases(t *testing.T) {
	e := newEngine(t)
	count := func(q string) int64 {
		rows := runSQL(t, e, q)
		return rows[0][0].(int64)
	}
	// amount cycles 0..99 over 400 rows; region names: north/east/south/west.
	if n := count("select count(*) as n from sales where amount > 50.0 and amount = 50.0"); n != 0 {
		t.Fatalf("x > 50 AND x = 50 returned %d rows, want 0 (strict bound weakened by equality)", n)
	}
	if n := count("select count(*) as n from sales where amount = 50.0 and amount > 50.0"); n != 0 {
		t.Fatalf("x = 50 AND x > 50 returned %d rows, want 0", n)
	}
	if n := count("select count(*) as n from regions where region_name > 'north' and region_name = 'north'"); n != 0 {
		t.Fatalf("s > 'north' AND s = 'north' returned %d rows, want 0", n)
	}
	if n := count("select count(*) as n from sales where id > 9223372036854775807"); n != 0 {
		t.Fatalf("id > MaxInt64 returned %d rows, want 0 (strict bound wrapped)", n)
	}
	// Date literal vs float column compares as the day number (interpreter
	// semantics): day('1970-01-11') = 10, amounts 0..99 → 89 per 100 rows.
	if n := count("select count(*) as n from sales where amount > date '1970-01-11'"); n != 4*89 {
		t.Fatalf("amount > date-literal returned %d rows, want %d", n, 4*89)
	}
}

// TestExplainGolden locks the full distributed physical plan of a SQL
// aggregation query (stable: fixed data, fixed config). The WHERE clause is
// fully subsumed by the scan predicate set, so no Select appears above the
// sales scan: the scan filters (and MinMax-skips) the date range itself.
// The ~N rows annotations are the cost model's cardinality estimates; the
// join order the planner picks is auditable from them.
func TestExplainGolden(t *testing.T) {
	e := newEngine(t)
	n, err := Compile(`
		select region_name, sum(amount) as total
		from sales join regions on region_id = rid
		where sold >= date '2020-01-15'
		group by region_name
		order by total desc`, e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Explain(n)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimLeft(`
Sort ~14 rows
  DXchgUnion->n0
    Project[2 exprs] ~14 rows
      Aggr(final)[1 keys,1 aggs]
        DXchgHashSplit
          Aggr(partial)[1 keys,1 aggs]
            HashJoin[0,replicated-build] ~134 rows
              MScan[sales] (partitioned) pred(sold in [18276,max]) ~134 rows
              MScan[regions] (replicated) ~4 rows
`, "\n")
	if got != want {
		t.Fatalf("explain mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainGoldenMultiConjunct locks the plan of a scan-dominated query
// whose WHERE clause mixes pushable conjuncts of three kinds (date range,
// float range, int IN list) with one residual the scan cannot evaluate
// (an arithmetic comparison). The pushable conjuncts land in the scan's
// pred(...) set — every one of them skips blocks and filters rows — while
// the Select above it shrinks to just the residual.
func TestExplainGoldenMultiConjunct(t *testing.T) {
	e := newEngine(t)
	n, err := Compile(`
		select count(*) as n from sales
		where sold >= date '2020-01-15' and sold < date '2020-02-15'
		  and amount >= 10 and amount < 95
		  and id in (1, 2, 3, 500)
		  and amount + 1 > 12`, e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Explain(n)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimLeft(`
Project[1 exprs] ~14 rows
  Aggr(final)[0 keys,1 aggs]
    DXchgUnion->n0
      Aggr(partial)[0 keys,1 aggs]
        Select[(($1 + 1) > 12)] ~134 rows
          MScan[sales] (partitioned) pred(sold in [18276,18306] & amount in [10,95) & id in [1 2 3 500]) ~400 rows
`, "\n")
	if got != want {
		t.Fatalf("explain mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
