package sql

import (
	"strings"
	"testing"

	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// fakeCat is a minimal plan.Catalog for binder tests.
type fakeCat map[string]vector.Schema

func (c fakeCat) TableSchema(name string) (vector.Schema, error) {
	if s, ok := c[name]; ok {
		return s, nil
	}
	return nil, errf(Pos{}, "no table %q", name)
}

func testCat() fakeCat {
	return fakeCat{
		"t": vector.Schema{
			{Name: "id", Type: vector.TInt64},
			{Name: "a", Type: vector.TInt64},
			{Name: "b", Type: vector.TFloat64},
			{Name: "s", Type: vector.TString},
			{Name: "d", Type: vector.TDate},
			{Name: "m", Type: vector.TDecimal},
		},
		"u": vector.Schema{
			{Name: "id", Type: vector.TInt64},
			{Name: "label", Type: vector.TString},
		},
	}
}

// TestLowerErrors locks binder error messages and positions.
func TestLowerErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select a from nosuch", `1:15: unknown table "nosuch"`},
		{"select zzz from t", `1:8: unknown column "zzz"`},
		{"select id from t join u on t.id = u.id", `1:8: ambiguous column "id"`},
		{"select t.zzz from t", `1:8: table "t" has no column "zzz"`},
		{"select q.a from t", `1:8: unknown table alias "q"`},
		{"select a from t where sum(a) > 1", `1:23: aggregate sum() is only allowed in the select list`},
		{"select a from t join u on a > 1", `needs at least one equality condition`},
		{"select a from t group by zzz", `1:26: GROUP BY "zzz" is neither a column nor a select alias`},
		{"select a, b from t group by a", `1:11: column "b" must appear in GROUP BY or inside an aggregate`},
		{"select sum(sum(a)) from t", `1:12: aggregate sum() is only allowed in the select list`},
		{"select a from t join t on t.id = t.id", `1:22: duplicate table alias "t"`},
		{"select * from t group by a", `SELECT * cannot be combined with GROUP BY`},
		{"select a from t order by nope", `1:26: unknown column "nope"`},
		{"select a from t where d >= 'not a date'", `1:25: cannot compare int32:date with string`},
		{"select s + 1 from t", `1:10: operator "+" is not defined on strings`},
		{"select case when a = 1 then s else 2 end from t", `1:8: CASE branches mix string and int64`},
		{"select s from t where s in (1, 2)", `1:25: IN list of integers against string`},
		{"select a from t where a in ('x')", `1:25: IN list of strings against int64`},
		{"select a from t order by 3", `1:26: ORDER BY position 3 is out of range (1..1)`},
		{"select s, count(*) from t group by s order by sum(a)",
			`1:47: aggregate sum(a) in ORDER BY must also appear in the select list`},
		{"select a from t where exists (select * from u)",
			`1:23: EXISTS subquery must be correlated with the outer query (inner_col = outer_col)`},
		{"select exists (select * from u) from t",
			`1:8: EXISTS is only supported as a top-level WHERE conjunct`},
		{"select a from t where a > (select max(id) from u) or b > 1",
			`1:27: scalar subquery is only supported in top-level AND conjuncts`},
		{"select a from t where a in (select id, label from u)",
			`1:25: IN subquery must select exactly one column`},
		{"select a from t where a + 1 in (select id from u)",
			`1:25: IN (SELECT ...) requires a plain column on the left`},
		{"select a from t where a > (select id from u)",
			`1:27: scalar subquery must compute an aggregate`},
		{"select s, count(*) from t group by s having exists (select * from u where id = t.id)",
			`1:45: EXISTS and IN subqueries are not supported in HAVING`},
		{"select a from t having a > 1",
			`1:26: HAVING requires GROUP BY or an aggregate`},
		{"select a from t where s in (select id from u)",
			`subquery column (int64) and outer column s (string) have incompatible types`},
		{"select substring(a from 1 for 2) from t",
			`1:8: SUBSTRING requires a string argument`},
	}
	cat := testCat()
	for _, c := range cases {
		_, err := Compile(c.in, cat)
		if err == nil {
			t.Errorf("Compile(%q): expected error %q, got none", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q)\n got  %v\n want substring %q", c.in, err, c.want)
		}
	}
}

// TestLowerShapes checks the emitted logical plan shapes and output schemas.
func TestLowerShapes(t *testing.T) {
	cat := testCat()

	// Bare star: plain scan of every column, no projection.
	n, err := Compile("select * from t", cat)
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := n.(*plan.ScanNode)
	if !ok {
		t.Fatalf("select * lowered to %T, want *plan.ScanNode", n)
	}
	if len(scan.Cols) != 6 {
		t.Fatalf("star scan has %d cols, want 6", len(scan.Cols))
	}

	// Column pruning: only referenced columns survive into the scan.
	n, err = Compile("select a from t where b > 1.5", cat)
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := n.(*plan.ProjectNode)
	if !ok {
		t.Fatalf("got %T, want projection on top", n)
	}
	filter, ok := proj.Child.(*plan.FilterNode)
	if !ok {
		t.Fatalf("projection child is %T, want *plan.FilterNode", proj.Child)
	}
	scan = filter.Child.(*plan.ScanNode)
	if len(scan.Cols) != 2 { // a and b
		t.Fatalf("pruned scan has cols %v, want [a b]", scan.Cols)
	}

	// Date range predicates produce a scan predicate set on the filter that
	// fully subsumes the WHERE clause (nil residual: the Select above the
	// scan can be elided).
	n, err = Compile(
		"select a from t where d >= date '1994-01-01' and d < date '1995-01-01'", cat)
	if err != nil {
		t.Fatal(err)
	}
	filter = n.(*plan.ProjectNode).Child.(*plan.FilterNode)
	if filter.SkipSet == nil || len(filter.SkipSet.Preds) != 1 {
		t.Fatalf("skip set = %+v, want one conjunct", filter.SkipSet)
	}
	p := filter.SkipSet.Preds[0]
	lo := int64(vector.MustDate("1994-01-01"))
	hi := int64(vector.MustDate("1994-12-31"))
	if p.Col != "d" || p.Op != plan.PredIntRange || p.IntLo != lo || p.IntHi != hi {
		t.Fatalf("derived pred %+v, want d in [%d,%d]", p, lo, hi)
	}
	if filter.SkipSet.SkipOnly {
		t.Fatal("derived set must filter rows, not only skip blocks")
	}
	if filter.Residual != nil {
		t.Fatalf("date range is fully pushable, residual should be nil")
	}

	// Join with mixed ON: equality becomes keys, the rest residual.
	n, err = Compile(
		"select a, label from t join u on t.id = u.id and label <> 'x'", cat)
	if err != nil {
		t.Fatal(err)
	}
	join := n.(*plan.ProjectNode).Child.(*plan.JoinNode)
	if len(join.LeftKeys) != 1 || join.LeftKeys[0] != "id" || join.RightKeys[0] != "id" {
		t.Fatalf("join keys %v=%v, want id=id", join.LeftKeys, join.RightKeys)
	}
	if join.ExtraPred == nil {
		t.Fatal("expected residual join predicate")
	}

	// Aggregation with select-list order == natural output: no projection.
	n, err = Compile(
		"select s, sum(b) as total, count(*) as n from t group by s order by total desc limit 3", cat)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := n.(*plan.OrderByNode)
	if !ok || top.Limit != 3 {
		t.Fatalf("got %T (limit?), want TopN", n)
	}
	agg, ok := top.Child.(*plan.AggregateNode)
	if !ok {
		t.Fatalf("TopN child is %T, want *plan.AggregateNode (no post-projection)", top.Child)
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0] != "s" || len(agg.Aggs) != 2 {
		t.Fatalf("aggregate shape: groupBy=%v aggs=%d", agg.GroupBy, len(agg.Aggs))
	}
	schema, err := n.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s", "total", "n"}
	for i, f := range schema {
		if f.Name != want[i] {
			t.Fatalf("output schema %v, want %v", schema.Names(), want)
		}
	}
	if schema[1].Type != vector.TFloat64 || schema[2].Type != vector.TInt64 {
		t.Fatalf("output types %v/%v, want float64/int64", schema[1].Type, schema[2].Type)
	}

	// GROUP BY on a computed alias inserts a pre-projection.
	n, err = Compile(
		"select year(d) as y, count(*) as n from t group by y", cat)
	if err != nil {
		t.Fatal(err)
	}
	agg = n.(*plan.AggregateNode)
	if _, ok := agg.Child.(*plan.ProjectNode); !ok {
		t.Fatalf("aggregate child is %T, want pre-projection", agg.Child)
	}
	if agg.GroupBy[0] != "y" {
		t.Fatalf("group by %v, want [y]", agg.GroupBy)
	}

	// Qualified refs to a duplicated name: the first occurrence keeps its
	// name, later value-read occurrences get a physical rename (u_id) so
	// both sides stay addressable in the join output.
	if _, err := Compile("select t.id from t join u on t.id = u.id", cat); err != nil {
		t.Fatalf("t.id (first occurrence) should bind: %v", err)
	}
	n, err = Compile("select u.id from t join u on t.id = u.id", cat)
	if err != nil {
		t.Fatalf("u.id should bind via a physical rename: %v", err)
	}
	pr, ok := n.(*plan.ProjectNode)
	if !ok {
		t.Fatalf("top node is %T, want a projection reading the renamed column", n)
	}
	if got := pr.Exprs[0].Expr.Name; got != "u_id" || pr.Exprs[0].Name != "id" {
		t.Fatalf("u.id lowered as %s := Col(%s), want id := Col(u_id)", pr.Exprs[0].Name, got)
	}

	// ORDER BY ordinal selects the n-th output column.
	n, err = Compile("select s, a from t order by 2 desc", cat)
	if err != nil {
		t.Fatal(err)
	}
	ob := n.(*plan.OrderByNode)
	if ob.Keys[0].Expr.Name != "a" || !ob.Keys[0].Desc {
		t.Fatalf("ordinal key = %q desc=%v, want a desc", ob.Keys[0].Expr.Name, ob.Keys[0].Desc)
	}

	// ORDER BY on an unaliased select-list aggregate resolves by text.
	if _, err := Compile("select s, sum(a) from t group by s order by sum(a) desc", cat); err != nil {
		t.Fatalf("order by select-list aggregate: %v", err)
	}

	// IN over a float/decimal subject expands to an equality chain.
	if _, err := Compile("select count(*) from t where m in (10, 20)", cat); err != nil {
		t.Fatalf("IN over decimal: %v", err)
	}

	// Decimal columns: raw when projected bare, scaled inside expressions.
	n, err = Compile("select m, sum(m) as sm from t group by m", cat)
	if err != nil {
		t.Fatal(err)
	}
	schema, err = n.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if schema[0].Type != vector.TDecimal {
		t.Fatalf("bare group decimal type %v, want decimal", schema[0].Type)
	}
	if schema[1].Type != vector.TFloat64 {
		t.Fatalf("sum(decimal) type %v, want float64", schema[1].Type)
	}
}
