package sql

import (
	"math"
	"strings"

	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// deriveSkipSet classifies pushed conjuncts into scan-evaluable per-column
// predicates: literal ranges and equalities over integer, date, decimal,
// float and string columns, IN lists over integers and strings, and prefix
// LIKE patterns as string ranges. It returns the derived set (nil when
// nothing is pushable) and the residual conjuncts the set does not fully
// subsume — an empty residual lets the rewriter elide the Select above the
// scan entirely, because the scan evaluates the whole predicate itself (with
// MinMax block skipping per column kind as a bonus).
func deriveSkipSet(s vector.Schema, conj []Expr) (*plan.ScanPredSet, []Expr) {
	acc := &predAccum{schema: s}
	var residual []Expr
	for _, c := range conj {
		if !acc.classify(c) {
			residual = append(residual, c)
		}
	}
	if len(acc.set.Preds) == 0 {
		return nil, conj
	}
	return &acc.set, residual
}

// colClass buckets a column (or literal) by comparison semantics.
type colClass uint8

const (
	classNone  colClass = iota
	classInt            // plain int32/int64 and dates: compared as int64
	classDec            // decimal storage: compared as float64(v)*scale
	classFloat          // float64
	classStr            // strings
)

// predAccum accumulates classified conjuncts, intersecting range predicates
// on the same column so `d >= lo and d < hi` becomes one ColPred.
type predAccum struct {
	schema vector.Schema
	set    plan.ScanPredSet
}

func (a *predAccum) classOf(e Expr) (string, colClass) {
	c, isCol := e.(*ColRef)
	if !isCol {
		return "", classNone
	}
	i := a.schema.Index(c.Name)
	if i < 0 {
		return "", classNone
	}
	t := a.schema[i].Type
	switch {
	case t.Logical == vector.Decimal:
		return c.Name, classDec
	case t.Kind == vector.Int32 || t.Kind == vector.Int64:
		return c.Name, classInt
	case t.Kind == vector.Float64:
		return c.Name, classFloat
	case t.Kind == vector.String:
		return c.Name, classStr
	}
	return "", classNone
}

// litVal is one classified literal operand.
type litVal struct {
	cls colClass
	i   int64
	f   float64
	s   string
}

func litOf(e Expr) (litVal, bool) {
	switch x := e.(type) {
	case *IntLit:
		return litVal{cls: classInt, i: x.V, f: float64(x.V)}, true
	case *FloatLit:
		return litVal{cls: classFloat, f: x.V}, true
	case *DateLit:
		// f mirrors i: a date literal compared against a float/decimal
		// column (odd but legal) compares as the day number widened to
		// float, exactly what the interpreter does with the int32 const.
		d := int64(vector.AddMonths(vector.MustDate(x.V), x.Months))
		return litVal{cls: classInt, i: d, f: float64(d)}, true
	case *StrLit:
		return litVal{cls: classStr, s: x.V}, true
	}
	return litVal{}, false
}

// classify records conjunct c in the set when it is scan-evaluable,
// reporting whether the set now fully subsumes it. A partially usable
// conjunct (e.g. BETWEEN with only one literal bound, or a prefix LIKE whose
// prefix has no successor) may still contribute skip bounds but reports
// false, keeping itself in the residual.
func (a *predAccum) classify(c Expr) bool {
	switch x := c.(type) {
	case *BinExpr:
		col, cls := a.classOf(x.L)
		lit, okLit := litOf(x.R)
		op := x.Op
		if cls == classNone || !okLit {
			// reversed: literal op column
			if col, cls = a.classOf(x.R); cls == classNone {
				return false
			}
			if lit, okLit = litOf(x.L); !okLit {
				return false
			}
			op = flipCmp(op)
		}
		return a.addCmp(col, cls, op, lit)
	case *BetweenExpr:
		col, cls := a.classOf(x.E)
		if cls == classNone {
			return false
		}
		lo, okLo := litOf(x.Lo)
		hi, okHi := litOf(x.Hi)
		pushedLo := okLo && a.addCmp(col, cls, ">=", lo)
		pushedHi := okHi && a.addCmp(col, cls, "<=", hi)
		return pushedLo && pushedHi
	case *LikeExpr:
		return a.classifyLike(x)
	case *InExpr:
		if x.Not {
			return false
		}
		col, cls := a.classOf(x.E)
		switch {
		case cls == classInt && len(x.Ints) > 0 && len(x.Strs) == 0:
			a.set.Preds = append(a.set.Preds, plan.ColPred{
				Col: col, Op: plan.PredIntIn, Ints: append([]int64(nil), x.Ints...)})
			return true
		case cls == classStr && len(x.Strs) > 0 && len(x.Ints) == 0:
			a.set.Preds = append(a.set.Preds, plan.ColPred{
				Col: col, Op: plan.PredStrIn, Strs: append([]string(nil), x.Strs...)})
			return true
		}
		return false
	}
	return false
}

// classifyLike pushes LIKE patterns the scan can evaluate as string ranges:
// a wildcard-free pattern is an equality, and `prefix%` the half-open range
// [prefix, successor(prefix)) — exactly the rows a byte-wise prefix match
// accepts, so both shapes fully subsume the conjunct. (The expression LIKE
// treats only '%' as a wildcard, which is what makes the equality rewrite
// sound.) An all-0xff prefix has no successor: the lower bound still skips
// blocks, but the conjunct stays residual.
func (a *predAccum) classifyLike(x *LikeExpr) bool {
	if x.Not {
		return false
	}
	col, cls := a.classOf(x.E)
	if cls != classStr {
		return false
	}
	pat := x.Pattern
	if !strings.Contains(pat, "%") {
		return a.addCmp(col, classStr, "=", litVal{cls: classStr, s: pat})
	}
	if strings.Count(pat, "%") != 1 || !strings.HasSuffix(pat, "%") {
		return false
	}
	prefix := strings.TrimSuffix(pat, "%")
	if prefix == "" {
		return true // LIKE '%' accepts every row: nothing to evaluate
	}
	p := a.rangePred(col, plan.PredStrRange)
	if !p.HasStrLo || prefix > p.StrLo {
		p.StrLo, p.HasStrLo, p.LoStrict = prefix, true, false
	}
	succ, ok := prefixSuccessor(prefix)
	if !ok {
		return false
	}
	if !p.HasStrHi || succ < p.StrHi || (succ == p.StrHi && !p.HiStrict) {
		p.StrHi, p.HasStrHi, p.HiStrict = succ, true, true
	}
	return true
}

// prefixSuccessor returns the smallest string greater than every string with
// the given prefix: increment the last non-0xff byte and truncate. ok is
// false when the prefix is all 0xff bytes and no successor exists.
func prefixSuccessor(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

// addCmp folds one comparison into the column's accumulated range.
func (a *predAccum) addCmp(col string, cls colClass, op string, lit litVal) bool {
	switch cls {
	case classInt:
		if lit.cls != classInt {
			return false // int col vs float literal: stays a float compare upstream
		}
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		switch op {
		case ">=":
			lo = lit.i
		case ">":
			if lit.i == math.MaxInt64 {
				lo, hi = math.MaxInt64, math.MinInt64 // v > max: unsatisfiable
			} else {
				lo = lit.i + 1
			}
		case "<=":
			hi = lit.i
		case "<":
			if lit.i == math.MinInt64 {
				lo, hi = math.MaxInt64, math.MinInt64 // v < min: unsatisfiable
			} else {
				hi = lit.i - 1
			}
		case "=":
			lo, hi = lit.i, lit.i
		default:
			return false
		}
		p := a.rangePred(col, plan.PredIntRange)
		if lo > p.IntLo {
			p.IntLo = lo
		}
		if hi < p.IntHi {
			p.IntHi = hi
		}
		return true
	case classDec, classFloat:
		if lit.cls != classInt && lit.cls != classFloat {
			return false
		}
		switch op {
		case ">=", ">", "<=", "<", "=":
		default:
			return false
		}
		predOp := plan.PredDecRange
		if cls == classFloat {
			predOp = plan.PredFloatRange
		}
		p := a.rangePred(col, predOp)
		switch op {
		case ">=", ">":
			if lit.f > p.FloatLo || (lit.f == p.FloatLo && op == ">") {
				p.FloatLo, p.LoStrict = lit.f, op == ">"
			}
		case "<=", "<":
			if lit.f < p.FloatHi || (lit.f == p.FloatHi && op == "<") {
				p.FloatHi, p.HiStrict = lit.f, op == "<"
			}
		case "=":
			// Intersect with [v, v]. A non-strict bound at the same value
			// is WEAKER than an accumulated strict one — keep the strict
			// bound, or `x > 50 AND x = 50` would push the satisfiable
			// [50,50] instead of the empty (50,50].
			if lit.f > p.FloatLo {
				p.FloatLo, p.LoStrict = lit.f, false
			}
			if lit.f < p.FloatHi {
				p.FloatHi, p.HiStrict = lit.f, false
			}
		default:
			return false
		}
		return true
	case classStr:
		if lit.cls != classStr {
			return false
		}
		switch op {
		case ">=", ">", "<=", "<", "=":
		default:
			return false
		}
		p := a.rangePred(col, plan.PredStrRange)
		switch op {
		case ">=", ">":
			if !p.HasStrLo || lit.s > p.StrLo || (lit.s == p.StrLo && op == ">") {
				p.StrLo, p.HasStrLo, p.LoStrict = lit.s, true, op == ">"
			}
		case "<=", "<":
			if !p.HasStrHi || lit.s < p.StrHi || (lit.s == p.StrHi && op == "<") {
				p.StrHi, p.HasStrHi, p.HiStrict = lit.s, true, op == "<"
			}
		case "=":
			// As with floats: never weaken an accumulated strict bound at
			// the same value (`s > 'n' AND s = 'n'` is empty).
			if !p.HasStrLo || lit.s > p.StrLo {
				p.StrLo, p.HasStrLo, p.LoStrict = lit.s, true, false
			}
			if !p.HasStrHi || lit.s < p.StrHi {
				p.StrHi, p.HasStrHi, p.HiStrict = lit.s, true, false
			}
		default:
			return false
		}
		return true
	}
	return false
}

// rangePred returns (creating on demand) the accumulated range predicate of
// the given shape for a column.
func (a *predAccum) rangePred(col string, op plan.PredOp) *plan.ColPred {
	for i := range a.set.Preds {
		if a.set.Preds[i].Col == col && a.set.Preds[i].Op == op {
			return &a.set.Preds[i]
		}
	}
	p := plan.ColPred{Col: col, Op: op}
	switch op {
	case plan.PredIntRange:
		p.IntLo, p.IntHi = math.MinInt64, math.MaxInt64
	case plan.PredDecRange, plan.PredFloatRange:
		p.FloatLo, p.FloatHi = math.Inf(-1), math.Inf(1)
		if op == plan.PredDecRange {
			p.Scale = 0.01
		}
	}
	a.set.Preds = append(a.set.Preds, p)
	return &a.set.Preds[len(a.set.Preds)-1]
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}
