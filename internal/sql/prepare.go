package sql

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Prepared is a parameterized statement template: a lexed statement whose '?'
// tokens are bound per execution. Binding is textual — each parameter value
// is rendered as a SQL literal and spliced into the token stream — so a bound
// statement is ordinary SQL and flows through the normal compile path. The
// rendered text is already in normalized token form, which means every
// execution of the same template with the same parameter values maps to the
// same plan-cache key, and executions with different values share the cache's
// normalization work.
//
// A Prepared is immutable after Prepare and safe for concurrent Bind calls.
type Prepared struct {
	src       string
	toks      []token // without the tEOF sentinel
	paramIdx  []int   // positions in toks that are '?' parameters
	numParams int
	isSelect  bool
}

// Prepare lexes and validates a statement template. Parameter markers ('?')
// may appear anywhere a literal may: comparisons, BETWEEN bounds, LIKE
// patterns, IN lists, DATE literals, INSERT values. Templates without
// parameters in literal-only positions are additionally parsed, so plain
// syntax errors surface at prepare time rather than first execution.
func Prepare(src string) (*Prepared, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	if toks[len(toks)-1].kind == tEOF {
		toks = toks[:len(toks)-1]
	}
	for len(toks) > 0 && toks[len(toks)-1].kind == tSymbol && toks[len(toks)-1].text == ";" {
		toks = toks[:len(toks)-1]
	}
	if len(toks) == 0 {
		return nil, errf(Pos{1, 1}, "empty statement")
	}
	head := toks[0]
	isSelect := head.kind == tKeyword && head.text == "select"
	isDML := head.kind == tKeyword &&
		(head.text == "insert" || head.text == "update" || head.text == "delete")
	if !isSelect && !isDML {
		return nil, errf(head.pos, "expected SELECT, INSERT, UPDATE or DELETE, found %q", head.text)
	}
	p := &Prepared{src: src, toks: toks, isSelect: isSelect}
	depth := 0
	for i, t := range toks {
		if t.kind != tSymbol {
			continue
		}
		switch t.text {
		case "(":
			depth++
		case ")":
			depth--
			if depth < 0 {
				return nil, errf(t.pos, "unbalanced ')'")
			}
		case "?":
			p.paramIdx = append(p.paramIdx, i)
		}
	}
	if depth != 0 {
		return nil, errf(toks[0].pos, "unbalanced '('")
	}
	p.numParams = len(p.paramIdx)
	// Full parse for templates whose parameters all sit in expression
	// positions (the parser accepts '?' there). Templates using '?' in
	// literal-only positions — DATE ?, LIKE ?, IN (?) — fail this parse by
	// construction; their syntax is checked at first execution instead.
	if _, err := ParseStmt(src); err != nil && p.numParams == 0 {
		return nil, err
	}
	return p, nil
}

// NumParams returns the number of '?' markers in the template.
func (p *Prepared) NumParams() int { return p.numParams }

// IsSelect reports whether the template is a SELECT (vs DML).
func (p *Prepared) IsSelect() bool { return p.isSelect }

// Src returns the original template text.
func (p *Prepared) Src() string { return p.src }

// Bind renders the template with the given parameter values spliced in as
// literals, returning normalized single-statement SQL text. Accepted value
// types: integers, float64, json.Number and string (booleans and NULL have
// no literal form in this dialect).
func (p *Prepared) Bind(params []any) (string, error) {
	if len(params) != p.numParams {
		//lint:errpos bind-time error: parameters are client values, there is no source position to point at
		return "", fmt.Errorf("statement wants %d parameters, got %d", p.numParams, len(params))
	}
	var sb strings.Builder
	sb.Grow(len(p.src) + 16*len(params))
	next := 0
	for i, t := range p.toks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if next < len(p.paramIdx) && i == p.paramIdx[next] {
			if err := writeParam(&sb, params[next]); err != nil {
				return "", fmt.Errorf("parameter %d: %w", next+1, err)
			}
			next++
			continue
		}
		writeToken(&sb, t)
	}
	return sb.String(), nil
}

// writeParam renders one bound value as a SQL literal.
func writeParam(sb *strings.Builder, v any) error {
	switch x := v.(type) {
	case string:
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(x, "'", "''"))
		sb.WriteByte('\'')
	case int:
		sb.WriteString(strconv.FormatInt(int64(x), 10))
	case int32:
		sb.WriteString(strconv.FormatInt(int64(x), 10))
	case int64:
		sb.WriteString(strconv.FormatInt(x, 10))
	case float64:
		// 'f' keeps the literal in plain decimal form — the lexer has no
		// exponent notation.
		sb.WriteString(strconv.FormatFloat(x, 'f', -1, 64))
	case json.Number:
		sb.WriteString(x.String())
	default:
		//lint:errpos bind-time error: parameters are client values, there is no source position to point at
		return fmt.Errorf("unsupported parameter type %T", v)
	}
	return nil
}
