package sql

import (
	"vectorh/internal/sql/joinorder"
)

// This file is phase 3 of the multi-phase SELECT planner: stats-driven join
// ordering. Base-table cardinalities come from the catalog's row counts and
// are scaled by per-conjunct selectivities estimated from colstore MinMax
// column ranges (both optional interfaces of the catalog, implemented by
// core.Engine). The ordering itself is joinorder.Greedy; blocks with outer
// joins, derived tables without stats, or a stats-less catalog keep their
// written FROM order, so hand-shaped plans and catalog-less tests are
// unaffected.

// tableStats is the optional row-count interface of the catalog.
type tableStats interface {
	TableRows(table string) (int64, error)
}

// columnStats is the optional MinMax-range interface of the catalog, the
// SQL-layer view of the colstore block summaries (integer-backed kinds:
// int32/int64 and dates).
type columnStats interface {
	ColumnRange(table, col string) (lo, hi int64, ok bool)
}

// defaultSel is the selectivity charged to a pushed conjunct whose shape or
// column kind yields no MinMax estimate (the classic 1/3 guess).
const defaultSel = 1.0 / 3

// estimateRows estimates a base source's output rows after its pushed
// conjuncts, alongside the unfiltered base-table row count. ok is false when
// the catalog has no stats for it.
func (b *block) estimateRows(s *source, pushed []Expr) (rows, base float64, ok bool) {
	if s.table == "" {
		return 0, 0, false
	}
	ts, ok := b.cat.(tableStats)
	if !ok {
		return 0, 0, false
	}
	n, err := ts.TableRows(s.table)
	if err != nil {
		return 0, 0, false
	}
	base = float64(n)
	rows = base
	cs, hasCS := b.cat.(columnStats)
	for _, c := range pushed {
		sel := defaultSel
		if hasCS {
			sel = conjSelectivity(s.table, c, cs)
		}
		rows *= sel
	}
	if rows < 1 {
		rows = 1
	}
	return rows, base, true
}

// conjSelectivity estimates one conjunct's selectivity over its base table,
// from the MinMax range of the referenced column when the conjunct is a
// literal comparison over an integer-backed column (ints and dates), and the
// 1/3 default otherwise. The uniform-distribution overlap fraction mirrors
// what the scan-level MinMax skipping achieves physically.
func conjSelectivity(table string, c Expr, cs columnStats) float64 {
	rangeSel := func(col *ColRef, frac func(lo, hi int64) float64) float64 {
		lo, hi, ok := cs.ColumnRange(table, col.Name)
		if !ok || hi < lo {
			return defaultSel
		}
		f := frac(lo, hi)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	}
	width := func(lo, hi int64) float64 { return float64(hi-lo) + 1 }

	switch x := c.(type) {
	case *BinExpr:
		col, okCol := x.L.(*ColRef)
		lit, okLit := litOf(x.R)
		op := x.Op
		if !okCol || !okLit {
			if col, okCol = x.R.(*ColRef); !okCol {
				return defaultSel
			}
			if lit, okLit = litOf(x.L); !okLit {
				return defaultSel
			}
			op = flipCmp(op)
		}
		if lit.cls != classInt {
			return defaultSel
		}
		switch op {
		case "=":
			return rangeSel(col, func(lo, hi int64) float64 { return 1 / width(lo, hi) })
		case "<":
			return rangeSel(col, func(lo, hi int64) float64 { return float64(lit.i-lo) / width(lo, hi) })
		case "<=":
			return rangeSel(col, func(lo, hi int64) float64 { return float64(lit.i-lo+1) / width(lo, hi) })
		case ">":
			return rangeSel(col, func(lo, hi int64) float64 { return float64(hi-lit.i) / width(lo, hi) })
		case ">=":
			return rangeSel(col, func(lo, hi int64) float64 { return float64(hi-lit.i+1) / width(lo, hi) })
		}
		return defaultSel
	case *BetweenExpr:
		col, okCol := x.E.(*ColRef)
		lo, okLo := litOf(x.Lo)
		hi, okHi := litOf(x.Hi)
		if !okCol || !okLo || !okHi || lo.cls != classInt || hi.cls != classInt {
			return defaultSel
		}
		return rangeSel(col, func(clo, chi int64) float64 {
			a, z := lo.i, hi.i
			if a < clo {
				a = clo
			}
			if z > chi {
				z = chi
			}
			return (float64(z-a) + 1) / width(clo, chi)
		})
	case *InExpr:
		if x.Not {
			return defaultSel
		}
		col, okCol := x.E.(*ColRef)
		if !okCol || len(x.Ints) == 0 {
			return defaultSel
		}
		return rangeSel(col, func(lo, hi int64) float64 {
			return float64(len(x.Ints)) / width(lo, hi)
		})
	}
	return defaultSel
}

// distinctEst estimates the distinct values of a join-key column: the
// column's MinMax width when the catalog has an integer range for it, capped
// by the source's base-table rows (a relation cannot hold more distinct keys
// than rows). Without a range the estimate is the base row count itself —
// the FK-side assumption that every row carries a distinct key, which keeps
// high-distinct FK edges preferred over low-distinct ones like nationkey.
func (b *block) distinctEst(s *source, col string, base float64) float64 {
	v := base
	if cs, ok := b.cat.(columnStats); ok && s.table != "" {
		if lo, hi, ok2 := cs.ColumnRange(s.table, col); ok2 && hi >= lo {
			if w := float64(hi-lo) + 1; w < v {
				v = w
			}
		}
	}
	if v < 1 {
		v = 1
	}
	return v
}

// orderSources decides the join order of the block's visible sources. The
// greedy search applies only when no source is outer-joined and every
// visible source is a base table with catalog row counts; otherwise (and for
// a disconnected join graph) the written FROM order stands. pushed holds the
// per-source single-table conjuncts for selectivity scaling; the estimate is
// recorded on each source for EXPLAIN either way.
func (b *block) orderSources(pushed map[*source][]Expr) []int {
	var vis []int
	for i, s := range b.srcs {
		if !s.hidden {
			vis = append(vis, i)
		}
	}
	fromOrder := append([]int(nil), vis...)
	ordered := true
	rels := make([]joinorder.Rel, len(vis))
	baseRows := make(map[*source]float64, len(vis))
	for k, i := range vis {
		s := b.srcs[i]
		rows, base, ok := b.estimateRows(s, pushed[s])
		s.rows = rows
		baseRows[s] = base
		if !ok || s.kind == srcLeftOuter {
			ordered = false
		}
		rels[k] = joinorder.Rel{Rows: rows, Base: base}
	}
	if !ordered || len(vis) < 2 {
		return fromOrder
	}

	// Join edges from the pooled ON equality conjuncts, each carrying the
	// distinct-value estimate of its key on both sides (MinMax width capped
	// by the side's base rows) so Greedy can cost the join output.
	idx := make(map[*source]int, len(vis))
	for k, i := range vis {
		idx[b.srcs[i]] = k
	}
	var edges []joinorder.Edge
	for _, i := range vis {
		s := b.srcs[i]
		if s.on == nil {
			continue
		}
		for _, c := range splitAnd(s.on) {
			be, ok := c.(*BinExpr)
			if !ok || be.Op != "=" {
				continue
			}
			lc, lok := be.L.(*ColRef)
			rc, rok := be.R.(*ColRef)
			if !lok || !rok {
				continue
			}
			ls, _, lerr := b.resolve(lc)
			rs, _, rerr := b.resolve(rc)
			if lerr != nil || rerr != nil || ls == rs {
				continue
			}
			li, lok2 := idx[ls]
			ri, rok2 := idx[rs]
			if lok2 && rok2 {
				edges = append(edges, joinorder.Edge{
					A: li, B: ri,
					DistA: b.distinctEst(ls, lc.Name, baseRows[ls]),
					DistB: b.distinctEst(rs, rc.Name, baseRows[rs]),
				})
			}
		}
	}
	greedy := joinorder.Greedy(rels, edges)
	if greedy == nil {
		return fromOrder
	}
	out := make([]int, len(greedy))
	for k, g := range greedy {
		out[k] = vis[g]
	}
	return out
}
