// Package joinorder implements the join-order search of the SQL planner: a
// stats-driven greedy ordering over the join graph of one SELECT block.
// Relations carry estimated output cardinalities (catalog row counts scaled
// by per-conjunct selectivities, derived upstream from colstore MinMax
// ranges); edges are the equality conjuncts of the ON conditions, each with
// an estimated distinct-value count per side (MinMax width capped by the
// relation's base rows). The search emits a left-deep join order that starts
// from the largest relation — the fact table stays on the probe side, as in
// the hand-written TPC-H plans — and repeatedly joins the relation that
// minimizes the estimated intermediate cardinality, the classic greedy
// heuristic Vectorwise-lineage systems fall back on when DP is not
// warranted. Minimizing the intermediate (rather than picking the smallest
// relation) is what keeps low-distinct edges like nationkey from being used
// as the join key while the high-distinct FK edge is still outside the tree:
// on Q05, joining customer to a lineitem×supplier tree through nationkey
// alone would fan out ~60×.
package joinorder

// Rel is one relation (FROM source): Rows is its estimated output after
// local predicates, Base its unfiltered base-table row count. Base bounds
// the joint key domain of a join against the relation — a composite key
// like partsupp's (partkey, suppkey) has far fewer real combinations than
// the product of the column widths suggests.
type Rel struct {
	Rows float64
	Base float64
}

// Edge is an undirected equality join edge between two relations, by index.
// DistA/DistB estimate the distinct join-key values on each side: the
// column's MinMax width capped by the relation's base rows. Zero or
// negative distincts are treated as 1 (no reduction assumed).
type Edge struct {
	A, B         int
	DistA, DistB float64
}

// Greedy returns a left-deep join order over rels: the largest relation
// first, then repeatedly the relation whose join against the tree so far
// has the smallest estimated output cardinality under a containment model:
//
//	out = treeRows × candRows / D
//
// where D is the joint key domain of the connecting edges — the product of
// the per-side distinct estimates, capped by the tree's rows and the
// candidate's base rows. Capping by base rows keeps composite keys honest
// (Q09: partkey×suppkey into partsupp is 200k combinations on paper but
// only 8k exist, so the join does not reduce the tree at all), while a
// genuinely low-distinct edge like Q05's nationkey yields a small D and a
// correctly penalized fan-out. Ties break toward the lower index, which
// keeps the order deterministic and biased to the written FROM order. It
// returns nil when the join graph is disconnected (the caller falls back to
// FROM order).
func Greedy(rels []Rel, edges []Edge) []int {
	n := len(rels)
	if n == 0 {
		return nil
	}
	start := 0
	for i := 1; i < n; i++ {
		if rels[i].Rows > rels[start].Rows {
			start = i
		}
	}
	order := make([]int, 0, n)
	inTree := make([]bool, n)
	order = append(order, start)
	inTree[start] = true
	treeRows := rels[start].Rows
	for len(order) < n {
		best, bestRows := -1, 0.0
		for cand := 0; cand < n; cand++ {
			if inTree[cand] {
				continue
			}
			// All edges between the tree and the candidate form one joint
			// key: composite keys (Q09's partkey+suppkey into partsupp)
			// and multi-edge attachments (Q05's custkey+nationkey once
			// orders is in the tree) are costed together.
			connected := false
			domTree, domCand := 1.0, 1.0
			for _, e := range edges {
				if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n || e.A == e.B {
					continue
				}
				var dTree, dCand float64
				switch {
				case e.A == cand && inTree[e.B]:
					dTree, dCand = e.DistB, e.DistA
				case e.B == cand && inTree[e.A]:
					dTree, dCand = e.DistA, e.DistB
				default:
					continue
				}
				connected = true
				domTree *= maxf(dTree, 1)
				domCand *= maxf(dCand, 1)
			}
			if !connected {
				continue
			}
			base := maxf(maxf(rels[cand].Base, rels[cand].Rows), 1)
			d := maxf(minf(minf(domTree, domCand), minf(treeRows, base)), 1)
			out := treeRows * rels[cand].Rows / d
			if best < 0 || out < bestRows {
				best, bestRows = cand, out
			}
		}
		if best < 0 {
			return nil // disconnected join graph
		}
		order = append(order, best)
		inTree[best] = true
		treeRows = bestRows
		if treeRows < 1 {
			treeRows = 1
		}
	}
	return order
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
