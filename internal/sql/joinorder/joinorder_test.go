package joinorder

import "testing"

func TestGreedyPrefersFilteredDimOverCompositeFK(t *testing.T) {
	// Q09 shape: lineitem(0), part filtered by LIKE to ~667 of 2000 rows(1),
	// partsupp(2), supplier(3). The composite partkey+suppkey edge into
	// partsupp spans 200k combinations on paper but only 8k exist (its base
	// rows), so that join must cost as a no-op (out = tree rows) while the
	// filtered part join reduces the tree — part joins first.
	rels := []Rel{
		{Rows: 60000, Base: 60000},
		{Rows: 667, Base: 2000},
		{Rows: 8000, Base: 8000},
		{Rows: 100, Base: 100},
	}
	edges := []Edge{
		{A: 0, B: 1, DistA: 2000, DistB: 2000}, // l_partkey = p_partkey
		{A: 0, B: 2, DistA: 2000, DistB: 2000}, // l_partkey = ps_partkey
		{A: 0, B: 2, DistA: 100, DistB: 100},   // l_suppkey = ps_suppkey
		{A: 2, B: 3, DistA: 100, DistB: 100},   // ps_suppkey = s_suppkey
	}
	got := Greedy(rels, edges)
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("order = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestGreedyAvoidsLowDistinctFanOut(t *testing.T) {
	// lineitem(0), supplier(1), customer(2), nation(3): customer touches
	// the tree only through the 25-distinct nationkey edge to supplier, so
	// joining it fans out ~60× — everything else joins first.
	rels := []Rel{
		{Rows: 60000, Base: 60000},
		{Rows: 100, Base: 100},
		{Rows: 1500, Base: 1500},
		{Rows: 25, Base: 25},
	}
	edges := []Edge{
		{A: 0, B: 1, DistA: 100, DistB: 100}, // l_suppkey = s_suppkey
		{A: 2, B: 1, DistA: 25, DistB: 25},   // c_nationkey = s_nationkey
		{A: 1, B: 3, DistA: 25, DistB: 25},   // s_nationkey = n_nationkey
	}
	got := Greedy(rels, edges)
	want := []int{0, 1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestGreedyStartsAtLargestAndReducesEarly(t *testing.T) {
	// Q05 shape: lineitem(0), supplier(1), customer(2), orders filtered by
	// a date range to a third of its base(3), nation(4). The filtered
	// orders join is the only one that shrinks the tree, so it goes first;
	// the remaining ties resolve toward the written FROM order.
	rels := []Rel{
		{Rows: 60000, Base: 60000},
		{Rows: 100, Base: 100},
		{Rows: 1500, Base: 1500},
		{Rows: 5000, Base: 15000},
		{Rows: 25, Base: 25},
	}
	edges := []Edge{
		{A: 0, B: 1, DistA: 100, DistB: 100},     // l_suppkey = s_suppkey
		{A: 0, B: 3, DistA: 60000, DistB: 15000}, // l_orderkey = o_orderkey
		{A: 2, B: 3, DistA: 1500, DistB: 1500},   // c_custkey = o_custkey
		{A: 2, B: 1, DistA: 25, DistB: 25},       // c_nationkey = s_nationkey
		{A: 1, B: 4, DistA: 25, DistB: 25},       // s_nationkey = n_nationkey
	}
	got := Greedy(rels, edges)
	want := []int{0, 3, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestGreedyTieBreaksByIndex(t *testing.T) {
	rels := []Rel{{Rows: 10}, {Rows: 5}, {Rows: 5}}
	edges := []Edge{{A: 0, B: 1}, {A: 0, B: 2}}
	got := Greedy(rels, edges)
	if got[1] != 1 || got[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", got)
	}
}

func TestGreedyDisconnected(t *testing.T) {
	rels := []Rel{{Rows: 10}, {Rows: 5}, {Rows: 1}}
	edges := []Edge{{A: 0, B: 1}} // rel 2 has no join condition
	if got := Greedy(rels, edges); got != nil {
		t.Fatalf("expected nil for a disconnected graph, got %v", got)
	}
}

func TestGreedySingleAndEmpty(t *testing.T) {
	if got := Greedy([]Rel{{Rows: 7}}, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single rel: %v", got)
	}
	if got := Greedy(nil, nil); got != nil {
		t.Fatalf("empty: %v", got)
	}
}
