package sql

import (
	"reflect"
	"strings"
	"testing"

	"vectorh/internal/vector"
)

// TestParseDMLGolden locks the parse of DML statements via the canonical
// AST rendering.
func TestParseDMLGolden(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"INSERT INTO t (id, a) VALUES (1, 2), (3, 4);",
			"insert into t (id, a) values (1, 2), (3, 4)",
		},
		{
			"insert into t values (1, 2, 3.5, 'x', date '1994-01-01', 7)",
			"insert into t values (1, 2, 3.5, 'x', date '1994-01-01', 7)",
		},
		{
			"UPDATE t SET a = a + 1, s = 'it''s' WHERE id BETWEEN 3 AND 9",
			"update t set a = (a + 1), s = 'it''s' where (id between 3 and 9)",
		},
		{
			"update t set b = 2.5",
			"update t set b = 2.5",
		},
		{
			"DELETE FROM t WHERE id IN (1, 2, 3)",
			"delete from t where (id in (1, 2, 3))",
		},
		{
			"delete from t",
			"delete from t",
		},
	}
	for _, c := range cases {
		stmt, err := ParseStmt(c.in)
		if err != nil {
			t.Errorf("ParseStmt(%q): %v", c.in, err)
			continue
		}
		if got := stmt.String(); got != c.want {
			t.Errorf("ParseStmt(%q)\n got  %s\n want %s", c.in, got, c.want)
		}
	}
}

// TestDMLParseErrors locks DML parser error messages and positions.
func TestDMLParseErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"insert t values (1)", `1:8: expected "into"`},
		{"insert into t (1) values (2)", `1:16: expected column name`},
		{"insert into t values 1", `1:22: expected "("`},
		{"update t a = 1", `1:10: expected "set"`},
		{"update t set = 1", `1:14: expected column name`},
		{"update t set a 1", `1:16: expected "="`},
		{"delete t where a = 1", `1:8: expected "from"`},
		{"drop table t", `1:1: expected SELECT, INSERT, UPDATE or DELETE, found "drop"`},
		{"insert into t values (1); garbage", `unexpected`},
	}
	for _, c := range cases {
		_, err := ParseStmt(c.in)
		if err == nil {
			t.Errorf("ParseStmt(%q): expected error %q, got none", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseStmt(%q)\n got  %v\n want substring %q", c.in, err, c.want)
		}
	}
}

// TestDMLBindErrors locks DML binder error messages and positions — bad
// column names and type mismatches are rejected at bind time with line:col,
// like SELECT.
func TestDMLBindErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		// INSERT shape and types.
		{"insert into nosuch values (1)", `1:13: unknown table "nosuch"`},
		{"insert into t (id, zzz) values (1, 2)", `1:20: table "t" has no column "zzz"`},
		{"insert into t (id, id) values (1, 2)", `1:20: duplicate column "id"`},
		{"insert into t (id) values (1)", `1:13: INSERT into "t" must list every column (missing "a"`},
		{"insert into t values (1, 2, 3.5, 'x', date '1994-01-01')",
			`1:23: VALUES row 1 has 5 values, want 6`},
		{"insert into t values (1, 'x', 3.5, 'x', date '1994-01-01', 7)",
			`1:26: column "a" (int64) cannot take value 'x'`},
		{"insert into t values (1, 2, 3.5, 4, date '1994-01-01', 7)",
			`1:34: column "s" (string) cannot take value 4`},
		{"insert into t values (1, 2, 3.5, 'x', 'not a date', 7)",
			`1:39: bad date literal "not a date" for column "d"`},
		{"insert into t values (1, 2, 3.5, 'x', date '1994-01-01', 'x')",
			`1:58: column "m" (int64:decimal) cannot take value 'x'`},
		{"insert into t values (1, 2, 3.5, 'x', date '1994-01-01', 184467440737095517)",
			`1:58: value 184467440737095517 overflows decimal column "m"`},
		{"insert into t values (1, 2, 3.5, 'x', date '1994-01-01', a)",
			`1:58: column "m" (int64:decimal) cannot take value a`},
		// UPDATE SET lists.
		{"update nosuch set a = 1", `1:8: unknown table "nosuch"`},
		{"update t set zzz = 1", `1:14: table "t" has no column "zzz"`},
		{"update t set a = 1, a = 2", `1:21: column "a" assigned twice`},
		{"update t set a = 'x'", `1:18: cannot assign string to column "a" (int64)`},
		{"update t set s = 1", `1:18: cannot assign int64 to column "s" (string)`},
		{"update t set d = 5", `1:18: cannot assign int64 to column "d" (int32:date)`},
		{"update t set m = 'x'", `1:18: cannot assign string to column "m" (int64:decimal)`},
		{"update t set a = sum(a)", `1:18: aggregate sum() is not allowed in INSERT/UPDATE/DELETE`},
		{"update t set a = zzz", `1:18: unknown column "zzz"`},
		{"update t set a = 1 where zzz = 1", `1:26: unknown column "zzz"`},
		// DELETE predicates.
		{"delete from nosuch", `1:13: unknown table "nosuch"`},
		{"delete from t where zzz = 1", `1:21: unknown column "zzz"`},
		{"delete from t where count(*) > 1", `1:21: aggregate count() is not allowed in INSERT/UPDATE/DELETE`},
		// SELECT through the DML entry point.
		{"select a from t", `SELECT is a query`},
	}
	cat := testCat()
	for _, c := range cases {
		_, err := CompileDML(c.in, cat)
		if err == nil {
			t.Errorf("CompileDML(%q): expected error %q, got none", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("CompileDML(%q)\n got  %v\n want substring %q", c.in, err, c.want)
		}
	}
}

// TestLowerInsertValues checks literal-to-physical conversion: dates become
// day numbers, decimals scale to int64, int32 columns narrow with range
// checks.
func TestLowerInsertValues(t *testing.T) {
	cat := testCat()
	d, err := CompileDML(
		"insert into t values (1, -2, 3.5, 'x', date '1994-01-01' + interval '1' month, 17.5), "+
			"(2, 7, 4, 'y', '1994-03-01', 5)", cat)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DMLInsert || d.Table != "t" || d.Insert.Len() != 2 {
		t.Fatalf("unexpected DML: %+v", d)
	}
	want0 := []any{int64(1), int64(-2), 3.5, "x", vector.MustDate("1994-02-01"), int64(1750)}
	if got := d.Insert.Row(0); !reflect.DeepEqual(got, want0) {
		t.Errorf("row 0: got %v want %v", got, want0)
	}
	want1 := []any{int64(2), int64(7), 4.0, "y", vector.MustDate("1994-03-01"), int64(500)}
	if got := d.Insert.Row(1); !reflect.DeepEqual(got, want1) {
		t.Errorf("row 1: got %v want %v", got, want1)
	}

	// Reordered explicit column list lands values in schema order.
	d, err = CompileDML("insert into t (m, s, d, b, a, id) values (1, 'z', '1994-01-01', 0.5, 4, 9)", cat)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{int64(9), int64(4), 0.5, "z", vector.MustDate("1994-01-01"), int64(100)}
	if got := d.Insert.Row(0); !reflect.DeepEqual(got, want) {
		t.Errorf("reordered row: got %v want %v", got, want)
	}
}

// TestSplitStatements checks script splitting around strings and comments.
func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"select 1 from t", []string{"select 1 from t"}},
		{"insert into t values (1); delete from t", []string{"insert into t values (1)", " delete from t"}},
		{"select ';' from t; select 2 from t;", []string{"select ';' from t", " select 2 from t"}},
		{"select 'it''s; fine' from t", []string{"select 'it''s; fine' from t"}},
		{"-- a; comment\nselect 1 from t; ; ;", []string{"-- a; comment\nselect 1 from t"}},
		{"select 1 from t; -- done", []string{"select 1 from t"}},
		{"delete from t; -- first\n-- second", []string{"delete from t"}},
		{"  ;  ", nil},
	}
	for _, c := range cases {
		got := SplitStatements(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitStatements(%q)\n got  %q\n want %q", c.in, got, c.want)
		}
	}
}
