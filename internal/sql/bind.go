package sql

import (
	"vectorh/internal/obs"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// This file is phase 1 of the multi-phase SELECT planner: binding. A block is
// the planning scope of one SELECT; binding resolves every FROM entry (base
// table, derived table) and every column reference against it, recording
// per-source column usage. Phase 2 (decorrelate.go) turns subquery
// predicates into hidden sources, phase 3 (stats.go) orders the join tree by
// estimated cardinality, and phase 4 (lower.go) emits plan.Node operators.

// srcKind classifies how a source joins into its block's plan.
type srcKind uint8

const (
	srcInner     srcKind = iota // plain FROM entry / inner join
	srcLeftOuter                // right side of a LEFT [OUTER] JOIN
	srcSemi                     // decorrelated EXISTS / IN (SELECT ...)
	srcAnti                     // decorrelated NOT EXISTS / NOT IN (SELECT ...)
	srcSingle                   // decorrelated scalar subquery (single-row join)
)

// source is one relation feeding a SELECT block: a base table, a derived
// table, or a hidden source produced by decorrelating a subquery predicate.
type source struct {
	alias  string
	table  string        // base table name; "" for derived and hidden sources
	sub    plan.Node     // lowered plan for derived and hidden sources
	schema vector.Schema // base table schema, or the sub plan's output schema
	kind   srcKind
	on     Expr // ON condition from the FROM clause (nil for the first entry)
	pos    Pos
	hidden bool // invisible to user name resolution (decorrelated subquery)

	used    map[string]bool // columns referenced anywhere (scan pruning)
	valUsed map[string]bool // columns referenced outside pure join-key equalities

	// Decorrelation attachment (hidden sources only): each left key is an
	// outer-block column reference, each right key an output column of sub.
	// Empty leftKeys marks an uncorrelated scalar joined on a constant key.
	leftKeys  []*ColRef
	rightKeys []string

	phys map[string]string // output renames (original -> physical name)
	rows float64           // estimated output rows after pushed predicates
}

// outCol returns the physical (possibly renamed) output name of a column.
func (s *source) outCol(name string) string {
	if p, ok := s.phys[name]; ok {
		return p
	}
	return name
}

// block is the per-SELECT planning scope.
type block struct {
	cat     plan.Catalog
	stmt    *SelectStmt
	outer   *block // enclosing block for correlated subqueries; nil at top level
	srcs    []*source
	nHidden *int // shared hidden-source counter (unique names across the query)

	// postSubs holds uncorrelated scalar subqueries referenced from HAVING;
	// they join in above the aggregation rather than below it.
	postSubs []*source

	// tr receives bind/decorrelate/joinorder phase spans. It is set only on
	// the top-level block of a traced compile — sub-blocks leave it nil so
	// their time folds into whichever top-level phase invoked them instead
	// of being counted twice.
	tr *obs.Trace
}

// newBlock binds the FROM clause of stmt: base tables resolve against the
// catalog, derived tables lower recursively (they cannot see the enclosing
// scope — no LATERAL).
func newBlock(stmt *SelectStmt, cat plan.Catalog, outer *block) (*block, error) {
	b := &block{cat: cat, stmt: stmt, outer: outer}
	if outer != nil {
		b.nHidden = outer.nHidden
	} else {
		b.nHidden = new(int)
	}
	for _, f := range stmt.From {
		for _, s := range b.srcs {
			if s.alias == f.Alias {
				return nil, errf(f.Pos, "duplicate table alias %q", f.Alias)
			}
		}
		src := &source{
			alias: f.Alias, table: f.Table, on: f.On, pos: f.Pos,
			used: make(map[string]bool), valUsed: make(map[string]bool),
		}
		if f.Left {
			src.kind = srcLeftOuter
		}
		if f.Sub != nil {
			sb, err := newBlock(f.Sub, cat, nil)
			if err != nil {
				return nil, err
			}
			node, err := sb.lower()
			if err != nil {
				return nil, err
			}
			schema, err := node.Schema(cat)
			if err != nil {
				return nil, err
			}
			src.table, src.sub, src.schema = "", node, schema
			// A derived table emits every one of its output columns whether
			// or not the outer block reads them, so they all take part in
			// duplicate-name resolution (and rename like any read column).
			for _, fld := range schema {
				src.used[fld.Name] = true
				src.valUsed[fld.Name] = true
			}
		} else {
			schema, err := cat.TableSchema(f.Table)
			if err != nil {
				return nil, errf(f.Pos, "unknown table %q", f.Table)
			}
			src.schema = schema
		}
		b.srcs = append(b.srcs, src)
	}
	return b, nil
}

// resolve finds the visible source owning a column reference.
func (b *block) resolve(c *ColRef) (*source, vector.Field, error) {
	if c.Table != "" {
		for _, s := range b.srcs {
			if s.hidden || s.alias != c.Table {
				continue
			}
			f, err := s.schema.Field(c.Name)
			if err != nil {
				return nil, vector.Field{}, errf(c.P, "table %q has no column %q", c.Table, c.Name)
			}
			return s, f, nil
		}
		return nil, vector.Field{}, errf(c.P, "unknown table alias %q", c.Table)
	}
	var found *source
	var field vector.Field
	for _, s := range b.srcs {
		if s.hidden {
			continue
		}
		if j := s.schema.Index(c.Name); j >= 0 {
			if found != nil {
				return nil, vector.Field{}, errf(c.P, "ambiguous column %q (in %s and %s)",
					c.Name, found.alias, s.alias)
			}
			found, field = s, s.schema[j]
		}
	}
	if found == nil {
		return nil, vector.Field{}, errf(c.P, "unknown column %q", c.Name)
	}
	return found, field, nil
}

// resolveAny is resolve extended to the hidden decorrelated sources, whose
// generated column names (__kN, __sqN) are unique by construction. It backs
// conjunct classification and physical-name rewriting after decorrelation.
func (b *block) resolveAny(c *ColRef) (*source, vector.Field, error) {
	if s, f, err := b.resolve(c); err == nil {
		return s, f, nil
	} else if c.Table != "" {
		return nil, vector.Field{}, err
	}
	for _, s := range b.srcs {
		if !s.hidden {
			continue
		}
		if j := s.schema.Index(c.Name); j >= 0 {
			return s, s.schema[j], nil
		}
	}
	return nil, vector.Field{}, errf(c.P, "unknown column %q", c.Name)
}

// probes reports whether a reference resolves in this block without raising
// the resolution error (used to classify correlated references).
func (b *block) probes(c *ColRef) bool {
	_, _, err := b.resolve(c)
	return err == nil
}

// bindUse resolves every column reference in e, marking value usage.
// Subquery expressions are skipped — they bind inside their own block during
// decorrelation. When allowAggs is false, aggregate calls are rejected.
func (b *block) bindUse(e Expr, allowAggs bool) error {
	switch x := e.(type) {
	case *ColRef:
		s, f, err := b.resolve(x)
		if err != nil {
			return err
		}
		s.used[f.Name] = true
		s.valUsed[f.Name] = true
	case *BinExpr:
		if err := b.bindUse(x.L, allowAggs); err != nil {
			return err
		}
		return b.bindUse(x.R, allowAggs)
	case *NotExpr:
		return b.bindUse(x.E, allowAggs)
	case *FuncCall:
		if aggFuncs[x.Name] {
			if !allowAggs {
				return errf(x.P, "aggregate %s() is only allowed in the select list", x.Name)
			}
			if x.Arg != nil {
				// no nested aggregates inside an aggregate argument
				return b.bindUse(x.Arg, false)
			}
			return nil
		}
		if x.Arg != nil {
			return b.bindUse(x.Arg, allowAggs)
		}
	case *LikeExpr:
		return b.bindUse(x.E, allowAggs)
	case *InExpr:
		return b.bindUse(x.E, allowAggs)
	case *SubstrExpr:
		return b.bindUse(x.E, allowAggs)
	case *BetweenExpr:
		if err := b.bindUse(x.E, allowAggs); err != nil {
			return err
		}
		if err := b.bindUse(x.Lo, allowAggs); err != nil {
			return err
		}
		return b.bindUse(x.Hi, allowAggs)
	case *CaseExpr:
		if err := b.bindUse(x.When, allowAggs); err != nil {
			return err
		}
		if err := b.bindUse(x.Then, allowAggs); err != nil {
			return err
		}
		return b.bindUse(x.Else, allowAggs)
	case *InSubquery:
		return b.bindUse(x.E, allowAggs)
	case *ExistsExpr, *SubqueryExpr:
		// bound in their own block during decorrelation
	}
	return nil
}

// bindOnUse resolves an ON condition. Conjuncts shaped like prospective join
// keys (col = col across two sources) mark key-only usage — they bind
// against each join side's own schema, so duplicate-name renaming does not
// apply to them.
func (b *block) bindOnUse(on Expr) error {
	for _, c := range splitAnd(on) {
		if be, ok := c.(*BinExpr); ok && be.Op == "=" {
			lc, lok := be.L.(*ColRef)
			rc, rok := be.R.(*ColRef)
			if lok && rok {
				ls, lf, lerr := b.resolve(lc)
				rs, rf, rerr := b.resolve(rc)
				if lerr == nil && rerr == nil && ls != rs {
					ls.used[lf.Name] = true
					rs.used[rf.Name] = true
					continue
				}
			}
		}
		if err := b.bindUse(c, false); err != nil {
			return err
		}
	}
	return nil
}

// srcsOf returns the set of sources an expression references, including the
// hidden ones; subquery expressions contribute nothing (their references
// live in their own block).
func (b *block) srcsOf(e Expr) map[*source]bool {
	out := make(map[*source]bool)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColRef:
			if s, _, err := b.resolveAny(x); err == nil {
				out[s] = true
			}
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *LikeExpr:
			walk(x.E)
		case *InExpr:
			walk(x.E)
		case *SubstrExpr:
			walk(x.E)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *CaseExpr:
			walk(x.When)
			walk(x.Then)
			walk(x.Else)
		case *InSubquery:
			walk(x.E)
		}
	}
	walk(e)
	return out
}

// assignPhys gives duplicate value-used column names unique physical names
// ("alias_col") so the joined output resolves every reference by bare name.
// The first source (in join order) owning a name keeps it; later sources are
// renamed only when the column's value is actually read — pure join-key
// duplicates keep their names, since keys bind against each side's own
// schema and the duplicate is never referenced from the joined output.
func (b *block) assignPhys(order []int) {
	taken := make(map[string]bool)
	for _, i := range order {
		s := b.srcs[i]
		s.phys = make(map[string]string)
		for _, f := range s.schema {
			if !s.used[f.Name] {
				continue
			}
			if taken[f.Name] && s.valUsed[f.Name] {
				name := s.alias + "_" + f.Name
				for taken[name] {
					name += "_"
				}
				s.phys[f.Name] = name
				taken[name] = true
				continue
			}
			taken[f.Name] = true
		}
	}
}

// rewriteRefs rewrites every column reference in e to its bare physical name
// in the joined output. Subquery expressions must have been decorrelated
// away before this runs; unresolvable references are left as-is for the
// expression lowering to report against the concrete schema.
func (b *block) rewriteRefs(e Expr) Expr {
	switch x := e.(type) {
	case *ColRef:
		if s, f, err := b.resolveAny(x); err == nil {
			return &ColRef{Name: s.outCol(f.Name), P: x.P}
		}
		if x.Table != "" {
			return &ColRef{Name: x.Name, P: x.P}
		}
		return x
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: b.rewriteRefs(x.L), R: b.rewriteRefs(x.R), P: x.P}
	case *NotExpr:
		return &NotExpr{E: b.rewriteRefs(x.E), P: x.P}
	case *FuncCall:
		if x.Arg == nil {
			return x
		}
		return &FuncCall{Name: x.Name, Arg: b.rewriteRefs(x.Arg), Star: x.Star,
			Distinct: x.Distinct, P: x.P}
	case *LikeExpr:
		return &LikeExpr{E: b.rewriteRefs(x.E), Pattern: x.Pattern, Not: x.Not, P: x.P}
	case *InExpr:
		return &InExpr{E: b.rewriteRefs(x.E), Strs: x.Strs, Ints: x.Ints, Not: x.Not, P: x.P}
	case *SubstrExpr:
		return &SubstrExpr{E: b.rewriteRefs(x.E), Start: x.Start, Length: x.Length, P: x.P}
	case *BetweenExpr:
		return &BetweenExpr{E: b.rewriteRefs(x.E), Lo: b.rewriteRefs(x.Lo),
			Hi: b.rewriteRefs(x.Hi), P: x.P}
	case *CaseExpr:
		return &CaseExpr{When: b.rewriteRefs(x.When), Then: b.rewriteRefs(x.Then),
			Else: b.rewriteRefs(x.Else), P: x.P}
	}
	return e
}
