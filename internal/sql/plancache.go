package sql

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"vectorh/internal/obs"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// PlanCache caches compiled SELECT plans keyed by the statement's normalized
// token text, so repeated queries — the dominant shape of a multi-session
// serving workload, especially with prepared statements — skip parsing,
// binding, decorrelation and join ordering entirely and reuse one lowered
// plan.Node across sessions. Cached plans are logical trees: execution
// instantiates fresh operators per query, so sharing a node between
// concurrent executions is safe.
//
// Consistency is enforced by the engine's catalog epoch: every DDL statement,
// DML commit, bulk load and background rewrite bumps the epoch, and the cache
// flushes wholesale the first time it is consulted under a new epoch. A plan
// can therefore never be served against a catalog (or statistics snapshot)
// newer than the one it was compiled for.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	epoch   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type planEntry struct {
	key    string
	node   plan.Node
	schema vector.Schema
}

// PlanCacheStats is a point-in-time snapshot of the cache counters.
type PlanCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"` // entries dropped by epoch flushes
	Entries       int64 `json:"entries"`
}

// NewPlanCache creates a cache bounded to capEntries compiled plans
// (128 when capEntries <= 0).
func NewPlanCache(capEntries int) *PlanCache {
	if capEntries <= 0 {
		capEntries = 128
	}
	return &PlanCache{
		cap:     capEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Stats returns the cache's cumulative counters and current size.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	n := int64(c.lru.Len())
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       n,
	}
}

// flushLocked drops every entry (epoch change).
func (c *PlanCache) flushLocked() {
	n := int64(c.lru.Len())
	if n > 0 {
		c.invalidations.Add(n)
	}
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
}

func (c *PlanCache) lookup(key string, epoch int64) (plan.Node, vector.Schema, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		c.flushLocked()
		c.epoch = epoch
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*planEntry)
	c.hits.Add(1)
	return e.node, e.schema, true
}

func (c *PlanCache) store(key string, epoch int64, n plan.Node, s vector.Schema) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		c.flushLocked()
		c.epoch = epoch
	}
	if _, dup := c.entries[key]; dup {
		return
	}
	c.entries[key] = c.lru.PushFront(&planEntry{key: key, node: n, schema: s})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planEntry).key)
		c.evictions.Add(1)
	}
}

// Compile returns a lowered plan and output schema for src, consulting the
// cache first. The boolean reports whether the plan came from the cache.
// Only SELECT statements are cached; anything else (and any statement that
// fails to lex) falls through to a direct Compile so errors surface
// unchanged.
func (c *PlanCache) Compile(src string, cat plan.Catalog, epoch int64) (plan.Node, vector.Schema, bool, error) {
	return c.CompileTraced(src, cat, epoch, nil)
}

// CompileTraced is Compile recording compile-phase spans and the cache-hit
// flag into tr. A hit records only the hit (cached plans have no compile
// phases); a miss records parse/bind/decorrelate/joinorder from the real
// compile underneath.
func (c *PlanCache) CompileTraced(src string, cat plan.Catalog, epoch int64, tr *obs.Trace) (plan.Node, vector.Schema, bool, error) {
	key, cacheable := NormalizeSQL(src)
	if !cacheable {
		n, err := CompileTraced(src, cat, tr)
		if err != nil {
			return nil, nil, false, err
		}
		s, err := n.Schema(cat)
		return n, s, false, err
	}
	if n, s, ok := c.lookup(key, epoch); ok {
		tr.SetCacheHit(true)
		return n, s, true, nil
	}
	n, err := CompileTraced(src, cat, tr)
	if err != nil {
		return nil, nil, false, err
	}
	s, err := n.Schema(cat)
	if err != nil {
		return nil, nil, false, err
	}
	c.store(key, epoch, n, s)
	return n, s, false, nil
}

// NormalizeSQL reduces a statement to its canonical token text: keywords and
// identifiers lower-cased (the lexer already does this), whitespace and
// comments collapsed, string literals re-quoted. Two statements that differ
// only in formatting therefore share one cache entry. The boolean is false
// when src does not lex or is not a SELECT — such statements are not
// cacheable.
func NormalizeSQL(src string) (string, bool) {
	toks, err := lex(src)
	if err != nil {
		return "", false
	}
	if len(toks) == 0 || !(toks[0].kind == tKeyword && toks[0].text == "select") {
		return "", false
	}
	var sb strings.Builder
	sb.Grow(len(src))
	for i, t := range toks {
		if t.kind == tEOF {
			break
		}
		if t.kind == tSymbol && t.text == ";" {
			continue
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		writeToken(&sb, t)
	}
	return sb.String(), true
}

// writeToken renders one token back to SQL text.
func writeToken(sb *strings.Builder, t token) {
	if t.kind == tString {
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
		sb.WriteByte('\'')
		return
	}
	sb.WriteString(t.text)
}
