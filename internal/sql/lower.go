package sql

import (
	"fmt"
	"math"

	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// Compile parses src and lowers it to a logical plan bound against the
// catalog. The emitted tree uses only the existing plan.Node/plan.Expr
// vocabulary, so the Parallel Rewriter, Xchg parallelism and MinMax skipping
// apply to SQL queries exactly as to hand-built plans.
func Compile(src string, cat plan.Catalog) (plan.Node, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(stmt, cat)
}

// Lower binds a parsed statement against the catalog and emits a plan.
//
// Lowering shape: per-table scans project only referenced columns;
// single-table WHERE conjuncts are pushed below the joins (picking up MinMax
// skip hints for date-range predicates); ON conjuncts of the form
// left.col = right.col become hash-join keys and the rest residual join
// predicates; aggregation inserts a pre-projection when GROUP BY targets a
// select-list alias; and a final projection restores select-list order when
// it differs from the natural operator output.
func Lower(stmt *SelectStmt, cat plan.Catalog) (plan.Node, error) {
	b := &binder{}
	for _, f := range stmt.From {
		schema, err := cat.TableSchema(f.Table)
		if err != nil {
			return nil, errf(f.Pos, "unknown table %q", f.Table)
		}
		for _, t := range b.tables {
			if t.alias == f.Alias {
				return nil, errf(f.Pos, "duplicate table alias %q", f.Alias)
			}
		}
		b.tables = append(b.tables, &boundTable{
			table: f.Table, alias: f.Alias, schema: schema,
			used: make(map[string]bool),
		})
	}
	return b.lowerStmt(stmt, cat)
}

// boundTable is one FROM entry with its resolved schema and column usage.
type boundTable struct {
	table, alias string
	schema       vector.Schema
	used         map[string]bool
}

type binder struct {
	tables []*boundTable
}

// resolve finds the table owning a column reference.
func (b *binder) resolve(c *ColRef) (int, vector.Field, error) {
	if c.Table != "" {
		for i, t := range b.tables {
			if t.alias == c.Table {
				f, err := t.schema.Field(c.Name)
				if err != nil {
					return 0, vector.Field{}, errf(c.P, "table %q has no column %q", c.Table, c.Name)
				}
				return i, f, nil
			}
		}
		return 0, vector.Field{}, errf(c.P, "unknown table alias %q", c.Table)
	}
	found := -1
	var field vector.Field
	for i, t := range b.tables {
		if j := t.schema.Index(c.Name); j >= 0 {
			if found >= 0 {
				return 0, vector.Field{}, errf(c.P, "ambiguous column %q (in %s and %s)",
					c.Name, b.tables[found].alias, t.alias)
			}
			found, field = i, t.schema[j]
		}
	}
	if found < 0 {
		return 0, vector.Field{}, errf(c.P, "unknown column %q", c.Name)
	}
	return found, field, nil
}

// bindRefs resolves every column reference in e, marking usage. When
// allowAggs is false, aggregate calls are rejected.
func (b *binder) bindRefs(e Expr, allowAggs bool) error {
	switch x := e.(type) {
	case *ColRef:
		ti, f, err := b.resolve(x)
		if err != nil {
			return err
		}
		// Lowered expressions bind columns by bare name against the join
		// output, where the first occurrence wins. A qualified reference to
		// a later duplicate would silently read the wrong table's column —
		// reject it instead (join keys are exempt: they bind against each
		// side's own schema).
		if x.Table != "" {
			for j := 0; j < ti; j++ {
				if b.tables[j].schema.Index(x.Name) >= 0 {
					return errf(x.P, "%s.%s is shadowed by %s.%s in the join output; rename one side with a select alias",
						x.Table, x.Name, b.tables[j].alias, x.Name)
				}
			}
		}
		b.tables[ti].used[f.Name] = true
	case *BinExpr:
		if err := b.bindRefs(x.L, allowAggs); err != nil {
			return err
		}
		return b.bindRefs(x.R, allowAggs)
	case *NotExpr:
		return b.bindRefs(x.E, allowAggs)
	case *FuncCall:
		if aggFuncs[x.Name] {
			if !allowAggs {
				return errf(x.P, "aggregate %s() is only allowed in the select list", x.Name)
			}
			if x.Arg != nil {
				// no nested aggregates inside an aggregate argument
				return b.bindRefs(x.Arg, false)
			}
			return nil
		}
		if x.Arg != nil {
			return b.bindRefs(x.Arg, allowAggs)
		}
	case *LikeExpr:
		return b.bindRefs(x.E, allowAggs)
	case *InExpr:
		return b.bindRefs(x.E, allowAggs)
	case *BetweenExpr:
		if err := b.bindRefs(x.E, allowAggs); err != nil {
			return err
		}
		if err := b.bindRefs(x.Lo, allowAggs); err != nil {
			return err
		}
		return b.bindRefs(x.Hi, allowAggs)
	case *CaseExpr:
		if err := b.bindRefs(x.When, allowAggs); err != nil {
			return err
		}
		if err := b.bindRefs(x.Then, allowAggs); err != nil {
			return err
		}
		return b.bindRefs(x.Else, allowAggs)
	}
	return nil
}

// bindOn resolves an ON condition. Conjuncts shaped like prospective join
// keys (col = col across two tables) only mark usage — they bind against
// each join side's own schema, so the shadowing check of bindRefs does not
// apply to them.
func (b *binder) bindOn(on Expr) error {
	for _, c := range splitAnd(on) {
		if be, ok := c.(*BinExpr); ok && be.Op == "=" {
			lc, lok := be.L.(*ColRef)
			rc, rok := be.R.(*ColRef)
			if lok && rok {
				lt, lf, lerr := b.resolve(lc)
				rt, rf, rerr := b.resolve(rc)
				if lerr == nil && rerr == nil && lt != rt {
					b.tables[lt].used[lf.Name] = true
					b.tables[rt].used[rf.Name] = true
					continue
				}
			}
		}
		if err := b.bindRefs(c, false); err != nil {
			return err
		}
	}
	return nil
}

// tablesOf returns the set of FROM indices an expression references.
func (b *binder) tablesOf(e Expr) map[int]bool {
	out := make(map[int]bool)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColRef:
			if ti, _, err := b.resolve(x); err == nil {
				out[ti] = true
			}
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *LikeExpr:
			walk(x.E)
		case *InExpr:
			walk(x.E)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *CaseExpr:
			walk(x.When)
			walk(x.Then)
			walk(x.Else)
		}
	}
	walk(e)
	return out
}

// collectAggs returns the aggregate calls in e, in source order.
func collectAggs(e Expr) []*FuncCall {
	var out []*FuncCall
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *FuncCall:
			if aggFuncs[x.Name] {
				out = append(out, x)
				return
			}
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *LikeExpr:
			walk(x.E)
		case *InExpr:
			walk(x.E)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *CaseExpr:
			walk(x.When)
			walk(x.Then)
			walk(x.Else)
		}
	}
	walk(e)
	return out
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e Expr) []Expr {
	if be, ok := e.(*BinExpr); ok && be.Op == "and" {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []Expr{e}
}

func (b *binder) lowerStmt(stmt *SelectStmt, cat plan.Catalog) (plan.Node, error) {
	// ---- strict name resolution + column-usage collection ----
	if stmt.Star {
		if len(stmt.GroupBy) > 0 {
			return nil, errf(stmt.From[0].Pos, "SELECT * cannot be combined with GROUP BY")
		}
		for _, t := range b.tables {
			for _, f := range t.schema {
				t.used[f.Name] = true
			}
		}
	}
	for _, it := range stmt.Items {
		if err := b.bindRefs(it.Expr, true); err != nil {
			return nil, err
		}
	}
	for i, f := range stmt.From {
		if i == 0 {
			continue
		}
		if err := b.bindOn(f.On); err != nil {
			return nil, err
		}
	}
	if stmt.Where != nil {
		if err := b.bindRefs(stmt.Where, false); err != nil {
			return nil, err
		}
	}

	aliases := make(map[string]SelectItem)
	for _, it := range stmt.Items {
		if it.Alias != "" {
			aliases[it.Alias] = it
		}
	}
	// Group items are either source columns or select-list aliases.
	var groups []groupCol
	for _, g := range stmt.GroupBy {
		ref := &ColRef{Name: g.Name, P: g.Pos}
		if ti, f, err := b.resolve(ref); err == nil {
			b.tables[ti].used[f.Name] = true
			groups = append(groups, groupCol{name: g.Name, fromCol: true})
		} else if _, ok := aliases[g.Name]; ok {
			groups = append(groups, groupCol{name: g.Name, fromCol: false})
		} else {
			return nil, errf(g.Pos, "GROUP BY %q is neither a column nor a select alias", g.Name)
		}
	}

	// ---- WHERE classification: per-table pushdown vs residual ----
	pushed := make([][]Expr, len(b.tables))
	var residual []Expr
	if stmt.Where != nil {
		for _, c := range splitAnd(stmt.Where) {
			ts := b.tablesOf(c)
			if len(ts) == 1 {
				for ti := range ts {
					pushed[ti] = append(pushed[ti], c)
				}
			} else {
				residual = append(residual, c)
			}
		}
	}

	// ---- per-table scans with pruned columns and pushed filters ----
	srcs := make([]plan.Node, len(b.tables))
	schemas := make([]vector.Schema, len(b.tables))
	for i, t := range b.tables {
		var cols []string
		var ps vector.Schema
		for _, f := range t.schema {
			if t.used[f.Name] {
				cols = append(cols, f.Name)
				ps = append(ps, f)
			}
		}
		if len(cols) == 0 { // e.g. SELECT count(*): scan one narrow column
			cols = []string{t.schema[0].Name}
			ps = vector.Schema{t.schema[0]}
		}
		var node plan.Node = plan.Scan(t.table, cols...)
		if len(pushed[i]) > 0 {
			pred, err := b.lowerConj(ps, pushed[i])
			if err != nil {
				return nil, err
			}
			f := plan.Filter(node, pred)
			if set, residual := deriveSkipSet(ps, pushed[i]); set != nil {
				var res *plan.Expr
				if len(residual) > 0 {
					re, err := b.lowerConj(ps, residual)
					if err != nil {
						return nil, err
					}
					res = &re
				}
				f.Push(set, res)
			}
			node = f
		}
		srcs[i] = node
		schemas[i] = ps
	}

	// ---- join chain: equality conjuncts become keys, rest residual ----
	cur := srcs[0]
	curSchema := schemas[0]
	inLeft := map[int]bool{0: true}
	for i := 1; i < len(b.tables); i++ {
		var lKeys, rKeys []string
		var rest []Expr
		for _, c := range splitAnd(stmt.From[i].On) {
			if lk, rk, ok := b.joinKey(c, inLeft, i); ok {
				lKeys = append(lKeys, lk)
				rKeys = append(rKeys, rk)
			} else {
				rest = append(rest, c)
			}
		}
		if len(lKeys) == 0 {
			return nil, errf(stmt.From[i].Pos,
				"join with %q needs at least one equality condition between the joined tables", b.tables[i].alias)
		}
		join := plan.Join(plan.InnerJoin, cur, srcs[i], lKeys, rKeys)
		curSchema = append(curSchema.Clone(), schemas[i]...)
		if len(rest) > 0 {
			pred, err := b.lowerConj(curSchema, rest)
			if err != nil {
				return nil, err
			}
			join.On(pred)
		}
		cur = join
		inLeft[i] = true
	}

	// ---- residual WHERE above the joins ----
	if len(residual) > 0 {
		pred, err := b.lowerConj(curSchema, residual)
		if err != nil {
			return nil, err
		}
		cur = plan.Filter(cur, pred)
	}

	// ---- aggregation ----
	var hasAgg bool
	for _, it := range stmt.Items {
		if len(collectAggs(it.Expr)) > 0 {
			hasAgg = true
		}
	}
	node := cur
	var aggByText map[string]string
	if hasAgg || len(groups) > 0 {
		var err error
		if node, aggByText, err = b.lowerAggregate(stmt, cat, cur, curSchema, groups, aliases); err != nil {
			return nil, err
		}
	} else if !stmt.Star {
		items := make([]postItem, len(stmt.Items))
		for i, it := range stmt.Items {
			e, err := b.lowerExpr(curSchema, it.Expr, true)
			if err != nil {
				return nil, err
			}
			items[i] = postItem{name: outName(it), ex: e}
			if c, ok := it.Expr.(*ColRef); ok && it.Alias == "" {
				items[i].bare = c.Name
			}
		}
		node = project(cur, curSchema, items)
	}

	// ---- ORDER BY / LIMIT over the output schema ----
	outSchema, err := node.Schema(cat)
	if err != nil {
		return nil, err
	}
	var keys []plan.OrderKey
	for _, o := range stmt.OrderBy {
		e := stripQualifiers(o.Expr)
		// Standard SQL ordinal: ORDER BY n sorts by the n-th output column.
		if il, ok := e.(*IntLit); ok {
			if il.V < 1 || il.V > int64(len(outSchema)) {
				return nil, errf(il.P, "ORDER BY position %d is out of range (1..%d)", il.V, len(outSchema))
			}
			keys = append(keys, plan.OrderKey{Expr: plan.Col(outSchema[il.V-1].Name), Desc: o.Desc})
			continue
		}
		// Aggregates in ORDER BY refer to their select-list output columns.
		e, err := rewriteAggsText(e, aggByText)
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*ColRef); ok {
			dup := 0
			for _, f := range outSchema {
				if f.Name == c.Name {
					dup++
				}
			}
			if dup > 1 {
				return nil, errf(c.P, "ORDER BY %q is ambiguous in the output columns", c.Name)
			}
		}
		le, err := b.lowerExpr(outSchema, e, true)
		if err != nil {
			return nil, err
		}
		keys = append(keys, plan.OrderKey{Expr: le, Desc: o.Desc})
	}
	switch {
	case len(keys) > 0 && stmt.Limit >= 0:
		return plan.Top(node, stmt.Limit, keys...), nil
	case len(keys) > 0:
		return plan.OrderBy(node, keys...), nil
	case stmt.Limit >= 0:
		return plan.Limit(node, stmt.Limit), nil
	}
	return node, nil
}

// joinKey recognizes an ON conjunct of the form left.col = right.col (either
// orientation) connecting the accumulated left side with table ri.
func (b *binder) joinKey(c Expr, inLeft map[int]bool, ri int) (lk, rk string, ok bool) {
	be, isBin := c.(*BinExpr)
	if !isBin || be.Op != "=" {
		return "", "", false
	}
	lc, lok := be.L.(*ColRef)
	rc, rok := be.R.(*ColRef)
	if !lok || !rok {
		return "", "", false
	}
	lt, lf, lerr := b.resolve(lc)
	rt, rf, rerr := b.resolve(rc)
	if lerr != nil || rerr != nil {
		return "", "", false
	}
	switch {
	case inLeft[lt] && rt == ri:
		return lf.Name, rf.Name, true
	case inLeft[rt] && lt == ri:
		return rf.Name, lf.Name, true
	}
	return "", "", false
}

// postItem is one output projection entry.
type postItem struct {
	name string
	ex   plan.Expr
	bare string // non-empty when the item is a pass-through bare column
}

// project emits a ProjectNode unless the items are exactly the child schema.
func project(child plan.Node, childSchema vector.Schema, items []postItem) plan.Node {
	if len(items) == len(childSchema) {
		same := true
		for i, it := range items {
			if it.bare == "" || it.bare != childSchema[i].Name || it.name != childSchema[i].Name {
				same = false
				break
			}
		}
		if same {
			return child
		}
	}
	exprs := make([]plan.NamedExpr, len(items))
	for i, it := range items {
		exprs[i] = plan.As(it.name, it.ex)
	}
	return plan.Project(child, exprs...)
}

// outName picks the output column name of a select item.
func outName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	return it.Expr.String()
}

// groupCol is one GROUP BY target: a source column or a select-list alias.
type groupCol struct {
	name    string
	fromCol bool
}

// lowerAggregate builds [pre-projection →] Aggregate [→ post-projection].
// A pre-projection is emitted only when GROUP BY targets computed
// select-list aliases (the shape hand-built queries like TPC-H Q7–Q9 use);
// otherwise aggregation runs directly over the joined/filtered source with
// aggregate arguments as inline expressions. A post-projection restores
// select-list order when it differs from the aggregate's natural
// group-columns-then-aggregates output.
func (b *binder) lowerAggregate(stmt *SelectStmt, cat plan.Catalog, cur plan.Node,
	curSchema vector.Schema, groups []groupCol, aliases map[string]SelectItem) (plan.Node, map[string]string, error) {
	needPre := false
	groupSet := make(map[string]bool, len(groups))
	for _, g := range groups {
		if !g.fromCol {
			needPre = true
		}
		groupSet[g.name] = true
	}

	// Non-aggregated column refs in the select list must be group columns.
	for _, it := range stmt.Items {
		if it.Alias != "" && groupSet[it.Alias] && len(collectAggs(it.Expr)) == 0 {
			continue // this item *is* a computed group expression
		}
		if err := checkGrouped(it.Expr, groupSet); err != nil {
			return nil, nil, err
		}
	}

	// Name every aggregate call, in select-list order.
	type aggInfo struct {
		call *FuncCall
		name string
	}
	var aggs []aggInfo
	aggName := make(map[*FuncCall]string)
	aggByText := make(map[string]string)
	taken := make(map[string]bool)
	for _, g := range groups {
		taken[g.name] = true
	}
	for _, it := range stmt.Items {
		for _, c := range collectAggs(it.Expr) {
			name := c.String()
			if it.Alias != "" && Expr(c) == it.Expr {
				name = it.Alias
			}
			for taken[name] {
				name += "_"
			}
			taken[name] = true
			aggs = append(aggs, aggInfo{c, name})
			aggName[c] = name
			aggByText[c.String()] = name
		}
	}

	groupNames := make([]string, len(groups))
	for i, g := range groups {
		groupNames[i] = g.name
	}

	child := cur
	items := make([]plan.AggItem, 0, len(aggs))
	if needPre {
		var pre []plan.NamedExpr
		for _, g := range groups {
			if g.fromCol {
				pre = append(pre, plan.As(g.name, plan.Col(g.name)))
				continue
			}
			e, err := b.lowerExpr(curSchema, aliases[g.name].Expr, true)
			if err != nil {
				return nil, nil, err
			}
			pre = append(pre, plan.As(g.name, e))
		}
		for i, a := range aggs {
			if a.call.Star {
				items = append(items, plan.AStar(a.name))
				continue
			}
			fn, err := aggFuncName(a.call)
			if err != nil {
				return nil, nil, err
			}
			argName := fmt.Sprintf("__arg%d", i)
			e, err := b.lowerExpr(curSchema, a.call.Arg, false)
			if err != nil {
				return nil, nil, err
			}
			pre = append(pre, plan.As(argName, e))
			items = append(items, plan.A(a.name, fn, plan.Col(argName)))
		}
		child = plan.Project(cur, pre...)
	} else {
		for _, a := range aggs {
			if a.call.Star {
				items = append(items, plan.AStar(a.name))
				continue
			}
			fn, err := aggFuncName(a.call)
			if err != nil {
				return nil, nil, err
			}
			e, err := b.lowerExpr(curSchema, a.call.Arg, false)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, plan.A(a.name, fn, e))
		}
	}
	aggNode := plan.Aggregate(child, groupNames, items...)
	aggSchema, err := aggNode.Schema(cat)
	if err != nil {
		return nil, nil, err
	}

	// Post-projection in select-list order.
	post := make([]postItem, len(stmt.Items))
	for i, it := range stmt.Items {
		name := outName(it)
		switch x := it.Expr.(type) {
		case *ColRef:
			if groupSet[x.Name] && it.Alias == "" {
				post[i] = postItem{name: x.Name, ex: plan.Col(x.Name), bare: x.Name}
				continue
			}
		case *FuncCall:
			if n, isAgg := aggName[x]; isAgg {
				post[i] = postItem{name: n, ex: plan.Col(n), bare: n}
				continue
			}
		}
		if it.Alias != "" && groupSet[it.Alias] && len(collectAggs(it.Expr)) == 0 {
			// computed group expression: already materialized under its alias
			post[i] = postItem{name: it.Alias, ex: plan.Col(it.Alias), bare: it.Alias}
			continue
		}
		// general expression over aggregate results (e.g. 100*sum(a)/sum(b))
		e, err := b.lowerExpr(aggSchema, rewriteAggs(it.Expr, aggName), true)
		if err != nil {
			return nil, nil, err
		}
		post[i] = postItem{name: name, ex: e}
	}
	return project(aggNode, aggSchema, post), aggByText, nil
}

// rewriteAggsText replaces aggregate calls in an ORDER BY expression with
// references to the matching select-list aggregate's output column (matched
// by canonical text, since ORDER BY re-parses the call as a distinct AST
// node).
func rewriteAggsText(e Expr, aggByText map[string]string) (Expr, error) {
	switch x := e.(type) {
	case *FuncCall:
		if aggFuncs[x.Name] {
			if n, ok := aggByText[x.String()]; ok {
				return &ColRef{Name: n, P: x.P}, nil
			}
			return nil, errf(x.P, "aggregate %s in ORDER BY must also appear in the select list", x)
		}
	case *BinExpr:
		l, err := rewriteAggsText(x.L, aggByText)
		if err != nil {
			return nil, err
		}
		r, err := rewriteAggsText(x.R, aggByText)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: x.Op, L: l, R: r, P: x.P}, nil
	}
	return e, nil
}

// checkGrouped verifies every column ref outside aggregate arguments names a
// group column.
func checkGrouped(e Expr, groupSet map[string]bool) error {
	switch x := e.(type) {
	case *ColRef:
		if !groupSet[x.Name] {
			return errf(x.P, "column %q must appear in GROUP BY or inside an aggregate", x.Name)
		}
	case *BinExpr:
		if err := checkGrouped(x.L, groupSet); err != nil {
			return err
		}
		return checkGrouped(x.R, groupSet)
	case *NotExpr:
		return checkGrouped(x.E, groupSet)
	case *FuncCall:
		if aggFuncs[x.Name] {
			return nil // aggregate arguments may use any source column
		}
		if x.Arg != nil {
			return checkGrouped(x.Arg, groupSet)
		}
	case *LikeExpr:
		return checkGrouped(x.E, groupSet)
	case *InExpr:
		return checkGrouped(x.E, groupSet)
	case *BetweenExpr:
		if err := checkGrouped(x.E, groupSet); err != nil {
			return err
		}
		if err := checkGrouped(x.Lo, groupSet); err != nil {
			return err
		}
		return checkGrouped(x.Hi, groupSet)
	case *CaseExpr:
		if err := checkGrouped(x.When, groupSet); err != nil {
			return err
		}
		if err := checkGrouped(x.Then, groupSet); err != nil {
			return err
		}
		return checkGrouped(x.Else, groupSet)
	}
	return nil
}

// rewriteAggs replaces aggregate calls with references to their output
// columns, leaving every other node untouched.
func rewriteAggs(e Expr, aggName map[*FuncCall]string) Expr {
	switch x := e.(type) {
	case *FuncCall:
		if n, ok := aggName[x]; ok {
			return &ColRef{Name: n, P: x.P}
		}
		if x.Arg != nil {
			return &FuncCall{Name: x.Name, Arg: rewriteAggs(x.Arg, aggName), P: x.P}
		}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: rewriteAggs(x.L, aggName), R: rewriteAggs(x.R, aggName), P: x.P}
	case *NotExpr:
		return &NotExpr{E: rewriteAggs(x.E, aggName), P: x.P}
	case *LikeExpr:
		return &LikeExpr{E: rewriteAggs(x.E, aggName), Pattern: x.Pattern, Not: x.Not, P: x.P}
	case *InExpr:
		return &InExpr{E: rewriteAggs(x.E, aggName), Strs: x.Strs, Ints: x.Ints, Not: x.Not, P: x.P}
	case *BetweenExpr:
		return &BetweenExpr{E: rewriteAggs(x.E, aggName), Lo: rewriteAggs(x.Lo, aggName),
			Hi: rewriteAggs(x.Hi, aggName), P: x.P}
	case *CaseExpr:
		return &CaseExpr{When: rewriteAggs(x.When, aggName), Then: rewriteAggs(x.Then, aggName),
			Else: rewriteAggs(x.Else, aggName), P: x.P}
	}
	return e
}

// aggFuncName maps a parsed aggregate call to the logical function.
func aggFuncName(c *FuncCall) (plan.AggFuncName, error) {
	switch c.Name {
	case "sum":
		return plan.Sum, nil
	case "min":
		return plan.Min, nil
	case "max":
		return plan.Max, nil
	case "avg":
		return plan.Avg, nil
	case "count":
		if c.Distinct {
			return plan.CountDistinct, nil
		}
		return plan.Count, nil
	}
	return "", errf(c.P, "unknown aggregate %q", c.Name)
}

// lowerConj lowers a conjunct list into one predicate.
func (b *binder) lowerConj(s vector.Schema, conj []Expr) (plan.Expr, error) {
	var out plan.Expr
	for i, c := range conj {
		e, err := b.lowerExpr(s, c, false)
		if err != nil {
			return plan.Expr{}, err
		}
		if i == 0 {
			out = e
		} else {
			out = plan.And(out, e)
		}
	}
	return out, nil
}

// deriveSkipSet classifies pushed conjuncts into scan-evaluable per-column
// predicates: literal ranges and equalities over integer, date, decimal,
// float and string columns, plus IN lists over integers and strings. It
// returns the derived set (nil when nothing is pushable) and the residual
// conjuncts the set does not fully subsume — an empty residual lets the
// rewriter elide the Select above the scan entirely, because the scan
// evaluates the whole predicate itself (with MinMax block skipping per
// column kind as a bonus).
func deriveSkipSet(s vector.Schema, conj []Expr) (*plan.ScanPredSet, []Expr) {
	acc := &predAccum{schema: s}
	var residual []Expr
	for _, c := range conj {
		if !acc.classify(c) {
			residual = append(residual, c)
		}
	}
	if len(acc.set.Preds) == 0 {
		return nil, conj
	}
	return &acc.set, residual
}

// colClass buckets a column (or literal) by comparison semantics.
type colClass uint8

const (
	classNone  colClass = iota
	classInt            // plain int32/int64 and dates: compared as int64
	classDec            // decimal storage: compared as float64(v)*scale
	classFloat          // float64
	classStr            // strings
)

// predAccum accumulates classified conjuncts, intersecting range predicates
// on the same column so `d >= lo and d < hi` becomes one ColPred.
type predAccum struct {
	schema vector.Schema
	set    plan.ScanPredSet
}

func (a *predAccum) classOf(e Expr) (string, colClass) {
	c, isCol := e.(*ColRef)
	if !isCol {
		return "", classNone
	}
	i := a.schema.Index(c.Name)
	if i < 0 {
		return "", classNone
	}
	t := a.schema[i].Type
	switch {
	case t.Logical == vector.Decimal:
		return c.Name, classDec
	case t.Kind == vector.Int32 || t.Kind == vector.Int64:
		return c.Name, classInt
	case t.Kind == vector.Float64:
		return c.Name, classFloat
	case t.Kind == vector.String:
		return c.Name, classStr
	}
	return "", classNone
}

// litVal is one classified literal operand.
type litVal struct {
	cls colClass
	i   int64
	f   float64
	s   string
}

func litOf(e Expr) (litVal, bool) {
	switch x := e.(type) {
	case *IntLit:
		return litVal{cls: classInt, i: x.V, f: float64(x.V)}, true
	case *FloatLit:
		return litVal{cls: classFloat, f: x.V}, true
	case *DateLit:
		// f mirrors i: a date literal compared against a float/decimal
		// column (odd but legal) compares as the day number widened to
		// float, exactly what the interpreter does with the int32 const.
		d := int64(vector.AddMonths(vector.MustDate(x.V), x.Months))
		return litVal{cls: classInt, i: d, f: float64(d)}, true
	case *StrLit:
		return litVal{cls: classStr, s: x.V}, true
	}
	return litVal{}, false
}

// classify records conjunct c in the set when it is scan-evaluable,
// reporting whether the set now fully subsumes it. A partially usable
// conjunct (e.g. BETWEEN with only one literal bound) may still contribute
// skip bounds but reports false, keeping itself in the residual.
func (a *predAccum) classify(c Expr) bool {
	switch x := c.(type) {
	case *BinExpr:
		col, cls := a.classOf(x.L)
		lit, okLit := litOf(x.R)
		op := x.Op
		if cls == classNone || !okLit {
			// reversed: literal op column
			if col, cls = a.classOf(x.R); cls == classNone {
				return false
			}
			if lit, okLit = litOf(x.L); !okLit {
				return false
			}
			op = flipCmp(op)
		}
		return a.addCmp(col, cls, op, lit)
	case *BetweenExpr:
		col, cls := a.classOf(x.E)
		if cls == classNone {
			return false
		}
		lo, okLo := litOf(x.Lo)
		hi, okHi := litOf(x.Hi)
		pushedLo := okLo && a.addCmp(col, cls, ">=", lo)
		pushedHi := okHi && a.addCmp(col, cls, "<=", hi)
		return pushedLo && pushedHi
	case *InExpr:
		if x.Not {
			return false
		}
		col, cls := a.classOf(x.E)
		switch {
		case cls == classInt && len(x.Ints) > 0 && len(x.Strs) == 0:
			a.set.Preds = append(a.set.Preds, plan.ColPred{
				Col: col, Op: plan.PredIntIn, Ints: append([]int64(nil), x.Ints...)})
			return true
		case cls == classStr && len(x.Strs) > 0 && len(x.Ints) == 0:
			a.set.Preds = append(a.set.Preds, plan.ColPred{
				Col: col, Op: plan.PredStrIn, Strs: append([]string(nil), x.Strs...)})
			return true
		}
		return false
	}
	return false
}

// addCmp folds one comparison into the column's accumulated range.
func (a *predAccum) addCmp(col string, cls colClass, op string, lit litVal) bool {
	switch cls {
	case classInt:
		if lit.cls != classInt {
			return false // int col vs float literal: stays a float compare upstream
		}
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		switch op {
		case ">=":
			lo = lit.i
		case ">":
			if lit.i == math.MaxInt64 {
				lo, hi = math.MaxInt64, math.MinInt64 // v > max: unsatisfiable
			} else {
				lo = lit.i + 1
			}
		case "<=":
			hi = lit.i
		case "<":
			if lit.i == math.MinInt64 {
				lo, hi = math.MaxInt64, math.MinInt64 // v < min: unsatisfiable
			} else {
				hi = lit.i - 1
			}
		case "=":
			lo, hi = lit.i, lit.i
		default:
			return false
		}
		p := a.rangePred(col, plan.PredIntRange)
		if lo > p.IntLo {
			p.IntLo = lo
		}
		if hi < p.IntHi {
			p.IntHi = hi
		}
		return true
	case classDec, classFloat:
		if lit.cls != classInt && lit.cls != classFloat {
			return false
		}
		switch op {
		case ">=", ">", "<=", "<", "=":
		default:
			return false
		}
		predOp := plan.PredDecRange
		if cls == classFloat {
			predOp = plan.PredFloatRange
		}
		p := a.rangePred(col, predOp)
		switch op {
		case ">=", ">":
			if lit.f > p.FloatLo || (lit.f == p.FloatLo && op == ">") {
				p.FloatLo, p.LoStrict = lit.f, op == ">"
			}
		case "<=", "<":
			if lit.f < p.FloatHi || (lit.f == p.FloatHi && op == "<") {
				p.FloatHi, p.HiStrict = lit.f, op == "<"
			}
		case "=":
			// Intersect with [v, v]. A non-strict bound at the same value
			// is WEAKER than an accumulated strict one — keep the strict
			// bound, or `x > 50 AND x = 50` would push the satisfiable
			// [50,50] instead of the empty (50,50].
			if lit.f > p.FloatLo {
				p.FloatLo, p.LoStrict = lit.f, false
			}
			if lit.f < p.FloatHi {
				p.FloatHi, p.HiStrict = lit.f, false
			}
		default:
			return false
		}
		return true
	case classStr:
		if lit.cls != classStr {
			return false
		}
		switch op {
		case ">=", ">", "<=", "<", "=":
		default:
			return false
		}
		p := a.rangePred(col, plan.PredStrRange)
		switch op {
		case ">=", ">":
			if !p.HasStrLo || lit.s > p.StrLo || (lit.s == p.StrLo && op == ">") {
				p.StrLo, p.HasStrLo, p.LoStrict = lit.s, true, op == ">"
			}
		case "<=", "<":
			if !p.HasStrHi || lit.s < p.StrHi || (lit.s == p.StrHi && op == "<") {
				p.StrHi, p.HasStrHi, p.HiStrict = lit.s, true, op == "<"
			}
		case "=":
			// As with floats: never weaken an accumulated strict bound at
			// the same value (`s > 'n' AND s = 'n'` is empty).
			if !p.HasStrLo || lit.s > p.StrLo {
				p.StrLo, p.HasStrLo, p.LoStrict = lit.s, true, false
			}
			if !p.HasStrHi || lit.s < p.StrHi {
				p.StrHi, p.HasStrHi, p.HiStrict = lit.s, true, false
			}
		default:
			return false
		}
		return true
	}
	return false
}

// rangePred returns (creating on demand) the accumulated range predicate of
// the given shape for a column.
func (a *predAccum) rangePred(col string, op plan.PredOp) *plan.ColPred {
	for i := range a.set.Preds {
		if a.set.Preds[i].Col == col && a.set.Preds[i].Op == op {
			return &a.set.Preds[i]
		}
	}
	p := plan.ColPred{Col: col, Op: op}
	switch op {
	case plan.PredIntRange:
		p.IntLo, p.IntHi = math.MinInt64, math.MaxInt64
	case plan.PredDecRange, plan.PredFloatRange:
		p.FloatLo, p.FloatHi = math.Inf(-1), math.Inf(1)
		if op == plan.PredDecRange {
			p.Scale = 0.01
		}
	}
	a.set.Preds = append(a.set.Preds, p)
	return &a.set.Preds[len(a.set.Preds)-1]
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// lowerExpr lowers a scalar AST expression over a concrete schema. top marks
// projection/group positions where a bare decimal column stays raw; anywhere
// nested, decimal columns convert to float64 (SQL decimal semantics), which
// mirrors the plan.Dec usage of the hand-built queries.
func (b *binder) lowerExpr(s vector.Schema, e Expr, top bool) (plan.Expr, error) {
	switch x := e.(type) {
	case *ColRef:
		i := s.Index(x.Name)
		if i < 0 {
			return plan.Expr{}, errf(x.P, "unknown column %q", x.Name)
		}
		if s[i].Type == vector.TDecimal && !top {
			return plan.Dec(x.Name), nil
		}
		return plan.Col(x.Name), nil
	case *IntLit:
		return plan.Int(x.V), nil
	case *FloatLit:
		return plan.Float(x.V), nil
	case *StrLit:
		return plan.Str(x.V), nil
	case *DateLit:
		if x.Months != 0 {
			return plan.DateOffset(x.V, x.Months), nil
		}
		return plan.Date(x.V), nil
	case *BinExpr:
		if x.Op == "and" || x.Op == "or" {
			le, err := b.lowerExpr(s, x.L, false)
			if err != nil {
				return plan.Expr{}, err
			}
			re, err := b.lowerExpr(s, x.R, false)
			if err != nil {
				return plan.Expr{}, err
			}
			if x.Op == "and" {
				return plan.And(le, re), nil
			}
			return plan.Or(le, re), nil
		}
		le, re, lt, rt, err := b.lowerPair(s, x.L, x.R)
		if err != nil {
			return plan.Expr{}, err
		}
		// Reject type mismatches the execution layer would only hit at
		// runtime, with a source position instead.
		lStr, rStr := lt.Kind == vector.String, rt.Kind == vector.String
		switch x.Op {
		case "+", "-", "*", "/":
			if lStr || rStr {
				return plan.Expr{}, errf(x.P, "operator %q is not defined on strings", x.Op)
			}
		default:
			if lStr != rStr {
				return plan.Expr{}, errf(x.P, "cannot compare %s with %s", lt, rt)
			}
		}
		switch x.Op {
		case "+":
			return plan.Add(le, re), nil
		case "-":
			return plan.Sub(le, re), nil
		case "*":
			return plan.Mul(le, re), nil
		case "/":
			return plan.Div(le, re), nil
		case "=":
			return plan.EQ(le, re), nil
		case "<>":
			return plan.NE(le, re), nil
		case "<":
			return plan.LT(le, re), nil
		case "<=":
			return plan.LE(le, re), nil
		case ">":
			return plan.GT(le, re), nil
		case ">=":
			return plan.GE(le, re), nil
		}
		return plan.Expr{}, errf(x.P, "unsupported operator %q", x.Op)
	case *NotExpr:
		ce, err := b.lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		return plan.Not(ce), nil
	case *FuncCall:
		if aggFuncs[x.Name] {
			return plan.Expr{}, errf(x.P, "aggregate %s() is not allowed here", x.Name)
		}
		// year()
		ce, err := b.lowerExpr(s, x.Arg, false)
		if err != nil {
			return plan.Expr{}, err
		}
		return plan.Year(ce), nil
	case *LikeExpr:
		ce, err := b.lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		if x.Not {
			return plan.NotLike(ce, x.Pattern), nil
		}
		return plan.Like(ce, x.Pattern), nil
	case *InExpr:
		ce, err := b.lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		ct, cterr := ce.Type(s)
		var in plan.Expr
		switch {
		case len(x.Strs) > 0:
			if cterr == nil && ct.Kind != vector.String {
				return plan.Expr{}, errf(x.P, "IN list of strings against %s", ct)
			}
			in = plan.InStr(ce, x.Strs...)
		case cterr == nil && ct.Kind == vector.String:
			return plan.Expr{}, errf(x.P, "IN list of integers against %s", ct)
		case cterr == nil && ct.Kind == vector.Float64:
			// Float subject (e.g. a decimal column): expand to an equality
			// chain, matching the promotion `= literal` gets.
			for i, v := range x.Ints {
				eq := plan.EQ(ce, plan.Float(float64(v)))
				if i == 0 {
					in = eq
				} else {
					in = plan.Or(in, eq)
				}
			}
		default:
			in = plan.InInt(ce, x.Ints...)
		}
		if x.Not {
			return plan.Not(in), nil
		}
		return in, nil
	case *BetweenExpr:
		ce, err := b.lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		lo, err := b.adaptTo(s, ce, x.Lo)
		if err != nil {
			return plan.Expr{}, err
		}
		hi, err := b.adaptTo(s, ce, x.Hi)
		if err != nil {
			return plan.Expr{}, err
		}
		return plan.Between(ce, lo, hi), nil
	case *CaseExpr:
		we, err := b.lowerExpr(s, x.When, false)
		if err != nil {
			return plan.Expr{}, err
		}
		te, ee, tt, et, err := b.lowerPair(s, x.Then, x.Else)
		if err != nil {
			return plan.Expr{}, err
		}
		if (tt.Kind == vector.String) != (et.Kind == vector.String) {
			return plan.Expr{}, errf(x.P, "CASE branches mix %s and %s", tt, et)
		}
		return plan.Case(we, te, ee), nil
	}
	return plan.Expr{}, errf(e.pos(), "unsupported expression %s", e)
}

// lowerPair lowers both operands of a binary construct, promoting an integer
// literal to float when the other side is float-typed (so `l_quantity < 24`
// over a decimal column compares as floats, matching the builder queries).
// The inferred operand types are returned for the caller's checks.
func (b *binder) lowerPair(s vector.Schema, lAst, rAst Expr) (plan.Expr, plan.Expr, vector.Type, vector.Type, error) {
	var lt, rt vector.Type
	le, err := b.lowerExpr(s, lAst, false)
	if err != nil {
		return plan.Expr{}, plan.Expr{}, lt, rt, err
	}
	re, err := b.lowerExpr(s, rAst, false)
	if err != nil {
		return plan.Expr{}, plan.Expr{}, lt, rt, err
	}
	lt, lterr := le.Type(s)
	rt, rterr := re.Type(s)
	if lterr == nil && rterr == nil {
		if lt.Kind == vector.Float64 && rt.Kind != vector.Float64 {
			if il, ok := rAst.(*IntLit); ok {
				re = plan.Float(float64(il.V))
				rt = vector.TFloat64
			}
		}
		if rt.Kind == vector.Float64 && lt.Kind != vector.Float64 {
			if il, ok := lAst.(*IntLit); ok {
				le = plan.Float(float64(il.V))
				lt = vector.TFloat64
			}
		}
	}
	return le, re, lt, rt, nil
}

// adaptTo lowers a literal bound, promoting integers to float when the
// subject expression is float-typed.
func (b *binder) adaptTo(s vector.Schema, subject plan.Expr, ast Expr) (plan.Expr, error) {
	e, err := b.lowerExpr(s, ast, false)
	if err != nil {
		return plan.Expr{}, err
	}
	st, serr := subject.Type(s)
	if serr == nil && st.Kind == vector.Float64 {
		if il, ok := ast.(*IntLit); ok {
			return plan.Float(float64(il.V)), nil
		}
	}
	return e, nil
}

// stripQualifiers rewrites qualified column refs to bare ones (used for
// ORDER BY, which binds against the output schema where qualifiers are
// gone).
func stripQualifiers(e Expr) Expr {
	if c, ok := e.(*ColRef); ok && c.Table != "" {
		return &ColRef{Name: c.Name, P: c.P}
	}
	return e
}
