package sql

import (
	"fmt"
	"strings"
	"time"

	"vectorh/internal/obs"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// Compile parses src and lowers it to a logical plan bound against the
// catalog. The emitted tree uses only the existing plan.Node/plan.Expr
// vocabulary, so the Parallel Rewriter, Xchg parallelism and MinMax skipping
// apply to SQL queries exactly as to hand-built plans.
func Compile(src string, cat plan.Catalog) (plan.Node, error) {
	return CompileTraced(src, cat, nil)
}

// CompileTraced is Compile with per-phase spans (parse, bind, decorrelate,
// joinorder) recorded into tr. A nil trace makes every span a no-op, so this
// is also the implementation of Compile.
func CompileTraced(src string, cat plan.Catalog, tr *obs.Trace) (plan.Node, error) {
	parseDone := tr.StartPhase("parse")
	stmt, err := Parse(src)
	parseDone()
	if err != nil {
		return nil, err
	}
	return LowerTraced(stmt, cat, tr)
}

// Lower plans a parsed statement in phases: bind the FROM clause and every
// reference (bind.go), decorrelate subquery predicates into hidden join
// sources (decorrelate.go), order the join tree by estimated cardinality
// (stats.go), and emit plan.Node operators (this file).
func Lower(stmt *SelectStmt, cat plan.Catalog) (plan.Node, error) {
	return LowerTraced(stmt, cat, nil)
}

// LowerTraced is Lower with phase spans recorded into tr; only the top-level
// block carries the trace (sub-block time folds into its caller's phase).
func LowerTraced(stmt *SelectStmt, cat plan.Catalog, tr *obs.Trace) (plan.Node, error) {
	b, err := newBlock(stmt, cat, nil)
	if err != nil {
		return nil, err
	}
	b.tr = tr
	return b.lower()
}

// boundTable is one FROM entry with its resolved schema and column usage.
// The binder is the single-table resolution layer the DML statements
// (INSERT/UPDATE/DELETE) still use; SELECT planning replaced it with block.
type boundTable struct {
	table, alias string
	schema       vector.Schema
	used         map[string]bool
}

type binder struct {
	tables []*boundTable
}

// resolve finds the table owning a column reference.
func (b *binder) resolve(c *ColRef) (int, vector.Field, error) {
	if c.Table != "" {
		for i, t := range b.tables {
			if t.alias == c.Table {
				f, err := t.schema.Field(c.Name)
				if err != nil {
					return 0, vector.Field{}, errf(c.P, "table %q has no column %q", c.Table, c.Name)
				}
				return i, f, nil
			}
		}
		return 0, vector.Field{}, errf(c.P, "unknown table alias %q", c.Table)
	}
	found := -1
	var field vector.Field
	for i, t := range b.tables {
		if j := t.schema.Index(c.Name); j >= 0 {
			if found >= 0 {
				return 0, vector.Field{}, errf(c.P, "ambiguous column %q (in %s and %s)",
					c.Name, b.tables[found].alias, t.alias)
			}
			found, field = i, t.schema[j]
		}
	}
	if found < 0 {
		return 0, vector.Field{}, errf(c.P, "unknown column %q", c.Name)
	}
	return found, field, nil
}

// bindRefs resolves every column reference in e, marking usage. When
// allowAggs is false, aggregate calls are rejected.
func (b *binder) bindRefs(e Expr, allowAggs bool) error {
	switch x := e.(type) {
	case *ColRef:
		ti, f, err := b.resolve(x)
		if err != nil {
			return err
		}
		b.tables[ti].used[f.Name] = true
	case *BinExpr:
		if err := b.bindRefs(x.L, allowAggs); err != nil {
			return err
		}
		return b.bindRefs(x.R, allowAggs)
	case *NotExpr:
		return b.bindRefs(x.E, allowAggs)
	case *FuncCall:
		if aggFuncs[x.Name] {
			if !allowAggs {
				return errf(x.P, "aggregate %s() is only allowed in the select list", x.Name)
			}
			if x.Arg != nil {
				// no nested aggregates inside an aggregate argument
				return b.bindRefs(x.Arg, false)
			}
			return nil
		}
		if x.Arg != nil {
			return b.bindRefs(x.Arg, allowAggs)
		}
	case *LikeExpr:
		return b.bindRefs(x.E, allowAggs)
	case *InExpr:
		return b.bindRefs(x.E, allowAggs)
	case *SubstrExpr:
		return b.bindRefs(x.E, allowAggs)
	case *BetweenExpr:
		if err := b.bindRefs(x.E, allowAggs); err != nil {
			return err
		}
		if err := b.bindRefs(x.Lo, allowAggs); err != nil {
			return err
		}
		return b.bindRefs(x.Hi, allowAggs)
	case *CaseExpr:
		if err := b.bindRefs(x.When, allowAggs); err != nil {
			return err
		}
		if err := b.bindRefs(x.Then, allowAggs); err != nil {
			return err
		}
		return b.bindRefs(x.Else, allowAggs)
	}
	return nil
}

// collectAggs returns the aggregate calls in e, in source order. Subquery
// expressions are opaque: their aggregates belong to their own blocks.
func collectAggs(e Expr) []*FuncCall {
	var out []*FuncCall
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *FuncCall:
			if aggFuncs[x.Name] {
				out = append(out, x)
				return
			}
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *LikeExpr:
			walk(x.E)
		case *InExpr:
			walk(x.E)
		case *SubstrExpr:
			walk(x.E)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *CaseExpr:
			walk(x.When)
			walk(x.Then)
			walk(x.Else)
		case *InSubquery:
			walk(x.E)
		}
	}
	walk(e)
	return out
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e Expr) []Expr {
	if be, ok := e.(*BinExpr); ok && be.Op == "and" {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []Expr{e}
}

// onConj is one pooled ON conjunct, tagged with its origin so LEFT JOIN
// conditions stay with their own join (inner-join conjuncts float freely —
// their placement is semantically unconstrained, which is what lets the
// greedy ordering rearrange the tree).
type onConj struct {
	e    Expr
	src  *source // FROM entry the conjunct was written on
	left bool
}

// lower plans the block: bind the remaining clauses, decorrelate subqueries,
// classify WHERE conjuncts for pushdown, order and build the join tree,
// attach the decorrelated sources, then aggregate and project.
func (b *block) lower() (plan.Node, error) {
	stmt, cat := b.stmt, b.cat

	// Phase timing (top-level block only): mark closes the span opened at
	// the previous mark, so the section boundaries below double as phase
	// boundaries. Error returns simply leave the current span unrecorded.
	phaseStart := time.Now()
	mark := func(name string) {
		if b.tr != nil {
			b.tr.AddPhase(name, time.Since(phaseStart))
			phaseStart = time.Now()
		}
	}

	// ---- bind: resolve every reference, record column usage ----
	if stmt.Star {
		if len(stmt.GroupBy) > 0 {
			return nil, errf(stmt.From[0].Pos, "SELECT * cannot be combined with GROUP BY")
		}
		for _, s := range b.srcs {
			for _, f := range s.schema {
				s.used[f.Name] = true
				s.valUsed[f.Name] = true
			}
		}
	}
	for _, it := range stmt.Items {
		if err := b.bindUse(it.Expr, true); err != nil {
			return nil, err
		}
	}
	for i, f := range stmt.From {
		if i == 0 || f.On == nil {
			continue
		}
		if err := b.bindOnUse(f.On); err != nil {
			return nil, err
		}
	}
	if stmt.Where != nil {
		if err := b.bindUse(stmt.Where, false); err != nil {
			return nil, err
		}
	}

	aliases := make(map[string]SelectItem)
	for _, it := range stmt.Items {
		if it.Alias != "" {
			aliases[it.Alias] = it
		}
	}
	// Group items are either source columns or select-list aliases.
	var groups []groupCol
	for _, g := range stmt.GroupBy {
		ref := &ColRef{Name: g.Name, P: g.Pos}
		if s, f, err := b.resolve(ref); err == nil {
			s.used[f.Name] = true
			s.valUsed[f.Name] = true
			groups = append(groups, groupCol{name: g.Name, fromCol: true})
		} else if _, ok := aliases[g.Name]; ok {
			groups = append(groups, groupCol{name: g.Name, fromCol: false})
		} else {
			return nil, errf(g.Pos, "GROUP BY %q is neither a column nor a select alias", g.Name)
		}
	}
	if stmt.Having != nil {
		if err := b.bindUse(stmt.Having, true); err != nil {
			return nil, err
		}
	}

	mark("bind")

	// ---- decorrelate: subquery predicates become hidden join sources ----
	var kept []Expr
	if stmt.Where != nil {
		for _, c := range splitAnd(stmt.Where) {
			switch x := c.(type) {
			case *ExistsExpr:
				if err := b.addExists(x); err != nil {
					return nil, err
				}
			case *InSubquery:
				if err := b.addInSub(x); err != nil {
					return nil, err
				}
			default:
				e, err := b.extractScalars(c, false)
				if err != nil {
					return nil, err
				}
				kept = append(kept, e)
			}
		}
	}
	var having []Expr
	if stmt.Having != nil {
		for _, c := range splitAnd(stmt.Having) {
			switch c.(type) {
			case *ExistsExpr, *InSubquery:
				return nil, errf(c.pos(), "EXISTS and IN subqueries are not supported in HAVING")
			}
			e, err := b.extractScalars(c, true)
			if err != nil {
				return nil, err
			}
			having = append(having, e)
		}
	}

	mark("decorrelate")

	// ---- classify WHERE conjuncts: single-source pushdown vs residual ----
	pushed := make(map[*source][]Expr)
	var residual []Expr
	for _, c := range kept {
		ss := b.srcsOf(c)
		if len(ss) == 1 {
			var only *source
			for s := range ss {
				only = s
			}
			// Rows of an outer-joined source cannot be filtered below the
			// join, and hidden-source values join in above the tree.
			if !only.hidden && only.kind != srcLeftOuter {
				pushed[only] = append(pushed[only], c)
				continue
			}
		}
		residual = append(residual, c)
	}

	// ---- order the join tree, fix physical output names ----
	order := b.orderSources(pushed)
	b.assignPhys(order)
	mark("joinorder")

	// ---- per-source subtrees: scan/derived + pushed filters + renames ----
	nodes := make(map[*source]plan.Node, len(order))
	schemas := make(map[*source]vector.Schema, len(order))
	for _, i := range order {
		s := b.srcs[i]
		node, ps, err := b.sourceNode(s, pushed[s])
		if err != nil {
			return nil, err
		}
		nodes[s], schemas[s] = node, ps
	}

	// ---- join chain over the pooled ON conjuncts ----
	var pool []onConj
	for i, f := range stmt.From {
		if i == 0 || f.On == nil {
			continue
		}
		for _, c := range splitAnd(f.On) {
			pool = append(pool, onConj{e: c, src: b.srcs[i], left: f.Left})
		}
	}
	first := b.srcs[order[0]]
	cur, curSchema := nodes[first], schemas[first]
	inTree := map[*source]bool{first: true}
	consumed := make([]bool, len(pool))
	for _, i := range order[1:] {
		s := b.srcs[i]
		rightNode, rightPS := nodes[s], schemas[s]
		var lKeys, rKeys []string
		var rest, rightOnly []Expr
		for pi := range pool {
			pc := pool[pi]
			if consumed[pi] {
				continue
			}
			if pc.left && pc.src != s {
				continue
			}
			avail := true
			refsRight := false
			refsTree := false
			for rs := range b.srcsOf(pc.e) {
				switch {
				case rs == s:
					refsRight = true
				case inTree[rs]:
					refsTree = true
				default:
					avail = false
				}
			}
			if !avail {
				continue
			}
			consumed[pi] = true
			if lk, rk, ok := b.poolKey(pc.e, inTree, s); ok {
				lKeys = append(lKeys, lk)
				rKeys = append(rKeys, rk)
				continue
			}
			if s.kind == srcLeftOuter {
				if refsRight && !refsTree {
					rightOnly = append(rightOnly, pc.e)
					continue
				}
				return nil, errf(pc.e.pos(),
					"LEFT JOIN condition %s must be a key equality or a filter on the joined table", pc.e)
			}
			rest = append(rest, pc.e)
		}
		if len(lKeys) == 0 {
			return nil, errf(s.pos,
				"join with %q needs at least one equality condition between the joined tables", s.alias)
		}
		if s.kind == srcLeftOuter {
			if len(rightOnly) > 0 {
				pred, err := b.lowerRewritten(rightPS, rightOnly)
				if err != nil {
					return nil, err
				}
				rightNode = plan.Filter(rightNode, pred)
			}
			cur = plan.Join(plan.LeftOuterJoin, cur, rightNode, lKeys, rKeys)
			curSchema = append(curSchema.Clone(), rightPS...)
			curSchema = append(curSchema, vector.Field{Name: plan.MatchedCol, Type: vector.TBool})
		} else {
			join := plan.Join(plan.InnerJoin, cur, rightNode, lKeys, rKeys)
			curSchema = append(curSchema.Clone(), rightPS...)
			if len(rest) > 0 {
				pred, err := b.lowerRewritten(curSchema, rest)
				if err != nil {
					return nil, err
				}
				join.On(pred)
			}
			cur = join
		}
		inTree[s] = true
	}

	// ---- attach the decorrelated hidden sources ----
	for _, s := range b.srcs {
		if !s.hidden {
			continue
		}
		var err error
		cur, curSchema, err = b.attachHidden(cur, curSchema, s)
		if err != nil {
			return nil, err
		}
	}

	// ---- residual WHERE above the joins ----
	if len(residual) > 0 {
		pred, err := b.lowerRewritten(curSchema, residual)
		if err != nil {
			return nil, err
		}
		cur = plan.Filter(cur, pred)
	}

	// ---- aggregation ----
	hasAgg := false
	for _, it := range stmt.Items {
		if len(collectAggs(it.Expr)) > 0 {
			hasAgg = true
		}
	}
	for _, h := range having {
		if len(collectAggs(h)) > 0 {
			hasAgg = true
		}
	}
	node := cur
	var aggByText map[string]string
	if hasAgg || len(groups) > 0 {
		var err error
		if node, aggByText, err = b.lowerAggregate(cur, curSchema, groups, aliases, having); err != nil {
			return nil, err
		}
	} else if len(having) > 0 {
		return nil, errf(stmt.Having.pos(), "HAVING requires GROUP BY or an aggregate")
	} else if !stmt.Star {
		items := make([]postItem, len(stmt.Items))
		for i, it := range stmt.Items {
			re := b.rewriteRefs(it.Expr)
			e, err := lowerExpr(curSchema, re, true)
			if err != nil {
				return nil, err
			}
			items[i] = postItem{name: outName(it), ex: e}
			if c, ok := re.(*ColRef); ok && it.Alias == "" && c.Name == items[i].name {
				items[i].bare = c.Name
			}
		}
		node = project(cur, curSchema, items)
	}

	// ---- ORDER BY / LIMIT over the output schema ----
	outSchema, err := node.Schema(cat)
	if err != nil {
		return nil, err
	}
	var keys []plan.OrderKey
	for _, o := range stmt.OrderBy {
		e := stripQualifiers(o.Expr)
		// Standard SQL ordinal: ORDER BY n sorts by the n-th output column.
		if il, ok := e.(*IntLit); ok {
			if il.V < 1 || il.V > int64(len(outSchema)) {
				return nil, errf(il.P, "ORDER BY position %d is out of range (1..%d)", il.V, len(outSchema))
			}
			keys = append(keys, plan.OrderKey{Expr: plan.Col(outSchema[il.V-1].Name), Desc: o.Desc})
			continue
		}
		// Aggregates in ORDER BY refer to their select-list output columns.
		e, err := rewriteAggsText(e, aggByText)
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*ColRef); ok {
			dup := 0
			for _, f := range outSchema {
				if f.Name == c.Name {
					dup++
				}
			}
			if dup > 1 {
				return nil, errf(c.P, "ORDER BY %q is ambiguous in the output columns", c.Name)
			}
		}
		le, err := lowerExpr(outSchema, e, true)
		if err != nil {
			return nil, err
		}
		keys = append(keys, plan.OrderKey{Expr: le, Desc: o.Desc})
	}
	switch {
	case len(keys) > 0 && stmt.Limit >= 0:
		return plan.Top(node, stmt.Limit, keys...), nil
	case len(keys) > 0:
		return plan.OrderBy(node, keys...), nil
	case stmt.Limit >= 0:
		return plan.Limit(node, stmt.Limit), nil
	}
	return node, nil
}

// sourceNode builds one source's subtree: a column-pruned scan (with pushed
// filters and scan-evaluable skip predicates) or the derived/hidden subplan
// (with a plain filter), topped by a rename projection when duplicate output
// names forced physical renames.
func (b *block) sourceNode(s *source, pushed []Expr) (plan.Node, vector.Schema, error) {
	var node plan.Node
	var ps vector.Schema
	if s.table != "" {
		var cols []string
		for _, f := range s.schema {
			if s.used[f.Name] {
				cols = append(cols, f.Name)
				ps = append(ps, f)
			}
		}
		if len(cols) == 0 { // e.g. SELECT count(*): scan one narrow column
			cols = []string{s.schema[0].Name}
			ps = vector.Schema{s.schema[0]}
		}
		node = plan.Scan(s.table, cols...)
		if len(pushed) > 0 {
			pred, err := lowerConj(ps, pushed)
			if err != nil {
				return nil, nil, err
			}
			f := plan.Filter(node, pred)
			if set, rest := deriveSkipSet(ps, pushed); set != nil {
				var res *plan.Expr
				if len(rest) > 0 {
					re, err := lowerConj(ps, rest)
					if err != nil {
						return nil, nil, err
					}
					res = &re
				}
				f.Push(set, res)
			}
			node = f
		}
	} else {
		// Derived table: the subplan computes every output column; pushed
		// conjuncts become a plain filter (no scan to push into from here —
		// the inner block already pushed its own WHERE).
		node, ps = s.sub, s.schema
		if len(pushed) > 0 {
			pred, err := lowerConj(ps, pushed)
			if err != nil {
				return nil, nil, err
			}
			node = plan.Filter(node, pred)
		}
	}
	if len(s.phys) > 0 {
		exprs := make([]plan.NamedExpr, len(ps))
		renamed := make(vector.Schema, len(ps))
		for i, f := range ps {
			exprs[i] = plan.As(s.outCol(f.Name), plan.Col(f.Name))
			renamed[i] = vector.Field{Name: s.outCol(f.Name), Type: f.Type}
		}
		node = plan.Project(node, exprs...)
		ps = renamed
	}
	return node, ps, nil
}

// poolKey recognizes an ON conjunct of the form tree.col = next.col (either
// orientation) with hash-compatible vector kinds, returning the physical key
// names. Kind-mismatched equalities (e.g. decimal vs float) stay residual
// predicates, where the comparison runs with the usual promotions.
func (b *block) poolKey(c Expr, inTree map[*source]bool, next *source) (lk, rk string, ok bool) {
	be, isBin := c.(*BinExpr)
	if !isBin || be.Op != "=" {
		return "", "", false
	}
	lc, lok := be.L.(*ColRef)
	rc, rok := be.R.(*ColRef)
	if !lok || !rok {
		return "", "", false
	}
	ls, lf, lerr := b.resolve(lc)
	rs, rf, rerr := b.resolve(rc)
	if lerr != nil || rerr != nil || lf.Type.Kind != rf.Type.Kind {
		return "", "", false
	}
	switch {
	case inTree[ls] && rs == next:
		return ls.outCol(lf.Name), rs.outCol(rf.Name), true
	case inTree[rs] && ls == next:
		return rs.outCol(rf.Name), ls.outCol(lf.Name), true
	}
	return "", "", false
}

// attachHidden joins one decorrelated subquery source into the tree: semi and
// anti joins keep the left schema; single-row scalar joins append the
// subquery's columns (and, for uncorrelated scalars, a synthesized constant
// key on the left).
func (b *block) attachHidden(cur plan.Node, curSchema vector.Schema, s *source) (plan.Node, vector.Schema, error) {
	if s.kind == srcSingle && len(s.leftKeys) == 0 {
		key := s.rightKeys[0]
		pass := make([]plan.NamedExpr, 0, len(curSchema)+1)
		for _, f := range curSchema {
			pass = append(pass, plan.As(f.Name, plan.Col(f.Name)))
		}
		pass = append(pass, plan.As(key, plan.Int(0)))
		left := plan.Project(cur, pass...)
		join := plan.Join(plan.InnerJoin, left, s.sub, []string{key}, []string{key})
		out := append(curSchema.Clone(), vector.Field{Name: key, Type: vector.TInt64})
		out = append(out, s.schema...)
		return join, out, nil
	}

	lKeys := make([]string, len(s.leftKeys))
	for i, c := range s.leftKeys {
		ls, lf, err := b.resolve(c)
		if err != nil {
			return nil, nil, err
		}
		rf, ferr := s.schema.Field(s.rightKeys[i])
		if ferr == nil && lf.Type.Kind != rf.Type.Kind {
			return nil, nil, errf(c.P, "subquery column (%s) and outer column %s (%s) have incompatible types",
				rf.Type, c.Name, lf.Type)
		}
		lKeys[i] = ls.outCol(lf.Name)
	}
	switch s.kind {
	case srcSemi, srcAnti:
		kind := plan.SemiJoin
		if s.kind == srcAnti {
			kind = plan.AntiJoin
		}
		return plan.Join(kind, cur, s.sub, lKeys, s.rightKeys), curSchema, nil
	default: // srcSingle, correlated
		join := plan.Join(plan.InnerJoin, cur, s.sub, lKeys, s.rightKeys)
		return join, append(curSchema.Clone(), s.schema...), nil
	}
}

// lowerRewritten rewrites each conjunct's references to physical names and
// lowers the conjunction over the given schema.
func (b *block) lowerRewritten(s vector.Schema, conj []Expr) (plan.Expr, error) {
	rw := make([]Expr, len(conj))
	for i, c := range conj {
		rw[i] = b.rewriteRefs(c)
	}
	return lowerConj(s, rw)
}

// postItem is one output projection entry.
type postItem struct {
	name string
	ex   plan.Expr
	bare string // non-empty when the item is a pass-through bare column
}

// project emits a ProjectNode unless the items are exactly the child schema.
func project(child plan.Node, childSchema vector.Schema, items []postItem) plan.Node {
	if len(items) == len(childSchema) {
		same := true
		for i, it := range items {
			if it.bare == "" || it.bare != childSchema[i].Name || it.name != childSchema[i].Name {
				same = false
				break
			}
		}
		if same {
			return child
		}
	}
	exprs := make([]plan.NamedExpr, len(items))
	for i, it := range items {
		exprs[i] = plan.As(it.name, it.ex)
	}
	return plan.Project(child, exprs...)
}

// outName picks the output column name of a select item.
func outName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	return it.Expr.String()
}

// groupCol is one GROUP BY target: a source column or a select-list alias.
// phys is its column name in the Aggregate input/output, which differs from
// name only when a duplicate forced a physical rename.
type groupCol struct {
	name    string
	phys    string
	fromCol bool
}

// lowerAggregate builds [pre-projection →] Aggregate [→ scalar-subquery
// joins] [→ HAVING filter] [→ post-projection].
// A pre-projection is emitted only when GROUP BY targets computed
// select-list aliases (the shape hand-built queries like TPC-H Q7–Q9 use);
// otherwise aggregation runs directly over the joined/filtered source with
// aggregate arguments as inline expressions. HAVING aggregates missing from
// the select list are computed under hidden names and dropped by the post-
// projection; counts over an outer-joined table's columns count matched rows
// via the join's __matched flag, the engine's NULL-free left outer encoding.
func (b *block) lowerAggregate(cur plan.Node, curSchema vector.Schema, groups []groupCol,
	aliases map[string]SelectItem, having []Expr) (plan.Node, map[string]string, error) {
	stmt, cat := b.stmt, b.cat
	needPre := false
	groupSet := make(map[string]bool, len(groups))
	for i := range groups {
		g := &groups[i]
		if g.fromCol {
			s, f, err := b.resolve(&ColRef{Name: g.name})
			if err != nil {
				return nil, nil, err
			}
			g.phys = s.outCol(f.Name)
		} else {
			needPre = true
			g.phys = g.name
		}
		groupSet[g.name] = true
	}

	// Non-aggregated column refs in the select list must be group columns.
	for _, it := range stmt.Items {
		if it.Alias != "" && groupSet[it.Alias] && len(collectAggs(it.Expr)) == 0 {
			continue // this item *is* a computed group expression
		}
		if err := checkGrouped(it.Expr, groupSet); err != nil {
			return nil, nil, err
		}
	}
	for _, h := range having {
		if err := checkGrouped(h, groupSet); err != nil {
			return nil, nil, err
		}
	}

	// Name every aggregate call: select-list order first, then HAVING-only
	// aggregates under their canonical text (hidden — dropped by the post-
	// projection, which never references them).
	type aggInfo struct {
		call *FuncCall
		name string
	}
	var aggs []aggInfo
	aggName := make(map[*FuncCall]string)
	aggByText := make(map[string]string)
	taken := make(map[string]bool)
	for _, g := range groups {
		taken[g.name] = true
		taken[g.phys] = true
	}
	for _, it := range stmt.Items {
		for _, c := range collectAggs(it.Expr) {
			name := c.String()
			if it.Alias != "" && Expr(c) == it.Expr {
				name = it.Alias
			}
			for taken[name] {
				name += "_"
			}
			taken[name] = true
			aggs = append(aggs, aggInfo{c, name})
			aggName[c] = name
			aggByText[c.String()] = name
		}
	}
	for _, h := range having {
		for _, c := range collectAggs(h) {
			if n, ok := aggByText[c.String()]; ok {
				aggName[c] = n
				continue
			}
			name := c.String()
			for taken[name] {
				name += "_"
			}
			taken[name] = true
			aggs = append(aggs, aggInfo{c, name})
			aggName[c] = name
			aggByText[c.String()] = name
		}
	}

	groupNames := make([]string, len(groups))
	for i, g := range groups {
		groupNames[i] = g.phys
	}

	child := cur
	items := make([]plan.AggItem, 0, len(aggs))
	if needPre {
		var pre []plan.NamedExpr
		for _, g := range groups {
			if g.fromCol {
				pre = append(pre, plan.As(g.phys, plan.Col(g.phys)))
				continue
			}
			e, err := lowerExpr(curSchema, b.rewriteRefs(aliases[g.name].Expr), true)
			if err != nil {
				return nil, nil, err
			}
			pre = append(pre, plan.As(g.name, e))
		}
		for i, a := range aggs {
			if a.call.Star {
				items = append(items, plan.AStar(a.name))
				continue
			}
			fn, arg, err := b.aggArg(a.call, curSchema)
			if err != nil {
				return nil, nil, err
			}
			argName := fmt.Sprintf("__arg%d", i)
			pre = append(pre, plan.As(argName, arg))
			items = append(items, plan.A(a.name, fn, plan.Col(argName)))
		}
		child = plan.Project(cur, pre...)
	} else {
		for _, a := range aggs {
			if a.call.Star {
				items = append(items, plan.AStar(a.name))
				continue
			}
			fn, arg, err := b.aggArg(a.call, curSchema)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, plan.A(a.name, fn, arg))
		}
	}
	aggNode := plan.Aggregate(child, groupNames, items...)
	aggSchema, err := aggNode.Schema(cat)
	if err != nil {
		return nil, nil, err
	}

	// Uncorrelated scalar subqueries referenced from HAVING join in above
	// the aggregation on a synthesized constant key.
	node := plan.Node(aggNode)
	schema := aggSchema
	for _, s := range b.postSubs {
		key := s.rightKeys[0]
		pass := make([]plan.NamedExpr, 0, len(schema)+1)
		for _, f := range schema {
			pass = append(pass, plan.As(f.Name, plan.Col(f.Name)))
		}
		pass = append(pass, plan.As(key, plan.Int(0)))
		node = plan.Join(plan.InnerJoin, plan.Project(node, pass...), s.sub,
			[]string{key}, []string{key})
		schema = append(schema.Clone(), vector.Field{Name: key, Type: vector.TInt64})
		schema = append(schema, s.schema...)
	}

	// HAVING: aggregate calls refer to their output columns, group columns
	// to their physical names.
	if len(having) > 0 {
		conj := make([]Expr, len(having))
		for i, h := range having {
			conj[i] = mapGroupPhys(rewriteAggs(h, aggName), groups)
		}
		pred, err := lowerConj(schema, conj)
		if err != nil {
			return nil, nil, err
		}
		node = plan.Filter(node, pred)
	}

	// Post-projection in select-list order.
	post := make([]postItem, len(stmt.Items))
	for i, it := range stmt.Items {
		name := outName(it)
		switch x := it.Expr.(type) {
		case *ColRef:
			if groupSet[x.Name] && it.Alias == "" {
				ph := x.Name
				for _, g := range groups {
					if g.name == x.Name {
						ph = g.phys
					}
				}
				post[i] = postItem{name: x.Name, ex: plan.Col(ph)}
				if ph == x.Name {
					post[i].bare = ph
				}
				continue
			}
		case *FuncCall:
			if n, isAgg := aggName[x]; isAgg {
				post[i] = postItem{name: n, ex: plan.Col(n), bare: n}
				continue
			}
		}
		if it.Alias != "" && groupSet[it.Alias] && len(collectAggs(it.Expr)) == 0 {
			// computed group expression: already materialized under its alias
			post[i] = postItem{name: it.Alias, ex: plan.Col(it.Alias), bare: it.Alias}
			continue
		}
		// general expression over aggregate results (e.g. 100*sum(a)/sum(b))
		e, err := lowerExpr(schema, mapGroupPhys(rewriteAggs(it.Expr, aggName), groups), true)
		if err != nil {
			return nil, nil, err
		}
		post[i] = postItem{name: name, ex: e}
	}
	return project(node, schema, post), aggByText, nil
}

// aggArg lowers one aggregate call into its logical function and argument
// expression. count over an outer-joined table's column becomes a sum of the
// join's match flag: the engine has no NULLs, so the flag is the only record
// of unmatched left rows (TPC-H Q13's count(o_orderkey)).
func (b *block) aggArg(c *FuncCall, curSchema vector.Schema) (plan.AggFuncName, plan.Expr, error) {
	if c.Name == "count" && !c.Distinct {
		if col, ok := c.Arg.(*ColRef); ok {
			if s, _, err := b.resolve(col); err == nil && s.kind == srcLeftOuter {
				return plan.Sum, plan.Case(plan.Col(plan.MatchedCol), plan.Int(1), plan.Int(0)), nil
			}
		}
	}
	fn, err := aggFuncName(c)
	if err != nil {
		return "", plan.Expr{}, err
	}
	arg, err := lowerExpr(curSchema, b.rewriteRefs(c.Arg), false)
	if err != nil {
		return "", plan.Expr{}, err
	}
	return fn, arg, nil
}

// mapGroupPhys rewrites bare references to renamed group columns into their
// physical names (a no-op unless a duplicate column name forced a rename).
func mapGroupPhys(e Expr, groups []groupCol) Expr {
	needed := false
	for _, g := range groups {
		if g.phys != g.name {
			needed = true
		}
	}
	if !needed {
		return e
	}
	switch x := e.(type) {
	case *ColRef:
		for _, g := range groups {
			if g.name == x.Name && g.phys != x.Name {
				return &ColRef{Name: g.phys, P: x.P}
			}
		}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: mapGroupPhys(x.L, groups), R: mapGroupPhys(x.R, groups), P: x.P}
	case *NotExpr:
		return &NotExpr{E: mapGroupPhys(x.E, groups), P: x.P}
	case *FuncCall:
		if x.Arg != nil {
			return &FuncCall{Name: x.Name, Arg: mapGroupPhys(x.Arg, groups), Star: x.Star,
				Distinct: x.Distinct, P: x.P}
		}
	case *LikeExpr:
		return &LikeExpr{E: mapGroupPhys(x.E, groups), Pattern: x.Pattern, Not: x.Not, P: x.P}
	case *InExpr:
		return &InExpr{E: mapGroupPhys(x.E, groups), Strs: x.Strs, Ints: x.Ints, Not: x.Not, P: x.P}
	case *SubstrExpr:
		return &SubstrExpr{E: mapGroupPhys(x.E, groups), Start: x.Start, Length: x.Length, P: x.P}
	case *BetweenExpr:
		return &BetweenExpr{E: mapGroupPhys(x.E, groups), Lo: mapGroupPhys(x.Lo, groups),
			Hi: mapGroupPhys(x.Hi, groups), P: x.P}
	case *CaseExpr:
		return &CaseExpr{When: mapGroupPhys(x.When, groups), Then: mapGroupPhys(x.Then, groups),
			Else: mapGroupPhys(x.Else, groups), P: x.P}
	}
	return e
}

// rewriteAggsText replaces aggregate calls in an ORDER BY expression with
// references to the matching select-list aggregate's output column (matched
// by canonical text, since ORDER BY re-parses the call as a distinct AST
// node).
func rewriteAggsText(e Expr, aggByText map[string]string) (Expr, error) {
	switch x := e.(type) {
	case *FuncCall:
		if aggFuncs[x.Name] {
			if n, ok := aggByText[x.String()]; ok {
				return &ColRef{Name: n, P: x.P}, nil
			}
			return nil, errf(x.P, "aggregate %s in ORDER BY must also appear in the select list", x)
		}
	case *BinExpr:
		l, err := rewriteAggsText(x.L, aggByText)
		if err != nil {
			return nil, err
		}
		r, err := rewriteAggsText(x.R, aggByText)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: x.Op, L: l, R: r, P: x.P}, nil
	}
	return e, nil
}

// checkGrouped verifies every column ref outside aggregate arguments names a
// group column. References to decorrelated scalar-subquery values (__sqN)
// are single per group by construction and pass.
func checkGrouped(e Expr, groupSet map[string]bool) error {
	switch x := e.(type) {
	case *ColRef:
		if strings.HasPrefix(x.Name, "__sq") {
			return nil
		}
		if !groupSet[x.Name] {
			return errf(x.P, "column %q must appear in GROUP BY or inside an aggregate", x.Name)
		}
	case *BinExpr:
		if err := checkGrouped(x.L, groupSet); err != nil {
			return err
		}
		return checkGrouped(x.R, groupSet)
	case *NotExpr:
		return checkGrouped(x.E, groupSet)
	case *FuncCall:
		if aggFuncs[x.Name] {
			return nil // aggregate arguments may use any source column
		}
		if x.Arg != nil {
			return checkGrouped(x.Arg, groupSet)
		}
	case *LikeExpr:
		return checkGrouped(x.E, groupSet)
	case *InExpr:
		return checkGrouped(x.E, groupSet)
	case *SubstrExpr:
		return checkGrouped(x.E, groupSet)
	case *BetweenExpr:
		if err := checkGrouped(x.E, groupSet); err != nil {
			return err
		}
		if err := checkGrouped(x.Lo, groupSet); err != nil {
			return err
		}
		return checkGrouped(x.Hi, groupSet)
	case *CaseExpr:
		if err := checkGrouped(x.When, groupSet); err != nil {
			return err
		}
		if err := checkGrouped(x.Then, groupSet); err != nil {
			return err
		}
		return checkGrouped(x.Else, groupSet)
	}
	return nil
}

// rewriteAggs replaces aggregate calls with references to their output
// columns, leaving every other node untouched.
func rewriteAggs(e Expr, aggName map[*FuncCall]string) Expr {
	switch x := e.(type) {
	case *FuncCall:
		if n, ok := aggName[x]; ok {
			return &ColRef{Name: n, P: x.P}
		}
		if x.Arg != nil {
			return &FuncCall{Name: x.Name, Arg: rewriteAggs(x.Arg, aggName), P: x.P}
		}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: rewriteAggs(x.L, aggName), R: rewriteAggs(x.R, aggName), P: x.P}
	case *NotExpr:
		return &NotExpr{E: rewriteAggs(x.E, aggName), P: x.P}
	case *LikeExpr:
		return &LikeExpr{E: rewriteAggs(x.E, aggName), Pattern: x.Pattern, Not: x.Not, P: x.P}
	case *InExpr:
		return &InExpr{E: rewriteAggs(x.E, aggName), Strs: x.Strs, Ints: x.Ints, Not: x.Not, P: x.P}
	case *SubstrExpr:
		return &SubstrExpr{E: rewriteAggs(x.E, aggName), Start: x.Start, Length: x.Length, P: x.P}
	case *BetweenExpr:
		return &BetweenExpr{E: rewriteAggs(x.E, aggName), Lo: rewriteAggs(x.Lo, aggName),
			Hi: rewriteAggs(x.Hi, aggName), P: x.P}
	case *CaseExpr:
		return &CaseExpr{When: rewriteAggs(x.When, aggName), Then: rewriteAggs(x.Then, aggName),
			Else: rewriteAggs(x.Else, aggName), P: x.P}
	}
	return e
}

// aggFuncName maps a parsed aggregate call to the logical function.
func aggFuncName(c *FuncCall) (plan.AggFuncName, error) {
	switch c.Name {
	case "sum":
		return plan.Sum, nil
	case "min":
		return plan.Min, nil
	case "max":
		return plan.Max, nil
	case "avg":
		return plan.Avg, nil
	case "count":
		if c.Distinct {
			return plan.CountDistinct, nil
		}
		return plan.Count, nil
	}
	return "", errf(c.P, "unknown aggregate %q", c.Name)
}

// lowerConj lowers a conjunct list into one predicate.
func lowerConj(s vector.Schema, conj []Expr) (plan.Expr, error) {
	var out plan.Expr
	for i, c := range conj {
		e, err := lowerExpr(s, c, false)
		if err != nil {
			return plan.Expr{}, err
		}
		if i == 0 {
			out = e
		} else {
			out = plan.And(out, e)
		}
	}
	return out, nil
}

// lowerExpr lowers a scalar AST expression over a concrete schema. top marks
// projection/group positions where a bare decimal column stays raw; anywhere
// nested, decimal columns convert to float64 (SQL decimal semantics), which
// mirrors the plan.Dec usage of the hand-built queries.
func lowerExpr(s vector.Schema, e Expr, top bool) (plan.Expr, error) {
	switch x := e.(type) {
	case *ColRef:
		i := s.Index(x.Name)
		if i < 0 {
			return plan.Expr{}, errf(x.P, "unknown column %q", x.Name)
		}
		if s[i].Type == vector.TDecimal && !top {
			return plan.Dec(x.Name), nil
		}
		return plan.Col(x.Name), nil
	case *IntLit:
		return plan.Int(x.V), nil
	case *FloatLit:
		return plan.Float(x.V), nil
	case *StrLit:
		return plan.Str(x.V), nil
	case *DateLit:
		if x.Months != 0 {
			return plan.DateOffset(x.V, x.Months), nil
		}
		return plan.Date(x.V), nil
	case *BinExpr:
		if x.Op == "and" || x.Op == "or" {
			le, err := lowerExpr(s, x.L, false)
			if err != nil {
				return plan.Expr{}, err
			}
			re, err := lowerExpr(s, x.R, false)
			if err != nil {
				return plan.Expr{}, err
			}
			if x.Op == "and" {
				return plan.And(le, re), nil
			}
			return plan.Or(le, re), nil
		}
		le, re, lt, rt, err := lowerPair(s, x.L, x.R)
		if err != nil {
			return plan.Expr{}, err
		}
		// Reject type mismatches the execution layer would only hit at
		// runtime, with a source position instead.
		lStr, rStr := lt.Kind == vector.String, rt.Kind == vector.String
		switch x.Op {
		case "+", "-", "*", "/":
			if lStr || rStr {
				return plan.Expr{}, errf(x.P, "operator %q is not defined on strings", x.Op)
			}
		default:
			if lStr != rStr {
				return plan.Expr{}, errf(x.P, "cannot compare %s with %s", lt, rt)
			}
		}
		switch x.Op {
		case "+":
			return plan.Add(le, re), nil
		case "-":
			return plan.Sub(le, re), nil
		case "*":
			return plan.Mul(le, re), nil
		case "/":
			return plan.Div(le, re), nil
		case "=":
			return plan.EQ(le, re), nil
		case "<>":
			return plan.NE(le, re), nil
		case "<":
			return plan.LT(le, re), nil
		case "<=":
			return plan.LE(le, re), nil
		case ">":
			return plan.GT(le, re), nil
		case ">=":
			return plan.GE(le, re), nil
		}
		return plan.Expr{}, errf(x.P, "unsupported operator %q", x.Op)
	case *NotExpr:
		ce, err := lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		return plan.Not(ce), nil
	case *FuncCall:
		if aggFuncs[x.Name] {
			return plan.Expr{}, errf(x.P, "aggregate %s() is not allowed here", x.Name)
		}
		// year()
		ce, err := lowerExpr(s, x.Arg, false)
		if err != nil {
			return plan.Expr{}, err
		}
		return plan.Year(ce), nil
	case *LikeExpr:
		ce, err := lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		if x.Not {
			return plan.NotLike(ce, x.Pattern), nil
		}
		return plan.Like(ce, x.Pattern), nil
	case *SubstrExpr:
		ce, err := lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		if ct, cterr := ce.Type(s); cterr == nil && ct.Kind != vector.String {
			return plan.Expr{}, errf(x.P, "SUBSTRING requires a string argument, got %s", ct)
		}
		return plan.Substr(ce, int(x.Start), int(x.Length)), nil
	case *InExpr:
		ce, err := lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		ct, cterr := ce.Type(s)
		var in plan.Expr
		switch {
		case len(x.Strs) > 0:
			if cterr == nil && ct.Kind != vector.String {
				return plan.Expr{}, errf(x.P, "IN list of strings against %s", ct)
			}
			in = plan.InStr(ce, x.Strs...)
		case cterr == nil && ct.Kind == vector.String:
			return plan.Expr{}, errf(x.P, "IN list of integers against %s", ct)
		case cterr == nil && ct.Kind == vector.Float64:
			// Float subject (e.g. a decimal column): expand to an equality
			// chain, matching the promotion `= literal` gets.
			for i, v := range x.Ints {
				eq := plan.EQ(ce, plan.Float(float64(v)))
				if i == 0 {
					in = eq
				} else {
					in = plan.Or(in, eq)
				}
			}
		default:
			in = plan.InInt(ce, x.Ints...)
		}
		if x.Not {
			return plan.Not(in), nil
		}
		return in, nil
	case *BetweenExpr:
		ce, err := lowerExpr(s, x.E, false)
		if err != nil {
			return plan.Expr{}, err
		}
		lo, err := adaptTo(s, ce, x.Lo)
		if err != nil {
			return plan.Expr{}, err
		}
		hi, err := adaptTo(s, ce, x.Hi)
		if err != nil {
			return plan.Expr{}, err
		}
		return plan.Between(ce, lo, hi), nil
	case *CaseExpr:
		we, err := lowerExpr(s, x.When, false)
		if err != nil {
			return plan.Expr{}, err
		}
		te, ee, tt, et, err := lowerPair(s, x.Then, x.Else)
		if err != nil {
			return plan.Expr{}, err
		}
		if (tt.Kind == vector.String) != (et.Kind == vector.String) {
			return plan.Expr{}, errf(x.P, "CASE branches mix %s and %s", tt, et)
		}
		return plan.Case(we, te, ee), nil
	case *ParamExpr:
		return plan.Expr{}, errf(x.P, "unbound parameter ?%d (bind values with a prepared statement)", x.Idx)
	case *SubqueryExpr:
		return plan.Expr{}, errf(x.P, "scalar subquery is only supported in top-level AND conjuncts")
	case *ExistsExpr:
		return plan.Expr{}, errf(x.P, "EXISTS is only supported as a top-level WHERE conjunct")
	case *InSubquery:
		return plan.Expr{}, errf(x.P, "IN (SELECT ...) is only supported as a top-level WHERE conjunct")
	}
	return plan.Expr{}, errf(e.pos(), "unsupported expression %s", e)
}

// lowerPair lowers both operands of a binary construct, promoting an integer
// literal to float when the other side is float-typed (so `l_quantity < 24`
// over a decimal column compares as floats, matching the builder queries).
// The inferred operand types are returned for the caller's checks.
func lowerPair(s vector.Schema, lAst, rAst Expr) (plan.Expr, plan.Expr, vector.Type, vector.Type, error) {
	var lt, rt vector.Type
	le, err := lowerExpr(s, lAst, false)
	if err != nil {
		return plan.Expr{}, plan.Expr{}, lt, rt, err
	}
	re, err := lowerExpr(s, rAst, false)
	if err != nil {
		return plan.Expr{}, plan.Expr{}, lt, rt, err
	}
	lt, lterr := le.Type(s)
	rt, rterr := re.Type(s)
	if lterr == nil && rterr == nil {
		if lt.Kind == vector.Float64 && rt.Kind != vector.Float64 {
			if il, ok := rAst.(*IntLit); ok {
				re = plan.Float(float64(il.V))
				rt = vector.TFloat64
			}
		}
		if rt.Kind == vector.Float64 && lt.Kind != vector.Float64 {
			if il, ok := lAst.(*IntLit); ok {
				le = plan.Float(float64(il.V))
				lt = vector.TFloat64
			}
		}
	}
	return le, re, lt, rt, nil
}

// adaptTo lowers a literal bound, promoting integers to float when the
// subject expression is float-typed.
func adaptTo(s vector.Schema, subject plan.Expr, ast Expr) (plan.Expr, error) {
	e, err := lowerExpr(s, ast, false)
	if err != nil {
		return plan.Expr{}, err
	}
	st, serr := subject.Type(s)
	if serr == nil && st.Kind == vector.Float64 {
		if il, ok := ast.(*IntLit); ok {
			return plan.Float(float64(il.V)), nil
		}
	}
	return e, nil
}

// stripQualifiers rewrites qualified column refs to bare ones (used for
// ORDER BY, which binds against the output schema where qualifiers are
// gone).
func stripQualifiers(e Expr) Expr {
	if c, ok := e.(*ColRef); ok && c.Table != "" {
		return &ColRef{Name: c.Name, P: c.P}
	}
	return e
}
