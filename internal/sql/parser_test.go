package sql

import (
	"strings"
	"testing"
)

// TestParseGolden locks the parse of representative statements via the
// canonical AST rendering.
func TestParseGolden(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"SELECT a, b AS x FROM t WHERE a > 10 AND b LIKE 'x%' ORDER BY a DESC LIMIT 5",
			"select a, b as x from t where ((a > 10) and (b like 'x%')) order by a desc limit 5",
		},
		{
			"select t.a, sum(b) total from t join u on t.id = u.id group by a order by total desc",
			"select t.a, sum(b) as total from t join u on (t.id = u.id) group by a order by total desc",
		},
		{
			"select case when a in (1, 2) then 1 else 0 end from t",
			"select case when (a in (1, 2)) then 1 else 0 end from t",
		},
		{
			"select * from t where d >= date '1994-01-01' + interval '3' month;",
			"select * from t where (d >= date '1994-01-01' + interval '3' month)",
		},
		{
			"select count(*) from t where not a = 1 or b between 1 and 2",
			"select count(*) from t where ((not (a = 1)) or (b between 1 and 2))",
		},
		{
			"select count(distinct a), avg(b / 2.5) from t tt where tt.s <> 'don''t'",
			"select count(distinct a), avg((b / 2.5)) from t tt where (tt.s <> 'don''t')",
		},
		{
			"select a from t where x = -3 and y not like '%z%' and w not in (4, 5)",
			"select a from t where (((x = -3) and (y not like '%z%')) and (w not in (4, 5)))",
		},
		{
			"select a + b * c - d from t -- trailing comment\n order by 2 asc",
			"select ((a + (b * c)) - d) from t order by 2",
		},
		{
			"select a from t where exists (select * from u where u.id = t.id)",
			"select a from t where (exists (select * from u where (u.id = t.id)))",
		},
		{
			"select a from t where a not in (select id from u) and not exists (select * from u)",
			"select a from t where ((a not in (select id from u)) and (not exists (select * from u)))",
		},
		{
			"select s, sum(a) from t group by s having sum(a) > (select avg(a) from t)",
			"select s, sum(a) from t group by s having (sum(a) > (select avg(a) from t))",
		},
		{
			"select x from (select a as x from t) d left outer join u on x = u.id",
			"select x from (select a as x from t) d left join u on (x = u.id)",
		},
		{
			"select substring(s from 1 for 2) as code from t where substring(s from 3 for 1) = 'x'",
			"select substring(s from 1 for 2) as code from t where (substring(s from 3 for 1) = 'x')",
		},
		{
			"select x from (select a as x from t) as d join u as v on x = v.id",
			"select x from (select a as x from t) d join u v on (x = v.id)",
		},
	}
	for _, c := range cases {
		stmt, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := stmt.String(); got != c.want {
			t.Errorf("Parse(%q)\n got  %s\n want %s", c.in, got, c.want)
		}
	}
}

// TestParseErrors locks error messages and their 1-based line:col positions.
func TestParseErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select", `1:7: expected expression, found "end of input"`},
		{"select a", `1:9: expected "from", found "end of input"`},
		{"select a from t where", `1:22: expected expression, found "end of input"`},
		{"select a from t limit b", `1:23: expected integer LIMIT, found "b"`},
		{"select sum(a from t", `1:14: expected ")", found "from"`},
		{"select a from t where b = 'x", `1:27: unterminated string literal`},
		{"select a # from t", `1:10: unexpected character "#"`},
		{"select nosuchfunc(a) from t", `1:8: unknown function "nosuchfunc"`},
		{"select sum(*) from t", `1:8: sum(*) is not valid; only count(*)`},
		{"select a from t where d >= date 'May 1994'", `1:33: bad date literal "May 1994"`},
		{"select a from t group by", `1:25: expected group-by column, found "end of input"`},
		{"select a from t join u", `1:23: expected "on", found "end of input"`},
		{"select a from t; select b from t", `1:18: unexpected "select" after end of statement`},
		{"select a from t\nwhere b =", `2:10: expected expression, found "end of input"`},
		{"select a from t where exists (a > 1)", `1:31: expected SELECT after EXISTS (, found "a"`},
		{"select substring(s from x for 2) from t", `1:25: expected integer start in SUBSTRING, found "x"`},
		{"select substring(s from 1, 2) from t", `1:26: expected "for", found ","`},
		{"select a from (select a from t)", `1:32: derived table requires an alias, found "end of input"`},
		{"select a from (select a from t) as", `1:35: derived table requires an alias, found "end of input"`},
		{"select a from t as where a = 1", `1:20: expected alias, found "where"`},
		{"select a from t where a in (select)", `1:35: expected expression, found ")"`},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error %q, got none", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q)\n got  %v\n want substring %q", c.in, err, c.want)
		}
	}
}

// TestLexPositions checks multi-line position tracking.
func TestLexPositions(t *testing.T) {
	toks, err := lex("select a\n  from t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].text != "from" || toks[2].pos != (Pos{2, 3}) {
		t.Fatalf("from token at %v, want 2:3", toks[2].pos)
	}
}
