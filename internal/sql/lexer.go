// Package sql is the text front-end of the engine: a hand-written lexer, a
// recursive-descent parser for a pragmatic SELECT + DML subset, and a binder
// that resolves names against the engine catalog and lowers statements onto
// the logical plan.Node/plan.Expr trees consumed by the Parallel Rewriter
// (queries) or onto the engine's PDT-backed trickle-update entry points
// (INSERT/UPDATE/DELETE). The whole existing pipeline — rewrite rules, Xchg
// parallelism, MinMax skipping, PDT-merging scans — applies to SQL-born
// plans unchanged.
//
// Supported grammar (keywords are case-insensitive):
//
//	SELECT item [, item...]
//	FROM source [alias] [[LEFT [OUTER]] JOIN source [alias] ON cond [AND cond...]]...
//	[WHERE pred] [GROUP BY col|alias, ...] [HAVING pred]
//	[ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//
//	source := table | ( SELECT ... )        -- derived tables need an alias
//
//	INSERT INTO table [(col, ...)] VALUES (lit, ...) [, (lit, ...)]...
//	UPDATE table SET col = expr [, col = expr]... [WHERE pred]
//	DELETE FROM table [WHERE pred]
//
// with comparison/AND/OR/NOT, + - * /, LIKE, IN, BETWEEN, CASE WHEN, date
// literals (DATE 'YYYY-MM-DD' [+ INTERVAL 'n' MONTH]), YEAR(),
// SUBSTRING(e FROM i FOR n), and the aggregates
// sum/min/max/avg/count(*)/count(distinct). Predicates additionally admit
// subqueries — [NOT] EXISTS (SELECT ...), e [NOT] IN (SELECT ...), and
// scalar (SELECT ...) — which the multi-phase planner (lower.go) decorrelates
// into semi/anti/outer/single-row hash joins. Statements separated by ';'
// form scripts (SplitStatements).
package sql

import (
	"fmt"
	"strings"
)

// Pos is a 1-based source location.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned front-end error (lexing, parsing or binding).
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: %s: %s", e.Pos, e.Msg) }

func errf(p Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// tokKind enumerates token categories.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tKeyword
	tInt
	tFloat
	tString // single-quoted literal
	tSymbol // punctuation and operators
)

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string // keywords lower-cased; symbols canonical
	pos  Pos
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "join": true, "on": true,
	"group": true, "by": true, "order": true, "asc": true, "desc": true,
	"limit": true, "and": true, "or": true, "not": true, "as": true,
	"in": true, "like": true, "between": true, "case": true, "when": true,
	"then": true, "else": true, "end": true, "date": true, "interval": true,
	"month": true, "distinct": true, "inner": true, "explain": true,
	"insert": true, "into": true, "values": true, "update": true,
	"set": true, "delete": true, "exists": true, "having": true,
	"substring": true, "for": true, "left": true, "outer": true,
}

// SplitStatements cuts a script into its ';'-separated statements,
// honoring single-quoted string literals (with ” escapes) and -- line
// comments. Statement-less fragments (whitespace, comments) are dropped;
// lexical errors surface when the fragment is parsed.
func SplitStatements(src string) []string {
	var out []string
	start := 0
	flush := func(end int) {
		s := src[start:end]
		// Emit the fragment only when something remains after stripping
		// comments, semicolons and whitespace.
		rest := s
		var bare strings.Builder
		for {
			c := strings.Index(rest, "--")
			if c < 0 {
				bare.WriteString(rest)
				break
			}
			bare.WriteString(rest[:c])
			rest = rest[c:]
			if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
				rest = rest[nl:]
			} else {
				rest = ""
			}
		}
		if strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(bare.String()), ";")) != "" {
			out = append(out, s)
		}
		start = end + 1
	}
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case ';':
			flush(i)
		case '\'':
			for i++; i < len(src); i++ {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						i++
						continue
					}
					break
				}
			}
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
			}
		}
	}
	flush(len(src))
	return out
}

// lex tokenizes a statement, reporting the position of any bad input.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for ; n > 0; n-- {
			if src[i] == '\n' {
				line, col = line+1, 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '-' && i+1 < len(src) && src[i+1] == '-': // line comment
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case isIdentStart(c):
			p := Pos{line, col}
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			lower := strings.ToLower(word)
			kind := tIdent
			if keywords[lower] {
				kind = tKeyword
			}
			toks = append(toks, token{kind, lower, p})
			adv(j - i)
		case c >= '0' && c <= '9':
			p := Pos{line, col}
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			kind := tInt
			if j < len(src) && src[j] == '.' {
				kind = tFloat
				j++
				for j < len(src) && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			toks = append(toks, token{kind, src[i:j], p})
			adv(j - i)
		case c == '\'':
			p := Pos{line, col}
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, errf(p, "unterminated string literal")
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tString, sb.String(), p})
			adv(j + 1 - i)
		default:
			p := Pos{line, col}
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				if two == "!=" {
					two = "<>"
				}
				toks = append(toks, token{tSymbol, two, p})
				adv(2)
				continue
			}
			switch c {
			case ',', '(', ')', '.', '*', '+', '-', '/', '=', '<', '>', ';', '?':
				toks = append(toks, token{tSymbol, string(c), p})
				adv(1)
			default:
				return nil, errf(p, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{tEOF, "", Pos{line, col}})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }
