package sql

import (
	"strconv"
	"strings"

	"vectorh/internal/vector"
)

// aggFuncs are the aggregate function names the parser recognizes.
var aggFuncs = map[string]bool{
	"sum": true, "min": true, "max": true, "avg": true, "count": true,
}

// Parse parses one SELECT statement (an optional trailing ';' is allowed).
func Parse(src string) (*SelectStmt, error) {
	stmt, err := ParseStmt(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, errf(Pos{1, 1}, "expected a SELECT statement")
	}
	return sel, nil
}

// ParseStmt parses one statement of any kind — SELECT, INSERT, UPDATE or
// DELETE (an optional trailing ';' is allowed).
func ParseStmt(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, errf(t.pos, "unexpected %q after end of statement", t.text)
	}
	return stmt, nil
}

// parseStmt dispatches on the leading keyword.
func (p *parser) parseStmt() (Stmt, error) {
	switch t := p.peek(); t.text {
	case "select":
		return p.parseSelect()
	case "insert":
		return p.parseInsert()
	case "update":
		return p.parseUpdate()
	case "delete":
		return p.parseDelete()
	default:
		got := t.text
		if t.kind == tEOF {
			got = "end of input"
		}
		return nil, errf(t.pos, "expected SELECT, INSERT, UPDATE or DELETE, found %q", got)
	}
}

// parseInsert parses INSERT INTO table [(col, ...)] VALUES (...), (...).
func (p *parser) parseInsert() (*InsertStmt, error) {
	p.next() // insert
	if _, err := p.expect("into"); err != nil {
		return nil, err
	}
	t, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: t.text, TablePos: t.pos}
	if p.accept("(") {
		for {
			c, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, Ident{Name: c.text, Pos: c.pos})
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect("values"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return stmt, nil
}

// parseUpdate parses UPDATE table SET col = expr, ... [WHERE pred].
func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.next() // update
	t, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: t.text, TablePos: t.pos}
	if _, err := p.expect("set"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetItem{Col: c.text, ColPos: c.pos, Expr: e})
		if !p.accept(",") {
			break
		}
	}
	if p.accept("where") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// parseDelete parses DELETE FROM table [WHERE pred].
func (p *parser) parseDelete() (*DeleteStmt, error) {
	p.next() // delete
	if _, err := p.expect("from"); err != nil {
		return nil, err
	}
	t, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: t.text, TablePos: t.pos}
	if p.accept("where") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

type parser struct {
	toks   []token
	i      int
	params int // '?' parameters seen so far (1-based indices)
	depth  int // current expression/subquery nesting, bounded by maxParseDepth
}

// maxParseDepth bounds recursive descent so hostile input (kilobytes of
// nested parentheses) reports a positioned error instead of exhausting the
// goroutine stack.
const maxParseDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return errf(p.peek().pos, "statement nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token  { return p.toks[p.i] }
func (p *parser) peek2() token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) next() token  { t := p.toks[p.i]; p.i++; return t }

// accept consumes the next token when it is the given keyword or symbol.
func (p *parser) accept(text string) bool {
	if t := p.peek(); (t.kind == tKeyword || t.kind == tSymbol) && t.text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	t := p.peek()
	if (t.kind == tKeyword || t.kind == tSymbol) && t.text == text {
		return p.next(), nil
	}
	got := t.text
	if t.kind == tEOF {
		got = "end of input"
	}
	return token{}, errf(t.pos, "expected %q, found %q", text, got)
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.peek()
	if t.kind != tIdent {
		got := t.text
		if t.kind == tEOF {
			got = "end of input"
		}
		return token{}, errf(t.pos, "expected %s, found %q", what, got)
	}
	return p.next(), nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if _, err := p.expect("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Projection list.
	if p.accept("*") {
		stmt.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept("as") {
				t, err := p.expectIdent("alias")
				if err != nil {
					return nil, err
				}
				item.Alias = t.text
			} else if t := p.peek(); t.kind == tIdent {
				// bare alias: SELECT expr name
				item.Alias = p.next().text
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(",") {
				break
			}
		}
	}

	// FROM with a chain of inner/left-outer joins.
	if _, err := p.expect("from"); err != nil {
		return nil, err
	}
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = append(stmt.From, first)
	for {
		left := false
		if t := p.peek(); t.kind == tKeyword && t.text == "left" {
			p.next()
			p.accept("outer")
			if _, err := p.expect("join"); err != nil {
				return nil, err
			}
			left = true
		} else {
			p.accept("inner")
			if !p.accept("join") {
				break
			}
		}
		f, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		f.Left = left
		if _, err := p.expect("on"); err != nil {
			return nil, err
		}
		if f.On, err = p.parseExpr(); err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, f)
	}

	if p.accept("where") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}

	if p.accept("group") {
		if _, err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			t, err := p.expectIdent("group-by column")
			if err != nil {
				return nil, err
			}
			name := t.text
			if p.accept(".") { // qualified: keep the column part only
				c, err := p.expectIdent("column")
				if err != nil {
					return nil, err
				}
				name = c.text
			}
			stmt.GroupBy = append(stmt.GroupBy, GroupItem{Name: name, Pos: t.pos})
			if !p.accept(",") {
				break
			}
		}
	}

	if p.accept("having") {
		if stmt.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}

	if p.accept("order") {
		if _, err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			o := OrderItem{Expr: e}
			if p.accept("desc") {
				o.Desc = true
			} else {
				p.accept("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, o)
			if !p.accept(",") {
				break
			}
		}
	}

	if p.accept("limit") {
		t := p.peek()
		if t.kind != tInt {
			return nil, errf(t.pos, "expected integer LIMIT, found %q", t.text)
		}
		p.next()
		n, _ := strconv.ParseInt(t.text, 10, 64)
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (FromItem, error) {
	if t := p.peek(); t.kind == tSymbol && t.text == "(" {
		// Derived table: ( SELECT ... ) [AS] alias. The alias is mandatory —
		// there is no base table name to fall back on.
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return FromItem{}, err
		}
		if _, err := p.expect(")"); err != nil {
			return FromItem{}, err
		}
		p.accept("as")
		a := p.peek()
		if a.kind != tIdent {
			got := a.text
			if a.kind == tEOF {
				got = "end of input"
			}
			return FromItem{}, errf(a.pos, "derived table requires an alias, found %q", got)
		}
		p.next()
		return FromItem{Alias: a.text, Sub: sub, Pos: t.pos}, nil
	}
	t, err := p.expectIdent("table name")
	if err != nil {
		return FromItem{}, err
	}
	f := FromItem{Table: t.text, Alias: t.text, Pos: t.pos}
	if p.accept("as") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return FromItem{}, err
		}
		f.Alias = a.text
	} else if a := p.peek(); a.kind == tIdent {
		f.Alias = p.next().text
	}
	return f, nil
}

// Precedence climbing: OR < AND < NOT < predicate (comparison, LIKE, IN,
// BETWEEN) < additive < multiplicative < primary.

func (p *parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if !p.accept("or") {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r, P: t.pos}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if !p.accept("and") {
			return l, nil
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r, P: t.pos}
	}
}

func (p *parser) parseNot() (Expr, error) {
	if t := p.peek(); t.kind == tKeyword && t.text == "not" {
		p.next()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		// NOT EXISTS folds into the subquery node so the planner sees one
		// canonical form.
		if ex, ok := e.(*ExistsExpr); ok {
			ex.Not = !ex.Not
			ex.P = t.pos
			return ex, nil
		}
		return &NotExpr{E: e, P: t.pos}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.kind == tSymbol && isCmp(t.text):
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: t.text, L: l, R: r, P: t.pos}, nil
	case t.kind == tKeyword && (t.text == "like" || t.text == "in" || t.text == "between"):
		return p.parsePredicateTail(l, false)
	case t.kind == tKeyword && t.text == "not":
		nt := p.peek2()
		if nt.kind == tKeyword && (nt.text == "like" || nt.text == "in") {
			p.next() // not
			return p.parsePredicateTail(l, true)
		}
	}
	return l, nil
}

func (p *parser) parsePredicateTail(l Expr, negated bool) (Expr, error) {
	t := p.next() // like | in | between
	switch t.text {
	case "like":
		s := p.peek()
		if s.kind != tString {
			return nil, errf(s.pos, "expected string pattern after LIKE, found %q", s.text)
		}
		p.next()
		return &LikeExpr{E: l, Pattern: s.text, Not: negated, P: t.pos}, nil
	case "in":
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		if s := p.peek(); s.kind == tKeyword && s.text == "select" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return &InSubquery{E: l, Sub: sub, Not: negated, P: t.pos}, nil
		}
		in := &InExpr{E: l, Not: negated, P: t.pos}
		for {
			v := p.next()
			switch v.kind {
			case tString:
				in.Strs = append(in.Strs, v.text)
			case tInt:
				n, _ := strconv.ParseInt(v.text, 10, 64)
				in.Ints = append(in.Ints, n)
			default:
				return nil, errf(v.pos, "expected literal in IN list, found %q", v.text)
			}
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if len(in.Strs) > 0 && len(in.Ints) > 0 {
			return nil, errf(t.pos, "IN list mixes string and integer literals")
		}
		return in, nil
	default: // between
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, P: t.pos}, nil
	}
}

func isCmp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tSymbol || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r, P: t.pos}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tSymbol || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r, P: t.pos}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tSymbol && t.text == "(":
		p.next()
		if s := p.peek(); s.kind == tKeyword && s.text == "select" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sub: sub, P: t.pos}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tSymbol && t.text == "-": // unary minus on numeric literals
		p.next()
		v := p.peek()
		switch v.kind {
		case tInt:
			p.next()
			n, _ := strconv.ParseInt(v.text, 10, 64)
			return &IntLit{V: -n, P: t.pos}, nil
		case tFloat:
			p.next()
			f, _ := strconv.ParseFloat(v.text, 64)
			return &FloatLit{V: -f, P: t.pos}, nil
		}
		return nil, errf(v.pos, "expected numeric literal after unary '-', found %q", v.text)
	case t.kind == tInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad integer %q", t.text)
		}
		return &IntLit{V: n, P: t.pos}, nil
	case t.kind == tFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "bad number %q", t.text)
		}
		return &FloatLit{V: f, P: t.pos}, nil
	case t.kind == tString:
		p.next()
		return &StrLit{V: t.text, P: t.pos}, nil
	case t.kind == tSymbol && t.text == "?":
		p.next()
		p.params++
		return &ParamExpr{Idx: p.params, P: t.pos}, nil
	case t.kind == tKeyword && t.text == "date":
		return p.parseDateLit()
	case t.kind == tKeyword && t.text == "case":
		return p.parseCase()
	case t.kind == tKeyword && t.text == "exists":
		return p.parseExists()
	case t.kind == tKeyword && t.text == "substring":
		return p.parseSubstring()
	case t.kind == tIdent:
		return p.parseIdentExpr()
	}
	got := t.text
	if t.kind == tEOF {
		got = "end of input"
	}
	return nil, errf(t.pos, "expected expression, found %q", got)
}

// parseDateLit parses DATE 'YYYY-MM-DD' [ (+|-) INTERVAL 'n' MONTH ].
func (p *parser) parseDateLit() (Expr, error) {
	t := p.next() // date
	s := p.peek()
	if s.kind != tString {
		return nil, errf(s.pos, "expected 'YYYY-MM-DD' after DATE, found %q", s.text)
	}
	p.next()
	if _, err := vector.ParseDate(s.text); err != nil {
		return nil, errf(s.pos, "bad date literal %q", s.text)
	}
	d := &DateLit{V: s.text, P: t.pos}
	// Interval arithmetic is folded into the literal at plan-build time,
	// mirroring plan.DateOffset.
	sign := 0
	if n := p.peek(); n.kind == tSymbol && (n.text == "+" || n.text == "-") {
		if nn := p.peek2(); nn.kind == tKeyword && nn.text == "interval" {
			sign = 1
			if n.text == "-" {
				sign = -1
			}
			p.next()
			p.next()
			v := p.peek()
			if v.kind != tString && v.kind != tInt {
				return nil, errf(v.pos, "expected interval count, found %q", v.text)
			}
			p.next()
			months, err := strconv.Atoi(strings.TrimSpace(v.text))
			if err != nil {
				return nil, errf(v.pos, "bad interval count %q", v.text)
			}
			if _, err := p.expect("month"); err != nil {
				return nil, err
			}
			d.Months = sign * months
		}
	}
	return d, nil
}

func (p *parser) parseCase() (Expr, error) {
	t := p.next() // case
	if _, err := p.expect("when"); err != nil {
		return nil, err
	}
	when, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var els Expr = &IntLit{V: 0, P: t.pos}
	if p.accept("else") {
		if els, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect("end"); err != nil {
		return nil, err
	}
	return &CaseExpr{When: when, Then: then, Else: els, P: t.pos}, nil
}

// parseExists parses EXISTS ( SELECT ... ).
func (p *parser) parseExists() (Expr, error) {
	t := p.next() // exists
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if s := p.peek(); !(s.kind == tKeyword && s.text == "select") {
		got := s.text
		if s.kind == tEOF {
			got = "end of input"
		}
		return nil, errf(s.pos, "expected SELECT after EXISTS (, found %q", got)
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	return &ExistsExpr{Sub: sub, P: t.pos}, nil
}

// parseSubstring parses SUBSTRING(e FROM start FOR length) with integer
// literal bounds.
func (p *parser) parseSubstring() (Expr, error) {
	t := p.next() // substring
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("from"); err != nil {
		return nil, err
	}
	s := p.peek()
	if s.kind != tInt {
		return nil, errf(s.pos, "expected integer start in SUBSTRING, found %q", s.text)
	}
	p.next()
	start, _ := strconv.ParseInt(s.text, 10, 64)
	if _, err := p.expect("for"); err != nil {
		return nil, err
	}
	n := p.peek()
	if n.kind != tInt {
		return nil, errf(n.pos, "expected integer length in SUBSTRING, found %q", n.text)
	}
	p.next()
	length, _ := strconv.ParseInt(n.text, 10, 64)
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	return &SubstrExpr{E: e, Start: start, Length: length, P: t.pos}, nil
}

// parseIdentExpr parses a column reference (possibly qualified) or a
// function call.
func (p *parser) parseIdentExpr() (Expr, error) {
	t := p.next()
	if p.peek().text == "(" && p.peek().kind == tSymbol {
		p.next() // (
		f := &FuncCall{Name: t.text, P: t.pos}
		switch {
		case p.accept("*"):
			if f.Name != "count" {
				return nil, errf(t.pos, "%s(*) is not valid; only count(*)", f.Name)
			}
			f.Star = true
		default:
			if p.accept("distinct") {
				if f.Name != "count" {
					return nil, errf(t.pos, "DISTINCT is only supported in count(distinct)")
				}
				f.Distinct = true
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Arg = arg
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if !aggFuncs[f.Name] && f.Name != "year" {
			return nil, errf(t.pos, "unknown function %q", f.Name)
		}
		return f, nil
	}
	c := &ColRef{Name: t.text, P: t.pos}
	if p.accept(".") {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		c.Table, c.Name = t.text, col.text
	}
	return c, nil
}
