package hdfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newTestCluster(nodes int, blockSize int) *Cluster {
	var names []string
	for i := 0; i < nodes; i++ {
		names = append(names, fmt.Sprintf("node%d", i+1))
	}
	return NewCluster(names, Config{BlockSize: blockSize, Replication: 3})
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestCluster(4, 64)
	data := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := c.WriteFile("/t/f1", "node1", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll("/t/f1", "node1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if sz, _ := c.Size("/t/f1"); sz != 1000 {
		t.Fatalf("size = %d", sz)
	}
}

func TestCreateExistingFails(t *testing.T) {
	c := newTestCluster(3, 64)
	if _, err := c.Create("/f", "node1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/f", "node1"); err == nil {
		t.Fatal("second create should fail")
	}
}

func TestAppendContinuesPartialBlock(t *testing.T) {
	c := newTestCluster(3, 100)
	w, _ := c.Create("/f", "node1")
	w.Write(bytes.Repeat([]byte{1}, 30))
	w.Close()
	w2, err := c.Append("/f", "node1")
	if err != nil {
		t.Fatal(err)
	}
	w2.Write(bytes.Repeat([]byte{2}, 30))
	w2.Close()
	locs, _ := c.BlockLocations("/f")
	if len(locs) != 1 {
		t.Fatalf("append should fill the partial block; got %d blocks", len(locs))
	}
	got, _ := c.ReadAll("/f", "node1")
	if got[29] != 1 || got[30] != 2 || len(got) != 60 {
		t.Fatal("append content wrong")
	}
}

func TestBlocksSplitAtBlockSize(t *testing.T) {
	c := newTestCluster(3, 64)
	data := make([]byte, 64*3+10)
	c.WriteFile("/f", "node1", data)
	locs, _ := c.BlockLocations("/f")
	if len(locs) != 4 {
		t.Fatalf("blocks = %d, want 4", len(locs))
	}
	for i, l := range locs {
		if len(l) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", i, len(l))
		}
	}
}

func TestWriterGetsFirstReplica(t *testing.T) {
	c := newTestCluster(5, 64)
	c.WriteFile("/f", "node3", make([]byte, 200))
	locs, _ := c.BlockLocations("/f")
	for i, l := range locs {
		if l[0] != "node3" {
			t.Fatalf("block %d first replica = %s, want writer node3", i, l[0])
		}
	}
}

func TestShortCircuitAccounting(t *testing.T) {
	c := newTestCluster(5, 64)
	c.WriteFile("/f", "node1", make([]byte, 128))
	c.ResetStats()
	// node1 holds a replica: local.
	c.ReadAll("/f", "node1")
	s := c.Stats()
	if s.LocalBytesRead != 128 || s.RemoteBytesRead != 0 {
		t.Fatalf("local read accounting: %+v", s)
	}
	// A node without a replica reads remotely.
	locs, _ := c.BlockLocations("/f")
	holders := map[string]bool{}
	for _, l := range locs {
		for _, n := range l {
			holders[n] = true
		}
	}
	var outsider string
	for _, n := range c.Nodes() {
		if !holders[n] {
			outsider = n
			break
		}
	}
	if outsider == "" {
		t.Skip("all nodes hold replicas")
	}
	c.ResetStats()
	c.ReadAll("/f", outsider)
	s = c.Stats()
	if s.RemoteBytesRead != 128 || s.LocalBytesRead != 0 {
		t.Fatalf("remote read accounting: %+v", s)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	c := newTestCluster(3, 64)
	c.WriteFile("/f", "node1", make([]byte, 10))
	r, _ := c.Open("/f", "node1")
	buf := make([]byte, 11)
	if _, err := r.ReadAt(buf, 0); err == nil {
		t.Fatal("read beyond EOF should fail")
	}
	if _, err := r.ReadAt(buf[:5], 6); err == nil {
		t.Fatal("read crossing EOF should fail")
	}
	if _, err := r.ReadAt(buf[:4], 6); err != nil {
		t.Fatalf("valid tail read failed: %v", err)
	}
}

func TestKillNodeAndReReplicate(t *testing.T) {
	c := newTestCluster(5, 64)
	c.WriteFile("/f", "node1", make([]byte, 64*4))
	c.KillNode("node1")
	locs, _ := c.BlockLocations("/f")
	for i, l := range locs {
		if len(l) != 2 {
			t.Fatalf("block %d should have 2 replicas after kill, has %d", i, len(l))
		}
	}
	created := c.ReReplicate()
	if created != 4 {
		t.Fatalf("re-replicated %d blocks, want 4", created)
	}
	locs, _ = c.BlockLocations("/f")
	for i, l := range locs {
		if len(l) != 3 {
			t.Fatalf("block %d has %d replicas after re-replication", i, len(l))
		}
		for _, n := range l {
			if n == "node1" {
				t.Fatal("dead node still listed as replica holder")
			}
		}
	}
	// Data must still be readable.
	if _, err := c.ReadAll("/f", "node2"); err != nil {
		t.Fatal(err)
	}
}

func TestReReplicateWithTooFewNodes(t *testing.T) {
	c := newTestCluster(3, 64)
	c.WriteFile("/f", "node1", make([]byte, 64))
	c.KillNode("node1")
	c.ReReplicate() // only 2 nodes alive; best effort
	locs, _ := c.BlockLocations("/f")
	if len(locs[0]) != 2 {
		t.Fatalf("want 2 replicas on 2 alive nodes, got %d", len(locs[0]))
	}
}

func TestSetReplicationForSpillFiles(t *testing.T) {
	c := newTestCluster(5, 64)
	c.WriteFile("/tmp/spill", "node1", make([]byte, 64))
	if err := c.SetReplication("/tmp/spill", 1); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/tmp/spill")
	if len(locs[0]) != 1 {
		t.Fatalf("replicas = %d, want 1", len(locs[0]))
	}
	if err := c.SetReplication("/missing", 1); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestDeleteAndList(t *testing.T) {
	c := newTestCluster(3, 64)
	c.WriteFile("/a/1", "node1", []byte{1})
	c.WriteFile("/a/2", "node1", []byte{2})
	c.WriteFile("/b/1", "node1", []byte{3})
	if got := c.List("/a/"); len(got) != 2 || got[0] != "/a/1" {
		t.Fatalf("List = %v", got)
	}
	if err := c.Delete("/a/1"); err != nil {
		t.Fatal(err)
	}
	if c.Exists("/a/1") {
		t.Fatal("deleted file still exists")
	}
	if err := c.Delete("/a/1"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestCustomPlacementPolicy(t *testing.T) {
	// A policy pinning everything to node2/node3 — the mechanism VectorH
	// instruments.
	pin := policyFunc(func(path, writer string, replicas int, exclude, alive []string) []string {
		var out []string
		for _, n := range []string{"node2", "node3"} {
			if !contains(exclude, n) && contains(alive, n) {
				out = append(out, n)
			}
		}
		if len(out) > replicas {
			out = out[:replicas]
		}
		return out
	})
	c := NewCluster([]string{"node1", "node2", "node3", "node4"}, Config{BlockSize: 64, Replication: 2, Policy: pin})
	c.WriteFile("/f", "node1", make([]byte, 128))
	locs, _ := c.BlockLocations("/f")
	for i, l := range locs {
		if len(l) != 2 || l[0] != "node2" || l[1] != "node3" {
			t.Fatalf("block %d placed at %v", i, l)
		}
	}
}

type policyFunc func(path, writer string, replicas int, exclude, alive []string) []string

func (f policyFunc) ChooseTarget(path, writer string, replicas int, exclude, alive []string) []string {
	return f(path, writer, replicas, exclude, alive)
}

func TestIsLocal(t *testing.T) {
	c := newTestCluster(5, 64)
	c.WriteFile("/f", "node1", make([]byte, 128))
	r, _ := c.Open("/f", "node1")
	if !r.IsLocal("node1", 0, 128) {
		t.Fatal("writer should be fully local")
	}
	locs, _ := c.BlockLocations("/f")
	holders := map[string]bool{}
	for _, n := range locs[0] {
		holders[n] = true
	}
	for _, n := range c.Nodes() {
		if !holders[n] {
			if r.IsLocal(n, 0, 64) {
				t.Fatalf("%s should not be local for block 0", n)
			}
			return
		}
	}
}

func TestAddNodeParticipates(t *testing.T) {
	c := newTestCluster(2, 64)
	c.AddNode("fresh")
	found := false
	for _, n := range c.Nodes() {
		if n == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatal("added node missing from Nodes()")
	}
}

func TestNoAliveNodesWriteFails(t *testing.T) {
	c := newTestCluster(1, 64)
	c.KillNode("node1")
	w, _ := c.Create("/f", "node1")
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write with no alive nodes should fail")
	}
}
