// Package hdfs simulates the subset of the Hadoop Distributed File System
// that VectorH depends on (§3 of the paper): an append-only file system
// whose files are split into fixed-size blocks replicated across datanodes,
// a namenode tracking block locations, a pluggable BlockPlacementPolicy —
// the hook VectorH instruments to control locality — re-replication after
// node failures, and short-circuit (local) versus remote read accounting.
//
// The simulation is in-process and in-memory: replica placement, policy
// decisions, failure handling and locality accounting are faithful to HDFS
// semantics; bytes live in one copy per block since replicas are identical.
package hdfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Errors returned by cluster operations.
var (
	ErrNotFound  = errors.New("hdfs: file not found")
	ErrExists    = errors.New("hdfs: file already exists")
	ErrNoNodes   = errors.New("hdfs: no alive datanodes")
	ErrDeadNode  = errors.New("hdfs: datanode not alive")
	ErrReadRange = errors.New("hdfs: read beyond end of file")
)

// BlockID identifies one HDFS block cluster-wide.
type BlockID int64

// BlockPlacementPolicy decides which datanodes receive the replicas of a new
// block — the interface VectorH registers its instrumented policy on.
// ChooseTarget receives the file path (policies key decisions off it), the
// writing node ("" for an external client), the wanted replica count, nodes
// to exclude (already holding a replica) and the currently alive nodes. It
// returns up to `replicas` distinct target node names.
type BlockPlacementPolicy interface {
	ChooseTarget(path, writer string, replicas int, exclude, alive []string) []string
}

// DefaultPolicy mimics stock HDFS: first replica on the writer (when the
// writer is a datanode), the rest pseudo-randomly spread. Choices are stable
// per file, matching HDFS's per-file spreading described in the paper.
type DefaultPolicy struct {
	mu   sync.Mutex
	rng  *rand.Rand
	memo map[string][]string
}

// NewDefaultPolicy returns a DefaultPolicy with a deterministic seed.
func NewDefaultPolicy(seed int64) *DefaultPolicy {
	return &DefaultPolicy{rng: rand.New(rand.NewSource(seed)), memo: make(map[string][]string)}
}

// ChooseTarget implements BlockPlacementPolicy.
func (p *DefaultPolicy) ChooseTarget(path, writer string, replicas int, exclude, alive []string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	excluded := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		excluded[e] = true
	}
	var out []string
	take := func(n string) {
		if len(out) < replicas && !excluded[n] {
			out = append(out, n)
			excluded[n] = true
		}
	}
	if memo, ok := p.memo[path]; ok {
		for _, n := range memo {
			for _, a := range alive {
				if a == n {
					take(n)
				}
			}
		}
	} else {
		if writer != "" {
			for _, a := range alive {
				if a == writer {
					take(writer)
				}
			}
		}
		shuffled := append([]string(nil), alive...)
		sort.Strings(shuffled)
		p.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, n := range shuffled {
			take(n)
		}
		p.memo[path] = append([]string(nil), out...)
		return out
	}
	// Memoized targets may have died; fill the remainder randomly.
	shuffled := append([]string(nil), alive...)
	sort.Strings(shuffled)
	p.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, n := range shuffled {
		take(n)
	}
	return out
}

// Config parameterizes a simulated cluster.
type Config struct {
	BlockSize   int                  // bytes per block; default 4 MiB
	Replication int                  // default replica count; default 3
	Policy      BlockPlacementPolicy // default: NewDefaultPolicy(1)
}

func (c *Config) fill() {
	if c.BlockSize <= 0 {
		c.BlockSize = 4 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Policy == nil {
		c.Policy = NewDefaultPolicy(1)
	}
}

// Stats aggregates read traffic by locality, the measure behind the paper's
// claim that "VectorH in general achieves the situation that all table IOs
// are short-circuited".
type Stats struct {
	LocalBytesRead  int64 // short-circuit reads: reader node held a replica
	RemoteBytesRead int64 // reads served by another datanode
	BytesWritten    int64
	BlocksCreated   int64
	BlocksRemoved   int64
	ReReplications  int64 // replicas copied due to failures
}

type blockInfo struct {
	id    BlockID
	data  []byte
	locs  []string // alive nodes holding a replica
	path  string
	index int // position within the file
}

type file struct {
	path        string
	blocks      []*blockInfo
	size        int64
	replication int
}

// Cluster is the simulated HDFS service: namenode plus datanodes.
type Cluster struct {
	mu     sync.Mutex
	cfg    Config
	alive  map[string]bool
	order  []string // insertion order of nodes, for stable reports
	files  map[string]*file
	nextID BlockID
	stats  Stats
	under  []*blockInfo // under-replicated blocks pending re-replication
}

// NewCluster creates a cluster with the given datanodes.
func NewCluster(nodes []string, cfg Config) *Cluster {
	cfg.fill()
	c := &Cluster{cfg: cfg, alive: make(map[string]bool), files: make(map[string]*file)}
	for _, n := range nodes {
		c.alive[n] = true
		c.order = append(c.order, n)
	}
	return c
}

// Nodes returns the alive datanodes in insertion order.
func (c *Cluster) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveNodesLocked()
}

func (c *Cluster) aliveNodesLocked() []string {
	var out []string
	for _, n := range c.order {
		if c.alive[n] {
			out = append(out, n)
		}
	}
	return out
}

// BlockSize returns the configured block size.
func (c *Cluster) BlockSize() int { return c.cfg.BlockSize }

// Replication returns the configured default replication degree.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// Stats returns a snapshot of the traffic counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the traffic counters.
func (c *Cluster) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// AddNode registers a new alive datanode.
func (c *Cluster) AddNode(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, known := c.alive[name]; !known {
		c.order = append(c.order, name)
	}
	c.alive[name] = true
}

// KillNode marks a datanode dead, drops its replicas and queues affected
// blocks for re-replication (run ReReplicate to process the queue, as the
// namenode would in the background).
func (c *Cluster) KillNode(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[name] {
		return
	}
	c.alive[name] = false
	for _, f := range c.files {
		for _, b := range f.blocks {
			for i, loc := range b.locs {
				if loc == name {
					b.locs = append(b.locs[:i], b.locs[i+1:]...)
					c.under = append(c.under, b)
					break
				}
			}
		}
	}
}

// ReReplicate processes the under-replicated queue, asking the placement
// policy for new targets. It returns the number of replicas created.
func (c *Cluster) ReReplicate() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	created := 0
	pending := c.under
	c.under = nil
	for _, b := range pending {
		f, ok := c.files[b.path]
		if !ok { // file deleted meanwhile
			continue
		}
		want := f.replication
		for len(b.locs) < want {
			targets := c.cfg.Policy.ChooseTarget(b.path, "", want, b.locs, c.aliveNodesLocked())
			added := false
			for _, t := range targets {
				if c.alive[t] && !contains(b.locs, t) && len(b.locs) < want {
					b.locs = append(b.locs, t)
					created++
					c.stats.ReReplications++
					added = true
				}
			}
			if !added {
				break // not enough alive nodes
			}
		}
	}
	return created
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Create creates a new file written by the given node and returns a Writer.
func (c *Cluster) Create(path, writer string) (*Writer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	f := &file{path: path, replication: c.cfg.Replication}
	c.files[path] = f
	return &Writer{c: c, f: f, writer: writer}, nil
}

// Append opens an existing file (or creates it) for appending.
func (c *Cluster) Append(path, writer string) (*Writer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		f = &file{path: path, replication: c.cfg.Replication}
		c.files[path] = f
	}
	return &Writer{c: c, f: f, writer: writer}, nil
}

// SetReplication overrides the replica count for one file (VectorH sets 1
// for temporary spill files). Existing blocks are trimmed or queued for
// re-replication as needed.
func (c *Cluster) SetReplication(path string, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	f.replication = n
	for _, b := range f.blocks {
		if len(b.locs) > n {
			b.locs = b.locs[:n]
		} else if len(b.locs) < n {
			c.under = append(c.under, b)
		}
	}
	return nil
}

// Delete removes a file and its blocks.
func (c *Cluster) Delete(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	c.stats.BlocksRemoved += int64(len(f.blocks))
	delete(c.files, path)
	return nil
}

// Exists reports whether a file exists.
func (c *Cluster) Exists(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.files[path]
	return ok
}

// Size returns the byte length of a file.
func (c *Cluster) Size(path string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return f.size, nil
}

// List returns all file paths with the given prefix, sorted.
func (c *Cluster) List(prefix string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for p := range c.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// BlockLocations returns, per block of the file, the nodes holding replicas.
// This is the namenode query dbAgent uses to compute data locality.
func (c *Cluster) BlockLocations(path string) ([][]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([][]string, len(f.blocks))
	for i, b := range f.blocks {
		out[i] = append([]string(nil), b.locs...)
	}
	return out, nil
}

// Open returns a Reader for the file; reads performed by `reader` count as
// short-circuit (local) when that node holds a replica of the block read.
func (c *Cluster) Open(path, reader string) (*Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return &Reader{c: c, f: f, reader: reader}, nil
}

// ReadAll reads a whole file from the given node.
func (c *Cluster) ReadAll(path, reader string) ([]byte, error) {
	r, err := c.Open(path, reader)
	if err != nil {
		return nil, err
	}
	sz, _ := c.Size(path)
	buf := make([]byte, sz)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteFile creates (replacing if present) a file with the given contents.
func (c *Cluster) WriteFile(path, writer string, data []byte) error {
	if c.Exists(path) {
		if err := c.Delete(path); err != nil {
			return err
		}
	}
	w, err := c.Create(path, writer)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Writer appends to an HDFS file, cutting fixed-size blocks as data arrives.
type Writer struct {
	c      *Cluster
	f      *file
	writer string
	closed bool
}

// Write appends p to the file. Data lands in the last (partial) block first,
// then new blocks are allocated via the placement policy.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("hdfs: write on closed writer")
	}
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	written := len(p)
	for len(p) > 0 {
		var last *blockInfo
		if n := len(w.f.blocks); n > 0 {
			if b := w.f.blocks[n-1]; len(b.data) < c.cfg.BlockSize {
				last = b
			}
		}
		if last == nil {
			alive := c.aliveNodesLocked()
			if len(alive) == 0 {
				return 0, ErrNoNodes
			}
			targets := c.cfg.Policy.ChooseTarget(w.f.path, w.writer, w.f.replication, nil, alive)
			if len(targets) == 0 {
				return 0, ErrNoNodes
			}
			last = &blockInfo{id: c.nextID, path: w.f.path, index: len(w.f.blocks), locs: targets}
			c.nextID++
			c.stats.BlocksCreated++
			w.f.blocks = append(w.f.blocks, last)
		}
		room := c.cfg.BlockSize - len(last.data)
		if room > len(p) {
			room = len(p)
		}
		last.data = append(last.data, p[:room]...)
		p = p[room:]
		w.f.size += int64(room)
		c.stats.BytesWritten += int64(room)
	}
	return written, nil
}

// Close finalizes the writer.
func (w *Writer) Close() error {
	w.closed = true
	return nil
}

// Reader reads a file with locality accounting.
type Reader struct {
	c      *Cluster
	f      *file
	reader string
}

// ReadAt reads len(p) bytes at offset off. Each touched block is accounted
// as a local (short-circuit) or remote read depending on whether the reading
// node holds a replica.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if off < 0 || off+int64(len(p)) > r.f.size {
		return 0, fmt.Errorf("%w: [%d,+%d) of %d", ErrReadRange, off, len(p), r.f.size)
	}
	n := 0
	bs := int64(c.cfg.BlockSize)
	for n < len(p) {
		bi := int((off + int64(n)) / bs)
		bo := int((off + int64(n)) % bs)
		b := r.f.blocks[bi]
		take := len(b.data) - bo
		if take > len(p)-n {
			take = len(p) - n
		}
		copy(p[n:n+take], b.data[bo:bo+take])
		if r.reader != "" && contains(b.locs, r.reader) {
			c.stats.LocalBytesRead += int64(take)
		} else {
			c.stats.RemoteBytesRead += int64(take)
		}
		n += take
	}
	return n, nil
}

// IsLocal reports whether the byte range [off, off+length) is fully replica-
// local to the given node; the IO scheduler uses it to route requests.
func (r *Reader) IsLocal(node string, off, length int64) bool {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	bs := int64(c.cfg.BlockSize)
	for cur := off; cur < off+length; {
		bi := int(cur / bs)
		if bi >= len(r.f.blocks) || !contains(r.f.blocks[bi].locs, node) {
			return false
		}
		cur = (int64(bi) + 1) * bs
	}
	return true
}
