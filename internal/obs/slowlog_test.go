package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	var buf strings.Builder
	sl := NewSlowLog(&buf, 10*time.Millisecond)

	sl.Record(5*time.Millisecond, SlowEntry{Hash: "fast"}) // below threshold
	sl.Record(25*time.Millisecond, SlowEntry{
		Hash:     "deadbeefdeadbeef",
		CacheHit: true,
		QueueUs:  1200,
		Rows:     4,
		Phases:   []SlowPhase{{Name: "parse", Micros: 80}, {Name: "execute", Micros: 24000}},
		TopOps:   []SlowOp{{Op: "HashJoin", Micros: 18000, Rows: 6001215}},
	})

	if got := sl.Logged(); got != 1 {
		t.Fatalf("logged = %d, want 1", got)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var e SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("entry is not valid JSON: %v\n%s", err, lines[0])
	}
	if e.Hash != "deadbeefdeadbeef" || !e.CacheHit || e.TotalUs != 25000 || e.QueueUs != 1200 {
		t.Errorf("entry fields wrong: %+v", e)
	}
	if len(e.Phases) != 2 || e.Phases[1].Name != "execute" {
		t.Errorf("phases wrong: %+v", e.Phases)
	}
	if len(e.TopOps) != 1 || e.TopOps[0].Op != "HashJoin" {
		t.Errorf("top ops wrong: %+v", e.TopOps)
	}
	if e.Time == "" {
		t.Error("entry missing timestamp")
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if sl := NewSlowLog(nil, time.Second); sl.Enabled() {
		t.Error("nil writer should disable the slow log")
	}
	var buf strings.Builder
	if sl := NewSlowLog(&buf, 0); sl.Enabled() {
		t.Error("zero threshold should disable the slow log")
	}
	var nilLog *SlowLog
	nilLog.Record(time.Hour, SlowEntry{}) // must not panic
	if nilLog.Logged() != 0 || nilLog.Threshold() != 0 {
		t.Error("nil slow log should be inert")
	}
}

func TestTracePhasesAccumulate(t *testing.T) {
	tr := NewTrace()
	tr.AddPhase("bind", 2*time.Millisecond)
	tr.AddPhase("bind", 3*time.Millisecond) // sub-block contributes to same phase
	tr.AddPhase("execute", time.Millisecond)
	ph := tr.Phases()
	if len(ph) != 2 || ph[0].Name != "bind" || ph[0].Nanos != 5*time.Millisecond {
		t.Errorf("phases = %+v", ph)
	}
	if got := FormatPhases(ph); got != "bind=5ms execute=1ms" {
		t.Errorf("FormatPhases = %q", got)
	}
}

func TestTraceTopOps(t *testing.T) {
	tr := NewTrace()
	tr.AddOp(OpProfile{Label: "Scan", Nanos: 5})
	tr.AddOp(OpProfile{Label: "Join", Nanos: 50})
	tr.AddOp(OpProfile{Label: "Agg", Nanos: 20})
	tr.AddOp(OpProfile{Label: "Sort", Nanos: 1})
	top := tr.TopOps(2)
	if len(top) != 2 || top[0].Label != "Join" || top[1].Label != "Agg" {
		t.Errorf("TopOps = %+v", top)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.AddPhase("x", time.Second)
	tr.StartPhase("y")()
	tr.SetCacheHit(true)
	tr.AddOp(OpProfile{})
	if tr.Phases() != nil || tr.Ops() != nil || tr.CacheHit() {
		t.Error("nil trace should be inert")
	}
}

func TestEntryFromTrace(t *testing.T) {
	tr := NewTrace()
	tr.AddPhase("parse", 100*time.Microsecond)
	for i := 0; i < 5; i++ {
		tr.AddOp(OpProfile{Label: "op", Nanos: time.Duration(i) * time.Millisecond, Rows: int64(i)})
	}
	phases, tops := EntryFromTrace(tr, 3)
	if len(phases) != 1 || phases[0].Micros != 100 {
		t.Errorf("phases = %+v", phases)
	}
	if len(tops) != 3 || tops[0].Micros != 4000 {
		t.Errorf("tops = %+v", tops)
	}
}
