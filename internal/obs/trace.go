package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase is one named span of a query's lifetime (parse, bind, decorrelate,
// joinorder, rewrite, execute).
type Phase struct {
	Name  string        `json:"name"`
	Nanos time.Duration `json:"nanos"`
}

// OpProfile is the per-operator execution profile of one plan node,
// aggregated across the operator's parallel streams.
type OpProfile struct {
	Label     string        `json:"op"`
	Nanos     time.Duration `json:"nanos"`
	Rows      int64         `json:"rows"`
	Batches   int64         `json:"batches"`
	PeakBatch int64         `json:"peak_batch"`
	Streams   int           `json:"streams,omitempty"`

	// Scan IO attribution; only set for scan operators.
	BlocksRead        int64 `json:"blocks_read,omitempty"`
	BytesDecoded      int64 `json:"bytes_decoded,omitempty"`
	SpansPruned       int64 `json:"spans_pruned,omitempty"`
	CacheHits         int64 `json:"cache_hits,omitempty"`
	BytesSkipped      int64 `json:"bytes_skipped,omitempty"`
	BytesMaterialized int64 `json:"bytes_materialized,omitempty"`
}

// Trace accumulates the phase spans and operator profiles of one query.
// All methods are nil-safe so instrumented code paths can thread a *Trace
// unconditionally and pay nothing when tracing is off.
type Trace struct {
	mu       sync.Mutex
	phases   []Phase
	ops      []OpProfile
	cacheHit bool
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// AddPhase records a completed span. Repeated spans with the same name
// accumulate (sub-blocks of a query contribute to one phase).
func (t *Trace) AddPhase(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.phases {
		if t.phases[i].Name == name {
			t.phases[i].Nanos += d
			return
		}
	}
	t.phases = append(t.phases, Phase{Name: name, Nanos: d})
}

// StartPhase starts a span and returns the function that ends it.
func (t *Trace) StartPhase(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.AddPhase(name, time.Since(t0)) }
}

// SetCacheHit records whether the plan came from the plan cache.
func (t *Trace) SetCacheHit(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cacheHit = hit
	t.mu.Unlock()
}

// CacheHit reports whether the plan came from the plan cache.
func (t *Trace) CacheHit() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cacheHit
}

// AddOp records one operator's aggregated execution profile.
func (t *Trace) AddOp(op OpProfile) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ops = append(t.ops, op)
	t.mu.Unlock()
}

// Phases returns a copy of the recorded spans in insertion order.
func (t *Trace) Phases() []Phase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Phase, len(t.phases))
	copy(out, t.phases)
	return out
}

// Ops returns a copy of the recorded operator profiles.
func (t *Trace) Ops() []OpProfile {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]OpProfile, len(t.ops))
	copy(out, t.ops)
	return out
}

// TopOps returns the n operators with the largest cumulative wall time,
// descending.
func (t *Trace) TopOps(n int) []OpProfile {
	ops := t.Ops()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Nanos > ops[j].Nanos })
	if len(ops) > n {
		ops = ops[:n]
	}
	return ops
}

// FormatPhases renders the spans as "parse=12µs bind=30µs ..." for logs and
// the REPL.
func FormatPhases(phases []Phase) string {
	var b strings.Builder
	for i, p := range phases {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", p.Name, p.Nanos.Round(time.Microsecond))
	}
	return b.String()
}

// QueryHash is the stable FNV-64a hash of a normalized query text, rendered
// as 16 hex digits. Two invocations of the same statement (differing only in
// formatting, per sql.NormalizeSQL) share a hash, which is what makes the
// slow-query log aggregatable by statement.
func QueryHash(normalized string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(normalized); i++ {
		h ^= uint64(normalized[i])
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}
