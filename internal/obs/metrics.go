// Package obs is the engine-wide observability substrate: a dependency-free
// metrics registry (atomic counters, gauges, log-bucketed latency histograms
// with quantile extraction) with Prometheus text exposition, a per-query
// trace of compile/execute phase spans, and a threshold-based structured
// slow-query log. Every layer of the engine — scan IO, PDT flushes, plan
// cache, server admission — reports through one Registry so a single scrape
// (or one EXPLAIN ANALYZE) shows where time and bytes went.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus contract; negative deltas
// are not rejected but make the exposition non-monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta using a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of power-of-two latency buckets. Bucket i holds
// observations d (in nanoseconds) with bits.Len64(d) == i, i.e. the
// half-open range [2^(i-1), 2^i); bucket 0 holds d == 0. 42 buckets cover
// up to ~36 minutes, beyond which observations clamp into the last bucket.
const histBuckets = 42

// Histogram is a log2-bucketed latency histogram. Observations are
// durations; buckets double in width so the structure is fixed-size and
// lock-free while still resolving quantiles to within a factor of two
// (linear interpolation inside a bucket does better in practice).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Safe for concurrent use; performs no
// allocation.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	i := bits.Len64(uint64(n))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// bucketBounds returns the inclusive lower and exclusive upper bound of
// bucket i in nanoseconds.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Quantile returns the q-quantile (0 <= q <= 1) with linear interpolation
// inside the resolved bucket. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			// Position of the target inside this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += n
	}
	lo, _ := bucketBounds(histBuckets - 1)
	return time.Duration(lo)
}

// Summary returns the p50/p95/p99 quantiles in one call.
func (h *Histogram) Summary() (p50, p95, p99 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// snapshot copies the bucket counts for rendering.
func (h *Histogram) snapshot() (counts [histBuckets]int64, count, sum int64) {
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	return counts, h.count.Load(), h.sum.Load()
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registered entry.
type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc
}

// Registry is a named collection of metrics. Registration is get-or-create:
// registering the same name twice returns the first instance, so independent
// subsystems can share a metric by name. Registering the same name with a
// different metric type panics — that is always a programming error.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind.String() != kind.String() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	r.metrics[name] = m
	return m
}

// Counter registers (or fetches) a counter by name.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter)
	if m.counter == nil {
		panic(fmt.Sprintf("obs: metric %q is a counter func, not a counter", name))
	}
	return m.counter
}

// Gauge registers (or fetches) a gauge by name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge)
	if m.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q is a gauge func, not a gauge", name))
	}
	return m.gauge
}

// Histogram registers (or fetches) a latency histogram by name.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram).hist
}

// CounterFunc registers a counter whose value is computed at scrape time —
// the bridge for pre-existing atomics (engine scan totals, session counts)
// that should appear in the exposition without being migrated. The latest
// registration wins so reconnecting components can rebind their callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindCounterFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGaugeFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// formatFloat renders a metric value the way Prometheus expects: integers
// without an exponent, everything else in shortest-round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name for stable output.
// Histogram buckets are exposed in seconds, as the convention demands.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		case kindCounterFunc, kindGaugeFunc:
			r.mu.Lock()
			fn := m.fn
			r.mu.Unlock()
			v := 0.0
			if fn != nil {
				v = fn()
			}
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(v))
		case kindHistogram:
			counts, count, sum := m.hist.snapshot()
			// Trim the empty bucket runs at both ends: cumulative counts
			// plus the +Inf bucket keep the exposition well-formed.
			first, last := len(counts), -1
			for i, n := range counts {
				if n > 0 {
					if i < first {
						first = i
					}
					last = i
				}
			}
			var cum int64
			for i := first; i <= last; i++ {
				cum += counts[i]
				_, hi := bucketBounds(i)
				fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n", m.name, float64(hi)/1e9, cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, count)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(float64(sum)/1e9))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
