package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowOp is one line item of a slow-query entry: an operator that made the
// top-N by cumulative wall time.
type SlowOp struct {
	Op      string `json:"op"`
	Micros  int64  `json:"us"`
	Rows    int64  `json:"rows"`
	Batches int64  `json:"batches,omitempty"`
}

// SlowPhase is a compile/execute phase span in microseconds.
type SlowPhase struct {
	Name   string `json:"name"`
	Micros int64  `json:"us"`
}

// SlowEntry is one JSON line of the slow-query log.
type SlowEntry struct {
	Time     string      `json:"time"`
	Hash     string      `json:"hash"`
	CacheHit bool        `json:"cache_hit"`
	TotalUs  int64       `json:"total_us"`
	QueueUs  int64       `json:"queue_us,omitempty"`
	Rows     int64       `json:"rows"`
	Phases   []SlowPhase `json:"phases,omitempty"`
	TopOps   []SlowOp    `json:"top_ops,omitempty"`
	Err      string      `json:"err,omitempty"`
}

// SlowLog writes queries slower than a threshold as JSON lines. A nil
// SlowLog (or a zero threshold) is disabled and all methods are no-ops, so
// call sites need no guards.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	logged    atomic.Int64
}

// NewSlowLog returns a slow-query log writing entries for queries that took
// at least threshold. Returns nil (disabled) when w is nil or threshold <= 0.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Enabled reports whether queries of duration d would be logged. Callers use
// this to decide whether to run the query with profiling on.
func (s *SlowLog) Enabled() bool { return s != nil }

// Threshold returns the configured threshold (0 when disabled).
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Logged returns the number of entries written so far.
func (s *SlowLog) Logged() int64 {
	if s == nil {
		return 0
	}
	return s.logged.Load()
}

// Record writes one entry if total meets the threshold. The entry's TotalUs
// is filled from total; Time is stamped here (UTC, RFC3339 with millis).
func (s *SlowLog) Record(total time.Duration, e SlowEntry) {
	if s == nil || total < s.threshold {
		return
	}
	e.TotalUs = total.Microseconds()
	if e.Time == "" {
		e.Time = time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	s.w.Write(line)
	s.mu.Unlock()
	s.logged.Add(1)
}

// EntryFromTrace builds the phase and top-operator sections of a slow entry
// from a completed trace.
func EntryFromTrace(tr *Trace, topN int) (phases []SlowPhase, tops []SlowOp) {
	if tr == nil {
		return nil, nil
	}
	for _, p := range tr.Phases() {
		phases = append(phases, SlowPhase{Name: p.Name, Micros: p.Nanos.Microseconds()})
	}
	for _, op := range tr.TopOps(topN) {
		tops = append(tops, SlowOp{Op: op.Label, Micros: op.Nanos.Microseconds(), Rows: op.Rows, Batches: op.Batches})
	}
	return phases, tops
}
