package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge, and one histogram
// from 16 goroutines and asserts exact totals — under -race this is also the
// data-race gate for the registry hot paths.
func TestConcurrentCounters(t *testing.T) {
	const (
		goroutines = 16
		perG       = 10000
	)
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(id*perG+j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	// Sum of 0..159999 microseconds.
	wantSum := time.Duration(goroutines*perG*(goroutines*perG-1)/2) * time.Microsecond
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestConcurrentRegistration asserts that racing get-or-create registrations
// of the same name all observe one shared counter.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared_total", "shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "shared").Value(); got != 16000 {
		t.Errorf("shared counter = %d, want 16000", got)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic re-registering counter as gauge")
		}
	}()
	r.Gauge("m", "")
}

// TestHistogramQuantiles pins quantile extraction on a known distribution:
// 1000 observations at exact powers of two land in known buckets, so the
// interpolated quantiles have closed-form expected values.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 900 observations in [1ms, 2ms), 90 in [16ms, 32ms), 10 in [256ms, 512ms).
	for i := 0; i < 900; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 90; i++ {
		h.Observe(16 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(256 * time.Millisecond)
	}

	// The histogram resolves a quantile to within the log2 bucket holding
	// it; bucketOf returns that bucket's bounds for an observed duration.
	bucketOf := func(d time.Duration) (lo, hi time.Duration) {
		i := 0
		for n := int64(d); n > 0; n >>= 1 {
			i++
		}
		return time.Duration(int64(1) << (i - 1)), time.Duration(int64(1) << i)
	}
	cases := []struct {
		q  float64
		in time.Duration // the observation whose bucket the quantile must land in
	}{
		{0.50, time.Millisecond},
		{0.90, time.Millisecond},
		{0.95, 16 * time.Millisecond},
		{0.99, 16 * time.Millisecond},
		{0.999, 256 * time.Millisecond},
		{1.0, 256 * time.Millisecond},
	}
	for _, c := range cases {
		lo, hi := bucketOf(c.in)
		got := h.Quantile(c.q)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want in bucket [%v, %v]", c.q, got, lo, hi)
		}
	}

	p50, p95, p99 := h.Summary()
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramClamp(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Second)  // clamps to 0
	h.Observe(100 * time.Minute) // clamps into the last bucket
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

// TestWritePrometheusGolden pins the exact exposition text for a small
// registry — the contract the serve smoke scrape greps against.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("vectorh_queries_total", "Queries executed.").Add(42)
	r.Gauge("vectorh_sessions_active", "Active sessions.").Set(3)
	r.GaugeFunc("vectorh_heap_bytes", "Heap in use.", func() float64 { return 1048576 })
	h := r.Histogram("vectorh_exec_seconds", "Execution latency.")
	h.Observe(3 * time.Microsecond) // bucket [2^11, 2^12) ns → le 4.096e-06
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond) // bucket [2^16, 2^17) ns → le 1.31072e-04

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP vectorh_exec_seconds Execution latency.
# TYPE vectorh_exec_seconds histogram
vectorh_exec_seconds_bucket{le="4.096e-06"} 2
vectorh_exec_seconds_bucket{le="8.192e-06"} 2
vectorh_exec_seconds_bucket{le="1.6384e-05"} 2
vectorh_exec_seconds_bucket{le="3.2768e-05"} 2
vectorh_exec_seconds_bucket{le="6.5536e-05"} 2
vectorh_exec_seconds_bucket{le="0.000131072"} 3
vectorh_exec_seconds_bucket{le="+Inf"} 3
vectorh_exec_seconds_sum 0.000106
vectorh_exec_seconds_count 3
# HELP vectorh_heap_bytes Heap in use.
# TYPE vectorh_heap_bytes gauge
vectorh_heap_bytes 1048576
# HELP vectorh_queries_total Queries executed.
# TYPE vectorh_queries_total counter
vectorh_queries_total 42
# HELP vectorh_sessions_active Active sessions.
# TYPE vectorh_sessions_active gauge
vectorh_sessions_active 3
`
	if got := b.String(); got != want {
		t.Errorf("Prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestQueryHashStable(t *testing.T) {
	a := QueryHash("select * from t where x = ?")
	b := QueryHash("select * from t where x = ?")
	c := QueryHash("select * from u where x = ?")
	if a != b {
		t.Errorf("same text hashed differently: %s vs %s", a, b)
	}
	if a == c {
		t.Errorf("different text collided: %s", a)
	}
	if len(a) != 16 {
		t.Errorf("hash %q not 16 hex digits", a)
	}
}
