package flownet

// HopcroftKarp computes a maximum matching in the bipartite graph where the
// left side has nLeft vertices, the right side nRight, and adj[l] lists the
// right vertices adjacent to left vertex l. It returns matchL (matchL[l] =
// matched right vertex or -1) and the matching size.
//
// VectorH uses this shape of matching to map Spark input-RDD partitions
// (left) to ExternalScan operators (right) while respecting HDFS block
// affinity (§7, Figure 6).
func HopcroftKarp(nLeft, nRight int, adj [][]int) (matchL []int, size int) {
	const inf = int(^uint(0) >> 1)
	matchL = make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nLeft; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range adj[l] {
				nl := matchR[r]
				if nl == -1 {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range adj[l] {
			nl := matchR[r]
			if nl == -1 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nLeft; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return matchL, size
}
