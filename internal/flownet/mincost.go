// Package flownet provides the combinatorial building blocks VectorH uses
// for placement decisions: min-cost max-flow (worker-set selection, data
// affinity mapping and responsibility assignment, §4 and Figure 3 of the
// paper) and Hopcroft–Karp bipartite matching (Spark RDD partition
// assignment, §7).
package flownet

import "container/list"

// Graph is a directed flow network with per-edge capacity and cost.
// Nodes are dense integers [0, n). The zero Graph is not usable; call New.
type Graph struct {
	n     int
	heads []int32
	edges []edge
}

type edge struct {
	to, next int32
	cap      int32
	cost     int32
}

// New returns an empty flow network with n nodes.
func New(n int) *Graph {
	heads := make([]int32, n)
	for i := range heads {
		heads[i] = -1
	}
	return &Graph{n: n, heads: heads}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u->v with the given capacity and cost, plus
// the implicit residual reverse edge. It returns the edge index, usable with
// Flow after solving.
func (g *Graph) AddEdge(u, v, capacity, cost int) int {
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), next: g.heads[u], cap: int32(capacity), cost: int32(cost)})
	g.heads[u] = int32(id)
	g.edges = append(g.edges, edge{to: int32(u), next: g.heads[v], cap: 0, cost: int32(-cost)})
	g.heads[v] = int32(id + 1)
	return id
}

// Flow returns the flow pushed through edge id after MinCostMaxFlow.
func (g *Graph) Flow(id int) int { return int(g.edges[id^1].cap) }

// MinCostMaxFlow computes a maximum flow of minimum cost from s to t using
// successive shortest augmenting paths (SPFA for the shortest-path step,
// which tolerates the negative reduced costs of residual edges). It returns
// the total flow and its total cost.
func (g *Graph) MinCostMaxFlow(s, t int) (flow, cost int) {
	const inf = int32(1) << 30
	dist := make([]int32, g.n)
	inQueue := make([]bool, g.n)
	prevEdge := make([]int32, g.n)

	for {
		for i := range dist {
			dist[i] = inf
			prevEdge[i] = -1
			inQueue[i] = false
		}
		dist[s] = 0
		queue := list.New()
		queue.PushBack(int32(s))
		inQueue[s] = true
		for queue.Len() > 0 {
			u := queue.Remove(queue.Front()).(int32)
			inQueue[u] = false
			for eid := g.heads[u]; eid >= 0; eid = g.edges[eid].next {
				e := &g.edges[eid]
				if e.cap <= 0 {
					continue
				}
				if nd := dist[u] + e.cost; nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = eid
					if !inQueue[e.to] {
						queue.PushBack(e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		if dist[t] >= inf {
			return flow, cost
		}
		// Find the bottleneck along the path, then augment.
		push := inf
		for v := int32(t); v != int32(s); {
			e := &g.edges[prevEdge[v]]
			if e.cap < push {
				push = e.cap
			}
			v = g.edges[prevEdge[v]^1].to
		}
		for v := int32(t); v != int32(s); {
			eid := prevEdge[v]
			g.edges[eid].cap -= push
			g.edges[eid^1].cap += push
			v = g.edges[eid^1].to
		}
		flow += int(push)
		cost += int(push * dist[t])
	}
}
