package flownet

import (
	"math/rand"
	"testing"
)

func TestMinCostSimplePath(t *testing.T) {
	// s -> a -> t, capacity 5, costs 1+2.
	g := New(4)
	const s, a, tt = 0, 1, 2
	e1 := g.AddEdge(s, a, 5, 1)
	e2 := g.AddEdge(a, tt, 5, 2)
	flow, cost := g.MinCostMaxFlow(s, tt)
	if flow != 5 || cost != 15 {
		t.Fatalf("flow=%d cost=%d, want 5/15", flow, cost)
	}
	if g.Flow(e1) != 5 || g.Flow(e2) != 5 {
		t.Fatalf("edge flows %d/%d", g.Flow(e1), g.Flow(e2))
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Two parallel paths: cheap capacity 3 cost 1, expensive capacity 3
	// cost 10. Demand 4 must use 3 cheap + 1 expensive.
	g := New(4)
	const s, a, b, tt = 0, 1, 2, 3
	g.AddEdge(s, a, 3, 0)
	cheap := g.AddEdge(a, tt, 3, 1)
	g.AddEdge(s, b, 10, 0)
	exp := g.AddEdge(b, tt, 10, 10)
	// Limit total demand with a bottleneck source edge arrangement:
	// rebuild with a super source.
	g2 := New(6)
	const S = 4
	g2.AddEdge(S, s, 4, 0)
	g2.AddEdge(s, a, 3, 0)
	cheap = g2.AddEdge(a, tt, 3, 1)
	g2.AddEdge(s, b, 10, 0)
	exp = g2.AddEdge(b, tt, 10, 10)
	flow, cost := g2.MinCostMaxFlow(S, tt)
	if flow != 4 || cost != 3*1+1*10 {
		t.Fatalf("flow=%d cost=%d, want 4/13", flow, cost)
	}
	if g2.Flow(cheap) != 3 || g2.Flow(exp) != 1 {
		t.Fatalf("cheap=%d exp=%d", g2.Flow(cheap), g2.Flow(exp))
	}
	_ = g
}

func TestMinCostDisconnected(t *testing.T) {
	g := New(2)
	flow, cost := g.MinCostMaxFlow(0, 1)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow=%d cost=%d on empty graph", flow, cost)
	}
}

func TestMinCostAssignmentProblem(t *testing.T) {
	// Classic 3x3 assignment: cost matrix with known optimum 1+2+1 = 4.
	costs := [3][3]int{{1, 5, 7}, {4, 2, 9}, {8, 6, 1}}
	g := New(8)
	s, tt := 6, 7
	var asn [3][3]int
	for i := 0; i < 3; i++ {
		g.AddEdge(s, i, 1, 0)
		g.AddEdge(3+i, tt, 1, 0)
		for j := 0; j < 3; j++ {
			asn[i][j] = g.AddEdge(i, 3+j, 1, costs[i][j])
		}
	}
	flow, cost := g.MinCostMaxFlow(s, tt)
	if flow != 3 || cost != 4 {
		t.Fatalf("flow=%d cost=%d, want 3/4", flow, cost)
	}
	for i := 0; i < 3; i++ {
		total := 0
		for j := 0; j < 3; j++ {
			total += g.Flow(asn[i][j])
		}
		if total != 1 {
			t.Fatalf("row %d assigned %d times", i, total)
		}
	}
}

func TestMinCostRespectsCapacities(t *testing.T) {
	// Randomized: verify flow conservation and capacity limits.
	rng := rand.New(rand.NewSource(7))
	n := 12
	g := New(n)
	type ed struct{ id, u, v, c int }
	var es []ed
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(n-1), 1+rng.Intn(n-1)
		if u == v {
			continue
		}
		c := 1 + rng.Intn(5)
		es = append(es, ed{g.AddEdge(u, v, c, rng.Intn(4)), u, v, c})
	}
	flow, _ := g.MinCostMaxFlow(0, n-1)
	net := make([]int, n)
	for _, e := range es {
		f := g.Flow(e.id)
		if f < 0 || f > e.c {
			t.Fatalf("edge %d->%d flow %d out of [0,%d]", e.u, e.v, f, e.c)
		}
		net[e.u] -= f
		net[e.v] += f
	}
	if net[0] != -flow || net[n-1] != flow {
		t.Fatalf("imbalance at terminals: %d/%d vs flow %d", net[0], net[n-1], flow)
	}
	for i := 1; i < n-1; i++ {
		if net[i] != 0 {
			t.Fatalf("conservation violated at node %d: %d", i, net[i])
		}
	}
}

func TestHopcroftKarpPerfectMatching(t *testing.T) {
	adj := [][]int{{0, 1}, {0}, {2}}
	matchL, size := HopcroftKarp(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if matchL[1] != 0 || matchL[0] != 1 || matchL[2] != 2 {
		t.Fatalf("matchL = %v", matchL)
	}
}

func TestHopcroftKarpPartialMatching(t *testing.T) {
	// Two left vertices compete for one right vertex.
	adj := [][]int{{0}, {0}}
	_, size := HopcroftKarp(2, 1, adj)
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	matchL, size := HopcroftKarp(2, 2, [][]int{nil, nil})
	if size != 0 || matchL[0] != -1 || matchL[1] != -1 {
		t.Fatalf("empty adj matched: %v %d", matchL, size)
	}
}

func TestHopcroftKarpAgainstBruteForce(t *testing.T) {
	// Random small graphs vs exhaustive matching size.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		nl, nr := 1+rng.Intn(5), 1+rng.Intn(5)
		adj := make([][]int, nl)
		for l := range adj {
			for r := 0; r < nr; r++ {
				if rng.Intn(3) == 0 {
					adj[l] = append(adj[l], r)
				}
			}
		}
		_, size := HopcroftKarp(nl, nr, adj)
		if want := bruteMatch(nl, nr, adj); size != want {
			t.Fatalf("trial %d: size %d, want %d (adj %v)", trial, size, want, adj)
		}
	}
}

func bruteMatch(nl, nr int, adj [][]int) int {
	usedR := make([]bool, nr)
	var rec func(l int) int
	rec = func(l int) int {
		if l == nl {
			return 0
		}
		best := rec(l + 1) // skip l
		for _, r := range adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}
