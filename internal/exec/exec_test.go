package exec

import (
	"context"
	"errors"
	"sort"
	"testing"

	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// mkBatches builds n rows (k=i, grp=i%g, val=float(i)) split into batches.
func mkBatches(n, g, batchSize int) []*vector.Batch {
	var out []*vector.Batch
	for off := 0; off < n; off += batchSize {
		cnt := n - off
		if cnt > batchSize {
			cnt = batchSize
		}
		ks := make([]int64, cnt)
		gs := make([]int64, cnt)
		vs := make([]float64, cnt)
		for i := 0; i < cnt; i++ {
			ks[i] = int64(off + i)
			gs[i] = int64((off + i) % g)
			vs[i] = float64(off + i)
		}
		out = append(out, vector.NewBatch(vector.FromInt64(ks), vector.FromInt64(gs), vector.FromFloat64(vs)))
	}
	return out
}

func src(n, g int) Operator { return &BatchSource{Batches: mkBatches(n, g, 100)} }

func TestSelectPassThroughAndFilter(t *testing.T) {
	rows, err := Collect(&Select{Child: src(10, 3), Pred: expr.LT(expr.Col(0, vector.Int64), expr.ConstInt64(4))})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All-qualifying predicate passes batches through unchanged.
	rows, err = Collect(&Select{Child: src(10, 3), Pred: expr.GE(expr.Col(0, vector.Int64), expr.ConstInt64(0))})
	if err != nil || len(rows) != 10 {
		t.Fatalf("rows = %d err=%v", len(rows), err)
	}
	// Nothing qualifies.
	rows, err = Collect(&Select{Child: src(10, 3), Pred: expr.LT(expr.Col(0, vector.Int64), expr.ConstInt64(0))})
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %d err=%v", len(rows), err)
	}
}

func TestProjectAndChainedSelect(t *testing.T) {
	op := &Project{
		Child: &Select{Child: src(10, 3), Pred: expr.GE(expr.Col(0, vector.Int64), expr.ConstInt64(8))},
		Exprs: []expr.Expr{
			expr.Mul(expr.Col(0, vector.Int64), expr.ConstInt64(2)),
			expr.Col(2, vector.Float64),
		},
	}
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].(int64) != 16 || rows[1][1].(float64) != 9 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLimit(t *testing.T) {
	rows, err := Collect(&Limit{Child: src(500, 3), N: 7})
	if err != nil || len(rows) != 7 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	rows, err = Collect(&Limit{Child: src(5, 3), N: 100})
	if err != nil || len(rows) != 5 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
}

func TestHashAggrGrouped(t *testing.T) {
	op := &HashAggr{
		Child: src(100, 4),
		Keys:  []expr.Expr{expr.Col(1, vector.Int64)},
		Aggs: []AggSpec{
			{Func: AggCountStar},
			{Func: AggSum, Arg: expr.Col(0, vector.Int64)},
			{Func: AggMin, Arg: expr.Col(2, vector.Float64)},
			{Func: AggMax, Arg: expr.Col(2, vector.Float64)},
			{Func: AggAvg, Arg: expr.Col(0, vector.Int64)},
		},
	}
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("groups = %d", len(rows))
	}
	byGrp := map[int64][]any{}
	for _, r := range rows {
		byGrp[r[0].(int64)] = r
	}
	// Group 1: keys 1,5,...,97 → count 25, sum 1225, min 1, max 97, avg 49.
	g := byGrp[1]
	if g[1].(int64) != 25 || g[2].(int64) != 1225 || g[3].(float64) != 1 || g[4].(float64) != 97 || g[5].(float64) != 49 {
		t.Fatalf("group 1 = %v", g)
	}
}

func TestHashAggrGlobalAndEmpty(t *testing.T) {
	op := &HashAggr{Child: src(10, 2), Aggs: []AggSpec{{Func: AggSum, Arg: expr.Col(0, vector.Int64)}}}
	rows, err := Collect(op)
	if err != nil || len(rows) != 1 || rows[0][0].(int64) != 45 {
		t.Fatalf("global sum = %v err=%v", rows, err)
	}
	// Empty input still yields one global row.
	op = &HashAggr{Child: &BatchSource{}, Aggs: []AggSpec{{Func: AggCountStar}}}
	rows, err = Collect(op)
	if err != nil || len(rows) != 1 || rows[0][0].(int64) != 0 {
		t.Fatalf("empty global = %v err=%v", rows, err)
	}
}

func TestHashAggrCountDistinct(t *testing.T) {
	b := vector.NewBatch(
		vector.FromInt64([]int64{1, 1, 1, 2, 2}),
		vector.FromString([]string{"a", "b", "a", "c", "c"}),
	)
	op := &HashAggr{
		Child: &BatchSource{Batches: []*vector.Batch{b}},
		Keys:  []expr.Expr{expr.Col(0, vector.Int64)},
		Aggs:  []AggSpec{{Func: AggCountDistinct, Arg: expr.Col(1, vector.String)}},
	}
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range rows {
		got[r[0].(int64)] = r[1].(int64)
	}
	if got[1] != 2 || got[2] != 1 {
		t.Fatalf("distinct = %v", got)
	}
}

func TestHashAggrStringKeysAndMinMaxString(t *testing.T) {
	b := vector.NewBatch(
		vector.FromString([]string{"x", "y", "x"}),
		vector.FromString([]string{"bb", "cc", "aa"}),
	)
	op := &HashAggr{
		Child: &BatchSource{Batches: []*vector.Batch{b}},
		Keys:  []expr.Expr{expr.Col(0, vector.String)},
		Aggs: []AggSpec{
			{Func: AggMin, Arg: expr.Col(1, vector.String)},
			{Func: AggMax, Arg: expr.Col(1, vector.String)},
		},
	}
	rows, err := Collect(op)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	for _, r := range rows {
		if r[0].(string) == "x" && (r[1].(string) != "aa" || r[2].(string) != "bb") {
			t.Fatalf("x group = %v", r)
		}
	}
}

func buildProbe() (Operator, Operator) {
	build := vector.NewBatch(
		vector.FromInt64([]int64{1, 2, 3}),
		vector.FromString([]string{"one", "two", "three"}),
	)
	probe := vector.NewBatch(
		vector.FromInt64([]int64{2, 2, 4, 1}),
		vector.FromFloat64([]float64{20, 21, 40, 10}),
	)
	return &BatchSource{Batches: []*vector.Batch{build}}, &BatchSource{Batches: []*vector.Batch{probe}}
}

func TestHashJoinInner(t *testing.T) {
	b, p := buildProbe()
	j := &HashJoin{Build: b, Probe: p,
		BuildKeys: []expr.Expr{expr.Col(0, vector.Int64)},
		ProbeKeys: []expr.Expr{expr.Col(0, vector.Int64)}, Type: Inner}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Output: probe cols (k, val) then build cols (k, name).
	if rows[0][3].(string) != "two" || rows[2][3].(string) != "one" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	b, p := buildProbe()
	j := &HashJoin{Build: b, Probe: p,
		BuildKeys: []expr.Expr{expr.Col(0, vector.Int64)},
		ProbeKeys: []expr.Expr{expr.Col(0, vector.Int64)}, Type: LeftOuter}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	var unmatched []any
	for _, r := range rows {
		if !r[4].(bool) {
			unmatched = r
		}
	}
	if unmatched == nil || unmatched[0].(int64) != 4 || unmatched[3].(string) != "" {
		t.Fatalf("unmatched = %v", unmatched)
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	b, p := buildProbe()
	j := &HashJoin{Build: b, Probe: p,
		BuildKeys: []expr.Expr{expr.Col(0, vector.Int64)},
		ProbeKeys: []expr.Expr{expr.Col(0, vector.Int64)}, Type: Semi}
	rows, err := Collect(j)
	if err != nil || len(rows) != 3 {
		t.Fatalf("semi rows = %v err=%v", rows, err)
	}
	if len(rows[0]) != 2 {
		t.Fatalf("semi keeps probe cols only: %v", rows[0])
	}
	b2, p2 := buildProbe()
	j = &HashJoin{Build: b2, Probe: p2,
		BuildKeys: []expr.Expr{expr.Col(0, vector.Int64)},
		ProbeKeys: []expr.Expr{expr.Col(0, vector.Int64)}, Type: Anti}
	rows, err = Collect(j)
	if err != nil || len(rows) != 1 || rows[0][0].(int64) != 4 {
		t.Fatalf("anti rows = %v err=%v", rows, err)
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	build := vector.NewBatch(
		vector.FromInt64([]int64{7, 7}),
		vector.FromString([]string{"a", "b"}),
	)
	probe := vector.NewBatch(vector.FromInt64([]int64{7}))
	j := &HashJoin{
		Build:     &BatchSource{Batches: []*vector.Batch{build}},
		Probe:     &BatchSource{Batches: []*vector.Batch{probe}},
		BuildKeys: []expr.Expr{expr.Col(0, vector.Int64)},
		ProbeKeys: []expr.Expr{expr.Col(0, vector.Int64)}, Type: Inner}
	rows, err := Collect(j)
	if err != nil || len(rows) != 2 {
		t.Fatalf("dup join rows = %v err=%v", rows, err)
	}
}

func TestMergeJoin(t *testing.T) {
	// Left: fk with duplicates, sorted. Right: unique pk, sorted.
	left := vector.NewBatch(
		vector.FromInt64([]int64{1, 1, 2, 4, 4, 4, 7}),
		vector.FromFloat64([]float64{10, 11, 20, 40, 41, 42, 70}),
	)
	right := vector.NewBatch(
		vector.FromInt64([]int64{1, 2, 3, 4, 5}),
		vector.FromString([]string{"one", "two", "three", "four", "five"}),
	)
	m := &MergeJoin{
		Left:    &BatchSource{Batches: []*vector.Batch{left}},
		Right:   &BatchSource{Batches: []*vector.Batch{right}},
		LeftKey: 0, RightKey: 0,
	}
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[5][3].(string) != "four" || rows[0][3].(string) != "one" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMergeJoinAcrossBatches(t *testing.T) {
	mk := func(keys []int64) []*vector.Batch {
		var out []*vector.Batch
		for _, k := range keys { // one row per batch: stress refills
			out = append(out, vector.NewBatch(vector.FromInt64([]int64{k})))
		}
		return out
	}
	m := &MergeJoin{
		Left:    &BatchSource{Batches: mk([]int64{1, 2, 2, 3, 9})},
		Right:   &BatchSource{Batches: mk([]int64{2, 3, 4})},
		LeftKey: 0, RightKey: 0,
	}
	rows, err := Collect(m)
	if err != nil || len(rows) != 3 {
		t.Fatalf("rows = %v err=%v", rows, err)
	}
}

func TestMergeJoinManyToMany(t *testing.T) {
	// Duplicates on BOTH sides: every (left, right) pair with equal keys
	// must come out, including when a right-side run spans batch refills.
	left := vector.NewBatch(
		vector.FromInt64([]int64{1, 2, 2, 4}),
		vector.FromString([]string{"l1", "l2a", "l2b", "l4"}),
	)
	right := []*vector.Batch{
		vector.NewBatch(
			vector.FromInt64([]int64{2, 2}),
			vector.FromString([]string{"r2a", "r2b"})),
		vector.NewBatch( // run for key 2 continues into this batch
			vector.FromInt64([]int64{2, 3, 4}),
			vector.FromString([]string{"r2c", "r3", "r4"})),
	}
	m := &MergeJoin{
		Left:    &BatchSource{Batches: []*vector.Batch{left}},
		Right:   &BatchSource{Batches: right},
		LeftKey: 0, RightKey: 0,
	}
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range rows {
		got = append(got, r[1].(string)+"/"+r[3].(string))
	}
	want := []string{"l2a/r2a", "l2a/r2b", "l2a/r2c", "l2b/r2a", "l2b/r2b", "l2b/r2c", "l4/r4"}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", got, want)
		}
	}
}

func TestSortMultiKey(t *testing.T) {
	b := vector.NewBatch(
		vector.FromInt64([]int64{1, 2, 1, 2}),
		vector.FromString([]string{"b", "x", "a", "y"}),
	)
	s := &Sort{Child: &BatchSource{Batches: []*vector.Batch{b}}, Keys: []SortKey{
		{Expr: expr.Col(0, vector.Int64), Desc: true},
		{Expr: expr.Col(1, vector.String)},
	}}
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "y", "a", "b"}
	for i, w := range want {
		if rows[i][1].(string) != w {
			t.Fatalf("rows = %v", rows)
		}
	}
}

func TestSortEmpty(t *testing.T) {
	rows, err := Collect(&Sort{Child: &BatchSource{}, Keys: []SortKey{{Expr: expr.Col(0, vector.Int64)}}})
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestTopN(t *testing.T) {
	op := &TopN{Child: src(1000, 3), N: 5, Keys: []SortKey{{Expr: expr.Col(0, vector.Int64), Desc: true}}}
	rows, err := Collect(op)
	if err != nil || len(rows) != 5 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	if rows[0][0].(int64) != 999 || rows[4][0].(int64) != 995 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestXchgUnionMergesAllProducers(t *testing.T) {
	producers := []Operator{src(100, 2), src(100, 2), src(100, 2)}
	u := XchgUnion(context.Background(), producers)
	rows, err := Collect(u)
	if err != nil || len(rows) != 300 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
}

func TestXchgHashSplitPartitionsCompletely(t *testing.T) {
	producers := []Operator{src(500, 2), src(500, 2)}
	ports := XchgHashSplit(context.Background(), producers, []expr.Expr{expr.Col(0, vector.Int64)}, 4)
	type res struct {
		rows [][]any
		err  error
	}
	results := make([]res, 4)
	done := make(chan int, 4)
	for i, p := range ports {
		go func(i int, p Operator) {
			r, e := Collect(p)
			results[i] = res{r, e}
			done <- i
		}(i, p)
	}
	for range ports {
		<-done
	}
	seen := map[int64][]int{}
	total := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		total += len(r.rows)
		for _, row := range r.rows {
			seen[row[0].(int64)] = append(seen[row[0].(int64)], i)
		}
	}
	if total != 1000 {
		t.Fatalf("total rows = %d", total)
	}
	// Same key always lands at the same consumer.
	for k, consumers := range seen {
		sort.Ints(consumers)
		for _, c := range consumers {
			if c != consumers[0] {
				t.Fatalf("key %d split across consumers %v", k, consumers)
			}
		}
	}
}

func TestXchgBroadcast(t *testing.T) {
	ports := XchgBroadcast(context.Background(), []Operator{src(50, 2)}, 3)
	counts := make([]int, 3)
	done := make(chan struct{}, 3)
	for i, p := range ports {
		go func(i int, p Operator) {
			rows, _ := Collect(p)
			counts[i] = len(rows)
			done <- struct{}{}
		}(i, p)
	}
	for range ports {
		<-done
	}
	for i, c := range counts {
		if c != 50 {
			t.Fatalf("consumer %d got %d rows", i, c)
		}
	}
}

func TestXchgRangeSplit(t *testing.T) {
	ports := XchgRangeSplit(context.Background(), []Operator{src(100, 2)}, expr.Col(0, vector.Int64), []int64{29, 59})
	counts := make([]int, 3)
	done := make(chan struct{}, 3)
	for i, p := range ports {
		go func(i int, p Operator) {
			rows, _ := Collect(p)
			counts[i] = len(rows)
			done <- struct{}{}
		}(i, p)
	}
	for range ports {
		<-done
	}
	if counts[0] != 30 || counts[1] != 30 || counts[2] != 40 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestXchgMergeUnion(t *testing.T) {
	mk := func(keys ...int64) Operator {
		return &BatchSource{Batches: []*vector.Batch{vector.NewBatch(vector.FromInt64(keys))}}
	}
	m := XchgMergeUnion([]Operator{mk(1, 4, 9), mk(2, 3, 10), mk(5)}, []SortKey{{Expr: expr.Col(0, vector.Int64)}})
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 5, 9, 10}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i, w := range want {
		if rows[i][0].(int64) != w {
			t.Fatalf("rows = %v", rows)
		}
	}
}

type errOp struct{ err error }

func (e *errOp) Open() error                  { return nil }
func (e *errOp) Next() (*vector.Batch, error) { return nil, e.err }
func (e *errOp) Close() error                 { return nil }

func TestXchgPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	u := XchgUnion(context.Background(), []Operator{&errOp{boom}})
	_, err := Collect(u)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestProfiledCountsTuples(t *testing.T) {
	p := &Profiled{Name: "scan", Child: src(250, 2)}
	rows, err := Collect(p)
	if err != nil || len(rows) != 250 {
		t.Fatal(err)
	}
	if p.TuplesOut != 250 || p.NanosSelf <= 0 {
		t.Fatalf("profile: tuples=%d nanos=%d", p.TuplesOut, p.NanosSelf)
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	s := &FuncSource{NextFn: func() (*vector.Batch, error) {
		if n >= 2 {
			return nil, nil
		}
		n++
		return vector.NewBatch(vector.FromInt64([]int64{int64(n)})), nil
	}}
	rows, err := Collect(s)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestHashRowsDeterministicAcrossBatches(t *testing.T) {
	b1 := vector.NewBatch(vector.FromInt64([]int64{42}))
	b2 := vector.NewBatch(vector.FromInt64([]int64{42, 7}))
	h1, err := HashRows(b1, []expr.Expr{expr.Col(0, vector.Int64)})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashRows(b2, []expr.Expr{expr.Col(0, vector.Int64)})
	if err != nil {
		t.Fatal(err)
	}
	if h1[0] != h2[0] {
		t.Fatal("hash of same key differs between batches")
	}
	if h2[0] == h2[1] {
		t.Fatal("distinct keys should (almost surely) hash differently")
	}
}

func TestCollectErrors(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Collect(&errOp{boom}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkVectorizedVsTupleSelect(b *testing.B) {
	// The §2 claim in miniature: vectorized selection vs per-tuple calls.
	n := 1 << 16
	ks := make([]int64, n)
	for i := range ks {
		ks[i] = int64(i % 1000)
	}
	batch := vector.NewBatch(vector.FromInt64(ks))
	pred := expr.LT(expr.Col(0, vector.Int64), expr.ConstInt64(500))
	b.Run("vectorized", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			v, err := pred.Eval(batch)
			if err != nil {
				b.Fatal(err)
			}
			_ = expr.SelFromBool(v, batch)
		}
	})
	b.Run("tuple-at-a-time", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		one := vector.NewBatch(vector.FromInt64([]int64{0}))
		for i := 0; i < b.N; i++ {
			cnt := 0
			for r := 0; r < n; r++ {
				one.Vecs[0].Int64s()[0] = ks[r]
				v, err := pred.Eval(one)
				if err != nil {
					b.Fatal(err)
				}
				if v.Bools()[0] {
					cnt++
				}
			}
			_ = cnt
		}
	})
}
