// Parity tests: the vectorized HashTable-backed join must produce exactly
// the rows (and row order) of the previous row-at-a-time map[string]
// implementation, on real TPC-H data at SF 0.01. The reference
// implementation below is a faithful copy of the old algorithm: per-row
// byte-serialized keys into a Go map, probe rows in order, matches in build
// insertion order.
package exec_test

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"vectorh/internal/exec"
	"vectorh/internal/expr"
	"vectorh/internal/tpch"
	"vectorh/internal/vector"
)

// refKey serializes one row's key columns the way the old implementation did.
func refKey(cols []*vector.Vec, r int) string {
	var dst []byte
	for _, v := range cols {
		switch v.Kind() {
		case vector.Int64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int64s()[r]))
		case vector.Int32:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Int32s()[r]))
		case vector.Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float64s()[r]))
		case vector.String:
			s := v.Strings()[r]
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return string(dst)
}

// refJoin is the old row-at-a-time hash join over dense single-batch inputs.
func refJoin(build, probe *vector.Batch, buildKey, probeKey int, jt exec.JoinType) [][]any {
	table := map[string][]int32{}
	bk := []*vector.Vec{build.Col(buildKey)}
	for r := 0; r < build.Len(); r++ {
		k := refKey(bk, r)
		table[k] = append(table[k], int32(r))
	}
	pk := []*vector.Vec{probe.Col(probeKey)}
	var out [][]any
	emit := func(pr int, br int32, matched bool) {
		row := probe.Row(pr)
		if jt == exec.Inner || jt == exec.LeftOuter {
			if br < 0 {
				for _, v := range build.Vecs {
					switch v.Kind() {
					case vector.Int64:
						row = append(row, int64(0))
					case vector.Int32:
						row = append(row, int32(0))
					case vector.Float64:
						row = append(row, float64(0))
					case vector.String:
						row = append(row, "")
					case vector.Bool:
						row = append(row, false)
					}
				}
			} else {
				row = append(row, build.Row(int(br))...)
			}
		}
		if jt == exec.LeftOuter {
			row = append(row, matched)
		}
		out = append(out, row)
	}
	for r := 0; r < probe.Len(); r++ {
		rows := table[refKey(pk, r)]
		switch jt {
		case exec.Inner:
			for _, br := range rows {
				emit(r, br, true)
			}
		case exec.LeftOuter:
			if len(rows) == 0 {
				emit(r, -1, false)
			} else {
				for _, br := range rows {
					emit(r, br, true)
				}
			}
		case exec.Semi:
			if len(rows) > 0 {
				out = append(out, probe.Row(r))
			}
		case exec.Anti:
			if len(rows) == 0 {
				out = append(out, probe.Row(r))
			}
		}
	}
	return out
}

// chunked splits a dense batch into MaxSize slices so operators see a
// realistic batch stream.
func chunked(b *vector.Batch) exec.Operator {
	var out []*vector.Batch
	for lo := 0; lo < b.Len(); lo += vector.MaxSize {
		hi := lo + vector.MaxSize
		if hi > b.Len() {
			hi = b.Len()
		}
		sl := &vector.Batch{Vecs: make([]*vector.Vec, len(b.Vecs))}
		for i, v := range b.Vecs {
			sl.Vecs[i] = v.Slice(lo, hi)
		}
		out = append(out, sl)
	}
	return &exec.BatchSource{Batches: out}
}

func TestHashJoinParityTPCH(t *testing.T) {
	d := tpch.Generate(0.01, 9)
	customer := d.Tables["customer"]
	orders := d.Tables["orders"]
	custKeyInOrders := tpch.OrdersSchema.Index("o_custkey")
	custKey := tpch.CustomerSchema.Index("c_custkey")
	if custKeyInOrders < 0 || custKey < 0 {
		t.Fatal("schema columns not found")
	}
	kind := customer.Col(custKey).Kind()
	for _, jt := range []exec.JoinType{exec.Inner, exec.LeftOuter, exec.Semi, exec.Anti} {
		jt := jt
		t.Run(fmt.Sprintf("type=%d", jt), func(t *testing.T) {
			// Build on customer, probe with orders — the Q13 shape. A
			// third of customers have no orders, so Anti/LeftOuter have
			// real work; duplicate o_custkey values exercise chains.
			j := &exec.HashJoin{
				Build:     chunked(customer),
				Probe:     chunked(orders),
				BuildKeys: []expr.Expr{expr.Col(custKey, kind)},
				ProbeKeys: []expr.Expr{expr.Col(custKeyInOrders, kind)},
				Type:      jt,
			}
			got, err := exec.Collect(j)
			if err != nil {
				t.Fatal(err)
			}
			want := refJoin(customer, orders, custKey, custKeyInOrders, jt)
			if len(got) != len(want) {
				t.Fatalf("rows = %d, reference = %d", len(got), len(want))
			}
			for i := range got {
				if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
					t.Fatalf("row %d:\n got %v\nwant %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestHashAggrParityTPCH(t *testing.T) {
	// GROUP BY o_custkey over orders: group count and per-group COUNT(*)
	// must match a map-based reference, SF 0.01.
	d := tpch.Generate(0.01, 9)
	orders := d.Tables["orders"]
	ck := tpch.OrdersSchema.Index("o_custkey")
	kind := orders.Col(ck).Kind()
	op := &exec.HashAggr{
		Child: chunked(orders),
		Keys:  []expr.Expr{expr.Col(ck, kind)},
		Aggs:  []exec.AggSpec{{Func: exec.AggCountStar}},
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int64]int64{}
	keys := orders.Col(ck).Int64s()
	for _, k := range keys {
		ref[k]++
	}
	if len(rows) != len(ref) {
		t.Fatalf("groups = %d, reference = %d", len(rows), len(ref))
	}
	for _, r := range rows {
		if ref[r[0].(int64)] != r[1].(int64) {
			t.Fatalf("group %v count %v, want %d", r[0], r[1], ref[r[0].(int64)])
		}
	}
}
