// Package exec implements the vectorized query operators of the engine
// (§2, §5 of the paper): Select with selection vectors, Project, hash
// aggregation (partial and final), hash joins (inner, left outer, semi,
// anti), merge join for co-ordered clustered tables, sort, top-N, and the
// local Xchg operator family that encapsulates multi-core parallelism so
// every other operator can stay parallelism-unaware (the Volcano model the
// paper builds its MPP parallelism on).
package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// Operator is the Volcano iterator contract: Open, repeated Next until a nil
// batch, Close.
type Operator interface {
	Open() error
	Next() (*vector.Batch, error)
	Close() error
}

// --- sources ---

// BatchSource replays a fixed list of batches (tests, PDT tails, receiver
// buffers).
type BatchSource struct {
	Batches []*vector.Batch
	pos     int
}

// Open implements Operator.
func (s *BatchSource) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *BatchSource) Next() (*vector.Batch, error) {
	for s.pos < len(s.Batches) {
		b := s.Batches[s.pos]
		s.pos++
		if b != nil && b.Len() > 0 {
			return b, nil
		}
	}
	return nil, nil
}

// Close implements Operator.
func (s *BatchSource) Close() error { return nil }

// FuncSource adapts a pull function to an Operator.
type FuncSource struct {
	NextFn  func() (*vector.Batch, error)
	CloseFn func() error
}

// Open implements Operator.
func (s *FuncSource) Open() error { return nil }

// Next implements Operator.
func (s *FuncSource) Next() (*vector.Batch, error) { return s.NextFn() }

// Close implements Operator.
func (s *FuncSource) Close() error {
	if s.CloseFn != nil {
		return s.CloseFn()
	}
	return nil
}

// --- select ---

// Select filters its child with a boolean predicate, producing selection
// vectors instead of copying data.
type Select struct {
	Child Operator
	Pred  expr.Expr
}

// Open implements Operator.
func (s *Select) Open() error { return s.Child.Open() }

// Next implements Operator.
func (s *Select) Next() (*vector.Batch, error) {
	for {
		b, err := s.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		v, err := s.Pred.Eval(b)
		if err != nil {
			return nil, err
		}
		if v.Kind() != vector.Bool {
			return nil, fmt.Errorf("exec: select predicate is %v", v.Kind())
		}
		sel := expr.SelFromBool(v, b)
		if len(sel) == 0 {
			continue
		}
		if len(sel) == b.Len() && b.Sel == nil {
			return b, nil // everything qualifies: pass through
		}
		out := &vector.Batch{Vecs: b.Vecs, Sel: sel}
		vector.CheckBatch(out)
		return out, nil
	}
}

// Close implements Operator.
func (s *Select) Close() error { return s.Child.Close() }

// --- project ---

// Project evaluates expressions into a dense output batch.
type Project struct {
	Child Operator
	Exprs []expr.Expr
}

// Open implements Operator.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Operator.
func (p *Project) Next() (*vector.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := &vector.Batch{Vecs: make([]*vector.Vec, len(p.Exprs))}
	for i, e := range p.Exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		out.Vecs[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// --- limit ---

// Limit passes through the first N rows.
type Limit struct {
	Child Operator
	N     int64

	seen int64
}

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Next implements Operator.
func (l *Limit) Next() (*vector.Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	b, err := l.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.seen+int64(b.Len()) <= l.N {
		l.seen += int64(b.Len())
		return b, nil
	}
	take := int(l.N - l.seen)
	l.seen = l.N
	c := b.Compact()
	out := &vector.Batch{Vecs: make([]*vector.Vec, len(c.Vecs))}
	for i, v := range c.Vecs {
		out.Vecs[i] = v.Slice(0, take)
	}
	return out, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// --- profiling wrapper (the Appendix profile of the paper) ---

// Profiled wraps an operator, measuring wall time spent inside it and the
// tuples, batches, and peak batch size it produced; used to regenerate the
// Appendix per-operator profile and to drive EXPLAIN ANALYZE. The wrapper is
// only inserted into a plan when profiling is requested, so the profiling-off
// path pays nothing — no wrapper, no timestamps, no atomics.
type Profiled struct {
	Name  string
	Child Operator

	NanosSelf int64
	TuplesOut int64
	Batches   int64
	PeakBatch int64
}

// Open implements Operator.
func (p *Profiled) Open() error {
	t0 := time.Now()
	err := p.Child.Open()
	atomic.AddInt64(&p.NanosSelf, int64(time.Since(t0)))
	return err
}

// Next implements Operator.
func (p *Profiled) Next() (*vector.Batch, error) {
	t0 := time.Now()
	b, err := p.Child.Next()
	atomic.AddInt64(&p.NanosSelf, int64(time.Since(t0)))
	if b != nil {
		n := int64(b.Len())
		atomic.AddInt64(&p.TuplesOut, n)
		atomic.AddInt64(&p.Batches, 1)
		for {
			peak := atomic.LoadInt64(&p.PeakBatch)
			if n <= peak || atomic.CompareAndSwapInt64(&p.PeakBatch, peak, n) {
				break
			}
		}
	}
	return b, err
}

// Close implements Operator.
func (p *Profiled) Close() error { return p.Child.Close() }

// Collect drains an operator into a row list (test/result helper).
func Collect(op Operator) ([][]any, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var rows [][]any
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.Row(i))
		}
	}
}
