package exec

import (
	"sort"

	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// SortKey is one ordering term.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort materializes its child and emits it ordered by the keys.
type Sort struct {
	Child Operator
	Keys  []SortKey

	sorted  *vector.Batch
	perm    []int32
	emitted int
	done    bool
}

// Open implements Operator.
func (s *Sort) Open() error {
	s.sorted, s.perm, s.emitted, s.done = nil, nil, 0, false
	return s.Child.Open()
}

// Close implements Operator.
func (s *Sort) Close() error { return s.Child.Close() }

// materializeAll drains the child into one big dense batch.
func materializeAll(child Operator) (*vector.Batch, error) {
	var all *vector.Batch
	for {
		b, err := child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return all, nil
		}
		c := b.Compact()
		if all == nil {
			all = &vector.Batch{Vecs: make([]*vector.Vec, len(c.Vecs))}
			for i, v := range c.Vecs {
				all.Vecs[i] = vector.New(v.Kind(), c.Len())
			}
		}
		for i, v := range c.Vecs {
			for r := 0; r < c.Len(); r++ {
				all.Vecs[i].AppendFrom(v, r)
			}
		}
	}
}

// sortPerm computes the permutation ordering the batch by keys.
func sortPerm(b *vector.Batch, keys []SortKey) ([]int32, error) {
	keyVecs := make([]*vector.Vec, len(keys))
	for i, k := range keys {
		v, err := k.Expr.Eval(b)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
	}
	perm := make([]int32, b.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		for ki, kv := range keyVecs {
			c := compareAt(kv, int(perm[x]), int(perm[y]))
			if c == 0 {
				continue
			}
			if keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return perm, nil
}

func compareAt(v *vector.Vec, x, y int) int {
	switch v.Kind() {
	case vector.Int64:
		a, b := v.Int64s()[x], v.Int64s()[y]
		return cmpOrdered(a, b)
	case vector.Int32:
		a, b := v.Int32s()[x], v.Int32s()[y]
		return cmpOrdered(a, b)
	case vector.Float64:
		a, b := v.Float64s()[x], v.Float64s()[y]
		return cmpOrdered(a, b)
	case vector.String:
		a, b := v.Strings()[x], v.Strings()[y]
		return cmpOrdered(a, b)
	case vector.Bool:
		a, b := v.Bools()[x], v.Bools()[y]
		switch {
		case a == b:
			return 0
		case !a:
			return -1
		default:
			return 1
		}
	}
	return 0
}

func cmpOrdered[T int32 | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Next implements Operator.
func (s *Sort) Next() (*vector.Batch, error) {
	if !s.done {
		all, err := materializeAll(s.Child)
		if err != nil {
			return nil, err
		}
		s.done = true
		if all == nil {
			return nil, nil
		}
		s.perm, err = sortPerm(all, s.Keys)
		if err != nil {
			return nil, err
		}
		s.sorted = all
	}
	if s.sorted == nil || s.emitted >= len(s.perm) {
		return nil, nil
	}
	lo := s.emitted
	hi := lo + vector.MaxSize
	if hi > len(s.perm) {
		hi = len(s.perm)
	}
	s.emitted = hi
	return &vector.Batch{Vecs: s.sorted.Vecs, Sel: s.perm[lo:hi]}, nil
}

// TopN emits the first N rows of the sorted order (ORDER BY ... LIMIT n /
// the paper's TopN operator with partial/final flavors around a
// DXchgUnion). It materializes only what the child produces and keeps a
// bounded candidate set.
type TopN struct {
	Child Operator
	Keys  []SortKey
	N     int

	out  Operator
	init bool
}

// Open implements Operator.
func (t *TopN) Open() error {
	t.out, t.init = nil, false
	return t.Child.Open()
}

// Close implements Operator.
func (t *TopN) Close() error { return t.Child.Close() }

// Next implements Operator.
func (t *TopN) Next() (*vector.Batch, error) {
	if !t.init {
		all, err := materializeAll(t.Child)
		if err != nil {
			return nil, err
		}
		t.init = true
		if all == nil {
			t.out = &BatchSource{}
		} else {
			perm, err := sortPerm(all, t.Keys)
			if err != nil {
				return nil, err
			}
			if len(perm) > t.N {
				perm = perm[:t.N]
			}
			t.out = &BatchSource{Batches: []*vector.Batch{{Vecs: all.Vecs, Sel: perm}}}
		}
		t.out.Open()
	}
	return t.out.Next()
}
