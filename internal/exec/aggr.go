package exec

import (
	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions. Avg is decomposed by the planner into Sum/Count for
// distributed plans but supported directly for local ones.
const (
	AggSum AggFunc = iota
	AggCount
	AggCountStar
	AggMin
	AggMax
	AggAvg
	AggCountDistinct
)

// AggSpec is one aggregate: a function over an argument expression (nil for
// COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
}

// resultKind returns the output kind of the aggregate.
func (a AggSpec) resultKind() vector.Kind {
	switch a.Func {
	case AggCount, AggCountStar, AggCountDistinct:
		return vector.Int64
	case AggAvg:
		return vector.Float64
	default:
		if a.Arg == nil {
			return vector.Int64
		}
		k := a.Arg.Kind()
		if k == vector.Int32 {
			return vector.Int64 // sums/mins widen int32
		}
		return k
	}
}

// aggState is one group's accumulator for one aggregate.
type aggState struct {
	i64   int64
	f64   float64
	str   string
	seen  bool
	count int64
}

// HashAggr performs hash group-by aggregation over the shared vectorized
// HashTable: group lookup is batch-at-a-time (FindOrInsert emits a group id
// per row, the table stores the key columns), aggregate updates fold whole
// argument vectors per group id, and COUNT(DISTINCT) deduplicates through a
// second (group, value)-keyed table instead of per-group map[string] sets.
// It consumes the child fully on the first Next, then emits result batches:
// key columns followed by one column per aggregate. With no keys it emits
// exactly one global row.
type HashAggr struct {
	Child Operator
	Keys  []expr.Expr
	Aggs  []AggSpec

	table    *HashTable   // group-by keys; nil for global aggregation
	states   [][]aggState // indexed [agg][group]
	distinct []*HashTable // (group, value) tables, allocated lazily and only
	// for AggCountDistinct specs
	pool     vector.Pool
	emitted  int
	consumed bool
}

// Open implements Operator.
func (h *HashAggr) Open() error {
	h.table = nil
	h.states = nil
	h.distinct = nil
	h.emitted = 0
	h.consumed = false
	return h.Child.Open()
}

// Close implements Operator.
func (h *HashAggr) Close() error { return h.Child.Close() }

// numGroups returns the group count after consumption.
func (h *HashAggr) numGroups() int {
	if len(h.states) == 0 {
		return 0
	}
	return len(h.states[0])
}

// Next implements Operator.
func (h *HashAggr) Next() (*vector.Batch, error) {
	if !h.consumed {
		if err := h.consume(); err != nil {
			return nil, err
		}
		h.consumed = true
	}
	n := h.numGroups()
	if h.emitted >= n {
		return nil, nil
	}
	lo := h.emitted
	hi := lo + vector.MaxSize
	if hi > n {
		hi = n
	}
	h.emitted = hi
	out := &vector.Batch{Vecs: make([]*vector.Vec, len(h.Keys)+len(h.Aggs))}
	for i := range h.Keys {
		out.Vecs[i] = h.table.Keys()[i].Slice(lo, hi)
	}
	for ai, spec := range h.Aggs {
		v := vector.New(spec.resultKind(), hi-lo)
		for g := lo; g < hi; g++ {
			st := &h.states[ai][g]
			switch spec.Func {
			case AggCount, AggCountStar, AggCountDistinct:
				v.AppendInt64(st.count)
			case AggAvg:
				if st.count == 0 {
					// AVG over zero rows: the engine has no NULLs, so the
					// empty (global) group deliberately emits 0 rather
					// than NaN from 0/0. Tested by
					// TestHashAggrAvgEmptyInput.
					v.AppendFloat64(0)
				} else {
					v.AppendFloat64(st.f64 / float64(st.count))
				}
			case AggSum, AggMin, AggMax:
				switch spec.resultKind() {
				case vector.Float64:
					v.AppendFloat64(st.f64)
				case vector.String:
					v.AppendString(st.str)
				default:
					v.AppendInt64(st.i64)
				}
			}
		}
		out.Vecs[len(h.Keys)+ai] = v
	}
	return out, nil
}

func (h *HashAggr) consume() error {
	h.states = make([][]aggState, len(h.Aggs))
	h.distinct = make([]*HashTable, len(h.Aggs))
	if len(h.Keys) > 0 {
		kinds := make([]vector.Kind, len(h.Keys))
		for i, k := range h.Keys {
			kinds[i] = k.Kind()
		}
		h.table = NewHashTable(kinds, &h.pool)
	}
	keyCols := make([]*vector.Vec, len(h.Keys))
	argCols := make([]*vector.Vec, len(h.Aggs))
	for {
		b, err := h.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		// Evaluate key and argument expressions once per batch.
		for i, k := range h.Keys {
			if keyCols[i], err = k.Eval(b); err != nil {
				return err
			}
		}
		for i, a := range h.Aggs {
			if a.Arg != nil {
				if argCols[i], err = a.Arg.Eval(b); err != nil {
					return err
				}
			}
		}
		groups := h.pool.GetSel(n)[:n]
		if h.table != nil {
			h.table.FindOrInsert(keyCols, n, groups)
		} else {
			for i := range groups {
				groups[i] = 0
			}
		}
		h.growStates()
		for ai, spec := range h.Aggs {
			if spec.Func == AggCountDistinct {
				h.updateDistinct(ai, argCols[ai], groups, n)
			} else {
				updateAggBatch(h.states[ai], spec, argCols[ai], groups)
			}
		}
		h.pool.PutSel(groups)
	}
	// Global aggregates emit one row even for empty input.
	if len(h.Keys) == 0 && h.numGroups() == 0 {
		h.growStates()
	}
	// Fold the distinct tables: each stored (group, value) entry is one
	// distinct value of its group.
	for ai, dt := range h.distinct {
		if dt == nil {
			continue
		}
		states := h.states[ai]
		for _, g := range dt.Keys()[0].Int32s() {
			states[g].count++
		}
	}
	return nil
}

// growStates extends every per-agg state column to the current group count.
func (h *HashAggr) growStates() {
	want := 1
	if h.table != nil {
		want = h.table.Len()
	}
	for ai := range h.states {
		for len(h.states[ai]) < want {
			h.states[ai] = append(h.states[ai], aggState{})
		}
	}
}

// updateDistinct records this batch's (group, value) pairs in the spec's
// dedup table, creating it on first use (so non-distinct aggregations never
// pay for it).
func (h *HashAggr) updateDistinct(ai int, arg *vector.Vec, groups []int32, n int) {
	dt := h.distinct[ai]
	if dt == nil {
		dt = NewHashTable([]vector.Kind{vector.Int32, arg.Kind()}, &h.pool)
		h.distinct[ai] = dt
	}
	ids := h.pool.GetSel(n)[:n]
	dt.FindOrInsert([]*vector.Vec{vector.FromInt32(groups), arg}, n, ids)
	h.pool.PutSel(ids)
}

// updateAggBatch folds one batch of argument values into the per-group
// states, hoisting the function/kind dispatch out of the row loop.
func updateAggBatch(states []aggState, spec AggSpec, arg *vector.Vec, groups []int32) {
	switch spec.Func {
	case AggCountStar, AggCount:
		for _, g := range groups {
			states[g].count++
		}
		return
	case AggAvg:
		switch arg.Kind() {
		case vector.Float64:
			for r, g := range groups {
				st := &states[g]
				st.f64 += arg.Float64s()[r]
				st.count++
			}
		case vector.Int64:
			for r, g := range groups {
				st := &states[g]
				st.f64 += float64(arg.Int64s()[r])
				st.count++
			}
		case vector.Int32:
			for r, g := range groups {
				st := &states[g]
				st.f64 += float64(arg.Int32s()[r])
				st.count++
			}
		}
		return
	}
	switch arg.Kind() {
	case vector.Float64:
		xs := arg.Float64s()
		switch spec.Func {
		case AggSum:
			for r, g := range groups {
				st := &states[g]
				st.f64 += xs[r]
				st.seen = true
			}
		case AggMin:
			for r, g := range groups {
				st := &states[g]
				if x := xs[r]; !st.seen || x < st.f64 {
					st.f64 = x
				}
				st.seen = true
			}
		case AggMax:
			for r, g := range groups {
				st := &states[g]
				if x := xs[r]; !st.seen || x > st.f64 {
					st.f64 = x
				}
				st.seen = true
			}
		}
	case vector.String:
		xs := arg.Strings()
		switch spec.Func {
		case AggMin:
			for r, g := range groups {
				st := &states[g]
				if x := xs[r]; !st.seen || x < st.str {
					st.str = x
				}
				st.seen = true
			}
		case AggMax:
			for r, g := range groups {
				st := &states[g]
				if x := xs[r]; !st.seen || x > st.str {
					st.str = x
				}
				st.seen = true
			}
		}
	case vector.Int32:
		xs := arg.Int32s()
		switch spec.Func {
		case AggSum:
			for r, g := range groups {
				st := &states[g]
				st.i64 += int64(xs[r])
				st.seen = true
			}
		case AggMin:
			for r, g := range groups {
				st := &states[g]
				if x := int64(xs[r]); !st.seen || x < st.i64 {
					st.i64 = x
				}
				st.seen = true
			}
		case AggMax:
			for r, g := range groups {
				st := &states[g]
				if x := int64(xs[r]); !st.seen || x > st.i64 {
					st.i64 = x
				}
				st.seen = true
			}
		}
	default:
		xs := arg.Int64s()
		switch spec.Func {
		case AggSum:
			for r, g := range groups {
				st := &states[g]
				st.i64 += xs[r]
				st.seen = true
			}
		case AggMin:
			for r, g := range groups {
				st := &states[g]
				if x := xs[r]; !st.seen || x < st.i64 {
					st.i64 = x
				}
				st.seen = true
			}
		case AggMax:
			for r, g := range groups {
				st := &states[g]
				if x := xs[r]; !st.seen || x > st.i64 {
					st.i64 = x
				}
				st.seen = true
			}
		}
	}
}
