package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions. Avg is decomposed by the planner into Sum/Count for
// distributed plans but supported directly for local ones.
const (
	AggSum AggFunc = iota
	AggCount
	AggCountStar
	AggMin
	AggMax
	AggAvg
	AggCountDistinct
)

// AggSpec is one aggregate: a function over an argument expression (nil for
// COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
}

// resultKind returns the output kind of the aggregate.
func (a AggSpec) resultKind() vector.Kind {
	switch a.Func {
	case AggCount, AggCountStar, AggCountDistinct:
		return vector.Int64
	case AggAvg:
		return vector.Float64
	default:
		if a.Arg == nil {
			return vector.Int64
		}
		k := a.Arg.Kind()
		if k == vector.Int32 {
			return vector.Int64 // sums/mins widen int32
		}
		return k
	}
}

// aggState is one group's accumulator for one aggregate.
type aggState struct {
	i64      int64
	f64      float64
	str      string
	seen     bool
	count    int64
	distinct map[string]struct{}
}

// HashAggr performs hash group-by aggregation. It consumes the child fully
// on the first Next, then emits result batches: key columns followed by one
// column per aggregate. With no keys it emits exactly one global row.
type HashAggr struct {
	Child Operator
	Keys  []expr.Expr
	Aggs  []AggSpec

	groups   map[string]int
	keyVecs  []*vector.Vec
	states   [][]aggState
	emitted  int
	consumed bool
}

// Open implements Operator.
func (h *HashAggr) Open() error {
	h.groups = make(map[string]int)
	h.states = nil
	h.keyVecs = nil
	h.emitted = 0
	h.consumed = false
	return h.Child.Open()
}

// Close implements Operator.
func (h *HashAggr) Close() error { return h.Child.Close() }

// Next implements Operator.
func (h *HashAggr) Next() (*vector.Batch, error) {
	if !h.consumed {
		if err := h.consume(); err != nil {
			return nil, err
		}
		h.consumed = true
	}
	n := len(h.states)
	if h.emitted >= n {
		return nil, nil
	}
	lo := h.emitted
	hi := lo + vector.MaxSize
	if hi > n {
		hi = n
	}
	h.emitted = hi
	out := &vector.Batch{Vecs: make([]*vector.Vec, len(h.Keys)+len(h.Aggs))}
	for i := range h.Keys {
		out.Vecs[i] = h.keyVecs[i].Slice(lo, hi)
	}
	for ai, spec := range h.Aggs {
		v := vector.New(spec.resultKind(), hi-lo)
		for g := lo; g < hi; g++ {
			st := &h.states[g][ai]
			switch spec.Func {
			case AggCount, AggCountStar:
				v.AppendInt64(st.count)
			case AggCountDistinct:
				v.AppendInt64(int64(len(st.distinct)))
			case AggAvg:
				if st.count == 0 {
					v.AppendFloat64(0)
				} else {
					v.AppendFloat64(st.f64 / float64(st.count))
				}
			case AggSum, AggMin, AggMax:
				switch spec.resultKind() {
				case vector.Float64:
					v.AppendFloat64(st.f64)
				case vector.String:
					v.AppendString(st.str)
				default:
					v.AppendInt64(st.i64)
				}
			}
		}
		out.Vecs[len(h.Keys)+ai] = v
	}
	return out, nil
}

func (h *HashAggr) consume() error {
	var keyBuf []byte
	for {
		b, err := h.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		// Evaluate key and argument expressions once per batch.
		keyCols := make([]*vector.Vec, len(h.Keys))
		for i, k := range h.Keys {
			if keyCols[i], err = k.Eval(b); err != nil {
				return err
			}
		}
		argCols := make([]*vector.Vec, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Arg != nil {
				if argCols[i], err = a.Arg.Eval(b); err != nil {
					return err
				}
			}
		}
		for r := 0; r < n; r++ {
			keyBuf = keyBuf[:0]
			for _, kc := range keyCols {
				keyBuf = appendKeyValue(keyBuf, kc, r)
			}
			g, ok := h.groups[string(keyBuf)]
			if !ok {
				g = len(h.states)
				h.groups[string(keyBuf)] = g
				h.states = append(h.states, make([]aggState, len(h.Aggs)))
				if h.keyVecs == nil {
					h.keyVecs = make([]*vector.Vec, len(h.Keys))
					for i, kc := range keyCols {
						h.keyVecs[i] = vector.New(kc.Kind(), 64)
					}
				}
				for i, kc := range keyCols {
					h.keyVecs[i].AppendFrom(kc, r)
				}
			}
			for ai, spec := range h.Aggs {
				updateAgg(&h.states[g][ai], spec, argCols[ai], r)
			}
		}
	}
	// Global aggregates emit one row even for empty input.
	if len(h.Keys) == 0 && len(h.states) == 0 {
		h.states = append(h.states, make([]aggState, len(h.Aggs)))
	}
	return nil
}

func updateAgg(st *aggState, spec AggSpec, arg *vector.Vec, r int) {
	switch spec.Func {
	case AggCountStar:
		st.count++
		return
	case AggCount:
		st.count++
		return
	case AggCountDistinct:
		if st.distinct == nil {
			st.distinct = make(map[string]struct{})
		}
		st.distinct[string(appendKeyValue(nil, arg, r))] = struct{}{}
		return
	case AggAvg:
		f, _ := floatAt(arg, r)
		st.f64 += f
		st.count++
		return
	}
	switch arg.Kind() {
	case vector.Float64:
		f := arg.Float64s()[r]
		switch spec.Func {
		case AggSum:
			st.f64 += f
		case AggMin:
			if !st.seen || f < st.f64 {
				st.f64 = f
			}
		case AggMax:
			if !st.seen || f > st.f64 {
				st.f64 = f
			}
		}
	case vector.String:
		s := arg.Strings()[r]
		switch spec.Func {
		case AggMin:
			if !st.seen || s < st.str {
				st.str = s
			}
		case AggMax:
			if !st.seen || s > st.str {
				st.str = s
			}
		}
	default:
		var x int64
		if arg.Kind() == vector.Int32 {
			x = int64(arg.Int32s()[r])
		} else {
			x = arg.Int64s()[r]
		}
		switch spec.Func {
		case AggSum:
			st.i64 += x
		case AggMin:
			if !st.seen || x < st.i64 {
				st.i64 = x
			}
		case AggMax:
			if !st.seen || x > st.i64 {
				st.i64 = x
			}
		}
	}
	st.seen = true
}

func floatAt(v *vector.Vec, r int) (float64, bool) {
	switch v.Kind() {
	case vector.Float64:
		return v.Float64s()[r], true
	case vector.Int64:
		return float64(v.Int64s()[r]), true
	case vector.Int32:
		return float64(v.Int32s()[r]), true
	default:
		return 0, false
	}
}

// appendKeyValue serializes one value of a vector for group/join keying.
func appendKeyValue(dst []byte, v *vector.Vec, r int) []byte {
	switch v.Kind() {
	case vector.Int64:
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Int64s()[r]))
	case vector.Int32:
		return binary.LittleEndian.AppendUint32(dst, uint32(v.Int32s()[r]))
	case vector.Float64:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float64s()[r]))
	case vector.String:
		s := v.Strings()[r]
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case vector.Bool:
		if v.Bools()[r] {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		panic(fmt.Sprintf("exec: key of kind %v", v.Kind()))
	}
}
