package exec

import (
	"math"

	"vectorh/internal/vector"
)

// HashTable is the shared vectorized hash infrastructure behind hash joins,
// group-by aggregation and COUNT(DISTINCT). It replaces the former
// map[string] tables keyed by per-row byte serialization: keys are stored
// column-wise in typed vectors, hashes come from the vector hash kernels
// (one function shared with exchange partitioning), and probing is
// batch-at-a-time — compute all hashes, chase bucket chains with candidate
// selection vectors, and verify keys column-wise against the stored key
// vectors. No per-row serialization, no per-row map allocations.
//
// Layout: an open-addressing bucket directory with a power-of-two size maps
// hash bits to the first stored row of its bucket; rows sharing a bucket are
// chained through next[] in insertion order. Hash collisions and genuine
// key duplicates share a chain — the stored per-row hash is a cheap
// pre-filter and the column-wise verify separates them. Row ids are stable
// (insertion order), so they double as group ids for aggregation and build
// row ids for joins.
type HashTable struct {
	pool *vector.Pool

	keys    []*vector.Vec // stored key columns; row id = position
	hashes  []uint64      // per-row hash (pre-filter + directory rebuild)
	next    []int32       // bucket chain link per row; -1 ends a chain
	buckets []int32       // 1-based head row per bucket; 0 = empty
	tails   []int32       // last row per bucket, keeps chains in insertion order
	mask    uint64

	singleI64 bool // exactly one Int64 key: skip the generic verify dispatch
}

// minBuckets is the initial directory size (power of two).
const minBuckets = 64

// NewHashTable returns an empty table for keys of the given kinds. A nil
// pool allocates a private one; passing the operator's pool shares scratch
// buffers between the table and its owner.
func NewHashTable(kinds []vector.Kind, pool *vector.Pool) *HashTable {
	if pool == nil {
		pool = &vector.Pool{}
	}
	t := &HashTable{
		pool:      pool,
		singleI64: len(kinds) == 1 && kinds[0] == vector.Int64,
		buckets:   make([]int32, minBuckets),
		tails:     make([]int32, minBuckets),
		mask:      minBuckets - 1,
	}
	t.keys = make([]*vector.Vec, len(kinds))
	for i, k := range kinds {
		t.keys[i] = vector.New(k, vector.MaxSize)
	}
	return t
}

// Len returns the number of stored rows (groups / build rows).
func (t *HashTable) Len() int { return len(t.hashes) }

// Keys exposes the stored key columns; aggregation emits its group-by keys
// from them directly instead of keeping a second copy.
func (t *HashTable) Keys() []*vector.Vec { return t.keys }

// reserve grows the bucket directory so n rows stay under a 3/4 load factor,
// rebuilding the chains (in insertion order) from the stored hashes.
func (t *HashTable) reserve(n int) {
	nb := len(t.buckets)
	for n >= nb*3/4 {
		nb <<= 1
	}
	if nb == len(t.buckets) {
		return
	}
	t.buckets = make([]int32, nb)
	t.tails = make([]int32, nb)
	t.mask = uint64(nb - 1)
	for r := range t.hashes {
		t.next[r] = -1
		t.link(t.hashes[r]&t.mask, int32(r))
	}
}

// link appends stored row r at the tail of its bucket chain.
func (t *HashTable) link(b uint64, r int32) {
	if t.buckets[b] == 0 {
		t.buckets[b] = r + 1
	} else {
		t.next[t.tails[b]] = r
	}
	t.tails[b] = r
}

// insertRow stores row r of keyCols under hash h and returns its id.
func (t *HashTable) insertRow(h uint64, keyCols []*vector.Vec, r int) int32 {
	id := int32(len(t.hashes))
	t.hashes = append(t.hashes, h)
	t.next = append(t.next, -1)
	for i, kc := range keyCols {
		t.keys[i].AppendFrom(kc, r)
	}
	t.link(h&t.mask, id)
	return id
}

// InsertBatch stores all n rows of the dense key columns unconditionally
// (join build side: duplicates become separate rows). Key values are
// bulk-appended column-wise; only the chain linking is per-row.
func (t *HashTable) InsertBatch(keyCols []*vector.Vec, n int) {
	base := len(t.hashes)
	t.reserve(base + n)
	hs := t.pool.GetHashes(n)
	vector.HashCols(hs, keyCols)
	for i, kc := range keyCols {
		t.keys[i].AppendRange(kc, 0, n)
	}
	t.hashes = append(t.hashes, hs...)
	for r := 0; r < n; r++ {
		t.next = append(t.next, -1)
	}
	for r := 0; r < n; r++ {
		t.link(t.hashes[base+r]&t.mask, int32(base+r))
	}
	t.pool.PutHashes(hs)
}

// keysMatchKinds reports whether the probe key columns carry the stored key
// kinds. A kind-skewed equi-join (say int32 = int64) is legal SQL here; its
// keys can never compare equal — the former serialized keys produced zero
// matches — so probes must short-circuit instead of reaching the typed
// compare loops.
func (t *HashTable) keysMatchKinds(keyCols []*vector.Vec) bool {
	for c, kc := range keyCols {
		if kc.Kind() != t.keys[c].Kind() {
			return false
		}
	}
	return true
}

// verify computes, for each active position j (probe row sel[j] against
// stored candidate cand[sel[j]]), whether the hash and every key column
// match. It runs column-wise: one kind dispatch per column, then a tight
// compare loop over the active selection.
func (t *HashTable) verify(keyCols []*vector.Vec, hs []uint64, sel, cand []int32, match []bool) {
	for j, r := range sel {
		match[j] = hs[r] == t.hashes[cand[r]]
	}
	if t.singleI64 {
		pv, bv := keyCols[0].Int64s(), t.keys[0].Int64s()
		for j, r := range sel {
			if match[j] && pv[r] != bv[cand[r]] {
				match[j] = false
			}
		}
		return
	}
	for c, kc := range keyCols {
		switch kc.Kind() {
		case vector.Int64:
			pv, bv := kc.Int64s(), t.keys[c].Int64s()
			for j, r := range sel {
				if match[j] && pv[r] != bv[cand[r]] {
					match[j] = false
				}
			}
		case vector.Int32:
			pv, bv := kc.Int32s(), t.keys[c].Int32s()
			for j, r := range sel {
				if match[j] && pv[r] != bv[cand[r]] {
					match[j] = false
				}
			}
		case vector.Float64:
			// Bitwise comparison, matching the hash: NaN keys equal
			// themselves and -0.0 stays distinct from +0.0, exactly like
			// the former byte-serialized keys.
			pv, bv := kc.Float64s(), t.keys[c].Float64s()
			for j, r := range sel {
				if match[j] && math.Float64bits(pv[r]) != math.Float64bits(bv[cand[r]]) {
					match[j] = false
				}
			}
		case vector.String:
			// Stored keys are always value-space; the probe side may carry
			// dictionary codes, verified through the dictionary without
			// materializing the probe vector (the hash kernels guarantee
			// code-form and value-form hashes agree).
			bv := t.keys[c].Strings()
			if kc.IsDict() {
				codes, vals := kc.DictCodes(), kc.Dict().Values
				for j, r := range sel {
					if match[j] && vals[codes[r]] != bv[cand[r]] {
						match[j] = false
					}
				}
				continue
			}
			pv := kc.Strings()
			for j, r := range sel {
				if match[j] && pv[r] != bv[cand[r]] {
					match[j] = false
				}
			}
		case vector.Bool:
			pv, bv := kc.Bools(), t.keys[c].Bools()
			for j, r := range sel {
				if match[j] && pv[r] != bv[cand[r]] {
					match[j] = false
				}
			}
		}
	}
}

// rowEq reports whether probe row r of keyCols equals stored row id
// (scalar path for inserts).
func (t *HashTable) rowEq(keyCols []*vector.Vec, r int, id int32) bool {
	for c, kc := range keyCols {
		switch kc.Kind() {
		case vector.Int64:
			if kc.Int64s()[r] != t.keys[c].Int64s()[id] {
				return false
			}
		case vector.Int32:
			if kc.Int32s()[r] != t.keys[c].Int32s()[id] {
				return false
			}
		case vector.Float64:
			if math.Float64bits(kc.Float64s()[r]) != math.Float64bits(t.keys[c].Float64s()[id]) {
				return false
			}
		case vector.String:
			// StrAt reads through a probe-side dictionary without
			// materializing; stored keys are value-space.
			if kc.StrAt(r) != t.keys[c].Strings()[id] {
				return false
			}
		case vector.Bool:
			if kc.Bools()[r] != t.keys[c].Bools()[id] {
				return false
			}
		}
	}
	return true
}

// findScalar walks row r's chain and returns the id of its key, or -1.
func (t *HashTable) findScalar(h uint64, keyCols []*vector.Vec, r int) int32 {
	for id := t.buckets[h&t.mask] - 1; id >= 0; id = t.next[id] {
		if t.hashes[id] == h && t.rowEq(keyCols, r, id) {
			return id
		}
	}
	return -1
}

// FindOrInsert maps every one of the n rows of keyCols to the stable id of
// its key, inserting unseen keys (group-by: out[r] is row r's group id).
// out must have length n, and keyCols must carry the table's key kinds —
// unlike probes, inserts come from the same expressions that declared the
// table, so a mismatch is a programming error. The probe phase is batch-at-a-time; only the
// first occurrence of each genuinely new key takes the scalar insert path.
func (t *HashTable) FindOrInsert(keyCols []*vector.Vec, n int, out []int32) {
	t.reserve(t.Len() + n) // worst case all-new: chains stay valid below
	hs := t.pool.GetHashes(n)
	vector.HashCols(hs, keyCols)

	cand := t.pool.GetSel(n)[:n]
	sel := t.pool.GetSel(n)
	for r := 0; r < n; r++ {
		out[r] = -1
		cand[r] = t.buckets[hs[r]&t.mask] - 1
		if cand[r] >= 0 {
			sel = append(sel, int32(r))
		}
	}
	match := t.pool.GetBools(n)
	for len(sel) > 0 {
		t.verify(keyCols, hs, sel, cand, match)
		live := sel[:0]
		for j, r := range sel {
			if match[j] {
				out[r] = cand[r]
			} else if nx := t.next[cand[r]]; nx >= 0 {
				cand[r] = nx
				live = append(live, r)
			}
		}
		sel = live
	}
	// Unresolved rows hold keys the table did not contain before this batch;
	// insert sequentially, re-probing so duplicates within the batch share
	// one id.
	for r := 0; r < n; r++ {
		if out[r] >= 0 {
			continue
		}
		if g := t.findScalar(hs[r], keyCols, r); g >= 0 {
			out[r] = g
		} else {
			out[r] = t.insertRow(hs[r], keyCols, r)
		}
	}
	t.pool.PutBools(match)
	t.pool.PutSel(cand, sel)
	t.pool.PutHashes(hs)
}

// ProbeJoin finds all matching stored rows for each of the n probe rows and
// fills ps/bs with (probe row, stored row) index pairs, grouped by probe row
// in ascending order with matches in insertion order — the emission order of
// the former row-at-a-time implementation. When outer is true, probe rows
// without a match contribute one (row, -1) pair (left outer padding). ps and
// bs must be empty; the grown slices are returned.
func (t *HashTable) ProbeJoin(keyCols []*vector.Vec, n int, ps, bs []int32, outer bool) ([]int32, []int32) {
	if t.Len() == 0 || !t.keysMatchKinds(keyCols) {
		if !outer {
			return ps, bs
		}
		ps, bs = growSel(ps, n), growSel(bs, n)
		for r := 0; r < n; r++ {
			ps[r], bs[r] = int32(r), -1
		}
		return ps, bs
	}
	hs := t.pool.GetHashes(n)
	vector.HashCols(hs, keyCols)
	cand := t.pool.GetSel(n)[:n]
	sel := t.pool.GetSel(n)
	counts := t.pool.GetSel(n)[:n]
	for r := 0; r < n; r++ {
		counts[r] = 0
		cand[r] = t.buckets[hs[r]&t.mask] - 1
		if cand[r] >= 0 {
			sel = append(sel, int32(r))
		}
	}
	// Chase every chain to its end, collecting raw pairs round-wise: round k
	// emits each still-active row's k-th chain position if it matches.
	rawP := t.pool.GetSel(n)
	rawB := t.pool.GetSel(n)
	match := t.pool.GetBools(n)
	for len(sel) > 0 {
		t.verify(keyCols, hs, sel, cand, match)
		live := sel[:0]
		for j, r := range sel {
			if match[j] {
				rawP = append(rawP, r)
				rawB = append(rawB, cand[r])
				counts[r]++
			}
			if nx := t.next[cand[r]]; nx >= 0 {
				cand[r] = nx
				live = append(live, r)
			}
		}
		sel = live
	}
	// Scatter the round-ordered pairs into probe-row order via a counting
	// sort: off[r] is row r's first output slot and advances as it fills, so
	// within a row the chain (insertion) order is preserved.
	total := len(rawP)
	if outer {
		for r := 0; r < n; r++ {
			if counts[r] == 0 {
				total++
			}
		}
	}
	ps, bs = growSel(ps, total), growSel(bs, total)
	off := cand // reuse: candidate cursor is spent
	sum := int32(0)
	for r := 0; r < n; r++ {
		c := counts[r]
		if outer && c == 0 {
			c = 1
		}
		off[r] = sum
		sum += c
	}
	if outer {
		for r := 0; r < n; r++ {
			if counts[r] == 0 {
				ps[off[r]], bs[off[r]] = int32(r), -1
			}
		}
	}
	for i, r := range rawP {
		o := off[r]
		off[r] = o + 1
		ps[o], bs[o] = r, rawB[i]
	}
	t.pool.PutBools(match)
	t.pool.PutSel(sel, counts, rawP, rawB, off)
	t.pool.PutHashes(hs)
	return ps, bs
}

// ProbeExists appends to sel, in row order, the probe rows that do
// (want=true: semi join) or do not (want=false: anti join) have a matching
// stored row; chains stop chasing at the first match.
func (t *HashTable) ProbeExists(keyCols []*vector.Vec, n int, want bool, sel []int32) []int32 {
	if t.Len() == 0 || !t.keysMatchKinds(keyCols) {
		if !want {
			for r := 0; r < n; r++ {
				sel = append(sel, int32(r))
			}
		}
		return sel
	}
	hs := t.pool.GetHashes(n)
	vector.HashCols(hs, keyCols)
	cand := t.pool.GetSel(n)[:n]
	active := t.pool.GetSel(n)
	for r := 0; r < n; r++ {
		cand[r] = t.buckets[hs[r]&t.mask] - 1
		if cand[r] >= 0 {
			active = append(active, int32(r))
		}
	}
	found := t.pool.GetBools(n)
	match := t.pool.GetBools(n)
	for len(active) > 0 {
		t.verify(keyCols, hs, active, cand, match)
		live := active[:0]
		for j, r := range active {
			if match[j] {
				found[r] = true
			} else if nx := t.next[cand[r]]; nx >= 0 {
				cand[r] = nx
				live = append(live, r)
			}
		}
		active = live
	}
	for r := 0; r < n; r++ {
		if found[r] == want {
			sel = append(sel, int32(r))
		}
	}
	t.pool.PutBools(found)
	t.pool.PutBools(match)
	t.pool.PutSel(cand, active)
	t.pool.PutHashes(hs)
	return sel
}

// growSel resizes a pooled int32 buffer to length n, reallocating only when
// capacity is exceeded.
func growSel(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
