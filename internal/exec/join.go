package exec

import (
	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// JoinType enumerates the supported join semantics. The probe side is always
// preserved for LeftOuter; Semi and Anti emit probe rows only.
type JoinType uint8

// Join types.
const (
	Inner JoinType = iota
	LeftOuter
	Semi
	Anti
)

// HashJoin builds a hash table on the build child and streams the probe
// child through it. Output columns are the probe columns followed by the
// build columns (Inner/LeftOuter); LeftOuter appends a trailing Bool
// "matched" column and pads unmatched build columns with zero values (the
// engine has no NULLs; aggregation over outer joins tests the matched flag,
// which is how Q13 counts empty groups).
type HashJoin struct {
	Build     Operator
	Probe     Operator
	BuildKeys []expr.Expr
	ProbeKeys []expr.Expr
	Type      JoinType

	built     bool
	table     *HashTable
	buildCols []*vector.Vec
	keyCols   []*vector.Vec // per-batch evaluated key columns (reused)
	pool      vector.Pool
}

// Open implements Operator.
func (j *HashJoin) Open() error {
	j.built = false
	j.table = nil
	j.buildCols = nil
	j.keyCols = nil
	if err := j.Build.Open(); err != nil {
		return err
	}
	return j.Probe.Open()
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	err1 := j.Build.Close()
	err2 := j.Probe.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *HashJoin) buildTable() error {
	kinds := make([]vector.Kind, len(j.BuildKeys))
	for i, k := range j.BuildKeys {
		kinds[i] = k.Kind()
	}
	j.table = NewHashTable(kinds, &j.pool)
	keyCols := make([]*vector.Vec, len(j.BuildKeys))
	for {
		b, err := j.Build.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		if j.buildCols == nil {
			j.buildCols = make([]*vector.Vec, len(b.Vecs))
			for i, v := range b.Vecs {
				j.buildCols[i] = vector.New(v.Kind(), n)
			}
		}
		for i, k := range j.BuildKeys {
			if keyCols[i], err = k.Eval(b); err != nil {
				return err
			}
		}
		j.table.InsertBatch(keyCols, n)
		// Append the build columns in the same live-row order the key
		// columns were hashed in, so table row ids index buildCols.
		for i, v := range b.Vecs {
			if b.Sel != nil {
				j.buildCols[i].AppendGather(v, b.Sel)
			} else {
				j.buildCols[i].AppendRange(v, 0, n)
			}
		}
	}
}

// Next implements Operator.
func (j *HashJoin) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, err
		}
		j.built = true
	}
	if j.keyCols == nil {
		j.keyCols = make([]*vector.Vec, len(j.ProbeKeys))
	}
	for {
		b, err := j.Probe.Next()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		for i, k := range j.ProbeKeys {
			if j.keyCols[i], err = k.Eval(b); err != nil {
				return nil, err
			}
		}
		switch j.Type {
		case Semi, Anti:
			sel := j.table.ProbeExists(j.keyCols, n, j.Type == Semi, j.pool.GetSel(n))
			if len(sel) == 0 {
				j.pool.PutSel(sel)
				continue
			}
			// The output shares the probe vectors under a fresh selection
			// (mapped to physical positions); it is handed downstream, so
			// it must not come from the pool.
			outSel := make([]int32, len(sel))
			if b.Sel != nil {
				for i, r := range sel {
					outSel[i] = b.Sel[r]
				}
			} else {
				copy(outSel, sel)
			}
			j.pool.PutSel(sel)
			return &vector.Batch{Vecs: b.Vecs, Sel: outSel}, nil
		}
		// Inner / LeftOuter: batched probe emitting (probe, build) pairs.
		ps, bs := j.table.ProbeJoin(j.keyCols, n,
			j.pool.GetSel(n), j.pool.GetSel(n), j.Type == LeftOuter)
		if len(ps) == 0 {
			j.pool.PutSel(ps, bs)
			continue
		}
		// Resolve probe pair indices to physical row positions for gathering.
		phys := ps
		if b.Sel != nil {
			phys = j.pool.GetSel(len(ps))[:len(ps)]
			for i, r := range ps {
				phys[i] = b.Sel[r]
			}
		}
		out := &vector.Batch{Vecs: make([]*vector.Vec, 0, len(b.Vecs)+len(j.buildCols)+1)}
		for _, v := range b.Vecs {
			out.Vecs = append(out.Vecs, v.Gather(phys, len(phys)))
		}
		for _, bv := range j.buildCols {
			g := vector.New(bv.Kind(), len(bs))
			g.AppendGather(bv, bs) // negative ids pad with zero values
			out.Vecs = append(out.Vecs, g)
		}
		if j.Type == LeftOuter {
			m := vector.New(vector.Bool, len(bs))
			for _, br := range bs {
				m.AppendBool(br >= 0)
			}
			out.Vecs = append(out.Vecs, m)
		}
		if b.Sel != nil {
			j.pool.PutSel(phys)
		}
		j.pool.PutSel(ps, bs)
		return out, nil
	}
}

// NumBuildCols reports the build side's column count after the build phase;
// planners use the static schema instead, this is a testing aid.
func (j *HashJoin) NumBuildCols() int { return len(j.buildCols) }

// MergeJoin joins two inputs ordered on an int64 key, where the right
// (referenced) side has unique keys — the co-ordered clustered-index case
// of §2 (lineitem⋈orders, partsupp⋈part) that needs no hash table and no
// network when partitions are co-located. Output: left columns then right
// columns.
type MergeJoin struct {
	Left     Operator
	Right    Operator
	LeftKey  int // column index of the left join key
	RightKey int // column index of the right join key

	lb, rb *vector.Batch
	lpos   int
	rpos   int
	ldone  bool
	rdone  bool

	// Equal-key runs on the right side make the join many-to-many: the run
	// of right rows sharing runKey is buffered in run so every left row with
	// that key replays it, even when the run spans right batch boundaries.
	run      *vector.Batch
	runKey   int64
	runValid bool
	runPos   int // resume point when an output batch fills mid-run
}

// Open implements Operator.
func (m *MergeJoin) Open() error {
	m.lb, m.rb = nil, nil
	m.lpos, m.rpos = 0, 0
	m.ldone, m.rdone = false, false
	m.run, m.runValid, m.runPos = nil, false, 0
	if err := m.Left.Open(); err != nil {
		return err
	}
	return m.Right.Open()
}

// Close implements Operator.
func (m *MergeJoin) Close() error {
	err1 := m.Left.Close()
	err2 := m.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (m *MergeJoin) fillLeft() error {
	for !m.ldone && (m.lb == nil || m.lpos >= m.lb.Len()) {
		b, err := m.Left.Next()
		if err != nil {
			return err
		}
		if b == nil {
			m.ldone = true
			m.lb = nil
			return nil
		}
		m.lb, m.lpos = b.Compact(), 0
	}
	return nil
}

func (m *MergeJoin) fillRight() error {
	for !m.rdone && (m.rb == nil || m.rpos >= m.rb.Len()) {
		b, err := m.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			m.rdone = true
			m.rb = nil
			return nil
		}
		m.rb, m.rpos = b.Compact(), 0
	}
	return nil
}

func int64At(v *vector.Vec, i int) int64 {
	if v.Kind() == vector.Int32 {
		return int64(v.Int32s()[i])
	}
	return v.Int64s()[i]
}

// Next implements Operator.
func (m *MergeJoin) Next() (*vector.Batch, error) {
	var out *vector.Batch
	emitted := 0
	for emitted < vector.MaxSize {
		if err := m.fillLeft(); err != nil {
			return nil, err
		}
		if m.lb == nil {
			break
		}
		lk := int64At(m.lb.Col(m.LeftKey), m.lpos)
		// Replay the buffered run for every left row sharing its key; this
		// also drains left duplicates after the right side is exhausted.
		if m.runValid && lk == m.runKey {
			if out == nil {
				out = &vector.Batch{}
				for _, v := range m.lb.Vecs {
					out.Vecs = append(out.Vecs, vector.New(v.Kind(), vector.MaxSize))
				}
				for _, v := range m.run.Vecs {
					out.Vecs = append(out.Vecs, vector.New(v.Kind(), vector.MaxSize))
				}
			}
			nl := len(m.lb.Vecs)
			for m.runPos < m.run.Len() && emitted < vector.MaxSize {
				for i, v := range m.lb.Vecs {
					out.Vecs[i].AppendFrom(v, m.lpos)
				}
				for i, v := range m.run.Vecs {
					out.Vecs[nl+i].AppendFrom(v, m.runPos)
				}
				m.runPos++
				emitted++
			}
			if m.runPos < m.run.Len() {
				break // output full mid-run; resume this left row next call
			}
			m.runPos = 0
			m.lpos++
			continue
		}
		if err := m.fillRight(); err != nil {
			return nil, err
		}
		if m.rb == nil {
			break
		}
		rk := int64At(m.rb.Col(m.RightKey), m.rpos)
		switch {
		case lk < rk:
			m.lpos++
		case lk > rk:
			m.rpos++
		default:
			// New run: buffer every right row with this key (the run may
			// cross right batch boundaries), then loop to replay it.
			if m.run == nil {
				m.run = &vector.Batch{}
				for _, v := range m.rb.Vecs {
					m.run.Vecs = append(m.run.Vecs, vector.New(v.Kind(), 0))
				}
			} else {
				for _, v := range m.run.Vecs {
					v.Reset()
				}
			}
			m.runKey, m.runValid, m.runPos = rk, true, 0
			for {
				for i, v := range m.rb.Vecs {
					m.run.Vecs[i].AppendFrom(v, m.rpos)
				}
				m.rpos++
				if err := m.fillRight(); err != nil {
					return nil, err
				}
				if m.rb == nil || int64At(m.rb.Col(m.RightKey), m.rpos) != rk {
					break
				}
			}
		}
	}
	if out == nil || out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}
