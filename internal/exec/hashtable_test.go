package exec

import (
	"math"
	"testing"

	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// collidingKeys returns n distinct int64 keys that all land in the same
// bucket of a directory with the given mask — adversarial input that turns
// every lookup into a chain walk.
func collidingKeys(n int, mask uint64) []int64 {
	target := vector.HashInt64(0) & mask
	keys := make([]int64, 0, n)
	for k := int64(1); len(keys) < n; k++ {
		if vector.HashInt64(k)&mask == target {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestHashTableAdversarialCollisions(t *testing.T) {
	// 40 distinct keys in one bucket of the initial 64-slot directory: under
	// the 3/4 load limit, so everything stays chained in a single bucket.
	keys := collidingKeys(40, minBuckets-1)
	kc := []*vector.Vec{vector.FromInt64(keys)}
	ht := NewHashTable([]vector.Kind{vector.Int64}, nil)
	ids := make([]int32, len(keys))
	ht.FindOrInsert(kc, len(keys), ids)
	seen := map[int32]bool{}
	for i, id := range ids {
		if id != int32(i) {
			t.Fatalf("insertion ids not sequential: ids[%d]=%d", i, id)
		}
		seen[id] = true
	}
	if len(seen) != len(keys) {
		t.Fatalf("colliding keys merged: %d ids for %d keys", len(seen), len(keys))
	}
	// Re-probing returns the same stable ids.
	again := make([]int32, len(keys))
	ht.FindOrInsert(kc, len(keys), again)
	for i := range again {
		if again[i] != ids[i] {
			t.Fatalf("id for key %d changed: %d -> %d", keys[i], ids[i], again[i])
		}
	}
	// Force a directory rebuild and verify chains survive the rehash.
	more := make([]int64, 200)
	for i := range more {
		more[i] = int64(1_000_000 + i)
	}
	ht.FindOrInsert([]*vector.Vec{vector.FromInt64(more)}, len(more), make([]int32, len(more)))
	ht.FindOrInsert(kc, len(keys), again)
	for i := range again {
		if again[i] != ids[i] {
			t.Fatalf("after grow, id for key %d changed: %d -> %d", keys[i], ids[i], again[i])
		}
	}
}

func TestHashTableDuplicateHeavyBuild(t *testing.T) {
	// 3000 build rows over only 3 distinct keys, then probe each key once:
	// ProbeJoin must emit every duplicate, grouped by probe row in build
	// insertion order.
	n := 3000
	build := make([]int64, n)
	for i := range build {
		build[i] = int64(i % 3)
	}
	ht := NewHashTable([]vector.Kind{vector.Int64}, nil)
	ht.InsertBatch([]*vector.Vec{vector.FromInt64(build)}, n)
	probe := []*vector.Vec{vector.FromInt64([]int64{0, 1, 2, 99})}
	ps, bs := ht.ProbeJoin(probe, 4, nil, nil, false)
	if len(ps) != n {
		t.Fatalf("pairs = %d, want %d", len(ps), n)
	}
	lastProbe, lastBuild := int32(-1), int32(-1)
	for i := range ps {
		if ps[i] < lastProbe {
			t.Fatalf("pairs not grouped by probe row at %d: %v", i, ps[:i+1])
		}
		if ps[i] != lastProbe {
			lastBuild = -1
		}
		if bs[i] <= lastBuild {
			t.Fatalf("matches for probe row %d not in insertion order", ps[i])
		}
		if build[bs[i]] != []int64{0, 1, 2, 99}[ps[i]] {
			t.Fatalf("pair (%d,%d) joins key %d with %d", ps[i], bs[i], ps[i], build[bs[i]])
		}
		lastProbe, lastBuild = ps[i], bs[i]
	}
}

func TestHashTableEmptyBuildAndProbe(t *testing.T) {
	ht := NewHashTable([]vector.Kind{vector.Int64}, nil)
	probe := []*vector.Vec{vector.FromInt64([]int64{1, 2})}
	if ps, _ := ht.ProbeJoin(probe, 2, nil, nil, false); len(ps) != 0 {
		t.Fatalf("inner probe of empty table: %v", ps)
	}
	ps, bs := ht.ProbeJoin(probe, 2, nil, nil, true)
	if len(ps) != 2 || bs[0] != -1 || bs[1] != -1 {
		t.Fatalf("outer probe of empty table: ps=%v bs=%v", ps, bs)
	}
	if sel := ht.ProbeExists(probe, 2, true, nil); len(sel) != 0 {
		t.Fatalf("semi on empty table: %v", sel)
	}
	if sel := ht.ProbeExists(probe, 2, false, nil); len(sel) != 2 {
		t.Fatalf("anti on empty table: %v", sel)
	}
	// Empty probe batches are no-ops.
	ht.InsertBatch([]*vector.Vec{vector.FromInt64(nil)}, 0)
	if ht.Len() != 0 {
		t.Fatalf("empty insert grew table to %d", ht.Len())
	}
}

func TestHashTableMultiColumnNearMisses(t *testing.T) {
	ht := NewHashTable([]vector.Kind{vector.String, vector.Int32}, nil)
	bk := []*vector.Vec{
		vector.FromString([]string{"a", "a", "b"}),
		vector.FromInt32([]int32{1, 2, 1}),
	}
	ht.InsertBatch(bk, 3)
	pk := []*vector.Vec{
		vector.FromString([]string{"a", "a", "b", "b"}),
		vector.FromInt32([]int32{1, 2, 1, 2}),
	}
	ps, bs := ht.ProbeJoin(pk, 4, nil, nil, false)
	if len(ps) != 3 {
		t.Fatalf("near-miss probe pairs = %v/%v", ps, bs)
	}
	want := map[int32]int32{0: 0, 1: 1, 2: 2}
	for i := range ps {
		if want[ps[i]] != bs[i] {
			t.Fatalf("pair %d = (%d,%d)", i, ps[i], bs[i])
		}
	}
}

func TestHashJoinKindMismatchNoMatch(t *testing.T) {
	// A kind-skewed equi-join (int32 probe key against an int64 build key)
	// is legal; like the former serialized keys it must match nothing —
	// and not panic in the typed compare loops.
	build := vector.NewBatch(vector.FromInt64([]int64{1, 2}))
	probeRows := []int32{1, 2, 3}
	mk := func(jt JoinType) *HashJoin {
		return &HashJoin{
			Build:     &BatchSource{Batches: []*vector.Batch{build}},
			Probe:     &BatchSource{Batches: []*vector.Batch{vector.NewBatch(vector.FromInt32(probeRows))}},
			BuildKeys: []expr.Expr{expr.Col(0, vector.Int64)},
			ProbeKeys: []expr.Expr{expr.Col(0, vector.Int32)},
			Type:      jt,
		}
	}
	for jt, wantRows := range map[JoinType]int{Inner: 0, Semi: 0, Anti: 3, LeftOuter: 3} {
		rows, err := Collect(mk(jt))
		if err != nil || len(rows) != wantRows {
			t.Fatalf("type %d: rows=%v err=%v, want %d rows", jt, rows, err, wantRows)
		}
		if jt == LeftOuter {
			for _, r := range rows {
				if r[len(r)-1].(bool) {
					t.Fatalf("left outer row matched across kinds: %v", r)
				}
			}
		}
	}
}

func TestHashTableFloatBitwiseKeys(t *testing.T) {
	// Float keys hash and compare by bit pattern, like the former
	// byte-serialized keys: NaN equals itself (one group), -0.0 and +0.0
	// stay distinct.
	nan := math.NaN()
	vals := []float64{nan, nan, 0.0, math.Copysign(0, -1), 1.5}
	ht := NewHashTable([]vector.Kind{vector.Float64}, nil)
	ids := make([]int32, len(vals))
	ht.FindOrInsert([]*vector.Vec{vector.FromFloat64(vals)}, len(vals), ids)
	if ids[0] != ids[1] {
		t.Fatalf("NaN keys split into groups %d and %d", ids[0], ids[1])
	}
	if ids[2] == ids[3] {
		t.Fatalf("+0.0 and -0.0 merged into group %d", ids[2])
	}
	if ht.Len() != 4 {
		t.Fatalf("groups = %d, want 4", ht.Len())
	}
	// Probing again (vectorized path and chain walk) agrees.
	again := make([]int32, len(vals))
	ht.FindOrInsert([]*vector.Vec{vector.FromFloat64(vals)}, len(vals), again)
	for i := range again {
		if again[i] != ids[i] {
			t.Fatalf("float id %d changed: %d -> %d", i, ids[i], again[i])
		}
	}
}

func TestHashAggrAvgEmptyInput(t *testing.T) {
	// AVG over zero rows: the engine has no NULLs; the global empty group
	// is defined to emit 0 (not NaN). This is load-bearing for Q13-style
	// outer-join aggregations and asserted here explicitly.
	op := &HashAggr{Child: &BatchSource{}, Aggs: []AggSpec{
		{Func: AggAvg, Arg: expr.Col(0, vector.Float64)},
		{Func: AggCountStar},
	}}
	rows, err := Collect(op)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if rows[0][0].(float64) != 0 || rows[0][1].(int64) != 0 {
		t.Fatalf("empty AVG row = %v, want [0 0]", rows[0])
	}
}

func TestHashAggrDistinctStateLazy(t *testing.T) {
	b := vector.NewBatch(
		vector.FromInt64([]int64{1, 1, 2}),
		vector.FromInt64([]int64{5, 5, 7}),
	)
	op := &HashAggr{
		Child: &BatchSource{Batches: []*vector.Batch{b}},
		Keys:  []expr.Expr{expr.Col(0, vector.Int64)},
		Aggs: []AggSpec{
			{Func: AggSum, Arg: expr.Col(1, vector.Int64)},
			{Func: AggCountDistinct, Arg: expr.Col(1, vector.Int64)},
		},
	}
	if _, err := Collect(op); err != nil {
		t.Fatal(err)
	}
	if op.distinct[0] != nil {
		t.Fatal("SUM spec allocated distinct state")
	}
	if op.distinct[1] == nil {
		t.Fatal("COUNT(DISTINCT) spec did not allocate its dedup table")
	}
}

func TestHashAggrDistinctAcrossBatches(t *testing.T) {
	// The same (group, value) pair arriving in different batches must count
	// once; new values keep counting.
	b1 := vector.NewBatch(vector.FromInt64([]int64{1, 1}), vector.FromString([]string{"a", "b"}))
	b2 := vector.NewBatch(vector.FromInt64([]int64{1, 2}), vector.FromString([]string{"a", "a"}))
	op := &HashAggr{
		Child: &BatchSource{Batches: []*vector.Batch{b1, b2}},
		Keys:  []expr.Expr{expr.Col(0, vector.Int64)},
		Aggs:  []AggSpec{{Func: AggCountDistinct, Arg: expr.Col(1, vector.String)}},
	}
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range rows {
		got[r[0].(int64)] = r[1].(int64)
	}
	if got[1] != 2 || got[2] != 1 {
		t.Fatalf("distinct counts = %v", got)
	}
}

func TestHashJoinSelectiveProbeBatches(t *testing.T) {
	// Probe batches carrying selection vectors must join only live rows and
	// emit their physical values.
	build := vector.NewBatch(
		vector.FromInt64([]int64{1, 2}),
		vector.FromString([]string{"one", "two"}),
	)
	probe := &vector.Batch{
		Vecs: []*vector.Vec{vector.FromInt64([]int64{9, 2, 9, 1})},
		Sel:  []int32{1, 3},
	}
	j := &HashJoin{
		Build:     &BatchSource{Batches: []*vector.Batch{build}},
		Probe:     &BatchSource{Batches: []*vector.Batch{probe}},
		BuildKeys: []expr.Expr{expr.Col(0, vector.Int64)},
		ProbeKeys: []expr.Expr{expr.Col(0, vector.Int64)},
		Type:      Inner,
	}
	rows, err := Collect(j)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if rows[0][2].(string) != "two" || rows[1][2].(string) != "one" {
		t.Fatalf("rows = %v", rows)
	}
}
