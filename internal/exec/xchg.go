package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// The local Xchg operator family (§5, after Graefe's Volcano): an Xchg never
// modifies data, it only redistributes streams between producer and consumer
// threads, encapsulating parallelism so all other operators stay
// parallelism-unaware. Producers run in goroutines started at Open.
//
// Every exchange carries the query's context: producers check it once per
// batch, so a cancelled or timed-out query stops its producer goroutines
// promptly instead of letting them drain their inputs into dead channels.

// item is one unit on an exchange channel.
type item struct {
	b   *vector.Batch
	err error
}

// xchgCore runs producers and fans their output to consumer channels using
// a routing function.
type xchgCore struct {
	ctx       context.Context
	producers []Operator
	outs      []chan item
	route     func(b *vector.Batch, outs []chan item, quit <-chan struct{}) error
	quit      chan struct{}
	openPorts atomic.Int32
	startOnce sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup
}

func newXchgCore(ctx context.Context, producers []Operator, consumers int,
	route func(b *vector.Batch, outs []chan item, quit <-chan struct{}) error) *xchgCore {
	if ctx == nil {
		ctx = context.Background()
	}
	x := &xchgCore{ctx: ctx, producers: producers, route: route, quit: make(chan struct{})}
	x.openPorts.Store(int32(consumers))
	x.outs = make([]chan item, consumers)
	for i := range x.outs {
		x.outs[i] = make(chan item, 4)
	}
	return x
}

func (x *xchgCore) start() {
	x.startOnce.Do(func() {
		if done := x.ctx.Done(); done != nil {
			// Tie the exchange lifetime to the query context: cancellation
			// releases producers blocked on full consumer channels even if
			// no consumer ever calls Close.
			go func() {
				select {
				case <-done:
					x.stop()
				case <-x.quit:
				}
			}()
		}
		x.wg.Add(len(x.producers))
		for _, p := range x.producers {
			go func(p Operator) {
				defer x.wg.Done()
				if err := p.Open(); err != nil {
					x.fanErr(err)
					return
				}
				defer p.Close()
				for {
					if err := x.ctx.Err(); err != nil {
						x.fanErr(fmt.Errorf("exec: exchange producer canceled: %w", context.Cause(x.ctx)))
						return
					}
					b, err := p.Next()
					if err != nil {
						x.fanErr(err)
						return
					}
					if b == nil {
						return
					}
					if err := x.route(b, x.outs, x.quit); err != nil {
						return
					}
				}
			}(p)
		}
		go func() {
			x.wg.Wait()
			for _, ch := range x.outs {
				close(ch)
			}
		}()
	})
}

func (x *xchgCore) fanErr(err error) {
	for _, ch := range x.outs {
		select {
		case ch <- item{err: err}:
		case <-x.quit:
		}
	}
}

func (x *xchgCore) stop() {
	x.closeOnce.Do(func() { close(x.quit) })
}

// port is one consumer endpoint of an exchange.
type port struct {
	x    *xchgCore
	idx  int
	once sync.Once
}

// Open implements Operator.
func (p *port) Open() error { p.x.start(); return nil }

// Next implements Operator.
func (p *port) Next() (*vector.Batch, error) {
	it, ok := <-p.x.outs[p.idx]
	if !ok {
		return nil, nil
	}
	return it.b, it.err
}

// Close implements Operator. The exchange stops once every consumer port
// has closed (stopping on the first close would strand batches buffered for
// sibling streams); a cancelled query context stops it immediately.
func (p *port) Close() error {
	p.once.Do(func() {
		if p.x.openPorts.Add(-1) == 0 {
			p.x.stop()
		}
	})
	return nil
}

func send(ch chan item, b *vector.Batch, quit <-chan struct{}) error {
	select {
	case ch <- item{b: b}:
		return nil
	case <-quit:
		return errQuit
	}
}

type quitError struct{}

func (quitError) Error() string { return "exec: exchange canceled" }

var errQuit = quitError{}

// XchgUnion merges n producer streams into one consumer stream.
func XchgUnion(ctx context.Context, producers []Operator) Operator {
	x := newXchgCore(ctx, producers, 1, func(b *vector.Batch, outs []chan item, quit <-chan struct{}) error {
		return send(outs[0], b, quit)
	})
	return &port{x: x}
}

// XchgHashSplit hash-partitions n producer streams into m consumer streams
// on the given key expressions. It returns the m consumer ports.
func XchgHashSplit(ctx context.Context, producers []Operator, keys []expr.Expr, m int) []Operator {
	route := func(b *vector.Batch, outs []chan item, quit <-chan struct{}) error {
		hashes, err := HashRows(b, keys)
		if err != nil {
			// Deliver the error to consumer 0.
			select {
			case outs[0] <- item{err: err}:
			case <-quit:
			}
			return err
		}
		sels := make([][]int32, m)
		for r, h := range hashes {
			d := int(h % uint64(m))
			phys := int32(r)
			if b.Sel != nil {
				phys = b.Sel[r]
			}
			sels[d] = append(sels[d], phys)
		}
		for d, sel := range sels {
			if len(sel) == 0 {
				continue
			}
			if err := send(outs[d], &vector.Batch{Vecs: b.Vecs, Sel: sel}, quit); err != nil {
				return err
			}
		}
		return nil
	}
	x := newXchgCore(ctx, producers, m, route)
	ports := make([]Operator, m)
	for i := range ports {
		ports[i] = &port{x: x, idx: i}
	}
	return ports
}

// XchgBroadcast replicates every producer batch to all m consumer streams
// (used to build replicated join sides).
func XchgBroadcast(ctx context.Context, producers []Operator, m int) []Operator {
	route := func(b *vector.Batch, outs []chan item, quit <-chan struct{}) error {
		for _, ch := range outs {
			if err := send(ch, b, quit); err != nil {
				return err
			}
		}
		return nil
	}
	x := newXchgCore(ctx, producers, m, route)
	ports := make([]Operator, m)
	for i := range ports {
		ports[i] = &port{x: x, idx: i}
	}
	return ports
}

// XchgRangeSplit routes rows to consumers by comparing an int64 key against
// ascending boundaries: consumer i receives keys in (bounds[i-1], bounds[i]]
// with the last consumer unbounded.
func XchgRangeSplit(ctx context.Context, producers []Operator, key expr.Expr, bounds []int64) []Operator {
	m := len(bounds) + 1
	route := func(b *vector.Batch, outs []chan item, quit <-chan struct{}) error {
		kv, err := key.Eval(b)
		if err != nil {
			select {
			case outs[0] <- item{err: err}:
			case <-quit:
			}
			return err
		}
		sels := make([][]int32, m)
		for r := 0; r < b.Len(); r++ {
			x := int64At(kv, r)
			d := 0
			for d < len(bounds) && x > bounds[d] {
				d++
			}
			phys := int32(r)
			if b.Sel != nil {
				phys = b.Sel[r]
			}
			sels[d] = append(sels[d], phys)
		}
		for d, sel := range sels {
			if len(sel) == 0 {
				continue
			}
			if err := send(outs[d], &vector.Batch{Vecs: b.Vecs, Sel: sel}, quit); err != nil {
				return err
			}
		}
		return nil
	}
	x := newXchgCore(ctx, producers, m, route)
	ports := make([]Operator, m)
	for i := range ports {
		ports[i] = &port{x: x, idx: i}
	}
	return ports
}

// XchgMergeUnion merges producer streams that are each sorted on the keys
// into one globally sorted consumer stream.
func XchgMergeUnion(producers []Operator, keys []SortKey) Operator {
	return &mergeUnion{producers: producers, keys: keys}
}

type mergeUnion struct {
	producers []Operator
	keys      []SortKey

	bufs  []*vector.Batch
	pos   []int
	done  []bool
	open  bool
	kvecs [][]*vector.Vec
}

// Open implements Operator.
func (m *mergeUnion) Open() error {
	m.bufs = make([]*vector.Batch, len(m.producers))
	m.pos = make([]int, len(m.producers))
	m.done = make([]bool, len(m.producers))
	m.kvecs = make([][]*vector.Vec, len(m.producers))
	for _, p := range m.producers {
		if err := p.Open(); err != nil {
			return err
		}
	}
	m.open = true
	return nil
}

// Close implements Operator.
func (m *mergeUnion) Close() error {
	var first error
	for _, p := range m.producers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *mergeUnion) fill(i int) error {
	for !m.done[i] && (m.bufs[i] == nil || m.pos[i] >= m.bufs[i].Len()) {
		b, err := m.producers[i].Next()
		if err != nil {
			return err
		}
		if b == nil {
			m.done[i] = true
			m.bufs[i] = nil
			return nil
		}
		c := b.Compact()
		m.bufs[i], m.pos[i] = c, 0
		m.kvecs[i] = make([]*vector.Vec, len(m.keys))
		for ki, k := range m.keys {
			kv, err := k.Expr.Eval(c)
			if err != nil {
				return err
			}
			m.kvecs[i][ki] = kv
		}
	}
	return nil
}

// Next implements Operator.
func (m *mergeUnion) Next() (*vector.Batch, error) {
	var out *vector.Batch
	for n := 0; n < vector.MaxSize; n++ {
		best := -1
		for i := range m.producers {
			if err := m.fill(i); err != nil {
				return nil, err
			}
			if m.bufs[i] == nil {
				continue
			}
			if best == -1 || m.less(i, best) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		src := m.bufs[best]
		if out == nil {
			out = &vector.Batch{Vecs: make([]*vector.Vec, len(src.Vecs))}
			for i, v := range src.Vecs {
				out.Vecs[i] = vector.New(v.Kind(), vector.MaxSize)
			}
		}
		for i, v := range src.Vecs {
			out.Vecs[i].AppendFrom(v, m.pos[best])
		}
		m.pos[best]++
	}
	if out == nil {
		return nil, nil
	}
	return out, nil
}

// less orders producer heads i vs j by the sort keys.
func (m *mergeUnion) less(i, j int) bool {
	for ki, k := range m.keys {
		c := compareAt2(m.kvecs[i][ki], m.pos[i], m.kvecs[j][ki], m.pos[j])
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func compareAt2(a *vector.Vec, x int, b *vector.Vec, y int) int {
	switch a.Kind() {
	case vector.Int64:
		return cmpOrdered(a.Int64s()[x], b.Int64s()[y])
	case vector.Int32:
		return cmpOrdered(a.Int32s()[x], b.Int32s()[y])
	case vector.Float64:
		return cmpOrdered(a.Float64s()[x], b.Float64s()[y])
	case vector.String:
		return cmpOrdered(a.Strings()[x], b.Strings()[y])
	}
	return 0
}

// HashRows computes a 64-bit hash of the key expressions for every live row
// of a batch. It delegates to the vector hash kernels — the same column-wise
// functions the hash join and aggregation tables use — so joins, group-by,
// local exchanges and distributed exchanges all agree on one hash function.
func HashRows(b *vector.Batch, keys []expr.Expr) ([]uint64, error) {
	return HashRowsInto(nil, b, keys)
}

// HashRowsInto is HashRows reusing dst's capacity, for callers that hash a
// stream of batches (exchange senders) and want an allocation-free steady
// state.
func HashRowsInto(dst []uint64, b *vector.Batch, keys []expr.Expr) ([]uint64, error) {
	n := b.Len()
	if cap(dst) < n {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
	}
	for i, k := range keys {
		kv, err := k.Eval(b)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			vector.HashCol(dst, kv)
		} else {
			vector.RehashCol(dst, kv)
		}
	}
	if len(keys) == 0 {
		vector.HashStart(dst)
	}
	return dst, nil
}

// HashInt64 hashes a single integer key with the same function HashRows
// uses, so table partitioning (hash of the partition key) and exchange
// partitioning agree everywhere in the engine.
func HashInt64(x int64) uint64 { return vector.HashInt64(x) }
