package colstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"vectorh/internal/compress"
	"vectorh/internal/hdfs"
	"vectorh/internal/vector"
)

// Block payload tags (compress reserves 1..4 for its own schemes).
const tagFloatRaw = 5

// colData holds one decoded column block (one of the slices is used,
// depending on the column kind). String blocks that were PDICT-compressed
// may instead be held in code form: pd carries the parsed dictionary while
// the packed code stream stays compressed until someone asks for codes or
// values — the storage half of executing on compressed data. str may later
// be filled in next to pd by a scanner that needed value form.
type colData struct {
	i64 []int64
	f64 []float64
	str []string
	pd  *compress.PDictBlock
}

func (d *colData) length(k vector.Kind) int {
	switch k {
	case vector.Float64:
		return len(d.f64)
	case vector.String:
		if d.pd != nil {
			return d.pd.Rows()
		}
		return len(d.str)
	default:
		return len(d.i64)
	}
}

func (d *colData) slice(k vector.Kind, lo, hi int) colData {
	switch k {
	case vector.Float64:
		return colData{f64: d.f64[lo:hi]}
	case vector.String:
		return colData{str: d.str[lo:hi]}
	default:
		return colData{i64: d.i64[lo:hi]}
	}
}

func (d *colData) appendBatchCol(v *vector.Vec, sel []int32) {
	switch v.Kind() {
	case vector.Int32:
		src := v.Int32s()
		if sel == nil {
			for _, x := range src {
				d.i64 = append(d.i64, int64(x))
			}
		} else {
			for _, i := range sel {
				d.i64 = append(d.i64, int64(src[i]))
			}
		}
	case vector.Int64:
		src := v.Int64s()
		if sel == nil {
			d.i64 = append(d.i64, src...)
		} else {
			for _, i := range sel {
				d.i64 = append(d.i64, src[i])
			}
		}
	case vector.Float64:
		src := v.Float64s()
		if sel == nil {
			d.f64 = append(d.f64, src...)
		} else {
			for _, i := range sel {
				d.f64 = append(d.f64, src[i])
			}
		}
	case vector.String:
		src := v.Strings()
		if sel == nil {
			d.str = append(d.str, src...)
		} else {
			for _, i := range sel {
				d.str = append(d.str, src[i])
			}
		}
	default:
		panic(fmt.Sprintf("colstore: unsupported kind %v", v.Kind()))
	}
}

// encodeBlock compresses values with the best lightweight scheme for the
// kind: PFOR vs PFOR-DELTA for integers, PDICT vs raw+LZ for strings, raw
// bytes for floats (which lightweight schemes do not compress, per Fig. 1).
func encodeBlock(k vector.Kind, d colData) []byte {
	switch k {
	case vector.Float64:
		out := []byte{tagFloatRaw}
		out = binary.AppendUvarint(out, uint64(len(d.f64)))
		for _, f := range d.f64 {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f))
		}
		return out
	case vector.String:
		return compress.EncodeStrings(d.str)
	default:
		p := compress.PFOREncode(d.i64)
		pd := compress.PFORDeltaEncode(d.i64)
		if len(pd) < len(p) {
			return pd
		}
		return p
	}
}

// decodeBlock inverts encodeBlock, always producing value form.
func decodeBlock(k vector.Kind, data []byte) (colData, error) {
	return decodeBlockScan(k, data, false, nil)
}

// decodeBlockScan is the scanner-side decode: with codeForm set, a
// PDICT-encoded string block is merely opened (dictionary parsed, code
// stream left packed) instead of materialized. scratch, when non-nil, lends
// the decoder its staging buffers; decode targets are still freshly
// allocated because they escape as zero-copy vector views.
func decodeBlockScan(k vector.Kind, data []byte, codeForm bool, scratch *compress.Scratch) (colData, error) {
	if len(data) == 0 {
		return colData{}, compress.ErrCorrupt
	}
	switch k {
	case vector.Float64:
		if data[0] != tagFloatRaw {
			return colData{}, fmt.Errorf("colstore: bad float block tag %d", data[0])
		}
		body := data[1:]
		n, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body)-sz) < n*8 {
			return colData{}, compress.ErrCorrupt
		}
		body = body[sz:]
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
		}
		return colData{f64: out}, nil
	case vector.String:
		if codeForm && compress.IsPDict(data) {
			pd, err := compress.PDictOpen(data)
			return colData{pd: pd}, err
		}
		str, err := compress.DecodeStringsScratch(data, nil, scratch)
		return colData{str: str}, err
	default:
		var (
			i64 []int64
			err error
		)
		if data[0] == 2 { // tagPFORDelta
			i64, err = compress.PFORDeltaDecodeScratch(data, nil, scratch)
		} else {
			i64, err = compress.PFORDecodeScratch(data, nil, scratch)
		}
		return colData{i64: i64}, err
	}
}

// valueBytes estimates the materialized in-memory footprint of value-form
// column data (string rows count header + shared bytes; code-form blocks
// count only their dictionary values, the part that was materialized).
func valueBytes(k vector.Kind, d colData) int64 {
	switch k {
	case vector.Float64:
		return int64(len(d.f64)) * 8
	case vector.String:
		if d.pd != nil {
			return strSliceBytes(d.pd.Dict.Values)
		}
		return strSliceBytes(d.str)
	default:
		return int64(len(d.i64)) * 8
	}
}

func strSliceBytes(ss []string) int64 {
	n := int64(len(ss)) * 16
	for _, s := range ss {
		n += int64(len(s))
	}
	return n
}

// blockMinMax computes the MinMax summary for a block. Zero-row blocks keep
// HasMinMax false — their summary carries no information and predicates
// must not skip on it.
func blockMinMax(k vector.Kind, d colData, b *BlockMeta) {
	b.HasMinMax = d.length(k) > 0
	switch k {
	case vector.Float64:
		if len(d.f64) == 0 {
			return
		}
		b.FloatMin, b.FloatMax = d.f64[0], d.f64[0]
		for _, v := range d.f64 {
			if v < b.FloatMin {
				b.FloatMin = v
			}
			if v > b.FloatMax {
				b.FloatMax = v
			}
		}
	case vector.String:
		if len(d.str) == 0 {
			return
		}
		b.StrMin, b.StrMax = d.str[0], d.str[0]
		for _, v := range d.str {
			if v < b.StrMin {
				b.StrMin = v
			}
			if v > b.StrMax {
				b.StrMax = v
			}
		}
	default:
		if len(d.i64) == 0 {
			return
		}
		b.NumMin, b.NumMax = d.i64[0], d.i64[0]
		for _, v := range d.i64 {
			if v < b.NumMin {
				b.NumMin = v
			}
			if v > b.NumMax {
				b.NumMax = v
			}
		}
	}
}

// Appender buffers rows for one partition and writes them as compressed
// blocks: full blocks land at fixed offsets in chunk files, the final
// partially filled block of each column goes to a compact partial-chunk
// file that the next append consumes and replaces (§3 "Original Layout" /
// "File-per-partition Layout").
type Appender struct {
	fs   *hdfs.Cluster
	meta *PartitionMeta
	node string // writer node; gets the first HDFS replica

	pend      []colData // per column, pending values not yet in full blocks
	flushedTo []int64   // per column, rows already covered by full blocks

	// superseded lists files this append consumed and replaced (the previous
	// partial-chunk generation). They are NOT deleted here: a concurrent
	// scanner holding the pre-append metadata may still read them. The
	// caller deletes them once no scan references the old metadata.
	superseded []string
}

// Superseded returns the data files this append replaced; the caller owns
// their deletion (deferred until concurrent readers of the old metadata
// generation finish).
func (a *Appender) Superseded() []string { return a.superseded }

// NewAppender opens the partition for appending, reading back any partial
// blocks from the previous append (which are then superseded on Close).
func NewAppender(fs *hdfs.Cluster, meta *PartitionMeta, node string) (*Appender, error) {
	a := &Appender{
		fs:        fs,
		meta:      meta,
		node:      node,
		pend:      make([]colData, len(meta.Cols)),
		flushedTo: make([]int64, len(meta.Cols)),
	}
	for ci := range meta.Cols {
		c := &meta.Cols[ci]
		n := len(c.Blocks)
		if n > 0 && c.Blocks[n-1].Chunk == -1 {
			// Read the partial block back into the pending buffer.
			pb := c.Blocks[n-1]
			data, err := a.readPayload(pb)
			if err != nil {
				return nil, fmt.Errorf("colstore: reading partial block of %s: %w", c.Name, err)
			}
			d, err := decodeBlock(c.Type.Kind, data)
			if err != nil {
				return nil, err
			}
			a.pend[ci] = d
			c.Blocks = c.Blocks[:n-1]
			// The partial block's rows re-flush below; un-count their raw
			// bytes so the running estimate is not doubled.
			c.RawBytes -= int64(rawBytesEstimate(c.Type.Kind, d))
		}
		if n := len(c.Blocks); n > 0 {
			a.flushedTo[ci] = c.Blocks[n-1].RowStart + int64(c.Blocks[n-1].Rows)
		}
	}
	if meta.PartialGen >= 0 {
		// The old partial file is fully consumed; it is superseded by this
		// append but deletion is deferred to the caller (readers of the
		// pre-append metadata may still need it).
		path := meta.PartialPath(meta.PartialGen)
		if fs.Exists(path) {
			a.superseded = append(a.superseded, path)
		}
	}
	return a, nil
}

// Append buffers a batch (honoring its selection vector) and flushes any
// full blocks that have accumulated.
func (a *Appender) Append(b *vector.Batch) error {
	if b.NumCols() != len(a.meta.Cols) {
		return fmt.Errorf("colstore: batch has %d columns, partition %d", b.NumCols(), len(a.meta.Cols))
	}
	for ci := range a.meta.Cols {
		a.pend[ci].appendBatchCol(b.Col(ci), b.Sel)
	}
	a.meta.Rows += int64(b.Len())
	return a.flushFull()
}

// flushFull writes pending data to full blocks while a comfortable margin of
// data remains buffered (the remainder becomes the partial block at Close).
func (a *Appender) flushFull() error {
	for ci := range a.meta.Cols {
		c := &a.meta.Cols[ci]
		for {
			n := a.pend[ci].length(c.Type.Kind)
			raw := rawBytesEstimate(c.Type.Kind, a.pend[ci])
			// Only cut a block when enough raw bytes are buffered to
			// very likely fill one compressed block; force a cut when
			// highly compressible data would otherwise buffer without
			// bound.
			if raw < 4*a.meta.Format.BlockSize {
				break
			}
			cut, err := a.cutOneBlock(ci, n, raw >= 64*a.meta.Format.BlockSize)
			if err != nil {
				return err
			}
			if cut == 0 {
				break
			}
		}
	}
	return nil
}

func rawBytesEstimate(k vector.Kind, d colData) int {
	switch k {
	case vector.Float64:
		return len(d.f64) * 8
	case vector.String:
		total := 0
		for _, s := range d.str {
			total += len(s) + 4
		}
		return total
	default:
		return len(d.i64) * 8
	}
}

// cutOneBlock encodes a prefix of the pending values into one block of at
// most BlockSize compressed bytes (growing/shrinking the prefix with a
// doubling search) and writes it to the current chunk file. With force set,
// it also emits undersized final blocks. It returns the rows consumed.
func (a *Appender) cutOneBlock(ci, avail int, force bool) (int, error) {
	c := &a.meta.Cols[ci]
	bs := a.meta.Format.BlockSize
	limit := avail
	if cap := a.meta.Format.MaxRowsPerBlock; limit > cap {
		limit = cap
	}
	if est := bs * 8; limit > est { // lower bound ~1 bit/value
		limit = est
	}
	k := limit
	d := a.pend[ci]
	enc := encodeBlock(c.Type.Kind, d.slice(c.Type.Kind, 0, k))
	for len(enc) > bs && k > 1 {
		k /= 2
		enc = encodeBlock(c.Type.Kind, d.slice(c.Type.Kind, 0, k))
	}
	for len(enc) <= bs/2 && k < limit {
		k2 := k * 2
		if k2 > limit {
			k2 = limit
		}
		enc2 := encodeBlock(c.Type.Kind, d.slice(c.Type.Kind, 0, k2))
		if len(enc2) > bs {
			break
		}
		k, enc = k2, enc2
	}
	if !force && k == avail && len(enc) <= bs/2 {
		return 0, nil // too little data; keep buffering
	}
	slots := (len(enc) + bs - 1) / bs // oversized single values span slots
	chunk, slot, err := a.allocSlots(slots)
	if err != nil {
		return 0, err
	}
	if err := a.writePadded(a.meta.ChunkPath(chunk), enc, slots*bs); err != nil {
		return 0, err
	}
	bm := BlockMeta{Chunk: chunk, Slot: slot, RowStart: a.flushedTo[ci], Rows: k, Bytes: len(enc)}
	blockMinMax(c.Type.Kind, d.slice(c.Type.Kind, 0, k), &bm)
	c.Blocks = append(c.Blocks, bm)
	c.RawBytes += int64(rawBytesEstimate(c.Type.Kind, d.slice(c.Type.Kind, 0, k)))
	a.flushedTo[ci] += int64(k)
	a.pend[ci] = d.slice(c.Type.Kind, k, avail)
	return k, nil
}

// allocSlots reserves consecutive slots in the open chunk file, opening a
// new chunk when the current one is full ("only one block chunk file is
// open for writing at a time").
func (a *Appender) allocSlots(n int) (chunk, slot int, err error) {
	m := a.meta
	if len(m.Chunks) == 0 || m.Chunks[len(m.Chunks)-1].Slots+n > m.Format.BlocksPerChunk {
		m.Chunks = append(m.Chunks, ChunkMeta{ID: len(m.Chunks)})
	}
	cm := &m.Chunks[len(m.Chunks)-1]
	slot = cm.Slots
	cm.Slots += n
	return cm.ID, slot, nil
}

func (a *Appender) writePadded(path string, enc []byte, padded int) error {
	w, err := a.fs.Append(path, a.node)
	if err != nil {
		return err
	}
	if _, err := w.Write(enc); err != nil {
		return err
	}
	if pad := padded - len(enc); pad > 0 {
		if _, err := w.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	return w.Close()
}

// Close flushes every remaining pending value: full blocks go to chunk
// files, the final under-full block of each column goes to a fresh compact
// partial-chunk file.
func (a *Appender) Close() error {
	for ci := range a.meta.Cols {
		c := &a.meta.Cols[ci]
		for {
			n := a.pend[ci].length(c.Type.Kind)
			if n == 0 || n <= a.meta.Format.MaxRowsPerBlock {
				if n == 0 {
					break
				}
				enc := encodeBlock(c.Type.Kind, a.pend[ci])
				if len(enc) <= a.meta.Format.BlockSize {
					break // remainder fits one (partial) block
				}
			}
			if _, err := a.cutOneBlock(ci, n, true); err != nil {
				return err
			}
		}
	}
	// Row-count invariant: every column must cover meta.Rows.
	for ci := range a.meta.Cols {
		c := &a.meta.Cols[ci]
		if covered := a.flushedTo[ci] + int64(a.pend[ci].length(c.Type.Kind)); covered != a.meta.Rows {
			return fmt.Errorf("colstore: column %s covers %d of %d rows", c.Name, covered, a.meta.Rows)
		}
	}
	// Write the partial-chunk file.
	anyPartial := false
	for ci := range a.meta.Cols {
		if a.pend[ci].length(a.meta.Cols[ci].Type.Kind) > 0 {
			anyPartial = true
		}
	}
	if !anyPartial {
		a.meta.PartialGen = -1
		return nil
	}
	a.meta.PartialSeq++
	a.meta.PartialGen = a.meta.PartialSeq
	path := a.meta.PartialPath(a.meta.PartialGen)
	if a.fs.Exists(path) {
		// Partial generations are monotonic precisely so this cannot happen
		// while a superseded file awaits deferred deletion.
		return fmt.Errorf("colstore: partial generation %d of %s.p%d already exists", a.meta.PartialGen, a.meta.Table, a.meta.Partition)
	}
	w, err := a.fs.Create(path, a.node)
	if err != nil {
		return err
	}
	off := 0
	for ci := range a.meta.Cols {
		c := &a.meta.Cols[ci]
		n := a.pend[ci].length(c.Type.Kind)
		if n == 0 {
			continue
		}
		enc := encodeBlock(c.Type.Kind, a.pend[ci])
		// For partial blocks, Slot records the byte offset inside the
		// compact partial file.
		bm := BlockMeta{Chunk: -1, Slot: off, RowStart: a.flushedTo[ci], Rows: n, Bytes: len(enc)}
		blockMinMax(c.Type.Kind, a.pend[ci], &bm)
		c.Blocks = append(c.Blocks, bm)
		c.RawBytes += int64(rawBytesEstimate(c.Type.Kind, a.pend[ci]))
		if _, err := w.Write(enc); err != nil {
			return err
		}
		off += len(enc)
	}
	return w.Close()
}

// readPayload fetches a block's compressed bytes.
func (a *Appender) readPayload(b BlockMeta) ([]byte, error) {
	return readPayload(a.fs, a.meta, a.node, b)
}

func readPayload(fs *hdfs.Cluster, m *PartitionMeta, node string, b BlockMeta) ([]byte, error) {
	return readPayloadInto(fs, m, node, b, nil)
}

// readPayloadInto fetches a block's compressed bytes, reusing buf when it
// has the capacity. Callers may only pass a reusable buffer when the decode
// they feed it to copies everything out — PDictOpen retains sub-slices of
// the payload, so code-form string reads must pass nil.
func readPayloadInto(fs *hdfs.Cluster, m *PartitionMeta, node string, b BlockMeta, buf []byte) ([]byte, error) {
	var path string
	var off int64
	if b.Chunk >= 0 {
		path = m.ChunkPath(b.Chunk)
		off = int64(b.Slot) * int64(m.Format.BlockSize)
	} else {
		path = m.PartialPath(m.PartialGen)
		off = int64(b.Slot)
	}
	r, err := fs.Open(path, node)
	if err != nil {
		return nil, err
	}
	if cap(buf) < b.Bytes {
		buf = make([]byte, b.Bytes)
	}
	buf = buf[:b.Bytes]
	if _, err := r.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// Scanner reads a projection of a partition over a set of row ranges,
// producing vectors of up to vector.MaxSize rows. Blocks outside the ranges
// are never touched — the IO half of MinMax skipping. The span API
// (NextSpan / ColVec / GatherCol) decouples cursor advancement from column
// decode, so a late-materializing scan can decode only its predicate
// columns for a span, and fetch the payload columns — possibly only the
// surviving rows — afterwards, or not at all.
type Scanner struct {
	fs     *hdfs.Cluster
	meta   *PartitionMeta
	node   string
	cols   []int
	kinds  []vector.Kind
	ranges []RowRange

	ri     int
	cursor int64
	cache  []cachedBlock
	bc     *BlockCache // optional shared decoded-block cache
	stats  ScanStats

	codeExec bool // serve PDICT string blocks as dictionary-code vectors

	// Decode scratch reused across blocks: the compressed-payload read buffer
	// and the decoder staging arrays. Decode targets are never reused — they
	// escape upstream as zero-copy vector views.
	scratch    compress.Scratch
	payloadBuf []byte

	totalBytes int64 // compressed bytes of every projected block (skip baseline)
	hitBytes   int64 // compressed bytes served from the shared cache
}

// ScanStats counts the physical work a scanner performed.
type ScanStats struct {
	BlocksRead   int64 // column blocks fetched and decompressed
	BytesDecoded int64 // compressed payload bytes decoded
	CacheHits    int64 // blocks served from the shared decoded-block cache

	// BytesSkipped is the compressed bytes of the projection this scan never
	// decoded — blocks outside the qualifying ranges (MinMax skipping), spans
	// it partially decoded, and PDICT code streams it never unpacked —
	// relative to a naive full decode of every projected block.
	BytesSkipped int64
	// BytesMaterialized is the estimated in-memory bytes of values this scan
	// produced. Code vectors stay in the compressed domain and do not count;
	// their dictionaries (and any fallback materialization) do.
	BytesMaterialized int64
}

// Stats returns the scanner's cumulative counters.
func (s *Scanner) Stats() ScanStats {
	st := s.stats
	if skipped := s.totalBytes - st.BytesDecoded - s.hitBytes; skipped > 0 {
		st.BytesSkipped = skipped
	}
	return st
}

// SetCache attaches a shared decoded-block cache: blocks already decoded by
// any scanner (this query or a concurrent one) are served as zero-copy
// column views instead of being re-read and re-decompressed.
func (s *Scanner) SetCache(bc *BlockCache) { s.bc = bc }

// SetCodeExec toggles execution on compressed data for this scan: when on,
// PDICT string blocks surface dictionary-code vectors (and their
// dictionaries via SpanDict) instead of materialized strings.
func (s *Scanner) SetCodeExec(on bool) { s.codeExec = on }

type cachedBlock struct {
	lo, hi int64
	data   colData
	// codesCharged records that this scanner already counted the block's
	// packed-code bytes as decoded (the charge is deferred until the code
	// stream is actually unpacked).
	codesCharged bool
}

// NewScanner opens a scan of the named columns over the given ranges (nil
// ranges means the full partition).
func NewScanner(fs *hdfs.Cluster, meta *PartitionMeta, node string, cols []string, ranges []RowRange) (*Scanner, error) {
	if ranges == nil {
		ranges = meta.FullRange()
	}
	s := &Scanner{fs: fs, meta: meta, node: node, ranges: ranges}
	for _, name := range cols {
		found := false
		for ci := range meta.Cols {
			if meta.Cols[ci].Name == name {
				s.cols = append(s.cols, ci)
				s.kinds = append(s.kinds, meta.Cols[ci].Type.Kind)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("colstore: no column %q in %s.p%d", name, meta.Table, meta.Partition)
		}
	}
	s.cache = make([]cachedBlock, len(s.cols))
	if len(ranges) > 0 {
		s.cursor = ranges[0].Start
	}
	for _, ci := range s.cols {
		for bi := range meta.Cols[ci].Blocks {
			s.totalBytes += int64(meta.Cols[ci].Blocks[bi].Bytes)
		}
	}
	return s, nil
}

// Next returns the next batch of all projected columns and the row id of
// its first tuple, or nil at end of scan.
func (s *Scanner) Next() (*vector.Batch, int64, error) {
	start, n, err := s.NextSpan(nil)
	if err != nil || n == 0 {
		return nil, 0, err
	}
	batch := &vector.Batch{Vecs: make([]*vector.Vec, len(s.cols))}
	for i := range s.cols {
		if batch.Vecs[i], err = s.ColVec(i, start, n); err != nil {
			return nil, 0, err
		}
	}
	return batch, start, nil
}

// NextSpan advances the cursor to the next span of up to vector.MaxSize
// rows inside the qualifying ranges and returns its start row and length
// (n == 0 at end of scan). The span is clamped so every lead column
// (projection slots; nil = all columns) can serve it from a single cached
// block; other columns stitch across block boundaries in ColVec/GatherCol.
// No column is decoded for slots the caller never asks about.
func (s *Scanner) NextSpan(lead []int) (int64, int, error) {
	for s.ri < len(s.ranges) && s.cursor >= s.ranges[s.ri].End {
		s.ri++
		if s.ri < len(s.ranges) {
			s.cursor = s.ranges[s.ri].Start
		}
	}
	if s.ri >= len(s.ranges) {
		return 0, 0, nil
	}
	n := s.ranges[s.ri].End - s.cursor
	if n > vector.MaxSize {
		n = vector.MaxSize
	}
	// Clamping needs only block boundaries, never decoded data — decode is
	// deferred until ColVec/GatherCol actually asks for a column, so a span
	// the predicate verdicts kill (SpanDict miss, frame bounds disjoint)
	// skips its blocks entirely.
	clamp := func(slot int) error {
		b, err := s.blockFor(slot, s.cursor)
		if err != nil {
			return err
		}
		if avail := b.RowStart + int64(b.Rows) - s.cursor; avail < n {
			n = avail
		}
		return nil
	}
	if lead == nil {
		for i := range s.cols {
			if err := clamp(i); err != nil {
				return 0, 0, err
			}
		}
	} else {
		for _, i := range lead {
			if err := clamp(i); err != nil {
				return 0, 0, err
			}
		}
	}
	start := s.cursor
	s.cursor += n
	return start, int(n), nil
}

// ColVec decodes rows [start, start+n) of projection slot i as a dense
// vector. Spans inside one cached block are zero-copy views (except the
// int64→int32 narrowing of date columns); spans crossing blocks stitch.
func (s *Scanner) ColVec(i int, start int64, n int) (*vector.Vec, error) {
	cb, err := s.ensureBlock(i, start)
	if err != nil {
		return nil, err
	}
	if start+int64(n) <= cb.hi {
		lo := int(start - cb.lo)
		hi := lo + n
		switch s.kinds[i] {
		case vector.Float64:
			return vector.FromFloat64(cb.data.f64[lo:hi]), nil
		case vector.String:
			if s.codeExec && cb.data.pd != nil {
				codes, err := s.blockCodes(cb)
				if err != nil {
					return nil, err
				}
				return vector.FromDictCodes(codes[lo:hi], cb.data.pd.Dict), nil
			}
			str, err := s.blockStrings(cb)
			if err != nil {
				return nil, err
			}
			return vector.FromString(str[lo:hi]), nil
		case vector.Int32:
			out := make([]int32, n)
			for j, v := range cb.data.i64[lo:hi] {
				out[j] = int32(v)
			}
			return vector.FromInt32(out), nil
		default:
			return vector.FromInt64(cb.data.i64[lo:hi]), nil
		}
	}
	// Rare path: the span crosses a block boundary of this column.
	out := vector.New(s.kinds[i], n)
	for row := start; row < start+int64(n); {
		cb, err := s.ensureBlock(i, row)
		if err != nil {
			return nil, err
		}
		take := cb.hi - row
		if rem := start + int64(n) - row; rem < take {
			take = rem
		}
		lo := int(row - cb.lo)
		hi := lo + int(take)
		switch s.kinds[i] {
		case vector.Float64:
			for _, v := range cb.data.f64[lo:hi] {
				out.AppendFloat64(v)
			}
		case vector.String:
			str, err := s.blockStrings(cb)
			if err != nil {
				return nil, err
			}
			for _, v := range str[lo:hi] {
				out.AppendString(v)
			}
		case vector.Int32:
			for _, v := range cb.data.i64[lo:hi] {
				out.AppendInt32(int32(v))
			}
		default:
			for _, v := range cb.data.i64[lo:hi] {
				out.AppendInt64(v)
			}
		}
		row += take
	}
	return out, nil
}

// blockCodes returns the dictionary-code stream of a code-form cached
// block, unpacking (and charging) it on first use by this scanner.
func (s *Scanner) blockCodes(cb *cachedBlock) ([]uint32, error) {
	codes, err := cb.data.pd.Codes()
	if err != nil {
		return nil, err
	}
	if !cb.codesCharged {
		cb.codesCharged = true
		s.stats.BytesDecoded += int64(cb.data.pd.CodeBytes())
	}
	return codes, nil
}

// blockStrings returns value-form strings for a cached string block,
// materializing a code-form block on first use. The materialization is
// scanner-local (cachedBlock.data is a copy), so the shared cache keeps the
// compact code form.
func (s *Scanner) blockStrings(cb *cachedBlock) ([]string, error) {
	if cb.data.str != nil || cb.data.pd == nil {
		return cb.data.str, nil
	}
	str, err := cb.data.pd.Materialize(make([]string, 0, cb.data.pd.Rows()))
	if err != nil {
		return nil, err
	}
	if !cb.codesCharged {
		cb.codesCharged = true
		s.stats.BytesDecoded += int64(cb.data.pd.CodeBytes())
	}
	s.stats.BytesMaterialized += strSliceBytes(str)
	cb.data.str = str
	return str, nil
}

// GatherCol decodes only the rows start+sel[j] of projection slot i (sel
// ascending) — the payload half of a late-materializing scan: columns of
// rows the predicate already rejected are copied never, and blocks whose
// every row was rejected are not even decoded.
func (s *Scanner) GatherCol(i int, start int64, sel []int32) (*vector.Vec, error) {
	if len(sel) == 0 {
		return vector.New(s.kinds[i], 0), nil
	}
	last := start + int64(sel[len(sel)-1])
	cb, err := s.ensureRows(i, start+int64(sel[0]), last)
	if err != nil {
		return nil, err
	}
	if s.kinds[i] == vector.String && s.codeExec && cb.data.pd != nil && last < cb.hi {
		// Every selected row lands in one code-form block: gather codes and
		// stay in the compressed domain.
		codes, err := s.blockCodes(cb)
		if err != nil {
			return nil, err
		}
		out := make([]uint32, len(sel))
		for k, rel := range sel {
			out[k] = codes[int(start+int64(rel)-cb.lo)]
		}
		return vector.FromDictCodes(out, cb.data.pd.Dict), nil
	}
	out := vector.New(s.kinds[i], len(sel))
	var str []string
	if s.kinds[i] == vector.String {
		if str, err = s.blockStrings(cb); err != nil {
			return nil, err
		}
	}
	for _, rel := range sel {
		row := start + int64(rel)
		if row < cb.lo || row >= cb.hi {
			if cb, err = s.ensureRows(i, row, last); err != nil {
				return nil, err
			}
			if s.kinds[i] == vector.String {
				if str, err = s.blockStrings(cb); err != nil {
					return nil, err
				}
			}
		}
		j := int(row - cb.lo)
		switch s.kinds[i] {
		case vector.Float64:
			out.AppendFloat64(cb.data.f64[j])
		case vector.String:
			out.AppendString(str[j])
		case vector.Int32:
			out.AppendInt32(int32(cb.data.i64[j]))
		default:
			out.AppendInt64(cb.data.i64[j])
		}
	}
	return out, nil
}

// ensureRows makes rows [row, min(maxRow, block end)] of slot i servable.
// For a sparse request into an undecoded plain-PFOR block (the selected
// span covers under a quarter of the block) it decodes only that row range
// per-vector instead of inflating the whole block.
func (s *Scanner) ensureRows(i int, row, maxRow int64) (*cachedBlock, error) {
	cb := &s.cache[i]
	if row >= cb.lo && row < cb.hi {
		return cb, nil
	}
	if k := s.kinds[i]; k != vector.Int64 && k != vector.Int32 {
		return s.ensureBlock(i, row)
	}
	b, err := s.blockFor(i, row)
	if err != nil {
		return nil, err
	}
	end := b.RowStart + int64(b.Rows)
	if maxRow >= end {
		maxRow = end - 1
	}
	span := int(maxRow - row + 1)
	if span <= 0 || span*4 > b.Rows {
		return s.loadBlock(i, b)
	}
	if s.bc != nil {
		if d, ok := s.bc.get(s.keyOf(b)); ok {
			s.stats.CacheHits++
			s.hitBytes += int64(b.Bytes)
			cb.lo, cb.hi, cb.data, cb.codesCharged = b.RowStart, end, d, true
			return cb, nil
		}
	}
	payload, err := readPayloadInto(s.fs, s.meta, s.node, *b, s.payloadBuf)
	if err != nil {
		return nil, err
	}
	s.payloadBuf = payload
	if !compress.IsPFOR(payload) {
		return s.loadBlock(i, b) // delta frames need the running sum: full decode
	}
	rowLo := int(row - b.RowStart)
	dst, err := compress.PFORDecodeRange(payload, rowLo, rowLo+span, make([]int64, 0, span), &s.scratch)
	if err != nil {
		return nil, err
	}
	s.stats.BlocksRead++
	charge := int64(b.Bytes) * int64(span) / int64(b.Rows)
	if charge == 0 {
		charge = 1
	}
	s.stats.BytesDecoded += charge
	s.stats.BytesMaterialized += int64(span) * 8
	cb.lo, cb.hi, cb.data, cb.codesCharged = row, maxRow+1, colData{i64: dst}, false
	return cb, nil
}

// Close releases the scanner's cached decoded blocks and terminates the
// scan: a subsequent Next reports end-of-scan.
func (s *Scanner) Close() {
	s.cache = nil
	s.ri = len(s.ranges)
}

// ensureBlock loads (and caches) the block of requested column i covering
// row.
func (s *Scanner) ensureBlock(i int, row int64) (*cachedBlock, error) {
	cb := &s.cache[i]
	if row >= cb.lo && row < cb.hi {
		return cb, nil
	}
	b, err := s.blockFor(i, row)
	if err != nil {
		return nil, err
	}
	return s.loadBlock(i, b)
}

// blockFor binary-searches the block directory of slot i for the block
// covering row. It touches metadata only — no IO, no decode.
func (s *Scanner) blockFor(i int, row int64) (*BlockMeta, error) {
	c := &s.meta.Cols[s.cols[i]]
	lo, hi := 0, len(c.Blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Blocks[mid].RowStart+int64(c.Blocks[mid].Rows) <= row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(c.Blocks) || c.Blocks[lo].RowStart > row {
		return nil, fmt.Errorf("colstore: row %d not covered by column %s", row, c.Name)
	}
	return &c.Blocks[lo], nil
}

func (s *Scanner) keyOf(b *BlockMeta) blockKey {
	if b.Chunk >= 0 {
		return blockKey{s.meta.ChunkPath(b.Chunk), int64(b.Slot) * int64(s.meta.Format.BlockSize), b.Bytes}
	}
	return blockKey{s.meta.PartialPath(s.meta.PartialGen), int64(b.Slot), b.Bytes}
}

// loadBlock fetches and decodes one whole block into slot i's cache, via
// the shared cache when attached. In code-exec mode a PDICT string block is
// only opened: its dictionary is parsed and charged as decoded, while the
// packed code stream stays compressed until blockCodes/blockStrings first
// needs it (and blocks pruned through SpanDict never do).
func (s *Scanner) loadBlock(i int, b *BlockMeta) (*cachedBlock, error) {
	cb := &s.cache[i]
	kind := s.kinds[i]
	var key blockKey
	if s.bc != nil {
		key = s.keyOf(b)
		if d, ok := s.bc.get(key); ok {
			// Cache hits charge nothing: the decode happened elsewhere, and
			// hitBytes keeps them out of this scan's skipped bytes.
			s.stats.CacheHits++
			s.hitBytes += int64(b.Bytes)
			cb.lo, cb.hi, cb.data, cb.codesCharged = b.RowStart, b.RowStart+int64(b.Rows), d, true
			return cb, nil
		}
	}
	codeForm := s.codeExec && kind == vector.String
	var payload []byte
	var err error
	if codeForm {
		// PDictOpen retains sub-slices of the payload; it must not come from
		// the reusable read buffer.
		payload, err = readPayload(s.fs, s.meta, s.node, *b)
	} else {
		payload, err = readPayloadInto(s.fs, s.meta, s.node, *b, s.payloadBuf)
		if err == nil {
			s.payloadBuf = payload
		}
	}
	if err != nil {
		return nil, err
	}
	d, err := decodeBlockScan(kind, payload, codeForm, &s.scratch)
	if err != nil {
		return nil, err
	}
	s.stats.BlocksRead++
	if d.pd != nil {
		s.stats.BytesDecoded += int64(d.pd.DictBytes())
	} else {
		s.stats.BytesDecoded += int64(b.Bytes)
	}
	s.stats.BytesMaterialized += valueBytes(kind, d)
	if got := d.length(kind); got != b.Rows {
		return nil, fmt.Errorf("colstore: block of %s decoded %d rows, meta says %d", s.meta.Cols[s.cols[i]].Name, got, b.Rows)
	}
	cb.lo, cb.hi, cb.data, cb.codesCharged = b.RowStart, b.RowStart+int64(b.Rows), d, false
	if s.bc != nil {
		s.bc.put(key, d)
	}
	return cb, nil
}

// SpanDict returns the dictionary handle of the code-form block covering
// row of string slot i, or nil when the block is value-form (raw+LZ
// strings) or code execution is off. Opening the block parses only its
// dictionary, so a scan that prunes on the result — the pushed literal is
// absent — never touches the packed code stream.
func (s *Scanner) SpanDict(i int, row int64) (*compress.StrDict, error) {
	if !s.codeExec || s.kinds[i] != vector.String {
		return nil, nil
	}
	cb, err := s.ensureBlock(i, row)
	if err != nil {
		return nil, err
	}
	if cb.data.pd == nil {
		return nil, nil
	}
	return cb.data.pd.Dict, nil
}

// SpanValueBounds returns a conservative [lo, hi] value range for the whole
// block covering row of integer slot i, without decoding it: the MinMax
// summary when present, else the PFOR frame base/width widened by the
// trailing exceptions. ok is false when no bound is available.
func (s *Scanner) SpanValueBounds(i int, row int64) (lo, hi int64, ok bool) {
	if k := s.kinds[i]; k != vector.Int64 && k != vector.Int32 {
		return 0, 0, false
	}
	b, err := s.blockFor(i, row)
	if err != nil {
		return 0, 0, false
	}
	if b.HasMinMax {
		return b.NumMin, b.NumMax, true
	}
	payload, err := readPayloadInto(s.fs, s.meta, s.node, *b, s.payloadBuf)
	if err != nil {
		return 0, 0, false
	}
	s.payloadBuf = payload
	return compress.PFORBounds(payload)
}
