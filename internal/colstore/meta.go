// Package colstore implements VectorH's columnar table storage over HDFS
// (§3 of the paper): fixed-compressed-size blocks (512 KB by default) laid
// out at fixed offsets inside horizontal "block chunk" files of up to 1024
// blocks, a file-per-partition layout where all columns of a partition share
// its chunk files, a compact partial-chunk file absorbing the partially
// filled tail blocks of each append, and per-block MinMax indexes kept
// outside the data files so scans can skip IO entirely.
package colstore

import (
	"encoding/json"
	"fmt"
	"sort"

	"vectorh/internal/hdfs"
	"vectorh/internal/vector"
)

// Format parameterizes the physical layout.
type Format struct {
	BlockSize       int // compressed bytes per block slot; default 512 KiB
	BlocksPerChunk  int // block slots per chunk file; default 1024
	MaxRowsPerBlock int // tuple cap per block, bounding MinMax granularity; default 64Ki
}

// DefaultFormat matches the paper's defaults.
var DefaultFormat = Format{BlockSize: 512 << 10, BlocksPerChunk: 1024, MaxRowsPerBlock: 64 << 10}

func (f *Format) fill() {
	if f.BlockSize <= 0 {
		f.BlockSize = DefaultFormat.BlockSize
	}
	if f.BlocksPerChunk <= 0 {
		f.BlocksPerChunk = DefaultFormat.BlocksPerChunk
	}
	if f.MaxRowsPerBlock <= 0 {
		f.MaxRowsPerBlock = DefaultFormat.MaxRowsPerBlock
	}
}

// BlockMeta describes one compressed block of one column: its location
// (chunk file and slot), the row range it covers, and its MinMax summary.
type BlockMeta struct {
	Chunk    int   `json:"chunk"`    // chunk file id; -1 = partial chunk
	Slot     int   `json:"slot"`     // slot within the chunk (offset = slot*BlockSize)
	RowStart int64 `json:"rowStart"` // first row covered
	Rows     int   `json:"rows"`     // rows covered
	Bytes    int   `json:"bytes"`    // encoded payload length

	// MinMax summary; the fields used depend on the column kind. HasMinMax
	// records that the summary was actually computed: blocks without it
	// (legacy metadata, zero-row blocks, hand-built directories) must be
	// treated as always-qualifying by every BlockPredicate — a zero-valued
	// summary is indistinguishable from a real [0,0] one, and skipping on
	// it silently drops rows.
	HasMinMax bool    `json:"mm,omitempty"`
	NumMin    int64   `json:"numMin,omitempty"`
	NumMax    int64   `json:"numMax,omitempty"`
	FloatMin  float64 `json:"floatMin,omitempty"`
	FloatMax  float64 `json:"floatMax,omitempty"`
	StrMin    string  `json:"strMin,omitempty"`
	StrMax    string  `json:"strMax,omitempty"`
}

// ColumnMeta is the per-column block directory.
type ColumnMeta struct {
	Name   string      `json:"name"`
	Type   vector.Type `json:"type"`
	Blocks []BlockMeta `json:"blocks"`
	// RawBytes is the uncompressed size estimate of every value stored in
	// Blocks, accumulated at append time — the numerator of the partition's
	// compression ratio (encoded bytes are the sum of Blocks[i].Bytes).
	RawBytes int64 `json:"rawBytes,omitempty"`
}

// ChunkMeta describes one chunk file.
type ChunkMeta struct {
	ID    int `json:"id"`
	Slots int `json:"slots"` // slots written so far
}

// PartitionMeta is the full storage metadata of one table partition. It is
// persisted by the caller (VectorH keeps it in the WAL, not in the data
// files — "MinMax information is intended to help prevent data accesses,
// therefore it is better to store it separately from that data").
type PartitionMeta struct {
	Table     string       `json:"table"`
	Partition int          `json:"partition"`
	Gen       int          `json:"gen"` // bumped by update-propagation rewrites
	Format    Format       `json:"format"`
	Rows      int64        `json:"rows"`
	Chunks    []ChunkMeta  `json:"chunks"`
	Cols      []ColumnMeta `json:"cols"`
	// PartialGen names the current partial-chunk file generation
	// (partial files are rewritten wholesale on each append); -1 = none.
	PartialGen int `json:"partialGen"`
	// PartialSeq is the high-water mark of partial generations ever written
	// for this partition generation. It never decreases — superseded partial
	// files are deleted lazily (after concurrent readers finish), so a new
	// partial file must never reuse a path that may still be pending
	// deletion.
	PartialSeq int `json:"partialSeq,omitempty"`
}

// NewPartitionMeta returns an empty partition with the given schema.
func NewPartitionMeta(table string, partition int, schema vector.Schema, f Format) *PartitionMeta {
	f.fill()
	m := &PartitionMeta{Table: table, Partition: partition, Format: f, PartialGen: -1}
	for _, field := range schema {
		m.Cols = append(m.Cols, ColumnMeta{Name: field.Name, Type: field.Type})
	}
	return m
}

// Clone deep-copies the partition metadata (chunk list, per-column block
// directories). Writers that must not disturb concurrent readers mutate a
// clone and publish it with a pointer swap — the storage-side half of the
// engine's copy-on-write discipline (PDT masters are the RAM-side half).
func (m *PartitionMeta) Clone() *PartitionMeta {
	out := *m
	out.Chunks = append([]ChunkMeta(nil), m.Chunks...)
	out.Cols = make([]ColumnMeta, len(m.Cols))
	for i, c := range m.Cols {
		out.Cols[i] = c
		out.Cols[i].Blocks = append([]BlockMeta(nil), c.Blocks...)
	}
	return &out
}

// Schema reconstructs the partition schema.
func (m *PartitionMeta) Schema() vector.Schema {
	s := make(vector.Schema, len(m.Cols))
	for i, c := range m.Cols {
		s[i] = vector.Field{Name: c.Name, Type: c.Type}
	}
	return s
}

// Col returns the metadata of the named column.
func (m *PartitionMeta) Col(name string) (*ColumnMeta, error) {
	for i := range m.Cols {
		if m.Cols[i].Name == name {
			return &m.Cols[i], nil
		}
	}
	return nil, fmt.Errorf("colstore: %s.p%d has no column %q", m.Table, m.Partition, name)
}

// Dir returns the HDFS directory of the partition generation.
func (m *PartitionMeta) Dir() string {
	return fmt.Sprintf("/vectorh/%s/p%04d.g%d", m.Table, m.Partition, m.Gen)
}

// ChunkPath returns the HDFS path of a chunk file.
func (m *PartitionMeta) ChunkPath(id int) string {
	return fmt.Sprintf("%s/chunk%06d.dat", m.Dir(), id)
}

// PartialPath returns the HDFS path of the partial-chunk file generation.
func (m *PartitionMeta) PartialPath(gen int) string {
	return fmt.Sprintf("%s/partial%06d.dat", m.Dir(), gen)
}

// Files lists every live data file of the partition (dbAgent feeds these to
// the namenode to compute locality).
func (m *PartitionMeta) Files() []string {
	var out []string
	for _, c := range m.Chunks {
		out = append(out, m.ChunkPath(c.ID))
	}
	if m.PartialGen >= 0 {
		out = append(out, m.PartialPath(m.PartialGen))
	}
	return out
}

// StorageBytes sums the partition's uncompressed-size estimate and encoded
// on-disk bytes across every column — the observability feed for per-table
// compression-ratio gauges.
func (m *PartitionMeta) StorageBytes() (raw, encoded int64) {
	for i := range m.Cols {
		raw += m.Cols[i].RawBytes
		for j := range m.Cols[i].Blocks {
			encoded += int64(m.Cols[i].Blocks[j].Bytes)
		}
	}
	return raw, encoded
}

// Marshal serializes the metadata (stored in the WAL by the engine).
func (m *PartitionMeta) Marshal() ([]byte, error) { return json.Marshal(m) }

// UnmarshalPartitionMeta parses serialized metadata.
func UnmarshalPartitionMeta(data []byte) (*PartitionMeta, error) {
	var m PartitionMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("colstore: bad partition meta: %w", err)
	}
	return &m, nil
}

// RowRange is a half-open interval of row ids.
type RowRange struct {
	Start, End int64
}

// FullRange covers the whole partition.
func (m *PartitionMeta) FullRange() []RowRange {
	if m.Rows == 0 {
		return nil
	}
	return []RowRange{{0, m.Rows}}
}

// BlockPredicate decides from a block's MinMax summary whether the block may
// contain qualifying rows. Every predicate must qualify blocks whose summary
// was never computed (HasMinMax false): their zero-valued extremes carry no
// information, and skipping on them would silently drop rows.
type BlockPredicate func(b *BlockMeta) bool

// Int64RangePred returns a predicate for lo <= col <= hi on integer-backed
// columns (plain ints, dates, decimals).
func Int64RangePred(lo, hi int64) BlockPredicate {
	return func(b *BlockMeta) bool {
		return !b.HasMinMax || (b.NumMax >= lo && b.NumMin <= hi)
	}
}

// Float64RangePred returns a predicate for lo <= col <= hi on float64
// columns. Bounds are treated inclusively even for strict predicates — the
// summary can only prove absence, never row membership, so the slack is
// merely a block read, never a wrong result.
func Float64RangePred(lo, hi float64) BlockPredicate {
	return func(b *BlockMeta) bool {
		return !b.HasMinMax || (b.FloatMax >= lo && b.FloatMin <= hi)
	}
}

// StrRangePred returns a predicate for lo <= col <= hi on string columns;
// hasLo/hasHi leave a side unbounded (strings have no maximum value to use
// as a sentinel).
func StrRangePred(lo, hi string, hasLo, hasHi bool) BlockPredicate {
	return func(b *BlockMeta) bool {
		if !b.HasMinMax {
			return true
		}
		if hasLo && b.StrMax < lo {
			return false
		}
		if hasHi && b.StrMin > hi {
			return false
		}
		return true
	}
}

// QualifyingRanges returns the merged row ranges of the blocks of col whose
// MinMax summary passes pred — the data-skipping step of every MScan.
func (m *PartitionMeta) QualifyingRanges(col string, pred BlockPredicate) ([]RowRange, error) {
	c, err := m.Col(col)
	if err != nil {
		return nil, err
	}
	var out []RowRange
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Rows == 0 || !pred(b) {
			continue
		}
		r := RowRange{b.RowStart, b.RowStart + int64(b.Rows)}
		if n := len(out); n > 0 && out[n-1].End >= r.Start {
			if r.End > out[n-1].End {
				out[n-1].End = r.End
			}
		} else {
			out = append(out, r)
		}
	}
	return out, nil
}

// IntersectRanges intersects two sorted range lists (conjunction of
// predicates on different columns).
func IntersectRanges(a, b []RowRange) []RowRange {
	var out []RowRange
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max64(a[i].Start, b[j].Start)
		hi := min64(a[i].End, b[j].End)
		if lo < hi {
			out = append(out, RowRange{lo, hi})
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// RangesRows sums the row count covered by the ranges.
func RangesRows(rs []RowRange) int64 {
	var n int64
	for _, r := range rs {
		n += r.End - r.Start
	}
	return n
}

// Widen grows the MinMax summary of the block covering row sid with a new
// value, implementing the paper's cheap maintenance rule: "for inserts and
// modifies the Min and Max extremes can just be widened using the new
// values, without need to scan the old values".
func (m *PartitionMeta) Widen(col string, sid int64, numVal int64, floatVal float64, strVal string) error {
	c, err := m.Col(col)
	if err != nil {
		return err
	}
	i := sort.Search(len(c.Blocks), func(i int) bool {
		return c.Blocks[i].RowStart+int64(c.Blocks[i].Rows) > sid
	})
	if i >= len(c.Blocks) || c.Blocks[i].RowStart > sid {
		return nil // row not in any block (e.g. still PDT-resident)
	}
	b := &c.Blocks[i]
	if !b.HasMinMax {
		// Never-computed summary: widening would invent a [v,v] extreme that
		// excludes the block's actual (unknown) values. Leave it absent; the
		// block already qualifies for every predicate.
		return nil
	}
	switch c.Type.Kind {
	case vector.Int32, vector.Int64:
		if numVal < b.NumMin {
			b.NumMin = numVal
		}
		if numVal > b.NumMax {
			b.NumMax = numVal
		}
	case vector.Float64:
		if floatVal < b.FloatMin {
			b.FloatMin = floatVal
		}
		if floatVal > b.FloatMax {
			b.FloatMax = floatVal
		}
	case vector.String:
		if strVal < b.StrMin {
			b.StrMin = strVal
		}
		if strVal > b.StrMax {
			b.StrMax = strVal
		}
	}
	return nil
}

// DeleteFiles removes every data file of the partition from HDFS.
func (m *PartitionMeta) DeleteFiles(fs *hdfs.Cluster) error {
	for _, f := range m.Files() {
		if fs.Exists(f) {
			if err := fs.Delete(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
