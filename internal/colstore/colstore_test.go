package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"vectorh/internal/hdfs"
	"vectorh/internal/vector"
)

func testFS() *hdfs.Cluster {
	return hdfs.NewCluster([]string{"node1", "node2", "node3"}, hdfs.Config{BlockSize: 1 << 16, Replication: 2})
}

var testSchema = vector.Schema{
	{Name: "k", Type: vector.TInt64},
	{Name: "d", Type: vector.TDate},
	{Name: "price", Type: vector.TFloat64},
	{Name: "flag", Type: vector.TString},
}

// writeRows appends n deterministic rows and returns the generators used.
// Superseded files are deleted eagerly, as a caller without concurrent
// readers would.
func writeRows(t *testing.T, fs *hdfs.Cluster, meta *PartitionMeta, start, n int) {
	t.Helper()
	a, err := NewAppender(fs, meta, "node1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, f := range a.Superseded() {
			if fs.Exists(f) {
				if err := fs.Delete(f); err != nil {
					t.Fatal(err)
				}
			}
		}
	}()
	flags := []string{"A", "N", "R"}
	for off := 0; off < n; off += vector.MaxSize {
		cnt := n - off
		if cnt > vector.MaxSize {
			cnt = vector.MaxSize
		}
		b := vector.NewBatchForSchema(testSchema, cnt)
		for i := 0; i < cnt; i++ {
			row := start + off + i
			b.AppendRow(int64(row), int32(row/10), float64(row)*1.5, flags[row%3])
		}
		if err := a.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, fs *hdfs.Cluster, meta *PartitionMeta, cols []string, ranges []RowRange) [][]any {
	t.Helper()
	s, err := NewScanner(fs, meta, "node1", cols, ranges)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for {
		b, _, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return rows
		}
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.Row(i))
		}
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 5000)
	if meta.Rows != 5000 {
		t.Fatalf("Rows = %d", meta.Rows)
	}
	rows := scanAll(t, fs, meta, []string{"k", "d", "price", "flag"}, nil)
	if len(rows) != 5000 {
		t.Fatalf("scanned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].(int64) != int64(i) || r[1].(int32) != int32(i/10) ||
			r[2].(float64) != float64(i)*1.5 || r[3].(string) != []string{"A", "N", "R"}[i%3] {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestMultipleAppendsMergePartialBlocks(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 700)
	firstGen := meta.PartialGen
	if firstGen < 0 {
		t.Fatal("first append should leave a partial chunk")
	}
	writeRows(t, fs, meta, 700, 700)
	if meta.PartialGen == firstGen {
		t.Fatal("second append should supersede the partial chunk generation")
	}
	if fs.Exists(meta.PartialPath(firstGen)) {
		t.Fatal("old partial chunk file should be deleted")
	}
	rows := scanAll(t, fs, meta, []string{"k"}, nil)
	if len(rows) != 1400 {
		t.Fatalf("scanned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].(int64) != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestProjectionReadsOnlyRequestedColumns(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 3000)
	fs.ResetStats()
	scanAll(t, fs, meta, []string{"k"}, nil)
	one := fs.Stats().LocalBytesRead + fs.Stats().RemoteBytesRead
	fs.ResetStats()
	scanAll(t, fs, meta, []string{"k", "d", "price", "flag"}, nil)
	all := fs.Stats().LocalBytesRead + fs.Stats().RemoteBytesRead
	if one*2 >= all {
		t.Fatalf("projection should read far less: 1 col=%dB, 4 cols=%dB", one, all)
	}
}

func TestMinMaxSkippingReducesIO(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 2048, BlocksPerChunk: 8, MaxRowsPerBlock: 1024})
	writeRows(t, fs, meta, 0, 20000) // column k is sorted 0..19999
	ranges, err := meta.QualifyingRanges("k", Int64RangePred(0, 999))
	if err != nil {
		t.Fatal(err)
	}
	if got := RangesRows(ranges); got < 1000 || got > 4000 {
		t.Fatalf("qualifying rows = %d, want ~1000 (block granularity)", got)
	}
	fs.ResetStats()
	rows := scanAll(t, fs, meta, []string{"k", "price"}, ranges)
	skipped := fs.Stats().LocalBytesRead + fs.Stats().RemoteBytesRead
	found := 0
	for _, r := range rows {
		if r[0].(int64) <= 999 {
			found++
		}
	}
	if found != 1000 {
		t.Fatalf("found %d qualifying rows", found)
	}
	fs.ResetStats()
	scanAll(t, fs, meta, []string{"k", "price"}, nil)
	full := fs.Stats().LocalBytesRead + fs.Stats().RemoteBytesRead
	if skipped*3 >= full {
		t.Fatalf("skipping should save >3x IO: skipped=%dB full=%dB", skipped, full)
	}
}

func TestQualifyingRangesMergesAdjacentBlocks(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 2048, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 10000)
	ranges, err := meta.QualifyingRanges("k", Int64RangePred(0, 9999999))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 1 || ranges[0] != (RowRange{0, 10000}) {
		t.Fatalf("ranges = %v, want one merged full range", ranges)
	}
}

func TestIntersectRanges(t *testing.T) {
	a := []RowRange{{0, 10}, {20, 30}}
	b := []RowRange{{5, 25}}
	got := IntersectRanges(a, b)
	want := []RowRange{{5, 10}, {20, 25}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("intersect = %v", got)
	}
	if out := IntersectRanges(a, nil); out != nil {
		t.Fatalf("intersect with empty = %v", out)
	}
}

func TestMetaMarshalRoundTrip(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 3, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 2500)
	data, err := meta.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPartitionMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != meta.Rows || len(back.Cols) != len(meta.Cols) || back.PartialGen != meta.PartialGen {
		t.Fatal("meta round trip mismatch")
	}
	// And the reloaded meta must drive a correct scan.
	rows := scanAll(t, fs, back, []string{"k"}, nil)
	if len(rows) != 2500 {
		t.Fatalf("scan with reloaded meta: %d rows", len(rows))
	}
	if _, err := UnmarshalPartitionMeta([]byte("{")); err == nil {
		t.Fatal("bad json should fail")
	}
}

func TestWidenMinMax(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 2048, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 5000)
	before, _ := meta.QualifyingRanges("k", Int64RangePred(1000000, 2000000))
	if RangesRows(before) != 0 {
		t.Fatal("value range should not qualify before widening")
	}
	if err := meta.Widen("k", 2500, 1500000, 0, ""); err != nil {
		t.Fatal(err)
	}
	after, _ := meta.QualifyingRanges("k", Int64RangePred(1000000, 2000000))
	if RangesRows(after) == 0 {
		t.Fatal("widened block should qualify")
	}
}

func TestScannerUnknownColumn(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 100)
	if _, err := NewScanner(fs, meta, "node1", []string{"nope"}, nil); err == nil {
		t.Fatal("unknown column should fail")
	}
}

func TestEmptyPartitionScan(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	s, err := NewScanner(fs, meta, "node1", []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Next()
	if err != nil || b != nil {
		t.Fatalf("empty scan: %v %v", b, err)
	}
}

func TestThinColumnOccupiesFewBlocks(t *testing.T) {
	// The Figure-1 design point: a highly compressible column packs into
	// very few full blocks rather than being split by row count.
	fs := testFS()
	schema := vector.Schema{{Name: "wide", Type: vector.TString}, {Name: "thin", Type: vector.TInt64}}
	meta := NewPartitionMeta("t", 0, schema, Format{BlockSize: 4096, BlocksPerChunk: 64})
	a, err := NewAppender(fs, meta, "node1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for off := 0; off < 40000; off += vector.MaxSize {
		b := vector.NewBatchForSchema(schema, vector.MaxSize)
		for i := 0; i < vector.MaxSize; i++ {
			b.AppendRow(fmt.Sprintf("wide-unique-string-%d-%d", off+i, rng.Int()), int64(1))
		}
		if err := a.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	wide, _ := meta.Col("wide")
	thin, _ := meta.Col("thin")
	if len(thin.Blocks)*4 > len(wide.Blocks) {
		t.Fatalf("thin column has %d blocks vs wide %d; expected far fewer", len(thin.Blocks), len(wide.Blocks))
	}
}

func TestChunkFileRotation(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 1024, BlocksPerChunk: 4})
	writeRows(t, fs, meta, 0, 30000)
	if len(meta.Chunks) < 2 {
		t.Fatalf("expected multiple chunk files, got %d", len(meta.Chunks))
	}
	for _, c := range meta.Chunks {
		if c.Slots > 4 {
			t.Fatalf("chunk %d has %d slots, cap 4", c.ID, c.Slots)
		}
		if !fs.Exists(meta.ChunkPath(c.ID)) {
			t.Fatalf("chunk file %d missing", c.ID)
		}
	}
}

func TestDeleteFiles(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 2000)
	if len(meta.Files()) == 0 {
		t.Fatal("no files recorded")
	}
	if err := meta.DeleteFiles(fs); err != nil {
		t.Fatal(err)
	}
	for _, f := range meta.Files() {
		if fs.Exists(f) {
			t.Fatalf("file %s survived DeleteFiles", f)
		}
	}
}

func TestAppenderWritesLandOnWriterNode(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 3000)
	for _, f := range meta.Files() {
		locs, err := fs.BlockLocations(f)
		if err != nil {
			t.Fatal(err)
		}
		for bi, l := range locs {
			if l[0] != "node1" {
				t.Fatalf("file %s block %d first replica on %s, want writer node1", f, bi, l[0])
			}
		}
	}
	// Therefore a scan from node1 is fully short-circuit.
	fs.ResetStats()
	scanAll(t, fs, meta, []string{"k", "price"}, nil)
	if s := fs.Stats(); s.RemoteBytesRead != 0 || s.LocalBytesRead == 0 {
		t.Fatalf("scan from writer should be fully local: %+v", s)
	}
}

// TestPerKindMinMaxRecordedAndSkipping verifies every column kind gets a
// usable MinMax summary at append time — float64 and string summaries are
// consulted for skipping, not just the int64 ones.
func TestPerKindMinMaxRecordedAndSkipping(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 5000)
	for _, col := range []string{"k", "d", "price", "flag"} {
		c, err := meta.Col(col)
		if err != nil {
			t.Fatal(err)
		}
		for bi := range c.Blocks {
			if !c.Blocks[bi].HasMinMax {
				t.Fatalf("column %s block %d has no MinMax summary", col, bi)
			}
		}
	}
	// Float skipping: price = row*1.5, so [1500, 3000) covers rows 1000..2000.
	ranges, err := meta.QualifyingRanges("price", Float64RangePred(1500, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if n := RangesRows(ranges); n == 0 || n >= 5000 {
		t.Fatalf("float MinMax should narrow the scan: %d of 5000 rows qualify", n)
	}
	rows := scanAll(t, fs, meta, []string{"price"}, ranges)
	covered := make(map[float64]bool, len(rows))
	for _, r := range rows {
		covered[r[0].(float64)] = true
	}
	for v := 1500.0; v <= 3000.0; v += 1.5 {
		if !covered[v] {
			t.Fatalf("float skipping dropped qualifying value %v", v)
		}
	}
	// String skipping: flag cycles A/N/R in every block, so ["A","A"] can
	// prune nothing — but a range above "R" must prune everything.
	ranges, err = meta.QualifyingRanges("flag", StrRangePred("S", "Z", true, true))
	if err != nil {
		t.Fatal(err)
	}
	if RangesRows(ranges) != 0 {
		t.Fatalf("string range beyond the data should skip all blocks, got %d rows", RangesRows(ranges))
	}
}

// TestAbsentMinMaxAlwaysQualifies is the regression test for silently
// skipping blocks whose MinMax summary was never computed or widened:
// legacy metadata (no mm flag) has zero-valued extremes that look like a
// real [0,0] summary, and a predicate like k in [lo,hi] with lo > 0 used
// to skip such blocks — dropping their rows. It also plants a zero-row
// tail block in the directory, which must neither qualify rows nor break
// the scan.
func TestAbsentMinMaxAlwaysQualifies(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 3000)
	// Simulate legacy metadata: strip every summary of column k.
	c, err := meta.Col("k")
	if err != nil {
		t.Fatal(err)
	}
	for bi := range c.Blocks {
		b := &c.Blocks[bi]
		b.HasMinMax = false
		b.NumMin, b.NumMax = 0, 0
	}
	// Zero-row tail block (e.g. from a hand-built or truncated directory).
	c.Blocks = append(c.Blocks, BlockMeta{Chunk: -1, Slot: 0, RowStart: 3000, Rows: 0})
	ranges, err := meta.QualifyingRanges("k", Int64RangePred(1000, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if n := RangesRows(ranges); n != 3000 {
		t.Fatalf("absent summaries must qualify every (non-empty) block: %d of 3000 rows", n)
	}
	rows := scanAll(t, fs, meta, []string{"k"}, ranges)
	if len(rows) != 3000 {
		t.Fatalf("scan over absent-summary ranges returned %d rows, want 3000", len(rows))
	}
	// Widening an absent summary must keep it absent (a [v,v] summary would
	// wrongly exclude the block's other, unknown values).
	if err := meta.Widen("k", 10, 42, 0, ""); err != nil {
		t.Fatal(err)
	}
	if c.Blocks[0].HasMinMax {
		t.Fatal("Widen invented a summary for a block whose extremes are unknown")
	}
}

// TestScannerSpanAPI exercises the late-materialization primitives: spans
// clamped on a lead column, dense decode, selective gather, and the IO
// counters that prove untouched columns stay untouched.
func TestScannerSpanAPI(t *testing.T) {
	fs := testFS()
	meta := NewPartitionMeta("t", 0, testSchema, Format{BlockSize: 4096, BlocksPerChunk: 8})
	writeRows(t, fs, meta, 0, 4000)
	s, err := NewScanner(fs, meta, "node1", []string{"k", "price", "flag"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	var gatheredPrices []float64
	for {
		start, n, err := s.NextSpan([]int{0}) // clamp on k only
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		kv, err := s.ColVec(0, start, n)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, kv.Int64s()...)
		// Gather price for every 10th row of the span.
		var sel []int32
		for i := 0; i < n; i += 10 {
			sel = append(sel, int32(i))
		}
		pv, err := s.GatherCol(1, start, sel)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pv.Float64s() {
			if want := float64(start+int64(sel[i])) * 1.5; p != want {
				t.Fatalf("gathered price %v, want %v", p, want)
			}
		}
		gatheredPrices = append(gatheredPrices, pv.Float64s()...)
	}
	for i, k := range got {
		if k != int64(i) {
			t.Fatalf("span scan row %d = %d", i, k)
		}
	}
	if len(gatheredPrices) == 0 {
		t.Fatal("no prices gathered")
	}
	// The flag column (slot 2) was never requested: the stats must show
	// fewer blocks than a full three-column scan would read.
	st := s.Stats()
	if st.BlocksRead == 0 || st.BytesDecoded == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
	full, err := NewScanner(fs, meta, "node1", []string{"k", "price", "flag"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, _, err := full.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
	}
	if full.Stats().BlocksRead <= st.BlocksRead {
		t.Fatalf("never-touched columns must not be decoded: subset=%d blocks, full=%d blocks",
			st.BlocksRead, full.Stats().BlocksRead)
	}
}
