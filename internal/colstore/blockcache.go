package colstore

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BlockCache is a shared cache of decoded column blocks, keyed by the
// immutable identity of a block's compressed payload: the chunk (or partial)
// file path plus the byte offset and length of the payload inside it. Chunk
// files are append-only and partial files are never rewritten in place (a
// superseded partial gets a new generation path), so an entry can never go
// stale — at worst it describes a file no generation references anymore, and
// the LRU bound reclaims it.
//
// One instance hangs off the engine and is shared by every concurrent scan:
// under a multi-session workload the same TPC-H blocks are decoded once and
// then served as zero-copy slices to every query, instead of being
// re-decompressed (PFOR/PFOR-DELTA/PDICT) per scanner. Decoded columns are
// immutable by construction — scans, PDT merges and exchanges all copy
// before mutating — which is what makes cross-query sharing safe.
type BlockCache struct {
	mu      sync.Mutex
	capB    int64
	sizeB   int64
	entries map[blockKey]*list.Element
	lru     *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type blockKey struct {
	path  string
	off   int64
	bytes int
}

type blockEntry struct {
	key   blockKey
	data  colData
	bytes int64 // approximate decoded footprint
}

// BlockCacheStats is a point-in-time snapshot of cache effectiveness.
type BlockCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64
}

// NewBlockCache creates a cache bounded to roughly capBytes of decoded
// column data.
func NewBlockCache(capBytes int64) *BlockCache {
	return &BlockCache{
		capB:    capBytes,
		entries: make(map[blockKey]*list.Element),
		lru:     list.New(),
	}
}

// Stats returns the cache's cumulative counters and current footprint.
func (c *BlockCache) Stats() BlockCacheStats {
	c.mu.Lock()
	size := c.sizeB
	c.mu.Unlock()
	return BlockCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     size,
	}
}

func (c *BlockCache) get(k blockKey) (colData, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return colData{}, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*blockEntry).data, true
}

func (c *BlockCache) put(k blockKey, d colData) {
	sz := approxColBytes(d)
	if sz > c.capB {
		return // a single oversized block would evict everything for nothing
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		return
	}
	c.entries[k] = c.lru.PushFront(&blockEntry{key: k, data: d, bytes: sz})
	c.sizeB += sz
	for c.sizeB > c.capB {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*blockEntry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.sizeB -= ev.bytes
		c.evictions.Add(1)
	}
}

// approxColBytes estimates the in-memory footprint of decoded column data.
// A code-form block is charged its dictionary plus the code stream it will
// occupy once unpacked (codes are memoized on the shared block handle).
func approxColBytes(d colData) int64 {
	n := int64(len(d.i64))*8 + int64(len(d.f64))*8
	for _, s := range d.str {
		n += int64(len(s)) + 16
	}
	if d.pd != nil {
		n += int64(d.pd.Rows())*4 + strSliceBytes(d.pd.Dict.Values)
	}
	return n
}
