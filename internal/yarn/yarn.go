// Package yarn simulates the slice of Hadoop YARN that VectorH negotiates
// with (§4 of the paper): a ResourceManager tracking per-node memory and
// core budgets, applications holding containers, and priority-based
// preemption. VectorH itself runs *out-of-band*: real server processes stay
// outside the containers, which are dummies whose only job is to reserve
// resources and report liveness — the dbAgent in this package reproduces
// that arrangement.
package yarn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Resource is a YARN resource vector.
type Resource struct {
	MemoryMB int
	VCores   int
}

// Add returns r + o.
func (r Resource) Add(o Resource) Resource {
	return Resource{r.MemoryMB + o.MemoryMB, r.VCores + o.VCores}
}

// Sub returns r - o.
func (r Resource) Sub(o Resource) Resource {
	return Resource{r.MemoryMB - o.MemoryMB, r.VCores - o.VCores}
}

// Fits reports whether r fits within budget.
func (r Resource) Fits(budget Resource) bool {
	return r.MemoryMB <= budget.MemoryMB && r.VCores <= budget.VCores
}

// Zero reports whether the resource is empty.
func (r Resource) Zero() bool { return r.MemoryMB <= 0 && r.VCores <= 0 }

// String renders like "4096MB/8c".
func (r Resource) String() string { return fmt.Sprintf("%dMB/%dc", r.MemoryMB, r.VCores) }

// AppID identifies an application.
type AppID int

// ContainerID identifies a container.
type ContainerID int

// Container is an allocated resource slice on one node. VectorH containers
// are dummies; OnKill lets the owner (dbAgent) observe preemption.
type Container struct {
	ID     ContainerID
	App    AppID
	Node   string
	Res    Resource
	OnKill func(*Container)

	killed bool
}

// Killed reports whether the container was preempted or released.
func (c *Container) Killed() bool { return c.killed }

// Application groups containers under one priority.
type Application struct {
	ID       AppID
	Name     string
	Priority int // higher preempts lower

	containers map[ContainerID]*Container
}

// Containers lists the application's live containers.
func (a *Application) Containers() []*Container {
	var out []*Container
	for _, c := range a.containers {
		out = append(out, c)
	}
	return out
}

// NodeReport is the cluster node information dbAgent asks the RM for.
type NodeReport struct {
	Name      string
	Total     Resource
	Used      Resource
	Available Resource
}

type nodeState struct {
	name  string
	total Resource
	used  Resource
}

// ResourceManager is the simulated YARN RM.
type ResourceManager struct {
	mu      sync.Mutex
	nodes   map[string]*nodeState
	order   []string
	apps    map[AppID]*Application
	nextApp AppID
	nextCtr ContainerID
}

// Errors returned by the resource manager.
var (
	ErrNoNode       = errors.New("yarn: unknown node")
	ErrInsufficient = errors.New("yarn: insufficient resources")
)

// NewResourceManager returns an empty RM.
func NewResourceManager() *ResourceManager {
	return &ResourceManager{nodes: make(map[string]*nodeState), apps: make(map[AppID]*Application)}
}

// AddNode registers a NodeManager with its total capacity.
func (rm *ResourceManager) AddNode(name string, total Resource) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if _, ok := rm.nodes[name]; !ok {
		rm.order = append(rm.order, name)
	}
	rm.nodes[name] = &nodeState{name: name, total: total}
}

// RemoveNode drops a node, killing every container on it.
func (rm *ResourceManager) RemoveNode(name string) {
	rm.mu.Lock()
	victims := rm.containersOnLocked(name)
	delete(rm.nodes, name)
	for i, n := range rm.order {
		if n == name {
			rm.order = append(rm.order[:i], rm.order[i+1:]...)
			break
		}
	}
	rm.mu.Unlock()
	for _, c := range victims {
		rm.kill(c)
	}
}

func (rm *ResourceManager) containersOnLocked(node string) []*Container {
	var out []*Container
	for _, app := range rm.apps {
		for _, c := range app.containers {
			if c.Node == node && !c.killed {
				out = append(out, c)
			}
		}
	}
	return out
}

// NodeReports returns the per-node capacity snapshot.
func (rm *ResourceManager) NodeReports() []NodeReport {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]NodeReport, 0, len(rm.order))
	for _, name := range rm.order {
		ns := rm.nodes[name]
		out = append(out, NodeReport{
			Name:      name,
			Total:     ns.total,
			Used:      ns.used,
			Available: ns.total.Sub(ns.used),
		})
	}
	return out
}

// Submit registers an application (the AM) with a scheduling priority.
func (rm *ResourceManager) Submit(name string, priority int) *Application {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.nextApp++
	app := &Application{ID: rm.nextApp, Name: name, Priority: priority, containers: make(map[ContainerID]*Container)}
	rm.apps[app.ID] = app
	return app
}

// Allocate grants a container of res on node, or ErrInsufficient.
func (rm *ResourceManager) Allocate(app *Application, node string, res Resource) (*Container, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	ns, ok := rm.nodes[node]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, node)
	}
	if !res.Fits(ns.total.Sub(ns.used)) {
		return nil, fmt.Errorf("%w: %s on %s (avail %s)", ErrInsufficient, res, node, ns.total.Sub(ns.used))
	}
	rm.nextCtr++
	c := &Container{ID: rm.nextCtr, App: app.ID, Node: node, Res: res}
	ns.used = ns.used.Add(res)
	app.containers[c.ID] = c
	return c, nil
}

// Release returns a container's resources voluntarily (no OnKill callback).
func (rm *ResourceManager) Release(c *Container) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.releaseLocked(c)
}

func (rm *ResourceManager) releaseLocked(c *Container) {
	if c.killed {
		return
	}
	c.killed = true
	if ns, ok := rm.nodes[c.Node]; ok {
		ns.used = ns.used.Sub(c.Res)
	}
	if app, ok := rm.apps[c.App]; ok {
		delete(app.containers, c.ID)
	}
}

func (rm *ResourceManager) kill(c *Container) {
	rm.mu.Lock()
	rm.releaseLocked(c)
	cb := c.OnKill
	rm.mu.Unlock()
	if cb != nil {
		cb(c)
	}
}

// AllocateWithPreemption grants a container for a high-priority application,
// preempting lower-priority containers on the node (lowest priority, then
// newest first) until the request fits. It returns the container and the
// victims killed.
func (rm *ResourceManager) AllocateWithPreemption(app *Application, node string, res Resource) (*Container, []*Container, error) {
	//lint:unlock OnKill callbacks must run outside rm.mu (they re-enter the RM); every branch unlocks before invoking them
	rm.mu.Lock()
	ns, ok := rm.nodes[node]
	if !ok {
		rm.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrNoNode, node)
	}
	var victims []*Container
	if !res.Fits(ns.total.Sub(ns.used)) {
		candidates := rm.containersOnLocked(node)
		sort.Slice(candidates, func(i, j int) bool {
			pi := rm.apps[candidates[i].App].Priority
			pj := rm.apps[candidates[j].App].Priority
			if pi != pj {
				return pi < pj
			}
			return candidates[i].ID > candidates[j].ID
		})
		for _, victim := range candidates {
			if rm.apps[victim.App].Priority >= app.Priority {
				break
			}
			victims = append(victims, victim)
			rm.releaseLocked(victim)
			if res.Fits(ns.total.Sub(ns.used)) {
				break
			}
		}
	}
	if !res.Fits(ns.total.Sub(ns.used)) {
		rm.mu.Unlock()
		// Re-kill already released victims' callbacks anyway: YARN has
		// no un-preempt; they were killed.
		for _, v := range victims {
			if v.OnKill != nil {
				v.OnKill(v)
			}
		}
		return nil, victims, fmt.Errorf("%w even after preemption: %s on %s", ErrInsufficient, res, node)
	}
	rm.nextCtr++
	c := &Container{ID: rm.nextCtr, App: app.ID, Node: node, Res: res}
	ns.used = ns.used.Add(res)
	app.containers[c.ID] = c
	rm.mu.Unlock()
	for _, v := range victims {
		if v.OnKill != nil {
			v.OnKill(v)
		}
	}
	return c, victims, nil
}
