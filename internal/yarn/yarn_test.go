package yarn

import (
	"fmt"
	"testing"
)

func newRM(nodes int, total Resource) *ResourceManager {
	rm := NewResourceManager()
	for i := 0; i < nodes; i++ {
		rm.AddNode(fmt.Sprintf("node%d", i+1), total)
	}
	return rm
}

func TestResourceArithmetic(t *testing.T) {
	a := Resource{1000, 4}
	b := Resource{400, 2}
	if got := a.Add(b); got != (Resource{1400, 6}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resource{600, 2}) {
		t.Fatalf("Sub = %v", got)
	}
	if !b.Fits(a) || a.Fits(b) {
		t.Fatal("Fits broken")
	}
	if !(Resource{}).Zero() || a.Zero() {
		t.Fatal("Zero broken")
	}
	if a.String() != "1000MB/4c" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestAllocateAndRelease(t *testing.T) {
	rm := newRM(2, Resource{1000, 10})
	app := rm.Submit("job", 1)
	c, err := rm.Allocate(app, "node1", Resource{400, 4})
	if err != nil {
		t.Fatal(err)
	}
	reports := rm.NodeReports()
	if reports[0].Used != (Resource{400, 4}) || reports[0].Available != (Resource{600, 6}) {
		t.Fatalf("reports = %+v", reports[0])
	}
	rm.Release(c)
	if rm.NodeReports()[0].Used != (Resource{}) {
		t.Fatal("release did not return resources")
	}
	if !c.Killed() {
		t.Fatal("released container should be marked killed")
	}
}

func TestAllocateInsufficientFails(t *testing.T) {
	rm := newRM(1, Resource{100, 1})
	app := rm.Submit("job", 1)
	if _, err := rm.Allocate(app, "node1", Resource{200, 1}); err == nil {
		t.Fatal("oversized allocation should fail")
	}
	if _, err := rm.Allocate(app, "ghost", Resource{1, 1}); err == nil {
		t.Fatal("unknown node should fail")
	}
}

func TestPreemptionKillsLowestPriorityFirst(t *testing.T) {
	rm := newRM(1, Resource{1000, 10})
	low := rm.Submit("low", 1)
	mid := rm.Submit("mid", 5)
	hi := rm.Submit("hi", 9)

	killedIDs := map[ContainerID]bool{}
	mk := func(app *Application, res Resource) *Container {
		c, err := rm.Allocate(app, "node1", res)
		if err != nil {
			t.Fatal(err)
		}
		c.OnKill = func(v *Container) { killedIDs[v.ID] = true }
		return c
	}
	cl := mk(low, Resource{400, 4})
	cm := mk(mid, Resource{400, 4})

	// hi wants 700MB: must kill low (freeing 400) and then mid.
	_, victims, err := rm.AllocateWithPreemption(hi, "node1", Resource{700, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 2 || victims[0].ID != cl.ID || victims[1].ID != cm.ID {
		t.Fatalf("victims = %v", victims)
	}
	if !killedIDs[cl.ID] || !killedIDs[cm.ID] {
		t.Fatal("OnKill not invoked")
	}
}

func TestPreemptionWillNotKillEqualPriority(t *testing.T) {
	rm := newRM(1, Resource{100, 1})
	a := rm.Submit("a", 5)
	b := rm.Submit("b", 5)
	if _, err := rm.Allocate(a, "node1", Resource{100, 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rm.AllocateWithPreemption(b, "node1", Resource{50, 1}); err == nil {
		t.Fatal("equal priority should not be preempted")
	}
}

func TestRemoveNodeKillsContainers(t *testing.T) {
	rm := newRM(2, Resource{100, 2})
	app := rm.Submit("job", 1)
	c, _ := rm.Allocate(app, "node1", Resource{50, 1})
	killed := false
	c.OnKill = func(*Container) { killed = true }
	rm.RemoveNode("node1")
	if !killed {
		t.Fatal("container on removed node should be killed")
	}
	if len(rm.NodeReports()) != 1 {
		t.Fatal("node report still lists removed node")
	}
}

func TestDBAgentStartAndGrow(t *testing.T) {
	rm := newRM(3, Resource{1600, 16})
	slice := Resource{400, 4}
	agent := NewDBAgent(rm, 5, slice, Resource{1600, 16}, Resource{400, 4})
	workers, err := agent.SelectWorkers([]string{"node1", "node2", "node3"}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 {
		t.Fatalf("workers = %v", workers)
	}
	if err := agent.Start(workers); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if got := agent.Footprint(w); got != (Resource{1600, 16}) {
			t.Fatalf("footprint on %s = %v", w, got)
		}
	}
}

func TestDBAgentSelectWorkersByLocality(t *testing.T) {
	rm := newRM(4, Resource{1000, 8})
	agent := NewDBAgent(rm, 5, Resource{250, 2}, Resource{1000, 8}, Resource{250, 2})
	score := map[string]int{"node1": 1, "node2": 9, "node3": 5, "node4": 9}
	workers, err := agent.SelectWorkers([]string{"node1", "node2", "node3", "node4"}, 3,
		func(n string) int { return score[n] })
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"node2", "node4", "node3"}
	for i := range want {
		if workers[i] != want[i] {
			t.Fatalf("workers = %v, want %v", workers, want)
		}
	}
}

func TestDBAgentWorkerSetShrinksWhenNodesBusy(t *testing.T) {
	rm := newRM(3, Resource{1000, 8})
	other := rm.Submit("tenant", 9)
	// Fill node2 and node3 completely.
	rm.Allocate(other, "node2", Resource{1000, 8})
	rm.Allocate(other, "node3", Resource{1000, 8})
	agent := NewDBAgent(rm, 5, Resource{500, 4}, Resource{1000, 8}, Resource{500, 4})
	workers, err := agent.SelectWorkers([]string{"node1", "node2", "node3"}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 1 || workers[0] != "node1" {
		t.Fatalf("workers = %v, want [node1]", workers)
	}
}

func TestDBAgentPreemptionAndRegrow(t *testing.T) {
	rm := newRM(1, Resource{1000, 8})
	slice := Resource{250, 2}
	agent := NewDBAgent(rm, 2, slice, Resource{1000, 8}, slice)
	var lastNode string
	var lastGrant Resource
	agent.OnFootprintChange = func(n string, r Resource) { lastNode, lastGrant = n, r }
	if err := agent.Start([]string{"node1"}); err != nil {
		t.Fatal(err)
	}
	if agent.Footprint("node1") != (Resource{1000, 8}) {
		t.Fatal("did not reach target")
	}

	// A higher-priority tenant takes half the node.
	tenant := rm.Submit("etl", 9)
	if _, _, err := rm.AllocateWithPreemption(tenant, "node1", Resource{500, 4}); err != nil {
		t.Fatal(err)
	}
	if got := agent.Footprint("node1"); got != (Resource{500, 4}) {
		t.Fatalf("footprint after preemption = %v", got)
	}
	if lastNode != "node1" || lastGrant != (Resource{500, 4}) {
		t.Fatalf("session master not notified: %s %v", lastNode, lastGrant)
	}

	// Tenant leaves; the periodic re-negotiation climbs back to target.
	for _, c := range collectContainers(tenant) {
		rm.Release(c)
	}
	if got := agent.GrowToTarget("node1"); got != (Resource{1000, 8}) {
		t.Fatalf("regrow footprint = %v", got)
	}
}

func collectContainers(app *Application) []*Container {
	var out []*Container
	for _, c := range app.containers {
		out = append(out, c)
	}
	return out
}

func TestDBAgentShrinkTo(t *testing.T) {
	rm := newRM(1, Resource{800, 8})
	slice := Resource{200, 2}
	agent := NewDBAgent(rm, 5, slice, Resource{800, 8}, slice)
	agent.Start([]string{"node1"})
	got := agent.ShrinkTo("node1", Resource{400, 4})
	if got != (Resource{400, 4}) {
		t.Fatalf("shrink = %v", got)
	}
	if rm.NodeReports()[0].Used != (Resource{400, 4}) {
		t.Fatal("RM did not get resources back")
	}
	agent.Stop()
	if rm.NodeReports()[0].Used != (Resource{}) {
		t.Fatal("Stop did not release everything")
	}
}

func TestDBAgentStartFailsBelowMinimum(t *testing.T) {
	rm := newRM(1, Resource{100, 1})
	agent := NewDBAgent(rm, 5, Resource{200, 2}, Resource{400, 4}, Resource{200, 2})
	if err := agent.Start([]string{"node1"}); err == nil {
		t.Fatal("start below minimum should fail")
	}
}
