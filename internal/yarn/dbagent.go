package yarn

import (
	"fmt"
	"sort"
	"sync"
)

// DBAgent is VectorH's out-of-band YARN client (§4): it negotiates resource
// slices for the worker set via dummy containers, grows back toward the
// configured target after preemption, and notifies the session master (via
// OnFootprintChange) whenever the per-node footprint changes so workload
// management can adapt cores/memory.
type DBAgent struct {
	rm  *ResourceManager
	app *Application

	mu sync.Mutex
	// Per-node slice configuration.
	slice      Resource // granularity of one dummy container
	target     Resource // desired per-node footprint
	minimum    Resource // below this, the node (and startup) fails
	workers    []string
	containers map[string][]*Container

	// OnFootprintChange is invoked (outside the agent lock) with the node
	// and its new granted footprint after any growth or preemption.
	OnFootprintChange func(node string, granted Resource)
}

// NewDBAgent registers the VectorH application with the RM at the given
// priority and returns the agent. Slice is the container granularity;
// target and minimum are per-node footprints.
func NewDBAgent(rm *ResourceManager, priority int, slice, target, minimum Resource) *DBAgent {
	return &DBAgent{
		rm:         rm,
		app:        rm.Submit("vectorh", priority),
		slice:      slice,
		target:     target,
		minimum:    minimum,
		containers: make(map[string][]*Container),
	}
}

// SelectWorkers picks the n viable nodes with the highest locality score
// (ties broken by name) that can currently fit at least the minimum
// footprint. It is the resource-availability half of worker-set selection;
// data locality scores come from the affinity package.
func (a *DBAgent) SelectWorkers(viable []string, n int, localityScore func(node string) int) ([]string, error) {
	reports := a.rm.NodeReports()
	avail := make(map[string]Resource, len(reports))
	for _, r := range reports {
		avail[r.Name] = r.Available
	}
	type cand struct {
		name  string
		score int
	}
	var cands []cand
	for _, v := range viable {
		if res, ok := avail[v]; ok && a.minimum.Fits(res) {
			score := 0
			if localityScore != nil {
				score = localityScore(v)
			}
			cands = append(cands, cand{v, score})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) == 0 {
		return nil, fmt.Errorf("yarn: no viable node can fit the minimum footprint %s", a.minimum)
	}
	if len(cands) < n {
		n = len(cands) // worker set shrinks, as in Figure 2
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].name
	}
	return out, nil
}

// Start acquires at least the minimum footprint on every worker and then
// grows toward the target. It fails if any worker cannot grant the minimum.
func (a *DBAgent) Start(workers []string) error {
	a.mu.Lock()
	a.workers = append([]string(nil), workers...)
	a.mu.Unlock()
	for _, w := range workers {
		if granted := a.GrowToTarget(w); !a.minimum.Fits(granted) {
			return fmt.Errorf("yarn: node %s granted only %s, below minimum %s", w, granted, a.minimum)
		}
	}
	return nil
}

// GrowToTarget allocates additional slices on the node until the target
// footprint (or the RM's limit) is reached, returning the granted footprint.
// VectorH calls this periodically to climb back after preemption.
func (a *DBAgent) GrowToTarget(node string) Resource {
	for {
		a.mu.Lock()
		roomForSlice := a.footprintLocked(node).Add(a.slice).Fits(a.target)
		a.mu.Unlock()
		if !roomForSlice {
			break
		}
		c, err := a.rm.Allocate(a.app, node, a.slice)
		if err != nil {
			break
		}
		c.OnKill = a.onPreempt
		a.mu.Lock()
		a.containers[node] = append(a.containers[node], c)
		a.mu.Unlock()
	}
	granted := a.Footprint(node)
	a.notify(node, granted)
	return granted
}

// Footprint returns the currently granted footprint on a node.
func (a *DBAgent) Footprint(node string) Resource {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.footprintLocked(node)
}

func (a *DBAgent) footprintLocked(node string) Resource {
	var total Resource
	for _, c := range a.containers[node] {
		if !c.Killed() {
			total = total.Add(c.Res)
		}
	}
	return total
}

// ShrinkTo voluntarily releases slices on a node down to the given footprint
// (VectorH's automatic-footprint self-regulation).
func (a *DBAgent) ShrinkTo(node string, want Resource) Resource {
	a.mu.Lock()
	var keep []*Container
	var have Resource
	var toRelease []*Container
	for _, c := range a.containers[node] {
		if c.Killed() {
			continue
		}
		if have.Add(c.Res).Fits(want) {
			have = have.Add(c.Res)
			keep = append(keep, c)
		} else {
			toRelease = append(toRelease, c)
		}
	}
	a.containers[node] = keep
	a.mu.Unlock()
	for _, c := range toRelease {
		a.rm.Release(c)
	}
	a.notify(node, have)
	return have
}

// Workers returns the current worker set.
func (a *DBAgent) Workers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.workers...)
}

// onPreempt is the dummy-container kill callback: it prunes the container
// and tells the session master about the reduced footprint.
func (a *DBAgent) onPreempt(victim *Container) {
	a.mu.Lock()
	cs := a.containers[victim.Node]
	for i, c := range cs {
		if c.ID == victim.ID {
			a.containers[victim.Node] = append(cs[:i], cs[i+1:]...)
			break
		}
	}
	granted := a.footprintLocked(victim.Node)
	a.mu.Unlock()
	a.notify(victim.Node, granted)
}

func (a *DBAgent) notify(node string, granted Resource) {
	if a.OnFootprintChange != nil {
		a.OnFootprintChange(node, granted)
	}
}

// Stop releases every container.
func (a *DBAgent) Stop() {
	a.mu.Lock()
	var all []*Container
	for _, cs := range a.containers {
		all = append(all, cs...)
	}
	a.containers = make(map[string][]*Container)
	a.mu.Unlock()
	for _, c := range all {
		a.rm.Release(c)
	}
}
