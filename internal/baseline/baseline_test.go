package baseline

import (
	"testing"

	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

var schema = vector.Schema{
	{Name: "k", Type: vector.TInt64},
	{Name: "g", Type: vector.TString},
	{Name: "v", Type: vector.TFloat64},
}

func loaded(t *testing.T, f Flavor) *Engine {
	t.Helper()
	e := New(f)
	b := vector.NewBatchForSchema(schema, 1000)
	for i := 0; i < 1000; i++ {
		b.AppendRow(int64(i), []string{"a", "b"}[i%2], float64(i))
	}
	if err := e.Load("t", schema, b); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestScanFilterAggregate(t *testing.T) {
	for _, f := range []Flavor{HAWQ, SparkSQL, Impala, Hive} {
		e := loaded(t, f)
		q := plan.Aggregate(
			plan.Filter(plan.Scan("t"), plan.LT(plan.Col("k"), plan.Int(100))),
			[]string{"g"},
			plan.A("s", plan.Sum, plan.Col("v")), plan.AStar("n"))
		rows, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: groups = %d", f, len(rows))
		}
		for _, r := range rows {
			if r[2].(int64) != 50 {
				t.Fatalf("%s: group %v", f, r)
			}
		}
	}
}

func TestJoinAndOrderBy(t *testing.T) {
	e := loaded(t, Hive)
	dim := vector.NewBatchForSchema(vector.Schema{
		{Name: "dk", Type: vector.TString}, {Name: "label", Type: vector.TString},
	}, 2)
	dim.AppendRow("a", "Alpha")
	dim.AppendRow("b", "Beta")
	if err := e.Load("dim", vector.Schema{
		{Name: "dk", Type: vector.TString}, {Name: "label", Type: vector.TString},
	}, dim); err != nil {
		t.Fatal(err)
	}
	q := plan.Top(
		plan.Join(plan.InnerJoin, plan.Scan("t"), plan.Scan("dim"), []string{"g"}, []string{"dk"}),
		3, plan.Desc(plan.Col("k")))
	rows, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].(int64) != 999 || rows[0][4].(string) != "Beta" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOnlyHiveAcceptsUpdates(t *testing.T) {
	for _, f := range []Flavor{HAWQ, SparkSQL, Impala} {
		e := loaded(t, f)
		if err := e.InsertRows("t", vector.NewBatchForSchema(schema, 0)); err == nil {
			t.Fatalf("%s should reject inserts", f)
		}
		if err := e.DeleteByKey("t", []int64{1}); err == nil {
			t.Fatalf("%s should reject deletes", f)
		}
	}
}

func TestHiveDeltaMergeInScans(t *testing.T) {
	e := loaded(t, Hive)
	nb := vector.NewBatchForSchema(schema, 2)
	nb.AppendRow(int64(5000), "a", 1.0)
	nb.AppendRow(int64(5001), "b", 2.0)
	if err := e.InsertRows("t", nb); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteByKey("t", []int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	rows, err := e.Query(plan.Scan("t", "k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000+2-3 {
		t.Fatalf("rows = %d", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		seen[r[0].(int64)] = true
	}
	if seen[0] || seen[2] || !seen[5000] || !seen[5001] {
		t.Fatal("delta merge wrong")
	}
}

func TestSemiAntiOuterJoins(t *testing.T) {
	e := loaded(t, Hive)
	sub := vector.NewBatchForSchema(vector.Schema{{Name: "sk", Type: vector.TInt64}}, 3)
	sub.AppendRow(int64(1))
	sub.AppendRow(int64(2))
	sub.AppendRow(int64(99999))
	e.Load("sub", vector.Schema{{Name: "sk", Type: vector.TInt64}}, sub)
	semi, err := e.Query(plan.Join(plan.SemiJoin, plan.Scan("t", "k"), plan.Scan("sub"), []string{"k"}, []string{"sk"}))
	if err != nil || len(semi) != 2 {
		t.Fatalf("semi = %d err=%v", len(semi), err)
	}
	anti, err := e.Query(plan.Join(plan.AntiJoin, plan.Scan("t", "k"), plan.Scan("sub"), []string{"k"}, []string{"sk"}))
	if err != nil || len(anti) != 998 {
		t.Fatalf("anti = %d err=%v", len(anti), err)
	}
	outer, err := e.Query(plan.Join(plan.LeftOuterJoin, plan.Scan("sub"), plan.Scan("t", "k"), []string{"sk"}, []string{"k"}))
	if err != nil || len(outer) != 3 {
		t.Fatalf("outer = %d err=%v", len(outer), err)
	}
	unmatched := 0
	for _, r := range outer {
		if !r[len(r)-1].(bool) {
			unmatched++
		}
	}
	if unmatched != 1 {
		t.Fatalf("unmatched = %d", unmatched)
	}
}
