// Package baseline implements the comparison systems of §8 as one
// tuple-at-a-time SQL engine over the simulated Parquet/ORC-like formats,
// with per-system "personality" knobs modelling the differences the paper
// attributes the performance gap to:
//
//   - value-at-a-time decoding of generally-compressed chunks (all flavors);
//   - row-at-a-time expression interpretation (batch size 1 for Impala- and
//     Hive-like, small batches for HAWQ/SparkSQL-like, which the paper finds
//     "a bit faster than the other competitors");
//   - MinMax usage: none for Impala-like ("does not do MinMax skipping at
//     all"), stats-after-read for the Parquet-based flavors, footer-based
//     IO skipping for the ORC-based Hive-like flavor;
//   - Hive-like is the only flavor accepting updates, which it serves by
//     merging delta lists into every subsequent scan — the §8 GeoDiff
//     degradation.
//
// The engine executes the exact same logical plans (plan.Node) as VectorH,
// so result sets are comparable row for row.
package baseline

import (
	"fmt"
	"sort"

	"vectorh/internal/hadoopfmt"
	"vectorh/internal/hdfs"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// Flavor selects a personality.
type Flavor string

// The four evaluated systems plus Presto (Figure 1 only).
const (
	HAWQ     Flavor = "hawq"
	SparkSQL Flavor = "sparksql"
	Impala   Flavor = "impala"
	Hive     Flavor = "hive"
	Presto   Flavor = "presto"
)

type props struct {
	kind      hadoopfmt.Kind
	skip      hadoopfmt.SkipMode
	batchRows int
	updatable bool
}

func flavorProps(f Flavor) props {
	switch f {
	case HAWQ:
		return props{kind: hadoopfmt.Parquet, skip: hadoopfmt.SkipCPU, batchRows: 64}
	case SparkSQL:
		return props{kind: hadoopfmt.Parquet, skip: hadoopfmt.SkipCPU, batchRows: 8}
	case Impala:
		return props{kind: hadoopfmt.Parquet, skip: hadoopfmt.NoSkip, batchRows: 1}
	case Presto:
		return props{kind: hadoopfmt.ORC, skip: hadoopfmt.SkipCPU, batchRows: 4}
	default: // Hive
		return props{kind: hadoopfmt.ORC, skip: hadoopfmt.SkipIO, batchRows: 1, updatable: true}
	}
}

type storedTable struct {
	schema vector.Schema
	path   string
	// Hive-ACID-style deltas, merged into every scan.
	inserted [][]any
	deleted  map[int64]bool // first-column (surrogate key) values
}

// Engine is one baseline system instance.
type Engine struct {
	flavor Flavor
	p      props
	fs     *hdfs.Cluster
	tables map[string]*storedTable
}

// New creates a baseline engine of the given flavor over its own simulated
// single-node HDFS.
func New(flavor Flavor) *Engine {
	return &Engine{
		flavor: flavor,
		p:      flavorProps(flavor),
		fs:     hdfs.NewCluster([]string{"bn1"}, hdfs.Config{BlockSize: 1 << 20, Replication: 1}),
		tables: make(map[string]*storedTable),
	}
}

// Flavor returns the personality name.
func (e *Engine) Flavor() Flavor { return e.flavor }

// FS exposes the engine's HDFS for IO accounting.
func (e *Engine) FS() *hdfs.Cluster { return e.fs }

// Load writes a table into the engine's columnar format.
func (e *Engine) Load(name string, schema vector.Schema, b *vector.Batch) error {
	path := "/" + name + "." + e.p.kind.String()
	w, err := hadoopfmt.NewWriter(e.fs, path, "bn1", schema, hadoopfmt.Options{Kind: e.p.kind, RowGroupRows: 4096})
	if err != nil {
		return err
	}
	if err := w.Append(b); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	e.tables[name] = &storedTable{schema: schema, path: path, deleted: map[int64]bool{}}
	return nil
}

// InsertRows appends delta rows (Hive-like only).
func (e *Engine) InsertRows(name string, b *vector.Batch) error {
	if !e.p.updatable {
		return fmt.Errorf("baseline: %s does not support updates", e.flavor)
	}
	t, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("baseline: unknown table %q", name)
	}
	c := b.Compact()
	for i := 0; i < c.Len(); i++ {
		t.inserted = append(t.inserted, c.Row(i))
	}
	return nil
}

// DeleteByKey records key deletions in the delta (Hive-like only). Keys
// refer to the table's first column.
func (e *Engine) DeleteByKey(name string, keys []int64) error {
	if !e.p.updatable {
		return fmt.Errorf("baseline: %s does not support updates", e.flavor)
	}
	t, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("baseline: unknown table %q", name)
	}
	for _, k := range keys {
		t.deleted[k] = true
	}
	return nil
}

// TableSchema implements plan.Catalog.
func (e *Engine) TableSchema(name string) (vector.Schema, error) {
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("baseline: unknown table %q", name)
	}
	return t.schema, nil
}

// relation is an intermediate result: materialized rows plus their schema.
type relation struct {
	schema vector.Schema
	rows   [][]any
}

// Query implements tpch.Runner by interpreting the logical plan.
func (e *Engine) Query(q plan.Node) ([][]any, error) {
	rel, err := e.eval(q)
	if err != nil {
		return nil, err
	}
	return rel.rows, nil
}

func (e *Engine) eval(n plan.Node) (*relation, error) {
	switch n := n.(type) {
	case *plan.ScanNode:
		return e.evalScan(n, nil)
	case *plan.FilterNode:
		scan, isScan := n.Child.(*plan.ScanNode)
		if col, lo, hi, ok := n.SkipSet.FirstIntRange(); isScan && ok && e.p.skip != hadoopfmt.NoSkip {
			rel, err := e.evalScan(scan, &hadoopfmt.RangePred{Col: col, Lo: lo, Hi: hi})
			if err != nil {
				return nil, err
			}
			return e.filterRel(rel, n.Pred)
		}
		rel, err := e.eval(n.Child)
		if err != nil {
			return nil, err
		}
		return e.filterRel(rel, n.Pred)
	case *plan.ProjectNode:
		return e.evalProject(n)
	case *plan.JoinNode:
		return e.evalJoin(n)
	case *plan.AggregateNode:
		return e.evalAggregate(n)
	case *plan.OrderByNode:
		return e.evalOrderBy(n)
	case *plan.LimitNode:
		rel, err := e.eval(n.Child)
		if err != nil {
			return nil, err
		}
		if int64(len(rel.rows)) > n.N {
			rel.rows = rel.rows[:n.N]
		}
		return rel, nil
	default:
		return nil, fmt.Errorf("baseline: unsupported node %T", n)
	}
}

func (e *Engine) evalScan(n *plan.ScanNode, pred *hadoopfmt.RangePred) (*relation, error) {
	t, ok := e.tables[n.Table]
	if !ok {
		return nil, fmt.Errorf("baseline: unknown table %q", n.Table)
	}
	cols := n.Cols
	if cols == nil {
		cols = t.schema.Names()
	}
	// Hidden columns: the skip-hint column must be read to evaluate chunk
	// statistics, and when deltas exist the table's key column (its first
	// schema column) must be read for the delete-set merge.
	hasDeltas := len(t.inserted) > 0 || len(t.deleted) > 0
	projCols := append([]string(nil), cols...)
	addHidden := func(name string) int {
		for i, c := range projCols {
			if c == name {
				return i
			}
		}
		projCols = append(projCols, name)
		return len(projCols) - 1
	}
	keyPos := -1
	if len(t.deleted) > 0 {
		keyPos = addHidden(t.schema[0].Name)
	}
	if pred != nil {
		addHidden(pred.Col)
	}
	r, err := hadoopfmt.Open(e.fs, t.path, "bn1")
	if err != nil {
		return nil, err
	}
	it, err := r.Scan(projCols, pred, e.p.skip)
	if err != nil {
		return nil, err
	}
	schema := make(vector.Schema, len(cols))
	for i, c := range cols {
		f, err := t.schema.Field(c)
		if err != nil {
			return nil, err
		}
		schema[i] = f
	}
	rel := &relation{schema: schema}
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		// Hive-style delta merge: every scan re-checks the delete set —
		// this is the per-scan cost behind the §8 GeoDiff.
		if keyPos >= 0 {
			if key, ok := row[keyPos].(int64); ok && t.deleted[key] {
				continue
			}
		}
		out := make([]any, len(cols))
		copy(out, row[:len(cols)])
		rel.rows = append(rel.rows, out)
	}
	// Delta inserts merged in (projected).
	if hasDeltas {
		idx := make([]int, len(cols))
		for i, c := range cols {
			idx[i] = t.schema.Index(c)
		}
		for _, full := range t.inserted {
			out := make([]any, len(cols))
			for i, ix := range idx {
				out[i] = full[ix]
			}
			rel.rows = append(rel.rows, out)
		}
	}
	return rel, nil
}

// evalExprs evaluates bound expressions over rows in flavor-sized
// mini-batches (batch size 1 = genuine tuple-at-a-time interpretation).
func (e *Engine) evalExprs(rel *relation, exprs []plan.Expr) ([][]any, error) {
	bound := make([]boundExpr, len(exprs))
	for i, pe := range exprs {
		be, err := pe.Bind(rel.schema)
		if err != nil {
			return nil, err
		}
		bound[i] = boundExpr{be}
	}
	out := make([][]any, len(rel.rows))
	bs := e.p.batchRows
	for lo := 0; lo < len(rel.rows); lo += bs {
		hi := lo + bs
		if hi > len(rel.rows) {
			hi = len(rel.rows)
		}
		batch := vector.NewBatchForSchema(rel.schema, hi-lo)
		for _, row := range rel.rows[lo:hi] {
			batch.AppendRow(row...)
		}
		for r := lo; r < hi; r++ {
			out[r] = make([]any, len(exprs))
		}
		for c, be := range bound {
			v, err := be.e.Eval(batch)
			if err != nil {
				return nil, err
			}
			for r := lo; r < hi; r++ {
				out[r][c] = v.Get(r - lo)
			}
		}
	}
	return out, nil
}

type boundExpr struct{ e exprEval }

type exprEval interface {
	Eval(b *vector.Batch) (*vector.Vec, error)
}

func (e *Engine) filterRel(rel *relation, pred plan.Expr) (*relation, error) {
	vals, err := e.evalExprs(rel, []plan.Expr{pred})
	if err != nil {
		return nil, err
	}
	out := &relation{schema: rel.schema}
	for i, row := range rel.rows {
		if b, ok := vals[i][0].(bool); ok && b {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func (e *Engine) evalProject(n *plan.ProjectNode) (*relation, error) {
	rel, err := e.eval(n.Child)
	if err != nil {
		return nil, err
	}
	exprs := make([]plan.Expr, len(n.Exprs))
	schema := make(vector.Schema, len(n.Exprs))
	for i, ne := range n.Exprs {
		exprs[i] = ne.Expr
		t, err := ne.Expr.Type(rel.schema)
		if err != nil {
			return nil, err
		}
		schema[i] = vector.Field{Name: ne.Name, Type: t}
	}
	rows, err := e.evalExprs(rel, exprs)
	if err != nil {
		return nil, err
	}
	return &relation{schema: schema, rows: rows}, nil
}

func keyString(row []any, idx []int) string {
	s := ""
	for _, i := range idx {
		s += fmt.Sprintf("%v\x00", row[i])
	}
	return s
}

func colIndexes(s vector.Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.Index(n)
		if out[i] < 0 {
			return nil, fmt.Errorf("baseline: unknown column %q", n)
		}
	}
	return out, nil
}

func (e *Engine) evalJoin(n *plan.JoinNode) (*relation, error) {
	left, err := e.eval(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(n.Right)
	if err != nil {
		return nil, err
	}
	lk, err := colIndexes(left.schema, n.LeftKeys)
	if err != nil {
		return nil, err
	}
	rk, err := colIndexes(right.schema, n.RightKeys)
	if err != nil {
		return nil, err
	}
	table := make(map[string][][]any, len(right.rows))
	for _, row := range right.rows {
		k := keyString(row, rk)
		table[k] = append(table[k], row)
	}
	out := &relation{}
	switch n.Kind {
	case plan.SemiJoin, plan.AntiJoin:
		out.schema = left.schema
	case plan.LeftOuterJoin:
		out.schema = append(append(left.schema.Clone(), right.schema...),
			vector.Field{Name: plan.MatchedCol, Type: vector.TBool})
	default:
		out.schema = append(left.schema.Clone(), right.schema...)
	}
	for _, lrow := range left.rows {
		matches := table[keyString(lrow, lk)]
		switch n.Kind {
		case plan.SemiJoin:
			if len(matches) > 0 {
				out.rows = append(out.rows, lrow)
			}
		case plan.AntiJoin:
			if len(matches) == 0 {
				out.rows = append(out.rows, lrow)
			}
		case plan.LeftOuterJoin:
			if len(matches) == 0 {
				row := append(append([]any(nil), lrow...), zeroRow(right.schema)...)
				out.rows = append(out.rows, append(row, false))
			}
			for _, rrow := range matches {
				row := append(append([]any(nil), lrow...), rrow...)
				out.rows = append(out.rows, append(row, true))
			}
		default:
			for _, rrow := range matches {
				out.rows = append(out.rows, append(append([]any(nil), lrow...), rrow...))
			}
		}
	}
	if n.ExtraPred != nil {
		return e.filterRel(out, *n.ExtraPred)
	}
	return out, nil
}

func zeroRow(s vector.Schema) []any {
	out := make([]any, len(s))
	for i, f := range s {
		switch f.Type.Kind {
		case vector.Int32:
			out[i] = int32(0)
		case vector.Int64:
			out[i] = int64(0)
		case vector.Float64:
			out[i] = float64(0)
		case vector.String:
			out[i] = ""
		case vector.Bool:
			out[i] = false
		}
	}
	return out
}

type acc struct {
	f        float64
	i        int64
	s        string
	seen     bool
	count    int64
	distinct map[string]struct{}
}

func (e *Engine) evalAggregate(n *plan.AggregateNode) (*relation, error) {
	rel, err := e.eval(n.Child)
	if err != nil {
		return nil, err
	}
	schema, err := n.Schema(catalogAdapter{e})
	if err != nil {
		return nil, err
	}
	gIdx, err := colIndexes(rel.schema, n.GroupBy)
	if err != nil {
		return nil, err
	}
	var argExprs []plan.Expr
	argOf := make([]int, len(n.Aggs))
	for i, a := range n.Aggs {
		argOf[i] = -1
		if a.Func != plan.CountStar {
			argOf[i] = len(argExprs)
			argExprs = append(argExprs, a.Arg)
		}
	}
	args, err := e.evalExprs(rel, argExprs)
	if err != nil {
		return nil, err
	}
	groups := map[string]int{}
	var keys [][]any
	var accs [][]acc
	for ri, row := range rel.rows {
		k := keyString(row, gIdx)
		gi, ok := groups[k]
		if !ok {
			gi = len(keys)
			groups[k] = gi
			kv := make([]any, len(gIdx))
			for i, ix := range gIdx {
				kv[i] = row[ix]
			}
			keys = append(keys, kv)
			accs = append(accs, make([]acc, len(n.Aggs)))
		}
		for ai, a := range n.Aggs {
			st := &accs[gi][ai]
			var v any
			if argOf[ai] >= 0 {
				v = args[ri][argOf[ai]]
			}
			updateAcc(st, a.Func, v)
		}
	}
	if len(n.GroupBy) == 0 && len(keys) == 0 {
		keys = append(keys, []any{})
		accs = append(accs, make([]acc, len(n.Aggs)))
	}
	out := &relation{schema: schema}
	for gi, kv := range keys {
		row := append([]any(nil), kv...)
		for ai, a := range n.Aggs {
			row = append(row, finishAcc(&accs[gi][ai], a.Func, schema[len(gIdx)+ai].Type.Kind))
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

func updateAcc(st *acc, fn plan.AggFuncName, v any) {
	switch fn {
	case plan.CountStar, plan.Count:
		st.count++
	case plan.CountDistinct:
		if st.distinct == nil {
			st.distinct = map[string]struct{}{}
		}
		st.distinct[fmt.Sprintf("%v", v)] = struct{}{}
	case plan.Avg:
		st.f += toF(v)
		st.count++
	case plan.Sum:
		switch x := v.(type) {
		case float64:
			st.f += x
		case int64:
			st.i += x
		case int32:
			st.i += int64(x)
		}
	case plan.Min:
		if !st.seen || less(v, st) {
			setAcc(st, v)
		}
		st.seen = true
	case plan.Max:
		if !st.seen || greater(v, st) {
			setAcc(st, v)
		}
		st.seen = true
	}
}

func toF(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case int32:
		return float64(x)
	}
	return 0
}

func setAcc(st *acc, v any) {
	switch x := v.(type) {
	case float64:
		st.f = x
	case int64:
		st.i = x
	case int32:
		st.i = int64(x)
	case string:
		st.s = x
	}
}

func less(v any, st *acc) bool {
	switch x := v.(type) {
	case float64:
		return x < st.f
	case int64:
		return x < st.i
	case int32:
		return int64(x) < st.i
	case string:
		return x < st.s
	}
	return false
}

func greater(v any, st *acc) bool {
	switch x := v.(type) {
	case float64:
		return x > st.f
	case int64:
		return x > st.i
	case int32:
		return int64(x) > st.i
	case string:
		return x > st.s
	}
	return false
}

func finishAcc(st *acc, fn plan.AggFuncName, kind vector.Kind) any {
	switch fn {
	case plan.Count, plan.CountStar:
		return st.count
	case plan.CountDistinct:
		return int64(len(st.distinct))
	case plan.Avg:
		if st.count == 0 {
			return float64(0)
		}
		return st.f / float64(st.count)
	default:
		if kind == vector.Float64 {
			return st.f
		}
		if kind == vector.String {
			return st.s
		}
		return st.i
	}
}

func (e *Engine) evalOrderBy(n *plan.OrderByNode) (*relation, error) {
	rel, err := e.eval(n.Child)
	if err != nil {
		return nil, err
	}
	keyExprs := make([]plan.Expr, len(n.Keys))
	for i, k := range n.Keys {
		keyExprs[i] = k.Expr
	}
	keyVals, err := e.evalExprs(rel, keyExprs)
	if err != nil {
		return nil, err
	}
	perm := make([]int, len(rel.rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		for ki, k := range n.Keys {
			c := compareAny(keyVals[perm[x]][ki], keyVals[perm[y]][ki])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := &relation{schema: rel.schema}
	limit := len(perm)
	if n.Limit > 0 && int(n.Limit) < limit {
		limit = int(n.Limit)
	}
	for _, pi := range perm[:limit] {
		out.rows = append(out.rows, rel.rows[pi])
	}
	return out, nil
}

func compareAny(a, b any) int {
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		return cmp(x, y)
	case int32:
		y := b.(int32)
		return cmp(x, y)
	case float64:
		y := b.(float64)
		return cmp(x, y)
	case string:
		y := b.(string)
		return cmp(x, y)
	case bool:
		y := b.(bool)
		if x == y {
			return 0
		}
		if !x {
			return -1
		}
		return 1
	}
	return 0
}

func cmp[T int32 | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// catalogAdapter exposes the engine as a plan.Catalog.
type catalogAdapter struct{ e *Engine }

// TableSchema implements plan.Catalog.
func (c catalogAdapter) TableSchema(name string) (vector.Schema, error) {
	return c.e.TableSchema(name)
}
