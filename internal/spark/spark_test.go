package spark

import (
	"fmt"
	"strings"
	"testing"

	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

var schema = vector.Schema{
	{Name: "k", Type: vector.TInt64},
	{Name: "d", Type: vector.TDate},
	{Name: "v", Type: vector.TFloat64},
	{Name: "s", Type: vector.TString},
}

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.New(core.Config{
		Nodes:     []string{"n1", "n2", "n3"},
		BlockSize: 1 << 16,
		// R=1 keeps CSV input files pinned to their writer, so load-path
		// locality differences are visible.
		Replication: 1,
		Format:      colstore.Format{BlockSize: 8192, BlocksPerChunk: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable(rewriter.TableInfo{
		Name: "t", Schema: schema, PartitionKey: "k", Partitions: 3,
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// writeCSVFiles distributes n CSV files across the nodes (each file written
// by one node, so its first replica is local there).
func writeCSVFiles(t *testing.T, e *core.Engine, files, rowsPer int) []string {
	t.Helper()
	nodes := e.Nodes()
	var paths []string
	id := 0
	for f := 0; f < files; f++ {
		var sb strings.Builder
		for r := 0; r < rowsPer; r++ {
			row := []any{int64(id), vector.MustDate("1995-01-01") + int32(id%100), float64(id) / 2, fmt.Sprintf("s%d", id)}
			sb.WriteString(FormatCSVRow(row, schema))
			sb.WriteByte('\n')
			id++
		}
		path := fmt.Sprintf("/csv/input%02d.tbl", f)
		if err := e.FS().WriteFile(path, nodes[f%len(nodes)], []byte(sb.String())); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

func TestCSVRoundTrip(t *testing.T) {
	row := []any{int64(42), vector.MustDate("1997-07-07"), 1.5, "hello"}
	line := FormatCSVRow(row, schema)
	back, err := ParseCSVRow(line, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if back[i] != row[i] {
			t.Fatalf("col %d: %v != %v", i, back[i], row[i])
		}
	}
	if _, err := ParseCSVRow("1|2", schema); err == nil {
		t.Fatal("short row should fail")
	}
	if _, err := ParseCSVRow("x|1995-01-01|1|s", schema); err == nil {
		t.Fatal("bad int should fail")
	}
}

func TestVWLoadAndQuery(t *testing.T) {
	e := newEngine(t)
	paths := writeCSVFiles(t, e, 6, 100)
	if err := VWLoad(e, "t", paths); err != nil {
		t.Fatal(err)
	}
	rows, err := e.Query(plan.Scan("t", "k"))
	if err != nil || len(rows) != 600 {
		t.Fatalf("rows = %d err=%v", len(rows), err)
	}
}

func TestConnectorLoadIsMoreLocalThanVWLoad(t *testing.T) {
	// The §7 experiment shape: vwload from the master reads ~2/3 of the
	// input remotely; the connector's affinity assignment reads ~all
	// input locally.
	run := func(connector bool) (local, remote int64) {
		e := newEngine(t)
		paths := writeCSVFiles(t, e, 9, 200)
		e.FS().ResetStats()
		if connector {
			rdd, err := TextFileRDD(e.FS(), paths)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ConnectorLoad(e, "t", rdd); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := VWLoad(e, "t", paths); err != nil {
				t.Fatal(err)
			}
		}
		s := e.FS().Stats()
		return s.LocalBytesRead, s.RemoteBytesRead
	}
	_, vwRemote := run(false)
	connLocal, connRemote := run(true)
	if vwRemote == 0 {
		t.Fatal("vwload should read some input remotely")
	}
	if connRemote >= vwRemote {
		t.Fatalf("connector remote reads (%d) should be far below vwload (%d)", connRemote, vwRemote)
	}
	if connLocal == 0 {
		t.Fatal("connector should read input locally")
	}
}

func TestAssignPartitionsRespectsAffinity(t *testing.T) {
	rdd := &RDD{Partitions: []RDDPartition{
		{Path: "a", PreferredLocs: []string{"n1"}},
		{Path: "b", PreferredLocs: []string{"n2"}},
		{Path: "c", PreferredLocs: []string{"n2"}},
		{Path: "d", PreferredLocs: []string{"zzz"}}, // no local executor
	}}
	assigned := AssignPartitions(rdd, []string{"n1", "n2"}, 2)
	if assigned[0] != "n1" {
		t.Fatalf("a -> %s", assigned[0])
	}
	if assigned[1] != "n2" || assigned[2] != "n2" {
		t.Fatalf("b,c -> %s,%s", assigned[1], assigned[2])
	}
	if assigned[3] == "" {
		t.Fatal("d unassigned")
	}
}

func TestTextFileRDDPreferredLocations(t *testing.T) {
	e := newEngine(t)
	paths := writeCSVFiles(t, e, 3, 10)
	rdd, err := TextFileRDD(e.FS(), paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(rdd.Partitions) != 3 {
		t.Fatalf("partitions = %d", len(rdd.Partitions))
	}
	for i, p := range rdd.Partitions {
		if len(p.PreferredLocs) == 0 {
			t.Fatalf("partition %d has no preferred locations", i)
		}
	}
}
