// Package spark simulates the Spark–VectorH connector of §7: RDDs whose
// partitions carry preferred locations (the HDFS block holders), the
// ExternalScan operators VectorH exposes to ingest parallel binary streams,
// and the Hopcroft–Karp-style assignment of input partitions to operators
// that maximizes node-local transfers (Figure 6). It also provides the plain
// vwload path for the §7 load-performance comparison: vwload reads whatever
// node it runs on, so non-local CSV files cross the network, while the
// connector's affinity-aware assignment gets short-circuit reads
// "out-of-the-box".
package spark

import (
	"fmt"
	"strconv"
	"strings"

	"vectorh/internal/core"
	"vectorh/internal/flownet"
	"vectorh/internal/hdfs"
	"vectorh/internal/vector"
)

// RDDPartition is one input split with its preferred (local) nodes.
type RDDPartition struct {
	Path          string
	PreferredLocs []string
}

// RDD is a minimal resilient-distributed-dataset stand-in: a list of
// partitions with location preferences.
type RDD struct {
	Partitions []RDDPartition
}

// TextFileRDD builds an RDD over HDFS files, one partition per file, with
// preferred locations taken from the namenode's block locations (like
// Spark's HadoopRDD).
func TextFileRDD(fs *hdfs.Cluster, paths []string) (*RDD, error) {
	rdd := &RDD{}
	for _, p := range paths {
		locs, err := fs.BlockLocations(p)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var pref []string
		for _, bl := range locs {
			for _, n := range bl {
				if !seen[n] {
					seen[n] = true
					pref = append(pref, n)
				}
			}
		}
		rdd.Partitions = append(rdd.Partitions, RDDPartition{Path: p, PreferredLocs: pref})
	}
	return rdd, nil
}

// AssignPartitions maps RDD partitions to nodes, maximizing assignments that
// respect affinity via maximum bipartite matching rounds (the
// "algorithm similar to Hopcroft-Karp's" of §7); partitions without a local
// executor slot fall back to arbitrary nodes (the dot-dash arrows of
// Figure 6).
func AssignPartitions(rdd *RDD, nodes []string, slotsPerNode int) []string {
	nodeIdx := map[string]int{}
	for i, n := range nodes {
		nodeIdx[n] = i
	}
	assigned := make([]string, len(rdd.Partitions))
	remaining := make([]int, 0, len(rdd.Partitions))
	for i := range rdd.Partitions {
		remaining = append(remaining, i)
	}
	slotsLeft := make([]int, len(nodes))
	for i := range slotsLeft {
		slotsLeft[i] = slotsPerNode
	}
	// Repeated matching rounds: each round gives every node one slot.
	for round := 0; round < slotsPerNode && len(remaining) > 0; round++ {
		adj := make([][]int, len(remaining))
		for i, pi := range remaining {
			for _, loc := range rdd.Partitions[pi].PreferredLocs {
				if ni, ok := nodeIdx[loc]; ok && slotsLeft[ni] > 0 {
					adj[i] = append(adj[i], ni)
				}
			}
		}
		matchL, _ := flownet.HopcroftKarp(len(remaining), len(nodes), adj)
		var next []int
		for i, pi := range remaining {
			if matchL[i] >= 0 {
				assigned[pi] = nodes[matchL[i]]
				slotsLeft[matchL[i]]--
			} else {
				next = append(next, pi)
			}
		}
		remaining = next
	}
	// Fallback: ignore affinity.
	rr := 0
	for _, pi := range remaining {
		assigned[pi] = nodes[rr%len(nodes)]
		rr++
	}
	return assigned
}

// ParseCSVRow converts one CSV line to typed values for the schema.
func ParseCSVRow(line string, schema vector.Schema) ([]any, error) {
	fields := strings.Split(line, "|")
	if len(fields) < len(schema) {
		return nil, fmt.Errorf("spark: row has %d fields, want %d", len(fields), len(schema))
	}
	out := make([]any, len(schema))
	for i, f := range schema {
		s := fields[i]
		switch {
		case f.Type.Logical == vector.Date:
			d, err := vector.ParseDate(s)
			if err != nil {
				return nil, err
			}
			out[i] = d
		case f.Type.Kind == vector.Int64:
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, err
			}
			out[i] = v
		case f.Type.Kind == vector.Int32:
			v, err := strconv.ParseInt(s, 10, 32)
			if err != nil {
				return nil, err
			}
			out[i] = int32(v)
		case f.Type.Kind == vector.Float64:
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, err
			}
			out[i] = v
		default:
			out[i] = s
		}
	}
	return out, nil
}

// FormatCSVRow renders typed values as a CSV line (tpchgen output format).
func FormatCSVRow(row []any, schema vector.Schema) string {
	parts := make([]string, len(row))
	for i, v := range row {
		if schema[i].Type.Logical == vector.Date {
			parts[i] = vector.FormatDate(v.(int32))
			continue
		}
		parts[i] = fmt.Sprintf("%v", v)
	}
	return strings.Join(parts, "|")
}

// readAndParse reads a CSV file from the given node and parses it.
func readAndParse(fs *hdfs.Cluster, path, node string, schema vector.Schema) (*vector.Batch, error) {
	raw, err := fs.ReadAll(path, node)
	if err != nil {
		return nil, err
	}
	b := vector.NewBatchForSchema(schema, 1024)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		row, err := ParseCSVRow(line, schema)
		if err != nil {
			return nil, err
		}
		b.AppendRow(row...)
	}
	return b, nil
}

// VWLoad is the classic loader: the node running vwload (the session master)
// reads every input file itself — remote HDFS reads for non-local blocks —
// then bulk-appends into the table.
func VWLoad(e *core.Engine, table string, paths []string) error {
	info, err := e.Table(table)
	if err != nil {
		return err
	}
	master := e.Nodes()[0]
	var batches []*vector.Batch
	for _, p := range paths {
		b, err := readAndParse(e.FS(), p, master, info.Schema)
		if err != nil {
			return err
		}
		batches = append(batches, b)
	}
	return e.Load(table, batches)
}

// VWLoadLocal is vwload with hand-tuned parameter order so each worker reads
// only its local files (the 1237s → 850s tweak of §7). Files whose blocks
// are not local anywhere still incur remote reads.
func VWLoadLocal(e *core.Engine, table string, paths []string) error {
	info, err := e.Table(table)
	if err != nil {
		return err
	}
	var batches []*vector.Batch
	for _, p := range paths {
		reader := e.Nodes()[0]
		if locs, err := e.FS().BlockLocations(p); err == nil && len(locs) > 0 && len(locs[0]) > 0 {
			reader = locs[0][0]
		}
		b, err := readAndParse(e.FS(), p, reader, info.Schema)
		if err != nil {
			return err
		}
		batches = append(batches, b)
	}
	return e.Load(table, batches)
}

// ConnectorLoad ingests an RDD through the Spark–VectorH connector: RDD
// partitions are assigned to ExternalScan operators with affinity, each
// executor reads and parses its partition locally, and the parsed batches
// are appended. It returns the per-node assignment for inspection.
func ConnectorLoad(e *core.Engine, table string, rdd *RDD) (map[string]int, error) {
	info, err := e.Table(table)
	if err != nil {
		return nil, err
	}
	nodes := e.Nodes()
	assigned := AssignPartitions(rdd, nodes, (len(rdd.Partitions)+len(nodes)-1)/len(nodes))
	counts := map[string]int{}
	var batches []*vector.Batch
	for pi, part := range rdd.Partitions {
		node := assigned[pi]
		counts[node]++
		b, err := readAndParse(e.FS(), part.Path, node, info.Schema)
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
	}
	return counts, e.Load(table, batches)
}
