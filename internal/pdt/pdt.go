package pdt

import (
	"errors"
	"fmt"
)

// ErrConflict is returned when commit-time serialization detects a
// write-write conflict at tuple granularity (optimistic concurrency
// control, §6).
var ErrConflict = errors.New("pdt: write-write conflict")

// PDT is one positional delta tree over a stable image of StableRows rows.
// All positions fed to the public methods are RIDs (positions in the image
// *after* applying this PDT); SIDs are positions in the underlying image.
type PDT struct {
	root       *node
	stableRows int64
	numMod     int
	memBytes   int
}

// New returns an empty PDT over a stable image of n rows.
func New(n int64) *PDT { return &PDT{root: newLeaf(), stableRows: n} }

// StableRows returns the size of the underlying image.
func (t *PDT) StableRows() int64 { return t.stableRows }

// Size returns the visible row count: stable rows + inserts − deletes.
func (t *PDT) Size() int64 {
	return t.stableRows + int64(t.root.ins) - int64(t.root.del)
}

// Counts returns the number of insert, delete and modify entries.
func (t *PDT) Counts() (ins, del, mod int) { return t.root.ins, t.root.del, t.numMod }

// MemBytes estimates RAM held by delta payloads; update propagation triggers
// on it.
func (t *PDT) MemBytes() int { return t.memBytes + 48*t.root.cnt }

// insBefore / delBefore count entries with SID strictly below s.
func (t *PDT) insBefore(s int64) int {
	_, ins, _ := t.root.countBefore(s, -1)
	return ins
}

func (t *PDT) delBefore(s int64) int {
	_, _, del := t.root.countBefore(s, -1)
	return del
}

// insUpto counts inserts with SID <= s.
func (t *PDT) insUpto(s int64) int {
	_, ins, _ := t.root.countBefore(s, stableSeq)
	return ins
}

// numInsAt counts the inserts at exactly SID s, and maxSeq among them.
func (t *PDT) numInsAt(s int64) (n int, maxSeq int32) {
	maxSeq = -1
	t.root.walkFrom(s, func(e *Entry) bool {
		if e.Sid != s || e.Kind != Ins {
			return false
		}
		n++
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		return true
	})
	return
}

// stableEntry returns the Del/Mod entry on stable tuple s, or nil.
func (t *PDT) stableEntry(s int64) *Entry { return t.root.find(s, stableSeq) }

// firstRidOfSid returns the RID where SID s's window begins (the first
// insert at s, or the stable tuple itself).
func (t *PDT) firstRidOfSid(s int64) int64 {
	return s + int64(t.insBefore(s)) - int64(t.delBefore(s))
}

// SidToRid translates a stable position to its current position. The second
// result is false when the tuple is deleted.
func (t *PDT) SidToRid(s int64) (int64, bool) {
	if del := t.stableEntry(s); del != nil && del.Kind == Del {
		return 0, false
	}
	return s + int64(t.insUpto(s)) - int64(t.delBefore(s)), true
}

// Loc is the resolved location of a RID: either a stable tuple (Sid, with
// Insert == nil) or an insert entry held in the tree.
type Loc struct {
	Sid    int64
	Insert *Entry // non-nil when the RID addresses an uncommitted insert
}

// RidToSid resolves a current position to its location. It binary-searches
// the monotone firstRidOfSid mapping, so it costs O(log N · log n).
func (t *PDT) RidToSid(rid int64) (Loc, error) {
	if rid < 0 || rid >= t.Size() {
		return Loc{}, fmt.Errorf("pdt: rid %d out of range [0,%d)", rid, t.Size())
	}
	lo, hi := int64(0), t.stableRows // find max s with firstRidOfSid(s) <= rid
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t.firstRidOfSid(mid) <= rid {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := lo
	k := rid - t.firstRidOfSid(s)
	nIns, _ := t.numInsAt(s)
	if k < int64(nIns) {
		// The k-th insert at s.
		var target *Entry
		i := int64(0)
		t.root.walkFrom(s, func(e *Entry) bool {
			if e.Sid != s || e.Kind != Ins {
				return false
			}
			if i == k {
				target = e
				return false
			}
			i++
			return true
		})
		if target == nil {
			return Loc{}, fmt.Errorf("pdt: internal: insert %d at sid %d not found", k, s)
		}
		return Loc{Sid: s, Insert: target}, nil
	}
	if k == int64(nIns) && s < t.stableRows {
		return Loc{Sid: s}, nil
	}
	return Loc{}, fmt.Errorf("pdt: internal: rid %d resolves past sid %d window", rid, s)
}

// Insert places row at position rid, shifting subsequent rows right.
func (t *PDT) Insert(rid int64, row []any) error {
	if rid < 0 || rid > t.Size() {
		return fmt.Errorf("pdt: insert rid %d out of range [0,%d]", rid, t.Size())
	}
	var sid int64
	var seq int32
	if rid == t.Size() {
		sid = t.stableRows
		_, maxSeq := t.numInsAt(sid)
		seq = maxSeq + 1
	} else {
		loc, err := t.RidToSid(rid)
		if err != nil {
			return err
		}
		sid = loc.Sid
		if loc.Insert != nil {
			// Make room right before the existing insert by shifting
			// the seqs of it and its successors at this sid up by one.
			seq = loc.Insert.Seq
			t.shiftSeqs(sid, seq)
		} else {
			_, maxSeq := t.numInsAt(sid)
			seq = maxSeq + 1
		}
	}
	t.add(Entry{Sid: sid, Seq: seq, Kind: Ins, Row: row})
	return nil
}

// shiftSeqs renumbers insert entries at sid with Seq >= from, making room
// for an insertion at position `from`.
func (t *PDT) shiftSeqs(sid int64, from int32) {
	var toShift []Entry
	t.root.walkFrom(sid, func(e *Entry) bool {
		if e.Sid != sid || e.Kind != Ins {
			return false
		}
		if e.Seq >= from {
			toShift = append(toShift, *e)
		}
		return true
	})
	for i := len(toShift) - 1; i >= 0; i-- {
		t.root.remove(sid, toShift[i].Seq)
		e := toShift[i]
		e.Seq++
		t.addRaw(e)
	}
}

// Append inserts a row at the end of the table (the common bulk path; §6
// notes inserts dominate PDT volume).
func (t *PDT) Append(row []any) {
	sid := t.stableRows
	_, maxSeq := t.numInsAt(sid)
	t.add(Entry{Sid: sid, Seq: maxSeq + 1, Kind: Ins, Row: row})
}

// Delete removes the row at position rid. Deleting an uncommitted insert
// simply removes the insert entry; deleting a stable tuple records a Del
// entry (superseding any Mod).
func (t *PDT) Delete(rid int64) error {
	loc, err := t.RidToSid(rid)
	if err != nil {
		return err
	}
	if loc.Insert != nil {
		t.memBytes -= rowBytes(loc.Insert.Row)
		t.root.remove(loc.Sid, loc.Insert.Seq)
		return nil
	}
	if e := t.stableEntry(loc.Sid); e != nil {
		// A Mod exists; replace it with a Del.
		t.numMod--
		t.memBytes -= rowBytes(e.Vals)
		t.root.remove(loc.Sid, stableSeq)
	}
	t.addRaw(Entry{Sid: loc.Sid, Seq: stableSeq, Kind: Del})
	return nil
}

// Modify sets columns of the row at position rid. Modifying an uncommitted
// insert updates the insert in place (with copy-on-write of the row).
func (t *PDT) Modify(rid int64, cols []int, vals []any) error {
	loc, err := t.RidToSid(rid)
	if err != nil {
		return err
	}
	if loc.Insert != nil {
		row := append([]any(nil), loc.Insert.Row...)
		for i, c := range cols {
			row[c] = vals[i]
		}
		loc.Insert.Row = row
		return nil
	}
	if e := t.stableEntry(loc.Sid); e != nil {
		if e.Kind == Del {
			return fmt.Errorf("pdt: modify of deleted rid %d", rid)
		}
		// Merge columns copy-on-write.
		nc := append([]int(nil), e.Cols...)
		nv := append([]any(nil), e.Vals...)
		for i, c := range cols {
			found := false
			for j, ec := range nc {
				if ec == c {
					nv[j] = vals[i]
					found = true
					break
				}
			}
			if !found {
				nc = append(nc, c)
				nv = append(nv, vals[i])
			}
		}
		e.Cols, e.Vals = nc, nv
		return nil
	}
	t.numMod++
	t.memBytes += rowBytes(vals)
	t.addRaw(Entry{Sid: loc.Sid, Seq: stableSeq, Kind: Mod,
		Cols: append([]int(nil), cols...), Vals: append([]any(nil), vals...)})
	return nil
}

func (t *PDT) add(e Entry) {
	t.memBytes += rowBytes(e.Row)
	t.addRaw(e)
}

func (t *PDT) addRaw(e Entry) {
	if r := t.root.insert(e); r != nil {
		t.root = &node{children: []*node{t.root, r}}
		t.root.recompute()
	}
}

func rowBytes(row []any) int {
	total := 0
	for _, v := range row {
		if s, ok := v.(string); ok {
			total += len(s) + 16
		} else {
			total += 16
		}
	}
	return total
}

// Entries returns every delta in key order (a snapshot slice; used by
// mergers and the WAL).
func (t *PDT) Entries() []Entry {
	out := make([]Entry, 0, t.root.cnt)
	t.root.walk(func(e *Entry) bool {
		out = append(out, *e)
		return true
	})
	return out
}

// CopyOnWrite returns an independent copy of the PDT; the paper's commit
// path replaces the master Write-PDT with such a copy so running queries
// keep their snapshot.
func (t *PDT) CopyOnWrite() *PDT {
	return &PDT{root: t.root.clone(), stableRows: t.stableRows, numMod: t.numMod, memBytes: t.memBytes}
}

// MergeInto serializes the entries of trans into dst (typically a
// copy-on-write of the master Write-PDT), stamping them with commitEpoch.
// Both PDTs must be keyed in the same underlying position space. A Del or
// Mod in trans conflicts when dst carries a Del or Mod on the same tuple
// committed after snapshotEpoch. It is a convenience wrapper around
// ApplyTrans for PDTs built from scratch (not via CopyOnWrite+Diff).
func MergeInto(dst, trans *PDT, snapshotEpoch, commitEpoch int64) error {
	return ApplyTrans(dst, trans.Entries(), snapshotEpoch, commitEpoch)
}
