package pdt

import "fmt"

// Additional entry kinds that appear only in serialized transaction diffs
// (never inside a tree): operations targeting a committed insert entry of
// the master Write-PDT, addressed by its stable (Sid, Seq) key.
const (
	DelIns EntryKind = 3 + iota // delete a committed insert
	ModIns                      // modify columns of a committed insert
)

// Diff computes the transaction's serialized delta: the entries one must
// apply to snap to obtain eff. eff must have been derived from snap by
// CopyOnWrite plus rid-based operations. The result is what commit ships to
// the WAL and merges into the (possibly advanced) master via ApplyTrans —
// the "PDT serialization" step of §6.
func Diff(snap, eff *PDT) []Entry {
	a, b := snap.Entries(), eff.Entries()
	var out []Entry
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a) || (j < len(b) && keyLess(b[j].Sid, b[j].Seq, a[i].Sid, a[i].Seq)):
			// eff-only: a new insert, delete or modify.
			e := b[j]
			e.Epoch = 0
			out = append(out, e)
			j++
		case j == len(b) || keyLess(a[i].Sid, a[i].Seq, b[j].Sid, b[j].Seq):
			// snap-only: the transaction removed a committed insert.
			if a[i].Kind == Ins {
				out = append(out, Entry{Sid: a[i].Sid, Seq: a[i].Seq, Kind: DelIns})
			}
			i++
		default: // same key
			out = append(out, diffSameKey(&a[i], &b[j])...)
			i++
			j++
		}
	}
	return out
}

func diffSameKey(s, e *Entry) []Entry {
	switch {
	case s.Kind == Ins && e.Kind == Ins:
		// Row modified in place?
		var cols []int
		var vals []any
		for c := range e.Row {
			if s.Row[c] != e.Row[c] {
				cols = append(cols, c)
				vals = append(vals, e.Row[c])
			}
		}
		if cols != nil {
			return []Entry{{Sid: e.Sid, Seq: e.Seq, Kind: ModIns, Cols: cols, Vals: vals}}
		}
	case s.Kind == Mod && e.Kind == Del:
		return []Entry{{Sid: e.Sid, Seq: stableSeq, Kind: Del}}
	case s.Kind == Mod && e.Kind == Mod:
		var cols []int
		var vals []any
		for j, c := range e.Cols {
			old, had := (*Entry)(s).modLookup(c)
			if !had || old != e.Vals[j] {
				cols = append(cols, c)
				vals = append(vals, e.Vals[j])
			}
		}
		if cols != nil {
			return []Entry{{Sid: e.Sid, Seq: stableSeq, Kind: Mod, Cols: cols, Vals: vals}}
		}
	}
	return nil
}

func (e *Entry) modLookup(col int) (any, bool) {
	for j, c := range e.Cols {
		if c == col {
			return e.Vals[j], true
		}
	}
	return nil, false
}

// ApplyTrans merges serialized transaction entries into dst (the master
// Write-PDT, or a copy-on-write of it), stamping commitEpoch. It returns
// ErrConflict — applying nothing — when any entry touches a tuple written
// by a transaction that committed after snapshotEpoch (optimistic CC at
// tuple granularity).
func ApplyTrans(dst *PDT, entries []Entry, snapshotEpoch, commitEpoch int64) error {
	// Validation pass first: commit is all-or-nothing.
	for i := range entries {
		e := &entries[i]
		switch e.Kind {
		case Ins:
		case Del, Mod:
			if cur := dst.stableEntry(e.Sid); cur != nil && cur.Epoch > snapshotEpoch {
				return fmt.Errorf("%w: stable sid=%d (epoch %d > snapshot %d)", ErrConflict, e.Sid, cur.Epoch, snapshotEpoch)
			}
		case DelIns, ModIns:
			cur := dst.root.find(e.Sid, e.Seq)
			if cur == nil || cur.Kind != Ins {
				return fmt.Errorf("%w: insert (%d,%d) no longer present", ErrConflict, e.Sid, e.Seq)
			}
			if cur.Epoch > snapshotEpoch {
				return fmt.Errorf("%w: insert (%d,%d) (epoch %d > snapshot %d)", ErrConflict, e.Sid, e.Seq, cur.Epoch, snapshotEpoch)
			}
		}
	}
	for _, e := range entries {
		e.Epoch = commitEpoch
		switch e.Kind {
		case Ins:
			_, maxSeq := dst.numInsAt(e.Sid)
			e.Seq = maxSeq + 1
			dst.add(e)
		case Del:
			if cur := dst.stableEntry(e.Sid); cur != nil {
				if cur.Kind == Del {
					continue
				}
				dst.numMod--
				dst.root.remove(e.Sid, stableSeq)
			}
			dst.addRaw(e)
		case Mod:
			if cur := dst.stableEntry(e.Sid); cur != nil && cur.Kind == Mod {
				nc := append([]int(nil), cur.Cols...)
				nv := append([]any(nil), cur.Vals...)
				for j, c := range e.Cols {
					found := false
					for k, ec := range nc {
						if ec == c {
							nv[k] = e.Vals[j]
							found = true
							break
						}
					}
					if !found {
						nc = append(nc, c)
						nv = append(nv, e.Vals[j])
					}
				}
				cur.Cols, cur.Vals, cur.Epoch = nc, nv, commitEpoch
				continue
			}
			dst.numMod++
			dst.addRaw(e)
		case DelIns:
			cur := dst.root.find(e.Sid, e.Seq)
			dst.memBytes -= rowBytes(cur.Row)
			dst.root.remove(e.Sid, e.Seq)
		case ModIns:
			cur := dst.root.find(e.Sid, e.Seq)
			row := append([]any(nil), cur.Row...)
			for j, c := range e.Cols {
				row[c] = e.Vals[j]
			}
			cur.Row, cur.Epoch = row, commitEpoch
		}
	}
	return nil
}

// Replay applies the entries of src (keyed in dst's OUTPUT position space,
// i.e. src is stacked directly on dst) into dst, implementing write→read
// update propagation. Entries are replayed ascending with positional
// adjustment for already-applied inserts and deletes.
func Replay(dst *PDT, src *PDT) error {
	insApplied, delApplied := int64(0), int64(0)
	for _, e := range src.Entries() {
		rid := e.Sid + insApplied - delApplied
		switch e.Kind {
		case Ins:
			if err := dst.Insert(rid, e.Row); err != nil {
				return err
			}
			insApplied++
		case Del:
			if err := dst.Delete(rid); err != nil {
				return err
			}
			delApplied++
		case Mod:
			if err := dst.Modify(rid, e.Cols, e.Vals); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pdt: replay of kind %d not supported", e.Kind)
		}
	}
	return nil
}

// IsTailInsertOnly reports whether every entry is an insert at the end of
// the stable image — the cheap update-propagation case of §6 ("flushing
// tail inserts only creates new data blocks and does not modify existing
// ones").
func (t *PDT) IsTailInsertOnly() bool {
	ok := true
	t.root.walk(func(e *Entry) bool {
		if e.Kind != Ins || e.Sid != t.stableRows {
			ok = false
			return false
		}
		return true
	})
	return ok
}
