package pdt

import (
	"errors"
	"math/rand"
	"testing"

	"vectorh/internal/vector"
)

var schema = vector.Schema{{Name: "k", Type: vector.TInt64}, {Name: "s", Type: vector.TString}}

// stableImage builds the dense stable batch [0, n) with k=i, s="s<i>".
func stableImage(n int) *vector.Batch {
	b := vector.NewBatchForSchema(schema, n)
	for i := 0; i < n; i++ {
		b.AppendRow(int64(i), "s"+itoa(i))
	}
	return b
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// materialize runs a full merge-scan of the PDT over the stable image.
func materialize(t *testing.T, p *PDT, stable *vector.Batch) [][]any {
	t.Helper()
	m := NewMerger(p, schema, []int{0, 1})
	var rows [][]any
	const step = 7 // odd batch size exercises range boundaries
	n := int(p.StableRows())
	for s0 := 0; s0 < n; s0 += step {
		s1 := s0 + step
		if s1 > n {
			s1 = n
		}
		in := &vector.Batch{Vecs: []*vector.Vec{stable.Col(0).Slice(s0, s1), stable.Col(1).Slice(s0, s1)}}
		out, _, err := m.MergeRange(in, int64(s0))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < out.Len(); i++ {
			rows = append(rows, out.Row(i))
		}
	}
	if tail, _ := m.Tail(); tail != nil {
		for i := 0; i < tail.Len(); i++ {
			rows = append(rows, tail.Row(i))
		}
	}
	return rows
}

func TestEmptyPDTPassThrough(t *testing.T) {
	p := New(10)
	stable := stableImage(10)
	rows := materialize(t, p, stable)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if p.Size() != 10 {
		t.Fatalf("Size = %d", p.Size())
	}
	m := NewMerger(p, schema, []int{0, 1})
	if m.HasDeltas() {
		t.Fatal("empty PDT should report no deltas")
	}
}

func TestAppendAndTail(t *testing.T) {
	p := New(5)
	p.Append([]any{int64(100), "x"})
	p.Append([]any{int64(101), "y"})
	if p.Size() != 7 {
		t.Fatalf("Size = %d", p.Size())
	}
	rows := materialize(t, p, stableImage(5))
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[5][0].(int64) != 100 || rows[6][1].(string) != "y" {
		t.Fatalf("tail rows = %v %v", rows[5], rows[6])
	}
}

func TestInsertMiddle(t *testing.T) {
	p := New(4) // image: 0 1 2 3
	if err := p.Insert(2, []any{int64(99), "ins"}); err != nil {
		t.Fatal(err)
	}
	rows := materialize(t, p, stableImage(4))
	want := []int64{0, 1, 99, 2, 3}
	for i, w := range want {
		if rows[i][0].(int64) != w {
			t.Fatalf("rows = %v", rows)
		}
	}
	// Insert again at the same position: lands before the prior insert.
	if err := p.Insert(2, []any{int64(98), "ins2"}); err != nil {
		t.Fatal(err)
	}
	rows = materialize(t, p, stableImage(4))
	want = []int64{0, 1, 98, 99, 2, 3}
	for i, w := range want {
		if rows[i][0].(int64) != w {
			t.Fatalf("after second insert rows = %v", rows)
		}
	}
}

func TestDeleteStableAndInsert(t *testing.T) {
	p := New(4)
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	rows := materialize(t, p, stableImage(4))
	want := []int64{0, 2, 3}
	for i, w := range want {
		if rows[i][0].(int64) != w {
			t.Fatalf("rows = %v", rows)
		}
	}
	// Insert then delete the insert: net zero entries.
	if err := p.Insert(1, []any{int64(55), "i"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	ins, del, mod := p.Counts()
	if ins != 0 || del != 1 || mod != 0 {
		t.Fatalf("counts = %d/%d/%d", ins, del, mod)
	}
}

func TestModifyStableAndOwnInsert(t *testing.T) {
	p := New(3)
	if err := p.Modify(1, []int{1}, []any{"patched"}); err != nil {
		t.Fatal(err)
	}
	rows := materialize(t, p, stableImage(3))
	if rows[1][1].(string) != "patched" || rows[1][0].(int64) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Second modify on another column merges into the same entry.
	if err := p.Modify(1, []int{0}, []any{int64(-1)}); err != nil {
		t.Fatal(err)
	}
	_, _, mod := p.Counts()
	if mod != 1 {
		t.Fatalf("mod entries = %d, want 1 (merged)", mod)
	}
	rows = materialize(t, p, stableImage(3))
	if rows[1][0].(int64) != -1 || rows[1][1].(string) != "patched" {
		t.Fatalf("rows = %v", rows)
	}
	// Modify an uncommitted insert: updates the insert row itself.
	p.Append([]any{int64(7), "tail"})
	if err := p.Modify(p.Size()-1, []int{1}, []any{"tail2"}); err != nil {
		t.Fatal(err)
	}
	rows = materialize(t, p, stableImage(3))
	if rows[len(rows)-1][1].(string) != "tail2" {
		t.Fatalf("rows = %v", rows)
	}
	ins, _, mod := p.Counts()
	if ins != 1 || mod != 1 {
		t.Fatalf("counts ins=%d mod=%d", ins, mod)
	}
}

func TestModifyDeletedFails(t *testing.T) {
	p := New(3)
	p.Delete(1)
	// rid 1 is now stable tuple 2.
	if err := p.Modify(1, []int{0}, []any{int64(0)}); err != nil {
		t.Fatal(err)
	}
	rows := materialize(t, p, stableImage(3))
	if rows[1][0].(int64) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSidRidTranslation(t *testing.T) {
	p := New(10)
	p.Insert(0, []any{int64(100), "a"}) // before tuple 0
	p.Delete(3)                         // deletes stable 2 (rid 3 = sid 2 after insert)
	// Image now: ins, 0, 1, 3, 4, ..., 9
	rid, ok := p.SidToRid(0)
	if !ok || rid != 1 {
		t.Fatalf("SidToRid(0) = %d,%v", rid, ok)
	}
	if _, ok := p.SidToRid(2); ok {
		t.Fatal("deleted sid should report !ok")
	}
	rid, ok = p.SidToRid(5)
	if !ok || rid != 5 {
		t.Fatalf("SidToRid(5) = %d,%v", rid, ok)
	}
	loc, err := p.RidToSid(0)
	if err != nil || loc.Insert == nil {
		t.Fatalf("RidToSid(0) = %+v, %v", loc, err)
	}
	loc, err = p.RidToSid(3)
	if err != nil || loc.Insert != nil || loc.Sid != 3 {
		t.Fatalf("RidToSid(3) = %+v, %v", loc, err)
	}
	if _, err := p.RidToSid(p.Size()); err == nil {
		t.Fatal("out of range rid should fail")
	}
}

func TestCopyOnWriteIndependence(t *testing.T) {
	p := New(5)
	p.Append([]any{int64(1), "a"})
	p.Modify(0, []int{1}, []any{"m"})
	cp := p.CopyOnWrite()
	p.Delete(0)
	p.Append([]any{int64(2), "b"})
	ins, del, _ := cp.Counts()
	if ins != 1 || del != 0 {
		t.Fatalf("copy affected by original: ins=%d del=%d", ins, del)
	}
	rows := materialize(t, cp, stableImage(5))
	if len(rows) != 6 || rows[0][1].(string) != "m" {
		t.Fatalf("copy rows = %v", rows)
	}
}

func TestMergeIntoAndConflicts(t *testing.T) {
	master := New(10)
	// Transaction A modifies tuple 3 (snapshot epoch 0) and commits at 1.
	txA := New(10)
	txA.Modify(3, []int{1}, []any{"A"})
	if err := MergeInto(master, txA, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Transaction B (snapshot 0, i.e. before A committed) also touches 3.
	txB := New(10)
	txB.Modify(3, []int{1}, []any{"B"})
	err := MergeInto(master, txB, 0, 2)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	// Transaction C with a fresh snapshot (epoch 1) succeeds.
	txC := New(10)
	txC.Modify(3, []int{0}, []any{int64(-3)})
	if err := MergeInto(master, txC, 1, 2); err != nil {
		t.Fatal(err)
	}
	rows := materialize(t, master, stableImage(10))
	if rows[3][1].(string) != "A" || rows[3][0].(int64) != -3 {
		t.Fatalf("merged row = %v", rows[3])
	}
	// Concurrent inserts never conflict.
	txD, txE := New(10), New(10)
	txD.Append([]any{int64(100), "d"})
	txE.Append([]any{int64(101), "e"})
	if err := MergeInto(master, txD, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := MergeInto(master, txE, 0, 4); err != nil {
		t.Fatal(err)
	}
	if master.Size() != 12 {
		t.Fatalf("size = %d", master.Size())
	}
}

func TestDeleteDeleteMerge(t *testing.T) {
	master := New(5)
	tx1 := New(5)
	tx1.Delete(2)
	if err := MergeInto(master, tx1, 0, 1); err != nil {
		t.Fatal(err)
	}
	// A later snapshot deleting a *different* tuple is fine.
	tx2 := New(5)
	tx2.Delete(3) // in tx2's image (pre-commit of tx1) rid 3 = sid 3
	if err := MergeInto(master, tx2, 1, 2); err != nil {
		t.Fatal(err)
	}
	rows := materialize(t, master, stableImage(5))
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestRandomOpsAgainstModel drives the PDT with random rid-based operations
// and compares the merged image against a plain slice model after each
// operation batch.
func TestRandomOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const stable = 50
	p := New(stable)
	model := make([][]any, stable)
	for i := range model {
		model[i] = []any{int64(i), "s" + itoa(i)}
	}
	img := stableImage(stable)
	next := int64(1000)
	for step := 0; step < 400; step++ {
		op := rng.Intn(4)
		size := int(p.Size())
		switch {
		case op == 0 || size == 0: // insert
			rid := rng.Intn(size + 1)
			row := []any{next, "n" + itoa(int(next))}
			next++
			if err := p.Insert(int64(rid), row); err != nil {
				t.Fatal(err)
			}
			model = append(model[:rid], append([][]any{row}, model[rid:]...)...)
		case op == 1: // delete
			rid := rng.Intn(size)
			if err := p.Delete(int64(rid)); err != nil {
				t.Fatal(err)
			}
			model = append(model[:rid], model[rid+1:]...)
		case op == 2: // modify
			rid := rng.Intn(size)
			v := "m" + itoa(step)
			if err := p.Modify(int64(rid), []int{1}, []any{v}); err != nil {
				t.Fatal(err)
			}
			row := append([]any(nil), model[rid]...)
			row[1] = v
			model[rid] = row
		case op == 3: // append
			row := []any{next, "a" + itoa(int(next))}
			next++
			p.Append(row)
			model = append(model, row)
		}
		if int(p.Size()) != len(model) {
			t.Fatalf("step %d: size %d != model %d", step, p.Size(), len(model))
		}
		if step%20 == 19 {
			rows := materialize(t, p, img)
			if len(rows) != len(model) {
				t.Fatalf("step %d: merged %d rows, model %d", step, len(rows), len(model))
			}
			for i := range rows {
				if rows[i][0] != model[i][0] || rows[i][1] != model[i][1] {
					t.Fatalf("step %d row %d: %v != %v", step, i, rows[i], model[i])
				}
			}
			// Translation invariants: RidToSid ∘ SidToRid = id.
			for s := int64(0); s < stable; s++ {
				if rid, ok := p.SidToRid(s); ok {
					loc, err := p.RidToSid(rid)
					if err != nil || loc.Insert != nil || loc.Sid != s {
						t.Fatalf("step %d: SidToRid(%d)=%d, RidToSid=%+v err=%v", step, s, rid, loc, err)
					}
				}
			}
		}
	}
}

func TestMemBytesGrowsAndTriggers(t *testing.T) {
	p := New(0)
	if p.MemBytes() != 0 {
		t.Fatalf("empty MemBytes = %d", p.MemBytes())
	}
	for i := 0; i < 100; i++ {
		p.Append([]any{int64(i), "some string value"})
	}
	if p.MemBytes() < 100*16 {
		t.Fatalf("MemBytes = %d, too small", p.MemBytes())
	}
}
