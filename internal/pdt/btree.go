// Package pdt implements Positional Delta Trees (Héman et al. [12], §6 of
// the VectorH paper): counting B+-trees storing inserts, deletes and
// modifies positionally, so that differences can be merged into scans by
// position — no key comparisons — and stable IDs (SIDs) translate to current
// row IDs (RIDs) and back in logarithmic time.
//
// Layering follows the paper: a big slow-moving Read-PDT holds differences
// against the persistent table, a smaller Write-PDT holds differences
// against the Read-PDT image, and each transaction stacks a private
// Trans-PDT on top. One simplification is documented in DESIGN.md: Write-
// and Trans-PDT entries are both keyed in the Read-image position space, so
// commit-time serialization merges by position directly instead of rebasing
// delta-on-delta; write-write conflicts are still detected at tuple
// granularity via per-entry commit epochs.
package pdt

// EntryKind discriminates delta entries.
type EntryKind uint8

// Delta entry kinds.
const (
	Ins EntryKind = iota
	Del
	Mod
)

// stableSeq orders a Del/Mod entry after every insert at the same SID (the
// entry conceptually sits on the stable tuple itself).
const stableSeq int32 = 1 << 30

// Entry is one delta. Inserts carry a full row; modifies carry sparse
// (column, value) pairs. Epoch records the commit that produced the entry,
// for snapshot-based conflict detection.
type Entry struct {
	Sid   int64
	Seq   int32
	Kind  EntryKind
	Row   []any // Ins: full row
	Cols  []int // Mod: column indexes
	Vals  []any // Mod: values parallel to Cols
	Epoch int64
}

func keyLess(s1 int64, q1 int32, s2 int64, q2 int32) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return q1 < q2
}

const btreeOrder = 16 // max children per interior node; max entries per leaf

// node is a counting B+-tree node. Interior nodes store per-subtree
// aggregate counts used for positional arithmetic.
type node struct {
	leaf     bool
	entries  []Entry // leaf only
	children []*node // interior only

	// Aggregates over the subtree.
	cnt    int   // total entries
	ins    int   // insert entries
	del    int   // delete entries
	maxSid int64 // max key (for routing)
	maxSeq int32
}

func newLeaf() *node { return &node{leaf: true} }

func (n *node) recompute() {
	if n.leaf {
		n.cnt = len(n.entries)
		n.ins, n.del = 0, 0
		for i := range n.entries {
			switch n.entries[i].Kind {
			case Ins:
				n.ins++
			case Del:
				n.del++
			}
		}
		if len(n.entries) > 0 {
			last := n.entries[len(n.entries)-1]
			n.maxSid, n.maxSeq = last.Sid, last.Seq
		} else {
			n.maxSid, n.maxSeq = -1, 0
		}
		return
	}
	n.cnt, n.ins, n.del = 0, 0, 0
	for _, c := range n.children {
		n.cnt += c.cnt
		n.ins += c.ins
		n.del += c.del
	}
	if len(n.children) > 0 {
		last := n.children[len(n.children)-1]
		n.maxSid, n.maxSeq = last.maxSid, last.maxSeq
	}
}

// insert adds e in key order. It returns a new right sibling when the node
// splits.
func (n *node) insert(e Entry) *node {
	if n.leaf {
		i := 0
		for i < len(n.entries) && !keyLess(e.Sid, e.Seq, n.entries[i].Sid, n.entries[i].Seq) {
			i++
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		n.recompute()
		if len(n.entries) <= btreeOrder {
			return nil
		}
		mid := len(n.entries) / 2
		right := newLeaf()
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid]
		n.recompute()
		right.recompute()
		return right
	}
	// Route to the first child whose max key >= e's key (or the last).
	ci := len(n.children) - 1
	for i, c := range n.children {
		if !keyLess(c.maxSid, c.maxSeq, e.Sid, e.Seq) {
			ci = i
			break
		}
	}
	if r := n.children[ci].insert(e); r != nil {
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = r
	}
	n.recompute()
	if len(n.children) <= btreeOrder {
		return nil
	}
	mid := len(n.children) / 2
	right := &node{children: append([]*node(nil), n.children[mid:]...)}
	n.children = n.children[:mid]
	n.recompute()
	right.recompute()
	return right
}

// remove deletes the entry with the exact key, reporting whether it existed.
// Underfull nodes are tolerated (lazy deletion); empty children are pruned.
func (n *node) remove(sid int64, seq int32) bool {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].Sid == sid && n.entries[i].Seq == seq {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.recompute()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !keyLess(c.maxSid, c.maxSeq, sid, seq) {
			ok := c.remove(sid, seq)
			if ok && c.cnt == 0 && len(n.children) > 1 {
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.recompute()
			return ok
		}
	}
	return false
}

// find returns a pointer to the entry with the exact key, or nil.
func (n *node) find(sid int64, seq int32) *Entry {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].Sid == sid && n.entries[i].Seq == seq {
				return &n.entries[i]
			}
		}
		return nil
	}
	for _, c := range n.children {
		if !keyLess(c.maxSid, c.maxSeq, sid, seq) {
			return c.find(sid, seq)
		}
	}
	return nil
}

// countBefore returns (#entries, #inserts, #deletes) with key < (sid, seq).
func (n *node) countBefore(sid int64, seq int32) (cnt, ins, del int) {
	if n.leaf {
		for i := range n.entries {
			if !keyLess(n.entries[i].Sid, n.entries[i].Seq, sid, seq) {
				break
			}
			cnt++
			switch n.entries[i].Kind {
			case Ins:
				ins++
			case Del:
				del++
			}
		}
		return
	}
	for _, c := range n.children {
		if keyLess(c.maxSid, c.maxSeq, sid, seq) {
			cnt += c.cnt
			ins += c.ins
			del += c.del
			continue
		}
		c2, i2, d2 := c.countBefore(sid, seq)
		return cnt + c2, ins + i2, del + d2
	}
	return
}

// walkFrom visits entries with SID >= sid in key order while fn returns
// true.
func (n *node) walkFrom(sid int64, fn func(*Entry) bool) bool {
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if e.Sid < sid {
				continue
			}
			if !fn(e) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if c.maxSid < sid {
			continue
		}
		if !c.walkFrom(sid, fn) {
			return false
		}
	}
	return true
}

// walk visits entries in key order while fn returns true.
func (n *node) walk(fn func(*Entry) bool) bool {
	if n.leaf {
		for i := range n.entries {
			if !fn(&n.entries[i]) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !c.walk(fn) {
			return false
		}
	}
	return true
}

// clone deep-copies the tree structure (entry payload slices are shared;
// they are never mutated in place after commit, honoring copy-on-write).
func (n *node) clone() *node {
	out := &node{leaf: n.leaf, cnt: n.cnt, ins: n.ins, del: n.del, maxSid: n.maxSid, maxSeq: n.maxSeq}
	if n.leaf {
		out.entries = append([]Entry(nil), n.entries...)
		return out
	}
	out.children = make([]*node, len(n.children))
	for i, c := range n.children {
		out.children[i] = c.clone()
	}
	return out
}
