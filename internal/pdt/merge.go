package pdt

import (
	"fmt"

	"vectorh/internal/vector"
)

// Merger merges the deltas of one (immutable) PDT into a scan stream by
// position — the paper's "primary goal" for PDTs: no key comparisons, no IO
// on key columns. Construct one Merger per scan; it snapshots the entry list
// so concurrent copy-on-write commits never disturb a running scan.
type Merger struct {
	t       *PDT
	schema  vector.Schema
	cols    []int       // projected full-schema column indexes
	projOf  map[int]int // full-schema index -> projection slot
	entries []Entry
}

// NewMerger returns a merger for scans projecting the given full-schema
// column indexes.
func NewMerger(t *PDT, schema vector.Schema, cols []int) *Merger {
	m := &Merger{t: t, schema: schema, cols: cols, projOf: make(map[int]int, len(cols))}
	for slot, c := range cols {
		m.projOf[c] = slot
	}
	m.entries = t.Entries()
	return m
}

// HasDeltas reports whether the PDT holds any entries at all (fast path for
// scans of never-updated partitions).
func (m *Merger) HasDeltas() bool { return len(m.entries) > 0 }

// HasDeltasIn reports whether any delta touches the stable-row range
// [s0, s1) — the per-span fast path: a span no delta touches can be
// late-materialized straight off the column blocks, because MergeRange
// would return it unchanged.
func (m *Merger) HasDeltasIn(s0, s1 int64) bool {
	lo := m.searchSid(s0)
	return lo < len(m.entries) && m.entries[lo].Sid < s1
}

// FirstRid returns the RID of the first output row of a merge starting at
// stable row s0 (what MergeRange would report), without merging.
func (m *Merger) FirstRid(s0 int64) int64 { return m.t.firstRidOfSid(s0) }

// MergeRange merges deltas into a dense batch covering the stable rows
// [s0, s0+b.Len()), returning the merged batch and the RID of its first
// output row. When no deltas touch the range, the input batch is returned
// unchanged.
func (m *Merger) MergeRange(b *vector.Batch, s0 int64) (*vector.Batch, int64, error) {
	if b.Sel != nil {
		return nil, 0, fmt.Errorf("pdt: MergeRange requires a dense batch")
	}
	s1 := s0 + int64(b.Len())
	lo := m.searchSid(s0)
	if lo == len(m.entries) || m.entries[lo].Sid >= s1 {
		return b, m.t.firstRidOfSid(s0), nil
	}
	out := &vector.Batch{Vecs: make([]*vector.Vec, len(m.cols))}
	for i, c := range m.cols {
		out.Vecs[i] = vector.New(m.schema[c].Type.Kind, b.Len()+8)
	}
	ei := lo
	for s := s0; s < s1; s++ {
		// Inserts at s come before the stable tuple s.
		for ei < len(m.entries) && m.entries[ei].Sid == s && m.entries[ei].Kind == Ins {
			m.appendRow(out, m.entries[ei].Row)
			ei++
		}
		var stable *Entry
		if ei < len(m.entries) && m.entries[ei].Sid == s {
			stable = &m.entries[ei]
			ei++
		}
		if stable != nil && stable.Kind == Del {
			continue
		}
		row := int(s - s0)
		for i := range m.cols {
			v := b.Col(i)
			if stable != nil && stable.Kind == Mod {
				if mv, ok := m.modValue(stable, m.cols[i]); ok {
					out.Vecs[i].AppendAny(mv)
					continue
				}
			}
			out.Vecs[i].AppendFrom(v, row)
		}
	}
	return out, m.t.firstRidOfSid(s0), nil
}

func (m *Merger) modValue(e *Entry, fullCol int) (any, bool) {
	for j, c := range e.Cols {
		if c == fullCol {
			return e.Vals[j], true
		}
	}
	return nil, false
}

func (m *Merger) appendRow(out *vector.Batch, row []any) {
	for i, c := range m.cols {
		out.Vecs[i].AppendAny(row[c])
	}
}

// searchSid returns the first entry index with Sid >= s0.
func (m *Merger) searchSid(s0 int64) int {
	lo, hi := 0, len(m.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.entries[mid].Sid < s0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Tail returns the inserts beyond the last stable tuple (appends) as one
// batch, with the RID of its first row; (nil, 0) when there are none.
func (m *Merger) Tail() (*vector.Batch, int64) {
	n := m.t.StableRows()
	lo := m.searchSid(n)
	if lo == len(m.entries) {
		return nil, 0
	}
	out := &vector.Batch{Vecs: make([]*vector.Vec, len(m.cols))}
	for i, c := range m.cols {
		out.Vecs[i] = vector.New(m.schema[c].Type.Kind, len(m.entries)-lo)
	}
	for ; lo < len(m.entries); lo++ {
		if m.entries[lo].Kind == Ins {
			m.appendRow(out, m.entries[lo].Row)
		}
	}
	if out.Len() == 0 {
		return nil, 0
	}
	return out, m.t.firstRidOfSid(n)
}
